#include "common/temp_file.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace ovc {

namespace fs = std::filesystem;

namespace {

/// Bounded retry for transient temp-file I/O: spills race other processes
/// for file descriptors and can be interrupted, so EINTR/EAGAIN (and
/// injected failpoint failures, which model exactly those) get a few
/// exponentially backed-off attempts before the error is reported.
constexpr int kMaxIoRetries = 3;

void BackoffBeforeRetry(int attempt) {
  // The span makes retry stalls visible in traces: a pipeline that looks
  // idle is often sitting in exactly this backoff.
  OVC_TRACE_SPAN("tempfile.retry");
  OVC_METRIC_COUNTER("tempfile.retries",
                     "Transient temp-file I/O failures retried with backoff")
      .Increment();
  std::this_thread::sleep_for(std::chrono::microseconds(100) * (1 << attempt));
}

bool TransientErrno(int err) { return err == EINTR || err == EAGAIN; }

}  // namespace

TempFileManager::TempFileManager(const std::string& base_dir) {
  fs::path base =
      base_dir.empty() ? fs::temp_directory_path() : fs::path(base_dir);
  // std::filesystem has no mkdtemp equivalent; pid + per-process counter is
  // unique enough for a scratch directory.
  static std::atomic<uint64_t> instance_counter{0};
  uint64_t id = instance_counter.fetch_add(1);
  fs::path dir = base / ("ovc-scratch-" + std::to_string(::getpid()) + "-" +
                         std::to_string(id));
  std::error_code ec;
  fs::create_directories(dir, ec);
  OVC_CHECK(!ec);
  dir_ = dir.string();
}

TempFileManager::TempFileManager(TempFileManager* parent) {
  OVC_CHECK(parent != nullptr);
  // Sub-directory ids come off the parent's path counter: NewPath ids and
  // sub-manager ids share the sequence, which keeps both unique within the
  // parent without a second counter.
  fs::path dir = fs::path(parent->dir()) /
                 ("sub-" + std::to_string(parent->next_id_.fetch_add(
                               1, std::memory_order_relaxed)));
  std::error_code ec;
  fs::create_directories(dir, ec);
  OVC_CHECK(!ec);
  dir_ = dir.string();
}

TempFileManager::~TempFileManager() {
  std::error_code ec;
  fs::remove_all(dir_, ec);
  // Best effort; nothing to do on failure in a destructor.
}

std::string TempFileManager::NewPath(const std::string& tag) {
  return dir_ + "/" + tag + "-" +
         std::to_string(next_id_.fetch_add(1, std::memory_order_relaxed));
}

void TempFileManager::RecordError(const Status& status) {
  if (status.ok()) return;
  MutexLock lock(error_mu_);
  if (first_error_.ok()) first_error_ = status;
}

Status TempFileManager::first_error() const {
  MutexLock lock(error_mu_);
  return first_error_;
}

void TempFileManager::ClearError() {
  MutexLock lock(error_mu_);
  first_error_ = Status::Ok();
}

FileWriter::~FileWriter() {
  if (file_ != nullptr) {
    std::fclose(static_cast<FILE*>(file_));
  }
}

Status FileWriter::Open(const std::string& path) {
  OVC_CHECK(file_ == nullptr);
  for (int attempt = 0;; ++attempt) {
    bool injected = OVC_FAILPOINT("tempfile.open");
    FILE* f = injected ? nullptr : std::fopen(path.c_str(), "wb");
    if (f != nullptr) {
      file_ = f;
      path_ = path;
      bytes_written_ = 0;
      OVC_METRIC_COUNTER("tempfile.files",
                         "Temporary files opened for writing")
          .Increment();
      return Status::Ok();
    }
    const bool transient = injected || TransientErrno(errno);
    if (!transient || attempt >= kMaxIoRetries) {
      return Status::IoError("open for write failed: " + path + ": " +
                             (injected ? "injected failure"
                                       : std::strerror(errno)));
    }
    ++retries_;
    BackoffBeforeRetry(attempt);
  }
}

Status FileWriter::Write(const void* data, size_t len) {
  OVC_DCHECK(file_ != nullptr);
  for (int attempt = 0;; ++attempt) {
    bool injected = OVC_FAILPOINT("tempfile.write");
    const size_t wrote =
        injected ? 0 : std::fwrite(data, 1, len, static_cast<FILE*>(file_));
    if (!injected && wrote == len) {
      bytes_written_ += len;
      return Status::Ok();
    }
    // Retry only when nothing reached the stream -- re-writing after a
    // partial fwrite would duplicate bytes in the run file.
    const bool transient = injected || (wrote == 0 && TransientErrno(errno));
    if (!transient || attempt >= kMaxIoRetries) {
      return Status::IoError("write failed: " + path_ +
                             (injected ? ": injected failure" : ""));
    }
    if (!injected) std::clearerr(static_cast<FILE*>(file_));
    ++retries_;
    BackoffBeforeRetry(attempt);
  }
}

Status FileWriter::Close() {
  if (file_ == nullptr) {
    return Status::Ok();
  }
  int rc = std::fclose(static_cast<FILE*>(file_));
  file_ = nullptr;
  if (rc != 0) {
    return Status::IoError("close failed: " + path_);
  }
  return Status::Ok();
}

FileReader::~FileReader() {
  if (file_ != nullptr) {
    std::fclose(static_cast<FILE*>(file_));
  }
}

Status FileReader::Open(const std::string& path) {
  OVC_CHECK(file_ == nullptr);
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("open for read failed: " + path + ": " +
                           std::strerror(errno));
  }
  file_ = f;
  path_ = path;
  return Status::Ok();
}

Status FileReader::Read(void* data, size_t len) {
  OVC_DCHECK(file_ != nullptr);
  if (std::fread(data, 1, len, static_cast<FILE*>(file_)) != len) {
    return Status::IoError("short read: " + path_);
  }
  return Status::Ok();
}

bool FileReader::AtEof() {
  OVC_DCHECK(file_ != nullptr);
  FILE* f = static_cast<FILE*>(file_);
  int c = std::fgetc(f);
  if (c == EOF) {
    return true;
  }
  std::ungetc(c, f);
  return false;
}

Status FileReader::Close() {
  if (file_ == nullptr) {
    return Status::Ok();
  }
  int rc = std::fclose(static_cast<FILE*>(file_));
  file_ = nullptr;
  if (rc != 0) {
    return Status::IoError("close failed: " + path_);
  }
  return Status::Ok();
}

}  // namespace ovc
