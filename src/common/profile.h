// Per-operator runtime profiling.
//
// The paper's argument is quantitative -- column comparisons versus code
// comparisons, spill volume, merge bypass rates -- so a single query-global
// QueryCounters blob is not enough to see *where* a plan spent its work or
// where the cost model's estimates diverged from reality. A QueryProfile
// attributes rows, wall time, and a full QueryCounters slice to every
// physical plan node:
//
//  * OperatorStats is the per-node accumulator. One *slice* is allocated per
//    operator instance per execution thread (worker pipelines, split
//    partition streams, the consumer-side merge), so no slice is ever
//    written concurrently; FinishRun aggregates slices into per-node totals
//    and folds their counters into the session counters, mirroring
//    PhysicalPlan::RollUpWorkerCounters.
//  * Timing uses a raw tick counter (rdtsc on x86-64) converted to
//    nanoseconds once per process, because a steady_clock read per NextBatch
//    would already cost several percent of the hot batched pipeline. Even
//    rdtsc is not free in context (it stalls on in-flight loads), so the
//    wrapper times a deterministic sample of Next/NextBatch calls -- all of
//    the first kTimeWarmupCalls, then every kTimeSampleEvery-th -- and the
//    per-node time is the sampled time scaled to the full call count.
//    Queries short enough to matter for correctness tests stay inside the
//    warmup and are timed exactly; long queries get a sampled estimate and
//    the hot batched path stays within the <=2% instrumentation budget
//    (bench/bench_profile_overhead.cc prices exactly this).
//  * Render() produces the EXPLAIN ANALYZE text -- each plan line carries
//    {rows=est/actual cost=est time=..ms cmp=col/code spill=..} and the
//    worst Q-error nodes are flagged. ToJson() produces the machine-readable
//    profile (ovcsql --profile=FILE). ScanFeedback() reports per-scan
//    estimate-versus-actual cardinalities for TableStats feedback.
//
// Q-error is the standard cardinality-estimation metric:
//   q = max(actual / estimate, estimate / actual), both clamped to >= 1.
// q == 1 is a perfect estimate; q >= 2 is flagged in EXPLAIN ANALYZE.

#ifndef OVC_COMMON_PROFILE_H_
#define OVC_COMMON_PROFILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/counters.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#else
#include <chrono>
#endif

namespace ovc {

/// Raw monotonic tick count (rdtsc on x86-64, the generic counter register
/// on aarch64, steady_clock elsewhere). Inline so the hot wrapper pays one
/// instruction, not a call; still sampled there because even rdtsc stalls
/// on in-flight work.
inline uint64_t ProfileTicks() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#elif defined(__aarch64__)
  uint64_t ticks;
  asm volatile("mrs %0, cntvct_el0" : "=r"(ticks));
  return ticks;
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Converts a tick delta to nanoseconds. Calibrates ticks-per-nanosecond
/// against steady_clock once per process (lazily, on first use).
uint64_t TicksToNs(uint64_t ticks);

/// Timing-sample policy for the Next/NextBatch path: the first
/// kTimeWarmupCalls calls per wrapper are always timed (short queries --
/// and tests -- get exact times), after that every kTimeSampleEvery-th.
/// Powers of two; the wrapper masks with kTimeSampleEvery - 1.
inline constexpr uint64_t kTimeWarmupCalls = 32;
inline constexpr uint64_t kTimeSampleEvery = 16;

/// Per-operator, per-execution-thread stats accumulator. Exactly one thread
/// writes a given instance at a time (the thread driving that operator), so
/// plain uint64_t fields suffice; cross-thread aggregation happens in
/// QueryProfile::FinishRun after every producer thread has joined.
struct OperatorStats {
  /// Rows this operator emitted (Next successes + NextBatch rows).
  uint64_t rows_out = 0;
  /// Non-empty batches emitted through NextBatch.
  uint64_t batches_out = 0;
  /// Inclusive wall ticks inside Open / Close (always timed) and inside
  /// the *timed sample* of Next/NextBatch calls (the operator plus
  /// everything below it on the same thread).
  uint64_t open_ticks = 0;
  uint64_t next_ticks = 0;
  uint64_t close_ticks = 0;
  /// Total Next+NextBatch calls, and how many of them were timed into
  /// next_ticks (warmup + every kTimeSampleEvery-th; see above).
  uint64_t next_calls = 0;
  uint64_t next_timed = 0;
  /// Work counters attributed to this operator (handed to its constructor
  /// in place of the session/worker counters when profiling is on).
  QueryCounters counters;

  void Merge(const OperatorStats& other) {
    rows_out += other.rows_out;
    batches_out += other.batches_out;
    open_ticks += other.open_ticks;
    next_ticks += other.next_ticks;
    close_ticks += other.close_ticks;
    next_calls += other.next_calls;
    next_timed += other.next_timed;
    counters.Merge(other.counters);
  }

  void Reset() { *this = OperatorStats(); }

  /// next_ticks scaled from the timed sample to all calls. Exact (and
  /// equal to next_ticks) while every call was timed, i.e. inside the
  /// warmup window.
  uint64_t scaled_next_ticks() const {
    if (next_timed == 0 || next_timed == next_calls) return next_ticks;
    const double scale = static_cast<double>(next_calls) /
                         static_cast<double>(next_timed);
    return static_cast<uint64_t>(static_cast<double>(next_ticks) * scale);
  }

  uint64_t total_ticks() const {
    return open_ticks + scaled_next_ticks() + close_ticks;
  }
};

/// The per-query profile: one Node per physical plan line, each holding the
/// planner's estimate and (after a run) the aggregated actuals. Owned by
/// PhysicalPlan when PlannerOptions::profile is set; stable-addressed slices
/// let operators write stats without ever resizing under a running query.
class QueryProfile {
 public:
  struct Node {
    /// The explain-line prefix, e.g. "merge-join(inner) [sorted+ovc(2)]".
    std::string label;
    /// Table name for scan nodes (the ScanFeedback target); empty otherwise.
    std::string table;
    /// Planner estimate for this node (output rows, cumulative cost).
    double est_rows = 0;
    double est_cost = 0;
    /// Child node indices, in explain order.
    std::vector<int> children;
    /// Per-thread stat slices (stable addresses; written during a run).
    std::vector<std::unique_ptr<OperatorStats>> slices;
    /// Aggregate of all slices for the most recent finished run.
    OperatorStats total;
    /// True once FinishRun aggregated at least one slice into `total`.
    bool has_actuals = false;
  };

  /// Adds a node; returns its index. Label/estimate/children are filled in
  /// by SetLine once the planner knows them.
  int AddNode();
  void SetLine(int node, std::string label, double est_rows, double est_cost,
               std::vector<int> children, std::string table = std::string());
  /// Allocates one per-thread stats slice under `node`.
  OperatorStats* AddSlice(int node);
  void SetRoot(int node) { root_ = node; }
  int root() const { return root_; }
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Ends one run: aggregates every node's slices into its `total`, folds
  /// all slice counters into `into` (skipped when null) and resets the
  /// slices so repeated runs never double-count -- the profile analogue of
  /// PhysicalPlan::RollUpWorkerCounters. Returns the rolled-up counter
  /// total (what this run added to `into`) for consistency checks.
  QueryCounters FinishRun(QueryCounters* into, uint64_t wall_ns);

  /// Sum of per-node counter totals over the tree reachable from the root
  /// (each node once). In a consistent profile this equals what the last
  /// FinishRun returned.
  QueryCounters TreeCounterTotals() const;

  /// Actual output rows of `node` in the last run. Nodes with no slices
  /// (an elided sort is a plan line but no operator) report their only
  /// child's actuals.
  uint64_t ActualRows(int node) const;
  /// Inclusive wall nanoseconds of `node` in the last run (slice-less nodes
  /// report their child's, like ActualRows).
  uint64_t ActualNs(int node) const;
  /// Q-error of `node`: max(actual/est, est/actual), inputs clamped to 1.
  double QError(int node) const;
  /// Largest Q-error over all nodes (1 when the profile has no actuals).
  double WorstQError() const;

  uint64_t wall_ns() const { return wall_ns_; }
  uint64_t runs() const { return runs_; }

  /// EXPLAIN ANALYZE rendering: the plan tree with one line per node,
  /// `{rows=est/actual cost=est time=..ms cmp=col/code spill=..}`
  /// annotations, worst Q-error flags, and a trailing wall-time summary.
  std::string Render() const;

  /// Machine-readable profile: a JSON object with wall time and the plan
  /// tree (per node: label, estimates, actuals, counters, children).
  std::string ToJson() const;

  /// Estimate-versus-actual cardinality per scan node, for TableStats
  /// feedback.
  struct CardFeedback {
    std::string table;
    double est_rows = 0;
    double actual_rows = 0;
    double q_error = 1;
  };
  std::vector<CardFeedback> ScanFeedback() const;

 private:
  void RenderNode(int node, int depth, double worst_q, std::string* out) const;
  void JsonNode(int node, std::string* out) const;

  std::vector<Node> nodes_;
  int root_ = -1;
  uint64_t wall_ns_ = 0;
  uint64_t runs_ = 0;
};

}  // namespace ovc

#endif  // OVC_COMMON_PROFILE_H_
