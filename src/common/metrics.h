// Process-wide metrics: named counters, gauges, and latency histograms.
//
// PR 6's QueryProfile explains one *query*; a serving process needs numbers
// that survive across queries and threads -- cumulative counters ("how many
// statements, how many spilled runs since start"), point-in-time gauges
// ("producers running right now"), and latency histograms with percentile
// extraction ("p99 statement latency"). MetricRegistry is that layer: a
// process-global, thread-safe registry of named metrics, snapshotable as
// text (the ovcsql `.metrics` command) or JSON (`ovcsql --metrics=FILE`).
//
// Design points:
//  * Registration is idempotent and name-keyed: the first
//    OVC_METRIC_COUNTER("x", help) call creates the metric, every later one
//    (any thread, any translation unit) returns the same instance. The
//    macros cache the lookup in a function-local static so steady-state use
//    is one indirect load -- no lock, no map probe.
//  * Counter is sharded: kShards cache-line-separated atomic cells, each
//    thread incrementing its own (relaxed fetch_add on an uncontended
//    line), summed on read. Hot-path increments from N exchange producers
//    never bounce one cache line around.
//  * Histogram buckets are exponential (one per power of two), so 64
//    buckets cover any uint64 value; Percentile() interpolates linearly
//    inside the selected bucket. Good to ~a bucket width, which is what a
//    latency distribution needs (p99 = "about 8ms", never "8191us exactly").
//  * Snapshots render time-valued metrics with their unit suffix (a name
//    ending in `_us`/`_ms`/`_ns` gets that suffix on sum/percentiles) so
//    tools/check_docs.sh can normalize away run-to-run jitter in replayed
//    doc fences, exactly like the profile docs' `?ms` convention.
//
// Every metric name compiled into src/ must appear in the registry table of
// docs/OBSERVABILITY.md and vice versa (ovclint OVC-L008/OVC-L009), the same
// both-ways sync the failpoint registry gets from OVC-L004/L005.

#ifndef OVC_COMMON_METRICS_H_
#define OVC_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ovc::metrics {

/// Stable per-thread index used to pick a counter shard. Assigned on first
/// use, round-robin, so the first kShards threads get distinct cells.
uint32_t ThreadShardIndex();

/// Monotonic process-wide counter, sharded across cache lines.
class Counter {
 public:
  static constexpr uint32_t kShards = 16;

  void Add(uint64_t n) {
    shards_[ThreadShardIndex() % kShards].cell.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over all shards. Monotone, but not a consistent cut: increments
  /// racing with value() may or may not be included.
  uint64_t value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.cell.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> cell{0};
  };
  Shard shards_[kShards];
};

/// Point-in-time signed value (things currently running, bytes currently
/// held). Single atomic -- gauges move at operator lifecycle frequency, not
/// per row, so sharding would buy nothing.
class Gauge {
 public:
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  void Set(int64_t n) { value_.store(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Exponential-bucket histogram over uint64 samples. Bucket i counts values
/// in [2^(i-1), 2^i) (bucket 0 holds 0, bucket 1 holds exactly 1), so 65
/// buckets cover the full range with relative error bounded by one octave.
class Histogram {
 public:
  static constexpr uint32_t kBuckets = 65;

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Value at quantile `p` in [0, 1], linearly interpolated within the
  /// bucket where the cumulative count crosses p * count. 0 when empty.
  double Percentile(double p) const;

  /// Count in bucket `i` (exposed for snapshots and tests).
  uint64_t bucket_count(uint32_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket `i` (the Prometheus-style `le`).
  static uint64_t bucket_upper_bound(uint32_t i);

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// The process-wide registry. Get*() is create-or-return by name; returned
/// references live until process exit (metrics are never unregistered, so
/// cached pointers in function-local statics stay valid forever).
class MetricRegistry {
 public:
  static MetricRegistry& Instance();

  Counter& GetCounter(std::string_view name, std::string_view help)
      OVC_EXCLUDES(mu_);
  Gauge& GetGauge(std::string_view name, std::string_view help)
      OVC_EXCLUDES(mu_);
  Histogram& GetHistogram(std::string_view name, std::string_view help)
      OVC_EXCLUDES(mu_);

  /// Human-readable snapshot, one metric per line, sorted by name:
  ///   counter query.statements 12
  ///   histogram query.latency_us count=12 sum=34.5ms p50=1.2ms ...
  std::string TextSnapshot() const OVC_EXCLUDES(mu_);

  /// Machine-readable snapshot:
  ///   {"metrics":[{"name":...,"kind":...,"help":...,...}, ...]}
  /// sorted by name; histograms carry count/sum/p50/p95/p99 plus the
  /// non-empty buckets as [{"le":...,"count":...}].
  std::string JsonSnapshot() const OVC_EXCLUDES(mu_);

 private:
  MetricRegistry() = default;

  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& GetOrCreate(std::string_view name, std::string_view help, Kind kind)
      OVC_REQUIRES(mu_);

  mutable Mutex mu_;
  /// std::map: stable addresses for Entry values and sorted snapshots.
  std::map<std::string, Entry, std::less<>> metrics_ OVC_GUARDED_BY(mu_);
};

}  // namespace ovc::metrics

/// Use-site registration macros. Each expands to a reference to the named
/// metric, resolving the registry lookup once per use site:
///   OVC_METRIC_COUNTER("exec.rows", "Rows drained from root plans").Add(n);
/// The name must be a string literal in dotted.lowercase (ovclint extracts
/// it lexically for the OVC-L008/L009 docs-sync check).
#define OVC_METRIC_COUNTER(name, help)                                        \
  ([]() -> ::ovc::metrics::Counter& {                                         \
    static ::ovc::metrics::Counter& ovc_metric =                              \
        ::ovc::metrics::MetricRegistry::Instance().GetCounter(name, help);    \
    return ovc_metric;                                                        \
  }())
#define OVC_METRIC_GAUGE(name, help)                                          \
  ([]() -> ::ovc::metrics::Gauge& {                                           \
    static ::ovc::metrics::Gauge& ovc_metric =                                \
        ::ovc::metrics::MetricRegistry::Instance().GetGauge(name, help);      \
    return ovc_metric;                                                        \
  }())
#define OVC_METRIC_HISTOGRAM(name, help)                                      \
  ([]() -> ::ovc::metrics::Histogram& {                                       \
    static ::ovc::metrics::Histogram& ovc_metric =                            \
        ::ovc::metrics::MetricRegistry::Instance().GetHistogram(name, help);  \
    return ovc_metric;                                                        \
  }())

#endif  // OVC_COMMON_METRICS_H_
