// Invariant-checking macros.
//
// The library follows the Google C++ style guide and does not throw
// exceptions. Programming errors (violated preconditions, corrupted
// invariants) abort via OVC_CHECK; recoverable runtime errors (I/O) are
// reported through Status / StatusOr (see common/status.h).

#ifndef OVC_COMMON_CHECK_H_
#define OVC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace ovc::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "OVC_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace ovc::internal

/// Aborts the process when `expr` is false. Enabled in all build types:
/// invariants guarded by OVC_CHECK are cheap relative to the work they guard.
#define OVC_CHECK(expr)                                        \
  do {                                                         \
    if (!(expr)) {                                             \
      ::ovc::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                          \
  } while (0)

/// Debug-only check for hot paths (per-row, per-comparison invariants).
#ifndef NDEBUG
#define OVC_DCHECK(expr) OVC_CHECK(expr)
#else
#define OVC_DCHECK(expr) \
  do {                   \
  } while (0)
#endif

#endif  // OVC_COMMON_CHECK_H_
