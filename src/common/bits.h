// Small bit-manipulation helpers (C++17: no <bit>).

#ifndef OVC_COMMON_BITS_H_
#define OVC_COMMON_BITS_H_

#include <cstdint>

namespace ovc {

/// Smallest power of two >= n (n == 0 yields 1). Used to pad tree-of-losers
/// capacities; n must be <= 2^31.
inline uint32_t CeilToPowerOfTwo(uint32_t n) {
  uint64_t p = 1;
  while (p < n) p <<= 1;
  return static_cast<uint32_t>(p);
}

}  // namespace ovc

#endif  // OVC_COMMON_BITS_H_
