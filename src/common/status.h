// Minimal Status / StatusOr for fallible operations (mostly file I/O).
//
// The library does not use exceptions. Functions that can fail at runtime
// return Status or StatusOr<T>; functions whose failure would be a caller
// bug use OVC_CHECK instead.

#ifndef OVC_COMMON_STATUS_H_
#define OVC_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/check.h"

namespace ovc {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kResourceExhausted,
  kInternal,
};

/// Returns a short human-readable name for `code` ("OK", "IO_ERROR", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error result. Cheap to copy on the success path (no
/// allocation); error path carries a message.
///
/// [[nodiscard]]: a discarded Status is a swallowed I/O error on the
/// degrade path (docs/ROBUSTNESS.md). Callers must propagate
/// (OVC_RETURN_IF_ERROR), check-abort where failure is a caller bug
/// (OVC_CHECK_OK -- outside src/exec/ and src/sort/, see ovclint
/// OVC-L002), or route the error somewhere with a comment saying why.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with `code` and a diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "CODE: message" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from value: allows `return some_t;`.
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit from error status; `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    OVC_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; requires ok().
  const T& value() const& {
    OVC_CHECK(ok());
    return value_;
  }
  T& value() & {
    OVC_CHECK(ok());
    return value_;
  }
  T&& value() && {
    OVC_CHECK(ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-OK status to the caller.
#define OVC_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::ovc::Status _ovc_status = (expr);    \
    if (!_ovc_status.ok()) {               \
      return _ovc_status;                  \
    }                                      \
  } while (0)

/// Aborts if `expr` yields a non-OK status. For callers (tests, examples,
/// benchmarks) where an I/O failure is unrecoverable.
#define OVC_CHECK_OK(expr)                                              \
  do {                                                                  \
    ::ovc::Status _ovc_status = (expr);                                 \
    if (!_ovc_status.ok()) {                                            \
      std::fprintf(stderr, "OVC_CHECK_OK failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, _ovc_status.ToString().c_str()); \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

}  // namespace ovc

#endif  // OVC_COMMON_STATUS_H_
