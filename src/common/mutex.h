// Annotated mutex wrappers for Clang thread-safety analysis.
//
// libstdc++'s std::mutex / std::lock_guard / std::condition_variable carry
// no capability annotations, so code using them directly is invisible to
// `-Wthread-safety` (common/thread_annotations.h). These thin wrappers --
// the same shape as Abseil's Mutex/MutexLock and Chromium's base::Lock --
// make lock acquisition visible to the analysis at zero runtime cost:
// every method is a forwarding inline over the std types.
//
// Usage:
//   Mutex mu_;
//   int value_ OVC_GUARDED_BY(mu_);
//   CondVar ready_;
//
//   void Set(int v) OVC_EXCLUDES(mu_) {
//     MutexLock lock(mu_);
//     value_ = v;
//     ready_.NotifyOne();
//   }
//   int WaitNonZero() OVC_EXCLUDES(mu_) {
//     MutexLock lock(mu_);
//     while (value_ == 0) ready_.Wait(mu_);  // condition re-checked by the
//     return value_;                         // caller, not a hidden lambda,
//   }                                        // so the analysis sees it

#ifndef OVC_COMMON_MUTEX_H_
#define OVC_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace ovc {

/// A std::mutex the thread-safety analysis can see.
class OVC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() OVC_ACQUIRE() { mu_.lock(); }
  void Unlock() OVC_RELEASE() { mu_.unlock(); }

  /// The wrapped std::mutex, for interop with std primitives (CondVar's
  /// wait path). Callers must already hold this Mutex.
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock over a Mutex (std::lock_guard with annotations).
class OVC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) OVC_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() OVC_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Deliberately has no predicate
/// overload: `while (!cond) cv.Wait(mu);` keeps the condition check in the
/// caller's body, where the analysis knows the lock is held (a predicate
/// lambda would be analyzed as an unlocked function).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and re-acquires `mu`. Spurious
  /// wakeups happen; always wait in a condition loop.
  void Wait(Mutex& mu) OVC_REQUIRES(mu) {
    // Adopt the caller's locked mutex for the wait, then release ownership
    // back without unlocking: the Mutex is held again when Wait returns,
    // exactly as the REQUIRES contract states.
    std::unique_lock<std::mutex> lock(mu.native_handle(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ovc

#endif  // OVC_COMMON_MUTEX_H_
