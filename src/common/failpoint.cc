#include "common/failpoint.h"

#if OVC_FAILPOINTS_ENABLED

#include <unordered_map>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ovc {
namespace failpoint {

namespace {

struct ArmedPoint {
  uint64_t skip_first = 0;
  uint64_t fail_times = 0;
  uint64_t hits = 0;
};

struct Registry {
  Mutex mu;
  std::unordered_map<std::string, ArmedPoint> points OVC_GUARDED_BY(mu);
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace

void Arm(const std::string& name, uint64_t skip_first, uint64_t fail_times) {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  r.points[name] = ArmedPoint{skip_first, fail_times, 0};
}

void Disarm(const std::string& name) {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  r.points.erase(name);
}

void DisarmAll() {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  r.points.clear();
}

uint64_t Hits(const std::string& name) {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.hits;
}

bool ShouldFail(const char* name) {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  auto it = r.points.find(name);
  if (it == r.points.end()) return false;
  ArmedPoint& p = it->second;
  const uint64_t hit = p.hits++;
  if (hit < p.skip_first) return false;
  // kAlways saturates instead of overflowing skip_first + fail_times.
  const bool fire =
      p.fail_times == kAlways || hit - p.skip_first < p.fail_times;
  if (fire) {
    OVC_METRIC_COUNTER("failpoint.injected",
                       "Failures injected by armed failpoints")
        .Increment();
  }
  return fire;
}

}  // namespace failpoint
}  // namespace ovc

#endif  // OVC_FAILPOINTS_ENABLED
