// Cross-thread query tracing: scoped spans exported as Chrome trace JSON.
//
// EXPLAIN ANALYZE (PR 6) attributes time to plan nodes after the fact; a
// trace shows *when* things happened -- which merge level overlapped which
// producer thread, where a spilled retry stalled the pipeline. A span is a
// named [start, end) interval on one thread:
//
//   void SqlSession::Run(...) {
//     OVC_TRACE_SPAN("sql.statement");    // closes at scope exit
//     ...
//   }
//
// Spans nest per thread through a thread-local "current span" (each new
// span's parent), and nest *across* threads by explicit context handoff:
// the thread that spawns a worker captures its context and the worker
// adopts it, so exchange producer spans parent under the consumer's plan
// span even though they run on different threads:
//
//   trace::ThreadContext ctx = trace::CaptureContext();   // consumer
//   std::thread([ctx] {
//     trace::ScopedThreadContext adopt(ctx);              // producer
//     OVC_TRACE_SPAN("exchange.producer");                // parented right
//     ...
//   });
//
// Cost discipline: tracing is globally off by default; an inactive span is
// one relaxed atomic load and no stores. When on, closing a span appends
// one event to a *thread-local* buffer (no lock); buffers flush into the
// central store when full, at thread exit, and at export. Export produces
// the Chrome trace_event JSON array format -- complete ("ph":"X") events
// with microsecond timestamps -- loadable directly in chrome://tracing or
// Perfetto. Span names are registered in docs/OBSERVABILITY.md and kept in
// sync by ovclint OVC-L008/L009, like failpoints and metrics.

#ifndef OVC_COMMON_TRACE_H_
#define OVC_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace ovc::trace {

/// Global switch. Enable() clears any previous trace and starts a new one;
/// Disable() stops collection (already-buffered events stay exportable).
void Enable();
void Disable();
bool Enabled();

/// Serializes every collected event (flushing the calling thread's buffer)
/// as a Chrome trace_event JSON object: {"traceEvents":[...]}. Threads that
/// still hold unflushed buffers are included only after they exit or fill
/// their buffer -- in this codebase worker threads are always joined before
/// export, so exports see every span.
std::string ExportJson();

/// A span's identity plus the query it belongs to, for cross-thread
/// parenting. Zero ids mean "no active span / query".
struct ThreadContext {
  uint64_t span_id = 0;
  uint64_t query_id = 0;
};

/// The calling thread's current context (to hand to a worker thread).
ThreadContext CaptureContext();

/// Adopts a captured context as this thread's ambient parent for the
/// lifetime of the object (restores the previous context on destruction).
class ScopedThreadContext {
 public:
  explicit ScopedThreadContext(ThreadContext ctx);
  ~ScopedThreadContext();
  ScopedThreadContext(const ScopedThreadContext&) = delete;
  ScopedThreadContext& operator=(const ScopedThreadContext&) = delete;

 private:
  ThreadContext saved_;
};

/// Marks the calling thread's ambient query id (the root statement span
/// does this so every span under it -- any thread, via context handoff --
/// carries the same query id in its args).
class ScopedQueryId {
 public:
  explicit ScopedQueryId(uint64_t query_id);
  ~ScopedQueryId();
  ScopedQueryId(const ScopedQueryId&) = delete;
  ScopedQueryId& operator=(const ScopedQueryId&) = delete;

 private:
  uint64_t saved_;
};

/// RAII span implementation behind OVC_TRACE_SPAN. `name` must be a string
/// literal (stored by pointer until export).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// This span's id (0 when tracing was off at construction). The root
  /// statement span feeds this to ScopedQueryId.
  uint64_t id() const { return id_; }

 private:
  const char* name_;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  uint64_t start_ticks_ = 0;
};

}  // namespace ovc::trace

#define OVC_TRACE_CONCAT2(a, b) a##b
#define OVC_TRACE_CONCAT(a, b) OVC_TRACE_CONCAT2(a, b)
/// Opens a span that closes at the end of the enclosing scope. The name
/// must be a dotted.lowercase string literal registered in
/// docs/OBSERVABILITY.md (ovclint OVC-L008/L009).
#define OVC_TRACE_SPAN(name) \
  ::ovc::trace::Span OVC_TRACE_CONCAT(ovc_trace_span_, __COUNTER__)(name)
/// Like OVC_TRACE_SPAN but names the variable, for callers that need the
/// span's id() (the root statement span feeds it to ScopedQueryId). Spans
/// must go through one of these macros -- ovclint extracts the name from
/// the macro argument list for the docs-registry sync.
#define OVC_TRACE_SPAN_VAR(var, name) ::ovc::trace::Span var(name)

#endif  // OVC_COMMON_TRACE_H_
