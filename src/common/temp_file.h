// Temporary-file management for spill runs.
//
// External sort, hash aggregation, and hash join spill intermediate data to
// "temporary storage" (paper, Section 6). This layer creates real files
// under a per-process scratch directory and deletes them when released.

#ifndef OVC_COMMON_TEMP_FILE_H_
#define OVC_COMMON_TEMP_FILE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace ovc {

/// Hands out unique temporary file paths under a scratch directory and
/// removes the directory on destruction. One instance is typically shared
/// per query (or per test).
///
/// Serving processes nest managers: the server owns one *root* manager
/// (one scratch tree for the whole process) and every session gets its own
/// *sub-manager* inside it. The first-error slot below is per-manager
/// state, so sub-managers are what keeps error reporting per-query: a
/// single process-wide manager shared by concurrent executors would let
/// query A's spill failure fail query B (RecordError lands in the shared
/// slot) and query B's pre-run ClearError wipe query A's pending error.
/// tests/server_test.cc pins this isolation.
class TempFileManager {
 public:
  /// Creates a fresh scratch directory under the system temp dir (or under
  /// `base_dir` if non-empty). Aborts if the directory cannot be created.
  explicit TempFileManager(const std::string& base_dir = "");

  /// Creates a sub-manager: a scratch directory nested inside `parent`'s,
  /// with its own path counter and its own first-error slot. The parent
  /// must outlive the sub-manager (the server's root manager outlives
  /// every connection). Cheap: one mkdir, no temp-dir probing.
  explicit TempFileManager(TempFileManager* parent);

  /// Removes the scratch directory and everything in it.
  ~TempFileManager();

  TempFileManager(const TempFileManager&) = delete;
  TempFileManager& operator=(const TempFileManager&) = delete;

  /// Returns a unique path (the file is not created). `tag` is embedded in
  /// the name for debuggability, e.g. "run", "hash-partition". Thread-safe:
  /// parallel worker pipelines spill through one shared manager.
  std::string NewPath(const std::string& tag);

  /// The scratch directory this manager owns.
  const std::string& dir() const { return dir_; }

  /// Deferred-error slot: spill paths deep inside operators (where Next()
  /// cannot return a Status) record their first non-retryable I/O error
  /// here and degrade to producing no further output; the plan executor
  /// checks the slot after the run and surfaces the error to the session
  /// (a clean SqlError instead of an abort). Keeps only the first error.
  /// Thread-safe: parallel worker pipelines share one manager.
  void RecordError(const Status& status) OVC_EXCLUDES(error_mu_);
  /// The first recorded error since the last ClearError (Ok when none).
  Status first_error() const OVC_EXCLUDES(error_mu_);
  /// Resets the slot (the executor clears it before each run).
  void ClearError() OVC_EXCLUDES(error_mu_);

 private:
  std::string dir_;
  std::atomic<uint64_t> next_id_{0};
  mutable Mutex error_mu_;
  Status first_error_ OVC_GUARDED_BY(error_mu_) = Status::Ok();
};

/// Buffered sequential writer over a temporary file.
class FileWriter {
 public:
  FileWriter() = default;
  ~FileWriter();
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  /// Opens `path` for writing, truncating any existing file. Transient
  /// failures (EINTR/EAGAIN, or the "tempfile.open" failpoint) are retried
  /// with exponential backoff before reporting kIoError.
  Status Open(const std::string& path);
  /// Appends `len` bytes. Transient failures (and the "tempfile.write"
  /// failpoint) are retried like Open.
  Status Write(const void* data, size_t len);
  /// Appends a little-endian 64-bit value.
  Status WriteU64(uint64_t v) { return Write(&v, sizeof(v)); }
  /// Appends a little-endian 32-bit value.
  Status WriteU32(uint32_t v) { return Write(&v, sizeof(v)); }
  /// Flushes and closes; returns the first error encountered.
  Status Close();

  /// Bytes written so far.
  uint64_t bytes_written() const { return bytes_written_; }
  /// Transient failures recovered by retrying (callers fold this into
  /// QueryCounters::io_retries).
  uint64_t retries() const { return retries_; }

 private:
  void* file_ = nullptr;  // FILE*
  uint64_t bytes_written_ = 0;
  uint64_t retries_ = 0;
  std::string path_;
};

/// Buffered sequential reader over a temporary file.
class FileReader {
 public:
  FileReader() = default;
  ~FileReader();
  FileReader(const FileReader&) = delete;
  FileReader& operator=(const FileReader&) = delete;

  /// Opens `path` for reading.
  Status Open(const std::string& path);
  /// Reads exactly `len` bytes; kIoError on short read.
  Status Read(void* data, size_t len);
  /// Reads a little-endian 64-bit value.
  Status ReadU64(uint64_t* v) { return Read(v, sizeof(*v)); }
  /// Reads a little-endian 32-bit value.
  Status ReadU32(uint32_t* v) { return Read(v, sizeof(*v)); }
  /// True once the reader has consumed the whole file.
  bool AtEof();
  /// Closes the file.
  Status Close();

 private:
  void* file_ = nullptr;  // FILE*
  std::string path_;
};

}  // namespace ovc

#endif  // OVC_COMMON_TEMP_FILE_H_
