// Instrumentation counters.
//
// The paper's cost model is stated in terms of *column value comparisons*
// (bounded by N x K, with no log N factor) and *code comparisons* (folded
// into other work, effectively free). Every comparator and operator in this
// library counts its work through a QueryCounters instance so that tests can
// assert the paper's bounds and benchmarks can report comparison counts next
// to wall-clock time.

#ifndef OVC_COMMON_COUNTERS_H_
#define OVC_COMMON_COUNTERS_H_

#include <cstdint>
#include <string>

namespace ovc {

/// Work counters threaded through comparators, operators, and storage.
/// Not thread-safe; each execution thread owns its own instance and parallel
/// operators (exchange) aggregate at the end.
struct QueryCounters {
  /// Individual column-value comparisons (the expensive kind the paper
  /// bounds by N x K).
  uint64_t column_comparisons = 0;
  /// Integer comparisons of whole offset-value codes (the cheap kind;
  /// "practically free" when folded into validity tests).
  uint64_t code_comparisons = 0;
  /// Full row comparisons requested (each may cost several column
  /// comparisons).
  uint64_t row_comparisons = 0;
  /// Hash computations over key columns (hash-based baselines).
  uint64_t hash_computations = 0;
  /// Rows written to temporary storage (spill volume, Figure 6 discussion).
  uint64_t rows_spilled = 0;
  /// Bytes written to temporary storage.
  uint64_t bytes_spilled = 0;
  /// Rows that bypassed merge logic because their code marked them as
  /// duplicates of the previous winner (Section 5).
  uint64_t merge_bypass_rows = 0;
  /// Grace hash joins whose build side overflowed its memory budget and
  /// degraded to the sort+merge continuation mid-query.
  uint64_t hash_join_fallbacks = 0;
  /// Hash aggregations whose group table overflowed and degraded to
  /// in-sort aggregation mid-query.
  uint64_t hash_agg_fallbacks = 0;
  /// Transient temp-file I/O failures recovered by retry-with-backoff.
  uint64_t io_retries = 0;

  /// Adds all counts from `other` into this instance.
  void Merge(const QueryCounters& other) {
    column_comparisons += other.column_comparisons;
    code_comparisons += other.code_comparisons;
    row_comparisons += other.row_comparisons;
    hash_computations += other.hash_computations;
    rows_spilled += other.rows_spilled;
    bytes_spilled += other.bytes_spilled;
    merge_bypass_rows += other.merge_bypass_rows;
    hash_join_fallbacks += other.hash_join_fallbacks;
    hash_agg_fallbacks += other.hash_agg_fallbacks;
    io_retries += other.io_retries;
  }

  /// Resets all counts to zero.
  void Reset() { *this = QueryCounters(); }

  /// Per-field difference `after - before`. Counters are monotone within a
  /// session, so snapshotting before a run and diffing after yields that
  /// run's exact resource slice (QueryResult::counters_delta).
  static QueryCounters Delta(const QueryCounters& before,
                             const QueryCounters& after) {
    QueryCounters d;
    d.column_comparisons = after.column_comparisons - before.column_comparisons;
    d.code_comparisons = after.code_comparisons - before.code_comparisons;
    d.row_comparisons = after.row_comparisons - before.row_comparisons;
    d.hash_computations = after.hash_computations - before.hash_computations;
    d.rows_spilled = after.rows_spilled - before.rows_spilled;
    d.bytes_spilled = after.bytes_spilled - before.bytes_spilled;
    d.merge_bypass_rows = after.merge_bypass_rows - before.merge_bypass_rows;
    d.hash_join_fallbacks = after.hash_join_fallbacks - before.hash_join_fallbacks;
    d.hash_agg_fallbacks = after.hash_agg_fallbacks - before.hash_agg_fallbacks;
    d.io_retries = after.io_retries - before.io_retries;
    return d;
  }

  /// One-line human-readable summary for examples and benchmarks.
  std::string ToString() const {
    return "column_cmp=" + std::to_string(column_comparisons) +
           " code_cmp=" + std::to_string(code_comparisons) +
           " row_cmp=" + std::to_string(row_comparisons) +
           " hash=" + std::to_string(hash_computations) +
           " rows_spilled=" + std::to_string(rows_spilled) +
           " bytes_spilled=" + std::to_string(bytes_spilled) +
           " merge_bypass=" + std::to_string(merge_bypass_rows) +
           " fallbacks=" +
           std::to_string(hash_join_fallbacks + hash_agg_fallbacks) +
           " io_retries=" + std::to_string(io_retries);
  }

  friend bool operator==(const QueryCounters& a, const QueryCounters& b) {
    return a.column_comparisons == b.column_comparisons &&
           a.code_comparisons == b.code_comparisons &&
           a.row_comparisons == b.row_comparisons &&
           a.hash_computations == b.hash_computations &&
           a.rows_spilled == b.rows_spilled &&
           a.bytes_spilled == b.bytes_spilled &&
           a.merge_bypass_rows == b.merge_bypass_rows &&
           a.hash_join_fallbacks == b.hash_join_fallbacks &&
           a.hash_agg_fallbacks == b.hash_agg_fallbacks &&
           a.io_retries == b.io_retries;
  }
  friend bool operator!=(const QueryCounters& a, const QueryCounters& b) {
    return !(a == b);
  }
};

}  // namespace ovc

#endif  // OVC_COMMON_COUNTERS_H_
