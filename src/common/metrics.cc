#include "common/metrics.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace ovc::metrics {

namespace {

/// JSON string escaping, same dialect as QueryProfile::ToJson.
void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(ch);
        }
    }
  }
  out->push_back('"');
}

/// Unit suffix implied by the metric name ("query.latency_us" -> "us").
/// Time-valued snapshot fields carry it so check_docs.sh can normalize
/// replayed `.metrics` fences the way it normalizes profile `?ms` times.
const char* UnitSuffix(std::string_view name) {
  auto ends_with = [&name](std::string_view suffix) {
    return name.size() >= suffix.size() &&
           name.substr(name.size() - suffix.size()) == suffix;
  };
  if (ends_with("_ns")) return "ns";
  if (ends_with("_us")) return "us";
  if (ends_with("_ms")) return "ms";
  return "";
}

std::string FormatValue(double v, const char* unit) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.1f%s", v, unit);
  return buf;
}

/// Bucket index for a sample: 0 holds value 0, bucket i>=1 holds
/// [2^(i-1), 2^i).
uint32_t BucketIndex(uint64_t value) {
  if (value == 0) return 0;
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<uint32_t>(64 - __builtin_clzll(value));
#else
  uint32_t bits = 0;
  while (value != 0) {
    value >>= 1;
    ++bits;
  }
  return bits;
#endif
}

}  // namespace

uint32_t ThreadShardIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

uint64_t Histogram::bucket_upper_bound(uint32_t i) {
  if (i == 0) return 0;
  if (i >= 64) return ~uint64_t{0};
  return (uint64_t{1} << i) - 1;
}

double Histogram::Percentile(double p) const {
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  // Snapshot the buckets once; racing Record() calls can make count()
  // disagree with the bucket sum, so derive the total from this snapshot.
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (uint32_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  const double target = p * static_cast<double>(total);
  double cumulative = 0;
  for (uint32_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    const double next = cumulative + static_cast<double>(counts[i]);
    if (next >= target) {
      // Interpolate inside [lo, hi): bucket 0 is the point value 0.
      if (i == 0) return 0;
      const double lo = i == 1 ? 1.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
      const double hi = std::ldexp(1.0, static_cast<int>(i));
      const double fraction =
          (target - cumulative) / static_cast<double>(counts[i]);
      return lo + fraction * (hi - lo);
    }
    cumulative = next;
  }
  return std::ldexp(1.0, 64);  // unreachable: total > 0 finds a bucket
}

MetricRegistry& MetricRegistry::Instance() {
  // Leaked singleton (never destroyed): metric references handed out to
  // function-local statics must stay valid through every exit path.
  static MetricRegistry* instance = new MetricRegistry();
  return *instance;
}

MetricRegistry::Entry& MetricRegistry::GetOrCreate(std::string_view name,
                                                   std::string_view help,
                                                   Kind kind) {
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    // Re-registration must agree on the kind; the name is the identity.
    OVC_CHECK(it->second.kind == kind);
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.help = std::string(help);
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
  }
  return metrics_.emplace(std::string(name), std::move(entry)).first->second;
}

Counter& MetricRegistry::GetCounter(std::string_view name,
                                    std::string_view help) {
  MutexLock lock(mu_);
  return *GetOrCreate(name, help, Kind::kCounter).counter;
}

Gauge& MetricRegistry::GetGauge(std::string_view name, std::string_view help) {
  MutexLock lock(mu_);
  return *GetOrCreate(name, help, Kind::kGauge).gauge;
}

Histogram& MetricRegistry::GetHistogram(std::string_view name,
                                        std::string_view help) {
  MutexLock lock(mu_);
  return *GetOrCreate(name, help, Kind::kHistogram).histogram;
}

std::string MetricRegistry::TextSnapshot() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        out += "counter " + name + " " + std::to_string(entry.counter->value());
        break;
      case Kind::kGauge:
        out += "gauge " + name + " " + std::to_string(entry.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        const char* unit = UnitSuffix(name);
        out += "histogram " + name + " count=" + std::to_string(h.count()) +
               " sum=" + FormatValue(static_cast<double>(h.sum()), unit) +
               " p50=" + FormatValue(h.Percentile(0.50), unit) +
               " p95=" + FormatValue(h.Percentile(0.95), unit) +
               " p99=" + FormatValue(h.Percentile(0.99), unit);
        break;
      }
    }
    out.push_back('\n');
  }
  return out;
}

std::string MetricRegistry::JsonSnapshot() const {
  MutexLock lock(mu_);
  std::string out = "{\"metrics\":[";
  bool first = true;
  char buf[64];
  for (const auto& [name, entry] : metrics_) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    AppendJsonString(name, &out);
    out += ",\"help\":";
    AppendJsonString(entry.help, &out);
    switch (entry.kind) {
      case Kind::kCounter:
        out += ",\"kind\":\"counter\",\"value\":" +
               std::to_string(entry.counter->value());
        break;
      case Kind::kGauge:
        out += ",\"kind\":\"gauge\",\"value\":" +
               std::to_string(entry.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out += ",\"kind\":\"histogram\",\"count\":" +
               std::to_string(h.count()) + ",\"sum\":" +
               std::to_string(h.sum());
        std::snprintf(buf, sizeof(buf), ",\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f",
                      h.Percentile(0.50), h.Percentile(0.95),
                      h.Percentile(0.99));
        out += buf;
        out += ",\"buckets\":[";
        bool first_bucket = true;
        for (uint32_t i = 0; i < Histogram::kBuckets; ++i) {
          const uint64_t n = h.bucket_count(i);
          if (n == 0) continue;
          if (!first_bucket) out.push_back(',');
          first_bucket = false;
          out += "{\"le\":" + std::to_string(Histogram::bucket_upper_bound(i)) +
                 ",\"count\":" + std::to_string(n) + "}";
        }
        out += "]";
        break;
      }
    }
    out.push_back('}');
  }
  out += "]}";
  return out;
}

}  // namespace ovc::metrics
