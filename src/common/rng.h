// Deterministic pseudo-random number generation for workload synthesis.
//
// Tests and benchmarks must be reproducible run-to-run, so all synthetic
// data generation uses this explicitly seeded engine rather than
// std::random_device.

#ifndef OVC_COMMON_RNG_H_
#define OVC_COMMON_RNG_H_

#include <cstdint>

#include "common/check.h"

namespace ovc {

/// SplitMix64: tiny, fast, high-quality 64-bit generator. Deterministic for
/// a given seed across platforms (unlike std::mt19937 distributions).
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same sequence.
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit pseudo-random value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Returns a value uniform in [0, bound). `bound` must be positive.
  uint64_t Uniform(uint64_t bound) {
    OVC_DCHECK(bound > 0);
    return Next() % bound;
  }

  /// Returns a value uniform in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    OVC_DCHECK(lo <= hi);
    return lo + Uniform(hi - lo + 1);
  }

  /// Returns true with probability `numerator / denominator`.
  bool Chance(uint64_t numerator, uint64_t denominator) {
    OVC_DCHECK(denominator > 0);
    return Uniform(denominator) < numerator;
  }

 private:
  uint64_t state_;
};

}  // namespace ovc

#endif  // OVC_COMMON_RNG_H_
