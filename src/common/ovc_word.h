// The offset-value code word type.
//
// Lives in common/ (below both row/ and core/) because the row containers
// (row/row_block.h, row/row_buffer.h) store code arrays alongside rows
// while the codec algebra over those words lives in core/ovc.h, which in
// turn needs row/schema.h -- keeping the alias here is what keeps the
// layer graph (common -> row -> core -> ...) acyclic. ovclint rule
// OVC-L001 enforces that order from the include graph.

#ifndef OVC_COMMON_OVC_WORD_H_
#define OVC_COMMON_OVC_WORD_H_

#include <cstdint>

namespace ovc {

/// An offset-value code word. Plain alias: codes live in hot arrays (tree
/// nodes, run files) and must stay trivially copyable 64-bit integers.
/// Layout and algebra: core/ovc.h.
using Ovc = uint64_t;

}  // namespace ovc

#endif  // OVC_COMMON_OVC_WORD_H_
