#include "common/trace.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/profile.h"
#include "common/thread_annotations.h"

namespace ovc::trace {

namespace {

/// One closed span. `name` points at a string literal (OVC_TRACE_SPAN
/// contract), so events store no owned strings.
struct Event {
  const char* name;
  uint64_t start_ticks;
  uint64_t dur_ticks;
  uint32_t tid;
  uint64_t span;
  uint64_t parent;
  uint64_t query;
};

/// Flush the thread-local buffer into the store at this size.
constexpr size_t kFlushEvents = 256;
/// Hard cap on stored events per trace; beyond it events are counted into
/// the trace.events_dropped metric instead of growing without bound.
constexpr size_t kMaxStoredEvents = size_t{1} << 20;

struct Store {
  std::atomic<bool> enabled{false};
  /// Bumped by Enable(); buffers tagged with an older generation discard
  /// their events instead of leaking them into the new trace.
  std::atomic<uint64_t> generation{0};
  std::atomic<uint64_t> next_span_id{1};
  std::atomic<uint32_t> next_tid{1};
  uint64_t base_ticks = 0;  // written by Enable() before `enabled` flips

  Mutex mu;
  std::vector<Event> events OVC_GUARDED_BY(mu);
};

Store& GetStore() {
  static Store* store = new Store();  // leaked: outlives thread_local dtors
  return *store;
}

struct ThreadLocalContext {
  uint64_t span = 0;
  uint64_t query = 0;
};

ThreadLocalContext& Ctx() {
  thread_local ThreadLocalContext ctx;
  return ctx;
}

uint32_t ThreadTid() {
  thread_local const uint32_t tid =
      GetStore().next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

/// Per-thread event buffer; its destructor flushes at thread exit, so a
/// joined worker's spans are visible to any later export.
struct ThreadBuffer {
  std::vector<Event> events;
  uint64_t generation = 0;

  ~ThreadBuffer() { Flush(); }

  void Flush() {
    if (events.empty()) return;
    Store& store = GetStore();
    {
      MutexLock lock(store.mu);
      if (generation == store.generation.load(std::memory_order_relaxed)) {
        size_t accepted = events.size();
        const size_t room = store.events.size() < kMaxStoredEvents
                                ? kMaxStoredEvents - store.events.size()
                                : 0;
        if (accepted > room) accepted = room;
        store.events.insert(store.events.end(), events.begin(),
                            events.begin() + static_cast<ptrdiff_t>(accepted));
        const size_t dropped = events.size() - accepted;
        if (dropped > 0) {
          OVC_METRIC_COUNTER("trace.events_dropped",
                             "Trace events discarded because the per-trace "
                             "event cap was reached")
              .Add(dropped);
        }
      }
    }
    events.clear();
  }

  void Append(const Event& e) {
    Store& store = GetStore();
    const uint64_t current =
        store.generation.load(std::memory_order_relaxed);
    if (generation != current) {
      events.clear();  // stale events belong to a previous trace
      generation = current;
    }
    events.push_back(e);
    if (events.size() >= kFlushEvents) Flush();
  }
};

ThreadBuffer& Buffer() {
  thread_local ThreadBuffer buffer;
  return buffer;
}

}  // namespace

void Enable() {
  Store& store = GetStore();
  MutexLock lock(store.mu);
  store.events.clear();
  store.generation.fetch_add(1, std::memory_order_relaxed);
  store.base_ticks = ProfileTicks();
  store.enabled.store(true, std::memory_order_release);
}

void Disable() {
  GetStore().enabled.store(false, std::memory_order_release);
}

bool Enabled() {
  return GetStore().enabled.load(std::memory_order_acquire);
}

ThreadContext CaptureContext() {
  const ThreadLocalContext& ctx = Ctx();
  return ThreadContext{ctx.span, ctx.query};
}

ScopedThreadContext::ScopedThreadContext(ThreadContext ctx) {
  ThreadLocalContext& tls = Ctx();
  saved_ = ThreadContext{tls.span, tls.query};
  tls.span = ctx.span_id;
  tls.query = ctx.query_id;
}

ScopedThreadContext::~ScopedThreadContext() {
  ThreadLocalContext& tls = Ctx();
  tls.span = saved_.span_id;
  tls.query = saved_.query_id;
}

ScopedQueryId::ScopedQueryId(uint64_t query_id) {
  ThreadLocalContext& tls = Ctx();
  saved_ = tls.query;
  tls.query = query_id;
}

ScopedQueryId::~ScopedQueryId() { Ctx().query = saved_; }

Span::Span(const char* name) : name_(name) {
  if (!Enabled()) return;
  Store& store = GetStore();
  id_ = store.next_span_id.fetch_add(1, std::memory_order_relaxed);
  ThreadLocalContext& ctx = Ctx();
  parent_ = ctx.span;
  ctx.span = id_;
  start_ticks_ = ProfileTicks();
}

Span::~Span() {
  if (id_ == 0) return;
  const uint64_t end_ticks = ProfileTicks();
  ThreadLocalContext& ctx = Ctx();
  const uint64_t query = ctx.query;
  ctx.span = parent_;
  // Disabled mid-span: the nesting context is restored above, but the
  // event is dropped (the trace it belonged to is over).
  if (!Enabled()) return;
  Buffer().Append(Event{name_, start_ticks_, end_ticks - start_ticks_,
                        ThreadTid(), id_, parent_, query});
}

std::string ExportJson() {
  Store& store = GetStore();
  Buffer().Flush();  // the exporting thread's own spans
  MutexLock lock(store.mu);
  std::string out = "{\"traceEvents\":[";
  char buf[96];
  bool first = true;
  for (const Event& e : store.events) {
    if (!first) out.push_back(',');
    first = false;
    const uint64_t rel =
        e.start_ticks >= store.base_ticks ? e.start_ticks - store.base_ticks
                                          : 0;
    const double ts_us = static_cast<double>(TicksToNs(rel)) / 1e3;
    const double dur_us = static_cast<double>(TicksToNs(e.dur_ticks)) / 1e3;
    out += "{\"name\":\"";
    out += e.name;  // string literal: dotted.lowercase, no escaping needed
    out += "\",\"ph\":\"X\"";
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f", ts_us,
                  dur_us);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ",\"pid\":1,\"tid\":%u,\"args\":{\"span\":%llu,"
                  "\"parent\":%llu,\"query\":%llu}}",
                  e.tid, static_cast<unsigned long long>(e.span),
                  static_cast<unsigned long long>(e.parent),
                  static_cast<unsigned long long>(e.query));
    out += buf;
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace ovc::trace
