// Clang thread-safety-analysis annotation macros.
//
// These wrap Clang's capability analysis attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so that the
// locking contracts of the engine's shared structures -- the exchange
// machinery in exec/exchange.h, TempFileManager's first-error slot, the
// failpoint registry -- are machine-checked at compile time instead of
// living only in comments and TSan runs. CI's lint job builds with
// `-Werror=thread-safety`; on GCC (the default local toolchain) every
// macro expands to nothing, so the annotations are free documentation.
//
// Conventions (enforced by review, documented in docs/STATIC_ANALYSIS.md):
//  * Shared mutable state uses common/mutex.h's annotated Mutex, never a
//    bare std::mutex -- the analysis cannot see through libstdc++'s
//    unannotated std::mutex/std::lock_guard.
//  * Every member a mutex protects carries OVC_GUARDED_BY(mu_).
//  * Private helpers that assume the lock is held carry OVC_REQUIRES(mu_);
//    public entry points that take the lock carry OVC_EXCLUDES(mu_).

#ifndef OVC_COMMON_THREAD_ANNOTATIONS_H_
#define OVC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define OVC_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define OVC_THREAD_ANNOTATION_(x)  // no-op on GCC/MSVC
#endif

/// Marks a type as a lockable capability (mutexes).
#define OVC_CAPABILITY(x) OVC_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor (lock guards).
#define OVC_SCOPED_CAPABILITY OVC_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define OVC_GUARDED_BY(x) OVC_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex.
#define OVC_PT_GUARDED_BY(x) OVC_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function that must be called with the given mutex(es) held.
#define OVC_REQUIRES(...) \
  OVC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function that acquires the given mutex(es) and does not release them.
#define OVC_ACQUIRE(...) \
  OVC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function that releases the given mutex(es).
#define OVC_RELEASE(...) \
  OVC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function that must be called *without* the given mutex(es) held
/// (deadlock documentation for public entry points that take the lock).
#define OVC_EXCLUDES(...) OVC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the given capability.
#define OVC_RETURN_CAPABILITY(x) OVC_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only with a
/// comment explaining why the analysis cannot follow the code.
#define OVC_NO_THREAD_SAFETY_ANALYSIS \
  OVC_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // OVC_COMMON_THREAD_ANNOTATIONS_H_
