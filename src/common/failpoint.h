// Deterministic fault injection for robustness tests.
//
// A *failpoint* is a named site in production code where a test can inject
// a failure without real resource exhaustion: the site asks
// OVC_FAILPOINT("name") and takes its error path when a test armed that
// name. Arming is counter-based -- skip the first N evaluations, then fail
// the next M -- so a test can target "the third temp-file write of this
// query" deterministically, with no timing or environment dependence.
//
// Cost discipline: failpoints are compiled in for Debug builds and any
// build defining OVC_ENABLE_FAILPOINTS (the CMake option of the same name;
// CI's TSan job turns it on). In plain Release builds OVC_FAILPOINT(name)
// is the literal constant `false` -- zero instructions on the hot path,
// priced by bench/bench_failpoint_overhead.cc exactly like the profiling
// wrapper's overhead budget.
//
// Registry (every name compiled into the tree; see docs/ROBUSTNESS.md):
//   tempfile.open                 FileWriter::Open fails (retryable)
//   tempfile.write                FileWriter::Write fails (retryable)
//   grace_hash_join.force_overflow   build-side budget check reports full
//   hash_aggregate.force_overflow    group-table budget check reports full

#ifndef OVC_COMMON_FAILPOINT_H_
#define OVC_COMMON_FAILPOINT_H_

#include <cstdint>
#include <string>

#if !defined(NDEBUG) || defined(OVC_ENABLE_FAILPOINTS)
#define OVC_FAILPOINTS_ENABLED 1
#else
#define OVC_FAILPOINTS_ENABLED 0
#endif

namespace ovc {
namespace failpoint {

inline constexpr uint64_t kAlways = ~uint64_t{0};

#if OVC_FAILPOINTS_ENABLED

/// Arms `name`: the next `skip_first` evaluations pass, the `fail_times`
/// after that fail, everything later passes again. Re-arming resets the
/// counters. Thread-safe (one mutex; failpoints are a test facility).
void Arm(const std::string& name, uint64_t skip_first = 0,
         uint64_t fail_times = kAlways);
/// Disarms `name`; evaluations pass and stop counting.
void Disarm(const std::string& name);
/// Disarms everything (test teardown).
void DisarmAll();
/// Evaluations of `name` since it was armed (0 when not armed).
uint64_t Hits(const std::string& name);
/// The hot-path check behind OVC_FAILPOINT. Unarmed names return false.
bool ShouldFail(const char* name);

#else

inline void Arm(const std::string&, uint64_t = 0, uint64_t = kAlways) {}
inline void Disarm(const std::string&) {}
inline void DisarmAll() {}
inline uint64_t Hits(const std::string&) { return 0; }
inline bool ShouldFail(const char*) { return false; }

#endif

}  // namespace failpoint
}  // namespace ovc

/// True when the named failpoint is armed and scheduled to fire now.
/// A literal `false` (no call, no branch input) in builds without
/// failpoints, so production hot paths pay nothing.
#if OVC_FAILPOINTS_ENABLED
#define OVC_FAILPOINT(name) (::ovc::failpoint::ShouldFail(name))
#else
#define OVC_FAILPOINT(name) (false)
#endif

#endif  // OVC_COMMON_FAILPOINT_H_
