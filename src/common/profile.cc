#include "common/profile.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/check.h"

namespace ovc {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Ticks per nanosecond, calibrated once against steady_clock over a short
/// busy-wait. rdtsc on any machine this targets is invariant (constant rate,
/// synchronized across cores), so one process-wide ratio is exact enough
/// for millisecond-rendered profiles.
double TicksPerNs() {
  static const double ratio = [] {
    const uint64_t ns0 = SteadyNowNs();
    const uint64_t t0 = ProfileTicks();
    // ~2ms busy-wait: long enough that clock-read latency is noise.
    while (SteadyNowNs() - ns0 < 2'000'000) {
    }
    const uint64_t ns1 = SteadyNowNs();
    const uint64_t t1 = ProfileTicks();
    const double r = static_cast<double>(t1 - t0) /
                     static_cast<double>(ns1 - ns0);
    return r > 0 ? r : 1.0;
  }();
  return ratio;
}

uint64_t RoundU64(double v) {
  if (v < 0.0) v = 0.0;
  if (v > 1e18) v = 1e18;
  return static_cast<uint64_t>(std::llround(v));
}

std::string FormatMs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms",
                static_cast<double>(ns) / 1e6);
  return buf;
}

std::string FormatQ(double q) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", q);
  return buf;
}

/// Clamped q-error: perfect when both sides round to the same >= 1 value.
double QErrorOf(double est, double actual) {
  const double e = est < 1.0 ? 1.0 : est;
  const double a = actual < 1.0 ? 1.0 : actual;
  return e > a ? e / a : a / e;
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonMs(const char* key, uint64_t ns, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.3f", key,
                static_cast<double>(ns) / 1e6);
  *out += buf;
}

}  // namespace

uint64_t TicksToNs(uint64_t ticks) {
  return static_cast<uint64_t>(static_cast<double>(ticks) / TicksPerNs());
}

int QueryProfile::AddNode() {
  nodes_.emplace_back();
  return static_cast<int>(nodes_.size()) - 1;
}

void QueryProfile::SetLine(int node, std::string label, double est_rows,
                           double est_cost, std::vector<int> children,
                           std::string table) {
  OVC_CHECK(node >= 0 && node < static_cast<int>(nodes_.size()));
  Node& n = nodes_[node];
  n.label = std::move(label);
  n.est_rows = est_rows;
  n.est_cost = est_cost;
  n.children.clear();
  for (int c : children) {
    if (c >= 0) n.children.push_back(c);
  }
  n.table = std::move(table);
}

OperatorStats* QueryProfile::AddSlice(int node) {
  OVC_CHECK(node >= 0 && node < static_cast<int>(nodes_.size()));
  nodes_[node].slices.push_back(std::make_unique<OperatorStats>());
  return nodes_[node].slices.back().get();
}

QueryCounters QueryProfile::FinishRun(QueryCounters* into, uint64_t wall_ns) {
  QueryCounters rolled;
  for (Node& n : nodes_) {
    n.total.Reset();
    n.has_actuals = !n.slices.empty();
    for (std::unique_ptr<OperatorStats>& slice : n.slices) {
      n.total.Merge(*slice);
      rolled.Merge(slice->counters);
      slice->Reset();
    }
  }
  if (into != nullptr) into->Merge(rolled);
  wall_ns_ = wall_ns;
  ++runs_;
  return rolled;
}

QueryCounters QueryProfile::TreeCounterTotals() const {
  QueryCounters sum;
  if (root_ < 0) return sum;
  std::vector<int> stack = {root_};
  std::vector<bool> seen(nodes_.size(), false);
  while (!stack.empty()) {
    const int i = stack.back();
    stack.pop_back();
    OVC_CHECK(!seen[i]);  // each plan node reachable exactly once
    seen[i] = true;
    sum.Merge(nodes_[i].total.counters);
    for (int c : nodes_[i].children) stack.push_back(c);
  }
  return sum;
}

uint64_t QueryProfile::ActualRows(int node) const {
  const Node& n = nodes_[node];
  if (n.has_actuals) return n.total.rows_out;
  // A slice-less line (elided sort) passes its child's stream through
  // untouched.
  if (n.children.size() == 1) return ActualRows(n.children[0]);
  return 0;
}

uint64_t QueryProfile::ActualNs(int node) const {
  const Node& n = nodes_[node];
  if (n.has_actuals) return TicksToNs(n.total.total_ticks());
  if (n.children.size() == 1) return ActualNs(n.children[0]);
  return 0;
}

double QueryProfile::QError(int node) const {
  return QErrorOf(nodes_[node].est_rows,
                  static_cast<double>(ActualRows(node)));
}

double QueryProfile::WorstQError() const {
  double worst = 1;
  if (runs_ == 0) return worst;
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    const double q = QError(i);
    if (q > worst) worst = q;
  }
  return worst;
}

void QueryProfile::RenderNode(int node, int depth, double worst_q,
                              std::string* out) const {
  const Node& n = nodes_[node];
  const QueryCounters& c = n.total.counters;
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += n.label;
  *out += " {rows=" + std::to_string(RoundU64(n.est_rows)) + "/" +
          std::to_string(ActualRows(node)) +
          " cost=" + std::to_string(RoundU64(n.est_cost)) +
          " time=" + FormatMs(ActualNs(node)) +
          " cmp=" + std::to_string(c.column_comparisons) + "/" +
          std::to_string(c.code_comparisons) +
          " spill=" + std::to_string(c.rows_spilled) + "}";
  if (c.hash_join_fallbacks + c.hash_agg_fallbacks > 0) {
    *out += " !fallback(hash->sort)";
  }
  const double q = QError(node);
  if (q >= 2.0 && q == worst_q) {
    *out += " !worst-q-error(q=" + FormatQ(q) + ")";
  }
  *out += "\n";
  for (int child : n.children) RenderNode(child, depth + 1, worst_q, out);
}

std::string QueryProfile::Render() const {
  std::string out;
  if (root_ < 0) return out;
  RenderNode(root_, 0, WorstQError(), &out);
  out += "-- wall=" + FormatMs(wall_ns_) +
         " worst-q-error=" + FormatQ(WorstQError()) + "\n";
  return out;
}

void QueryProfile::JsonNode(int node, std::string* out) const {
  const Node& n = nodes_[node];
  const QueryCounters& c = n.total.counters;
  *out += "{\"op\":";
  AppendJsonString(n.label, out);
  if (!n.table.empty()) {
    *out += ",\"table\":";
    AppendJsonString(n.table, out);
  }
  *out += ",\"est_rows\":" + std::to_string(RoundU64(n.est_rows)) +
          ",\"est_cost\":" + std::to_string(RoundU64(n.est_cost)) +
          ",\"actual_rows\":" + std::to_string(ActualRows(node)) +
          ",\"batches\":" + std::to_string(n.total.batches_out) + ",";
  AppendJsonMs("time_ms", ActualNs(node), out);
  *out += ",";
  AppendJsonMs("open_ms", TicksToNs(n.total.open_ticks), out);
  *out += ",";
  AppendJsonMs("next_ms", TicksToNs(n.total.scaled_next_ticks()), out);
  *out += ",";
  AppendJsonMs("close_ms", TicksToNs(n.total.close_ticks), out);
  char qbuf[64];
  std::snprintf(qbuf, sizeof(qbuf), ",\"q_error\":%.3f", QError(node));
  *out += qbuf;
  *out += ",\"counters\":{\"column_comparisons\":" +
          std::to_string(c.column_comparisons) +
          ",\"code_comparisons\":" + std::to_string(c.code_comparisons) +
          ",\"row_comparisons\":" + std::to_string(c.row_comparisons) +
          ",\"hash_computations\":" + std::to_string(c.hash_computations) +
          ",\"rows_spilled\":" + std::to_string(c.rows_spilled) +
          ",\"bytes_spilled\":" + std::to_string(c.bytes_spilled) +
          ",\"merge_bypass_rows\":" + std::to_string(c.merge_bypass_rows) +
          ",\"hash_join_fallbacks\":" +
          std::to_string(c.hash_join_fallbacks) +
          ",\"hash_agg_fallbacks\":" + std::to_string(c.hash_agg_fallbacks) +
          ",\"io_retries\":" + std::to_string(c.io_retries) + "}";
  *out += ",\"children\":[";
  for (size_t i = 0; i < n.children.size(); ++i) {
    if (i > 0) *out += ",";
    JsonNode(n.children[i], out);
  }
  *out += "]}";
}

std::string QueryProfile::ToJson() const {
  std::string out = "{";
  AppendJsonMs("wall_ms", wall_ns_, &out);
  out += ",\"runs\":" + std::to_string(runs_);
  char qbuf[64];
  std::snprintf(qbuf, sizeof(qbuf), ",\"worst_q_error\":%.3f", WorstQError());
  out += qbuf;
  out += ",\"plan\":";
  if (root_ >= 0) {
    JsonNode(root_, &out);
  } else {
    out += "null";
  }
  out += "}";
  return out;
}

std::vector<QueryProfile::CardFeedback> QueryProfile::ScanFeedback() const {
  std::vector<CardFeedback> out;
  if (runs_ == 0) return out;
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    const Node& n = nodes_[i];
    if (n.table.empty()) continue;
    CardFeedback fb;
    fb.table = n.table;
    fb.est_rows = n.est_rows;
    fb.actual_rows = static_cast<double>(ActualRows(i));
    fb.q_error = QErrorOf(fb.est_rows, fb.actual_rows);
    out.push_back(std::move(fb));
  }
  return out;
}

}  // namespace ovc
