// Logical query plans and the PlanBuilder front door.
//
// A logical plan describes *what* a query computes: a tree of relational
// operations over leaf table sources. It says nothing about physical
// algorithms -- whether a join runs as merge join or hash join, whether an
// aggregation streams over sorted input, folds into a sort, or hashes, and
// where explicit sorts go, are all decisions of the physical planner
// (plan/physical_plan.h), driven by the order properties inferred here.
//
// Leaf sources declare their order properties up front: a plain buffer is
// unsorted, while scans over sorted storage (in-memory runs, the B-tree,
// the RLE column store, the LSM forest) deliver rows *with offset-value
// codes* at zero comparison cost (Section 4.11) -- the planner's highest-
// value input.

#ifndef OVC_PLAN_LOGICAL_PLAN_H_
#define OVC_PLAN_LOGICAL_PLAN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/aggregate.h"
#include "exec/filter.h"
#include "exec/merge_join.h"
#include "exec/operator.h"
#include "exec/set_operation.h"
#include "plan/cost_model.h"
#include "plan/order_property.h"
#include "row/row_buffer.h"
#include "row/schema.h"
#include "sort/run.h"

namespace ovc {
class BTree;
class RleColumnStore;
class LsmForest;
}  // namespace ovc

namespace ovc::plan {

/// A leaf table: how to create a scan over it, its row layout, and the
/// order property the scan guarantees. The referenced storage must outlive
/// every plan and execution that uses the source.
struct TableSource {
  std::string name;
  const Schema* schema = nullptr;
  OrderProperty order;
  /// Optimizer statistics (row count, distinct key prefixes). The source
  /// constructors below fill row_count from the storage; the SQL catalog
  /// additionally fills key_distinct for generated tables. Either may stay
  /// unknown -- the cost model then falls back to its defaults.
  TableStats stats;
  /// Creates a fresh scan operator (called once per physical plan).
  std::function<std::unique_ptr<Operator>()> factory;
};

/// Unsorted scan over a RowBuffer.
TableSource BufferSource(std::string name, const Schema* schema,
                         const RowBuffer* buffer);
/// Sorted, coded scan over an in-memory run (zero comparison cost).
TableSource RunSource(std::string name, const Schema* schema,
                      const InMemoryRun* run);
/// Sorted, coded scan over a B-tree (codes straight from the leaves).
TableSource BTreeSource(std::string name, const BTree* tree);
/// Sorted, coded scan over the RLE column store (codes from RLE segment
/// arithmetic alone).
TableSource ColumnStoreSource(std::string name, const RleColumnStore* store);
/// Sorted, coded scan over an LSM forest (merges runs + memtable on the
/// fly; flushes the memtable when the scan is created).
TableSource LsmSource(std::string name, LsmForest* forest);

/// Logical operations.
enum class LogicalOp : uint8_t {
  kScan,
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kDistinct,
  kSetOp,
  kSort,
  kTopK,
  kLimit,
};

/// Short lowercase name, e.g. "aggregate".
const char* LogicalOpName(LogicalOp op);

/// One node of a logical plan tree. Fields beyond `op` / `children` /
/// `schema` are meaningful only for the matching LogicalOp.
struct LogicalNode {
  LogicalNode(LogicalOp op_in, Schema schema_in)
      : op(op_in), schema(std::move(schema_in)) {}

  LogicalOp op;
  std::vector<std::unique_ptr<LogicalNode>> children;
  /// Output row layout (computed when the node is built).
  Schema schema;

  // --- per-operation payload ---
  TableSource source;                    // kScan
  RowPredicate predicate;                // kFilter
  BlockPredicate block_predicate;        // kFilter (optional fast path)
  std::vector<uint32_t> mapping;         // kProject
  JoinType join_type = JoinType::kInner; // kJoin (key = children's key prefix)
  uint32_t group_prefix = 0;             // kAggregate
  std::vector<AggregateSpec> aggregates; // kAggregate
  SetOpType set_op = SetOpType::kUnion;  // kSetOp
  bool set_all = false;                  // kSetOp
  uint64_t limit = 0;                    // kTopK, kLimit

  // --- analysis annotations (filled by the planner passes) ---
  /// Interesting order: what this node's parent could exploit.
  OrderRequirement required = OrderRequirement::None();
  /// Order property the planner's decision rules will deliver for this
  /// subtree -- the memoized form of InferOrderProperty, filled bottom-up
  /// once per Plan() so the parallel-shape pre-decisions are O(1) per node
  /// instead of a subtree recursion each.
  OrderProperty inferred = OrderProperty::Unsorted();
  /// Estimated output cardinality (rows + distinct key prefixes), filled
  /// bottom-up by AnnotateCardinalities (plan/cost_model.h) once per
  /// Plan(). card.rows == 0 marks a node not yet annotated; the cost-based
  /// decision rules then estimate on the fly.
  CardEstimate card;
};

/// Fluent builder for logical plans. Each call wraps the current tree in a
/// new root; binary operations consume a second builder. Builders are
/// move-only (they own the tree under construction).
///
///   auto plan = PlanBuilder::Scan(BufferSource("hits", &schema, &rows))
///                   .Sort()
///                   .Aggregate(2, {{AggFn::kCount, 0}})
///                   .Build();
class PlanBuilder {
 public:
  /// Starts a plan at a leaf source.
  static PlanBuilder Scan(TableSource source);

  /// Keeps rows satisfying `predicate` (order- and code-preserving).
  /// `block_predicate`, when supplied, must agree with `predicate` row for
  /// row; batched execution then evaluates it once per block.
  PlanBuilder& Filter(RowPredicate predicate,
                      BlockPredicate block_predicate = nullptr);

  /// Projects to `output_schema`; output column i takes input column
  /// `mapping[i]`. Order survives when the mapping keeps a key prefix in
  /// place (Section 4.2).
  PlanBuilder& Project(Schema output_schema, std::vector<uint32_t> mapping);

  /// Joins with `right` on the full key prefix of both inputs (their key
  /// arities and directions must match). Output: the canonical merge-join
  /// layout -- join key, left payloads, right payloads, match indicator --
  /// regardless of the physical algorithm chosen later.
  PlanBuilder& Join(PlanBuilder right, JoinType type);

  /// Groups on the first `group_prefix` key columns; one output payload
  /// column per aggregate.
  PlanBuilder& Aggregate(uint32_t group_prefix,
                         std::vector<AggregateSpec> aggregates);

  /// Removes full-key duplicate rows.
  PlanBuilder& Distinct();

  /// SQL set operation against `right` (schemas must match and be
  /// payload-free). `all` selects multiset semantics.
  PlanBuilder& SetOp(PlanBuilder right, SetOpType type, bool all);

  /// Requests the stream sorted on its full key with offset-value codes.
  /// The physical planner elides it when the input already delivers both.
  PlanBuilder& Sort();

  /// First `k` rows in full-key sort order.
  PlanBuilder& TopK(uint64_t k);

  /// First `n` rows of the stream *in its current order* -- no sort is
  /// requested or inserted. Order and codes pass through untouched (a
  /// truncated tail cannot invalidate codes already emitted).
  PlanBuilder& Limit(uint64_t n);

  /// Releases the finished logical tree. The builder is empty afterwards.
  std::unique_ptr<LogicalNode> Build();

  /// Peek at the tree under construction (e.g. for its schema).
  const LogicalNode& root() const {
    OVC_CHECK(root_ != nullptr);
    return *root_;
  }

 private:
  explicit PlanBuilder(std::unique_ptr<LogicalNode> root)
      : root_(std::move(root)) {}

  std::unique_ptr<LogicalNode> root_;
};

/// Top-down "interesting orders" pass: annotates every node's `required`
/// field with the order its parent could exploit (join keys for joins,
/// grouping prefixes for aggregations, full keys for distinct / set
/// operations / sorts). The physical planner consults these annotations
/// when choosing between order-producing and hash-based algorithms.
void InferOrderRequirements(LogicalNode* root);

/// Multi-line indented rendering of the logical tree with schemas and
/// interesting-order annotations.
std::string LogicalPlanToString(const LogicalNode& root);

}  // namespace ovc::plan

#endif  // OVC_PLAN_LOGICAL_PLAN_H_
