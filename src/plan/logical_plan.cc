#include "plan/logical_plan.h"

#include <algorithm>
#include <utility>

#include "exec/scan.h"
#include "storage/btree.h"
#include "storage/column_store.h"
#include "storage/lsm.h"

namespace ovc::plan {

TableSource BufferSource(std::string name, const Schema* schema,
                         const RowBuffer* buffer) {
  OVC_CHECK(buffer->width() == schema->total_columns());
  TableSource source;
  source.name = std::move(name);
  source.schema = schema;
  source.order = OrderProperty::Unsorted();
  source.stats.row_count = buffer->size();
  source.stats.row_count_known = true;
  source.factory = [schema, buffer] {
    return std::make_unique<BufferScan>(schema, buffer);
  };
  return source;
}

TableSource RunSource(std::string name, const Schema* schema,
                      const InMemoryRun* run) {
  OVC_CHECK(run->width() == schema->total_columns());
  TableSource source;
  source.name = std::move(name);
  source.schema = schema;
  source.order = OrderProperty::Sorted(schema->key_arity(), /*ovc=*/true);
  source.stats.row_count = run->size();
  source.stats.row_count_known = true;
  source.factory = [schema, run] {
    return std::make_unique<RunScan>(schema, run);
  };
  return source;
}

TableSource BTreeSource(std::string name, const BTree* tree) {
  TableSource source;
  source.name = std::move(name);
  source.schema = &tree->schema();
  source.order =
      OrderProperty::Sorted(tree->schema().key_arity(), /*ovc=*/true);
  source.stats.row_count = tree->size();
  source.stats.row_count_known = true;
  source.factory = [tree] { return tree->Scan(); };
  return source;
}

TableSource ColumnStoreSource(std::string name, const RleColumnStore* store) {
  TableSource source;
  source.name = std::move(name);
  source.schema = &store->schema();
  source.order =
      OrderProperty::Sorted(store->schema().key_arity(), /*ovc=*/true);
  source.stats.row_count = store->rows();
  source.stats.row_count_known = true;
  source.factory = [store] { return store->CreateScan(); };
  return source;
}

TableSource LsmSource(std::string name, LsmForest* forest) {
  TableSource source;
  source.name = std::move(name);
  source.schema = &forest->schema();
  source.order =
      OrderProperty::Sorted(forest->schema().key_arity(), /*ovc=*/true);
  source.stats.row_count = forest->rows();
  source.stats.row_count_known = true;
  source.factory = [forest] { return forest->ScanAll(); };
  return source;
}

const char* LogicalOpName(LogicalOp op) {
  switch (op) {
    case LogicalOp::kScan:
      return "scan";
    case LogicalOp::kFilter:
      return "filter";
    case LogicalOp::kProject:
      return "project";
    case LogicalOp::kJoin:
      return "join";
    case LogicalOp::kAggregate:
      return "aggregate";
    case LogicalOp::kDistinct:
      return "distinct";
    case LogicalOp::kSetOp:
      return "setop";
    case LogicalOp::kSort:
      return "sort";
    case LogicalOp::kTopK:
      return "topk";
    case LogicalOp::kLimit:
      return "limit";
  }
  return "unknown";
}

PlanBuilder PlanBuilder::Scan(TableSource source) {
  OVC_CHECK(source.schema != nullptr);
  OVC_CHECK(source.factory != nullptr);
  auto node = std::make_unique<LogicalNode>(LogicalOp::kScan, *source.schema);
  node->source = std::move(source);
  return PlanBuilder(std::move(node));
}

PlanBuilder& PlanBuilder::Filter(RowPredicate predicate,
                                 BlockPredicate block_predicate) {
  OVC_CHECK(root_ != nullptr);
  OVC_CHECK(predicate != nullptr);
  auto node = std::make_unique<LogicalNode>(LogicalOp::kFilter, root_->schema);
  node->predicate = std::move(predicate);
  node->block_predicate = std::move(block_predicate);
  node->children.push_back(std::move(root_));
  root_ = std::move(node);
  return *this;
}

PlanBuilder& PlanBuilder::Project(Schema output_schema,
                                  std::vector<uint32_t> mapping) {
  OVC_CHECK(root_ != nullptr);
  OVC_CHECK(mapping.size() == output_schema.total_columns());
  for (uint32_t m : mapping) {
    OVC_CHECK(m < root_->schema.total_columns());
  }
  auto node = std::make_unique<LogicalNode>(LogicalOp::kProject,
                                            std::move(output_schema));
  node->mapping = std::move(mapping);
  node->children.push_back(std::move(root_));
  root_ = std::move(node);
  return *this;
}

PlanBuilder& PlanBuilder::Join(PlanBuilder right, JoinType type) {
  OVC_CHECK(root_ != nullptr);
  OVC_CHECK(right.root_ != nullptr);
  const Schema& ls = root_->schema;
  const Schema& rs = right.root_->schema;
  // The join key is the shared key prefix of both inputs: arities and
  // directions must agree (the contract of MergeJoin).
  OVC_CHECK(ls.key_arity() == rs.key_arity());
  for (uint32_t c = 0; c < ls.key_arity(); ++c) {
    OVC_CHECK(ls.direction(c) == rs.direction(c));
  }
  auto node = std::make_unique<LogicalNode>(
      LogicalOp::kJoin, MergeJoin::MakeOutputSchema(ls, rs, type));
  node->join_type = type;
  node->children.push_back(std::move(root_));
  node->children.push_back(std::move(right.root_));
  root_ = std::move(node);
  return *this;
}

PlanBuilder& PlanBuilder::Aggregate(uint32_t group_prefix,
                                    std::vector<AggregateSpec> aggregates) {
  OVC_CHECK(root_ != nullptr);
  OVC_CHECK(group_prefix >= 1);
  OVC_CHECK(group_prefix <= root_->schema.key_arity());
  for (const AggregateSpec& spec : aggregates) {
    OVC_CHECK(spec.fn == AggFn::kCount ||
              spec.input_col < root_->schema.total_columns());
  }
  auto node = std::make_unique<LogicalNode>(
      LogicalOp::kAggregate,
      InStreamAggregate::MakeOutputSchema(root_->schema, group_prefix,
                                          aggregates.size()));
  node->group_prefix = group_prefix;
  node->aggregates = std::move(aggregates);
  node->children.push_back(std::move(root_));
  root_ = std::move(node);
  return *this;
}

PlanBuilder& PlanBuilder::Distinct() {
  OVC_CHECK(root_ != nullptr);
  auto node =
      std::make_unique<LogicalNode>(LogicalOp::kDistinct, root_->schema);
  node->children.push_back(std::move(root_));
  root_ = std::move(node);
  return *this;
}

PlanBuilder& PlanBuilder::SetOp(PlanBuilder right, SetOpType type, bool all) {
  OVC_CHECK(root_ != nullptr);
  OVC_CHECK(right.root_ != nullptr);
  OVC_CHECK(root_->schema == right.root_->schema);
  OVC_CHECK(root_->schema.payload_columns() == 0);
  auto node = std::make_unique<LogicalNode>(LogicalOp::kSetOp, root_->schema);
  node->set_op = type;
  node->set_all = all;
  node->children.push_back(std::move(root_));
  node->children.push_back(std::move(right.root_));
  root_ = std::move(node);
  return *this;
}

PlanBuilder& PlanBuilder::Sort() {
  OVC_CHECK(root_ != nullptr);
  auto node = std::make_unique<LogicalNode>(LogicalOp::kSort, root_->schema);
  node->children.push_back(std::move(root_));
  root_ = std::move(node);
  return *this;
}

PlanBuilder& PlanBuilder::TopK(uint64_t k) {
  OVC_CHECK(root_ != nullptr);
  OVC_CHECK(k >= 1);
  auto node = std::make_unique<LogicalNode>(LogicalOp::kTopK, root_->schema);
  node->limit = k;
  node->children.push_back(std::move(root_));
  root_ = std::move(node);
  return *this;
}

PlanBuilder& PlanBuilder::Limit(uint64_t n) {
  OVC_CHECK(root_ != nullptr);
  auto node = std::make_unique<LogicalNode>(LogicalOp::kLimit, root_->schema);
  node->limit = n;
  node->children.push_back(std::move(root_));
  root_ = std::move(node);
  return *this;
}

std::unique_ptr<LogicalNode> PlanBuilder::Build() {
  OVC_CHECK(root_ != nullptr);
  return std::move(root_);
}

namespace {

void InferRequirementsRecursive(LogicalNode* node,
                                const OrderRequirement& from_parent) {
  node->required = from_parent;
  switch (node->op) {
    case LogicalOp::kScan:
      break;
    case LogicalOp::kFilter:
    case LogicalOp::kLimit:
      // Order-transparent: whatever the parent wants of this node, the
      // node wants of its child (filter and limit preserve order and
      // codes).
      InferRequirementsRecursive(node->children[0].get(), from_parent);
      break;
    case LogicalOp::kProject: {
      // A projection can only preserve order the child provides on the key
      // prefix the mapping keeps in place; pass the parent's wish through
      // clamped to the child's arity.
      OrderRequirement down = from_parent;
      down.prefix =
          std::min(down.prefix, node->children[0]->schema.key_arity());
      InferRequirementsRecursive(node->children[0].get(), down);
      break;
    }
    case LogicalOp::kJoin: {
      // Merge join consumes order and codes on the full join key of both
      // inputs -- the classic "interesting order".
      const uint32_t key = node->children[0]->schema.key_arity();
      InferRequirementsRecursive(node->children[0].get(),
                                 OrderRequirement::Codes(key));
      InferRequirementsRecursive(node->children[1].get(),
                                 OrderRequirement::Codes(key));
      break;
    }
    case LogicalOp::kAggregate:
      // In-stream aggregation consumes order on the grouping prefix; codes
      // make the boundary test a single integer comparison (Section 4.5).
      InferRequirementsRecursive(node->children[0].get(),
                                 OrderRequirement::Codes(node->group_prefix));
      break;
    case LogicalOp::kDistinct:
      // Code-only duplicate detection needs the full key (Section 4.4).
      InferRequirementsRecursive(
          node->children[0].get(),
          OrderRequirement::Codes(node->children[0]->schema.key_arity()));
      break;
    case LogicalOp::kSetOp:
      for (auto& child : node->children) {
        InferRequirementsRecursive(
            child.get(), OrderRequirement::Codes(child->schema.key_arity()));
      }
      break;
    case LogicalOp::kSort:
    case LogicalOp::kTopK:
      // A sort (or the sort inside top-k) is *elided* when its input
      // already arrives fully sorted with codes -- so that is exactly the
      // order a child below should find interesting.
      InferRequirementsRecursive(
          node->children[0].get(),
          OrderRequirement::Codes(node->children[0]->schema.key_arity()));
      break;
  }
}

void AppendNode(const LogicalNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += LogicalOpName(node.op);
  switch (node.op) {
    case LogicalOp::kScan:
      *out += "(" + node.source.name + ", " + node.source.order.ToString() +
              ")";
      break;
    case LogicalOp::kJoin:
      *out += std::string("(") + JoinTypeName(node.join_type) + ")";
      break;
    case LogicalOp::kAggregate:
      *out += "(group=" + std::to_string(node.group_prefix) +
              ", aggs=" + std::to_string(node.aggregates.size()) + ")";
      break;
    case LogicalOp::kTopK:
    case LogicalOp::kLimit:
      *out += "(k=" + std::to_string(node.limit) + ")";
      break;
    default:
      break;
  }
  *out += " [" + node.schema.ToString();
  if (node.required.interested()) {
    *out += ", wants " + node.required.ToString();
  }
  *out += "]\n";
  for (const auto& child : node.children) {
    AppendNode(*child, depth + 1, out);
  }
}

}  // namespace

void InferOrderRequirements(LogicalNode* root) {
  InferRequirementsRecursive(root, OrderRequirement::None());
}

std::string LogicalPlanToString(const LogicalNode& root) {
  std::string out;
  AppendNode(root, 0, &out);
  return out;
}

}  // namespace ovc::plan
