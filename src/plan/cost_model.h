// Cost model: cardinality propagation and calibrated per-operator cost
// estimation for the physical planner.
//
// The paper's argument for sort-based query processing is quantitative:
// offset-value coding moves almost all of a sort's work from column value
// comparisons (~2.5 ns each here) to single-integer code comparisons
// (~1.5 ns, and "practically free" when folded into validity tests), which
// changes *which plan is cheapest*, not just how fast one plan runs. This
// module prices the planner's alternatives in those terms so that
// merge-vs-hash and in-stream/in-sort/hash-aggregation choices can compare
// estimated costs under a memory budget instead of hard-coded policy
// (plan/physical_plan.h consumes these estimates; see docs/COST_MODEL.md
// for the formulas, the calibration procedure, and worked examples).
//
// Two layers:
//
//  * Cardinality: AnnotateCardinalities walks a logical plan bottom-up and
//    fills every node's {est_rows, est_key_distinct} from leaf TableStats
//    (row counts from storage, distinct-prefix counts from the catalog's
//    generator specs), default filter selectivity, N_l*N_r/max(D_l,D_r)
//    join output, and distinct-prefix estimates for groups.
//  * Cost: CostModel prices each physical alternative from those
//    cardinalities and the CostConstants -- per-comparison (column and
//    code), per-hashed-row, per-row-move, and per-spill-byte constants
//    seeded from the committed BENCH_PR2..PR4 measurements and overridable
//    through PlannerOptions::cost_constants.
//
// Costs are estimates of *work*, expressed in nanoseconds of the reference
// machine that produced BENCH_PR*.json. Absolute accuracy is not the goal;
// consistent ranking of plan alternatives is (tests/cost_model_test.cc
// asserts the ranking against measured counter totals priced with the same
// constants).

#ifndef OVC_PLAN_COST_MODEL_H_
#define OVC_PLAN_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sort/external_sort.h"

namespace ovc::plan {

struct LogicalNode;

/// How the physical planner chooses among algorithms.
enum class CostPolicy : uint8_t {
  /// Compare estimated costs (cardinalities x calibrated constants) under
  /// the configured memory budgets. The default.
  kCostBased,
  /// The pure property/policy rules of PR 1..4 (hash wherever order is not
  /// interesting, grace hash for unsorted joins regardless of spilling).
  /// Every pre-PR5 plan-shape test can pin this to stay byte-identical.
  kRuleBased,
};

const char* CostPolicyName(CostPolicy policy);

/// Calibrated per-event work constants, in nanoseconds on the machine that
/// produced the committed BENCH_PR*.json aggregates. Override through
/// PlannerOptions::cost_constants; re-derive with bench/run_benches.sh
/// (the procedure is documented in docs/COST_MODEL.md).
struct CostConstants {
  /// One column value comparison. From the PlainTreeSort-vs-OvcSort wall
  /// clock delta divided by the column-comparison-count delta
  /// (BENCH_PR2..4: ~34 vs ~1 cmp/row, ~80ns/row apart).
  double column_compare = 2.5;
  /// One offset-value code comparison (a tournament-tree step). OvcSort:
  /// ~244 ns/row over log2(100k) = 17 levels, minus moves and codec work.
  double code_compare = 1.5;
  /// Hashing + probing + residency bookkeeping for one row in a hash
  /// operator (join build/probe, aggregation table).
  double hash_row = 10.0;
  /// Copying one row between operators or into run storage
  /// (bench_batch_pipeline: ~3 ns/row for a whole scan->filter->limit
  /// pipeline, about a third of it the move).
  double row_move = 1.0;
  /// Writing plus re-reading one spilled byte of temporary storage
  /// (~670 MB/s round trip).
  double spill_byte = 1.5;

  // --- estimation defaults (cardinality, not work) ---
  /// Selectivity assumed for an opaque filter predicate.
  double filter_selectivity = 0.33;
  /// Distinct values assumed for a column with no statistics:
  /// rows^ndv_exponent (capped by rows).
  double ndv_exponent = 2.0 / 3.0;
  /// Row count assumed for a leaf with no statistics at all.
  double unknown_rows = 1000.0;

  /// The committed calibration (the defaults above).
  static CostConstants Calibrated() { return CostConstants(); }
};

/// Optimizer statistics for a leaf table. The row count is meaningful
/// only when row_count_known (or non-zero -- hand-built sources that fill
/// row_count without the flag still count as known); that distinguishes a
/// genuinely empty table (known, 0 rows) from a source with no statistics
/// at all, which the cost model prices at its unknown-rows default.
/// key_distinct may be empty (unknown) or hold, for each key-prefix
/// length k in 1..key_arity, the estimated number of distinct prefixes.
struct TableStats {
  uint64_t row_count = 0;
  bool row_count_known = false;
  std::vector<double> key_distinct;

  // --- runtime feedback (EXPLAIN ANALYZE / QueryProfile) ---
  /// Scan output rows observed by the most recent profiled run that fed
  /// back into these stats (SqlSession::ApplyFeedbackTo); 0 until then.
  double observed_rows = 0;
  /// How many profiled runs have fed back into observed_rows.
  uint64_t feedback_runs = 0;
};

/// A node's estimated output cardinality: row count plus distinct counts
/// for every key-prefix length of its output schema.
struct CardEstimate {
  double rows = 0;
  /// distinct[k-1] = estimated distinct values of the first k key columns.
  std::vector<double> key_distinct;

  /// Distinct values of the first `prefix` key columns (clamped, >= 1).
  double DistinctPrefix(uint32_t prefix) const;
};

/// Bottom-up cardinality pass: fills every node's `card` annotation (see
/// LogicalNode). Idempotent; Planner::Plan runs it before building.
void AnnotateCardinalities(LogicalNode* root, const CostConstants& constants);

/// Cardinality of one node from its children's estimates (`child_cards[i]`
/// for child i) -- the pure rule AnnotateCardinalities applies at each
/// step.
CardEstimate EstimateCardinality(const LogicalNode& node,
                                 const CardEstimate* child_cards,
                                 const CostConstants& constants);

/// `node`'s annotation when present, else the estimate recomputed on the
/// fly (for decision rules running over un-annotated trees, e.g. the pure
/// InferOrderProperty entry point).
CardEstimate CardOf(const LogicalNode& node, const CostConstants& constants);

/// Prices physical alternatives. Stateless beyond the constants and the
/// memory budgets it is constructed with; every function returns the
/// *extra* work of that operator alone (children are priced separately and
/// summed by the planner into per-node plan estimates).
class CostModel {
 public:
  CostModel(const CostConstants& constants, const SortConfig& sort_config,
            uint64_t hash_memory_rows)
      : c_(constants),
        sort_memory_rows_(static_cast<double>(sort_config.memory_rows)),
        sort_fan_in_(sort_config.fan_in < 2 ? 2.0
                                            : static_cast<double>(
                                                  sort_config.fan_in)),
        hash_memory_rows_(static_cast<double>(hash_memory_rows)) {}

  const CostConstants& constants() const { return c_; }

  /// Streaming a leaf of `rows` rows.
  double Scan(double rows) const;
  /// Evaluating an opaque predicate over `rows` rows, keeping `out_rows`.
  double Filter(double rows, double out_rows) const;
  /// Copying `rows` rows through a projection.
  double Project(double rows) const;

  /// A full external sort of `rows` rows with `key_arity` key columns,
  /// `distinct` distinct keys and `width` total columns. Includes run
  /// generation (code comparisons through the tournament, column
  /// comparisons bounded by the paper's N + G*K shape), cascaded merge
  /// passes, and spill bytes once `rows` exceeds the sort memory budget.
  double Sort(double rows, uint32_t key_arity, double distinct,
              uint32_t width) const;

  /// In-sort aggregation / duplicate removal: the sort above, but with the
  /// tournament bounded by the surviving group count (early collapse).
  double InSortAggregate(double rows, double groups, uint32_t key_arity,
                         double distinct, uint32_t width) const;
  /// In-stream aggregation over sorted input; code boundaries when
  /// `input_coded`, column comparisons otherwise.
  double InStreamAggregate(double rows, double groups, uint32_t group_prefix,
                           bool input_coded) const;
  /// Hash aggregation of `rows` into `groups`, spilling partitions once
  /// the resident table exceeds the hash memory budget.
  double HashAggregate(double rows, double groups, uint32_t width) const;

  /// Code-only duplicate removal over a sorted coded stream.
  double Dedup(double rows) const;

  /// Merge join of two sorted coded inputs producing `out_rows`.
  double MergeJoin(double left_rows, double right_rows,
                   double out_rows) const;
  /// Grace hash join (build = right), spilling both sides once the build
  /// exceeds the hash memory budget.
  double GraceHashJoin(double probe_rows, double build_rows, double out_rows,
                       uint32_t probe_width, uint32_t build_width) const;
  /// Order-preserving in-memory hash join (build must be vouched to fit).
  double OrderPreservingHashJoin(double probe_rows, double build_rows,
                                 double out_rows) const;

  /// Sort-based set operation over two sorted coded inputs.
  double SetOperation(double left_rows, double right_rows,
                      double out_rows) const;
  /// Truncation to `out_rows`.
  double Limit(double out_rows) const;

  /// Splitting exchange routing `rows` rows (hash policies hash each row).
  double SplitExchange(double rows, bool hash_policy) const;
  /// Merging exchange over `workers` sorted coded worker streams.
  double MergeExchange(double rows, uint32_t workers) const;

 private:
  /// ceil(log2(x)) clamped to >= 1, for tournament depths.
  static double Log2Clamped(double x);

  CostConstants c_;
  double sort_memory_rows_;
  double sort_fan_in_;
  double hash_memory_rows_;
};

/// Estimate attached to every physical plan node: output rows and
/// *cumulative* cost (this operator plus everything below it).
struct NodeEstimate {
  double rows = 0;
  double cost = 0;
};

/// Deterministic rendering used by EXPLAIN and the docs snippets:
/// "{rows=N cost=C}" with both values rounded to integers.
std::string RenderEstimate(const NodeEstimate& est);

}  // namespace ovc::plan

#endif  // OVC_PLAN_COST_MODEL_H_
