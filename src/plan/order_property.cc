#include "plan/order_property.h"

namespace ovc::plan {

std::string OrderProperty::ToString() const {
  if (sorted_prefix == 0) return "unsorted";
  std::string s = "sorted(" + std::to_string(sorted_prefix) + ")";
  if (has_ovc) s += "+ovc";
  return s;
}

std::string OrderRequirement::ToString() const {
  if (prefix == 0) return "none";
  std::string s = "order(" + std::to_string(prefix) + ")";
  if (needs_ovc) s += "+ovc";
  return s;
}

}  // namespace ovc::plan
