#include "plan/cost_model.h"

#include <algorithm>
#include <cmath>

#include "plan/logical_plan.h"

namespace ovc::plan {

const char* CostPolicyName(CostPolicy policy) {
  switch (policy) {
    case CostPolicy::kCostBased:
      return "cost-based";
    case CostPolicy::kRuleBased:
      return "rule-based";
  }
  return "unknown";
}

double CardEstimate::DistinctPrefix(uint32_t prefix) const {
  if (prefix == 0) return 1.0;
  double d;
  if (key_distinct.empty()) {
    d = rows;  // no information: assume every key distinct
  } else {
    const size_t i = std::min<size_t>(prefix, key_distinct.size()) - 1;
    d = key_distinct[i];
  }
  return std::max(1.0, std::min(d, std::max(rows, 1.0)));
}

namespace {

/// Distinct-count vector for a stream of `rows` rows with `key_arity` key
/// columns and no statistics: each column contributes rows^ndv_exponent
/// distinct values, prefixes multiply, everything is capped by rows.
std::vector<double> DefaultDistinct(double rows, uint32_t key_arity,
                                    const CostConstants& c) {
  const double per_column =
      std::max(1.0, std::pow(std::max(rows, 1.0), c.ndv_exponent));
  std::vector<double> out;
  out.reserve(key_arity);
  double prefix = 1.0;
  for (uint32_t k = 0; k < key_arity; ++k) {
    prefix = std::min(prefix * per_column, std::max(rows, 1.0));
    out.push_back(prefix);
  }
  return out;
}

/// Clamps a propagated distinct vector to the (possibly smaller) new row
/// count: a prefix cannot have more distinct values than the stream rows.
std::vector<double> ClampDistinct(std::vector<double> distinct, double rows) {
  for (double& d : distinct) d = std::max(1.0, std::min(d, rows));
  return distinct;
}

}  // namespace

CardEstimate EstimateCardinality(const LogicalNode& node,
                                 const CardEstimate* child_cards,
                                 const CostConstants& c) {
  CardEstimate est;
  switch (node.op) {
    case LogicalOp::kScan: {
      const TableStats& stats = node.source.stats;
      // A known row count is authoritative even when zero (an empty table
      // estimates at one row, not at the unknown-source default).
      est.rows = stats.row_count_known || stats.row_count > 0
                     ? std::max(1.0, static_cast<double>(stats.row_count))
                     : c.unknown_rows;
      // Runtime feedback beats any a-priori stat: once a profiled run has
      // observed this scan's true output, plan against what actually
      // happened rather than what the catalog claimed.
      if (stats.feedback_runs > 0) {
        est.rows = std::max(1.0, stats.observed_rows);
      }
      est.key_distinct =
          stats.key_distinct.empty()
              ? DefaultDistinct(est.rows, node.schema.key_arity(), c)
              : ClampDistinct(stats.key_distinct, est.rows);
      est.key_distinct.resize(node.schema.key_arity(),
                              est.key_distinct.empty()
                                  ? est.rows
                                  : est.key_distinct.back());
      break;
    }
    case LogicalOp::kFilter: {
      const CardEstimate& child = child_cards[0];
      est.rows = std::max(1.0, child.rows * c.filter_selectivity);
      est.key_distinct = ClampDistinct(child.key_distinct, est.rows);
      break;
    }
    case LogicalOp::kProject: {
      const CardEstimate& child = child_cards[0];
      est.rows = child.rows;
      // Distinct counts survive only for the key prefix the mapping keeps
      // in place (the same rule ProjectOperator uses for order).
      const uint32_t arity = node.schema.key_arity();
      bool prefix_kept = arity <= node.children[0]->schema.key_arity();
      for (uint32_t i = 0; prefix_kept && i < arity; ++i) {
        prefix_kept = node.mapping[i] == i;
      }
      if (prefix_kept && !child.key_distinct.empty()) {
        est.key_distinct.assign(
            child.key_distinct.begin(),
            child.key_distinct.begin() +
                std::min<size_t>(arity, child.key_distinct.size()));
        est.key_distinct.resize(arity, est.rows);
        est.key_distinct = ClampDistinct(est.key_distinct, est.rows);
      } else {
        est.key_distinct = DefaultDistinct(est.rows, arity, c);
      }
      break;
    }
    case LogicalOp::kJoin: {
      const CardEstimate& left = child_cards[0];
      const CardEstimate& right = child_cards[1];
      const uint32_t key = node.children[0]->schema.key_arity();
      const double d_left = left.DistinctPrefix(key);
      const double d_right = right.DistinctPrefix(key);
      // Classic equi-join estimate: every value of the smaller domain
      // matches rows/distinct partners on both sides.
      est.rows = std::max(1.0, left.rows * right.rows /
                                   std::max(1.0, std::max(d_left, d_right)));
      const uint32_t out_arity = node.schema.key_arity();
      est.key_distinct.reserve(out_arity);
      for (uint32_t k = 1; k <= out_arity; ++k) {
        est.key_distinct.push_back(
            std::min(left.DistinctPrefix(k), right.DistinctPrefix(k)));
      }
      est.key_distinct = ClampDistinct(est.key_distinct, est.rows);
      break;
    }
    case LogicalOp::kAggregate: {
      const CardEstimate& child = child_cards[0];
      est.rows = child.DistinctPrefix(node.group_prefix);
      est.key_distinct.assign(
          child.key_distinct.begin(),
          child.key_distinct.begin() +
              std::min<size_t>(node.group_prefix, child.key_distinct.size()));
      est.key_distinct.resize(node.schema.key_arity(), est.rows);
      est.key_distinct = ClampDistinct(est.key_distinct, est.rows);
      break;
    }
    case LogicalOp::kDistinct: {
      const CardEstimate& child = child_cards[0];
      est.rows = child.DistinctPrefix(node.schema.key_arity());
      est.key_distinct = ClampDistinct(child.key_distinct, est.rows);
      break;
    }
    case LogicalOp::kSetOp: {
      const CardEstimate& left = child_cards[0];
      const CardEstimate& right = child_cards[1];
      const uint32_t arity = node.schema.key_arity();
      const double d_left = left.DistinctPrefix(arity);
      const double d_right = right.DistinctPrefix(arity);
      switch (node.set_op) {
        case SetOpType::kUnion:
          est.rows = node.set_all ? left.rows + right.rows
                                  : std::max(d_left, d_right);
          break;
        case SetOpType::kIntersect:
          est.rows = node.set_all ? std::min(left.rows, right.rows)
                                  : std::min(d_left, d_right);
          break;
        case SetOpType::kExcept:
          est.rows = node.set_all
                         ? std::max(1.0, left.rows - right.rows)
                         : std::max(1.0, d_left - d_right / 2.0);
          break;
      }
      est.rows = std::max(1.0, est.rows);
      est.key_distinct.reserve(arity);
      for (uint32_t k = 1; k <= arity; ++k) {
        est.key_distinct.push_back(
            std::max(left.DistinctPrefix(k), right.DistinctPrefix(k)));
      }
      est.key_distinct = ClampDistinct(est.key_distinct, est.rows);
      break;
    }
    case LogicalOp::kSort: {
      est = child_cards[0];
      break;
    }
    case LogicalOp::kTopK:
    case LogicalOp::kLimit: {
      const CardEstimate& child = child_cards[0];
      est.rows = std::min(child.rows, static_cast<double>(node.limit));
      est.rows = std::max(1.0, est.rows);
      est.key_distinct = ClampDistinct(child.key_distinct, est.rows);
      break;
    }
  }
  return est;
}

void AnnotateCardinalities(LogicalNode* root, const CostConstants& c) {
  CardEstimate child_cards[2];
  for (size_t i = 0; i < root->children.size() && i < 2; ++i) {
    AnnotateCardinalities(root->children[i].get(), c);
    child_cards[i] = root->children[i]->card;
  }
  root->card = EstimateCardinality(*root, child_cards, c);
}

CardEstimate CardOf(const LogicalNode& node, const CostConstants& c) {
  if (node.card.rows > 0) return node.card;
  CardEstimate child_cards[2];
  for (size_t i = 0; i < node.children.size() && i < 2; ++i) {
    child_cards[i] = CardOf(*node.children[i], c);
  }
  return EstimateCardinality(node, child_cards, c);
}

// ---------------------------------------------------------------------------
// CostModel
// ---------------------------------------------------------------------------

double CostModel::Log2Clamped(double x) {
  return std::max(1.0, std::ceil(std::log2(std::max(2.0, x))));
}

double CostModel::Scan(double rows) const { return rows * c_.row_move; }

double CostModel::Filter(double rows, double out_rows) const {
  return rows * c_.column_compare + out_rows * c_.row_move;
}

double CostModel::Project(double rows) const { return rows * c_.row_move; }

double CostModel::Sort(double rows, uint32_t key_arity, double distinct,
                       uint32_t width) const {
  const double run_rows = std::min(rows, sort_memory_rows_);
  // Run generation: one leaf-to-root tournament pass per row (code
  // comparisons), column comparisons per the paper's bound -- about one
  // per row to certify equality with the previous key plus K per distinct
  // key to establish it (duplicate-heavy inputs resolve almost entirely
  // through codes).
  const double code = rows * Log2Clamped(run_rows) * c_.code_compare;
  const double column =
      std::min(rows * key_arity, rows + distinct * key_arity) *
      c_.column_compare;
  // Rows move into the sort workspace and out of the final merge.
  double cost = code + column + 2.0 * rows * c_.row_move;
  const double runs = std::ceil(rows / std::max(1.0, sort_memory_rows_));
  if (runs > 1.0) {
    // External: every merge level re-compares and re-moves each row and
    // the run files pay a write+read round trip.
    const double levels =
        std::max(1.0, std::ceil(std::log(runs) / std::log(sort_fan_in_)));
    cost += levels * rows *
            (Log2Clamped(std::min(runs, sort_fan_in_)) * c_.code_compare +
             c_.row_move);
    cost += levels * rows * width * 8.0 * c_.spill_byte;
  }
  return cost;
}

double CostModel::InSortAggregate(double rows, double groups,
                                  uint32_t key_arity, double distinct,
                                  uint32_t width) const {
  // Every input row still passes through the run-generation tournament
  // (collapse detects duplicates *during* the sort, it does not shrink
  // the tree), but early duplicate collapse bounds what each run *spills*
  // by the surviving group count (Figure 5) -- which is what makes the
  // sort-based aggregate memory-robust where the hash table overflows.
  const double run_rows = std::min(rows, sort_memory_rows_);
  const double code = rows * Log2Clamped(run_rows) * c_.code_compare;
  const double column =
      std::min(rows * key_arity, rows + distinct * key_arity) *
      c_.column_compare;
  double cost = code + column + (rows + groups) * c_.row_move;
  const double runs = std::ceil(rows / std::max(1.0, sort_memory_rows_));
  if (runs > 1.0) {
    // Each run holds at most `groups` collapsed rows: merge work and
    // spill volume scale with runs * groups, not with the input.
    const double spilled = std::min(rows, runs * groups);
    const double levels =
        std::max(1.0, std::ceil(std::log(runs) / std::log(sort_fan_in_)));
    cost += levels * spilled *
            (Log2Clamped(std::min(runs, sort_fan_in_)) * c_.code_compare +
             c_.row_move);
    cost += levels * spilled * width * 8.0 * c_.spill_byte;
  }
  return cost;
}

double CostModel::InStreamAggregate(double rows, double groups,
                                    uint32_t group_prefix,
                                    bool input_coded) const {
  const double boundary = input_coded
                              ? rows * c_.code_compare
                              : rows * group_prefix * c_.column_compare;
  return boundary + groups * c_.row_move;
}

double CostModel::HashAggregate(double rows, double groups,
                                uint32_t width) const {
  double cost = rows * c_.hash_row + groups * c_.row_move;
  if (groups > hash_memory_rows_) {
    // Hybrid hashing spills the non-resident share of the input to
    // partitions and re-aggregates each partition (one extra hash pass).
    const double spilled =
        rows * (1.0 - hash_memory_rows_ / std::max(groups, 1.0));
    cost += spilled * (width * 8.0 * c_.spill_byte + c_.hash_row);
  }
  return cost;
}

double CostModel::Dedup(double rows) const { return rows * c_.code_compare; }

double CostModel::MergeJoin(double left_rows, double right_rows,
                            double out_rows) const {
  return (left_rows + right_rows) * c_.code_compare +
         out_rows * c_.row_move;
}

double CostModel::GraceHashJoin(double probe_rows, double build_rows,
                                double out_rows, uint32_t probe_width,
                                uint32_t build_width) const {
  double cost =
      (probe_rows + build_rows) * c_.hash_row + out_rows * c_.row_move;
  if (build_rows > hash_memory_rows_) {
    // Both sides pay a partition write+read round trip, and the partition
    // pass re-hashes every row.
    cost += (probe_rows * probe_width + build_rows * build_width) * 8.0 *
                c_.spill_byte +
            (probe_rows + build_rows) * c_.hash_row;
  }
  return cost;
}

double CostModel::OrderPreservingHashJoin(double probe_rows,
                                          double build_rows,
                                          double out_rows) const {
  return (probe_rows + build_rows) * c_.hash_row +
         build_rows * c_.row_move + out_rows * c_.row_move;
}

double CostModel::SetOperation(double left_rows, double right_rows,
                               double out_rows) const {
  return (left_rows + right_rows) * c_.code_compare +
         out_rows * c_.row_move;
}

double CostModel::Limit(double out_rows) const {
  return out_rows * c_.row_move;
}

double CostModel::SplitExchange(double rows, bool hash_policy) const {
  return rows * (c_.row_move + (hash_policy ? c_.hash_row : 0.0));
}

double CostModel::MergeExchange(double rows, uint32_t workers) const {
  return rows * Log2Clamped(static_cast<double>(workers)) * c_.code_compare +
         rows * c_.row_move;
}

std::string RenderEstimate(const NodeEstimate& est) {
  const auto round_u64 = [](double v) {
    if (v < 0.0) v = 0.0;
    if (v > 1e18) v = 1e18;
    return static_cast<unsigned long long>(std::llround(v));
  };
  return "{rows=" + std::to_string(round_u64(est.rows)) +
         " cost=" + std::to_string(round_u64(est.cost)) + "}";
}

}  // namespace ovc::plan
