// Order properties: the planner's currency.
//
// The paper's thesis is that offset-value codes must flow *through* query
// plans: each sort-based operator consumes its input's order and codes and
// re-derives them for its output (Section 4 throughout). The planner
// therefore tracks, for every plan node, exactly the pair of facts the
// operator contract in exec/operator.h exposes at runtime:
//
//   * sorted_prefix -- how many leading key columns the stream is
//     guaranteed sorted on (0 = no order guarantee), and
//   * has_ovc      -- whether rows carry valid ascending offset-value
//     codes relative to the stream's full key.
//
// Matching these *available* properties against the *required* properties
// of order-consuming operators (merge join, in-stream aggregation,
// duplicate removal, set operations) is what lets the planner elide
// redundant sorts and choose between sort-based and hash-based physical
// operators.

#ifndef OVC_PLAN_ORDER_PROPERTY_H_
#define OVC_PLAN_ORDER_PROPERTY_H_

#include <cstdint>
#include <string>

namespace ovc::plan {

/// What a stream guarantees about its order and codes.
struct OrderProperty {
  /// Leading key columns the stream is sorted on (0 = unsorted).
  uint32_t sorted_prefix = 0;
  /// True when rows carry valid offset-value codes (meaningful only when
  /// sorted_prefix > 0; codes are relative to the stream's full key).
  bool has_ovc = false;

  /// An unsorted, code-free stream.
  static OrderProperty Unsorted() { return {0, false}; }
  /// Sorted on `prefix` columns, with or without codes.
  static OrderProperty Sorted(uint32_t prefix, bool ovc) {
    return {prefix, ovc};
  }

  bool sorted() const { return sorted_prefix > 0; }

  /// True when the stream delivers at least `required` sorted columns.
  bool SortedOn(uint32_t required) const { return sorted_prefix >= required; }

  /// True when the stream delivers `required` sorted columns *and* codes --
  /// the precondition of every code-consuming operator.
  bool SortedWithCodes(uint32_t required) const {
    return SortedOn(required) && has_ovc;
  }

  bool operator==(const OrderProperty& other) const {
    return sorted_prefix == other.sorted_prefix && has_ovc == other.has_ovc;
  }
  bool operator!=(const OrderProperty& other) const {
    return !(*this == other);
  }

  /// e.g. "sorted(3)+ovc", "sorted(2)", "unsorted".
  std::string ToString() const;
};

/// What a consumer would like its input to provide: the planner's
/// "interesting order" annotation, propagated top-down. A requirement is a
/// wish, not a contract -- the physical planner decides per node whether
/// satisfying it (with a sort or an order-producing operator) beats a
/// hash-based alternative.
struct OrderRequirement {
  /// Sorted columns the parent could exploit (0 = order is of no use).
  uint32_t prefix = 0;
  /// True when the parent also consumes offset-value codes.
  bool needs_ovc = false;

  static OrderRequirement None() { return {0, false}; }
  static OrderRequirement Codes(uint32_t prefix) { return {prefix, true}; }

  bool interested() const { return prefix > 0; }

  /// True when `available` satisfies this requirement.
  bool SatisfiedBy(const OrderProperty& available) const {
    if (prefix == 0) return true;
    return needs_ovc ? available.SortedWithCodes(prefix)
                     : available.SortedOn(prefix);
  }

  /// e.g. "order(2)+ovc", "none".
  std::string ToString() const;
};

}  // namespace ovc::plan

#endif  // OVC_PLAN_ORDER_PROPERTY_H_
