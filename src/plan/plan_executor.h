// Plan execution: planning + running + stream validation in one call.
//
// PlanExecutor is the subsystem's front door: hand it a logical plan, get
// back the materialized result together with the physical plan that
// produced it. In debug builds (or when validation is forced on) the
// executor feeds every output row of an order-carrying plan through
// OvcStreamChecker, so any operator that breaks the sorted-with-codes
// contract is caught at the plan boundary, not three operators later.

#ifndef OVC_PLAN_PLAN_EXECUTOR_H_
#define OVC_PLAN_PLAN_EXECUTOR_H_

#include <memory>
#include <string>

#include "common/counters.h"
#include "common/status.h"
#include "common/temp_file.h"
#include "plan/logical_plan.h"
#include "plan/physical_plan.h"
#include "row/row_buffer.h"

namespace ovc::plan {

/// A materialized query result.
struct ExecutionResult {
  ExecutionResult() : rows(1) {}

  /// All output rows, in the order the root operator produced them.
  RowBuffer rows;
  /// Order property of the root stream.
  OrderProperty order;
  /// True when the output stream was validated with OvcStreamChecker.
  bool validated = false;
  /// First validation violation (empty when none, or when not validated).
  std::string validation_error;
  /// First runtime error recorded by a degrading operator (temp-file I/O
  /// failure that exhausted its retries, spill failure, ...). When not OK,
  /// `rows` is a truncated prefix and must not be served to the client.
  Status status = Status::Ok();

  uint64_t row_count() const { return rows.size(); }
  bool ok() const { return status.ok() && validation_error.empty(); }
};

/// Plans and runs logical plans.
class PlanExecutor {
 public:
  struct Options {
    /// Physical-planner knobs.
    PlannerOptions planner;
    /// Validate sorted-with-codes root streams with OvcStreamChecker.
    /// Defaults to on in debug builds, off in release (per-row naive code
    /// recomputation is quadratic in key arity).
#ifndef NDEBUG
    bool validate = true;
#else
    bool validate = false;
#endif
    /// Abort (OVC_CHECK) on a validation violation instead of only
    /// recording it in the result.
    bool abort_on_violation = true;
    /// Rows per block when draining the root operator through NextBatch.
    /// Tests shrink this to force many block boundaries; validation still
    /// observes every row, so it proves codes stay correct across blocks.
    uint32_t batch_rows = RowBlock::kDefaultRows;
  };

  /// `counters` (optional) and `temp` must outlive the executor.
  PlanExecutor(QueryCounters* counters, TempFileManager* temp)
      : PlanExecutor(counters, temp, Options()) {}
  PlanExecutor(QueryCounters* counters, TempFileManager* temp,
               Options options);

  /// Plans `root` and returns the physical plan without running it.
  PhysicalPlan Plan(LogicalNode* root);

  /// Same, with one-off planner options (how EXPLAIN ANALYZE turns on
  /// PlannerOptions::profile for a single statement).
  PhysicalPlan Plan(LogicalNode* root, const PlannerOptions& planner_options);

  /// Plans and runs `root`; materializes the full output. The logical plan
  /// (and the storage behind its scans) must stay alive for the call.
  ExecutionResult Run(LogicalNode* root);

  /// Runs an already-built physical plan.
  ExecutionResult Run(PhysicalPlan* plan);

  /// The physical plan of the most recent Run(LogicalNode*) call.
  const PhysicalPlan* last_plan() const { return last_plan_.get(); }

  const Options& options() const { return options_; }

 private:
  QueryCounters* counters_;
  TempFileManager* temp_;
  Options options_;
  std::unique_ptr<PhysicalPlan> last_plan_;
};

}  // namespace ovc::plan

#endif  // OVC_PLAN_PLAN_EXECUTOR_H_
