#include "plan/plan_executor.h"

#include <utility>

#include "core/ovc_checker.h"

namespace ovc::plan {

PlanExecutor::PlanExecutor(QueryCounters* counters, TempFileManager* temp,
                           Options options)
    : counters_(counters), temp_(temp), options_(std::move(options)) {}

PhysicalPlan PlanExecutor::Plan(LogicalNode* root) {
  Planner planner(counters_, temp_, options_.planner);
  return planner.Plan(root);
}

ExecutionResult PlanExecutor::Run(LogicalNode* root) {
  last_plan_ = std::make_unique<PhysicalPlan>(Plan(root));
  return Run(last_plan_.get());
}

ExecutionResult PlanExecutor::Run(PhysicalPlan* plan) {
  Operator* root = plan->root();
  ExecutionResult result;
  result.order = plan->root_order();
  result.rows = RowBuffer(root->schema().total_columns());

  // Validation applies exactly when the plan promises the full contract:
  // a sorted stream whose rows carry valid codes.
  const bool validate =
      options_.validate &&
      plan->root_order().SortedWithCodes(root->schema().key_arity());
  OvcStreamChecker checker(&root->schema());

  // Drain the root block-wise: one virtual NextBatch per block instead of
  // one virtual Next per row, with bulk appends into the result buffer.
  // Validation still observes every row in stream order, so it checks the
  // sorted-with-codes contract across block boundaries too.
  root->Open();
  RowBlock block(root->schema().total_columns(), options_.batch_rows);
  uint32_t n;
  while ((n = root->NextBatch(&block)) > 0) {
    if (validate) {
      for (uint32_t i = 0; i < n; ++i) {
        checker.Observe(block.row(i), block.code(i));
      }
    }
    result.rows.AppendRows(block.data(), n);
  }
  root->Close();
  // Parallel plans meter each worker pipeline through its own counters
  // (the MergeExchange threading contract); fold them into the session
  // counters now that every producer thread has joined, so comparison
  // accounting is exact and repeated runs do not double-count.
  plan->RollUpWorkerCounters(counters_);

  if (validate) {
    result.validated = true;
    if (!checker.ok()) {
      result.validation_error = checker.error();
      if (options_.abort_on_violation) {
        std::fprintf(stderr, "plan output stream violation: %s\n",
                     checker.error().c_str());
        OVC_CHECK(checker.ok());
      }
    }
  }
  return result;
}

}  // namespace ovc::plan
