#include "plan/plan_executor.h"

#include <utility>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/ovc_checker.h"

namespace ovc::plan {

PlanExecutor::PlanExecutor(QueryCounters* counters, TempFileManager* temp,
                           Options options)
    : counters_(counters), temp_(temp), options_(std::move(options)) {}

PhysicalPlan PlanExecutor::Plan(LogicalNode* root) {
  return Plan(root, options_.planner);
}

PhysicalPlan PlanExecutor::Plan(LogicalNode* root,
                                const PlannerOptions& planner_options) {
  Planner planner(counters_, temp_, planner_options);
  return planner.Plan(root);
}

ExecutionResult PlanExecutor::Run(LogicalNode* root) {
  last_plan_ = std::make_unique<PhysicalPlan>(Plan(root));
  return Run(last_plan_.get());
}

ExecutionResult PlanExecutor::Run(PhysicalPlan* plan) {
  OVC_TRACE_SPAN("plan.execute");
  Operator* root = plan->root();
  ExecutionResult result;
  result.order = plan->root_order();
  result.rows = RowBuffer(root->schema().total_columns());

  // Validation applies exactly when the plan promises the full contract:
  // a sorted stream whose rows carry valid codes.
  const bool validate =
      options_.validate &&
      plan->root_order().SortedWithCodes(root->schema().key_arity());
  OvcStreamChecker checker(&root->schema());

  // Drain the root block-wise: one virtual NextBatch per block instead of
  // one virtual Next per row, with bulk appends into the result buffer.
  // Validation still observes every row in stream order, so it checks the
  // sorted-with-codes contract across block boundaries too.
  QueryProfile* profile = plan->profile();
  const uint64_t wall_start = profile != nullptr ? ProfileTicks() : 0;
  // Errors from degrading operators land in the temp manager's first-error
  // slot; start the run with a clean slot so a stale error from an earlier
  // statement cannot fail this one.
  if (temp_ != nullptr) temp_->ClearError();
  root->Open();
  RowBlock block(root->schema().total_columns(), options_.batch_rows);
  // Process-wide drain accounting: one sharded relaxed fetch_add per
  // *batch*, not per row, so the hot path stays inside the <=2%
  // instrumentation budget (bench/bench_metrics_overhead.cc prices it).
  metrics::Counter& batch_metric =
      OVC_METRIC_COUNTER("exec.batches", "Batches drained from root plans");
  metrics::Counter& row_metric =
      OVC_METRIC_COUNTER("exec.rows", "Rows drained from root plans");
  uint32_t n;
  while ((n = root->NextBatch(&block)) > 0) {
    batch_metric.Increment();
    row_metric.Add(n);
    if (validate) {
      for (uint32_t i = 0; i < n; ++i) {
        checker.Observe(block.row(i), block.code(i));
      }
    }
    result.rows.AppendRows(block.data(), n);
  }
  root->Close();
  // Parallel plans meter each worker pipeline through its own counters
  // (the MergeExchange threading contract); fold them into the session
  // counters now that every producer thread has joined, so comparison
  // accounting is exact and repeated runs do not double-count.
  plan->RollUpWorkerCounters(counters_);
  if (profile != nullptr) {
    // Same roll-up for the profile's per-operator slices: every producer
    // thread has joined, so aggregating and folding into the session
    // counters here is exact.
    const uint64_t wall_ns = TicksToNs(ProfileTicks() - wall_start);
    const QueryCounters rolled = profile->FinishRun(counters_, wall_ns);
    if (options_.validate) {
      // Self-consistency of the per-operator attribution: summing the
      // per-node counter totals over the plan tree must reproduce the
      // query totals this run just rolled up -- a double-counted or
      // dropped slice breaks the equality. The root's actual row count
      // must likewise match the materialized result.
      OVC_CHECK(profile->TreeCounterTotals() == rolled);
      OVC_CHECK(profile->ActualRows(profile->root()) ==
                result.rows.size());
    }
  }

  // A degrading operator stops producing and records why; surface that as
  // the result status so callers report a clean error instead of serving
  // the truncated prefix.
  if (temp_ != nullptr) {
    result.status = temp_->first_error();
    if (!result.status.ok()) temp_->ClearError();
  }

  if (validate) {
    result.validated = true;
    if (!checker.ok()) {
      result.validation_error = checker.error();
      if (options_.abort_on_violation) {
        std::fprintf(stderr, "plan output stream violation: %s\n",
                     checker.error().c_str());
        OVC_CHECK(checker.ok());
      }
    }
  }
  return result;
}

}  // namespace ovc::plan
