#include "plan/physical_plan.h"

#include <algorithm>
#include <utility>

#include "exec/dedup.h"
#include "exec/hash_aggregate.h"
#include "exec/hash_join.h"
#include "exec/in_sort_aggregate.h"
#include "exec/limit.h"
#include "exec/profiled_operator.h"
#include "exec/project.h"
#include "exec/sort_operator.h"
#include "plan/cost_model.h"

namespace ovc::plan {

const char* PhysicalAlgName(PhysicalAlg alg) {
  switch (alg) {
    case PhysicalAlg::kScan:
      return "scan";
    case PhysicalAlg::kFilter:
      return "filter";
    case PhysicalAlg::kProject:
      return "project";
    case PhysicalAlg::kMergeJoin:
      return "merge-join";
    case PhysicalAlg::kOrderPreservingHashJoin:
      return "hash-join(order-preserving)";
    case PhysicalAlg::kGraceHashJoin:
      return "hash-join(grace)";
    case PhysicalAlg::kInStreamAggregate:
      return "in-stream-aggregate";
    case PhysicalAlg::kInSortAggregate:
      return "in-sort-aggregate";
    case PhysicalAlg::kHashAggregate:
      return "hash-aggregate";
    case PhysicalAlg::kDedup:
      return "dedup";
    case PhysicalAlg::kInSortDistinct:
      return "in-sort-distinct";
    case PhysicalAlg::kHashDistinct:
      return "hash-distinct";
    case PhysicalAlg::kSetOperation:
      return "set-operation";
    case PhysicalAlg::kSort:
      return "sort";
    case PhysicalAlg::kElidedSort:
      return "elided-sort";
    case PhysicalAlg::kLimit:
      return "limit";
    case PhysicalAlg::kSplitExchange:
      return "split-exchange";
    case PhysicalAlg::kMergeExchange:
      return "merge-exchange";
  }
  return "unknown";
}

bool PhysicalPlan::Uses(PhysicalAlg alg) const {
  return std::find(algorithms_.begin(), algorithms_.end(), alg) !=
         algorithms_.end();
}

PhysicalPlan::~PhysicalPlan() {
  while (!operators_.empty()) operators_.pop_back();
}

void PhysicalPlan::RollUpWorkerCounters(QueryCounters* into) {
  for (auto& wc : worker_counters_) {
    if (into != nullptr) into->Merge(*wc);
    wc->Reset();
  }
}

namespace {

/// True when `prop` delivers the stream fully sorted (on every key column
/// of `schema`) together with valid codes -- the runtime precondition of
/// every code-consuming operator.
bool SortedWithCodesOn(const OrderProperty& prop, const Schema& schema) {
  return prop.SortedWithCodes(schema.key_arity());
}

/// Property a SortOperator configured with `config` delivers.
OrderProperty SortOutput(const Schema& schema, const SortConfig& config) {
  return OrderProperty::Sorted(schema.key_arity(),
                               config.use_ovc || config.naive_output_codes);
}

/// CostModel matching `options` (constants + memory budgets).
CostModel ModelFor(const PlannerOptions& options) {
  return CostModel(options.cost_constants, options.sort_config,
                   options.hash_memory_rows);
}

/// Cost of a full sort of `card` rows shaped like `schema`.
double SortCostFor(const CostModel& model, const CardEstimate& card,
                   const Schema& schema) {
  return model.Sort(card.rows, schema.key_arity(),
                    card.DistinctPrefix(schema.key_arity()),
                    schema.total_columns());
}

// ---------------------------------------------------------------------------
// Pure decision rules, shared by the instantiating planner and the pure
// inference entry point so the two can never disagree. Under
// CostPolicy::kCostBased the open calls compare cost estimates; under
// kRuleBased they reproduce the PR 1..4 policy exactly.
// ---------------------------------------------------------------------------

struct JoinDecision {
  PhysicalAlg alg;
  bool sort_left = false;
  bool sort_right = false;
  /// True when the physical output layout must be projected back to the
  /// canonical merge-join layout.
  bool normalize = false;
  OrderProperty out;
};

bool HashSupports(JoinType type) {
  return type == JoinType::kInner || type == JoinType::kLeftOuter ||
         type == JoinType::kLeftSemi || type == JoinType::kLeftAnti;
}

JoinTypeHash ToHashType(JoinType type) {
  switch (type) {
    case JoinType::kInner:
      return JoinTypeHash::kInner;
    case JoinType::kLeftOuter:
      return JoinTypeHash::kLeftOuter;
    case JoinType::kLeftSemi:
      return JoinTypeHash::kLeftSemi;
    case JoinType::kLeftAnti:
      return JoinTypeHash::kLeftAnti;
    default:
      OVC_CHECK(false);
  }
  return JoinTypeHash::kInner;
}

JoinDecision DecideJoin(const LogicalNode& node, const OrderProperty& left,
                        const OrderProperty& right,
                        const PlannerOptions& options) {
  const Schema& ls = node.children[0]->schema;
  const Schema& rs = node.children[1]->schema;
  const bool l_ok = SortedWithCodesOn(left, ls);
  const bool r_ok = SortedWithCodesOn(right, rs);
  const JoinType type = node.join_type;
  const bool combines = type != JoinType::kLeftSemi &&
                        type != JoinType::kLeftAnti &&
                        type != JoinType::kRightSemi &&
                        type != JoinType::kRightAnti;

  JoinDecision d;
  d.out = OrderProperty::Sorted(node.schema.key_arity(), /*ovc=*/true);
  if (l_ok && r_ok) {
    // Both inputs arrive sorted with codes: the merge join both exploits
    // and reproduces them (Section 4.7) at pure code-comparison cost --
    // nothing can beat it, under either policy.
    d.alg = PhysicalAlg::kMergeJoin;
    return d;
  }
  const bool hash_allowed = !options.prefer_sort_based && HashSupports(type);
  if (options.cost_policy == CostPolicy::kCostBased) {
    const CostModel model = ModelFor(options);
    const CardEstimate lc = CardOf(*node.children[0], options.cost_constants);
    const CardEstimate rc = CardOf(*node.children[1], options.cost_constants);
    const double out_rows = CardOf(node, options.cost_constants).rows;
    // The sort-based fallback: sorts exactly where order or codes are
    // missing, then merge join (spilling gracefully past the sort memory
    // budget).
    const double sort_merge = (l_ok ? 0.0 : SortCostFor(model, lc, ls)) +
                              (r_ok ? 0.0 : SortCostFor(model, rc, rs)) +
                              model.MergeJoin(lc.rows, rc.rows, out_rows);
    if (hash_allowed && !l_ok &&
        (type == JoinType::kInner || type == JoinType::kLeftSemi)) {
      // No order on the probe side: grace hash join versus sorting both
      // inputs, decided by estimated cost under the memory budgets --
      // grace pays a partition write+read round trip for both sides once
      // the build exceeds hash_memory_rows, which is where the sort-based
      // plan starts winning (the Figure 6 race). An ordered coded probe
      // (l_ok below) is never discarded for a hash join.
      // Combining hash joins pay the layout-restoring projection back to
      // the canonical merge layout; merge joins never do. Charge it here
      // so the decision threshold matches the recorded estimates.
      const double grace = model.GraceHashJoin(lc.rows, rc.rows, out_rows,
                                               ls.total_columns(),
                                               rs.total_columns()) +
                           (combines ? model.Project(out_rows) : 0.0);
      if (grace < sort_merge) {
        d.alg = PhysicalAlg::kGraceHashJoin;
        d.normalize = combines;
        d.out = OrderProperty::Unsorted();
        return d;
      }
    }
    if (hash_allowed && l_ok && options.assume_build_fits_memory &&
        rc.rows <= static_cast<double>(options.hash_memory_rows)) {
      // Sorted probe over an unsorted build with a residency vouch: the
      // order-preserving in-memory hash join (Section 4.9) versus sorting
      // only the build side. The estimate must also respect the budget
      // the vouch is about -- the operator aborts past it.
      const double in_memory_hash =
          model.OrderPreservingHashJoin(lc.rows, rc.rows, out_rows) +
          (combines ? model.Project(out_rows) : 0.0);
      if (in_memory_hash < sort_merge) {
        d.alg = PhysicalAlg::kOrderPreservingHashJoin;
        d.normalize = combines;
        return d;
      }
    }
    d.alg = PhysicalAlg::kMergeJoin;
    d.sort_left = !l_ok;
    d.sort_right = !r_ok;
    return d;
  }
  // Rule-based policy (pre-PR5 behavior, byte for byte).
  if (hash_allowed) {
    if (l_ok && options.assume_build_fits_memory) {
      // Probe side ordered and coded: the in-memory hash join preserves
      // both (Section 4.9), at the price of a resident build side. Only
      // when the caller vouches for the build fitting in memory -- the
      // operator aborts past its budget, so the robust default below
      // sorts the build side and merge joins instead.
      d.alg = PhysicalAlg::kOrderPreservingHashJoin;
      d.normalize = combines;
      return d;
    }
    if (!l_ok && (type == JoinType::kInner || type == JoinType::kLeftSemi)) {
      // No order anywhere: grace hash join. An order-interested parent is
      // deliberately NOT honored here -- it is cheaper to let the parent
      // absorb the disorder with an order-producing operator over the join
      // *output* (in-sort aggregation/distinct, Figure 5's early-
      // aggregation shape) than to sort both join *inputs*; the
      // cost-based policy revisits this per cardinality and memory
      // budget.
      d.alg = PhysicalAlg::kGraceHashJoin;
      d.normalize = combines;
      d.out = OrderProperty::Unsorted();
      return d;
    }
  }
  // Sort-based fallback: insert sorts exactly where order or codes are
  // missing, then merge join. This also serves a sorted probe over an
  // unsorted build when assume_build_fits_memory is off: only the build
  // side is sorted, the probe's order and codes are reused as-is, and
  // everything spills gracefully.
  d.alg = PhysicalAlg::kMergeJoin;
  d.sort_left = !l_ok;
  d.sort_right = !r_ok;
  return d;
}

struct UnaryDecision {
  PhysicalAlg alg;
  bool sort_child = false;
  OrderProperty out;
};

UnaryDecision DecideAggregate(const LogicalNode& node,
                              const OrderProperty& child,
                              const PlannerOptions& options) {
  UnaryDecision d;
  if (child.SortedOn(node.group_prefix)) {
    // Sorted input: group boundaries are one integer test per row when
    // codes are present, column comparisons otherwise (Figure 4's two
    // sides). Cheapest under either policy.
    d.alg = PhysicalAlg::kInStreamAggregate;
    d.out = OrderProperty::Sorted(node.group_prefix, child.has_ovc);
    return d;
  }
  if (node.required.interested() || options.prefer_sort_based) {
    // The parent can exploit order (or sort-based planning is forced):
    // aggregate inside the sort, collapsing duplicates at every stage
    // (Figure 5's sort-based plan). This gate survives the cost-based
    // policy as a robustness guard: producing the order here feeds the
    // parent codes for free, while a hash aggregate would force the
    // parent to re-sort output whose duplicate density the model can
    // only guess.
    d.alg = PhysicalAlg::kInSortAggregate;
    d.out = OrderProperty::Sorted(node.schema.key_arity(), /*ovc=*/true);
    return d;
  }
  if (options.cost_policy == CostPolicy::kCostBased) {
    // Order-indifferent parent: in-sort versus hash aggregation by
    // estimated cost under the memory budgets. In memory the hash
    // aggregate wins on constants; once the estimated group count
    // overflows hash_memory_rows the hash table starts spilling input
    // rows while duplicate collapse keeps the sort's spill volume bounded
    // by the group count -- the point where Figure 5's sort-based plan
    // takes over.
    const CostModel model = ModelFor(options);
    const CardEstimate cc = CardOf(*node.children[0], options.cost_constants);
    const double groups = cc.DistinctPrefix(node.group_prefix);
    const double in_sort =
        model.InSortAggregate(cc.rows, groups, node.group_prefix, groups,
                              node.schema.total_columns());
    const double hash =
        model.HashAggregate(cc.rows, groups, node.schema.total_columns());
    if (in_sort < hash) {
      d.alg = PhysicalAlg::kInSortAggregate;
      d.out = OrderProperty::Sorted(node.schema.key_arity(), /*ovc=*/true);
      return d;
    }
  }
  d.alg = PhysicalAlg::kHashAggregate;
  d.out = OrderProperty::Unsorted();
  return d;
}

UnaryDecision DecideDistinct(const LogicalNode& node,
                             const OrderProperty& child,
                             const PlannerOptions& options) {
  const Schema& schema = node.schema;
  UnaryDecision d;
  if (SortedWithCodesOn(child, schema)) {
    // Duplicates are rows whose code offset equals the arity: removal
    // without looking at a single column value (Section 4.4).
    d.alg = PhysicalAlg::kDedup;
    d.out = child;
    return d;
  }
  const bool keeps_payloads = schema.payload_columns() > 0;
  if (!keeps_payloads && !options.prefer_sort_based &&
      !node.required.interested()) {
    if (options.cost_policy == CostPolicy::kCostBased) {
      // Same open call as the aggregate above, over the full key.
      const CostModel model = ModelFor(options);
      const CardEstimate cc =
          CardOf(*node.children[0], options.cost_constants);
      const double groups = cc.DistinctPrefix(schema.key_arity());
      const double in_sort =
          model.InSortAggregate(cc.rows, groups, schema.key_arity(), groups,
                                schema.total_columns());
      const double hash =
          model.HashAggregate(cc.rows, groups, schema.total_columns());
      if (in_sort < hash) {
        d.alg = PhysicalAlg::kInSortDistinct;
        d.out = OrderProperty::Sorted(schema.key_arity(), /*ovc=*/true);
        return d;
      }
    }
    d.alg = PhysicalAlg::kHashDistinct;
    d.out = OrderProperty::Unsorted();
    return d;
  }
  if (!keeps_payloads) {
    // Key-only distinct folds into the sort itself: each run spills at
    // most one copy per key.
    d.alg = PhysicalAlg::kInSortDistinct;
    d.out = OrderProperty::Sorted(schema.key_arity(), /*ovc=*/true);
    return d;
  }
  // DISTINCT that carries payload columns keeps the first surviving row
  // per key; that is inherently order-based here: sort, then code-only
  // duplicate removal.
  d.alg = PhysicalAlg::kDedup;
  d.sort_child = true;
  d.out = OrderProperty::Sorted(schema.key_arity(), /*ovc=*/true);
  return d;
}

UnaryDecision DecideSort(const LogicalNode& node, const OrderProperty& child,
                         const PlannerOptions& options) {
  UnaryDecision d;
  if (SortedWithCodesOn(child, node.schema)) {
    // The planner's key property payoff: input already sorted and coded
    // means the sort disappears entirely -- zero cost beats any resort
    // under any policy.
    d.alg = PhysicalAlg::kElidedSort;
    d.out = child;
    return d;
  }
  d.alg = PhysicalAlg::kSort;
  d.out = SortOutput(node.schema, options.sort_config);
  return d;
}

UnaryDecision DecideTopK(const LogicalNode& node, const OrderProperty& child,
                         const PlannerOptions& options) {
  UnaryDecision d;
  d.alg = PhysicalAlg::kLimit;
  if (SortedWithCodesOn(child, node.schema)) {
    d.out = child;
  } else {
    d.sort_child = true;
    d.out = SortOutput(node.schema, options.sort_config);
  }
  return d;
}

/// Mirrors ProjectOperator's order-preservation rule: the output key
/// columns must be exactly the leading input key columns with matching
/// directions, and the input must be sorted with codes.
OrderProperty ProjectOutput(const LogicalNode& node,
                            const OrderProperty& child) {
  const Schema& in = node.children[0]->schema;
  const Schema& out = node.schema;
  if (!SortedWithCodesOn(child, in) || out.key_arity() > in.key_arity()) {
    return OrderProperty::Unsorted();
  }
  for (uint32_t i = 0; i < out.key_arity(); ++i) {
    if (node.mapping[i] != i || out.direction(i) != in.direction(i)) {
      return OrderProperty::Unsorted();
    }
  }
  return OrderProperty::Sorted(out.key_arity(), /*ovc=*/true);
}

OrderProperty FilterOutput(const OrderProperty& child) {
  // FilterOperator passes order through and re-derives codes by the filter
  // theorem when the child carries them.
  return OrderProperty::Sorted(child.sorted_prefix,
                               child.sorted() && child.has_ovc);
}

/// The single rule table behind order-property inference: the property
/// this node's chosen physical form delivers, given its children's
/// properties. Both the public recursive InferOrderProperty and the
/// planner's memoizing AnnotateInferred pass are thin wrappers over this,
/// so the two can never disagree.
OrderProperty NodeOutputProperty(const LogicalNode& node,
                                 const OrderProperty* child_props,
                                 const PlannerOptions& options) {
  switch (node.op) {
    case LogicalOp::kScan:
      return node.source.order;
    case LogicalOp::kFilter:
      return FilterOutput(child_props[0]);
    case LogicalOp::kProject:
      return ProjectOutput(node, child_props[0]);
    case LogicalOp::kJoin:
      return DecideJoin(node, child_props[0], child_props[1], options).out;
    case LogicalOp::kAggregate:
      return DecideAggregate(node, child_props[0], options).out;
    case LogicalOp::kDistinct:
      return DecideDistinct(node, child_props[0], options).out;
    case LogicalOp::kSetOp:
      return OrderProperty::Sorted(node.schema.key_arity(), /*ovc=*/true);
    case LogicalOp::kSort:
      return DecideSort(node, child_props[0], options).out;
    case LogicalOp::kTopK:
      return DecideTopK(node, child_props[0], options).out;
    case LogicalOp::kLimit:
      // Truncation preserves whatever the child delivers.
      return child_props[0];
  }
  return OrderProperty::Unsorted();
}

std::string IndentBlock(const std::string& block) {
  std::string out;
  out.reserve(block.size() + 32);
  size_t start = 0;
  while (start < block.size()) {
    size_t end = block.find('\n', start);
    if (end == std::string::npos) end = block.size() - 1;
    out += "  ";
    out.append(block, start, end - start + 1);
    start = end + 1;
  }
  return out;
}

const char* SplitPolicyName(SplitExchange::Policy policy) {
  switch (policy) {
    case SplitExchange::Policy::kHashKey:
      return "hash";
    case SplitExchange::Policy::kRoundRobin:
      return "round-robin";
    case SplitExchange::Policy::kRangeFirstColumn:
      return "range";
  }
  return "unknown";
}

/// The explain-line prefix shared by EXPLAIN and the profile's node
/// labels: "alg(detail) [order]".
std::string ProfileLabel(PhysicalAlg alg, const OrderProperty& prop,
                         const std::string& detail) {
  std::string line = PhysicalAlgName(alg);
  if (!detail.empty()) line += "(" + detail + ")";
  line += " [" + prop.ToString() + "]";
  return line;
}

std::string ExplainLine(PhysicalAlg alg, const OrderProperty& prop,
                        const std::string& detail, const NodeEstimate& est) {
  return ProfileLabel(alg, prop, detail) + " " + RenderEstimate(est) + "\n";
}

}  // namespace

OrderProperty InferOrderProperty(const LogicalNode& node,
                                 const PlannerOptions& options) {
  OrderProperty child_props[2];
  for (size_t i = 0; i < node.children.size() && i < 2; ++i) {
    child_props[i] = InferOrderProperty(*node.children[i], options);
  }
  return NodeOutputProperty(node, child_props, options);
}

namespace {

/// Bottom-up pass caching each node's decision-rule property in
/// `node->inferred` -- the memoized form of InferOrderProperty (one
/// NodeOutputProperty call per node for the whole tree).
OrderProperty AnnotateInferred(LogicalNode* node,
                               const PlannerOptions& options) {
  OrderProperty child_props[2];
  for (size_t i = 0; i < node->children.size() && i < 2; ++i) {
    child_props[i] = AnnotateInferred(node->children[i].get(), options);
  }
  node->inferred = NodeOutputProperty(*node, child_props, options);
  return node->inferred;
}

}  // namespace

Planner::Planner(QueryCounters* counters, TempFileManager* temp,
                 PlannerOptions options)
    : counters_(counters),
      temp_(temp),
      options_(std::move(options)),
      cost_model_(options_.cost_constants, options_.sort_config,
                  options_.hash_memory_rows) {}

PhysicalPlan Planner::Plan(LogicalNode* root) {
  InferOrderRequirements(root);
  // Cardinalities first: the decision rules behind the inferred-property
  // pass consult them under the cost-based policy.
  AnnotateCardinalities(root, options_.cost_constants);
  AnnotateInferred(root, options_);
  PhysicalPlan plan;
  if (options_.profile) plan.profile_ = std::make_unique<QueryProfile>();
  Built built = BuildNode(root, &plan, 0, counters_);
  plan.root_ = built.op;
  plan.root_order_ = built.prop;
  plan.root_estimate_ = built.est;
  if (plan.profile_) plan.profile_->SetRoot(built.pnode);
  // The operator contract (exec/operator.h) must agree with what the
  // decision rules predicted; a mismatch is a planner bug.
  OVC_DCHECK(built.op->sorted() == built.prop.sorted());
  OVC_DCHECK(built.op->has_ovc() == built.prop.has_ovc);
  return plan;
}

Planner::Meter Planner::NewMeter(PhysicalPlan* plan, QueryCounters* fallback) {
  Meter m;
  QueryProfile* profile = plan->profile();
  if (profile == nullptr) {
    m.ctrs = fallback;
    return m;
  }
  m.node = profile->AddNode();
  m.slice = profile->AddSlice(m.node);
  m.ctrs = &m.slice->counters;
  return m;
}

Operator* Planner::Wrap(PhysicalPlan* plan, Operator* op, const Meter& m) {
  if (m.slice == nullptr) return op;
  return plan->Own(std::make_unique<ProfiledOperator>(op, m.slice));
}

void Planner::SetProfileLine(PhysicalPlan* plan, const Meter& m,
                             PhysicalAlg alg, const std::string& detail,
                             const OrderProperty& prop,
                             const NodeEstimate& est,
                             const std::vector<int>& children,
                             const std::string& table) {
  if (m.node < 0) return;
  plan->profile()->SetLine(m.node, ProfileLabel(alg, prop, detail), est.rows,
                           est.cost, children, table);
}

Planner::Built Planner::InsertSort(Built child,
                                   const LogicalNode* logical_child,
                                   PhysicalPlan* plan, int depth,
                                   QueryCounters* ctrs) {
  (void)depth;
  // Planner-inserted sorts always feed code-consuming operators (merge
  // join, dedup, set operation), so the configured sort must deliver
  // codes; catch a code-free ablation config here, at plan time, instead
  // of deep inside a downstream operator's precondition check.
  OVC_CHECK(options_.sort_config.use_ovc ||
            options_.sort_config.naive_output_codes);
  const Meter m = NewMeter(plan, ctrs);
  auto sort = std::make_unique<SortOperator>(child.op, m.ctrs, temp_,
                                             options_.sort_config);
  const Schema& schema = child.op->schema();
  const CardEstimate cc = CardOf(*logical_child, options_.cost_constants);
  Built built;
  built.prop = SortOutput(schema, options_.sort_config);
  built.est.rows = child.est.rows;
  built.est.cost = child.est.cost + SortCostFor(cost_model_, cc, schema);
  built.op = Wrap(plan, plan->Own(std::move(sort)), m);
  built.explain = ExplainLine(PhysicalAlg::kSort, built.prop, "inserted",
                              built.est) +
                  IndentBlock(child.explain);
  SetProfileLine(plan, m, PhysicalAlg::kSort, "inserted", built.prop,
                 built.est, {child.pnode});
  built.pnode = m.node;
  ++plan->inserted_sorts_;
  plan->RecordAlg(PhysicalAlg::kSort, built.est);
  return built;
}

Operator* Planner::BuildExchangeRegion(
    const std::vector<Operator*>& children,
    const std::vector<QueryCounters*>& child_counters,
    const std::vector<NodeEstimate>& child_ests,
    const NodeEstimate& region_est, SplitExchange::Policy policy,
    uint32_t hash_prefix, QueryCounters* merge_counters, PhysicalPlan* plan,
    const std::function<std::unique_ptr<Operator>(
        const std::vector<Operator*>& parts, QueryCounters* wc)>&
        make_worker,
    const RegionProfile& rp, Meter* merge_meter) {
  OVC_CHECK(children.size() == child_counters.size());
  OVC_CHECK(children.size() == child_ests.size());
  QueryProfile* profile = plan->profile();
  const uint32_t workers = options_.parallelism;
  // A split pumps the shared child from whichever worker thread pulls
  // first, all under its pump mutex -- so it shares the region counters
  // its child subtree was built with (one instance per split, rolled up
  // after the run, never the consumer-side counters). Under profiling the
  // routing work is charged to the split's own profile node instead.
  std::vector<SplitExchange*> splits;
  std::vector<int> split_nodes;
  for (size_t c = 0; c < children.size(); ++c) {
    plan->RecordAlg(PhysicalAlg::kSplitExchange, child_ests[c]);
    QueryCounters* split_ctrs = child_counters[c];
    int snode = -1;
    if (profile != nullptr) {
      snode = profile->AddNode();
      // Slice 0 meters the routing work (hash computations, under the pump
      // mutex); the per-partition pull slices added below meter rows and
      // pull time, one per consuming thread.
      split_ctrs = &profile->AddSlice(snode)->counters;
      profile->SetLine(snode,
                       ProfileLabel(PhysicalAlg::kSplitExchange, rp.part_prop,
                                    SplitPolicyName(policy)),
                       child_ests[c].rows, child_ests[c].cost,
                       {rp.child_pnodes[c]});
    }
    split_nodes.push_back(snode);
    splits.push_back(plan->OwnSplit(std::make_unique<SplitExchange>(
        children[c], workers, policy, split_ctrs,
        std::vector<uint64_t>{}, hash_prefix)));
  }
  int wnode = -1;
  if (profile != nullptr) {
    wnode = profile->AddNode();
    profile->SetLine(
        wnode, ProfileLabel(rp.worker_alg, rp.worker_prop, rp.worker_detail),
        rp.worker_est.rows, rp.worker_est.cost, split_nodes);
  }
  std::vector<Operator*> worker_ops;
  for (uint32_t w = 0; w < workers; ++w) {
    std::vector<Operator*> parts;
    parts.reserve(splits.size());
    for (size_t c = 0; c < splits.size(); ++c) {
      Operator* part = splits[c]->partition(w);
      if (profile != nullptr) {
        // One slice per partition stream: each stream is pulled by exactly
        // one worker, and their row counts sum to the split's output.
        part = plan->Own(std::make_unique<ProfiledOperator>(
            part, profile->AddSlice(split_nodes[c])));
      }
      parts.push_back(part);
    }
    QueryCounters* wc = nullptr;
    OperatorStats* wslice = nullptr;
    if (profile != nullptr) {
      // The worker's stats slice doubles as its counters instance,
      // preserving the one-instance-per-producer-thread contract.
      wslice = profile->AddSlice(wnode);
      wc = &wslice->counters;
    } else {
      wc = plan->NewWorkerCounters();
    }
    Operator* worker = plan->Own(make_worker(parts, wc));
    if (wslice != nullptr) {
      worker = plan->Own(std::make_unique<ProfiledOperator>(worker, wslice));
    }
    worker_ops.push_back(worker);
  }
  plan->RecordAlg(PhysicalAlg::kMergeExchange, region_est);
  if (workers > plan->parallel_workers_) plan->parallel_workers_ = workers;
  Meter mm;
  mm.ctrs = merge_counters;
  if (profile != nullptr) {
    mm.node = profile->AddNode();
    mm.slice = profile->AddSlice(mm.node);
    mm.ctrs = &mm.slice->counters;
    profile->SetLine(mm.node,
                     ProfileLabel(PhysicalAlg::kMergeExchange, rp.worker_prop,
                                  std::to_string(workers) + " workers"),
                     region_est.rows, region_est.cost, {wnode});
  }
  // The caller wraps the returned exchange with this meter (after any
  // normalizing projection), so consumer-side pull time and output rows
  // land on the merge node.
  *merge_meter = mm;
  return plan->Own(std::make_unique<MergeExchange>(worker_ops, mm.ctrs,
                                                   options_.exchange));
}

namespace {

/// Explain block for an exchange-parallel region: merge-exchange over
/// `workers` copies of the worker operator (`worker_line`), fed by one
/// splitting exchange per input subtree. `part_prop` is the per-partition
/// property the split preserves (the filter theorem keeps a sorted coded
/// child sorted and coded within every partition).
std::string ExplainParallelRegion(uint32_t workers,
                                  const OrderProperty& out_prop,
                                  const NodeEstimate& region_est,
                                  const std::string& worker_line,
                                  SplitExchange::Policy policy,
                                  const OrderProperty& part_prop,
                                  const std::vector<std::string>& inputs,
                                  const std::vector<NodeEstimate>& in_ests) {
  std::string split_block;
  for (size_t i = 0; i < inputs.size(); ++i) {
    split_block += ExplainLine(PhysicalAlg::kSplitExchange, part_prop,
                               SplitPolicyName(policy), in_ests[i]) +
                   IndentBlock(inputs[i]);
  }
  return ExplainLine(PhysicalAlg::kMergeExchange, out_prop,
                     std::to_string(workers) + " workers", region_est) +
         IndentBlock(worker_line + IndentBlock(split_block));
}

}  // namespace

Planner::Built Planner::BuildNode(LogicalNode* node, PhysicalPlan* plan,
                                  int depth, QueryCounters* ctrs) {
  Built result;
  std::string explain;
  const CostModel& model = cost_model_;
  const double out_rows = node->card.rows;

  switch (node->op) {
    case LogicalOp::kScan: {
      const Meter m = NewMeter(plan, ctrs);
      result.op = Wrap(plan, plan->Own(node->source.factory()), m);
      result.prop = node->source.order;
      result.est = {out_rows, model.Scan(out_rows)};
      plan->RecordAlg(PhysicalAlg::kScan, result.est);
      explain = ExplainLine(PhysicalAlg::kScan, result.prop,
                            node->source.name, result.est);
      SetProfileLine(plan, m, PhysicalAlg::kScan, node->source.name,
                     result.prop, result.est, {}, node->source.name);
      result.pnode = m.node;
      break;
    }

    case LogicalOp::kFilter: {
      Built child = BuildNode(node->children[0].get(), plan, depth + 1, ctrs);
      const Meter m = NewMeter(plan, ctrs);
      result.op = Wrap(plan,
                       plan->Own(std::make_unique<FilterOperator>(
                           child.op, node->predicate, node->block_predicate)),
                       m);
      result.prop = FilterOutput(child.prop);
      result.est = {out_rows, child.est.cost +
                                  model.Filter(child.est.rows, out_rows)};
      plan->RecordAlg(PhysicalAlg::kFilter, result.est);
      explain = ExplainLine(PhysicalAlg::kFilter, result.prop, "",
                            result.est) +
                IndentBlock(child.explain);
      SetProfileLine(plan, m, PhysicalAlg::kFilter, "", result.prop,
                     result.est, {child.pnode});
      result.pnode = m.node;
      break;
    }

    case LogicalOp::kProject: {
      Built child = BuildNode(node->children[0].get(), plan, depth + 1, ctrs);
      const Meter m = NewMeter(plan, ctrs);
      result.op = Wrap(plan,
                       plan->Own(std::make_unique<ProjectOperator>(
                           child.op, node->schema, node->mapping)),
                       m);
      result.prop = ProjectOutput(*node, child.prop);
      result.est = {out_rows, child.est.cost + model.Project(out_rows)};
      plan->RecordAlg(PhysicalAlg::kProject, result.est);
      explain = ExplainLine(PhysicalAlg::kProject, result.prop, "",
                            result.est) +
                IndentBlock(child.explain);
      SetProfileLine(plan, m, PhysicalAlg::kProject, "", result.prop,
                     result.est, {child.pnode});
      result.pnode = m.node;
      break;
    }

    case LogicalOp::kJoin: {
      // Pre-decide on the *inferred* child properties (inference runs the
      // same decision rules, so it agrees with the post-build decision):
      // a parallel merge join's input subtrees -- including any inserted
      // sorts -- execute on producer threads under their split's pump
      // mutex, so each side must be built with its own region counters
      // rather than the consumer thread's.
      const bool pre_parallel_join =
          ParallelEnabled() &&
          DecideJoin(*node, node->children[0]->inferred,
                     node->children[1]->inferred, options_)
                  .alg == PhysicalAlg::kMergeJoin;
      QueryCounters* left_ctrs =
          pre_parallel_join ? plan->NewWorkerCounters() : ctrs;
      QueryCounters* right_ctrs =
          pre_parallel_join ? plan->NewWorkerCounters() : ctrs;
      Built left = BuildNode(node->children[0].get(), plan, depth + 1,
                             left_ctrs);
      Built right = BuildNode(node->children[1].get(), plan, depth + 1,
                              right_ctrs);
      JoinDecision d = DecideJoin(*node, left.prop, right.prop, options_);
      if (d.sort_left) {
        left = InsertSort(std::move(left), node->children[0].get(), plan,
                          depth + 1, left_ctrs);
      }
      if (d.sort_right) {
        right = InsertSort(std::move(right), node->children[1].get(), plan,
                           depth + 1, right_ctrs);
      }
      double alg_cost = 0;
      switch (d.alg) {
        case PhysicalAlg::kMergeJoin:
          alg_cost = model.MergeJoin(left.est.rows, right.est.rows, out_rows);
          break;
        case PhysicalAlg::kOrderPreservingHashJoin:
          alg_cost = model.OrderPreservingHashJoin(left.est.rows,
                                                   right.est.rows, out_rows);
          break;
        case PhysicalAlg::kGraceHashJoin:
          alg_cost = model.GraceHashJoin(
              left.est.rows, right.est.rows, out_rows,
              node->children[0]->schema.total_columns(),
              node->children[1]->schema.total_columns());
          break;
        default:
          OVC_CHECK(false);
      }
      // The normalize projection below (hash joins of combining types) is
      // part of this node's physical form: fold its cost in before the
      // estimate is recorded anywhere.
      const double normalize_cost =
          d.normalize ? model.Project(out_rows) : 0.0;
      result.est = {out_rows, left.est.cost + right.est.cost + alg_cost +
                                  normalize_cost};
      Operator* join = nullptr;
      const bool parallel_join =
          pre_parallel_join && d.alg == PhysicalAlg::kMergeJoin;
      NodeEstimate left_split = left.est;
      NodeEstimate right_split = right.est;
      // Cumulative estimate of one worker's merge join (the plan node
      // inserted between the splits and the merging exchange).
      NodeEstimate join_worker_est = result.est;
      if (parallel_join) {
        left_split.cost +=
            model.SplitExchange(left.est.rows, /*hash_policy=*/true);
        right_split.cost +=
            model.SplitExchange(right.est.rows, /*hash_policy=*/true);
        join_worker_est.cost =
            left_split.cost + right_split.cost + alg_cost;
        result.est.cost = join_worker_est.cost +
                          model.MergeExchange(out_rows,
                                              options_.parallelism);
      }
      // The meter of this node's plan line: the merge-exchange meter for
      // the parallel shape (set by BuildExchangeRegion), a fresh serial
      // meter otherwise. The final Wrap sits outside any normalizing
      // projection, so the line's rows/time cover the node's full
      // physical form.
      Meter jm;
      switch (d.alg) {
        case PhysicalAlg::kMergeJoin:
          if (parallel_join) {
            // Co-partitioned parallel merge join: hash-split both (sorted,
            // coded) inputs on the join key with the same hash, so each
            // key lands in the same partition index on both sides; one
            // merge join per partition pair; merge-exchange restores the
            // single sorted coded output stream.
            const JoinType type = node->join_type;
            RegionProfile rp;
            rp.child_pnodes = {left.pnode, right.pnode};
            rp.worker_alg = d.alg;
            rp.worker_detail =
                std::string(JoinTypeName(node->join_type)) + ", per worker";
            rp.worker_prop = d.out;
            rp.worker_est = join_worker_est;
            rp.part_prop = OrderProperty::Sorted(
                node->children[0]->schema.key_arity(), /*ovc=*/true);
            join = BuildExchangeRegion(
                {left.op, right.op}, {left_ctrs, right_ctrs},
                {left_split, right_split}, result.est,
                SplitExchange::Policy::kHashKey,
                node->children[0]->schema.key_arity(), ctrs, plan,
                [type](const std::vector<Operator*>& parts,
                       QueryCounters* wc) {
                  return std::make_unique<MergeJoin>(parts[0], parts[1],
                                                     type, wc);
                },
                rp, &jm);
          } else {
            plan->RecordAlg(d.alg, result.est);
            jm = NewMeter(plan, ctrs);
            join = plan->Own(std::make_unique<MergeJoin>(
                left.op, right.op, node->join_type, jm.ctrs));
          }
          break;
        case PhysicalAlg::kOrderPreservingHashJoin:
          plan->RecordAlg(d.alg, result.est);
          jm = NewMeter(plan, ctrs);
          join = plan->Own(std::make_unique<OrderPreservingHashJoin>(
              left.op, right.op, node->children[0]->schema.key_arity(),
              ToHashType(node->join_type), options_.hash_memory_rows,
              jm.ctrs));
          break;
        case PhysicalAlg::kGraceHashJoin:
          plan->RecordAlg(d.alg, result.est);
          jm = NewMeter(plan, ctrs);
          join = plan->Own(std::make_unique<GraceHashJoin>(
              left.op, right.op, node->children[0]->schema.key_arity(),
              ToHashType(node->join_type), options_.hash_memory_rows,
              jm.ctrs, temp_, options_.hash_partitions, options_.fallback,
              options_.sort_config));
          break;
        default:
          OVC_CHECK(false);
      }
      if (parallel_join) {
        // BuildExchangeRegion recorded the region's algorithms; record
        // the worker join itself so Uses() still sees it.
        plan->RecordAlgBeforeLast(d.alg, join_worker_est);
      }
      if (d.normalize) {
        // Hash joins lay rows out as (probe keys, probe payloads, all
        // build columns, indicator); project back to the canonical merge
        // layout (key, left payloads, right payloads, indicator) so every
        // physical alternative yields identical rows.
        const Schema& ls = node->children[0]->schema;
        const Schema& rs = node->children[1]->schema;
        const uint32_t key = ls.key_arity();
        std::vector<uint32_t> mapping;
        for (uint32_t c = 0; c < key + ls.payload_columns(); ++c) {
          mapping.push_back(c);  // probe keys + probe payloads
        }
        const uint32_t build_base = key + ls.payload_columns();
        for (uint32_t c = 0; c < rs.payload_columns(); ++c) {
          mapping.push_back(build_base + key + c);  // build payloads
        }
        mapping.push_back(build_base + rs.total_columns());  // indicator
        join = plan->Own(
            std::make_unique<ProjectOperator>(join, node->schema, mapping));
      }
      result.op = Wrap(plan, join, jm);
      result.prop = d.out;
      if (!parallel_join) {
        SetProfileLine(plan, jm, d.alg, JoinTypeName(node->join_type),
                       result.prop, result.est, {left.pnode, right.pnode});
      }
      result.pnode = jm.node;
      if (parallel_join) {
        explain = ExplainParallelRegion(
            options_.parallelism, result.prop, result.est,
            ExplainLine(d.alg, result.prop,
                        std::string(JoinTypeName(node->join_type)) +
                            ", per worker",
                        join_worker_est),
            SplitExchange::Policy::kHashKey,
            OrderProperty::Sorted(node->children[0]->schema.key_arity(),
                                  /*ovc=*/true),
            {left.explain, right.explain}, {left_split, right_split});
      } else {
        explain = ExplainLine(d.alg, result.prop,
                              JoinTypeName(node->join_type), result.est) +
                  IndentBlock(left.explain) + IndentBlock(right.explain);
      }
      break;
    }

    case LogicalOp::kAggregate: {
      // Parallel aggregation: hash-split on the grouping prefix co-locates
      // every group in exactly one partition, so per-worker aggregation is
      // exact and the merge-exchange output needs no re-aggregation. The
      // in-stream flavor additionally needs child codes (split partitions
      // keep them by the filter theorem; the merge consumes worker codes),
      // the in-sort flavor produces its own. Pre-decide on the inferred
      // child property: the child subtree of a split executes on producer
      // threads, so it is built with region counters.
      const auto parallel_agg_for = [&](const OrderProperty& child_prop) {
        if (!ParallelEnabled() || node->group_prefix < 1) return false;
        UnaryDecision p = DecideAggregate(*node, child_prop, options_);
        return (p.alg == PhysicalAlg::kInStreamAggregate &&
                child_prop.has_ovc) ||
               p.alg == PhysicalAlg::kInSortAggregate;
      };
      const bool pre_parallel_agg =
          parallel_agg_for(node->children[0]->inferred);
      QueryCounters* region_ctrs =
          pre_parallel_agg ? plan->NewWorkerCounters() : ctrs;
      Built child = BuildNode(node->children[0].get(), plan, depth + 1,
                              region_ctrs);
      UnaryDecision d = DecideAggregate(*node, child.prop, options_);
      const bool parallel_agg =
          pre_parallel_agg && parallel_agg_for(child.prop);
      double alg_cost = 0;
      switch (d.alg) {
        case PhysicalAlg::kInStreamAggregate:
          alg_cost = model.InStreamAggregate(child.est.rows, out_rows,
                                             node->group_prefix,
                                             child.prop.has_ovc);
          break;
        case PhysicalAlg::kInSortAggregate:
          alg_cost = model.InSortAggregate(child.est.rows, out_rows,
                                           node->group_prefix, out_rows,
                                           node->schema.total_columns());
          break;
        case PhysicalAlg::kHashAggregate:
          alg_cost = model.HashAggregate(child.est.rows, out_rows,
                                         node->schema.total_columns());
          break;
        default:
          OVC_CHECK(false);
      }
      result.est = {out_rows, child.est.cost + alg_cost};
      NodeEstimate agg_split = child.est;
      NodeEstimate agg_worker_est = result.est;
      if (parallel_agg) {
        agg_split.cost +=
            model.SplitExchange(child.est.rows, /*hash_policy=*/true);
        agg_worker_est.cost = agg_split.cost + alg_cost;
        result.est.cost =
            agg_worker_est.cost +
            model.MergeExchange(out_rows, options_.parallelism);
        const uint32_t group_prefix = node->group_prefix;
        const std::vector<AggregateSpec>& aggregates = node->aggregates;
        const bool in_stream = d.alg == PhysicalAlg::kInStreamAggregate;
        TempFileManager* temp = temp_;
        const SortConfig& sort_config = options_.sort_config;
        RegionProfile rp;
        rp.child_pnodes = {child.pnode};
        rp.worker_alg = d.alg;
        rp.worker_detail =
            "group=" + std::to_string(node->group_prefix) + ", per worker";
        rp.worker_prop = d.out;
        rp.worker_est = agg_worker_est;
        rp.part_prop = child.prop;
        Meter am;
        result.op = Wrap(
            plan,
            BuildExchangeRegion(
                {child.op}, {region_ctrs}, {agg_split}, result.est,
                SplitExchange::Policy::kHashKey, group_prefix, ctrs, plan,
                [=](const std::vector<Operator*>& parts,
                    QueryCounters* wc) -> std::unique_ptr<Operator> {
                  if (in_stream) {
                    return std::make_unique<InStreamAggregate>(
                        parts[0], group_prefix, aggregates, wc);
                  }
                  return std::make_unique<InSortAggregate>(
                      parts[0], group_prefix, aggregates, wc, temp,
                      sort_config);
                },
                rp, &am),
            am);
        result.pnode = am.node;
        plan->RecordAlgBeforeLast(d.alg, agg_worker_est);
      } else {
        plan->RecordAlg(d.alg, result.est);
        const Meter m = NewMeter(plan, ctrs);
        switch (d.alg) {
          case PhysicalAlg::kInStreamAggregate: {
            InStreamAggregate::Options agg_options;
            agg_options.use_ovc_boundaries = child.prop.has_ovc;
            result.op = plan->Own(std::make_unique<InStreamAggregate>(
                child.op, node->group_prefix, node->aggregates, m.ctrs,
                agg_options));
            break;
          }
          case PhysicalAlg::kInSortAggregate:
            result.op = plan->Own(std::make_unique<InSortAggregate>(
                child.op, node->group_prefix, node->aggregates, m.ctrs,
                temp_, options_.sort_config));
            break;
          case PhysicalAlg::kHashAggregate:
            result.op = plan->Own(std::make_unique<HashAggregate>(
                child.op, node->group_prefix, node->aggregates,
                options_.hash_memory_rows, m.ctrs, temp_,
                options_.hash_partitions, options_.fallback,
                options_.sort_config));
            break;
          default:
            OVC_CHECK(false);
        }
        result.op = Wrap(plan, result.op, m);
        SetProfileLine(plan, m, d.alg,
                       "group=" + std::to_string(node->group_prefix), d.out,
                       result.est, {child.pnode});
        result.pnode = m.node;
      }
      result.prop = d.out;
      if (parallel_agg) {
        explain = ExplainParallelRegion(
            options_.parallelism, result.prop, result.est,
            ExplainLine(d.alg, result.prop,
                        "group=" + std::to_string(node->group_prefix) +
                            ", per worker",
                        agg_worker_est),
            SplitExchange::Policy::kHashKey, child.prop, {child.explain},
            {agg_split});
      } else {
        explain = ExplainLine(d.alg, result.prop,
                              "group=" + std::to_string(node->group_prefix),
                              result.est) +
                  IndentBlock(child.explain);
      }
      break;
    }

    case LogicalOp::kDistinct: {
      Built child = BuildNode(node->children[0].get(), plan, depth + 1, ctrs);
      UnaryDecision d = DecideDistinct(*node, child.prop, options_);
      if (d.sort_child) {
        child = InsertSort(std::move(child), node->children[0].get(), plan,
                           depth + 1, ctrs);
      }
      double alg_cost = 0;
      switch (d.alg) {
        case PhysicalAlg::kDedup:
          alg_cost = model.Dedup(child.est.rows);
          break;
        case PhysicalAlg::kInSortDistinct:
          alg_cost = model.InSortAggregate(child.est.rows, out_rows,
                                           node->schema.key_arity(),
                                           out_rows,
                                           node->schema.total_columns());
          break;
        case PhysicalAlg::kHashDistinct:
          alg_cost = model.HashAggregate(child.est.rows, out_rows,
                                         node->schema.total_columns());
          break;
        default:
          OVC_CHECK(false);
      }
      result.est = {out_rows, child.est.cost + alg_cost};
      plan->RecordAlg(d.alg, result.est);
      const Meter m = NewMeter(plan, ctrs);
      switch (d.alg) {
        case PhysicalAlg::kDedup:
          result.op = plan->Own(std::make_unique<DedupOperator>(child.op));
          break;
        case PhysicalAlg::kInSortDistinct:
          result.op = plan->Own(std::make_unique<InSortAggregate>(
              child.op, node->schema.key_arity(),
              std::vector<AggregateSpec>(), m.ctrs, temp_,
              options_.sort_config));
          break;
        case PhysicalAlg::kHashDistinct:
          result.op = plan->Own(std::make_unique<HashAggregate>(
              child.op, node->schema.key_arity(),
              std::vector<AggregateSpec>(), options_.hash_memory_rows,
              m.ctrs, temp_, options_.hash_partitions, options_.fallback,
              options_.sort_config));
          break;
        default:
          OVC_CHECK(false);
      }
      result.op = Wrap(plan, result.op, m);
      result.prop = d.out;
      explain = ExplainLine(d.alg, result.prop, "", result.est) +
                IndentBlock(child.explain);
      SetProfileLine(plan, m, d.alg, "", result.prop, result.est,
                     {child.pnode});
      result.pnode = m.node;
      break;
    }

    case LogicalOp::kSetOp: {
      Built left = BuildNode(node->children[0].get(), plan, depth + 1, ctrs);
      Built right = BuildNode(node->children[1].get(), plan, depth + 1, ctrs);
      if (!SortedWithCodesOn(left.prop, node->children[0]->schema)) {
        left = InsertSort(std::move(left), node->children[0].get(), plan,
                          depth + 1, ctrs);
      }
      if (!SortedWithCodesOn(right.prop, node->children[1]->schema)) {
        right = InsertSort(std::move(right), node->children[1].get(), plan,
                           depth + 1, ctrs);
      }
      result.est = {out_rows,
                    left.est.cost + right.est.cost +
                        model.SetOperation(left.est.rows, right.est.rows,
                                           out_rows)};
      const Meter m = NewMeter(plan, ctrs);
      result.op = Wrap(plan,
                       plan->Own(std::make_unique<SetOperation>(
                           left.op, right.op, node->set_op, node->set_all,
                           m.ctrs)),
                       m);
      result.prop =
          OrderProperty::Sorted(node->schema.key_arity(), /*ovc=*/true);
      plan->RecordAlg(PhysicalAlg::kSetOperation, result.est);
      explain = ExplainLine(PhysicalAlg::kSetOperation, result.prop,
                            node->set_all ? "all" : "distinct", result.est) +
                IndentBlock(left.explain) + IndentBlock(right.explain);
      SetProfileLine(plan, m, PhysicalAlg::kSetOperation,
                     node->set_all ? "all" : "distinct", result.prop,
                     result.est, {left.pnode, right.pnode});
      result.pnode = m.node;
      break;
    }

    case LogicalOp::kSort: {
      // The flagship parallel shape: round-robin split of the raw input,
      // partition-parallel run generation (one sort per worker, each the
      // sole producer of its codes), and a code-preserving merge-exchange
      // -- requires the configured sort to deliver output codes, which is
      // what the merging exchange consumes. Pre-decide on the inferred
      // child property so the subtree below the split is built with
      // region counters (it executes on producer threads).
      const auto parallel_sort_for = [&](const OrderProperty& child_prop) {
        if (!ParallelEnabled()) return false;
        UnaryDecision p = DecideSort(*node, child_prop, options_);
        return p.alg == PhysicalAlg::kSort && p.out.has_ovc;
      };
      const bool pre_parallel_sort =
          parallel_sort_for(node->children[0]->inferred);
      QueryCounters* region_ctrs =
          pre_parallel_sort ? plan->NewWorkerCounters() : ctrs;
      Built child = BuildNode(node->children[0].get(), plan, depth + 1,
                              region_ctrs);
      UnaryDecision d = DecideSort(*node, child.prop, options_);
      const bool parallel_sort =
          pre_parallel_sort && parallel_sort_for(child.prop);
      const double sort_cost =
          d.alg == PhysicalAlg::kElidedSort
              ? 0.0
              : SortCostFor(model, node->card, node->schema);
      result.est = {out_rows, child.est.cost + sort_cost};
      NodeEstimate sort_split = child.est;
      NodeEstimate sort_worker_est = result.est;
      if (d.alg == PhysicalAlg::kElidedSort) {
        result.op = child.op;  // the logical sort vanishes entirely
        ++plan->elided_sorts_;
        plan->RecordAlg(d.alg, result.est);
        // An elided sort is a plan line without an operator: its profile
        // node gets no stats slice, and reports its child's actuals.
        if (QueryProfile* profile = plan->profile()) {
          result.pnode = profile->AddNode();
          profile->SetLine(result.pnode, ProfileLabel(d.alg, d.out, ""),
                           result.est.rows, result.est.cost, {child.pnode});
        }
      } else if (parallel_sort) {
        sort_split.cost +=
            model.SplitExchange(child.est.rows, /*hash_policy=*/false);
        sort_worker_est.cost = sort_split.cost + sort_cost;
        result.est.cost =
            sort_worker_est.cost +
            model.MergeExchange(out_rows, options_.parallelism);
        TempFileManager* temp = temp_;
        const SortConfig& sort_config = options_.sort_config;
        RegionProfile rp;
        rp.child_pnodes = {child.pnode};
        rp.worker_alg = d.alg;
        rp.worker_detail = "per worker";
        rp.worker_prop = d.out;
        rp.worker_est = sort_worker_est;
        rp.part_prop = child.prop;
        Meter sm;
        result.op = Wrap(
            plan,
            BuildExchangeRegion(
                {child.op}, {region_ctrs}, {sort_split}, result.est,
                SplitExchange::Policy::kRoundRobin, 0, ctrs, plan,
                [temp, &sort_config](const std::vector<Operator*>& parts,
                                     QueryCounters* wc) {
                  return std::make_unique<SortOperator>(parts[0], wc, temp,
                                                        sort_config);
                },
                rp, &sm),
            sm);
        result.pnode = sm.node;
        plan->RecordAlgBeforeLast(d.alg, sort_worker_est);
        ++plan->explicit_sorts_;
      } else {
        plan->RecordAlg(d.alg, result.est);
        const Meter m = NewMeter(plan, ctrs);
        result.op = Wrap(plan,
                         plan->Own(std::make_unique<SortOperator>(
                             child.op, m.ctrs, temp_, options_.sort_config)),
                         m);
        SetProfileLine(plan, m, d.alg, "", d.out, result.est, {child.pnode});
        result.pnode = m.node;
        ++plan->explicit_sorts_;
      }
      result.prop = d.out;
      if (parallel_sort) {
        explain = ExplainParallelRegion(
            options_.parallelism, result.prop, result.est,
            ExplainLine(d.alg, result.prop, "per worker", sort_worker_est),
            SplitExchange::Policy::kRoundRobin, child.prop, {child.explain},
            {sort_split});
      } else {
        explain = ExplainLine(d.alg, result.prop, "", result.est) +
                  IndentBlock(child.explain);
      }
      break;
    }

    case LogicalOp::kTopK: {
      Built child = BuildNode(node->children[0].get(), plan, depth + 1, ctrs);
      UnaryDecision d = DecideTopK(*node, child.prop, options_);
      Operator* input = child.op;
      if (d.sort_child) {
        child = InsertSort(std::move(child), node->children[0].get(), plan,
                           depth + 1, ctrs);
        input = child.op;
      }
      const Meter m = NewMeter(plan, ctrs);
      result.op = Wrap(
          plan, plan->Own(std::make_unique<LimitOperator>(input, node->limit)),
          m);
      result.prop = d.out;
      result.est = {out_rows, child.est.cost + model.Limit(out_rows)};
      plan->RecordAlg(PhysicalAlg::kLimit, result.est);
      explain = ExplainLine(PhysicalAlg::kLimit, result.prop,
                            "k=" + std::to_string(node->limit), result.est) +
                IndentBlock(child.explain);
      SetProfileLine(plan, m, PhysicalAlg::kLimit,
                     "k=" + std::to_string(node->limit), result.prop,
                     result.est, {child.pnode});
      result.pnode = m.node;
      break;
    }

    case LogicalOp::kLimit: {
      // A bare limit (no order requested): truncate the child's stream in
      // whatever order it arrives, passing order and codes through.
      Built child = BuildNode(node->children[0].get(), plan, depth + 1, ctrs);
      const Meter m = NewMeter(plan, ctrs);
      result.op = Wrap(plan,
                       plan->Own(std::make_unique<LimitOperator>(
                           child.op, node->limit)),
                       m);
      result.prop = child.prop;
      result.est = {out_rows, child.est.cost + model.Limit(out_rows)};
      plan->RecordAlg(PhysicalAlg::kLimit, result.est);
      explain = ExplainLine(PhysicalAlg::kLimit, result.prop,
                            "k=" + std::to_string(node->limit), result.est) +
                IndentBlock(child.explain);
      SetProfileLine(plan, m, PhysicalAlg::kLimit,
                     "k=" + std::to_string(node->limit), result.prop,
                     result.est, {child.pnode});
      result.pnode = m.node;
      break;
    }
  }

  OVC_DCHECK(result.op->sorted() == result.prop.sorted());
  OVC_DCHECK(result.op->has_ovc() == result.prop.has_ovc);
  result.explain = std::move(explain);
  if (depth == 0) plan->explain_ = result.explain;
  return result;
}

}  // namespace ovc::plan
