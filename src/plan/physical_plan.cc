#include "plan/physical_plan.h"

#include <algorithm>
#include <utility>

#include "exec/dedup.h"
#include "exec/hash_aggregate.h"
#include "exec/hash_join.h"
#include "exec/in_sort_aggregate.h"
#include "exec/limit.h"
#include "exec/project.h"
#include "exec/sort_operator.h"

namespace ovc::plan {

const char* PhysicalAlgName(PhysicalAlg alg) {
  switch (alg) {
    case PhysicalAlg::kScan:
      return "scan";
    case PhysicalAlg::kFilter:
      return "filter";
    case PhysicalAlg::kProject:
      return "project";
    case PhysicalAlg::kMergeJoin:
      return "merge-join";
    case PhysicalAlg::kOrderPreservingHashJoin:
      return "hash-join(order-preserving)";
    case PhysicalAlg::kGraceHashJoin:
      return "hash-join(grace)";
    case PhysicalAlg::kInStreamAggregate:
      return "in-stream-aggregate";
    case PhysicalAlg::kInSortAggregate:
      return "in-sort-aggregate";
    case PhysicalAlg::kHashAggregate:
      return "hash-aggregate";
    case PhysicalAlg::kDedup:
      return "dedup";
    case PhysicalAlg::kInSortDistinct:
      return "in-sort-distinct";
    case PhysicalAlg::kHashDistinct:
      return "hash-distinct";
    case PhysicalAlg::kSetOperation:
      return "set-operation";
    case PhysicalAlg::kSort:
      return "sort";
    case PhysicalAlg::kElidedSort:
      return "elided-sort";
    case PhysicalAlg::kLimit:
      return "limit";
  }
  return "unknown";
}

bool PhysicalPlan::Uses(PhysicalAlg alg) const {
  return std::find(algorithms_.begin(), algorithms_.end(), alg) !=
         algorithms_.end();
}

namespace {

/// True when `prop` delivers the stream fully sorted (on every key column
/// of `schema`) together with valid codes -- the runtime precondition of
/// every code-consuming operator.
bool SortedWithCodesOn(const OrderProperty& prop, const Schema& schema) {
  return prop.SortedWithCodes(schema.key_arity());
}

/// Property a SortOperator configured with `config` delivers.
OrderProperty SortOutput(const Schema& schema, const SortConfig& config) {
  return OrderProperty::Sorted(schema.key_arity(),
                               config.use_ovc || config.naive_output_codes);
}

// ---------------------------------------------------------------------------
// Pure decision rules, shared by the instantiating planner and the pure
// inference entry point so the two can never disagree.
// ---------------------------------------------------------------------------

struct JoinDecision {
  PhysicalAlg alg;
  bool sort_left = false;
  bool sort_right = false;
  /// True when the physical output layout must be projected back to the
  /// canonical merge-join layout.
  bool normalize = false;
  OrderProperty out;
};

bool HashSupports(JoinType type) {
  return type == JoinType::kInner || type == JoinType::kLeftOuter ||
         type == JoinType::kLeftSemi || type == JoinType::kLeftAnti;
}

JoinTypeHash ToHashType(JoinType type) {
  switch (type) {
    case JoinType::kInner:
      return JoinTypeHash::kInner;
    case JoinType::kLeftOuter:
      return JoinTypeHash::kLeftOuter;
    case JoinType::kLeftSemi:
      return JoinTypeHash::kLeftSemi;
    case JoinType::kLeftAnti:
      return JoinTypeHash::kLeftAnti;
    default:
      OVC_CHECK(false);
  }
  return JoinTypeHash::kInner;
}

JoinDecision DecideJoin(const LogicalNode& node, const OrderProperty& left,
                        const OrderProperty& right,
                        const PlannerOptions& options) {
  const Schema& ls = node.children[0]->schema;
  const Schema& rs = node.children[1]->schema;
  const bool l_ok = SortedWithCodesOn(left, ls);
  const bool r_ok = SortedWithCodesOn(right, rs);
  const JoinType type = node.join_type;
  const bool combines = type != JoinType::kLeftSemi &&
                        type != JoinType::kLeftAnti &&
                        type != JoinType::kRightSemi &&
                        type != JoinType::kRightAnti;

  JoinDecision d;
  d.out = OrderProperty::Sorted(node.schema.key_arity(), /*ovc=*/true);
  if (l_ok && r_ok) {
    // Both inputs arrive sorted with codes: the merge join both exploits
    // and reproduces them (Section 4.7). Nothing to add.
    d.alg = PhysicalAlg::kMergeJoin;
    return d;
  }
  if (!options.prefer_sort_based && HashSupports(type)) {
    if (l_ok && options.assume_build_fits_memory) {
      // Probe side ordered and coded: the in-memory hash join preserves
      // both (Section 4.9), at the price of a resident build side. Only
      // when the caller vouches for the build fitting in memory -- the
      // operator aborts past its budget, so the robust default below
      // sorts the build side and merge joins instead.
      d.alg = PhysicalAlg::kOrderPreservingHashJoin;
      d.normalize = combines;
      return d;
    }
    if (!l_ok && (type == JoinType::kInner || type == JoinType::kLeftSemi)) {
      // No order anywhere: grace hash join. An order-interested parent is
      // deliberately NOT honored here -- it is cheaper to let the parent
      // absorb the disorder with an order-producing operator over the join
      // *output* (in-sort aggregation/distinct, Figure 5's early-
      // aggregation shape) than to sort both join *inputs*; revisiting
      // this per cardinality is the ROADMAP's cost-model item.
      d.alg = PhysicalAlg::kGraceHashJoin;
      d.normalize = combines;
      d.out = OrderProperty::Unsorted();
      return d;
    }
  }
  // Sort-based fallback: insert sorts exactly where order or codes are
  // missing, then merge join. This also serves a sorted probe over an
  // unsorted build when assume_build_fits_memory is off: only the build
  // side is sorted, the probe's order and codes are reused as-is, and
  // everything spills gracefully.
  d.alg = PhysicalAlg::kMergeJoin;
  d.sort_left = !l_ok;
  d.sort_right = !r_ok;
  return d;
}

struct UnaryDecision {
  PhysicalAlg alg;
  bool sort_child = false;
  OrderProperty out;
};

UnaryDecision DecideAggregate(const LogicalNode& node,
                              const OrderProperty& child,
                              const PlannerOptions& options) {
  UnaryDecision d;
  if (child.SortedOn(node.group_prefix)) {
    // Sorted input: group boundaries are one integer test per row when
    // codes are present, column comparisons otherwise (Figure 4's two
    // sides).
    d.alg = PhysicalAlg::kInStreamAggregate;
    d.out = OrderProperty::Sorted(node.group_prefix, child.has_ovc);
    return d;
  }
  if (node.required.interested() || options.prefer_sort_based) {
    // The parent can exploit order (or sort-based planning is forced):
    // aggregate inside the sort, collapsing duplicates at every stage
    // (Figure 5's sort-based plan).
    d.alg = PhysicalAlg::kInSortAggregate;
    d.out = OrderProperty::Sorted(node.schema.key_arity(), /*ovc=*/true);
    return d;
  }
  d.alg = PhysicalAlg::kHashAggregate;
  d.out = OrderProperty::Unsorted();
  return d;
}

UnaryDecision DecideDistinct(const LogicalNode& node,
                             const OrderProperty& child,
                             const PlannerOptions& options) {
  const Schema& schema = node.schema;
  UnaryDecision d;
  if (SortedWithCodesOn(child, schema)) {
    // Duplicates are rows whose code offset equals the arity: removal
    // without looking at a single column value (Section 4.4).
    d.alg = PhysicalAlg::kDedup;
    d.out = child;
    return d;
  }
  const bool keeps_payloads = schema.payload_columns() > 0;
  if (!keeps_payloads && !options.prefer_sort_based &&
      !node.required.interested()) {
    d.alg = PhysicalAlg::kHashDistinct;
    d.out = OrderProperty::Unsorted();
    return d;
  }
  if (!keeps_payloads) {
    // Key-only distinct folds into the sort itself: each run spills at
    // most one copy per key.
    d.alg = PhysicalAlg::kInSortDistinct;
    d.out = OrderProperty::Sorted(schema.key_arity(), /*ovc=*/true);
    return d;
  }
  // DISTINCT that carries payload columns keeps the first surviving row
  // per key; that is inherently order-based here: sort, then code-only
  // duplicate removal.
  d.alg = PhysicalAlg::kDedup;
  d.sort_child = true;
  d.out = OrderProperty::Sorted(schema.key_arity(), /*ovc=*/true);
  return d;
}

UnaryDecision DecideSort(const LogicalNode& node, const OrderProperty& child,
                         const PlannerOptions& options) {
  UnaryDecision d;
  if (SortedWithCodesOn(child, node.schema)) {
    // The planner's key property payoff: input already sorted and coded
    // means the sort disappears entirely.
    d.alg = PhysicalAlg::kElidedSort;
    d.out = child;
    return d;
  }
  d.alg = PhysicalAlg::kSort;
  d.out = SortOutput(node.schema, options.sort_config);
  return d;
}

UnaryDecision DecideTopK(const LogicalNode& node, const OrderProperty& child,
                         const PlannerOptions& options) {
  UnaryDecision d;
  d.alg = PhysicalAlg::kLimit;
  if (SortedWithCodesOn(child, node.schema)) {
    d.out = child;
  } else {
    d.sort_child = true;
    d.out = SortOutput(node.schema, options.sort_config);
  }
  return d;
}

/// Mirrors ProjectOperator's order-preservation rule: the output key
/// columns must be exactly the leading input key columns with matching
/// directions, and the input must be sorted with codes.
OrderProperty ProjectOutput(const LogicalNode& node,
                            const OrderProperty& child) {
  const Schema& in = node.children[0]->schema;
  const Schema& out = node.schema;
  if (!SortedWithCodesOn(child, in) || out.key_arity() > in.key_arity()) {
    return OrderProperty::Unsorted();
  }
  for (uint32_t i = 0; i < out.key_arity(); ++i) {
    if (node.mapping[i] != i || out.direction(i) != in.direction(i)) {
      return OrderProperty::Unsorted();
    }
  }
  return OrderProperty::Sorted(out.key_arity(), /*ovc=*/true);
}

OrderProperty FilterOutput(const OrderProperty& child) {
  // FilterOperator passes order through and re-derives codes by the filter
  // theorem when the child carries them.
  return OrderProperty::Sorted(child.sorted_prefix,
                               child.sorted() && child.has_ovc);
}

std::string IndentBlock(const std::string& block) {
  std::string out;
  out.reserve(block.size() + 32);
  size_t start = 0;
  while (start < block.size()) {
    size_t end = block.find('\n', start);
    if (end == std::string::npos) end = block.size() - 1;
    out += "  ";
    out.append(block, start, end - start + 1);
    start = end + 1;
  }
  return out;
}

std::string ExplainLine(PhysicalAlg alg, const OrderProperty& prop,
                        const std::string& detail) {
  std::string line = PhysicalAlgName(alg);
  if (!detail.empty()) line += "(" + detail + ")";
  line += " [" + prop.ToString() + "]\n";
  return line;
}

}  // namespace

OrderProperty InferOrderProperty(const LogicalNode& node,
                                 const PlannerOptions& options) {
  switch (node.op) {
    case LogicalOp::kScan:
      return node.source.order;
    case LogicalOp::kFilter:
      return FilterOutput(InferOrderProperty(*node.children[0], options));
    case LogicalOp::kProject:
      return ProjectOutput(node,
                           InferOrderProperty(*node.children[0], options));
    case LogicalOp::kJoin:
      return DecideJoin(node, InferOrderProperty(*node.children[0], options),
                        InferOrderProperty(*node.children[1], options),
                        options)
          .out;
    case LogicalOp::kAggregate:
      return DecideAggregate(
                 node, InferOrderProperty(*node.children[0], options), options)
          .out;
    case LogicalOp::kDistinct:
      return DecideDistinct(
                 node, InferOrderProperty(*node.children[0], options), options)
          .out;
    case LogicalOp::kSetOp:
      return OrderProperty::Sorted(node.schema.key_arity(), /*ovc=*/true);
    case LogicalOp::kSort:
      return DecideSort(node, InferOrderProperty(*node.children[0], options),
                        options)
          .out;
    case LogicalOp::kTopK:
      return DecideTopK(node, InferOrderProperty(*node.children[0], options),
                        options)
          .out;
  }
  return OrderProperty::Unsorted();
}

Planner::Planner(QueryCounters* counters, TempFileManager* temp,
                 PlannerOptions options)
    : counters_(counters), temp_(temp), options_(std::move(options)) {}

PhysicalPlan Planner::Plan(LogicalNode* root) {
  InferOrderRequirements(root);
  PhysicalPlan plan;
  Built built = BuildNode(root, &plan, 0);
  plan.root_ = built.op;
  plan.root_order_ = built.prop;
  // The operator contract (exec/operator.h) must agree with what the
  // decision rules predicted; a mismatch is a planner bug.
  OVC_DCHECK(built.op->sorted() == built.prop.sorted());
  OVC_DCHECK(built.op->has_ovc() == built.prop.has_ovc);
  return plan;
}

Planner::Built Planner::InsertSort(Built child, PhysicalPlan* plan,
                                   int depth) {
  (void)depth;
  // Planner-inserted sorts always feed code-consuming operators (merge
  // join, dedup, set operation), so the configured sort must deliver
  // codes; catch a code-free ablation config here, at plan time, instead
  // of deep inside a downstream operator's precondition check.
  OVC_CHECK(options_.sort_config.use_ovc ||
            options_.sort_config.naive_output_codes);
  auto sort = std::make_unique<SortOperator>(child.op, counters_, temp_,
                                             options_.sort_config);
  Built built;
  built.prop = SortOutput(child.op->schema(), options_.sort_config);
  built.op = plan->Own(std::move(sort));
  built.explain = std::move(child.explain);
  ++plan->inserted_sorts_;
  plan->algorithms_.push_back(PhysicalAlg::kSort);
  return built;
}

Planner::Built Planner::BuildNode(LogicalNode* node, PhysicalPlan* plan,
                                  int depth) {
  Built result;
  std::string explain;

  switch (node->op) {
    case LogicalOp::kScan: {
      result.op = plan->Own(node->source.factory());
      result.prop = node->source.order;
      plan->algorithms_.push_back(PhysicalAlg::kScan);
      explain = ExplainLine(PhysicalAlg::kScan, result.prop,
                            node->source.name);
      break;
    }

    case LogicalOp::kFilter: {
      Built child = BuildNode(node->children[0].get(), plan, depth + 1);
      result.op = plan->Own(std::make_unique<FilterOperator>(
          child.op, node->predicate, node->block_predicate));
      result.prop = FilterOutput(child.prop);
      plan->algorithms_.push_back(PhysicalAlg::kFilter);
      explain = ExplainLine(PhysicalAlg::kFilter, result.prop, "") +
                IndentBlock(child.explain);
      break;
    }

    case LogicalOp::kProject: {
      Built child = BuildNode(node->children[0].get(), plan, depth + 1);
      result.op = plan->Own(std::make_unique<ProjectOperator>(
          child.op, node->schema, node->mapping));
      result.prop = ProjectOutput(*node, child.prop);
      plan->algorithms_.push_back(PhysicalAlg::kProject);
      explain = ExplainLine(PhysicalAlg::kProject, result.prop, "") +
                IndentBlock(child.explain);
      break;
    }

    case LogicalOp::kJoin: {
      Built left = BuildNode(node->children[0].get(), plan, depth + 1);
      Built right = BuildNode(node->children[1].get(), plan, depth + 1);
      JoinDecision d = DecideJoin(*node, left.prop, right.prop, options_);
      if (d.sort_left) {
        left.explain = ExplainLine(PhysicalAlg::kSort, SortOutput(
            node->children[0]->schema, options_.sort_config), "inserted") +
            IndentBlock(left.explain);
        left = InsertSort(left, plan, depth + 1);
      }
      if (d.sort_right) {
        right.explain = ExplainLine(PhysicalAlg::kSort, SortOutput(
            node->children[1]->schema, options_.sort_config), "inserted") +
            IndentBlock(right.explain);
        right = InsertSort(right, plan, depth + 1);
      }
      Operator* join = nullptr;
      switch (d.alg) {
        case PhysicalAlg::kMergeJoin:
          join = plan->Own(std::make_unique<MergeJoin>(
              left.op, right.op, node->join_type, counters_));
          break;
        case PhysicalAlg::kOrderPreservingHashJoin:
          join = plan->Own(std::make_unique<OrderPreservingHashJoin>(
              left.op, right.op, node->children[0]->schema.key_arity(),
              ToHashType(node->join_type), options_.hash_memory_rows,
              counters_));
          break;
        case PhysicalAlg::kGraceHashJoin:
          join = plan->Own(std::make_unique<GraceHashJoin>(
              left.op, right.op, node->children[0]->schema.key_arity(),
              ToHashType(node->join_type), options_.hash_memory_rows,
              counters_, temp_, options_.hash_partitions));
          break;
        default:
          OVC_CHECK(false);
      }
      if (d.normalize) {
        // Hash joins lay rows out as (probe keys, probe payloads, all
        // build columns, indicator); project back to the canonical merge
        // layout (key, left payloads, right payloads, indicator) so every
        // physical alternative yields identical rows.
        const Schema& ls = node->children[0]->schema;
        const Schema& rs = node->children[1]->schema;
        const uint32_t key = ls.key_arity();
        std::vector<uint32_t> mapping;
        for (uint32_t c = 0; c < key + ls.payload_columns(); ++c) {
          mapping.push_back(c);  // probe keys + probe payloads
        }
        const uint32_t build_base = key + ls.payload_columns();
        for (uint32_t c = 0; c < rs.payload_columns(); ++c) {
          mapping.push_back(build_base + key + c);  // build payloads
        }
        mapping.push_back(build_base + rs.total_columns());  // indicator
        join = plan->Own(
            std::make_unique<ProjectOperator>(join, node->schema, mapping));
      }
      result.op = join;
      result.prop = d.out;
      plan->algorithms_.push_back(d.alg);
      explain = ExplainLine(d.alg, result.prop,
                            JoinTypeName(node->join_type)) +
                IndentBlock(left.explain) + IndentBlock(right.explain);
      break;
    }

    case LogicalOp::kAggregate: {
      Built child = BuildNode(node->children[0].get(), plan, depth + 1);
      UnaryDecision d = DecideAggregate(*node, child.prop, options_);
      switch (d.alg) {
        case PhysicalAlg::kInStreamAggregate: {
          InStreamAggregate::Options agg_options;
          agg_options.use_ovc_boundaries = child.prop.has_ovc;
          result.op = plan->Own(std::make_unique<InStreamAggregate>(
              child.op, node->group_prefix, node->aggregates, counters_,
              agg_options));
          break;
        }
        case PhysicalAlg::kInSortAggregate:
          result.op = plan->Own(std::make_unique<InSortAggregate>(
              child.op, node->group_prefix, node->aggregates, counters_,
              temp_, options_.sort_config));
          break;
        case PhysicalAlg::kHashAggregate:
          result.op = plan->Own(std::make_unique<HashAggregate>(
              child.op, node->group_prefix, node->aggregates,
              options_.hash_memory_rows, counters_, temp_,
              options_.hash_partitions));
          break;
        default:
          OVC_CHECK(false);
      }
      result.prop = d.out;
      plan->algorithms_.push_back(d.alg);
      explain = ExplainLine(d.alg, result.prop,
                            "group=" + std::to_string(node->group_prefix)) +
                IndentBlock(child.explain);
      break;
    }

    case LogicalOp::kDistinct: {
      Built child = BuildNode(node->children[0].get(), plan, depth + 1);
      UnaryDecision d = DecideDistinct(*node, child.prop, options_);
      if (d.sort_child) {
        child.explain = ExplainLine(PhysicalAlg::kSort, SortOutput(
            node->children[0]->schema, options_.sort_config), "inserted") +
            IndentBlock(child.explain);
        child = InsertSort(child, plan, depth + 1);
      }
      switch (d.alg) {
        case PhysicalAlg::kDedup:
          result.op = plan->Own(std::make_unique<DedupOperator>(child.op));
          break;
        case PhysicalAlg::kInSortDistinct:
          result.op = plan->Own(std::make_unique<InSortAggregate>(
              child.op, node->schema.key_arity(),
              std::vector<AggregateSpec>(), counters_, temp_,
              options_.sort_config));
          break;
        case PhysicalAlg::kHashDistinct:
          result.op = plan->Own(std::make_unique<HashAggregate>(
              child.op, node->schema.key_arity(),
              std::vector<AggregateSpec>(), options_.hash_memory_rows,
              counters_, temp_, options_.hash_partitions));
          break;
        default:
          OVC_CHECK(false);
      }
      result.prop = d.out;
      plan->algorithms_.push_back(d.alg);
      explain = ExplainLine(d.alg, result.prop, "") +
                IndentBlock(child.explain);
      break;
    }

    case LogicalOp::kSetOp: {
      Built left = BuildNode(node->children[0].get(), plan, depth + 1);
      Built right = BuildNode(node->children[1].get(), plan, depth + 1);
      if (!SortedWithCodesOn(left.prop, node->children[0]->schema)) {
        left.explain = ExplainLine(PhysicalAlg::kSort, SortOutput(
            node->children[0]->schema, options_.sort_config), "inserted") +
            IndentBlock(left.explain);
        left = InsertSort(left, plan, depth + 1);
      }
      if (!SortedWithCodesOn(right.prop, node->children[1]->schema)) {
        right.explain = ExplainLine(PhysicalAlg::kSort, SortOutput(
            node->children[1]->schema, options_.sort_config), "inserted") +
            IndentBlock(right.explain);
        right = InsertSort(right, plan, depth + 1);
      }
      result.op = plan->Own(std::make_unique<SetOperation>(
          left.op, right.op, node->set_op, node->set_all, counters_));
      result.prop =
          OrderProperty::Sorted(node->schema.key_arity(), /*ovc=*/true);
      plan->algorithms_.push_back(PhysicalAlg::kSetOperation);
      explain = ExplainLine(PhysicalAlg::kSetOperation, result.prop,
                            node->set_all ? "all" : "distinct") +
                IndentBlock(left.explain) + IndentBlock(right.explain);
      break;
    }

    case LogicalOp::kSort: {
      Built child = BuildNode(node->children[0].get(), plan, depth + 1);
      UnaryDecision d = DecideSort(*node, child.prop, options_);
      if (d.alg == PhysicalAlg::kElidedSort) {
        result.op = child.op;  // the logical sort vanishes entirely
        ++plan->elided_sorts_;
      } else {
        result.op = plan->Own(std::make_unique<SortOperator>(
            child.op, counters_, temp_, options_.sort_config));
        ++plan->explicit_sorts_;
      }
      result.prop = d.out;
      plan->algorithms_.push_back(d.alg);
      explain = ExplainLine(d.alg, result.prop, "") +
                IndentBlock(child.explain);
      break;
    }

    case LogicalOp::kTopK: {
      Built child = BuildNode(node->children[0].get(), plan, depth + 1);
      UnaryDecision d = DecideTopK(*node, child.prop, options_);
      Operator* input = child.op;
      if (d.sort_child) {
        child.explain = ExplainLine(PhysicalAlg::kSort, SortOutput(
            node->children[0]->schema, options_.sort_config), "inserted") +
            IndentBlock(child.explain);
        child = InsertSort(child, plan, depth + 1);
        input = child.op;
      }
      result.op =
          plan->Own(std::make_unique<LimitOperator>(input, node->limit));
      result.prop = d.out;
      plan->algorithms_.push_back(PhysicalAlg::kLimit);
      explain = ExplainLine(PhysicalAlg::kLimit, result.prop,
                            "k=" + std::to_string(node->limit)) +
                IndentBlock(child.explain);
      break;
    }
  }

  OVC_DCHECK(result.op->sorted() == result.prop.sorted());
  OVC_DCHECK(result.op->has_ovc() == result.prop.has_ovc);
  result.explain = std::move(explain);
  if (depth == 0) plan->explain_ = result.explain;
  return result;
}

}  // namespace ovc::plan
