#include "plan/physical_plan.h"

#include <algorithm>
#include <utility>

#include "exec/dedup.h"
#include "exec/hash_aggregate.h"
#include "exec/hash_join.h"
#include "exec/in_sort_aggregate.h"
#include "exec/limit.h"
#include "exec/project.h"
#include "exec/sort_operator.h"

namespace ovc::plan {

const char* PhysicalAlgName(PhysicalAlg alg) {
  switch (alg) {
    case PhysicalAlg::kScan:
      return "scan";
    case PhysicalAlg::kFilter:
      return "filter";
    case PhysicalAlg::kProject:
      return "project";
    case PhysicalAlg::kMergeJoin:
      return "merge-join";
    case PhysicalAlg::kOrderPreservingHashJoin:
      return "hash-join(order-preserving)";
    case PhysicalAlg::kGraceHashJoin:
      return "hash-join(grace)";
    case PhysicalAlg::kInStreamAggregate:
      return "in-stream-aggregate";
    case PhysicalAlg::kInSortAggregate:
      return "in-sort-aggregate";
    case PhysicalAlg::kHashAggregate:
      return "hash-aggregate";
    case PhysicalAlg::kDedup:
      return "dedup";
    case PhysicalAlg::kInSortDistinct:
      return "in-sort-distinct";
    case PhysicalAlg::kHashDistinct:
      return "hash-distinct";
    case PhysicalAlg::kSetOperation:
      return "set-operation";
    case PhysicalAlg::kSort:
      return "sort";
    case PhysicalAlg::kElidedSort:
      return "elided-sort";
    case PhysicalAlg::kLimit:
      return "limit";
    case PhysicalAlg::kSplitExchange:
      return "split-exchange";
    case PhysicalAlg::kMergeExchange:
      return "merge-exchange";
  }
  return "unknown";
}

bool PhysicalPlan::Uses(PhysicalAlg alg) const {
  return std::find(algorithms_.begin(), algorithms_.end(), alg) !=
         algorithms_.end();
}

PhysicalPlan::~PhysicalPlan() {
  while (!operators_.empty()) operators_.pop_back();
}

void PhysicalPlan::RollUpWorkerCounters(QueryCounters* into) {
  for (auto& wc : worker_counters_) {
    if (into != nullptr) into->Merge(*wc);
    wc->Reset();
  }
}

namespace {

/// True when `prop` delivers the stream fully sorted (on every key column
/// of `schema`) together with valid codes -- the runtime precondition of
/// every code-consuming operator.
bool SortedWithCodesOn(const OrderProperty& prop, const Schema& schema) {
  return prop.SortedWithCodes(schema.key_arity());
}

/// Property a SortOperator configured with `config` delivers.
OrderProperty SortOutput(const Schema& schema, const SortConfig& config) {
  return OrderProperty::Sorted(schema.key_arity(),
                               config.use_ovc || config.naive_output_codes);
}

// ---------------------------------------------------------------------------
// Pure decision rules, shared by the instantiating planner and the pure
// inference entry point so the two can never disagree.
// ---------------------------------------------------------------------------

struct JoinDecision {
  PhysicalAlg alg;
  bool sort_left = false;
  bool sort_right = false;
  /// True when the physical output layout must be projected back to the
  /// canonical merge-join layout.
  bool normalize = false;
  OrderProperty out;
};

bool HashSupports(JoinType type) {
  return type == JoinType::kInner || type == JoinType::kLeftOuter ||
         type == JoinType::kLeftSemi || type == JoinType::kLeftAnti;
}

JoinTypeHash ToHashType(JoinType type) {
  switch (type) {
    case JoinType::kInner:
      return JoinTypeHash::kInner;
    case JoinType::kLeftOuter:
      return JoinTypeHash::kLeftOuter;
    case JoinType::kLeftSemi:
      return JoinTypeHash::kLeftSemi;
    case JoinType::kLeftAnti:
      return JoinTypeHash::kLeftAnti;
    default:
      OVC_CHECK(false);
  }
  return JoinTypeHash::kInner;
}

JoinDecision DecideJoin(const LogicalNode& node, const OrderProperty& left,
                        const OrderProperty& right,
                        const PlannerOptions& options) {
  const Schema& ls = node.children[0]->schema;
  const Schema& rs = node.children[1]->schema;
  const bool l_ok = SortedWithCodesOn(left, ls);
  const bool r_ok = SortedWithCodesOn(right, rs);
  const JoinType type = node.join_type;
  const bool combines = type != JoinType::kLeftSemi &&
                        type != JoinType::kLeftAnti &&
                        type != JoinType::kRightSemi &&
                        type != JoinType::kRightAnti;

  JoinDecision d;
  d.out = OrderProperty::Sorted(node.schema.key_arity(), /*ovc=*/true);
  if (l_ok && r_ok) {
    // Both inputs arrive sorted with codes: the merge join both exploits
    // and reproduces them (Section 4.7). Nothing to add.
    d.alg = PhysicalAlg::kMergeJoin;
    return d;
  }
  if (!options.prefer_sort_based && HashSupports(type)) {
    if (l_ok && options.assume_build_fits_memory) {
      // Probe side ordered and coded: the in-memory hash join preserves
      // both (Section 4.9), at the price of a resident build side. Only
      // when the caller vouches for the build fitting in memory -- the
      // operator aborts past its budget, so the robust default below
      // sorts the build side and merge joins instead.
      d.alg = PhysicalAlg::kOrderPreservingHashJoin;
      d.normalize = combines;
      return d;
    }
    if (!l_ok && (type == JoinType::kInner || type == JoinType::kLeftSemi)) {
      // No order anywhere: grace hash join. An order-interested parent is
      // deliberately NOT honored here -- it is cheaper to let the parent
      // absorb the disorder with an order-producing operator over the join
      // *output* (in-sort aggregation/distinct, Figure 5's early-
      // aggregation shape) than to sort both join *inputs*; revisiting
      // this per cardinality is the ROADMAP's cost-model item.
      d.alg = PhysicalAlg::kGraceHashJoin;
      d.normalize = combines;
      d.out = OrderProperty::Unsorted();
      return d;
    }
  }
  // Sort-based fallback: insert sorts exactly where order or codes are
  // missing, then merge join. This also serves a sorted probe over an
  // unsorted build when assume_build_fits_memory is off: only the build
  // side is sorted, the probe's order and codes are reused as-is, and
  // everything spills gracefully.
  d.alg = PhysicalAlg::kMergeJoin;
  d.sort_left = !l_ok;
  d.sort_right = !r_ok;
  return d;
}

struct UnaryDecision {
  PhysicalAlg alg;
  bool sort_child = false;
  OrderProperty out;
};

UnaryDecision DecideAggregate(const LogicalNode& node,
                              const OrderProperty& child,
                              const PlannerOptions& options) {
  UnaryDecision d;
  if (child.SortedOn(node.group_prefix)) {
    // Sorted input: group boundaries are one integer test per row when
    // codes are present, column comparisons otherwise (Figure 4's two
    // sides).
    d.alg = PhysicalAlg::kInStreamAggregate;
    d.out = OrderProperty::Sorted(node.group_prefix, child.has_ovc);
    return d;
  }
  if (node.required.interested() || options.prefer_sort_based) {
    // The parent can exploit order (or sort-based planning is forced):
    // aggregate inside the sort, collapsing duplicates at every stage
    // (Figure 5's sort-based plan).
    d.alg = PhysicalAlg::kInSortAggregate;
    d.out = OrderProperty::Sorted(node.schema.key_arity(), /*ovc=*/true);
    return d;
  }
  d.alg = PhysicalAlg::kHashAggregate;
  d.out = OrderProperty::Unsorted();
  return d;
}

UnaryDecision DecideDistinct(const LogicalNode& node,
                             const OrderProperty& child,
                             const PlannerOptions& options) {
  const Schema& schema = node.schema;
  UnaryDecision d;
  if (SortedWithCodesOn(child, schema)) {
    // Duplicates are rows whose code offset equals the arity: removal
    // without looking at a single column value (Section 4.4).
    d.alg = PhysicalAlg::kDedup;
    d.out = child;
    return d;
  }
  const bool keeps_payloads = schema.payload_columns() > 0;
  if (!keeps_payloads && !options.prefer_sort_based &&
      !node.required.interested()) {
    d.alg = PhysicalAlg::kHashDistinct;
    d.out = OrderProperty::Unsorted();
    return d;
  }
  if (!keeps_payloads) {
    // Key-only distinct folds into the sort itself: each run spills at
    // most one copy per key.
    d.alg = PhysicalAlg::kInSortDistinct;
    d.out = OrderProperty::Sorted(schema.key_arity(), /*ovc=*/true);
    return d;
  }
  // DISTINCT that carries payload columns keeps the first surviving row
  // per key; that is inherently order-based here: sort, then code-only
  // duplicate removal.
  d.alg = PhysicalAlg::kDedup;
  d.sort_child = true;
  d.out = OrderProperty::Sorted(schema.key_arity(), /*ovc=*/true);
  return d;
}

UnaryDecision DecideSort(const LogicalNode& node, const OrderProperty& child,
                         const PlannerOptions& options) {
  UnaryDecision d;
  if (SortedWithCodesOn(child, node.schema)) {
    // The planner's key property payoff: input already sorted and coded
    // means the sort disappears entirely.
    d.alg = PhysicalAlg::kElidedSort;
    d.out = child;
    return d;
  }
  d.alg = PhysicalAlg::kSort;
  d.out = SortOutput(node.schema, options.sort_config);
  return d;
}

UnaryDecision DecideTopK(const LogicalNode& node, const OrderProperty& child,
                         const PlannerOptions& options) {
  UnaryDecision d;
  d.alg = PhysicalAlg::kLimit;
  if (SortedWithCodesOn(child, node.schema)) {
    d.out = child;
  } else {
    d.sort_child = true;
    d.out = SortOutput(node.schema, options.sort_config);
  }
  return d;
}

/// Mirrors ProjectOperator's order-preservation rule: the output key
/// columns must be exactly the leading input key columns with matching
/// directions, and the input must be sorted with codes.
OrderProperty ProjectOutput(const LogicalNode& node,
                            const OrderProperty& child) {
  const Schema& in = node.children[0]->schema;
  const Schema& out = node.schema;
  if (!SortedWithCodesOn(child, in) || out.key_arity() > in.key_arity()) {
    return OrderProperty::Unsorted();
  }
  for (uint32_t i = 0; i < out.key_arity(); ++i) {
    if (node.mapping[i] != i || out.direction(i) != in.direction(i)) {
      return OrderProperty::Unsorted();
    }
  }
  return OrderProperty::Sorted(out.key_arity(), /*ovc=*/true);
}

OrderProperty FilterOutput(const OrderProperty& child) {
  // FilterOperator passes order through and re-derives codes by the filter
  // theorem when the child carries them.
  return OrderProperty::Sorted(child.sorted_prefix,
                               child.sorted() && child.has_ovc);
}

/// The single rule table behind order-property inference: the property
/// this node's chosen physical form delivers, given its children's
/// properties. Both the public recursive InferOrderProperty and the
/// planner's memoizing AnnotateInferred pass are thin wrappers over this,
/// so the two can never disagree.
OrderProperty NodeOutputProperty(const LogicalNode& node,
                                 const OrderProperty* child_props,
                                 const PlannerOptions& options) {
  switch (node.op) {
    case LogicalOp::kScan:
      return node.source.order;
    case LogicalOp::kFilter:
      return FilterOutput(child_props[0]);
    case LogicalOp::kProject:
      return ProjectOutput(node, child_props[0]);
    case LogicalOp::kJoin:
      return DecideJoin(node, child_props[0], child_props[1], options).out;
    case LogicalOp::kAggregate:
      return DecideAggregate(node, child_props[0], options).out;
    case LogicalOp::kDistinct:
      return DecideDistinct(node, child_props[0], options).out;
    case LogicalOp::kSetOp:
      return OrderProperty::Sorted(node.schema.key_arity(), /*ovc=*/true);
    case LogicalOp::kSort:
      return DecideSort(node, child_props[0], options).out;
    case LogicalOp::kTopK:
      return DecideTopK(node, child_props[0], options).out;
    case LogicalOp::kLimit:
      // Truncation preserves whatever the child delivers.
      return child_props[0];
  }
  return OrderProperty::Unsorted();
}

std::string IndentBlock(const std::string& block) {
  std::string out;
  out.reserve(block.size() + 32);
  size_t start = 0;
  while (start < block.size()) {
    size_t end = block.find('\n', start);
    if (end == std::string::npos) end = block.size() - 1;
    out += "  ";
    out.append(block, start, end - start + 1);
    start = end + 1;
  }
  return out;
}

std::string ExplainLine(PhysicalAlg alg, const OrderProperty& prop,
                        const std::string& detail) {
  std::string line = PhysicalAlgName(alg);
  if (!detail.empty()) line += "(" + detail + ")";
  line += " [" + prop.ToString() + "]\n";
  return line;
}

}  // namespace

OrderProperty InferOrderProperty(const LogicalNode& node,
                                 const PlannerOptions& options) {
  OrderProperty child_props[2];
  for (size_t i = 0; i < node.children.size() && i < 2; ++i) {
    child_props[i] = InferOrderProperty(*node.children[i], options);
  }
  return NodeOutputProperty(node, child_props, options);
}

namespace {

/// Bottom-up pass caching each node's decision-rule property in
/// `node->inferred` -- the memoized form of InferOrderProperty (one
/// NodeOutputProperty call per node for the whole tree).
OrderProperty AnnotateInferred(LogicalNode* node,
                               const PlannerOptions& options) {
  OrderProperty child_props[2];
  for (size_t i = 0; i < node->children.size() && i < 2; ++i) {
    child_props[i] = AnnotateInferred(node->children[i].get(), options);
  }
  node->inferred = NodeOutputProperty(*node, child_props, options);
  return node->inferred;
}

}  // namespace

Planner::Planner(QueryCounters* counters, TempFileManager* temp,
                 PlannerOptions options)
    : counters_(counters), temp_(temp), options_(std::move(options)) {}

PhysicalPlan Planner::Plan(LogicalNode* root) {
  InferOrderRequirements(root);
  AnnotateInferred(root, options_);
  PhysicalPlan plan;
  Built built = BuildNode(root, &plan, 0, counters_);
  plan.root_ = built.op;
  plan.root_order_ = built.prop;
  // The operator contract (exec/operator.h) must agree with what the
  // decision rules predicted; a mismatch is a planner bug.
  OVC_DCHECK(built.op->sorted() == built.prop.sorted());
  OVC_DCHECK(built.op->has_ovc() == built.prop.has_ovc);
  return plan;
}

Planner::Built Planner::InsertSort(Built child, PhysicalPlan* plan,
                                   int depth, QueryCounters* ctrs) {
  (void)depth;
  // Planner-inserted sorts always feed code-consuming operators (merge
  // join, dedup, set operation), so the configured sort must deliver
  // codes; catch a code-free ablation config here, at plan time, instead
  // of deep inside a downstream operator's precondition check.
  OVC_CHECK(options_.sort_config.use_ovc ||
            options_.sort_config.naive_output_codes);
  auto sort = std::make_unique<SortOperator>(child.op, ctrs, temp_,
                                             options_.sort_config);
  Built built;
  built.prop = SortOutput(child.op->schema(), options_.sort_config);
  built.op = plan->Own(std::move(sort));
  built.explain = std::move(child.explain);
  ++plan->inserted_sorts_;
  plan->algorithms_.push_back(PhysicalAlg::kSort);
  return built;
}

Operator* Planner::BuildExchangeRegion(
    const std::vector<Operator*>& children,
    const std::vector<QueryCounters*>& child_counters,
    SplitExchange::Policy policy, uint32_t hash_prefix,
    QueryCounters* merge_counters, PhysicalPlan* plan,
    const std::function<std::unique_ptr<Operator>(
        const std::vector<Operator*>& parts, QueryCounters* wc)>&
        make_worker) {
  OVC_CHECK(children.size() == child_counters.size());
  const uint32_t workers = options_.parallelism;
  // A split pumps the shared child from whichever worker thread pulls
  // first, all under its pump mutex -- so it shares the region counters
  // its child subtree was built with (one instance per split, rolled up
  // after the run, never the consumer-side counters).
  std::vector<SplitExchange*> splits;
  for (size_t c = 0; c < children.size(); ++c) {
    plan->algorithms_.push_back(PhysicalAlg::kSplitExchange);
    splits.push_back(plan->OwnSplit(std::make_unique<SplitExchange>(
        children[c], workers, policy, child_counters[c],
        std::vector<uint64_t>{}, hash_prefix)));
  }
  std::vector<Operator*> worker_ops;
  for (uint32_t w = 0; w < workers; ++w) {
    std::vector<Operator*> parts;
    parts.reserve(splits.size());
    for (SplitExchange* split : splits) parts.push_back(split->partition(w));
    worker_ops.push_back(
        plan->Own(make_worker(parts, plan->NewWorkerCounters())));
  }
  plan->algorithms_.push_back(PhysicalAlg::kMergeExchange);
  if (workers > plan->parallel_workers_) plan->parallel_workers_ = workers;
  return plan->Own(std::make_unique<MergeExchange>(worker_ops, merge_counters,
                                                   options_.exchange));
}

namespace {

const char* SplitPolicyName(SplitExchange::Policy policy) {
  switch (policy) {
    case SplitExchange::Policy::kHashKey:
      return "hash";
    case SplitExchange::Policy::kRoundRobin:
      return "round-robin";
    case SplitExchange::Policy::kRangeFirstColumn:
      return "range";
  }
  return "unknown";
}

/// Explain block for an exchange-parallel region: merge-exchange over
/// `workers` copies of the worker operator (`worker_line`), fed by one
/// splitting exchange per input subtree. `part_prop` is the per-partition
/// property the split preserves (the filter theorem keeps a sorted coded
/// child sorted and coded within every partition).
std::string ExplainParallelRegion(uint32_t workers,
                                  const OrderProperty& out_prop,
                                  const std::string& worker_line,
                                  SplitExchange::Policy policy,
                                  const OrderProperty& part_prop,
                                  const std::vector<std::string>& inputs) {
  std::string split_block;
  for (const std::string& in : inputs) {
    split_block += ExplainLine(PhysicalAlg::kSplitExchange, part_prop,
                               SplitPolicyName(policy)) +
                   IndentBlock(in);
  }
  return ExplainLine(PhysicalAlg::kMergeExchange, out_prop,
                     std::to_string(workers) + " workers") +
         IndentBlock(worker_line + IndentBlock(split_block));
}

}  // namespace

Planner::Built Planner::BuildNode(LogicalNode* node, PhysicalPlan* plan,
                                  int depth, QueryCounters* ctrs) {
  Built result;
  std::string explain;

  switch (node->op) {
    case LogicalOp::kScan: {
      result.op = plan->Own(node->source.factory());
      result.prop = node->source.order;
      plan->algorithms_.push_back(PhysicalAlg::kScan);
      explain = ExplainLine(PhysicalAlg::kScan, result.prop,
                            node->source.name);
      break;
    }

    case LogicalOp::kFilter: {
      Built child = BuildNode(node->children[0].get(), plan, depth + 1, ctrs);
      result.op = plan->Own(std::make_unique<FilterOperator>(
          child.op, node->predicate, node->block_predicate));
      result.prop = FilterOutput(child.prop);
      plan->algorithms_.push_back(PhysicalAlg::kFilter);
      explain = ExplainLine(PhysicalAlg::kFilter, result.prop, "") +
                IndentBlock(child.explain);
      break;
    }

    case LogicalOp::kProject: {
      Built child = BuildNode(node->children[0].get(), plan, depth + 1, ctrs);
      result.op = plan->Own(std::make_unique<ProjectOperator>(
          child.op, node->schema, node->mapping));
      result.prop = ProjectOutput(*node, child.prop);
      plan->algorithms_.push_back(PhysicalAlg::kProject);
      explain = ExplainLine(PhysicalAlg::kProject, result.prop, "") +
                IndentBlock(child.explain);
      break;
    }

    case LogicalOp::kJoin: {
      // Pre-decide on the *inferred* child properties (inference runs the
      // same decision rules, so it agrees with the post-build decision):
      // a parallel merge join's input subtrees -- including any inserted
      // sorts -- execute on producer threads under their split's pump
      // mutex, so each side must be built with its own region counters
      // rather than the consumer thread's.
      const bool pre_parallel_join =
          ParallelEnabled() &&
          DecideJoin(*node, node->children[0]->inferred,
                     node->children[1]->inferred, options_)
                  .alg == PhysicalAlg::kMergeJoin;
      QueryCounters* left_ctrs =
          pre_parallel_join ? plan->NewWorkerCounters() : ctrs;
      QueryCounters* right_ctrs =
          pre_parallel_join ? plan->NewWorkerCounters() : ctrs;
      Built left = BuildNode(node->children[0].get(), plan, depth + 1,
                             left_ctrs);
      Built right = BuildNode(node->children[1].get(), plan, depth + 1,
                              right_ctrs);
      JoinDecision d = DecideJoin(*node, left.prop, right.prop, options_);
      if (d.sort_left) {
        left.explain = ExplainLine(PhysicalAlg::kSort, SortOutput(
            node->children[0]->schema, options_.sort_config), "inserted") +
            IndentBlock(left.explain);
        left = InsertSort(left, plan, depth + 1, left_ctrs);
      }
      if (d.sort_right) {
        right.explain = ExplainLine(PhysicalAlg::kSort, SortOutput(
            node->children[1]->schema, options_.sort_config), "inserted") +
            IndentBlock(right.explain);
        right = InsertSort(right, plan, depth + 1, right_ctrs);
      }
      Operator* join = nullptr;
      const bool parallel_join =
          pre_parallel_join && d.alg == PhysicalAlg::kMergeJoin;
      switch (d.alg) {
        case PhysicalAlg::kMergeJoin:
          if (parallel_join) {
            // Co-partitioned parallel merge join: hash-split both (sorted,
            // coded) inputs on the join key with the same hash, so each
            // key lands in the same partition index on both sides; one
            // merge join per partition pair; merge-exchange restores the
            // single sorted coded output stream.
            const JoinType type = node->join_type;
            join = BuildExchangeRegion(
                {left.op, right.op}, {left_ctrs, right_ctrs},
                SplitExchange::Policy::kHashKey,
                node->children[0]->schema.key_arity(), ctrs, plan,
                [type](const std::vector<Operator*>& parts,
                       QueryCounters* wc) {
                  return std::make_unique<MergeJoin>(parts[0], parts[1],
                                                     type, wc);
                });
          } else {
            join = plan->Own(std::make_unique<MergeJoin>(
                left.op, right.op, node->join_type, ctrs));
          }
          break;
        case PhysicalAlg::kOrderPreservingHashJoin:
          join = plan->Own(std::make_unique<OrderPreservingHashJoin>(
              left.op, right.op, node->children[0]->schema.key_arity(),
              ToHashType(node->join_type), options_.hash_memory_rows,
              ctrs));
          break;
        case PhysicalAlg::kGraceHashJoin:
          join = plan->Own(std::make_unique<GraceHashJoin>(
              left.op, right.op, node->children[0]->schema.key_arity(),
              ToHashType(node->join_type), options_.hash_memory_rows,
              ctrs, temp_, options_.hash_partitions));
          break;
        default:
          OVC_CHECK(false);
      }
      if (d.normalize) {
        // Hash joins lay rows out as (probe keys, probe payloads, all
        // build columns, indicator); project back to the canonical merge
        // layout (key, left payloads, right payloads, indicator) so every
        // physical alternative yields identical rows.
        const Schema& ls = node->children[0]->schema;
        const Schema& rs = node->children[1]->schema;
        const uint32_t key = ls.key_arity();
        std::vector<uint32_t> mapping;
        for (uint32_t c = 0; c < key + ls.payload_columns(); ++c) {
          mapping.push_back(c);  // probe keys + probe payloads
        }
        const uint32_t build_base = key + ls.payload_columns();
        for (uint32_t c = 0; c < rs.payload_columns(); ++c) {
          mapping.push_back(build_base + key + c);  // build payloads
        }
        mapping.push_back(build_base + rs.total_columns());  // indicator
        join = plan->Own(
            std::make_unique<ProjectOperator>(join, node->schema, mapping));
      }
      result.op = join;
      result.prop = d.out;
      plan->algorithms_.push_back(d.alg);
      if (parallel_join) {
        explain = ExplainParallelRegion(
            options_.parallelism, result.prop,
            ExplainLine(d.alg, result.prop,
                        std::string(JoinTypeName(node->join_type)) +
                            ", per worker"),
            SplitExchange::Policy::kHashKey,
            OrderProperty::Sorted(node->children[0]->schema.key_arity(),
                                  /*ovc=*/true),
            {left.explain, right.explain});
      } else {
        explain = ExplainLine(d.alg, result.prop,
                              JoinTypeName(node->join_type)) +
                  IndentBlock(left.explain) + IndentBlock(right.explain);
      }
      break;
    }

    case LogicalOp::kAggregate: {
      // Parallel aggregation: hash-split on the grouping prefix co-locates
      // every group in exactly one partition, so per-worker aggregation is
      // exact and the merge-exchange output needs no re-aggregation. The
      // in-stream flavor additionally needs child codes (split partitions
      // keep them by the filter theorem; the merge consumes worker codes),
      // the in-sort flavor produces its own. Pre-decide on the inferred
      // child property: the child subtree of a split executes on producer
      // threads, so it is built with region counters.
      const auto parallel_agg_for = [&](const OrderProperty& child_prop) {
        if (!ParallelEnabled() || node->group_prefix < 1) return false;
        UnaryDecision p = DecideAggregate(*node, child_prop, options_);
        return (p.alg == PhysicalAlg::kInStreamAggregate &&
                child_prop.has_ovc) ||
               p.alg == PhysicalAlg::kInSortAggregate;
      };
      const bool pre_parallel_agg =
          parallel_agg_for(node->children[0]->inferred);
      QueryCounters* region_ctrs =
          pre_parallel_agg ? plan->NewWorkerCounters() : ctrs;
      Built child = BuildNode(node->children[0].get(), plan, depth + 1,
                              region_ctrs);
      UnaryDecision d = DecideAggregate(*node, child.prop, options_);
      const bool parallel_agg =
          pre_parallel_agg && parallel_agg_for(child.prop);
      if (parallel_agg) {
        const uint32_t group_prefix = node->group_prefix;
        const std::vector<AggregateSpec>& aggregates = node->aggregates;
        const bool in_stream = d.alg == PhysicalAlg::kInStreamAggregate;
        TempFileManager* temp = temp_;
        const SortConfig& sort_config = options_.sort_config;
        result.op = BuildExchangeRegion(
            {child.op}, {region_ctrs}, SplitExchange::Policy::kHashKey,
            group_prefix, ctrs, plan,
            [=](const std::vector<Operator*>& parts,
                QueryCounters* wc) -> std::unique_ptr<Operator> {
              if (in_stream) {
                return std::make_unique<InStreamAggregate>(
                    parts[0], group_prefix, aggregates, wc);
              }
              return std::make_unique<InSortAggregate>(
                  parts[0], group_prefix, aggregates, wc, temp, sort_config);
            });
      } else {
        switch (d.alg) {
          case PhysicalAlg::kInStreamAggregate: {
            InStreamAggregate::Options agg_options;
            agg_options.use_ovc_boundaries = child.prop.has_ovc;
            result.op = plan->Own(std::make_unique<InStreamAggregate>(
                child.op, node->group_prefix, node->aggregates, ctrs,
                agg_options));
            break;
          }
          case PhysicalAlg::kInSortAggregate:
            result.op = plan->Own(std::make_unique<InSortAggregate>(
                child.op, node->group_prefix, node->aggregates, ctrs,
                temp_, options_.sort_config));
            break;
          case PhysicalAlg::kHashAggregate:
            result.op = plan->Own(std::make_unique<HashAggregate>(
                child.op, node->group_prefix, node->aggregates,
                options_.hash_memory_rows, ctrs, temp_,
                options_.hash_partitions));
            break;
          default:
            OVC_CHECK(false);
        }
      }
      result.prop = d.out;
      plan->algorithms_.push_back(d.alg);
      if (parallel_agg) {
        explain = ExplainParallelRegion(
            options_.parallelism, result.prop,
            ExplainLine(d.alg, result.prop,
                        "group=" + std::to_string(node->group_prefix) +
                            ", per worker"),
            SplitExchange::Policy::kHashKey, child.prop, {child.explain});
      } else {
        explain = ExplainLine(d.alg, result.prop,
                              "group=" + std::to_string(node->group_prefix)) +
                  IndentBlock(child.explain);
      }
      break;
    }

    case LogicalOp::kDistinct: {
      Built child = BuildNode(node->children[0].get(), plan, depth + 1, ctrs);
      UnaryDecision d = DecideDistinct(*node, child.prop, options_);
      if (d.sort_child) {
        child.explain = ExplainLine(PhysicalAlg::kSort, SortOutput(
            node->children[0]->schema, options_.sort_config), "inserted") +
            IndentBlock(child.explain);
        child = InsertSort(child, plan, depth + 1, ctrs);
      }
      switch (d.alg) {
        case PhysicalAlg::kDedup:
          result.op = plan->Own(std::make_unique<DedupOperator>(child.op));
          break;
        case PhysicalAlg::kInSortDistinct:
          result.op = plan->Own(std::make_unique<InSortAggregate>(
              child.op, node->schema.key_arity(),
              std::vector<AggregateSpec>(), ctrs, temp_,
              options_.sort_config));
          break;
        case PhysicalAlg::kHashDistinct:
          result.op = plan->Own(std::make_unique<HashAggregate>(
              child.op, node->schema.key_arity(),
              std::vector<AggregateSpec>(), options_.hash_memory_rows,
              ctrs, temp_, options_.hash_partitions));
          break;
        default:
          OVC_CHECK(false);
      }
      result.prop = d.out;
      plan->algorithms_.push_back(d.alg);
      explain = ExplainLine(d.alg, result.prop, "") +
                IndentBlock(child.explain);
      break;
    }

    case LogicalOp::kSetOp: {
      Built left = BuildNode(node->children[0].get(), plan, depth + 1, ctrs);
      Built right = BuildNode(node->children[1].get(), plan, depth + 1, ctrs);
      if (!SortedWithCodesOn(left.prop, node->children[0]->schema)) {
        left.explain = ExplainLine(PhysicalAlg::kSort, SortOutput(
            node->children[0]->schema, options_.sort_config), "inserted") +
            IndentBlock(left.explain);
        left = InsertSort(left, plan, depth + 1, ctrs);
      }
      if (!SortedWithCodesOn(right.prop, node->children[1]->schema)) {
        right.explain = ExplainLine(PhysicalAlg::kSort, SortOutput(
            node->children[1]->schema, options_.sort_config), "inserted") +
            IndentBlock(right.explain);
        right = InsertSort(right, plan, depth + 1, ctrs);
      }
      result.op = plan->Own(std::make_unique<SetOperation>(
          left.op, right.op, node->set_op, node->set_all, ctrs));
      result.prop =
          OrderProperty::Sorted(node->schema.key_arity(), /*ovc=*/true);
      plan->algorithms_.push_back(PhysicalAlg::kSetOperation);
      explain = ExplainLine(PhysicalAlg::kSetOperation, result.prop,
                            node->set_all ? "all" : "distinct") +
                IndentBlock(left.explain) + IndentBlock(right.explain);
      break;
    }

    case LogicalOp::kSort: {
      // The flagship parallel shape: round-robin split of the raw input,
      // partition-parallel run generation (one sort per worker, each the
      // sole producer of its codes), and a code-preserving merge-exchange
      // -- requires the configured sort to deliver output codes, which is
      // what the merging exchange consumes. Pre-decide on the inferred
      // child property so the subtree below the split is built with
      // region counters (it executes on producer threads).
      const auto parallel_sort_for = [&](const OrderProperty& child_prop) {
        if (!ParallelEnabled()) return false;
        UnaryDecision p = DecideSort(*node, child_prop, options_);
        return p.alg == PhysicalAlg::kSort && p.out.has_ovc;
      };
      const bool pre_parallel_sort =
          parallel_sort_for(node->children[0]->inferred);
      QueryCounters* region_ctrs =
          pre_parallel_sort ? plan->NewWorkerCounters() : ctrs;
      Built child = BuildNode(node->children[0].get(), plan, depth + 1,
                              region_ctrs);
      UnaryDecision d = DecideSort(*node, child.prop, options_);
      const bool parallel_sort =
          pre_parallel_sort && parallel_sort_for(child.prop);
      if (d.alg == PhysicalAlg::kElidedSort) {
        result.op = child.op;  // the logical sort vanishes entirely
        ++plan->elided_sorts_;
      } else if (parallel_sort) {
        TempFileManager* temp = temp_;
        const SortConfig& sort_config = options_.sort_config;
        result.op = BuildExchangeRegion(
            {child.op}, {region_ctrs}, SplitExchange::Policy::kRoundRobin,
            0, ctrs, plan,
            [temp, &sort_config](const std::vector<Operator*>& parts,
                                 QueryCounters* wc) {
              return std::make_unique<SortOperator>(parts[0], wc, temp,
                                                    sort_config);
            });
        ++plan->explicit_sorts_;
      } else {
        result.op = plan->Own(std::make_unique<SortOperator>(
            child.op, ctrs, temp_, options_.sort_config));
        ++plan->explicit_sorts_;
      }
      result.prop = d.out;
      plan->algorithms_.push_back(d.alg);
      if (parallel_sort) {
        explain = ExplainParallelRegion(
            options_.parallelism, result.prop,
            ExplainLine(d.alg, result.prop, "per worker"),
            SplitExchange::Policy::kRoundRobin, child.prop, {child.explain});
      } else {
        explain = ExplainLine(d.alg, result.prop, "") +
                  IndentBlock(child.explain);
      }
      break;
    }

    case LogicalOp::kTopK: {
      Built child = BuildNode(node->children[0].get(), plan, depth + 1, ctrs);
      UnaryDecision d = DecideTopK(*node, child.prop, options_);
      Operator* input = child.op;
      if (d.sort_child) {
        child.explain = ExplainLine(PhysicalAlg::kSort, SortOutput(
            node->children[0]->schema, options_.sort_config), "inserted") +
            IndentBlock(child.explain);
        child = InsertSort(child, plan, depth + 1, ctrs);
        input = child.op;
      }
      result.op =
          plan->Own(std::make_unique<LimitOperator>(input, node->limit));
      result.prop = d.out;
      plan->algorithms_.push_back(PhysicalAlg::kLimit);
      explain = ExplainLine(PhysicalAlg::kLimit, result.prop,
                            "k=" + std::to_string(node->limit)) +
                IndentBlock(child.explain);
      break;
    }

    case LogicalOp::kLimit: {
      // A bare limit (no order requested): truncate the child's stream in
      // whatever order it arrives, passing order and codes through.
      Built child = BuildNode(node->children[0].get(), plan, depth + 1, ctrs);
      result.op =
          plan->Own(std::make_unique<LimitOperator>(child.op, node->limit));
      result.prop = child.prop;
      plan->algorithms_.push_back(PhysicalAlg::kLimit);
      explain = ExplainLine(PhysicalAlg::kLimit, result.prop,
                            "k=" + std::to_string(node->limit)) +
                IndentBlock(child.explain);
      break;
    }
  }

  OVC_DCHECK(result.op->sorted() == result.prop.sorted());
  OVC_DCHECK(result.op->has_ovc() == result.prop.has_ovc);
  result.explain = std::move(explain);
  if (depth == 0) plan->explain_ = result.explain;
  return result;
}

}  // namespace ovc::plan
