// Physical planning: from a logical plan to an executable operator tree.
//
// The planner walks the logical tree bottom-up, tracking each subtree's
// OrderProperty, and picks physical algorithms by matching available
// properties against required ones:
//
//  * A Sort node whose input is already sorted with offset-value codes is
//    *elided* -- the paper's headline planner win: order and codes flowing
//    out of one sort-based operator (or out of sorted storage) make the
//    next sort free.
//  * Join: merge join when both inputs arrive sorted with codes. When only
//    the probe side does: the probe's order is never discarded -- the
//    build side is sorted and merge join reuses the probe's order, or,
//    if the caller vouches the build fits in memory
//    (assume_build_fits_memory -- the operator aborts past its budget),
//    the order-preserving in-memory hash join (Section 4.9), whichever
//    the cost model estimates cheaper. When neither side has order the
//    open call is grace hash join versus sorting both inputs, decided by
//    estimated cost under the memory budgets (see plan/cost_model.h and
//    docs/COST_MODEL.md); sorts are inserted to enable merge join for
//    the join types hash joins cannot run (and under prefer_sort_based).
//  * Aggregate: in-stream aggregation over sorted input (boundaries from
//    codes, Section 4.5); in-sort aggregation (early duplicate collapse,
//    Figure 5) when the input is unsorted but the parent has an interesting
//    order or sort-based planning is preferred; hash versus in-sort by
//    estimated cost otherwise (hash wins resident, in-sort once the group
//    count overflows the hash budget). CostPolicy::kRuleBased pins the
//    pre-cost-model policy for all of the above.
//  * Distinct: code-only duplicate removal over sorted input (Section 4.4);
//    in-sort or hash duplicate removal over unsorted input.
//  * Set operations are inherently sort-based; sorts are inserted only for
//    children that lack order or codes.
//  * Parallelism (Section 4.10): with `parallelism` > 1 the planner emits
//    exchange-parallel shapes built from a splitting exchange, one worker
//    pipeline per partition, and a merging exchange that restores a single
//    sorted coded stream. A splitting shuffle keeps per-partition codes by
//    the filter theorem; the merging shuffle is "very similar to a merge
//    step in an external merge sort". Three shapes are wired: parallel
//    sort (round-robin split -> per-worker sort -> merge-exchange),
//    parallel aggregation (hash-split on the grouping prefix, co-locating
//    groups -> per-worker in-stream/in-sort aggregate -> merge-exchange),
//    and parallel merge join (both inputs hash-split on the join key into
//    co-partitioned pairs -> per-worker merge join -> merge-exchange).
//    Each worker pipeline gets its own QueryCounters (the MergeExchange
//    threading contract); PhysicalPlan::RollUpWorkerCounters folds them
//    into the session counters after a run so accounting stays exact.
//
// Every physical join is normalized to the canonical merge-join output
// layout (join key, left payloads, right payloads, match indicator), so the
// same logical plan produces identical rows no matter which algorithms the
// planner picks.

#ifndef OVC_PLAN_PHYSICAL_PLAN_H_
#define OVC_PLAN_PHYSICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/profile.h"
#include "common/temp_file.h"
#include "exec/exchange.h"
#include "exec/fallback_policy.h"
#include "exec/operator.h"
#include "plan/cost_model.h"
#include "plan/logical_plan.h"
#include "plan/order_property.h"
#include "sort/external_sort.h"

namespace ovc::plan {

/// Physical algorithms the planner chooses among.
enum class PhysicalAlg : uint8_t {
  kScan,
  kFilter,
  kProject,
  kMergeJoin,
  kOrderPreservingHashJoin,
  kGraceHashJoin,
  kInStreamAggregate,
  kInSortAggregate,
  kHashAggregate,
  kDedup,
  kInSortDistinct,
  kHashDistinct,
  kSetOperation,
  kSort,        // a SortOperator: explicit, or inserted by the planner
  kElidedSort,  // a logical Sort satisfied by its input's properties
  kLimit,
  kSplitExchange,  // one-to-many splitting shuffle feeding worker pipelines
  kMergeExchange,  // many-to-one order-preserving merging shuffle
};

/// Short name, e.g. "merge-join", "elided-sort".
const char* PhysicalAlgName(PhysicalAlg alg);

/// Planner knobs.
struct PlannerOptions {
  /// How the planner picks among physical alternatives where correctness
  /// permits several: estimated-cost comparison (the default) or the pure
  /// property/policy rules of PR 1..4. Under kCostBased the hard policy
  /// gates stay as correctness/robustness guards (hash joins only for the
  /// types they support, an ordered coded probe is never discarded, an
  /// order-interested parent gets an order-producing aggregate), and the
  /// cost model decides the remaining open calls: grace-hash versus
  /// sort+merge-join under the memory budgets, hash versus in-sort
  /// aggregation/distinct by estimated duplicate density, and the
  /// vouched in-memory hash join versus sorting the build side.
  CostPolicy cost_policy = CostPolicy::kCostBased;
  /// Per-event work constants for the cost model. Defaults to the
  /// committed calibration (see docs/COST_MODEL.md to re-derive).
  CostConstants cost_constants = CostConstants::Calibrated();
  /// True forces sort-based algorithms (inserting sorts) even where a
  /// hash-based operator would serve an order-indifferent consumer.
  bool prefer_sort_based = false;
  /// Configuration for planner-inserted sorts and in-sort aggregation
  /// (memory budget, fan-in, run generation). Planner-inserted sorts feed
  /// code-consuming operators, so the config must produce output codes:
  /// use_ovc == false requires naive_output_codes == true (the paper's
  /// expensive strawman); the planner checks this when it inserts a sort.
  SortConfig sort_config;
  /// True lets the planner pick the order-preserving in-memory hash join
  /// (Section 4.9) for a sorted probe over an unsorted build. That
  /// operator *aborts* if the build side exceeds hash_memory_rows -- its
  /// residency guarantee is the caller's job -- so this stays off by
  /// default; the robust default sorts the build side and merge joins,
  /// which spills gracefully and still reuses the probe's order.
  bool assume_build_fits_memory = false;
  /// Row budget for hash-join build sides and hash-aggregation tables.
  uint64_t hash_memory_rows = uint64_t{1} << 20;
  /// Spill partitions for grace hash join / hash aggregation.
  uint32_t hash_partitions = 16;
  /// What a planner-built hash operator does when its budget check fails
  /// mid-query. Planned queries default to the graceful path -- degrade to
  /// the sort-based strategy (ExternalSort + merge logic, preserving OVCs)
  /// from the point of failure -- because a planner that got here
  /// mis-estimated, and recursive partition thrashing compounds the
  /// mistake. kPartition restores the classic grace behavior (and stays
  /// the constructor default for directly built operators, e.g. the
  /// Figure 6 hash-plan benchmarks that measure it).
  FallbackPolicy fallback = FallbackPolicy::kSortMerge;
  /// Worker pipelines for exchange-parallel plan shapes; 1 keeps every
  /// plan serial. With N > 1 the planner splits eligible sorts,
  /// aggregations, and merge joins across N partitions, runs one worker
  /// pipeline per partition (each with its own QueryCounters), and
  /// restores a single sorted coded stream with a merging exchange.
  uint32_t parallelism = 1;
  /// Merging-exchange knobs for parallel shapes. `threaded` true runs one
  /// producer thread per worker pipeline (real parallelism); false pulls
  /// workers inline on one thread (deterministic mode for tests and
  /// benchmarks). Parallel shapes require `use_ovc` (the exchange must
  /// reproduce codes for downstream operators); with `use_ovc` false the
  /// planner falls back to serial shapes.
  MergeExchange::Options exchange;
  /// True builds the plan with a QueryProfile: every operator is wrapped in
  /// a ProfiledOperator and constructed against its own per-node (and,
  /// inside exchange regions, per-thread) QueryCounters slice, so rows,
  /// wall time, and comparison/spill work are attributed per plan line.
  /// Off by default -- EXPLAIN ANALYZE, `ovcsql --profile=FILE`, and the
  /// profile tests turn it on; the un-profiled hot path stays untouched.
  bool profile = false;
};

/// An executable physical plan: owns its operator tree.
class PhysicalPlan {
 public:
  PhysicalPlan() = default;
  PhysicalPlan(PhysicalPlan&&) = default;
  /// Move *assignment* is deliberately unavailable: a defaulted member-wise
  /// move would destroy the overwritten plan's operators front to back,
  /// breaking the parents-first teardown the destructor guarantees. Hold
  /// reassignable plans behind std::unique_ptr (as PlanExecutor does).
  PhysicalPlan& operator=(PhysicalPlan&&) = delete;
  /// Destroys the operators in reverse construction order -- parents
  /// before the children they pull from. Children are always Own()ed
  /// before their parent, so in particular a MergeExchange (whose
  /// destructor cancels and joins producer threads on the
  /// destroyed-without-Close path) goes before the worker operators those
  /// threads are still driving; forward vector destruction would free the
  /// workers under the live threads.
  ~PhysicalPlan();

  /// Root of the operator tree (owned by the plan).
  Operator* root() const { return root_; }

  /// Order property of the root's output stream.
  const OrderProperty& root_order() const { return root_order_; }

  /// Number of SortOperators the planner inserted because an input lacked
  /// the required order or codes (explicit logical Sort nodes that survive
  /// are counted separately under `explicit_sorts`).
  uint32_t inserted_sorts() const { return inserted_sorts_; }
  /// Logical Sort nodes that became physical SortOperators.
  uint32_t explicit_sorts() const { return explicit_sorts_; }
  /// Logical Sort nodes elided because their input already delivered order
  /// and codes.
  uint32_t elided_sorts() const { return elided_sorts_; }

  /// True when the plan uses `alg` anywhere.
  bool Uses(PhysicalAlg alg) const;
  /// All algorithm choices, one per physical node, in plan-tree order.
  const std::vector<PhysicalAlg>& algorithms() const { return algorithms_; }

  /// Cost-model estimate per physical node, parallel to algorithms():
  /// output rows and cumulative cost (the node plus its whole subtree).
  const std::vector<NodeEstimate>& node_estimates() const {
    return estimates_;
  }
  /// Estimate for the plan root: total estimated rows out and total
  /// estimated cost of the whole plan.
  const NodeEstimate& root_estimate() const { return root_estimate_; }

  /// Worker pipelines of the widest exchange-parallel region (0 when the
  /// plan is serial).
  uint32_t parallel_workers() const { return parallel_workers_; }

  /// Counters the planner created for concurrent parts of the plan: one
  /// per worker pipeline plus one per splitting exchange (the MergeExchange
  /// contract -- concurrent pipelines must not share a counters instance).
  const std::vector<std::unique_ptr<QueryCounters>>& worker_counters() const {
    return worker_counters_;
  }

  /// Folds all worker counters into `into` (no-op when null) and resets
  /// them, so comparison-count accounting stays exact across repeated
  /// runs. PlanExecutor calls this after every run of a parallel plan.
  void RollUpWorkerCounters(QueryCounters* into);

  /// Multi-line indented rendering with per-node order properties.
  std::string ToString() const { return explain_; }

  /// The per-node runtime profile, or null when the plan was built without
  /// PlannerOptions::profile. Filled in by PlanExecutor::Run (actuals are
  /// zero before the first run).
  QueryProfile* profile() const { return profile_.get(); }

  /// EXPLAIN ANALYZE rendering: the profiled plan tree with estimates,
  /// actuals, per-node timings/counters, and worst-Q-error flags. Falls
  /// back to the plain EXPLAIN text for un-profiled plans.
  std::string ExplainAnalyze() const {
    return profile_ ? profile_->Render() : explain_;
  }

 private:
  friend class Planner;

  Operator* Own(std::unique_ptr<Operator> op) {
    operators_.push_back(std::move(op));
    return operators_.back().get();
  }

  /// Records one physical node's algorithm choice and estimate (the two
  /// vectors stay parallel; every chosen algorithm goes through here or
  /// through RecordAlgBeforeLast).
  void RecordAlg(PhysicalAlg alg, const NodeEstimate& est) {
    algorithms_.push_back(alg);
    estimates_.push_back(est);
  }

  /// Splices a node in front of the most recently recorded one -- used to
  /// place an exchange region's worker operator before its merging
  /// exchange in plan-tree order while keeping the vectors parallel.
  void RecordAlgBeforeLast(PhysicalAlg alg, const NodeEstimate& est) {
    algorithms_.insert(algorithms_.end() - 1, alg);
    estimates_.insert(estimates_.end() - 1, est);
  }

  SplitExchange* OwnSplit(std::unique_ptr<SplitExchange> split) {
    splits_.push_back(std::move(split));
    return splits_.back().get();
  }

  QueryCounters* NewWorkerCounters() {
    worker_counters_.push_back(std::make_unique<QueryCounters>());
    return worker_counters_.back().get();
  }

  // Member declaration order is destruction order in reverse: the
  // destructor empties `operators_` first (itself back to front, see
  // ~PhysicalPlan), then the split exchanges, then the counters and the
  // profile -- so any producer threads joined during operator destruction
  // can still touch partition streams, worker counters, and profile slices.
  std::unique_ptr<QueryProfile> profile_;
  std::vector<std::unique_ptr<QueryCounters>> worker_counters_;
  /// Splitting exchanges are not Operators (they fan out into partition
  /// streams), so the plan owns them separately.
  std::vector<std::unique_ptr<SplitExchange>> splits_;
  std::vector<std::unique_ptr<Operator>> operators_;
  Operator* root_ = nullptr;
  OrderProperty root_order_;
  uint32_t inserted_sorts_ = 0;
  uint32_t explicit_sorts_ = 0;
  uint32_t elided_sorts_ = 0;
  uint32_t parallel_workers_ = 0;
  std::vector<PhysicalAlg> algorithms_;
  std::vector<NodeEstimate> estimates_;
  NodeEstimate root_estimate_;
  std::string explain_;
};

/// The physical planner.
class Planner {
 public:
  /// `counters` (optional) and `temp` must outlive every plan produced.
  Planner(QueryCounters* counters, TempFileManager* temp,
          PlannerOptions options = PlannerOptions());

  /// Runs the interesting-orders pass over `root`, then builds the
  /// physical operator tree. `root` (and the storage behind its scans)
  /// must outlive the returned plan.
  PhysicalPlan Plan(LogicalNode* root);

  const PlannerOptions& options() const { return options_; }

 private:
  struct Built {
    Operator* op = nullptr;
    OrderProperty prop;
    /// Output rows + cumulative cost estimate for this subtree.
    NodeEstimate est;
    /// Relative-indentation explain block for this subtree.
    std::string explain;
    /// QueryProfile node index of this subtree's root (-1 when the plan is
    /// not profiled).
    int pnode = -1;
  };

  /// Profile wiring for one physical plan node: the profile node index,
  /// the stats slice metering the node's operator, and the counters the
  /// node's operator constructors should charge -- the slice's own
  /// counters when profiling, the caller's fallback instance otherwise.
  struct Meter {
    int node = -1;
    OperatorStats* slice = nullptr;
    QueryCounters* ctrs = nullptr;
  };
  /// Allocates one profile node with one stats slice when the plan is
  /// profiled; otherwise a pass-through meter charging `fallback`.
  Meter NewMeter(PhysicalPlan* plan, QueryCounters* fallback);
  /// Wraps `op` in a ProfiledOperator writing `m`'s slice (identity when
  /// the plan is not profiled).
  Operator* Wrap(PhysicalPlan* plan, Operator* op, const Meter& m);
  /// Fills in profile node `m.node`'s explain label, estimate, children,
  /// and (for scans) feedback table. No-op when not profiled.
  void SetProfileLine(PhysicalPlan* plan, const Meter& m, PhysicalAlg alg,
                      const std::string& detail, const OrderProperty& prop,
                      const NodeEstimate& est,
                      const std::vector<int>& children,
                      const std::string& table = std::string());

  /// `ctrs` is the counters instance for operators this subtree constructs
  /// -- the session counters at the root, a region-owned instance inside a
  /// parallel region (everything below a splitting exchange executes on
  /// whichever producer thread pumps the split, so it must never share the
  /// consumer thread's counters).
  Built BuildNode(LogicalNode* node, PhysicalPlan* plan, int depth,
                  QueryCounters* ctrs);
  /// Wraps `child` in a planner-inserted SortOperator metered by `ctrs`.
  /// `logical_child` provides the cardinality estimate for the sort's
  /// cost annotation.
  Built InsertSort(Built child, const LogicalNode* logical_child,
                   PhysicalPlan* plan, int depth, QueryCounters* ctrs);

  /// True when exchange-parallel shapes are enabled and usable.
  bool ParallelEnabled() const {
    return options_.parallelism > 1 && options_.exchange.use_ovc;
  }
  /// Splits each child into `parallelism` co-indexed partitions (one
  /// SplitExchange per child, same policy/prefix, so hash partitions are
  /// co-located across children), builds one worker operator per partition
  /// index via `make_worker` (handed that index's partition streams and a
  /// fresh per-worker QueryCounters), and merges the worker outputs back
  /// into one stream. Returns the merging exchange.
  ///
  /// `child_counters[i]` is the region counters instance child i's subtree
  /// was built with; the i-th split shares it (subtree pulls and split
  /// routing both happen under that split's pump mutex). `merge_counters`
  /// meters the merging exchange itself, on the consumer thread.
  /// `child_ests[i]` is child i's subtree estimate *including* its
  /// splitting exchange's own cost (recorded on that split's plan node);
  /// `region_est` is the whole region's output estimate, recorded on the
  /// merging exchange.
  ///
  /// Under profiling the region contributes three tiers of profile nodes
  /// (split lines, one worker line, the merge line) described by `rp`, and
  /// hands the merge line's meter back through `merge_meter`: the caller
  /// wraps the returned exchange (after any normalizing projection) with
  /// it, so the merge's consumer-side pull time and output rows land on
  /// the merge node.
  struct RegionProfile {
    /// Profile node of each child subtree (Built::pnode).
    std::vector<int> child_pnodes;
    /// Explain-line ingredients for the per-worker operator.
    PhysicalAlg worker_alg = PhysicalAlg::kSort;
    std::string worker_detail;
    OrderProperty worker_prop;
    NodeEstimate worker_est;
    /// Per-partition property the splits preserve (the filter theorem).
    OrderProperty part_prop;
  };
  Operator* BuildExchangeRegion(
      const std::vector<Operator*>& children,
      const std::vector<QueryCounters*>& child_counters,
      const std::vector<NodeEstimate>& child_ests,
      const NodeEstimate& region_est, SplitExchange::Policy policy,
      uint32_t hash_prefix, QueryCounters* merge_counters,
      PhysicalPlan* plan,
      const std::function<std::unique_ptr<Operator>(
          const std::vector<Operator*>& parts, QueryCounters* wc)>&
          make_worker,
      const RegionProfile& rp, Meter* merge_meter);

  QueryCounters* counters_;
  TempFileManager* temp_;
  PlannerOptions options_;
  /// Prices the alternatives during planning and the chosen operators for
  /// the per-node EXPLAIN annotations.
  CostModel cost_model_;
};

/// Pure order-property inference: the property the planner's chosen
/// physical plan will deliver for `node`, computed without constructing any
/// operator. Requirement annotations must be in place (the function runs
/// the same decision rules as Planner::Plan; a freshly built tree should
/// first pass through InferOrderRequirements).
OrderProperty InferOrderProperty(const LogicalNode& node,
                                 const PlannerOptions& options);

}  // namespace ovc::plan

#endif  // OVC_PLAN_PHYSICAL_PLAN_H_
