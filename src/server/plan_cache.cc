#include "server/plan_cache.h"

#include <utility>
#include <vector>

#include "common/metrics.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace ovc::server {

namespace {

metrics::Counter& CacheHits() {
  return OVC_METRIC_COUNTER("server.plan_cache.hits",
                            "Statements served from the shared plan cache");
}

metrics::Counter& CacheMisses() {
  return OVC_METRIC_COUNTER("server.plan_cache.misses",
                            "Statements bound fresh into the plan cache");
}

metrics::Counter& CacheEvictions() {
  return OVC_METRIC_COUNTER("server.plan_cache.evictions",
                            "Plan-cache entries evicted by LRU pressure");
}

}  // namespace

bool NormalizeSql(std::string_view sql, std::string* normalized) {
  sql::SqlResult<std::vector<sql::Token>> tokens = sql::Tokenize(sql);
  if (!tokens.ok()) return false;
  normalized->clear();
  for (const sql::Token& token : tokens.value()) {
    if (token.type == sql::TokenType::kEnd) break;
    if (!normalized->empty()) normalized->push_back(' ');
    normalized->append(token.normalized);
  }
  return true;
}

PlanCache::PlanCache(size_t capacity, std::string options_fingerprint)
    : capacity_(capacity), options_fingerprint_(std::move(options_fingerprint)) {}

PlanCache::Lookup PlanCache::GetOrBind(std::string_view sql,
                                       const sql::Catalog* catalog) {
  Lookup result;
  std::string normalized;
  if (!NormalizeSql(sql, &normalized)) {
    // Does not lex; fall through to Prepare for the real diagnostic.
    result.cacheable = false;
    return result;
  }
  std::string key = options_fingerprint_;
  key.push_back('\n');
  key.append(normalized);

  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    result.entry = it->second.entry;
    result.hit = true;
    hits_.fetch_add(1, std::memory_order_relaxed);
    CacheHits().Increment();
    return result;
  }

  // Miss: parse + bind under the lock (microseconds; see header).
  sql::SqlResult<sql::Statement> stmt = sql::ParseStatement(sql);
  if (!stmt.ok()) {
    result.has_error = true;
    result.error = stmt.error();
    return result;
  }
  if (stmt.value().explain) {
    // EXPLAIN [ANALYZE] output depends on per-execution planner state
    // (profiling); it stays on the uncached Prepare path.
    result.cacheable = false;
    return result;
  }
  sql::Binder binder(catalog);
  sql::SqlResult<sql::BoundQuery> bound = binder.Bind(stmt.value().select);
  if (!bound.ok()) {
    result.has_error = true;
    result.error = bound.error();
    return result;
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  CacheMisses().Increment();
  result.entry = std::make_shared<Entry>();
  result.entry->bound = std::move(bound).value();
  if (capacity_ == 0) return result;  // cache disabled: hand out, don't keep

  lru_.push_front(key);
  entries_[std::move(key)] = Slot{result.entry, lru_.begin()};
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    CacheEvictions().Increment();
  }
  return result;
}

void PlanCache::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
  lru_.clear();
}

size_t PlanCache::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

}  // namespace ovc::server
