// Admission control for concurrent query serving.
//
// Two halves:
//
//  1. A query-slot gate: at most `slots` statements execute at once;
//     extras block (FIFO-ish via condvar) until a slot frees. This bounds
//     peak memory and thread usage regardless of how many connections are
//     open.
//  2. Budget slicing: the machine-wide planner budgets (parallelism,
//     hash/sort memory rows) are divided across those slots so the worst
//     case -- every slot occupied -- still fits the machine. Each admitted
//     query plans with `workers_per_query` exchange workers and
//     1/`slots` of the memory budgets, which also fixes the pre-serving
//     assumption that one query owned the whole exchange pool.
//
// Metrics: server.active_queries (gauge), server.active_queries_high_water
// (gauge; also readable per controller for tests, since the process gauge
// is cumulative across server instances), server.admission_waits (counter:
// acquisitions that had to block), server.admission_wait_us (histogram).

#ifndef OVC_SERVER_ADMISSION_H_
#define OVC_SERVER_ADMISSION_H_

#include <atomic>
#include <cstdint>

#include "common/mutex.h"
#include "plan/plan_executor.h"

namespace ovc::server {

class AdmissionController {
 public:
  explicit AdmissionController(uint32_t slots);

  /// Blocks until a slot is free. Returns false when Shutdown ran (no
  /// slot held then).
  [[nodiscard]] bool Acquire();
  void Release();

  /// Unblocks all waiters and makes every future Acquire fail fast.
  void Shutdown();

  /// RAII slot. `ok()` is false after Shutdown; no slot is held then and
  /// the caller must not execute.
  class Grant {
   public:
    explicit Grant(AdmissionController* controller);
    ~Grant();
    Grant(const Grant&) = delete;
    Grant& operator=(const Grant&) = delete;
    bool ok() const { return ok_; }

   private:
    AdmissionController* controller_;
    bool ok_;
  };

  uint32_t slots() const { return slots_; }
  /// Queries currently holding a slot.
  uint32_t active() const { return active_.load(std::memory_order_relaxed); }
  /// Most slots ever held at once by this controller. The stress tests
  /// assert this never exceeds slots().
  uint32_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

  /// Divides machine-wide budgets in `machine` into the per-query slice
  /// each admitted statement plans with: parallelism becomes
  /// `workers_per_query`, hash/sort memory budgets are divided by `slots`
  /// (floored at kMinHashMemoryRows / kMinSortMemoryRows so a huge slot
  /// count cannot degenerate every sort into thrashing single-row runs).
  static plan::PlanExecutor::Options Slice(plan::PlanExecutor::Options machine,
                                           uint32_t slots,
                                           uint32_t workers_per_query);

  static constexpr uint64_t kMinHashMemoryRows = 64;
  static constexpr uint64_t kMinSortMemoryRows = 64;

 private:
  const uint32_t slots_;

  Mutex mu_;
  CondVar slot_freed_;
  uint32_t held_ OVC_GUARDED_BY(mu_) = 0;
  bool shutdown_ OVC_GUARDED_BY(mu_) = false;

  // Mirrors of held_ readable without the lock (metrics + test accessors).
  std::atomic<uint32_t> active_{0};
  std::atomic<uint32_t> high_water_{0};
};

}  // namespace ovc::server

#endif  // OVC_SERVER_ADMISSION_H_
