#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <utility>

#include "common/metrics.h"
#include "common/profile.h"
#include "common/trace.h"
#include "server/wire.h"
#include "sql/session.h"

namespace ovc::server {

namespace {

metrics::Counter& BytesSent() {
  return OVC_METRIC_COUNTER("server.bytes_sent",
                            "Frame bytes written to clients");
}

metrics::Counter& BytesReceived() {
  return OVC_METRIC_COUNTER("server.bytes_received",
                            "Frame bytes read from clients");
}

metrics::Counter& QueryErrors() {
  return OVC_METRIC_COUNTER("server.query_errors",
                            "Statements answered with an ERROR frame");
}

/// Frame-header bytes, for the bytes_sent/received accounting.
constexpr uint64_t kHeaderBytes = 5;

/// One connection's protocol loop: reads request frames off `fd` and
/// serves them through a private SqlSession over the server's shared
/// catalog, plan cache, and admission gate.
class ServerSession {
 public:
  ServerSession(Server* server, int fd)
      : server_(server),
        fd_(fd),
        session_(server->catalog(), server->session_options(),
                 server->temp_root()) {}

  void Serve() {
    for (;;) {
      Frame frame;
      const Status read = ReadFrame(fd_, &frame);
      if (read.code() == StatusCode::kNotFound) return;  // clean close
      if (read.code() == StatusCode::kResourceExhausted) {
        // Oversized frame: the stream offset is unrecoverable. Tell the
        // client why, then drop the connection.
        (void)SendErrorMessage(read.message());
        return;
      }
      if (!read.ok()) return;  // disconnect mid-frame / socket error
      BytesReceived().Add(kHeaderBytes + frame.payload.size());
      if (!HandleFrame(frame)) return;
    }
  }

 private:
  struct PreparedSlot {
    /// Keeps a cached entry alive (and its logical tree valid) while this
    /// statement handle references plans pointing into it. Null for
    /// uncacheable statements (EXPLAIN).
    std::shared_ptr<PlanCache::Entry> cache_entry;
    std::unique_ptr<sql::PreparedQuery> prepared;
  };

  /// Dispatches one request frame. False closes the connection.
  bool HandleFrame(const Frame& frame) {
    switch (frame.type) {
      case FrameType::kQuery:
        return HandleQuery(frame.payload);
      case FrameType::kPrepare:
        return HandlePrepare(frame.payload);
      case FrameType::kExecute:
        return HandleExecute(frame.payload);
      case FrameType::kClose:
        return HandleClose(frame.payload);
      case FrameType::kMetrics:
        return HandleMetrics();
      default:
        // Unknown request type: protocol violation, close after telling
        // the client (tests/server_test.cc, malformed-frame case).
        (void)SendErrorMessage(
            "unknown frame type " +
            std::to_string(static_cast<unsigned>(frame.type)));
        return false;
    }
  }

  bool HandleQuery(const std::string& sql) {
    OVC_TRACE_SPAN_VAR(query_span, "server.query");
    trace::ScopedQueryId query_scope(query_span.id());
    OVC_METRIC_COUNTER("server.queries",
                       "Statements received over QUERY or EXECUTE frames")
        .Increment();
    const uint64_t start_ticks = ProfileTicks();

    PlanCache::Lookup lookup =
        server_->plan_cache()->GetOrBind(sql, server_->catalog());
    if (lookup.has_error) {
      QueryErrors().Increment();
      return SendError(lookup.error);
    }

    AdmissionController::Grant grant(admission());
    if (!grant.ok()) {
      (void)SendErrorMessage("server is shutting down");
      return false;
    }

    std::unique_ptr<sql::PreparedQuery> prepared;
    if (lookup.entry != nullptr) {
      // Physical planning annotates the shared logical tree; serialize it
      // per entry. Execution below runs lock-free against other sessions.
      MutexLock plan_lock(lookup.entry->plan_mu);
      prepared = session_.Instantiate(&lookup.entry->bound);
    } else {
      sql::SqlResult<std::unique_ptr<sql::PreparedQuery>> result =
          session_.Prepare(sql);
      if (!result.ok()) {
        QueryErrors().Increment();
        return SendError(result.error());
      }
      prepared = std::move(result).value();
    }

    const bool sent = RunAndSend(prepared.get());
    RecordLatency(start_ticks);
    return sent;
  }

  bool HandlePrepare(const std::string& sql) {
    PlanCache::Lookup lookup =
        server_->plan_cache()->GetOrBind(sql, server_->catalog());
    if (lookup.has_error) {
      QueryErrors().Increment();
      return SendError(lookup.error);
    }
    PreparedSlot slot;
    if (lookup.entry != nullptr) {
      MutexLock plan_lock(lookup.entry->plan_mu);
      slot.prepared = session_.Instantiate(&lookup.entry->bound);
      slot.cache_entry = std::move(lookup.entry);
    } else {
      sql::SqlResult<std::unique_ptr<sql::PreparedQuery>> result =
          session_.Prepare(sql);
      if (!result.ok()) {
        QueryErrors().Increment();
        return SendError(result.error());
      }
      slot.prepared = std::move(result).value();
    }

    const uint64_t handle = next_handle_++;
    PayloadWriter reply;
    reply.PutU64(handle);
    reply.PutU8(lookup.hit ? 1 : 0);
    const std::vector<std::string>& columns = slot.prepared->columns;
    reply.PutU32(static_cast<uint32_t>(columns.size()));
    for (const std::string& column : columns) reply.PutString(column);
    statements_[handle] = std::move(slot);
    return SendFrame(FrameType::kPrepared, reply.str());
  }

  bool HandleExecute(const std::string& payload) {
    PayloadReader reader(payload);
    uint64_t handle = 0;
    if (!reader.GetU64(&handle) || !reader.AtEnd()) {
      (void)SendErrorMessage("malformed EXECUTE payload");
      return false;
    }
    auto it = statements_.find(handle);
    if (it == statements_.end()) {
      // Client bug, but the stream is still in sync: answer and carry on.
      return SendErrorMessage("unknown statement handle " +
                              std::to_string(handle));
    }
    OVC_TRACE_SPAN_VAR(query_span, "server.query");
    trace::ScopedQueryId query_scope(query_span.id());
    OVC_METRIC_COUNTER("server.queries",
                       "Statements received over QUERY or EXECUTE frames")
        .Increment();
    const uint64_t start_ticks = ProfileTicks();

    AdmissionController::Grant grant(admission());
    if (!grant.ok()) {
      (void)SendErrorMessage("server is shutting down");
      return false;
    }
    const bool sent = RunAndSend(it->second.prepared.get());
    RecordLatency(start_ticks);
    return sent;
  }

  bool HandleClose(const std::string& payload) {
    PayloadReader reader(payload);
    uint64_t handle = 0;
    if (!reader.GetU64(&handle) || !reader.AtEnd()) {
      (void)SendErrorMessage("malformed CLOSE payload");
      return false;
    }
    statements_.erase(handle);  // idempotent by design
    return SendFrame(FrameType::kClosed, "");
  }

  bool HandleMetrics() {
    PayloadWriter reply;
    reply.PutString(metrics::MetricRegistry::Instance().JsonSnapshot());
    return SendFrame(FrameType::kText, reply.str());
  }

  /// Executes a prepared statement and streams the result frames.
  bool RunAndSend(sql::PreparedQuery* prepared) {
    sql::QueryResult result = session_.Run(prepared);
    if (!result.result.status.ok()) {
      QueryErrors().Increment();
      sql::SqlError error;
      error.message =
          "execution failed: " + result.result.status.message();
      return SendError(error);
    }
    if (result.is_explain) {
      PayloadWriter text;
      text.PutString(result.explain_text);
      if (!SendFrame(FrameType::kText, text.str())) return false;
      PayloadWriter done;
      done.PutU64(0);
      done.PutCounters(result.counters_delta);
      return SendFrame(FrameType::kResultDone, done.str());
    }

    PayloadWriter header;
    header.PutU32(static_cast<uint32_t>(result.columns.size()));
    for (const std::string& column : result.columns) {
      header.PutString(column);
    }
    if (!SendFrame(FrameType::kResultHeader, header.str())) return false;

    const RowBuffer& rows = result.result.rows;
    const uint32_t width = rows.width();
    for (size_t begin = 0; begin < rows.size();
         begin += kRowsPerBatchFrame) {
      const uint32_t count = static_cast<uint32_t>(
          std::min<size_t>(kRowsPerBatchFrame, rows.size() - begin));
      PayloadWriter batch;
      batch.PutU32(count);
      batch.PutU32(width);
      for (uint32_t i = 0; i < count; ++i) {
        const uint64_t* row = rows.row(begin + i);
        for (uint32_t c = 0; c < width; ++c) batch.PutU64(row[c]);
      }
      if (!SendFrame(FrameType::kRowBatch, batch.str())) return false;
    }
    OVC_METRIC_COUNTER("server.rows_sent", "Result rows streamed to clients")
        .Add(rows.size());

    PayloadWriter done;
    done.PutU64(rows.size());
    done.PutCounters(result.counters_delta);
    return SendFrame(FrameType::kResultDone, done.str());
  }

  bool SendFrame(FrameType type, std::string_view payload) {
    const Status status = WriteFrame(fd_, type, payload);
    if (!status.ok()) return false;  // peer gone; drop the connection
    BytesSent().Add(kHeaderBytes + payload.size());
    return true;
  }

  bool SendError(const sql::SqlError& error) {
    PayloadWriter payload;
    payload.PutU32(error.line);
    payload.PutU32(error.column);
    payload.PutString(error.message);
    return SendFrame(FrameType::kError, payload.str());
  }

  bool SendErrorMessage(const std::string& message) {
    sql::SqlError error;
    error.message = message;
    return SendError(error);
  }

  void RecordLatency(uint64_t start_ticks) {
    OVC_METRIC_HISTOGRAM("server.query_latency_us",
                         "Served-statement latency, admission wait included")
        .Record(TicksToNs(ProfileTicks() - start_ticks) / 1000);
  }

  AdmissionController* admission() { return server_->admission(); }

  Server* server_;
  int fd_;
  sql::SqlSession session_;
  uint64_t next_handle_ = 1;
  std::map<uint64_t, PreparedSlot> statements_;
};

}  // namespace

std::string OptionsFingerprint(const plan::PlanExecutor::Options& options) {
  const plan::PlannerOptions& p = options.planner;
  std::string out;
  out += "cost=" + std::to_string(static_cast<int>(p.cost_policy));
  out += " sort_based=" + std::to_string(p.prefer_sort_based ? 1 : 0);
  out += " build_fits=" + std::to_string(p.assume_build_fits_memory ? 1 : 0);
  out += " hash_rows=" + std::to_string(p.hash_memory_rows);
  out += " hash_parts=" + std::to_string(p.hash_partitions);
  out += " fallback=" + std::to_string(static_cast<int>(p.fallback));
  out += " parallelism=" + std::to_string(p.parallelism);
  out += " sort_rows=" + std::to_string(p.sort_config.memory_rows);
  out += " fan_in=" + std::to_string(p.sort_config.fan_in);
  out += " ovc=" + std::to_string(p.sort_config.use_ovc ? 1 : 0);
  out += " profile=" + std::to_string(p.profile ? 1 : 0);
  return out;
}

Server::Server(const sql::Catalog* catalog, ServerOptions options)
    : catalog_(catalog),
      options_(std::move(options)),
      session_options_(AdmissionController::Slice(options_.executor,
                                                  options_.max_queries,
                                                  options_.workers_per_query)),
      temp_root_(options_.temp_dir),
      cache_(options_.plan_cache_capacity,
             OptionsFingerprint(session_options_)),
      admission_(options_.max_queries) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status =
        Status::IoError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    const Status status =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void Server::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listen socket shut down (Stop) or unrecoverable
    }
    MutexLock lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    connections_.push_back(std::make_unique<Connection>());
    Connection* conn = connections_.back().get();
    conn->fd = fd;
    conn->thread = std::thread([this, conn] { ServeConnection(conn); });
  }
}

void Server::ServeConnection(Connection* conn) {
  OVC_TRACE_SPAN("server.connection");
  OVC_METRIC_COUNTER("server.connections", "Client connections accepted")
      .Increment();
  metrics::Gauge& active = OVC_METRIC_GAUGE(
      "server.active_connections", "Client connections currently open");
  active.Add(1);
  {
    ServerSession session(this, conn->fd);
    session.Serve();
  }
  {
    // Mark done before closing: Stop() only shutdown()s sockets of
    // connections not yet done, so the fd cannot be recycled under it.
    MutexLock lock(mu_);
    conn->done = true;
  }
  ::close(conn->fd);
  active.Sub(1);
}

void Server::Stop() {
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  admission_.Shutdown();
  if (started_) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    accept_thread_.join();
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // The accept loop is gone and stopping_ is set, so connections_ is
  // frozen now. Kick every still-serving socket, then join outside the
  // lock (serving threads take mu_ on their way out).
  std::vector<Connection*> conns;
  {
    MutexLock lock(mu_);
    for (const std::unique_ptr<Connection>& conn : connections_) {
      if (!conn->done) ::shutdown(conn->fd, SHUT_RDWR);
      conns.push_back(conn.get());
    }
  }
  for (Connection* conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

}  // namespace ovc::server
