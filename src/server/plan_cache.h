// Process-wide prepared-plan cache for the ovcd server.
//
// Caching happens at the *bound* level: an entry owns the BoundQuery
// (logical plan + output columns) produced by parse + bind, which is the
// text-processing cost worth amortizing. Physical planning is NOT cached
// -- each execution re-runs the planner against the shared logical tree
// via SqlSession::Instantiate, which binds fresh operators to the calling
// session's counters and temp-file manager. That split is what lets two
// clients run the same cached statement concurrently: planning is
// microseconds, and the resulting PhysicalPlans share nothing mutable but
// the logical tree they point into.
//
// The planner annotates that shared logical tree in place (order
// requirements), so Instantiate calls against one entry must hold the
// entry's plan_mu. Execution of the instantiated plans needs no lock.
//
// Keying: the normalized statement text (lowercased identifiers,
// canonical keywords, comments and whitespace collapsed -- see
// NormalizeSql) prefixed by the cache's options fingerprint, so
// `SELECT a FROM t` and `select  A from t -- x` share one entry, and a
// cache built for one planner configuration can never serve another.
// EXPLAIN [ANALYZE] statements and statements that fail to parse or bind
// are not cached.
//
// The catalog is frozen while a server runs (tables are registered before
// Serve), so entries never need invalidation; Clear() exists for tests
// and for cold-cache benchmarking.

#ifndef OVC_SERVER_PLAN_CACHE_H_
#define OVC_SERVER_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/mutex.h"
#include "sql/binder.h"
#include "sql/sql_error.h"

namespace ovc::server {

/// Rewrites `sql` into its cache-key spelling: tokens' normalized forms
/// (lowercased identifiers, UPPERCASE keywords) joined by single spaces.
/// Returns false when the text does not lex; such statements bypass the
/// cache and fail in the regular prepare path with a real error position.
bool NormalizeSql(std::string_view sql, std::string* normalized);

class PlanCache {
 public:
  /// One cached statement. Shared out so an entry evicted mid-use stays
  /// alive until every borrowing session drops it.
  struct Entry {
    sql::BoundQuery bound;
    /// Serializes SqlSession::Instantiate calls over `bound` (physical
    /// planning annotates the shared logical tree in place). Never held
    /// during execution.
    Mutex plan_mu;
  };

  /// `capacity` 0 disables caching entirely (every lookup misses and
  /// nothing is stored) -- the cold-cache benchmark configuration.
  /// `options_fingerprint` names the planner configuration this cache's
  /// plans were bound under; it is folded into every key.
  PlanCache(size_t capacity, std::string options_fingerprint);

  struct Lookup {
    /// Set when the statement is cacheable and parse + bind succeeded
    /// (whether found or just inserted).
    std::shared_ptr<Entry> entry;
    bool hit = false;
    /// False for EXPLAIN [ANALYZE] statements and statements that fail
    /// to lex: the caller falls back to SqlSession::Prepare.
    bool cacheable = true;
    /// Parse / bind failure of a cacheable statement, reported with the
    /// source position; `entry` is null and nothing was cached.
    bool has_error = false;
    sql::SqlError error;
  };

  /// The one cache operation: returns the entry for `sql`, binding and
  /// inserting it (evicting the least recently used entry past capacity)
  /// on a miss. Thread safe; binds run under the cache lock, which is
  /// acceptable because a bind is microseconds against execution times in
  /// the tens of milliseconds.
  Lookup GetOrBind(std::string_view sql, const sql::Catalog* catalog);

  /// Drops every entry (borrowed shared_ptrs stay valid). Counters are
  /// not reset.
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }

  // Lifetime totals, mirrored into the server.plan_cache.* metrics.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::shared_ptr<Entry> entry;
    /// Position in lru_ (front = most recently used).
    std::list<std::string>::iterator lru_pos;
  };

  const size_t capacity_;
  const std::string options_fingerprint_;

  mutable Mutex mu_;
  std::unordered_map<std::string, Slot> entries_ OVC_GUARDED_BY(mu_);
  std::list<std::string> lru_ OVC_GUARDED_BY(mu_);

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace ovc::server

#endif  // OVC_SERVER_PLAN_CACHE_H_
