// Blocking ovcd client: one connection, one outstanding request at a
// time. Used by the ovcclient CLI, the server tests, and bench_serving.
//
// Error surfaces are two-level, mirroring the protocol:
//  * A non-OK Status from any call means the *transport* failed (connect
//    refused, socket error, the server closed the connection) -- the
//    connection is dead afterwards.
//  * A returned Result/PreparedInfo with ok == false carries a
//    *statement* error the server reported in an ERROR frame (parse,
//    bind, execution failure); the connection stays usable.

#ifndef OVC_SERVER_CLIENT_H_
#define OVC_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/status.h"
#include "server/wire.h"

namespace ovc::server {

class Client {
 public:
  Client() = default;
  ~Client() { Disconnect(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      Disconnect();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  [[nodiscard]] Status Connect(const std::string& host, uint16_t port);
  void Disconnect();
  bool connected() const { return fd_ >= 0; }

  /// One statement's outcome.
  struct Result {
    /// False when the server answered ERROR; the error_* fields are set.
    bool ok = false;
    std::vector<std::string> columns;
    /// Result rows (row-major). Empty for EXPLAIN statements.
    std::vector<std::vector<uint64_t>> rows;
    /// EXPLAIN / EXPLAIN ANALYZE rendering, when the statement was one.
    std::string explain_text;
    /// Total rows the server reported in RESULT_DONE (equals rows.size()).
    uint64_t total_rows = 0;
    /// The statement's server-side QueryCounters delta -- the same ten
    /// numbers the server added to its query.* metrics for this run.
    QueryCounters counters;

    std::string error_message;
    uint32_t error_line = 0;
    uint32_t error_column = 0;
  };

  /// Sends QUERY and collects the whole result stream.
  [[nodiscard]] Status Query(const std::string& sql, Result* result);

  struct PreparedInfo {
    bool ok = false;
    uint64_t handle = 0;
    /// True when the statement came out of the server's plan cache.
    bool cache_hit = false;
    std::vector<std::string> columns;

    std::string error_message;
    uint32_t error_line = 0;
    uint32_t error_column = 0;
  };

  /// Sends PREPARE; on success the returned handle feeds Execute/Close.
  [[nodiscard]] Status Prepare(const std::string& sql, PreparedInfo* info);

  /// Sends EXECUTE for a prepared handle and collects the result stream.
  [[nodiscard]] Status Execute(uint64_t handle, Result* result);

  /// Sends CLOSE for a prepared handle (idempotent on the server).
  [[nodiscard]] Status CloseStatement(uint64_t handle);

  /// Sends METRICS; `json` receives the server's registry snapshot.
  [[nodiscard]] Status Metrics(std::string* json);

  // -- Low-level access for protocol tests ---------------------------------

  /// Sends one raw frame.
  [[nodiscard]] Status SendFrame(FrameType type, std::string_view payload);
  /// Sends raw bytes verbatim (partial/garbage frames for malformed-input
  /// tests).
  [[nodiscard]] Status SendBytes(const void* data, size_t len);
  /// Reads one frame.
  [[nodiscard]] Status ReadOneFrame(Frame* frame);

 private:
  /// Reads response frames after QUERY/EXECUTE until RESULT_DONE or ERROR.
  Status CollectResult(Result* result);

  int fd_ = -1;
};

}  // namespace ovc::server

#endif  // OVC_SERVER_CLIENT_H_
