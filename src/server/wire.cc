#include "server/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ovc::server {

namespace {

/// Frame header: u32 LE payload length + u8 type.
constexpr size_t kHeaderBytes = 5;

Status SendAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

/// Reads exactly `len` bytes. `*clean_eof` is set when zero bytes arrive
/// before anything else was read (the peer hung up between frames).
Status RecvAll(int fd, char* data, size_t len, bool* clean_eof) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (clean_eof != nullptr && got == 0) {
        *clean_eof = true;
        return Status::Ok();
      }
      return Status::IoError("connection closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::Ok();
}

void PutU32At(char* out, uint32_t v) {
  out[0] = static_cast<char>(v & 0xff);
  out[1] = static_cast<char>((v >> 8) & 0xff);
  out[2] = static_cast<char>((v >> 16) & 0xff);
  out[3] = static_cast<char>((v >> 24) & 0xff);
}

uint32_t GetU32At(const char* in) {
  return static_cast<uint32_t>(static_cast<unsigned char>(in[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(in[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[3])) << 24;
}

}  // namespace

Status WriteFrame(int fd, FrameType type, std::string_view payload) {
  char header[kHeaderBytes];
  PutU32At(header, static_cast<uint32_t>(payload.size()));
  header[4] = static_cast<char>(type);
  // Header and payload go out in one buffer so small frames are one
  // segment on the wire instead of two.
  std::string buf;
  buf.reserve(kHeaderBytes + payload.size());
  buf.append(header, kHeaderBytes);
  buf.append(payload);
  return SendAll(fd, buf.data(), buf.size());
}

Status ReadFrame(int fd, Frame* out) {
  char header[kHeaderBytes];
  bool clean_eof = false;
  OVC_RETURN_IF_ERROR(RecvAll(fd, header, kHeaderBytes, &clean_eof));
  if (clean_eof) return Status::NotFound("end of stream");
  const uint32_t len = GetU32At(header);
  if (len > kMaxFrameBytes) {
    return Status::ResourceExhausted("frame payload of " + std::to_string(len) +
                                     " bytes exceeds the " +
                                     std::to_string(kMaxFrameBytes) +
                                     "-byte frame limit");
  }
  out->type = static_cast<FrameType>(static_cast<unsigned char>(header[4]));
  out->payload.resize(len);
  if (len > 0) {
    OVC_RETURN_IF_ERROR(RecvAll(fd, out->payload.data(), len, nullptr));
  }
  return Status::Ok();
}

void PayloadWriter::PutU32(uint32_t v) {
  char tmp[4];
  PutU32At(tmp, v);
  buf_.append(tmp, sizeof(tmp));
}

void PayloadWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v & 0xffffffffu));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void PayloadWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

void PayloadWriter::PutCounters(const QueryCounters& c) {
  PutU64(c.column_comparisons);
  PutU64(c.code_comparisons);
  PutU64(c.row_comparisons);
  PutU64(c.hash_computations);
  PutU64(c.rows_spilled);
  PutU64(c.bytes_spilled);
  PutU64(c.merge_bypass_rows);
  PutU64(c.hash_join_fallbacks);
  PutU64(c.hash_agg_fallbacks);
  PutU64(c.io_retries);
}

bool PayloadReader::Take(void* out, size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return true;
}

bool PayloadReader::GetU32(uint32_t* v) {
  char tmp[4];
  if (!Take(tmp, sizeof(tmp))) return false;
  *v = GetU32At(tmp);
  return true;
}

bool PayloadReader::GetU64(uint64_t* v) {
  uint32_t lo = 0;
  uint32_t hi = 0;
  if (!GetU32(&lo) || !GetU32(&hi)) return false;
  *v = static_cast<uint64_t>(hi) << 32 | lo;
  return true;
}

bool PayloadReader::GetU8(uint8_t* v) { return Take(v, 1); }

bool PayloadReader::GetString(std::string* s) {
  uint32_t len = 0;
  if (!GetU32(&len)) return false;
  if (data_.size() - pos_ < len) {
    ok_ = false;
    return false;
  }
  s->assign(data_.data() + pos_, len);
  pos_ += len;
  return true;
}

bool PayloadReader::GetCounters(QueryCounters* c) {
  return GetU64(&c->column_comparisons) && GetU64(&c->code_comparisons) &&
         GetU64(&c->row_comparisons) && GetU64(&c->hash_computations) &&
         GetU64(&c->rows_spilled) && GetU64(&c->bytes_spilled) &&
         GetU64(&c->merge_bypass_rows) && GetU64(&c->hash_join_fallbacks) &&
         GetU64(&c->hash_agg_fallbacks) && GetU64(&c->io_retries);
}

}  // namespace ovc::server
