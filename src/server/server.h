// ovcd: a concurrent query server over one shared catalog.
//
// Architecture (docs/SERVING.md has the full picture):
//
//   Server
//    |-- listen socket, accept loop (own thread)
//    |-- shared, immutable Catalog (registered before Start, frozen after)
//    |-- PlanCache          -- process-wide bound-plan cache
//    |-- AdmissionController -- query-slot gate + sliced planner budgets
//    |-- TempFileManager     -- root scratch tree
//    `-- one thread + ServerSession per connection
//         `-- SqlSession (own counters, own temp sub-manager)
//
// Threading model: blocking sockets, thread per connection. A connection
// thread parses frames, runs at most one statement at a time, and streams
// result frames back; concurrency comes from many connections, bounded by
// the admission gate. Statement execution may additionally fan out into
// `workers_per_query` exchange-producer threads (the planner's sliced
// parallelism), so peak engine threads are
// max_queries * workers_per_query + connection/accept overhead.
//
// Shutdown: Stop() closes the listen socket, wakes admission waiters, and
// shuts down every live connection socket, then joins all threads. Safe to
// call concurrently with active queries; clients see their sockets close.

#ifndef OVC_SERVER_SERVER_H_
#define OVC_SERVER_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/temp_file.h"
#include "plan/plan_executor.h"
#include "server/admission.h"
#include "server/plan_cache.h"
#include "sql/catalog.h"

namespace ovc::server {

struct ServerOptions {
  /// Listen address. Tests and the CI smoke use the loopback default.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the real one back via port().
  uint16_t port = 0;
  /// Admission slots: statements executing at once (`--max-queries`).
  uint32_t max_queries = 4;
  /// Exchange workers each admitted statement plans with
  /// (`--workers-per-query`).
  uint32_t workers_per_query = 1;
  /// Plan-cache entries (0 disables caching; `--plan-cache`).
  size_t plan_cache_capacity = 128;
  /// Root scratch directory ("" = system temp dir).
  std::string temp_dir;
  /// Machine-wide executor configuration. The planner budgets inside
  /// (hash_memory_rows, sort_config.memory_rows, parallelism) are treated
  /// as whole-machine totals and sliced per query by the admission
  /// controller before any session sees them.
  plan::PlanExecutor::Options executor;
};

class Server {
 public:
  /// `catalog` must outlive the server and must not change while the
  /// server is running (the plan cache assumes a frozen catalog).
  Server(const sql::Catalog* catalog, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept thread. InvalidArgument for a
  /// bad host, IoError when the socket cannot be bound.
  [[nodiscard]] Status Start();

  /// Stops accepting, kicks every connection, joins all threads.
  /// Idempotent.
  void Stop();

  /// The bound port (after Start; meaningful with options.port == 0).
  uint16_t port() const { return port_; }

  PlanCache* plan_cache() { return &cache_; }
  AdmissionController* admission() { return &admission_; }
  const AdmissionController& admission() const { return admission_; }
  /// The per-query executor options every session runs with (machine
  /// budgets divided by max_queries, parallelism = workers_per_query).
  const plan::PlanExecutor::Options& session_options() const {
    return session_options_;
  }
  const sql::Catalog* catalog() const { return catalog_; }
  TempFileManager* temp_root() { return &temp_root_; }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    /// True once the serving thread is done with fd (it closes the fd
    /// itself); Stop() only shuts down sockets still marked live.
    bool done = false;
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);

  const sql::Catalog* catalog_;
  const ServerOptions options_;
  const plan::PlanExecutor::Options session_options_;
  TempFileManager temp_root_;
  PlanCache cache_;
  AdmissionController admission_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;

  Mutex mu_;
  bool stopping_ OVC_GUARDED_BY(mu_) = false;
  bool started_ = false;
  /// All connections ever accepted; joined and reclaimed in Stop().
  std::vector<std::unique_ptr<Connection>> connections_ OVC_GUARDED_BY(mu_);
};

/// Renders PlanExecutor options into the stable string the plan cache
/// keys on: every field that changes what a bound/planned statement means.
std::string OptionsFingerprint(const plan::PlanExecutor::Options& options);

}  // namespace ovc::server

#endif  // OVC_SERVER_SERVER_H_
