// ovcd wire protocol: length-prefixed frames over a stream socket.
//
// Every message is one frame:
//
//   +----------------+--------+----------------------+
//   | u32 payload_len| u8 type| payload (payload_len)|
//   +----------------+--------+----------------------+
//
// with the length little-endian and *not* counting the type byte. The
// protocol is strictly client-drives: the client sends one request frame
// (QUERY / PREPARE / EXECUTE / CLOSE / METRICS) and reads response frames
// until the terminating one for that request (RESULT_DONE, PREPARED,
// CLOSED, TEXT, or ERROR). Multi-byte integers inside payloads are
// little-endian; strings are u32 length + bytes. Row batches carry raw
// u64 column values (the engine's row model is fixed-width uint64).
//
// Robustness contract (tests/server_test.cc):
//  * A frame whose length exceeds kMaxFrameBytes cannot be resynchronized
//    (the stream offset is lost) -- the server answers ERROR and closes
//    the connection.
//  * An unknown frame type gets ERROR + close.
//  * A connection dropped mid-frame just ends the session; other
//    connections are unaffected (thread-per-connection isolation).
//
// See docs/SERVING.md for the full frame catalog.

#ifndef OVC_SERVER_WIRE_H_
#define OVC_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/counters.h"
#include "common/status.h"

namespace ovc::server {

/// Frame type byte. Requests are < 16, responses >= 16.
enum class FrameType : uint8_t {
  // Client -> server.
  kQuery = 1,    // payload: SQL text; response: result stream
  kPrepare = 2,  // payload: SQL text; response: PREPARED
  kExecute = 3,  // payload: u64 handle; response: result stream
  kClose = 4,    // payload: u64 handle; response: CLOSED
  kMetrics = 5,  // payload: empty; response: TEXT (metrics JSON snapshot)

  // Server -> client.
  kPrepared = 16,      // u64 handle | u8 cache_hit | u32 ncols | ncols * str
  kResultHeader = 17,  // u32 ncols | ncols * str
  kRowBatch = 18,      // u32 nrows | u32 width | nrows*width u64
  kResultDone = 19,    // u64 total_rows | 10 u64 counters delta
  kError = 20,         // u32 line | u32 col | str message
  kClosed = 21,        // empty
  kText = 22,          // str (EXPLAIN text, metrics JSON)
};

/// Hard ceiling on a single frame's payload. Request frames past it are a
/// protocol violation (ERROR + close); the server chunks its own row
/// batches well below it.
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// Rows per RowBatch frame the server emits.
inline constexpr uint32_t kRowsPerBatchFrame = 1024;

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Writes one frame to `fd`, looping over partial writes (MSG_NOSIGNAL --
/// a peer that vanished surfaces as kIoError, never SIGPIPE).
Status WriteFrame(int fd, FrameType type, std::string_view payload);

/// Reads one frame from `fd`. Clean end-of-stream *at a frame boundary*
/// returns kNotFound (the peer closed politely); end-of-stream inside a
/// frame, or any socket error, returns kIoError; a header whose length
/// exceeds kMaxFrameBytes returns kResourceExhausted without consuming
/// the (unreadable) payload.
Status ReadFrame(int fd, Frame* out);

/// Payload builder: appends little-endian scalars and length-prefixed
/// strings to an owned buffer.
class PayloadWriter {
 public:
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutString(std::string_view s);
  /// All ten QueryCounters fields, in declaration order.
  void PutCounters(const QueryCounters& c);

  const std::string& str() const { return buf_; }

 private:
  std::string buf_;
};

/// Payload cursor: the mirror of PayloadWriter. Every getter returns false
/// (and poisons the reader) on truncated input, so malformed payloads are
/// rejected without aborting.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : data_(payload) {}

  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetU8(uint8_t* v);
  bool GetString(std::string* s);
  bool GetCounters(QueryCounters* c);

  /// True when the whole payload was consumed without a decode error.
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }
  bool ok() const { return ok_; }

 private:
  bool Take(void* out, size_t n);

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace ovc::server

#endif  // OVC_SERVER_WIRE_H_
