#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ovc::server {

namespace {

/// Decodes an ERROR payload into the result error fields.
bool ParseError(const std::string& payload, std::string* message,
                uint32_t* line, uint32_t* column) {
  PayloadReader reader(payload);
  return reader.GetU32(line) && reader.GetU32(column) &&
         reader.GetString(message) && reader.AtEnd();
}

}  // namespace

Status Client::Connect(const std::string& host, uint16_t port) {
  Disconnect();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Disconnect();
    return Status::InvalidArgument("bad server address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    const Status status =
        Status::IoError(std::string("connect: ") + std::strerror(errno));
    Disconnect();
    return status;
  }
  return Status::Ok();
}

void Client::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::Query(const std::string& sql, Result* result) {
  OVC_RETURN_IF_ERROR(SendFrame(FrameType::kQuery, sql));
  return CollectResult(result);
}

Status Client::Prepare(const std::string& sql, PreparedInfo* info) {
  *info = PreparedInfo();
  OVC_RETURN_IF_ERROR(SendFrame(FrameType::kPrepare, sql));
  Frame frame;
  OVC_RETURN_IF_ERROR(ReadOneFrame(&frame));
  if (frame.type == FrameType::kError) {
    if (!ParseError(frame.payload, &info->error_message, &info->error_line,
                    &info->error_column)) {
      return Status::Internal("malformed ERROR frame from server");
    }
    return Status::Ok();
  }
  if (frame.type != FrameType::kPrepared) {
    return Status::Internal("unexpected frame type in PREPARE response");
  }
  PayloadReader reader(frame.payload);
  uint8_t hit = 0;
  uint32_t ncols = 0;
  if (!reader.GetU64(&info->handle) || !reader.GetU8(&hit) ||
      !reader.GetU32(&ncols)) {
    return Status::Internal("malformed PREPARED frame from server");
  }
  info->cache_hit = hit != 0;
  info->columns.resize(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    if (!reader.GetString(&info->columns[i])) {
      return Status::Internal("malformed PREPARED frame from server");
    }
  }
  info->ok = true;
  return Status::Ok();
}

Status Client::Execute(uint64_t handle, Result* result) {
  PayloadWriter payload;
  payload.PutU64(handle);
  OVC_RETURN_IF_ERROR(SendFrame(FrameType::kExecute, payload.str()));
  return CollectResult(result);
}

Status Client::CloseStatement(uint64_t handle) {
  PayloadWriter payload;
  payload.PutU64(handle);
  OVC_RETURN_IF_ERROR(SendFrame(FrameType::kClose, payload.str()));
  Frame frame;
  OVC_RETURN_IF_ERROR(ReadOneFrame(&frame));
  if (frame.type != FrameType::kClosed) {
    return Status::Internal("unexpected frame type in CLOSE response");
  }
  return Status::Ok();
}

Status Client::Metrics(std::string* json) {
  OVC_RETURN_IF_ERROR(SendFrame(FrameType::kMetrics, ""));
  Frame frame;
  OVC_RETURN_IF_ERROR(ReadOneFrame(&frame));
  if (frame.type != FrameType::kText) {
    return Status::Internal("unexpected frame type in METRICS response");
  }
  PayloadReader reader(frame.payload);
  if (!reader.GetString(json) || !reader.AtEnd()) {
    return Status::Internal("malformed TEXT frame from server");
  }
  return Status::Ok();
}

Status Client::SendFrame(FrameType type, std::string_view payload) {
  if (fd_ < 0) return Status::IoError("not connected");
  return WriteFrame(fd_, type, payload);
}

Status Client::SendBytes(const void* data, size_t len) {
  if (fd_ < 0) return Status::IoError("not connected");
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status Client::ReadOneFrame(Frame* frame) {
  if (fd_ < 0) return Status::IoError("not connected");
  Status status = ReadFrame(fd_, frame);
  if (status.code() == StatusCode::kNotFound) {
    return Status::IoError("server closed the connection");
  }
  return status;
}

Status Client::CollectResult(Result* result) {
  *result = Result();
  for (;;) {
    Frame frame;
    OVC_RETURN_IF_ERROR(ReadOneFrame(&frame));
    switch (frame.type) {
      case FrameType::kResultHeader: {
        PayloadReader reader(frame.payload);
        uint32_t ncols = 0;
        if (!reader.GetU32(&ncols)) {
          return Status::Internal("malformed RESULT_HEADER frame");
        }
        result->columns.resize(ncols);
        for (uint32_t i = 0; i < ncols; ++i) {
          if (!reader.GetString(&result->columns[i])) {
            return Status::Internal("malformed RESULT_HEADER frame");
          }
        }
        break;
      }
      case FrameType::kRowBatch: {
        PayloadReader reader(frame.payload);
        uint32_t nrows = 0;
        uint32_t width = 0;
        if (!reader.GetU32(&nrows) || !reader.GetU32(&width)) {
          return Status::Internal("malformed ROW_BATCH frame");
        }
        for (uint32_t r = 0; r < nrows; ++r) {
          std::vector<uint64_t> row(width);
          for (uint32_t c = 0; c < width; ++c) {
            if (!reader.GetU64(&row[c])) {
              return Status::Internal("malformed ROW_BATCH frame");
            }
          }
          result->rows.push_back(std::move(row));
        }
        break;
      }
      case FrameType::kText: {
        PayloadReader reader(frame.payload);
        if (!reader.GetString(&result->explain_text)) {
          return Status::Internal("malformed TEXT frame");
        }
        break;
      }
      case FrameType::kResultDone: {
        PayloadReader reader(frame.payload);
        if (!reader.GetU64(&result->total_rows) ||
            !reader.GetCounters(&result->counters) || !reader.AtEnd()) {
          return Status::Internal("malformed RESULT_DONE frame");
        }
        result->ok = true;
        return Status::Ok();
      }
      case FrameType::kError: {
        if (!ParseError(frame.payload, &result->error_message,
                        &result->error_line, &result->error_column)) {
          return Status::Internal("malformed ERROR frame from server");
        }
        return Status::Ok();
      }
      default:
        return Status::Internal("unexpected frame type in result stream");
    }
  }
}

}  // namespace ovc::server
