#include "server/admission.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/profile.h"

namespace ovc::server {

namespace {

metrics::Gauge& ActiveQueries() {
  return OVC_METRIC_GAUGE("server.active_queries",
                          "Statements currently holding an admission slot");
}

metrics::Gauge& ActiveHighWater() {
  return OVC_METRIC_GAUGE(
      "server.active_queries_high_water",
      "Most admission slots ever held at once in this process");
}

}  // namespace

AdmissionController::AdmissionController(uint32_t slots)
    : slots_(std::max<uint32_t>(1, slots)) {}

bool AdmissionController::Acquire() {
  const uint64_t start_ticks = ProfileTicks();
  bool waited = false;
  {
    MutexLock lock(mu_);
    while (held_ >= slots_ && !shutdown_) {
      waited = true;
      slot_freed_.Wait(mu_);
    }
    if (shutdown_) return false;
    ++held_;
    const uint32_t now = held_;
    active_.store(now, std::memory_order_relaxed);
    // high_water_ only moves under mu_, so a plain max-store is race-free.
    if (now > high_water_.load(std::memory_order_relaxed)) {
      high_water_.store(now, std::memory_order_relaxed);
      ActiveHighWater().Set(now);
    }
  }
  ActiveQueries().Add(1);
  if (waited) {
    OVC_METRIC_COUNTER("server.admission_waits",
                       "Statements that blocked waiting for a query slot")
        .Increment();
    OVC_METRIC_HISTOGRAM("server.admission_wait_us",
                         "Time statements spent blocked on admission")
        .Record(TicksToNs(ProfileTicks() - start_ticks) / 1000);
  }
  return true;
}

void AdmissionController::Release() {
  {
    MutexLock lock(mu_);
    --held_;
    active_.store(held_, std::memory_order_relaxed);
  }
  ActiveQueries().Sub(1);
  slot_freed_.NotifyOne();
}

void AdmissionController::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  slot_freed_.NotifyAll();
}

AdmissionController::Grant::Grant(AdmissionController* controller)
    : controller_(controller), ok_(controller->Acquire()) {}

AdmissionController::Grant::~Grant() {
  if (ok_) controller_->Release();
}

plan::PlanExecutor::Options AdmissionController::Slice(
    plan::PlanExecutor::Options machine, uint32_t slots,
    uint32_t workers_per_query) {
  slots = std::max<uint32_t>(1, slots);
  plan::PlannerOptions& planner = machine.planner;
  planner.parallelism = std::max<uint32_t>(1, workers_per_query);
  planner.hash_memory_rows =
      std::max(kMinHashMemoryRows, planner.hash_memory_rows / slots);
  planner.sort_config.memory_rows =
      std::max(kMinSortMemoryRows, planner.sort_config.memory_rows / slots);
  return machine;
}

}  // namespace ovc::server
