// Offset-value coding (OVC).
//
// An offset-value code describes one row's sort key *relative to a base key
// that sorts earlier*: the offset is the length (in columns) of the maximal
// shared prefix, and the value is the row's column value at that offset.
// Conner 1977; Table 1 of Graefe & Do, EDBT 2023.
//
// Ascending coding packs (arity - offset, value) so that, among codes
// relative to the same base, a smaller code means "sorts earlier". This is
// the engine-wide primary coding. Descending coding (offset, domain - value),
// where a *larger* code means earlier, is provided for completeness and is
// exercised by tests and the Table 1 benchmark.
//
// 64-bit code word layout (ascending), following Section 5 of the paper
// ("invalid key values ... are also folded into this integer"):
//
//   bits 63..62   kind: 00 early fence (-inf), 01 valid, 11 late fence (+inf)
//   bits 61..48   arity - offset (14 bits; arity <= 16383)
//   bits 47..0    value: monotone saturating image of the normalized column
//                 value at the offset
//
// A single unsigned integer comparison therefore orders early fences before
// all valid codes before all late fences -- the comparison of offset-value
// codes is folded into the validity test, making it "practically free".
//
// The 48-bit value field stores min(v, 2^48 - 1) of the *normalized* column
// value. This saturating map is monotone, which is all the OVC algebra
// needs: codes that differ still decide comparisons correctly, and equal
// codes mean "continue with column comparisons at the offset" (at offset + 1
// when the stored value is below the saturation point, because then equal
// images imply equal column values).

#ifndef OVC_CORE_OVC_H_
#define OVC_CORE_OVC_H_

#include <cstdint>
#include <string>

#include "common/ovc_word.h"
#include "row/schema.h"

namespace ovc {

/// Encoder/decoder for ascending offset-value codes over a given schema.
class OvcCodec {
 public:
  static constexpr int kValueBits = 48;
  static constexpr int kOffsetBits = 14;
  static constexpr uint64_t kValueMask = (uint64_t{1} << kValueBits) - 1;
  /// Largest representable arity (14-bit offset field).
  static constexpr uint32_t kMaxArity = (1u << kOffsetBits) - 1;

  static constexpr uint64_t kKindValid = uint64_t{1} << 62;
  static constexpr uint64_t kKindLateFence = uint64_t{3} << 62;

  /// `schema` must outlive the codec.
  explicit OvcCodec(const Schema* schema) : schema_(schema) {
    OVC_CHECK(schema->key_arity() <= kMaxArity);
  }

  /// The sort-key arity codes are computed over.
  uint32_t arity() const { return schema_->key_arity(); }
  const Schema& schema() const { return *schema_; }

  /// Monotone saturating image of a normalized column value in the 48-bit
  /// value field.
  static uint64_t EncodeValue(uint64_t normalized) {
    return normalized < kValueMask ? normalized : kValueMask;
  }

  /// True when EncodeValue(normalized) is injective at this value, i.e. the
  /// stored image did not saturate.
  static bool EncodedLossless(uint64_t encoded) { return encoded < kValueMask; }

  /// Builds a valid code from an offset and a normalized column value.
  /// `offset == arity()` builds the duplicate code (value ignored, stored 0).
  Ovc Make(uint32_t offset, uint64_t normalized_value) const {
    OVC_DCHECK(offset <= arity());
    if (offset == arity()) return DuplicateCode();
    return kKindValid |
           (uint64_t{arity() - offset} << kValueBits) |
           EncodeValue(normalized_value);
  }

  /// Builds the code of `row` at `offset`, taking the (normalized) value
  /// from the row itself. `offset == arity()` yields the duplicate code.
  Ovc MakeFromRow(const uint64_t* row, uint32_t offset) const {
    if (offset == arity()) return DuplicateCode();
    return Make(offset, schema_->NormalizedAt(row, offset));
  }

  /// Code of a stream's first row: relative to the imaginary "minus
  /// infinity" base, with which it shares no prefix (offset 0).
  Ovc MakeInitial(const uint64_t* row) const { return MakeFromRow(row, 0); }

  /// Code of a row whose key equals its base's key: offset == arity.
  /// Numerically the smallest valid code (Table 1's "0").
  Ovc DuplicateCode() const { return kKindValid; }

  /// The early fence (-inf): smaller than every valid code.
  static constexpr Ovc EarlyFence() { return 0; }
  /// The late fence (+inf): larger than every valid code.
  static constexpr Ovc LateFence() { return ~uint64_t{0}; }

  /// True for valid (non-fence) codes.
  static bool IsValid(Ovc code) { return (code >> 62) == 1; }

  /// Offset stored in a valid code.
  uint32_t OffsetOf(Ovc code) const {
    OVC_DCHECK(IsValid(code));
    return arity() -
           static_cast<uint32_t>((code >> kValueBits) & kMaxArity);
  }

  /// Value image stored in a valid code.
  static uint64_t ValueOf(Ovc code) {
    OVC_DCHECK(IsValid(code));
    return code & kValueMask;
  }

  /// True when `code` marks its row as a full-key duplicate of its base
  /// (offset == arity). Drives duplicate removal (Section 4.4) and the
  /// merge-bypass fast path (Section 5).
  bool IsDuplicate(Ovc code) const {
    return IsValid(code) && OffsetOf(code) == arity();
  }

  /// True when `code` marks a boundary between groups of rows that share the
  /// first `prefix` key columns: the row differs from its predecessor within
  /// that prefix. Drives segmentation (4.3), grouping (4.5), and one-to-many
  /// shuffle. Fences count as boundaries.
  bool IsBoundary(Ovc code, uint32_t prefix) const {
    OVC_DCHECK(prefix <= arity());
    if (!IsValid(code)) return true;
    return OffsetOf(code) < prefix;
  }

  /// Column index where column-value comparisons must resume when two codes
  /// relative to the same base compare equal (Iyer's equal-code theorem,
  /// adjusted for value saturation): past the shared prefix and value when
  /// the stored value is exact, at the offset itself when it saturated.
  uint32_t ResumeColumn(Ovc code) const {
    OVC_DCHECK(IsValid(code));
    const uint32_t offset = OffsetOf(code);
    if (offset == arity()) return offset;  // duplicate: nothing to compare
    return EncodedLossless(ValueOf(code)) ? offset + 1 : offset;
  }

  /// Re-bases a code for a stream restricted to the first `prefix` key
  /// columns: offsets larger than `prefix` clamp to the duplicate code of
  /// the shorter key. Used by projection (4.2) when only a key prefix
  /// survives, by segmentation (4.3), and by grouping (4.5).
  Ovc ClampToPrefix(Ovc code, uint32_t prefix, const OvcCodec& out) const {
    OVC_DCHECK(IsValid(code));
    OVC_DCHECK(prefix == out.arity());
    const uint32_t offset = OffsetOf(code);
    if (offset >= prefix) return out.DuplicateCode();
    return out.Make(offset, ValueOfRaw(code));
  }

  /// Human-readable form, e.g. "(off=1,val=8)", "dup", "-inf", "+inf".
  std::string ToString(Ovc code) const;

 private:
  static uint64_t ValueOfRaw(Ovc code) { return code & kValueMask; }

  const Schema* schema_;
};

/// Descending offset-value coding: packs (offset, complemented value) so
/// that a *larger* code sorts earlier. Provided for parity with the paper's
/// Table 1 and the min-combination form of the theorem; the engine's
/// operators use ascending coding throughout.
class DescendingOvcCodec {
 public:
  explicit DescendingOvcCodec(const Schema* schema) : schema_(schema) {
    OVC_CHECK(schema->key_arity() <= OvcCodec::kMaxArity);
  }

  uint32_t arity() const { return schema_->key_arity(); }

  /// Builds a descending code: higher offset or lower value => larger code.
  Ovc Make(uint32_t offset, uint64_t normalized_value) const {
    OVC_DCHECK(offset <= arity());
    if (offset == arity()) return DuplicateCode();
    return OvcCodec::kKindValid |
           (uint64_t{offset} << OvcCodec::kValueBits) |
           (OvcCodec::kValueMask - OvcCodec::EncodeValue(normalized_value));
  }

  /// Code of `row` at `offset` with the value taken from the row.
  Ovc MakeFromRow(const uint64_t* row, uint32_t offset) const {
    if (offset == arity()) return DuplicateCode();
    return Make(offset, schema_->NormalizedAt(row, offset));
  }

  /// First-row code (offset 0).
  Ovc MakeInitial(const uint64_t* row) const { return MakeFromRow(row, 0); }

  /// Duplicate code: offset == arity, the numerically *largest* valid
  /// descending code (Table 1's "400").
  Ovc DuplicateCode() const {
    return OvcCodec::kKindValid |
           (uint64_t{arity()} << OvcCodec::kValueBits) | OvcCodec::kValueMask;
  }

  uint32_t OffsetOf(Ovc code) const {
    OVC_DCHECK(OvcCodec::IsValid(code));
    return static_cast<uint32_t>((code >> OvcCodec::kValueBits) &
                                 OvcCodec::kMaxArity);
  }

  /// Value image stored in a valid code (complement undone).
  static uint64_t ValueOf(Ovc code) {
    return OvcCodec::kValueMask - (code & OvcCodec::kValueMask);
  }

 private:
  const Schema* schema_;
};

}  // namespace ovc

#endif  // OVC_CORE_OVC_H_
