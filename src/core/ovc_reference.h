// Reference (naive) offset-value code computation.
//
// These helpers compute codes the expensive way the paper's introduction
// warns about -- "comparing an operator's output row-by-row,
// column-by-column" -- and exist so tests and the stream checker can verify
// the efficient derivations, and so benchmarks can price the naive method.

#ifndef OVC_CORE_OVC_REFERENCE_H_
#define OVC_CORE_OVC_REFERENCE_H_

#include <cstdint>

#include "core/ovc.h"
#include "row/schema.h"

namespace ovc::reference {

/// Length of the maximal shared key prefix of `a` and `b` in columns
/// (the paper's pre(A, B)).
uint32_t SharedPrefix(const Schema& schema, const uint64_t* a,
                      const uint64_t* b);

/// Naive ascending code of `row` relative to `base`; `base` must sort no
/// later than `row`.
Ovc AscendingOvc(const OvcCodec& codec, const uint64_t* base,
                 const uint64_t* row);

/// Naive descending code of `row` relative to `base`.
Ovc DescendingOvc(const DescendingOvcCodec& codec, const uint64_t* base,
                  const uint64_t* row);

/// The paper's Table 1 toy encoding for small domains (column values
/// 1..domain-1): ascending OVC = (arity - offset) * domain + value,
/// duplicates encode as 0.
uint64_t ToyAscendingOvc(uint32_t arity, uint64_t domain, const uint64_t* base,
                         const uint64_t* row);

/// Table 1 descending toy encoding: offset * domain + (domain - value),
/// duplicates encode as arity * domain.
uint64_t ToyDescendingOvc(uint32_t arity, uint64_t domain,
                          const uint64_t* base, const uint64_t* row);

}  // namespace ovc::reference

#endif  // OVC_CORE_OVC_REFERENCE_H_
