#include "core/ovc.h"

namespace ovc {

std::string OvcCodec::ToString(Ovc code) const {
  if (code == EarlyFence()) return "-inf";
  if (code == LateFence()) return "+inf";
  if (!IsValid(code)) return "invalid(" + std::to_string(code) + ")";
  if (IsDuplicate(code)) return "dup";
  return "(off=" + std::to_string(OffsetOf(code)) +
         ",val=" + std::to_string(ValueOf(code)) + ")";
}

}  // namespace ovc
