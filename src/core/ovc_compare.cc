#include "core/ovc_compare.h"

namespace ovc {

int CompareWithOvc(const OvcCodec& codec, const KeyComparator& comparator,
                   const uint64_t* left_row, Ovc* left_code,
                   const uint64_t* right_row, Ovc* right_code) {
  QueryCounters* counters = comparator.counters();
  if (counters != nullptr) ++counters->code_comparisons;

  const Ovc lc = *left_code;
  const Ovc rc = *right_code;
  if (lc != rc) {
    // Unequal-code theorem: the codes decide, and the loser's code relative
    // to the winner is unchanged. A smaller ascending code sorts earlier.
    return lc < rc ? -1 : 1;
  }

  if (!OvcCodec::IsValid(lc)) {
    // Two equal fences; no key data to compare. Callers treat this as a tie
    // broken by input index (it only happens between exhausted inputs).
    return 0;
  }

  // Equal-code theorem: both keys share prefix and value with the base;
  // column comparisons resume past them (or at the offset itself when the
  // 48-bit value image saturated and may hide a difference).
  const uint32_t resume = codec.ResumeColumn(lc);
  const uint32_t arity = codec.arity();
  if (resume >= arity) {
    // Both rows are full-key duplicates of the base, hence of each other.
    return 0;
  }

  const uint32_t diff = comparator.FirstDifference(left_row, right_row, resume);
  if (diff == arity) {
    // Keys are equal; the caller assigns the duplicate code to whichever row
    // it emits second.
    return 0;
  }

  const uint64_t lv = codec.schema().NormalizedAt(left_row, diff);
  const uint64_t rv = codec.schema().NormalizedAt(right_row, diff);
  OVC_DCHECK(lv != rv);
  if (lv < rv) {
    // Left wins; right is the loser and is re-coded relative to left.
    *right_code = codec.Make(diff, rv);
    return -1;
  }
  *left_code = codec.Make(diff, lv);
  return 1;
}

}  // namespace ovc
