// The filter theorem, operational form.
//
// Paper, Section 4 ("filter theorem"): for a sorted list of key values
// X0 < X1 < ... < Xn and ascending coding,
//     ovc(X0, Xn) = max_{i=1..n} ovc(X_{i-1}, X_i).
//
// Operationally: when an order-preserving operator drops rows from a sorted
// stream (filter, duplicate removal, semi join, anti join, one-to-many
// shuffle, merge join's unmatched rows, ...), the next *surviving* row's
// output code is the running maximum of its own input code and the input
// codes of all rows dropped since the previous surviving row. No column
// values are touched.

#ifndef OVC_CORE_ACCUMULATOR_H_
#define OVC_CORE_ACCUMULATOR_H_

#include <algorithm>

#include "core/ovc.h"

namespace ovc {

/// Running-max combiner for ascending offset-value codes.
///
/// Usage in a row-dropping operator:
///   for each input row r:
///     if (keep(r)) { emit(r.cols, acc.Combine(r.ovc)); acc.Reset(); }
///     else          acc.Absorb(r.ovc);
class OvcAccumulator {
 public:
  /// Starts (or restarts) an empty accumulation. The early fence is the
  /// neutral element of max over code words.
  void Reset() { acc_ = OvcCodec::EarlyFence(); }

  /// Folds the code of a dropped row into the accumulation.
  void Absorb(Ovc dropped) { acc_ = std::max(acc_, dropped); }

  /// Output code for a surviving row with input code `own`.
  Ovc Combine(Ovc own) const { return std::max(acc_, own); }

  /// Current accumulated value (early fence when empty).
  Ovc value() const { return acc_; }

 private:
  Ovc acc_ = OvcCodec::EarlyFence();
};

/// The descending-coding dual: the theorem combines with min, and the late
/// fence is the neutral element. Used by tests exercising both codings.
class DescendingOvcAccumulator {
 public:
  void Reset() { acc_ = OvcCodec::LateFence(); }
  void Absorb(Ovc dropped) { acc_ = std::min(acc_, dropped); }
  Ovc Combine(Ovc own) const { return std::min(acc_, own); }
  Ovc value() const { return acc_; }

 private:
  Ovc acc_ = OvcCodec::LateFence();
};

}  // namespace ovc

#endif  // OVC_CORE_ACCUMULATOR_H_
