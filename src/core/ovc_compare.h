// The central comparison primitive: compare two keys that are coded relative
// to the same base, updating the loser's code relative to the winner.
//
// This implements both of Iyer's corollaries from Section 4 of the paper:
//
//  * Unequal-code theorem: if the codes (relative to the shared base) decide
//    the comparison, the loser's code relative to the winner equals its old
//    code -- nothing to recompute.
//  * Equal-code theorem: if the codes are equal, the keys' first difference
//    lies past the shared prefix and value; column-value comparisons resume
//    there, and the loser's new code is (first-difference index, loser's
//    value at that index).
//
// Every code comparison and every column-value comparison is counted through
// the comparator's QueryCounters.

#ifndef OVC_CORE_OVC_COMPARE_H_
#define OVC_CORE_OVC_COMPARE_H_

#include "core/ovc.h"
#include "row/comparator.h"

namespace ovc {

/// Compares the sort keys of `left` and `right`, both of whose codes are
/// relative to the same base key that sorts no later than either.
///
/// Returns <0 when left sorts earlier, >0 when right sorts earlier, 0 when
/// the keys are equal. On a decided comparison (non-zero result) the
/// *loser's* code is updated in place to be relative to the winner; the
/// winner's code is never touched. On equality neither code is changed --
/// the caller decides which row to emit first (e.g. by input index, for a
/// stable merge) and gives the other the duplicate code.
///
/// Fences participate: an early fence sorts before everything, a late fence
/// after everything, and no column comparisons are spent on them.
int CompareWithOvc(const OvcCodec& codec, const KeyComparator& comparator,
                   const uint64_t* left_row, Ovc* left_code,
                   const uint64_t* right_row, Ovc* right_code);

}  // namespace ovc

#endif  // OVC_CORE_OVC_COMPARE_H_
