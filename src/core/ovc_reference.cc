#include "core/ovc_reference.h"

namespace ovc::reference {

uint32_t SharedPrefix(const Schema& schema, const uint64_t* a,
                      const uint64_t* b) {
  uint32_t i = 0;
  while (i < schema.key_arity() &&
         schema.NormalizedAt(a, i) == schema.NormalizedAt(b, i)) {
    ++i;
  }
  return i;
}

Ovc AscendingOvc(const OvcCodec& codec, const uint64_t* base,
                 const uint64_t* row) {
  const uint32_t offset = SharedPrefix(codec.schema(), base, row);
  return codec.MakeFromRow(row, offset);
}

Ovc DescendingOvc(const DescendingOvcCodec& codec, const uint64_t* base,
                  const uint64_t* row) {
  Schema plain(codec.arity());
  const uint32_t offset = SharedPrefix(plain, base, row);
  return codec.MakeFromRow(row, offset);
}

uint64_t ToyAscendingOvc(uint32_t arity, uint64_t domain, const uint64_t* base,
                         const uint64_t* row) {
  Schema plain(arity);
  const uint32_t offset = SharedPrefix(plain, base, row);
  if (offset == arity) return 0;
  return (arity - offset) * domain + row[offset];
}

uint64_t ToyDescendingOvc(uint32_t arity, uint64_t domain,
                          const uint64_t* base, const uint64_t* row) {
  Schema plain(arity);
  const uint32_t offset = SharedPrefix(plain, base, row);
  if (offset == arity) return arity * domain;
  return offset * domain + (domain - row[offset]);
}

}  // namespace ovc::reference
