// Stream validity checker.
//
// Every operator in this library promises two things about its output:
// (1) rows are sorted on the output sort key, and (2) each row's offset-value
// code equals the code a naive row-by-row, column-by-column derivation would
// produce. OvcStreamChecker verifies both, and is wired into every
// differential and integration test.

#ifndef OVC_CORE_OVC_CHECKER_H_
#define OVC_CORE_OVC_CHECKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/ovc.h"
#include "row/row_buffer.h"

namespace ovc {

/// Observes a stream row by row and validates sortedness and code
/// correctness against the naive recomputation.
class OvcStreamChecker {
 public:
  /// `schema` must outlive the checker.
  explicit OvcStreamChecker(const Schema* schema)
      : schema_(schema), codec_(schema), prev_(schema->total_columns()) {}

  /// Feeds the next row. Returns false (and records a diagnostic) on the
  /// first violation; subsequent rows are still checked against the stream
  /// so far.
  bool Observe(const uint64_t* row, Ovc code);

  /// True when no violation has been observed.
  bool ok() const { return error_.empty(); }
  /// Description of the first violation, empty when ok().
  const std::string& error() const { return error_; }
  /// Rows observed so far.
  uint64_t rows() const { return rows_; }

 private:
  void Fail(const std::string& what, const uint64_t* row, Ovc code,
            Ovc expected);

  const Schema* schema_;
  OvcCodec codec_;
  RowBuffer prev_;
  bool has_prev_ = false;
  uint64_t rows_ = 0;
  std::string error_;
};

}  // namespace ovc

#endif  // OVC_CORE_OVC_CHECKER_H_
