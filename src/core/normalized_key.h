// Offset-value coding over normalized keys with byte offsets.
//
// The paper notes that all derivation rules apply "mutatis mutandis ... for
// offset-value coding using byte offsets within normalized keys"
// (Section 4.1), and that IBM's CFC "compare and form codeword" instruction
// implements exactly this: descending codes over blocks of bytes of a
// normalized key (Section 3). This module provides the byte-granular
// variant: keys are order-preserving byte strings (column values serialized
// big-endian, descending columns complemented), the offset counts bytes (or
// fixed-size byte blocks) of shared prefix, and the value is the block at
// the offset.
//
// Byte-offset codes are finer-grained than column-offset codes: two long
// strings differing late share a long prefix, and the code captures it at
// byte precision. The same theorem and corollaries hold -- the tests
// exercise them over random normalized keys -- because the proofs only use
// "maximal shared prefix" and an ordered alphabet, not column structure.

#ifndef OVC_CORE_NORMALIZED_KEY_H_
#define OVC_CORE_NORMALIZED_KEY_H_

#include <cstdint>
#include <vector>

#include "core/ovc.h"
#include "row/schema.h"

namespace ovc {

/// An order-preserving byte-string image of a sort key: comparing two
/// normalized keys with memcmp is equivalent to comparing the rows with the
/// schema's comparator.
using NormalizedKey = std::vector<uint8_t>;

/// Serializes the sort-key prefix of `row` into an order-preserving byte
/// string: each key column big-endian, descending columns complemented.
NormalizedKey NormalizeKey(const Schema& schema, const uint64_t* row);

/// Ascending offset-value codec over normalized keys with byte-block
/// offsets, in the spirit of the CFC instruction ("blocks of bytes as
/// values and counts of blocks as offsets").
class ByteOvcCodec {
 public:
  /// `key_bytes` is the fixed normalized-key length; `block_bytes` the
  /// value granularity (CFC used multi-byte blocks; 1..6 supported here so
  /// a block fits the 48-bit value field).
  ByteOvcCodec(uint32_t key_bytes, uint32_t block_bytes);

  /// Number of byte blocks per key (the "arity" of this coding).
  uint32_t blocks() const { return blocks_; }

  /// Length of the maximal shared prefix of `a` and `b` in whole blocks.
  uint32_t SharedBlocks(const NormalizedKey& a, const NormalizedKey& b) const;

  /// Ascending code of `key` relative to `base` (base must sort no later).
  Ovc Make(const NormalizedKey& base, const NormalizedKey& key) const;

  /// Code of a stream's first key (offset 0).
  Ovc MakeInitial(const NormalizedKey& key) const;

  /// The duplicate code (offset == blocks()).
  Ovc DuplicateCode() const { return OvcCodec::kKindValid; }

  /// Offset (in blocks) stored in a valid code.
  uint32_t OffsetOf(Ovc code) const;

  /// Value (the block at the offset) stored in a valid code.
  static uint64_t ValueOf(Ovc code) { return code & OvcCodec::kValueMask; }

  /// Three-way comparison of two keys coded relative to the same base:
  /// returns the comparison result and, for a decided comparison, leaves
  /// the loser's code valid relative to the winner (the corollaries hold
  /// byte-wise exactly as column-wise). `bytes_compared` (optional)
  /// accumulates the bytes touched.
  int Compare(const NormalizedKey& left, Ovc* left_code,
              const NormalizedKey& right, Ovc* right_code,
              uint64_t* bytes_compared) const;

 private:
  uint64_t BlockAt(const NormalizedKey& key, uint32_t block) const;

  uint32_t key_bytes_;
  uint32_t block_bytes_;
  uint32_t blocks_;
};

}  // namespace ovc

#endif  // OVC_CORE_NORMALIZED_KEY_H_
