#include "core/normalized_key.h"

#include <cstring>

namespace ovc {

NormalizedKey NormalizeKey(const Schema& schema, const uint64_t* row) {
  NormalizedKey key;
  key.reserve(schema.key_arity() * sizeof(uint64_t));
  for (uint32_t c = 0; c < schema.key_arity(); ++c) {
    const uint64_t v = schema.NormalizedAt(row, c);
    for (int b = 7; b >= 0; --b) {
      key.push_back(static_cast<uint8_t>(v >> (8 * b)));
    }
  }
  return key;
}

ByteOvcCodec::ByteOvcCodec(uint32_t key_bytes, uint32_t block_bytes)
    : key_bytes_(key_bytes),
      block_bytes_(block_bytes),
      blocks_((key_bytes + block_bytes - 1) / block_bytes) {
  OVC_CHECK(block_bytes >= 1 && block_bytes <= 6);  // block fits 48 bits
  OVC_CHECK(key_bytes >= 1);
  OVC_CHECK(blocks_ <= OvcCodec::kMaxArity);
}

uint64_t ByteOvcCodec::BlockAt(const NormalizedKey& key,
                               uint32_t block) const {
  OVC_DCHECK(key.size() == key_bytes_);
  uint64_t v = 0;
  const uint32_t begin = block * block_bytes_;
  for (uint32_t b = 0; b < block_bytes_; ++b) {
    const uint32_t idx = begin + b;
    v = (v << 8) | (idx < key_bytes_ ? key[idx] : 0);  // zero-padded tail
  }
  return v;
}

uint32_t ByteOvcCodec::SharedBlocks(const NormalizedKey& a,
                                    const NormalizedKey& b) const {
  uint32_t block = 0;
  while (block < blocks_ && BlockAt(a, block) == BlockAt(b, block)) {
    ++block;
  }
  return block;
}

Ovc ByteOvcCodec::Make(const NormalizedKey& base,
                       const NormalizedKey& key) const {
  const uint32_t offset = SharedBlocks(base, key);
  if (offset == blocks_) return DuplicateCode();
  return OvcCodec::kKindValid |
         (uint64_t{blocks_ - offset} << OvcCodec::kValueBits) |
         BlockAt(key, offset);
}

Ovc ByteOvcCodec::MakeInitial(const NormalizedKey& key) const {
  if (blocks_ == 0) return DuplicateCode();
  return OvcCodec::kKindValid |
         (uint64_t{blocks_} << OvcCodec::kValueBits) | BlockAt(key, 0);
}

uint32_t ByteOvcCodec::OffsetOf(Ovc code) const {
  OVC_DCHECK(OvcCodec::IsValid(code));
  return blocks_ - static_cast<uint32_t>((code >> OvcCodec::kValueBits) &
                                         OvcCodec::kMaxArity);
}

int ByteOvcCodec::Compare(const NormalizedKey& left, Ovc* left_code,
                          const NormalizedKey& right, Ovc* right_code,
                          uint64_t* bytes_compared) const {
  if (*left_code != *right_code) {
    // Codes decide; per the unequal-code theorem the loser's code relative
    // to the winner is unchanged.
    return *left_code < *right_code ? -1 : 1;
  }
  if (!OvcCodec::IsValid(*left_code)) return 0;  // equal fences
  // Equal codes: blocks are exact (lossless), so comparison resumes past
  // the shared prefix and value block.
  uint32_t block = OffsetOf(*left_code);
  if (block < blocks_) ++block;
  while (block < blocks_) {
    const uint64_t lb = BlockAt(left, block);
    const uint64_t rb = BlockAt(right, block);
    if (bytes_compared != nullptr) *bytes_compared += block_bytes_;
    if (lb != rb) {
      // Loser re-coded relative to the winner at the new offset.
      const Ovc loser_code = OvcCodec::kKindValid |
                             (uint64_t{blocks_ - block}
                              << OvcCodec::kValueBits) |
                             (lb < rb ? rb : lb);
      if (lb < rb) {
        *right_code = loser_code;
        return -1;
      }
      *left_code = loser_code;
      return 1;
    }
    ++block;
  }
  return 0;  // keys equal
}

}  // namespace ovc
