// RowRef: the unit of data flow between operators.

#ifndef OVC_CORE_ROW_REF_H_
#define OVC_CORE_ROW_REF_H_

#include <cstdint>

#include "core/ovc.h"

namespace ovc {

/// A non-owning view of one row together with its ascending offset-value
/// code relative to the stream's previous row (the stream's first row is
/// coded relative to "minus infinity", i.e. offset 0).
///
/// The pointed-to columns remain valid until the producing operator's next
/// Next()/Close() call, mirroring the classic Volcano contract.
struct RowRef {
  const uint64_t* cols = nullptr;
  Ovc ovc = 0;
};

}  // namespace ovc

#endif  // OVC_CORE_ROW_REF_H_
