#include "core/ovc_checker.h"

#include <cstring>

#include "core/ovc_reference.h"
#include "row/comparator.h"

namespace ovc {

bool OvcStreamChecker::Observe(const uint64_t* row, Ovc code) {
  ++rows_;
  Ovc expected;
  bool sorted_ok = true;
  if (!has_prev_) {
    expected = codec_.MakeInitial(row);
  } else {
    KeyComparator cmp(schema_, /*counters=*/nullptr);
    if (cmp.Compare(prev_.row(0), row) > 0) {
      sorted_ok = false;
      expected = code;  // unused
    } else {
      expected = reference::AscendingOvc(codec_, prev_.row(0), row);
    }
  }

  if (!sorted_ok) {
    Fail("stream not sorted", row, code, /*expected=*/0);
  } else if (code != expected) {
    Fail("offset-value code mismatch", row, code, expected);
  }

  // Remember this row as the next base.
  prev_.Clear();
  prev_.AppendRow(row);
  has_prev_ = true;
  return error_.empty();
}

void OvcStreamChecker::Fail(const std::string& what, const uint64_t* row,
                            Ovc code, Ovc expected) {
  if (!error_.empty()) return;  // keep the first diagnostic
  error_ = what + " at row " + std::to_string(rows_ - 1) + ": got " +
           codec_.ToString(code);
  if (what != "stream not sorted") {
    error_ += ", expected " + codec_.ToString(expected);
  }
  error_ += ", row=[";
  for (uint32_t c = 0; c < schema_->total_columns(); ++c) {
    if (c > 0) error_ += ",";
    error_ += std::to_string(row[c]);
  }
  error_ += "]";
}

}  // namespace ovc
