// Mid-query graceful degradation policy.
//
// The paper's Figure 6 race (and the companion sorting paper's robustness
// argument) say that with offset-value codes the sort-based plan is cheap
// enough to be the *safe* answer when a hash-based plan's memory estimate
// turns out wrong. This enum selects what a hash operator does when its
// budget check fails mid-query:
//
//  * kPartition -- the classic grace behavior: spill both inputs to hash
//    partitions and recurse. Every row is written and re-read at least
//    once per level; a badly skewed key can re-partition repeatedly.
//    This is the pre-fallback behavior and stays the default for directly
//    constructed operators (benchmarks that *measure* the hash plan's
//    spill cost must keep it).
//  * kSortMerge -- degrade to the sort-based plan from the point of
//    failure: the rows already consumed plus the unread remainder feed an
//    ExternalSort (which spills with prefix-truncated, coded runs), and
//    the result is joined/aggregated by merge logic with the paper's
//    comparison savings. Bounded: one sort per input, no recursion.
//    Planner-built plans default to this (PlannerOptions::fallback).

#ifndef OVC_EXEC_FALLBACK_POLICY_H_
#define OVC_EXEC_FALLBACK_POLICY_H_

namespace ovc {

enum class FallbackPolicy {
  kPartition,
  kSortMerge,
};

inline const char* FallbackPolicyName(FallbackPolicy policy) {
  return policy == FallbackPolicy::kSortMerge ? "sort-merge" : "partition";
}

}  // namespace ovc

#endif  // OVC_EXEC_FALLBACK_POLICY_H_
