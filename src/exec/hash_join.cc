#include "exec/hash_join.h"

#include <cstring>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "sort/run_file.h"

namespace ovc {

uint64_t HashKeyPrefix(const uint64_t* row, uint32_t columns,
                       QueryCounters* counters) {
  if (counters != nullptr) ++counters->hash_computations;
  // SplitMix64-style mixing over the key prefix: "hash-based query
  // execution requires accessing N x K column values just for the hash
  // function" -- every column is touched.
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (uint32_t c = 0; c < columns; ++c) {
    uint64_t z = row[c] + 0x9e3779b97f4a7c15ULL + h;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    h = z ^ (z >> 31);
  }
  return h;
}

namespace {

/// Raw column equality on the first `columns` columns (counted).
bool KeysEqual(const uint64_t* a, const uint64_t* b, uint32_t columns,
               QueryCounters* counters) {
  for (uint32_t c = 0; c < columns; ++c) {
    if (counters != nullptr) ++counters->column_comparisons;
    if (a[c] != b[c]) return false;
  }
  return true;
}

/// Operator facade over a finished ExternalSort: a sorted, coded stream
/// the MergeJoin continuation can pull. The schema reinterprets the
/// sorted rows with the join key as the full key prefix.
class SortedSortView final : public Operator {
 public:
  SortedSortView(const Schema* schema, ExternalSort* sort)
      : schema_(schema), sort_(sort) {}
  void Open() override {}
  bool Next(RowRef* out) override { return sort_->Next(out); }
  void Close() override {}
  const Schema& schema() const override { return *schema_; }
  bool sorted() const override { return true; }
  bool has_ovc() const override { return true; }

 private:
  const Schema* schema_;
  ExternalSort* sort_;
};

/// The join-key-prefix reinterpretation of `schema`: the first
/// `bind_columns` directions of the probe side become the whole sort key,
/// everything else rides along as payload. Row layout is unchanged.
Schema BindPrefixSchema(const Schema& probe, uint32_t total_columns,
                        uint32_t bind_columns) {
  std::vector<SortDirection> dirs;
  for (uint32_t c = 0; c < bind_columns; ++c) dirs.push_back(probe.direction(c));
  return Schema(std::move(dirs), total_columns - bind_columns);
}

}  // namespace

Schema OrderPreservingHashJoin::MakeOutputSchema() const {
  const Schema& ps = probe_->schema();
  if (type_ == JoinTypeHash::kLeftSemi || type_ == JoinTypeHash::kLeftAnti) {
    return ps;
  }
  std::vector<SortDirection> dirs;
  for (uint32_t c = 0; c < ps.key_arity(); ++c) dirs.push_back(ps.direction(c));
  // Probe keys, probe payloads, all build columns, indicator.
  return Schema(std::move(dirs), ps.payload_columns() +
                                     build_->schema().total_columns() + 1);
}

OrderPreservingHashJoin::OrderPreservingHashJoin(
    Operator* probe, Operator* build, uint32_t bind_columns, JoinTypeHash type,
    uint64_t memory_rows, QueryCounters* counters)
    : probe_(probe),
      build_(build),
      bind_columns_(bind_columns),
      type_(type),
      memory_rows_(memory_rows),
      output_schema_(MakeOutputSchema()),
      probe_codec_(&probe->schema()),
      counters_(counters),
      build_rows_(build->schema().total_columns()),
      probe_row_copy_(probe->schema().total_columns(), 0),
      out_row_(output_schema_.total_columns(), 0) {
  OVC_CHECK(probe->sorted() && probe->has_ovc());
  OVC_CHECK(bind_columns >= 1);
  OVC_CHECK(bind_columns <= probe->schema().key_arity());
  OVC_CHECK(bind_columns <= build->schema().key_arity());
}

void OrderPreservingHashJoin::BuildTable() {
  build_->Open();
  RowRef ref;
  while (build_->Next(&ref)) {
    // Section 4.9's precondition: the build side must fit in memory.
    OVC_CHECK(build_rows_.size() < memory_rows_);
    table_.emplace(HashKeyPrefix(ref.cols, bind_columns_, counters_),
                   static_cast<uint32_t>(build_rows_.size()));
    build_rows_.AppendRow(ref.cols);
  }
  build_->Close();
}

void OrderPreservingHashJoin::Open() {
  build_rows_.Clear();
  table_.clear();
  BuildTable();
  probe_->Open();
  acc_.Reset();
  emitting_ = false;
}

void OrderPreservingHashJoin::EmitCombined(const uint64_t* probe_row,
                                           const uint64_t* build_row, Ovc code,
                                           RowRef* out) {
  const Schema& ps = probe_->schema();
  const Schema& bs = build_->schema();
  uint64_t* dst = out_row_.data();
  std::memcpy(dst, probe_row, ps.total_columns() * sizeof(uint64_t));
  uint64_t* p = dst + ps.total_columns();
  if (build_row != nullptr) {
    std::memcpy(p, build_row, bs.total_columns() * sizeof(uint64_t));
  } else {
    std::memset(p, 0, bs.total_columns() * sizeof(uint64_t));
  }
  p += bs.total_columns();
  *p = build_row != nullptr ? 3 : 1;
  out->cols = dst;
  out->ovc = code;
}

bool OrderPreservingHashJoin::Next(RowRef* out) {
  while (true) {
    if (emitting_) {
      if (match_idx_ < matches_.size()) {
        const Ovc code = match_idx_ == 0 ? probe_code_
                                         : probe_codec_.DuplicateCode();
        EmitCombined(probe_row_copy_.data(),
                     build_rows_.row(matches_[match_idx_]), code, out);
        ++match_idx_;
        return true;
      }
      emitting_ = false;
    }

    if (!probe_->Next(&pref_)) return false;

    // Probe the table: gather matching build rows.
    matches_.clear();
    const uint64_t h = HashKeyPrefix(pref_.cols, bind_columns_, counters_);
    auto range = table_.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      if (KeysEqual(pref_.cols, build_rows_.row(it->second), bind_columns_,
                    counters_)) {
        matches_.push_back(it->second);
      }
    }

    const bool match = !matches_.empty();
    switch (type_) {
      case JoinTypeHash::kLeftSemi:
      case JoinTypeHash::kLeftAnti: {
        const bool keep = (type_ == JoinTypeHash::kLeftSemi) == match;
        if (!keep) {
          acc_.Absorb(pref_.ovc);
          continue;
        }
        std::memcpy(out_row_.data(), pref_.cols,
                    probe_->schema().total_columns() * sizeof(uint64_t));
        out->cols = out_row_.data();
        out->ovc = acc_.Combine(pref_.ovc);
        acc_.Reset();
        return true;
      }
      case JoinTypeHash::kInner: {
        if (!match) {
          acc_.Absorb(pref_.ovc);
          continue;
        }
        break;
      }
      case JoinTypeHash::kLeftOuter:
        break;
    }

    // Inner with matches, or left outer.
    probe_code_ = acc_.Combine(pref_.ovc);
    acc_.Reset();
    std::memcpy(probe_row_copy_.data(), pref_.cols,
                probe_->schema().total_columns() * sizeof(uint64_t));
    if (!match) {
      // Left outer, no match: single null-padded row.
      EmitCombined(probe_row_copy_.data(), nullptr, probe_code_, out);
      return true;
    }
    match_idx_ = 0;
    emitting_ = true;
  }
}

void OrderPreservingHashJoin::Close() { probe_->Close(); }

Schema GraceHashJoin::MakeOutputSchema() const {
  const Schema& ps = probe_->schema();
  if (type_ == JoinTypeHash::kLeftSemi || type_ == JoinTypeHash::kLeftAnti) {
    return ps;
  }
  std::vector<SortDirection> dirs;
  for (uint32_t c = 0; c < ps.key_arity(); ++c) dirs.push_back(ps.direction(c));
  return Schema(std::move(dirs), ps.payload_columns() +
                                     build_->schema().total_columns() + 1);
}

GraceHashJoin::GraceHashJoin(Operator* probe, Operator* build,
                             uint32_t bind_columns, JoinTypeHash type,
                             uint64_t memory_rows, QueryCounters* counters,
                             TempFileManager* temp, uint32_t partitions,
                             FallbackPolicy fallback, SortConfig sort_config)
    : probe_(probe),
      build_(build),
      bind_columns_(bind_columns),
      type_(type),
      memory_rows_(memory_rows),
      partitions_(partitions),
      fallback_(fallback),
      sort_config_(sort_config),
      output_schema_(MakeOutputSchema()),
      counters_(counters),
      temp_(temp),
      resident_build_(build->schema().total_columns()),
      output_queue_(output_schema_.total_columns()),
      out_row_(output_schema_.total_columns(), 0) {
  OVC_CHECK(type == JoinTypeHash::kInner || type == JoinTypeHash::kLeftSemi);
  OVC_CHECK(partitions >= 2);
}

uint32_t GraceHashJoin::PartitionOf(const uint64_t* row, uint32_t level) {
  uint64_t h = HashKeyPrefix(row, bind_columns_, counters_);
  h ^= 0x9e3779b97f4a7c15ULL * (level + 1);
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 32;
  return static_cast<uint32_t>(h % partitions_);
}

void GraceHashJoin::JoinResident(const RowBuffer& build,
                                 const uint64_t* probe_row) {
  const uint64_t h = HashKeyPrefix(probe_row, bind_columns_, counters_);
  auto range = table_.equal_range(h);
  const Schema& ps = probe_->schema();
  const Schema& bs = build_->schema();
  for (auto it = range.first; it != range.second; ++it) {
    const uint64_t* build_row = build.row(it->second);
    if (!KeysEqual(probe_row, build_row, bind_columns_, counters_)) continue;
    if (type_ == JoinTypeHash::kLeftSemi) {
      output_queue_.AppendRow(probe_row);
      return;  // one output per probe row
    }
    uint64_t* dst = output_queue_.AppendRow();
    std::memcpy(dst, probe_row, ps.total_columns() * sizeof(uint64_t));
    std::memcpy(dst + ps.total_columns(), build_row,
                bs.total_columns() * sizeof(uint64_t));
    dst[ps.total_columns() + bs.total_columns()] = 3;
  }
}

void GraceHashJoin::BeginSortMergeFallback() {
  // The point of no return for the hash strategy: from here on, every
  // build row -- resident or still unread -- flows into an external sort
  // on the join key, and the probe side will follow. One sort per input,
  // no partition recursion, OVCs preserved end to end.
  OVC_TRACE_SPAN("hash_join.fallback");
  fell_back_ = true;
  if (counters_ != nullptr) ++counters_->hash_join_fallbacks;
  OVC_METRIC_COUNTER("hash_join.fallbacks",
                     "Grace hash joins that degraded to sort+merge")
      .Increment();
  const Schema& ps = probe_->schema();
  fb_probe_schema_ = std::make_unique<Schema>(
      BindPrefixSchema(ps, ps.total_columns(), bind_columns_));
  fb_build_schema_ = std::make_unique<Schema>(
      BindPrefixSchema(ps, build_->schema().total_columns(), bind_columns_));
  fb_build_sort_ = std::make_unique<ExternalSort>(
      fb_build_schema_.get(), counters_, temp_, sort_config_);
  for (size_t i = 0; i < resident_build_.size(); ++i) {
    fb_build_sort_->Add(resident_build_.row(i));
  }
  resident_build_.Clear();
  table_.clear();
}

void GraceHashJoin::FinishSortMergeFallback() {
  Status st = fb_build_sort_->Finish();
  if (!st.ok()) {
    probe_->Close();
    Degrade(st);
    return;
  }
  fb_probe_sort_ = std::make_unique<ExternalSort>(
      fb_probe_schema_.get(), counters_, temp_, sort_config_);
  RowRef ref;
  while (probe_->Next(&ref)) {
    fb_probe_sort_->Add(ref.cols);
  }
  probe_->Close();
  st = fb_probe_sort_->Finish();
  if (!st.ok()) {
    Degrade(st);
    return;
  }
  fb_probe_view_ = std::make_unique<SortedSortView>(fb_probe_schema_.get(),
                                                    fb_probe_sort_.get());
  fb_build_view_ = std::make_unique<SortedSortView>(fb_build_schema_.get(),
                                                    fb_build_sort_.get());
  fb_join_ = std::make_unique<MergeJoin>(
      fb_probe_view_.get(), fb_build_view_.get(),
      type_ == JoinTypeHash::kLeftSemi ? JoinType::kLeftSemi
                                       : JoinType::kInner,
      counters_);
  fb_join_->Open();
}

void GraceHashJoin::Degrade(const Status& status) {
  failed_ = true;
  if (temp_ != nullptr) temp_->RecordError(status);
}

void GraceHashJoin::Open() {
  output_queue_.Clear();
  queue_pos_ = 0;
  pending_.clear();
  resident_build_.Clear();
  table_.clear();
  fell_back_ = false;
  failed_ = false;
  fb_join_.reset();
  fb_probe_view_.reset();
  fb_build_view_.reset();
  fb_probe_sort_.reset();
  fb_build_sort_.reset();

  // Consume the build side; if it fits, keep it resident, otherwise
  // degrade per the fallback policy (sort+merge continuation, or classic
  // grace partitioning to temporary storage).
  build_->Open();
  RowRef ref;
  bool build_fits = true;
  std::vector<std::unique_ptr<RunFileWriter>> build_writers;
  std::vector<std::string> build_paths;
  while (build_->Next(&ref)) {
    if (build_fits &&
        (resident_build_.size() >= memory_rows_ ||
         OVC_FAILPOINT("grace_hash_join.force_overflow"))) {
      build_fits = false;
      if (fallback_ == FallbackPolicy::kSortMerge) {
        BeginSortMergeFallback();
      } else {
        // Overflow: re-partition what is already resident, then continue.
        build_writers.resize(partitions_);
        build_paths.resize(partitions_);
        for (uint32_t p = 0; p < partitions_; ++p) {
          build_writers[p] =
              std::make_unique<RunFileWriter>(&build_->schema(), counters_);
          build_paths[p] = temp_->NewPath("ghj-build");
          Status st = build_writers[p]->Open(build_paths[p]);
          if (!st.ok()) {
            build_->Close();
            Degrade(st);
            return;
          }
        }
        OvcCodec codec(&build_->schema());
        for (size_t i = 0; i < resident_build_.size(); ++i) {
          const uint64_t* row = resident_build_.row(i);
          const uint32_t p = PartitionOf(row, /*level=*/0);
          Status st = build_writers[p]->Append(row, codec.MakeFromRow(row, 0));
          if (!st.ok()) {
            build_->Close();
            Degrade(st);
            return;
          }
        }
        resident_build_.Clear();
      }
    }
    if (build_fits) {
      table_.emplace(HashKeyPrefix(ref.cols, bind_columns_, counters_),
                     static_cast<uint32_t>(resident_build_.size()));
      resident_build_.AppendRow(ref.cols);
    } else if (fell_back_) {
      fb_build_sort_->Add(ref.cols);
    } else {
      OvcCodec codec(&build_->schema());
      const uint32_t p = PartitionOf(ref.cols, /*level=*/0);
      Status st =
          build_writers[p]->Append(ref.cols, codec.MakeFromRow(ref.cols, 0));
      if (!st.ok()) {
        build_->Close();
        Degrade(st);
        return;
      }
    }
  }
  build_->Close();
  in_memory_ = build_fits;

  probe_->Open();
  if (in_memory_) {
    // Stream the probe side against the resident table; queue results.
    while (probe_->Next(&ref)) {
      JoinResident(resident_build_, ref.cols);
    }
    probe_->Close();
    return;
  }

  if (fell_back_) {
    FinishSortMergeFallback();
    return;
  }

  // Partition the probe side the same way.
  std::vector<std::unique_ptr<RunFileWriter>> probe_writers(partitions_);
  std::vector<std::string> probe_paths(partitions_);
  for (uint32_t p = 0; p < partitions_; ++p) {
    probe_writers[p] =
        std::make_unique<RunFileWriter>(&probe_->schema(), counters_);
    probe_paths[p] = temp_->NewPath("ghj-probe");
    Status st = probe_writers[p]->Open(probe_paths[p]);
    if (!st.ok()) {
      probe_->Close();
      Degrade(st);
      return;
    }
  }
  OvcCodec probe_codec(&probe_->schema());
  while (probe_->Next(&ref)) {
    const uint32_t p = PartitionOf(ref.cols, /*level=*/0);
    Status st =
        probe_writers[p]->Append(ref.cols, probe_codec.MakeFromRow(ref.cols, 0));
    if (!st.ok()) {
      probe_->Close();
      Degrade(st);
      return;
    }
  }
  probe_->Close();
  for (uint32_t p = 0; p < partitions_; ++p) {
    Status st = build_writers[p]->Close();
    if (st.ok()) st = probe_writers[p]->Close();
    if (!st.ok()) {
      Degrade(st);
      return;
    }
    pending_.push_back(PartitionPair{probe_paths[p], build_paths[p], 1});
  }
  resident_build_.Clear();
  table_.clear();
}

void GraceHashJoin::Repartition(const PartitionPair& pair) {
  // Too many build rows collided into this partition: split it (and its
  // probe counterpart) with the next level's salted hash.
  OVC_CHECK(pair.level <= 8);
  const Schema& bs = build_->schema();
  const Schema& ps = probe_->schema();
  OvcCodec bcodec(&bs), pcodec(&ps);
  std::vector<PartitionPair> subs(partitions_);
  std::vector<std::unique_ptr<RunFileWriter>> bw(partitions_), pw(partitions_);
  Status st = Status::Ok();
  for (uint32_t p = 0; p < partitions_ && st.ok(); ++p) {
    subs[p].level = pair.level + 1;
    subs[p].build_path = temp_->NewPath("ghj-build");
    subs[p].probe_path = temp_->NewPath("ghj-probe");
    bw[p] = std::make_unique<RunFileWriter>(&bs, counters_);
    pw[p] = std::make_unique<RunFileWriter>(&ps, counters_);
    st = bw[p]->Open(subs[p].build_path);
    if (st.ok()) st = pw[p]->Open(subs[p].probe_path);
  }
  const uint64_t* row = nullptr;
  Ovc code = 0;
  if (st.ok()) {
    RunFileReader build_reader(&bs, temp_);
    st = build_reader.Open(pair.build_path);
    while (st.ok() && build_reader.Next(&row, &code)) {
      const uint32_t p = PartitionOf(row, pair.level);
      st = bw[p]->Append(row, bcodec.MakeFromRow(row, 0));
    }
  }
  if (st.ok()) {
    RunFileReader probe_reader(&ps, temp_);
    st = probe_reader.Open(pair.probe_path);
    while (st.ok() && probe_reader.Next(&row, &code)) {
      const uint32_t p = PartitionOf(row, pair.level);
      st = pw[p]->Append(row, pcodec.MakeFromRow(row, 0));
    }
  }
  for (uint32_t p = 0; p < partitions_ && st.ok(); ++p) {
    st = bw[p]->Close();
    if (st.ok()) st = pw[p]->Close();
    pending_.push_back(subs[p]);
  }
  if (!st.ok()) Degrade(st);
}

bool GraceHashJoin::ServeQueued(RowRef* out) {
  if (queue_pos_ >= output_queue_.size()) return false;
  out->cols = output_queue_.row(queue_pos_++);
  out->ovc = 0;
  return true;
}

bool GraceHashJoin::ProcessNextPartition() {
  while (!pending_.empty() && !failed_) {
    PartitionPair pair = pending_.back();
    pending_.pop_back();

    // Load the build partition and index it; a partition that still exceeds
    // the memory budget is split recursively with the next level's salt.
    resident_build_.Clear();
    table_.clear();
    RunFileReader build_reader(&build_->schema(), temp_);
    Status build_st = build_reader.Open(pair.build_path);
    if (!build_st.ok()) {
      // Degrade contract: a lost spill partition ends the operator's
      // output cleanly; the executor surfaces the recorded error.
      Degrade(build_st);
      return false;
    }
    const uint64_t* row = nullptr;
    Ovc code = 0;
    bool overflow = false;
    while (build_reader.Next(&row, &code)) {
      if (resident_build_.size() >= memory_rows_) {
        overflow = true;
        break;
      }
      table_.emplace(HashKeyPrefix(row, bind_columns_, counters_),
                     static_cast<uint32_t>(resident_build_.size()));
      resident_build_.AppendRow(row);
    }
    if (overflow) {
      Repartition(pair);
      continue;
    }

    output_queue_.Clear();
    queue_pos_ = 0;
    RunFileReader probe_reader(&probe_->schema(), temp_);
    Status probe_st = probe_reader.Open(pair.probe_path);
    if (!probe_st.ok()) {
      Degrade(probe_st);
      return false;
    }
    while (probe_reader.Next(&row, &code)) {
      JoinResident(resident_build_, row);
    }
    if (output_queue_.size() > 0) return true;
  }
  return false;
}

bool GraceHashJoin::NextFallback(RowRef* out) {
  RowRef ref;
  if (!fb_join_->Next(&ref)) return false;
  const uint32_t ps_total = probe_->schema().total_columns();
  uint64_t* dst = out_row_.data();
  if (type_ == JoinTypeHash::kLeftSemi) {
    // Passthrough on both layouts: columns line up exactly.
    std::memcpy(dst, ref.cols, ps_total * sizeof(uint64_t));
  } else {
    // MergeJoin emits [join key][probe rest][build rest][indicator]; this
    // operator's inner layout is [probe row][build row][indicator]. The
    // probe row is the continuation's first ps_total columns verbatim,
    // and the build row's leading key columns equal the join key (it is
    // an equi-join), so the remap is three memcpys.
    const uint32_t bs_total = build_->schema().total_columns();
    std::memcpy(dst, ref.cols, ps_total * sizeof(uint64_t));
    std::memcpy(dst + ps_total, ref.cols, bind_columns_ * sizeof(uint64_t));
    std::memcpy(dst + ps_total + bind_columns_, ref.cols + ps_total,
                (bs_total - bind_columns_) * sizeof(uint64_t));
    dst[ps_total + bs_total] = 3;
  }
  out->cols = dst;
  out->ovc = 0;  // this operator's contract: unordered, no codes
  return true;
}

bool GraceHashJoin::Next(RowRef* out) {
  if (failed_) return false;
  if (fell_back_) return NextFallback(out);
  while (true) {
    if (ServeQueued(out)) return true;
    if (in_memory_) return false;
    if (!ProcessNextPartition()) return false;
  }
}

void GraceHashJoin::Close() {
  output_queue_.Clear();
  resident_build_.Clear();
  table_.clear();
  if (fb_join_ != nullptr) fb_join_->Close();
  fb_join_.reset();
  fb_probe_view_.reset();
  fb_build_view_.reset();
  fb_probe_sort_.reset();
  fb_build_sort_.reset();
  fb_probe_schema_.reset();
  fb_build_schema_.reset();
}

}  // namespace ovc
