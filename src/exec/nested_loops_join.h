// Order-preserving nested-loops / lookup join (Section 4.8).
//
// The outer (left) input is sorted with offset-value codes; the inner input
// is a bindable source -- an index lookup, a scan with a pushed-down
// predicate, anything that yields the matching rows for one outer row. The
// join predicate need not be an equality.
//
// Output codes come from the filter theorem over the outer stream (an outer
// row failing the many-table predicate is dropped exactly like a row
// failing a filter predicate). When the inner results are themselves sorted
// with codes, output rows additionally benefit from them: the code of a
// later inner match is the inner code "with the offset incremented by the
// size of the outer sort key".
//
// Many-to-many handling implements the paper's role reversal: within a
// duplicate group of outer keys, "each inner row joins all outer rows
// before processing the next inner row", which keeps the extended output
// key (outer key, inner key) sorted and the offsets maximal.

#ifndef OVC_EXEC_NESTED_LOOPS_JOIN_H_
#define OVC_EXEC_NESTED_LOOPS_JOIN_H_

#include <memory>
#include <vector>

#include "common/counters.h"
#include "core/accumulator.h"
#include "exec/operator.h"
#include "row/row_buffer.h"
#include "sort/run.h"

namespace ovc {

/// Re-bindable inner input of a nested-loops / lookup join.
class LookupSource {
 public:
  virtual ~LookupSource() = default;

  /// Positions the source at the inner rows matching `outer_row`.
  virtual void Bind(const uint64_t* outer_row) = 0;

  /// Next matching inner row. When sorted_with_ovc(), rows arrive in inner
  /// sort order and `code` is the row's code relative to its predecessor in
  /// the underlying ordered structure (the first row's code is relative to
  /// a row outside the match range and is ignored by the join).
  virtual bool Next(const uint64_t** row, Ovc* code) = 0;

  /// The inner rows' schema.
  virtual const Schema& schema() const = 0;

  /// True when matches arrive sorted with usable codes.
  virtual bool sorted_with_ovc() const = 0;
};

/// Equality lookup into a sorted in-memory run: matches are the inner rows
/// whose first `bind_columns` key columns equal the outer row's first
/// `bind_columns` key columns (binary search; an index-lookup stand-in).
class RunLookupSource : public LookupSource {
 public:
  /// `schema` and `run` must outlive the source; `counters` (optional)
  /// prices the binary-search comparisons.
  RunLookupSource(const Schema* schema, const InMemoryRun* run,
                  uint32_t bind_columns, QueryCounters* counters);

  void Bind(const uint64_t* outer_row) override;
  bool Next(const uint64_t** row, Ovc* code) override;
  const Schema& schema() const override { return *schema_; }
  bool sorted_with_ovc() const override { return true; }

 private:
  const Schema* schema_;
  const InMemoryRun* run_;
  uint32_t bind_columns_;
  KeyComparator comparator_;
  size_t pos_ = 0;
  size_t end_ = 0;
};

/// Join flavors supported by NestedLoopsJoin (right variants are not
/// provided, matching common lookup-join implementations and the paper).
enum class JoinTypeNlj { kInner, kLeftOuter, kLeftSemi, kLeftAnti };

/// Nested-loops (lookup) join.
class NestedLoopsJoin : public Operator {
 public:
  /// `outer` must be sorted with codes. Output layout for kInner /
  /// kLeftOuter: outer key columns, then (when the inner is sorted with
  /// codes) inner key columns as additional sort keys, then outer payloads,
  /// inner payloads (inner keys repeat here when not part of the sort key),
  /// and a match indicator. kLeftSemi / kLeftAnti pass outer rows through.
  NestedLoopsJoin(Operator* outer, LookupSource* inner, JoinTypeNlj type,
                  QueryCounters* counters);

  void Open() override;
  bool Next(RowRef* out) override;
  void Close() override { outer_->Close(); }
  const Schema& schema() const override { return output_schema_; }
  bool sorted() const override { return true; }
  bool has_ovc() const override { return true; }

 private:
  enum class State { kNextGroup, kScanInner, kEmitOuterPerInner,
                     kEmitGroupRows, kDone };

  Schema MakeOutputSchema() const;
  void CollectOuterGroup();
  void EmitCombined(const uint64_t* outer_row, const uint64_t* inner_row,
                    Ovc code, RowRef* out);
  /// Re-packs an outer-schema code word into the (wider) output schema:
  /// same offset, same value, different arity field.
  Ovc LiftOuterCode(Ovc code) const;

  Operator* outer_;
  LookupSource* inner_;
  JoinTypeNlj type_;
  bool extended_;  // inner keys join the output sort key
  Schema output_schema_;
  OvcCodec outer_codec_;
  OvcCodec inner_codec_;
  OvcCodec out_codec_;
  QueryCounters* counters_;

  RowRef oref_;
  bool o_valid_ = false;
  OvcAccumulator acc_;
  State state_ = State::kNextGroup;

  RowBuffer outer_group_;
  Ovc group_code_ = 0;
  bool group_first_pending_ = false;

  std::vector<uint64_t> inner_row_copy_;
  Ovc inner_code_ = 0;
  bool inner_first_ = false;
  size_t outer_idx_ = 0;
  size_t emit_idx_ = 0;
  bool any_match_ = false;
  std::vector<uint64_t> out_row_;
};

}  // namespace ovc

#endif  // OVC_EXEC_NESTED_LOOPS_JOIN_H_
