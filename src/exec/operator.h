// Operator framework: Volcano-style iterators whose rows carry
// offset-value codes.
//
// Every operator produces a stream of RowRefs. For order-preserving
// operators the contract is:
//   * rows come out sorted on the operator's output schema key prefix, and
//   * each row's code is its ascending offset-value code relative to the
//     previous output row (offset 0 for the first row),
// which is exactly the contract OvcStreamChecker verifies and the next
// operator in the pipeline consumes (Section 4's central theme: operators
// must not only exploit but also *produce* offset-value codes).
//
// Unordered operators (hash baselines, plain scans) set sorted()/has_ovc()
// to false and emit codes of 0.

#ifndef OVC_EXEC_OPERATOR_H_
#define OVC_EXEC_OPERATOR_H_

#include <cstdint>
#include <memory>

#include "core/ovc.h"
#include "core/row_ref.h"
#include "pq/loser_tree.h"
#include "row/row_block.h"
#include "row/schema.h"

namespace ovc {

/// Base class for all execution operators.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the operator (and its inputs) for Next() calls.
  virtual void Open() = 0;

  /// Produces the next output row. The referenced columns stay valid until
  /// the following Next()/NextBatch()/Close() call on this operator -- and
  /// no longer. This bound is tight for operators that stream through
  /// recycled buffers: a queue-fed MergeExchange frees a producer batch the
  /// moment its QueueMergeSource pops the next one, so a RowRef that
  /// crossed a batch boundary points at freed memory. A consumer that needs
  /// a row beyond its own next pull (e.g. to compare against the previous
  /// row) must copy the columns out before pulling again.
  virtual bool Next(RowRef* out) = 0;

  /// Batched production: clears `out`, fills it with up to out->capacity()
  /// rows of the stream, and returns the number of rows produced. A return
  /// of 0 means end of stream; short (non-full) blocks mid-stream are
  /// allowed. Rows and codes obey exactly the Next() stream contract -- in
  /// particular, the first row of a block is coded relative to the last row
  /// of the previous block, so the concatenation of blocks is the
  /// row-at-a-time stream (see row/row_block.h). Block contents stay valid
  /// until the following NextBatch()/Next()/Close() call on this operator.
  ///
  /// The default implementation loops Next() into `out`, so every operator
  /// is batch-drainable; operators override it to amortize per-row virtual
  /// dispatch. Callers must not interleave Next() and NextBatch() pulls on
  /// the same operator within one execution.
  virtual uint32_t NextBatch(RowBlock* out);

  /// Releases resources; the operator may be Open()ed again afterwards
  /// where the concrete class documents support for rescans.
  virtual void Close() = 0;

  /// Output row layout.
  virtual const Schema& schema() const = 0;

  /// True when the output is sorted on the schema's key prefix.
  virtual bool sorted() const = 0;

  /// True when output rows carry valid offset-value codes.
  virtual bool has_ovc() const = 0;
};

/// Adapts an Operator to the MergeSource interface used by sort-level
/// machinery (mergers, segmented sort).
class OperatorMergeSource final : public MergeSource {
 public:
  explicit OperatorMergeSource(Operator* op) : op_(op) {}

  bool Next(const uint64_t** row, Ovc* code) override {
    RowRef ref;
    if (!op_->Next(&ref)) return false;
    *row = ref.cols;
    *code = ref.ovc;
    return true;
  }

 private:
  Operator* op_;
};

/// Convenience: drains `op` (Open/Next/Close) and returns the row count.
uint64_t DrainAndCount(Operator* op);

}  // namespace ovc

#endif  // OVC_EXEC_OPERATOR_H_
