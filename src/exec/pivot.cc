#include "exec/pivot.h"

#include <cstring>

namespace ovc {

Schema PivotOperator::MakeOutputSchema(const Schema& in, uint32_t group_prefix,
                                       size_t num_tags) {
  std::vector<SortDirection> dirs;
  for (uint32_t c = 0; c < group_prefix; ++c) {
    dirs.push_back(in.direction(c));
  }
  return Schema(std::move(dirs), static_cast<uint32_t>(num_tags));
}

PivotOperator::PivotOperator(Operator* child, uint32_t group_prefix,
                             uint32_t tag_col, uint32_t value_col,
                             std::vector<uint64_t> tags)
    : child_(child),
      group_prefix_(group_prefix),
      tag_col_(tag_col),
      value_col_(value_col),
      tags_(std::move(tags)),
      output_schema_(
          MakeOutputSchema(child->schema(), group_prefix, tags_.size())),
      in_codec_(&child->schema()),
      out_codec_(&output_schema_),
      state_row_(output_schema_.total_columns(), 0),
      out_row_(output_schema_.total_columns(), 0) {
  OVC_CHECK(child->sorted() && child->has_ovc());
  OVC_CHECK(group_prefix >= 1);
  OVC_CHECK(group_prefix <= child->schema().key_arity());
  OVC_CHECK(tag_col < child->schema().total_columns());
  OVC_CHECK(value_col < child->schema().total_columns());
  OVC_CHECK(!tags_.empty());
}

void PivotOperator::Open() {
  child_->Open();
  group_open_ = false;
  input_done_ = false;
}

void PivotOperator::InitGroup(const RowRef& ref) {
  std::memcpy(state_row_.data(), ref.cols, group_prefix_ * sizeof(uint64_t));
  std::memset(state_row_.data() + group_prefix_, 0,
              tags_.size() * sizeof(uint64_t));
  group_code_ = ref.ovc;
  group_open_ = true;
}

void PivotOperator::Accumulate(const uint64_t* row) {
  const uint64_t tag = row[tag_col_];
  for (size_t t = 0; t < tags_.size(); ++t) {
    if (tags_[t] == tag) {
      state_row_[group_prefix_ + t] += row[value_col_];
      return;
    }
  }
  // Unknown tag: ignored.
}

void PivotOperator::EmitGroup(RowRef* out) {
  std::memcpy(out_row_.data(), state_row_.data(),
              output_schema_.total_columns() * sizeof(uint64_t));
  out->cols = out_row_.data();
  out->ovc = in_codec_.ClampToPrefix(group_code_, group_prefix_, out_codec_);
}

bool PivotOperator::Next(RowRef* out) {
  if (input_done_) return false;
  RowRef ref;
  while (child_->Next(&ref)) {
    if (!group_open_) {
      InitGroup(ref);
      Accumulate(ref.cols);
      continue;
    }
    if (in_codec_.IsBoundary(ref.ovc, group_prefix_)) {
      EmitGroup(out);
      InitGroup(ref);
      Accumulate(ref.cols);
      return true;
    }
    Accumulate(ref.cols);
  }
  input_done_ = true;
  if (group_open_) {
    EmitGroup(out);
    group_open_ = false;
    return true;
  }
  return false;
}

}  // namespace ovc
