// Grouping and aggregation in a sorted stream (Section 4.5, Figure 4).
//
// In a stream sorted on the "group by" list and carrying offset-value codes,
// a new group starts exactly when a row's code offset falls inside the
// grouping prefix -- one integer test per row, no column comparisons. The
// output row of a group keeps the code of the group's first input row,
// clamped to the grouping arity, so the aggregation output again carries
// correct codes for the next operator.
//
// For the Figure 4 experiment the operator also supports the baseline
// boundary detection: "full comparisons of multiple key columns" between
// each row and its predecessor.

#ifndef OVC_EXEC_AGGREGATE_H_
#define OVC_EXEC_AGGREGATE_H_

#include <vector>

#include "common/counters.h"
#include "exec/operator.h"
#include "row/comparator.h"
#include "row/row_buffer.h"

namespace ovc {

/// Aggregate functions over 64-bit integer columns.
enum class AggFn { kCount, kSum, kMin, kMax };

/// One aggregate output column: `fn` applied to input column `input_col`
/// (ignored for kCount).
struct AggregateSpec {
  AggFn fn;
  uint32_t input_col;
};

/// In-stream (sorted-input) grouping and aggregation.
class InStreamAggregate : public Operator {
 public:
  struct Options {
    /// False switches to the baseline: group boundaries via column
    /// comparisons against the previous row (the expensive side of
    /// Figure 4).
    bool use_ovc_boundaries;

    Options() : use_ovc_boundaries(true) {}
  };

  /// `child` must be sorted (with codes when use_ovc_boundaries) on at
  /// least the first `group_prefix` key columns. Output schema:
  /// `group_prefix` key columns followed by one payload column per
  /// aggregate. `counters` (optional) prices the baseline's comparisons.
  InStreamAggregate(Operator* child, uint32_t group_prefix,
                    std::vector<AggregateSpec> aggregates,
                    QueryCounters* counters, Options options = Options());

  /// Output layout of grouping `in` on its first `group_prefix` key columns
  /// with `num_aggregates` aggregate payload columns. Shared by every
  /// aggregation strategy (in-stream, in-sort, hash), which is what lets
  /// the planner swap one for another without changing the plan's schema.
  static Schema MakeOutputSchema(const Schema& in, uint32_t group_prefix,
                                 size_t num_aggregates);

  void Open() override;
  bool Next(RowRef* out) override;
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return output_schema_; }
  bool sorted() const override { return true; }
  bool has_ovc() const override { return child_->has_ovc(); }

  /// Groups emitted so far.
  uint64_t groups() const { return groups_; }

 private:
  void InitGroup(const RowRef& ref);
  void Accumulate(const uint64_t* row);
  void EmitGroup(RowRef* out);
  bool IsGroupBoundary(const RowRef& ref);

  Operator* child_;
  uint32_t group_prefix_;
  std::vector<AggregateSpec> aggregates_;
  Schema output_schema_;
  Schema group_schema_;       // key arity == group_prefix, for the baseline
  OvcCodec in_codec_;
  OvcCodec out_codec_;
  KeyComparator group_comparator_;
  Options options_;

  std::vector<uint64_t> group_row_;   // current group's first input row
  std::vector<uint64_t> agg_state_;   // running aggregate accumulators
  std::vector<uint64_t> out_row_;     // written only when a group is emitted
  Ovc group_code_ = 0;  // first-in-group input code
  uint64_t group_rows_ = 0;
  bool group_open_ = false;
  bool input_done_ = false;
  uint64_t groups_ = 0;
};

}  // namespace ovc

#endif  // OVC_EXEC_AGGREGATE_H_
