#include "exec/set_operation.h"

#include <algorithm>

namespace ovc {

SetOperation::SetOperation(Operator* left, Operator* right, SetOpType type,
                           bool all, QueryCounters* counters)
    : left_(left),
      right_(right),
      type_(type),
      all_(all),
      codec_(&left->schema()),
      comparator_(&left->schema(), counters),
      group_row_(left->schema().total_columns()) {
  OVC_CHECK(left->sorted() && left->has_ovc());
  OVC_CHECK(right->sorted() && right->has_ovc());
  OVC_CHECK(left->schema() == right->schema());
  OVC_CHECK(left->schema().payload_columns() == 0);
}

void SetOperation::Open() {
  left_->Open();
  right_->Open();
  AdvanceLeft();
  AdvanceRight();
  acc_.Reset();
  pending_copies_ = 0;
}

void SetOperation::Close() {
  left_->Close();
  right_->Close();
}

void SetOperation::AdvanceLeft() {
  l_valid_ = left_->Next(&lref_);
  if (!l_valid_) {
    lref_.cols = nullptr;
    lref_.ovc = OvcCodec::LateFence();
  }
}

void SetOperation::AdvanceRight() {
  r_valid_ = right_->Next(&rref_);
  if (!r_valid_) {
    rref_.cols = nullptr;
    rref_.ovc = OvcCodec::LateFence();
  }
}

uint64_t SetOperation::CountLeftGroup() {
  uint64_t n = 1;
  do {
    AdvanceLeft();
    if (l_valid_ && codec_.IsDuplicate(lref_.ovc)) {
      ++n;
    } else {
      break;
    }
  } while (true);
  return n;
}

uint64_t SetOperation::CountRightGroup() {
  uint64_t n = 1;
  do {
    AdvanceRight();
    if (r_valid_ && codec_.IsDuplicate(rref_.ovc)) {
      ++n;
    } else {
      break;
    }
  } while (true);
  return n;
}

uint64_t SetOperation::CopiesFor(uint64_t nl, uint64_t nr) const {
  switch (type_) {
    case SetOpType::kIntersect:
      if (all_) return std::min(nl, nr);
      return (nl > 0 && nr > 0) ? 1 : 0;
    case SetOpType::kExcept:
      if (all_) return nl > nr ? nl - nr : 0;
      return (nl > 0 && nr == 0) ? 1 : 0;
    case SetOpType::kUnion:
      if (all_) return nl + nr;
      return (nl + nr > 0) ? 1 : 0;
  }
  return 0;
}

bool SetOperation::Next(RowRef* out) {
  while (true) {
    if (pending_copies_ > 0) {
      --pending_copies_;
      out->cols = group_row_.row(0);
      if (first_copy_pending_) {
        out->ovc = group_code_;
        first_copy_pending_ = false;
      } else {
        out->ovc = codec_.DuplicateCode();
      }
      return true;
    }

    if (!l_valid_ && !r_valid_) {
      return false;
    }

    const int cmp = CompareWithOvc(codec_, comparator_, lref_.cols, &lref_.ovc,
                                   rref_.cols, &rref_.ovc);
    uint64_t nl = 0, nr = 0;
    Ovc key_code;
    if (cmp < 0) {
      group_row_.Clear();
      group_row_.AppendRow(lref_.cols);
      key_code = lref_.ovc;
      nl = CountLeftGroup();
    } else if (cmp > 0) {
      group_row_.Clear();
      group_row_.AppendRow(rref_.cols);
      key_code = rref_.ovc;
      nr = CountRightGroup();
    } else {
      group_row_.Clear();
      group_row_.AppendRow(lref_.cols);
      key_code = lref_.ovc;  // equal keys relative to the same base: codes
                             // are equal on both sides
      nl = CountLeftGroup();
      nr = CountRightGroup();
    }

    const uint64_t copies = CopiesFor(nl, nr);
    if (copies == 0) {
      acc_.Absorb(key_code);
      continue;
    }
    group_code_ = acc_.Combine(key_code);
    acc_.Reset();
    pending_copies_ = copies;
    first_copy_pending_ = true;
  }
}

}  // namespace ovc
