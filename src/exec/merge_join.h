// Merge join with offset-value codes (Section 4.7).
//
// "The logic of merge join is similar to an external merge sort": the two
// sorted inputs are merged key by key, and the comparison that decides
// which input advances is exactly the comparison a two-input merge performs
// -- so CompareWithOvc both drives the join and maintains the code
// invariant (each side's current code stays relative to the last consumed
// key). From there:
//
//  * matched keys: the group's first output row takes the group key's code
//    (combined, via the filter theorem, with codes of keys dropped since
//    the previous output); every further row of the group is a key
//    duplicate and takes the duplicate code;
//  * unmatched keys that the join type drops feed the accumulator;
//  * unmatched keys that the join type emits (outer, anti) take their own
//    combined code.
//
// Full outer join emits the coalesced join key -- the paper's "virtual
// column" -- so output keys are never null; a match-indicator payload
// column records which side(s) contributed.
//
// No column-value comparisons happen beyond those of the merge logic
// itself.

#ifndef OVC_EXEC_MERGE_JOIN_H_
#define OVC_EXEC_MERGE_JOIN_H_

#include <vector>

#include "common/counters.h"
#include "core/accumulator.h"
#include "core/ovc_compare.h"
#include "exec/operator.h"
#include "row/row_buffer.h"

namespace ovc {

/// Join flavors. "Left"/"right" qualify which input's unmatched rows
/// survive (outer) or which input is filtered (semi/anti).
enum class JoinType {
  kInner,
  kLeftOuter,
  kRightOuter,
  kFullOuter,
  kLeftSemi,
  kLeftAnti,
  kRightSemi,
  kRightAnti,
};

/// Returns a short lowercase name, e.g. "left outer".
const char* JoinTypeName(JoinType type);

/// Sort-based join of two inputs sorted on (and carrying codes for) equal
/// join-key prefixes.
///
/// Output layouts:
///  * semi / anti joins: the filtered input's schema, rows passed through;
///  * inner / outer joins: join key columns, then left payloads, then right
///    payloads, then one match-indicator column (bit 0 = left side present,
///    bit 1 = right side present; absent sides have zeroed payloads).
///
/// The right input's rows of each key group are buffered in memory
/// (many-to-many joins need one side's group resident).
class MergeJoin : public Operator {
 public:
  /// Both children must be sorted with codes; their key schemas must match.
  MergeJoin(Operator* left, Operator* right, JoinType type,
            QueryCounters* counters);

  /// Output layout of a merge join of `left` and `right` -- the canonical
  /// join row layout the planner normalizes every physical join to.
  static Schema MakeOutputSchema(const Schema& left, const Schema& right,
                                 JoinType type);

  void Open() override;
  bool Next(RowRef* out) override;
  void Close() override;
  const Schema& schema() const override { return output_schema_; }
  bool sorted() const override { return true; }
  bool has_ovc() const override { return true; }

 private:
  enum class State { kCompare, kCrossEmit, kRightGroupEmit, kDone };

  void AdvanceLeft();
  void AdvanceRight();
  /// Buffers all right rows of the current key group and advances past them.
  void BufferRightGroup();
  /// Skips all remaining rows of the current left/right key group.
  void SkipLeftGroup();
  void SkipRightGroup();
  /// Emits a combined row into out_row_.
  void EmitCombined(const uint64_t* left_row, const uint64_t* right_row,
                    Ovc code, RowRef* out);
  /// Emits a passthrough row (semi/anti) into out_row_.
  void EmitPassthrough(const uint64_t* row, uint32_t total_columns, Ovc code,
                       RowRef* out);

  bool WantLeftOnly() const {
    return type_ == JoinType::kLeftOuter || type_ == JoinType::kFullOuter ||
           type_ == JoinType::kLeftAnti;
  }
  bool WantRightOnly() const {
    return type_ == JoinType::kRightOuter || type_ == JoinType::kFullOuter ||
           type_ == JoinType::kRightAnti;
  }
  bool WantMatches() const {
    return type_ != JoinType::kLeftAnti && type_ != JoinType::kRightAnti;
  }
  bool IsPassthrough() const {
    return type_ == JoinType::kLeftSemi || type_ == JoinType::kLeftAnti ||
           type_ == JoinType::kRightSemi || type_ == JoinType::kRightAnti;
  }

  Operator* left_;
  Operator* right_;
  JoinType type_;
  Schema output_schema_;
  OvcCodec key_codec_;   // over the left schema (join keys match)
  OvcCodec out_codec_;   // over the output schema (same key arity)
  KeyComparator comparator_;
  QueryCounters* counters_;

  RowRef lref_, rref_;
  bool l_valid_ = false, r_valid_ = false;
  OvcAccumulator acc_;
  State state_ = State::kCompare;

  // Key-group machinery.
  Ovc group_code_ = 0;
  bool group_first_pending_ = false;  // next emission is the group's first
  RowBuffer right_group_;
  size_t right_idx_ = 0;
  RowBuffer left_row_copy_;
  std::vector<uint64_t> out_row_;
};

}  // namespace ovc

#endif  // OVC_EXEC_MERGE_JOIN_H_
