// Leaf operators: scans over in-memory data.

#ifndef OVC_EXEC_SCAN_H_
#define OVC_EXEC_SCAN_H_

#include <cstdint>

#include "exec/operator.h"
#include "row/row_buffer.h"
#include "sort/run.h"

namespace ovc {

/// Scans a RowBuffer in storage order. Unsorted, no codes: the typical
/// input of a sort operator.
class BufferScan : public Operator {
 public:
  /// `schema` and `buffer` must outlive the scan. Supports rescans.
  BufferScan(const Schema* schema, const RowBuffer* buffer)
      : schema_(schema), buffer_(buffer) {
    OVC_CHECK(buffer->width() == schema->total_columns());
  }

  void Open() override { pos_ = 0; }
  bool Next(RowRef* out) override {
    if (pos_ >= buffer_->size()) return false;
    out->cols = buffer_->row(pos_++);
    out->ovc = 0;
    return true;
  }
  uint32_t NextBatch(RowBlock* out) override {
    out->Clear();
    const size_t avail = buffer_->size() - pos_;
    const uint32_t n = static_cast<uint32_t>(
        avail < out->capacity() ? avail : out->capacity());
    if (n == 0) return 0;
    // RowBuffer rows are contiguous and stable for the scan's lifetime:
    // serve the span zero-copy (codes are all zero for an unsorted scan).
    out->RefContiguous(buffer_->row(pos_), nullptr, n);
    pos_ += n;
    return n;
  }
  void Close() override {}
  const Schema& schema() const override { return *schema_; }
  bool sorted() const override { return false; }
  bool has_ovc() const override { return false; }

 private:
  const Schema* schema_;
  const RowBuffer* buffer_;
  size_t pos_ = 0;
};

/// Scans an InMemoryRun: sorted rows with their stored offset-value codes,
/// at zero comparison cost -- the in-memory analogue of an ordered storage
/// scan (Section 4.11). Supports rescans.
class RunScan : public Operator {
 public:
  /// `schema` and `run` must outlive the scan.
  RunScan(const Schema* schema, const InMemoryRun* run)
      : schema_(schema), run_(run) {
    OVC_CHECK(run->width() == schema->total_columns());
  }

  void Open() override { pos_ = 0; }
  bool Next(RowRef* out) override {
    if (pos_ >= run_->size()) return false;
    out->cols = run_->row(pos_);
    out->ovc = run_->code(pos_);
    ++pos_;
    return true;
  }
  uint32_t NextBatch(RowBlock* out) override {
    out->Clear();
    const size_t avail = run_->size() - pos_;
    const uint32_t n = static_cast<uint32_t>(
        avail < out->capacity() ? avail : out->capacity());
    if (n == 0) return 0;
    // Rows and codes are contiguous in the run and stable: serve the span
    // zero-copy. The stored codes are already relative to each row's
    // predecessor, so they carry over unchanged -- including the first row
    // of this block, whose predecessor was the last row of the previous
    // block.
    out->RefContiguous(run_->row(pos_), run_->codes() + pos_, n);
    pos_ += n;
    return n;
  }
  void Close() override {}
  const Schema& schema() const override { return *schema_; }
  bool sorted() const override { return true; }
  bool has_ovc() const override { return true; }

 private:
  const Schema* schema_;
  const InMemoryRun* run_;
  size_t pos_ = 0;
};

}  // namespace ovc

#endif  // OVC_EXEC_SCAN_H_
