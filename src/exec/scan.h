// Leaf operators: scans over in-memory data.

#ifndef OVC_EXEC_SCAN_H_
#define OVC_EXEC_SCAN_H_

#include <cstdint>

#include "exec/operator.h"
#include "row/row_buffer.h"
#include "sort/run.h"

namespace ovc {

/// Scans a RowBuffer in storage order. Unsorted, no codes: the typical
/// input of a sort operator.
class BufferScan : public Operator {
 public:
  /// `schema` and `buffer` must outlive the scan. Supports rescans.
  BufferScan(const Schema* schema, const RowBuffer* buffer)
      : schema_(schema), buffer_(buffer) {
    OVC_CHECK(buffer->width() == schema->total_columns());
  }

  void Open() override { pos_ = 0; }
  bool Next(RowRef* out) override {
    if (pos_ >= buffer_->size()) return false;
    out->cols = buffer_->row(pos_++);
    out->ovc = 0;
    return true;
  }
  void Close() override {}
  const Schema& schema() const override { return *schema_; }
  bool sorted() const override { return false; }
  bool has_ovc() const override { return false; }

 private:
  const Schema* schema_;
  const RowBuffer* buffer_;
  size_t pos_ = 0;
};

/// Scans an InMemoryRun: sorted rows with their stored offset-value codes,
/// at zero comparison cost -- the in-memory analogue of an ordered storage
/// scan (Section 4.11). Supports rescans.
class RunScan : public Operator {
 public:
  /// `schema` and `run` must outlive the scan.
  RunScan(const Schema* schema, const InMemoryRun* run)
      : schema_(schema), run_(run) {
    OVC_CHECK(run->width() == schema->total_columns());
  }

  void Open() override { pos_ = 0; }
  bool Next(RowRef* out) override {
    if (pos_ >= run_->size()) return false;
    out->cols = run_->row(pos_);
    out->ovc = run_->code(pos_);
    ++pos_;
    return true;
  }
  void Close() override {}
  const Schema& schema() const override { return *schema_; }
  bool sorted() const override { return true; }
  bool has_ovc() const override { return true; }

 private:
  const Schema* schema_;
  const InMemoryRun* run_;
  size_t pos_ = 0;
};

}  // namespace ovc

#endif  // OVC_EXEC_SCAN_H_
