// Hash aggregation baseline with spilling (Figure 5's hash-based plan).
//
// Hybrid hashing: groups accumulate in an in-memory table until the memory
// budget is reached; rows whose group is not already resident then spill to
// hash partitions on temporary storage, and each partition is aggregated in
// memory afterwards. Output is unordered and carries no offset-value codes
// -- which is precisely why the hash-based plan of Figure 5 needs *three*
// blocking operators where the sort-based plan needs two.

#ifndef OVC_EXEC_HASH_AGGREGATE_H_
#define OVC_EXEC_HASH_AGGREGATE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/counters.h"
#include "common/temp_file.h"
#include "exec/aggregate.h"
#include "exec/fallback_policy.h"
#include "exec/operator.h"
#include "row/row_buffer.h"
#include "sort/external_sort.h"
#include "sort/group_collapse.h"
#include "sort/run_file.h"

namespace ovc {

/// Hash-based grouping and aggregation with a row budget and grace-style
/// partition spilling. Blocking: consumes its child in Open().
///
/// Graceful degradation: with FallbackPolicy::kSortMerge, a group table
/// that overflows `memory_groups` mid-Open degrades to in-sort aggregation
/// instead of recursive partitioning: the resident partial-aggregate state
/// rows plus every remaining input row (transformed to a state row, counts
/// materialized as 1) feed one ExternalSort on the group key, and a
/// CollapsingSource merges key-duplicate states on the pull side -- the
/// Figure 5 sort-based plan, entered mid-query. Counted in
/// QueryCounters::hash_agg_fallbacks.
class HashAggregate : public Operator {
 public:
  /// Groups on the first `group_prefix` key columns; aggregates as in
  /// InStreamAggregate. `memory_groups` bounds the resident group count.
  /// `sort_config` tunes the fallback sort (only read under kSortMerge).
  HashAggregate(Operator* child, uint32_t group_prefix,
                std::vector<AggregateSpec> aggregates, uint64_t memory_groups,
                QueryCounters* counters, TempFileManager* temp,
                uint32_t partitions = 16,
                FallbackPolicy fallback = FallbackPolicy::kPartition,
                SortConfig sort_config = SortConfig{});

  void Open() override;
  bool Next(RowRef* out) override;
  void Close() override;
  const Schema& schema() const override { return output_schema_; }
  bool sorted() const override { return false; }
  bool has_ovc() const override { return false; }

 private:
  static Schema MakeOutputSchema(const Schema& in, uint32_t group_prefix,
                                 size_t num_aggregates);

  /// Accumulates `row` into the resident table; false when the table is
  /// full and the row's group is absent.
  bool TryAccumulate(const uint64_t* row);
  void SeedGroup(uint64_t* group_state);
  void AccumulateInto(uint64_t* group_state, const uint64_t* row);
  /// Moves the resident table's groups into the output queue.
  void FlushTableToQueue();
  bool ProcessNextPartition();
  /// Hash partition of `row` at recursion `level` (level-salted so that
  /// recursive repartitioning actually splits a partition's keys).
  uint32_t PartitionOf(const uint64_t* row, uint32_t level);

  /// kSortMerge overflow path: moves the resident partial-aggregate state
  /// rows into an ExternalSort over the state schema.
  void BeginSortMergeFallback();
  /// Transforms one input row into a state row and adds it to the sort.
  void AddInputRowToFallback(const uint64_t* row);
  /// Finishes the sort and stands up the collapsing pull path.
  void FinishSortMergeFallback();
  /// Records `status` in the temp manager's error slot and stops output.
  void Degrade(const Status& status);

  Operator* child_;
  uint32_t group_prefix_;
  std::vector<AggregateSpec> aggregates_;
  uint64_t memory_groups_;
  uint32_t partitions_;
  FallbackPolicy fallback_;
  SortConfig sort_config_;
  Schema output_schema_;
  QueryCounters* counters_;
  TempFileManager* temp_;

  // Resident table: group key hash -> index into group_states_ (rows of
  // group key columns followed by aggregate accumulators).
  std::unordered_multimap<uint64_t, uint32_t> table_;
  RowBuffer group_states_;

  /// A spilled partition awaiting (possibly recursive) processing.
  struct PendingPartition {
    std::string path;
    uint32_t level;
  };

  std::vector<PendingPartition> pending_partitions_;

  RowBuffer output_queue_;
  size_t queue_pos_ = 0;

  // In-sort continuation (kSortMerge overflow only). State rows are
  // [group keys][one mergeable accumulator per aggregate]; the collapser
  // folds key-duplicates (partial counts merge by summation).
  bool fell_back_ = false;
  bool failed_ = false;
  std::unique_ptr<Schema> fb_state_schema_;
  std::unique_ptr<ExternalSort> fb_sort_;
  std::unique_ptr<MergeSource> fb_sort_source_;
  std::unique_ptr<CollapsingSource> fb_collapse_;
  std::vector<uint64_t> fb_state_row_;
};

}  // namespace ovc

#endif  // OVC_EXEC_HASH_AGGREGATE_H_
