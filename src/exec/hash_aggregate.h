// Hash aggregation baseline with spilling (Figure 5's hash-based plan).
//
// Hybrid hashing: groups accumulate in an in-memory table until the memory
// budget is reached; rows whose group is not already resident then spill to
// hash partitions on temporary storage, and each partition is aggregated in
// memory afterwards. Output is unordered and carries no offset-value codes
// -- which is precisely why the hash-based plan of Figure 5 needs *three*
// blocking operators where the sort-based plan needs two.

#ifndef OVC_EXEC_HASH_AGGREGATE_H_
#define OVC_EXEC_HASH_AGGREGATE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/counters.h"
#include "common/temp_file.h"
#include "exec/aggregate.h"
#include "exec/operator.h"
#include "row/row_buffer.h"
#include "sort/run_file.h"

namespace ovc {

/// Hash-based grouping and aggregation with a row budget and grace-style
/// partition spilling. Blocking: consumes its child in Open().
class HashAggregate : public Operator {
 public:
  /// Groups on the first `group_prefix` key columns; aggregates as in
  /// InStreamAggregate. `memory_groups` bounds the resident group count.
  HashAggregate(Operator* child, uint32_t group_prefix,
                std::vector<AggregateSpec> aggregates, uint64_t memory_groups,
                QueryCounters* counters, TempFileManager* temp,
                uint32_t partitions = 16);

  void Open() override;
  bool Next(RowRef* out) override;
  void Close() override;
  const Schema& schema() const override { return output_schema_; }
  bool sorted() const override { return false; }
  bool has_ovc() const override { return false; }

 private:
  static Schema MakeOutputSchema(const Schema& in, uint32_t group_prefix,
                                 size_t num_aggregates);

  /// Accumulates `row` into the resident table; false when the table is
  /// full and the row's group is absent.
  bool TryAccumulate(const uint64_t* row);
  void SeedGroup(uint64_t* group_state);
  void AccumulateInto(uint64_t* group_state, const uint64_t* row);
  /// Moves the resident table's groups into the output queue.
  void FlushTableToQueue();
  bool ProcessNextPartition();
  /// Hash partition of `row` at recursion `level` (level-salted so that
  /// recursive repartitioning actually splits a partition's keys).
  uint32_t PartitionOf(const uint64_t* row, uint32_t level);

  Operator* child_;
  uint32_t group_prefix_;
  std::vector<AggregateSpec> aggregates_;
  uint64_t memory_groups_;
  uint32_t partitions_;
  Schema output_schema_;
  QueryCounters* counters_;
  TempFileManager* temp_;

  // Resident table: group key hash -> index into group_states_ (rows of
  // group key columns followed by aggregate accumulators).
  std::unordered_multimap<uint64_t, uint32_t> table_;
  RowBuffer group_states_;

  /// A spilled partition awaiting (possibly recursive) processing.
  struct PendingPartition {
    std::string path;
    uint32_t level;
  };

  std::vector<PendingPartition> pending_partitions_;

  RowBuffer output_queue_;
  size_t queue_pos_ = 0;
};

}  // namespace ovc

#endif  // OVC_EXEC_HASH_AGGREGATE_H_
