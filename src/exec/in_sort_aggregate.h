// In-sort aggregation: grouping/aggregation folded into the sort itself
// (the blocking operators of Figure 5's sort-based plan).
//
// Instead of sorting the full input and aggregating afterwards, every stage
// of the external sort collapses key-duplicate rows into running aggregate
// states: run generation spills at most one row per distinct group per run,
// intermediate merges collapse again, and the final merge streams fully
// aggregated groups. Against a sort-then-aggregate pipeline this cuts spill
// volume from "all input rows" to "groups per run" -- the reason the
// paper's sort-based intersect-distinct plan spills each logical row at
// most once and beats the hash-based plan.
//
// Duplicate detection at every stage is code-only (offset == arity), and
// output rows carry exact codes (each group keeps its first row's code).

#ifndef OVC_EXEC_IN_SORT_AGGREGATE_H_
#define OVC_EXEC_IN_SORT_AGGREGATE_H_

#include <memory>
#include <vector>

#include "common/counters.h"
#include "common/temp_file.h"
#include "exec/aggregate.h"
#include "exec/operator.h"
#include "sort/external_sort.h"
#include "sort/group_collapse.h"
#include "sort/run.h"
#include "sort/run_file.h"

namespace ovc {

/// Blocking sort-based aggregation with early (in-sort) duplicate collapse.
/// With an empty aggregate list it is in-sort duplicate removal.
class InSortAggregate : public Operator {
 public:
  /// Groups on the first `group_prefix` columns of `child` (which need not
  /// be sorted). Output schema: the group columns as sort keys, one payload
  /// column per aggregate. `config` supplies memory/fan-in knobs; its
  /// run-generation fields are honored, replacement selection is not
  /// supported here.
  InSortAggregate(Operator* child, uint32_t group_prefix,
                  std::vector<AggregateSpec> aggregates,
                  QueryCounters* counters, TempFileManager* temp,
                  SortConfig config = SortConfig());

  void Open() override;
  bool Next(RowRef* out) override;
  void Close() override;
  const Schema& schema() const override { return state_schema_; }
  bool sorted() const override { return true; }
  bool has_ovc() const override { return true; }

 private:
  static Schema MakeStateSchema(const Schema& in, uint32_t group_prefix,
                                size_t num_aggregates);

  /// Turns an input row into an aggregation-state row in state_row_.
  void TransformRow(const uint64_t* row);
  /// Sorts + collapses the buffer into `sink`.
  void CollapseBufferInto(RunSink* sink);
  Status SpillBuffer();
  Status PrepareMerge();
  /// Records `status` in the temp manager's error slot and stops output.
  void Degrade(const Status& status);

  Operator* child_;
  uint32_t group_prefix_;
  std::vector<AggregateSpec> aggregates_;
  Schema state_schema_;
  std::vector<StateMergeFn> merge_fns_;
  QueryCounters* counters_;
  TempFileManager* temp_;
  SortConfig config_;
  OvcCodec codec_;
  KeyComparator comparator_;

  RowBuffer buffer_;
  std::vector<uint64_t> state_row_;
  std::vector<SpilledRun> runs_;
  bool failed_ = false;

  // Output plumbing.
  std::unique_ptr<InMemoryRun> memory_run_;
  std::unique_ptr<InMemoryRunSource> memory_source_;
  std::vector<std::unique_ptr<RunFileReader>> readers_;
  std::unique_ptr<OvcMerger> merger_;
  std::unique_ptr<MergeSource> final_merger_source_;
  std::unique_ptr<CollapsingSource> collapsing_output_;
};

}  // namespace ovc

#endif  // OVC_EXEC_IN_SORT_AGGREGATE_H_
