#include "exec/hash_aggregate.h"

#include <cstring>
#include <limits>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "exec/hash_join.h"  // HashKeyPrefix
#include "sort/run_file.h"

namespace ovc {

namespace {

/// MergeSource over a finished ExternalSort (the collapser's inner
/// stream). The sort's RowRef stays valid until the next pull, matching
/// the MergeSource contract.
class SortMergeSource final : public MergeSource {
 public:
  explicit SortMergeSource(ExternalSort* sort) : sort_(sort) {}
  bool Next(const uint64_t** row, Ovc* code) override {
    RowRef ref;
    if (!sort_->Next(&ref)) return false;
    *row = ref.cols;
    *code = ref.ovc;
    return true;
  }

 private:
  ExternalSort* sort_;
};

}  // namespace

Schema HashAggregate::MakeOutputSchema(const Schema& in, uint32_t group_prefix,
                                       size_t num_aggregates) {
  std::vector<SortDirection> dirs;
  for (uint32_t c = 0; c < group_prefix; ++c) {
    dirs.push_back(in.direction(c));
  }
  return Schema(std::move(dirs), static_cast<uint32_t>(num_aggregates));
}

HashAggregate::HashAggregate(Operator* child, uint32_t group_prefix,
                             std::vector<AggregateSpec> aggregates,
                             uint64_t memory_groups, QueryCounters* counters,
                             TempFileManager* temp, uint32_t partitions,
                             FallbackPolicy fallback, SortConfig sort_config)
    : child_(child),
      group_prefix_(group_prefix),
      aggregates_(std::move(aggregates)),
      memory_groups_(memory_groups),
      partitions_(partitions),
      fallback_(fallback),
      sort_config_(sort_config),
      output_schema_(
          MakeOutputSchema(child->schema(), group_prefix, aggregates_.size())),
      counters_(counters),
      temp_(temp),
      group_states_(group_prefix + std::max<uint32_t>(
                                       1, static_cast<uint32_t>(
                                              aggregates_.size()))),
      output_queue_(output_schema_.total_columns()) {
  OVC_CHECK(group_prefix >= 1);
  OVC_CHECK(group_prefix <= child->schema().key_arity());
  OVC_CHECK(memory_groups >= 1);
  OVC_CHECK(partitions >= 2);
}

void HashAggregate::SeedGroup(uint64_t* group_state) {
  for (size_t a = 0; a < aggregates_.size(); ++a) {
    switch (aggregates_[a].fn) {
      case AggFn::kCount:
      case AggFn::kSum:
        group_state[group_prefix_ + a] = 0;
        break;
      case AggFn::kMin:
        group_state[group_prefix_ + a] = std::numeric_limits<uint64_t>::max();
        break;
      case AggFn::kMax:
        group_state[group_prefix_ + a] = 0;
        break;
    }
  }
}

void HashAggregate::AccumulateInto(uint64_t* group_state,
                                   const uint64_t* row) {
  for (size_t a = 0; a < aggregates_.size(); ++a) {
    uint64_t& acc = group_state[group_prefix_ + a];
    switch (aggregates_[a].fn) {
      case AggFn::kCount:
        ++acc;
        break;
      case AggFn::kSum:
        acc += row[aggregates_[a].input_col];
        break;
      case AggFn::kMin:
        acc = std::min(acc, row[aggregates_[a].input_col]);
        break;
      case AggFn::kMax:
        acc = std::max(acc, row[aggregates_[a].input_col]);
        break;
    }
  }
}

bool HashAggregate::TryAccumulate(const uint64_t* row) {
  const uint64_t h = HashKeyPrefix(row, group_prefix_, counters_);
  auto range = table_.equal_range(h);
  for (auto it = range.first; it != range.second; ++it) {
    uint64_t* state = group_states_.mutable_row(it->second);
    bool equal = true;
    for (uint32_t c = 0; c < group_prefix_; ++c) {
      if (counters_ != nullptr) ++counters_->column_comparisons;
      if (state[c] != row[c]) {
        equal = false;
        break;
      }
    }
    if (equal) {
      AccumulateInto(state, row);
      return true;
    }
  }
  if (group_states_.size() >= memory_groups_ ||
      OVC_FAILPOINT("hash_aggregate.force_overflow")) {
    return false;  // table full, group absent
  }
  uint64_t* state = group_states_.AppendRow();
  std::memcpy(state, row, group_prefix_ * sizeof(uint64_t));
  SeedGroup(state);
  AccumulateInto(state, row);
  table_.emplace(h, static_cast<uint32_t>(group_states_.size() - 1));
  return true;
}

void HashAggregate::FlushTableToQueue() {
  for (size_t i = 0; i < group_states_.size(); ++i) {
    const uint64_t* state = group_states_.row(i);
    uint64_t* dst = output_queue_.AppendRow();
    std::memcpy(dst, state, group_prefix_ * sizeof(uint64_t));
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      dst[group_prefix_ + a] = state[group_prefix_ + a];
    }
  }
  group_states_.Clear();
  table_.clear();
}

uint32_t HashAggregate::PartitionOf(const uint64_t* row, uint32_t level) {
  uint64_t h = HashKeyPrefix(row, group_prefix_, counters_);
  // Salt by level so that recursive repartitioning separates keys that
  // collided at the previous level.
  h ^= 0x9e3779b97f4a7c15ULL * (level + 1);
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 32;
  return static_cast<uint32_t>(h % partitions_);
}

void HashAggregate::BeginSortMergeFallback() {
  // The group table is full: switch to the sort-based plan mid-query.
  // Every resident state row and every remaining input row feeds one
  // external sort on the group key; the pull side collapses duplicates.
  OVC_TRACE_SPAN("hash_aggregate.fallback");
  fell_back_ = true;
  if (counters_ != nullptr) ++counters_->hash_agg_fallbacks;
  OVC_METRIC_COUNTER("hash_aggregate.fallbacks",
                     "Hash aggregations that degraded to in-sort")
      .Increment();
  const Schema& in = child_->schema();
  std::vector<SortDirection> dirs;
  for (uint32_t c = 0; c < group_prefix_; ++c) dirs.push_back(in.direction(c));
  fb_state_schema_ = std::make_unique<Schema>(
      std::move(dirs), static_cast<uint32_t>(aggregates_.size()));
  fb_sort_ = std::make_unique<ExternalSort>(fb_state_schema_.get(), counters_,
                                            temp_, sort_config_);
  // Resident rows are wider than state rows when there are no aggregates
  // (the table pads to one accumulator column); Add copies exactly the
  // state schema's columns, so passing the wider row is safe.
  for (size_t i = 0; i < group_states_.size(); ++i) {
    fb_sort_->Add(group_states_.row(i));
  }
  group_states_.Clear();
  table_.clear();
  fb_state_row_.assign(fb_state_schema_->total_columns(), 0);
}

void HashAggregate::AddInputRowToFallback(const uint64_t* row) {
  // Transform the input row into a single-row aggregation state: counts
  // contribute the constant 1 (merged with kSum downstream, the
  // group_collapse.h convention), everything else its input column.
  std::memcpy(fb_state_row_.data(), row, group_prefix_ * sizeof(uint64_t));
  for (size_t a = 0; a < aggregates_.size(); ++a) {
    fb_state_row_[group_prefix_ + a] = aggregates_[a].fn == AggFn::kCount
                                           ? 1
                                           : row[aggregates_[a].input_col];
  }
  fb_sort_->Add(fb_state_row_.data());
}

void HashAggregate::FinishSortMergeFallback() {
  Status st = fb_sort_->Finish();
  if (!st.ok()) {
    Degrade(st);
    return;
  }
  std::vector<StateMergeFn> fns;
  fns.reserve(aggregates_.size());
  for (const AggregateSpec& agg : aggregates_) {
    switch (agg.fn) {
      case AggFn::kCount:
      case AggFn::kSum:
        fns.push_back(StateMergeFn::kSum);
        break;
      case AggFn::kMin:
        fns.push_back(StateMergeFn::kMin);
        break;
      case AggFn::kMax:
        fns.push_back(StateMergeFn::kMax);
        break;
    }
  }
  fb_sort_source_ = std::make_unique<SortMergeSource>(fb_sort_.get());
  fb_collapse_ = std::make_unique<CollapsingSource>(
      fb_state_schema_.get(), std::move(fns), fb_sort_source_.get());
}

void HashAggregate::Degrade(const Status& status) {
  failed_ = true;
  if (temp_ != nullptr) temp_->RecordError(status);
}

void HashAggregate::Open() {
  output_queue_.Clear();
  queue_pos_ = 0;
  pending_partitions_.clear();
  group_states_.Clear();
  table_.clear();
  fell_back_ = false;
  failed_ = false;
  fb_collapse_.reset();
  fb_sort_source_.reset();
  fb_sort_.reset();

  const Schema& in = child_->schema();
  OvcCodec codec(&in);
  std::vector<std::unique_ptr<RunFileWriter>> writers;
  std::vector<std::string> paths;
  child_->Open();
  RowRef ref;
  while (child_->Next(&ref)) {
    if (fell_back_) {
      AddInputRowToFallback(ref.cols);
      continue;
    }
    if (TryAccumulate(ref.cols)) continue;
    if (fallback_ == FallbackPolicy::kSortMerge) {
      BeginSortMergeFallback();
      AddInputRowToFallback(ref.cols);
      continue;
    }
    // Spill path: route the row to its hash partition.
    if (writers.empty()) {
      writers.resize(partitions_);
      paths.resize(partitions_);
      for (uint32_t p = 0; p < partitions_; ++p) {
        writers[p] = std::make_unique<RunFileWriter>(&in, counters_);
        paths[p] = temp_->NewPath("hagg-part");
        Status st = writers[p]->Open(paths[p]);
        if (!st.ok()) {
          child_->Close();
          Degrade(st);
          return;
        }
      }
    }
    const uint32_t p = PartitionOf(ref.cols, /*level=*/0);
    Status st = writers[p]->Append(ref.cols, codec.MakeFromRow(ref.cols, 0));
    if (!st.ok()) {
      child_->Close();
      Degrade(st);
      return;
    }
  }
  child_->Close();
  if (fell_back_) {
    FinishSortMergeFallback();
    return;
  }
  for (uint32_t p = 0; p < writers.size(); ++p) {
    Status st = writers[p]->Close();
    if (!st.ok()) {
      Degrade(st);
      return;
    }
    pending_partitions_.push_back(PendingPartition{paths[p], 1});
  }
  FlushTableToQueue();
}

bool HashAggregate::ProcessNextPartition() {
  while (!pending_partitions_.empty() && !failed_) {
    const PendingPartition pending = pending_partitions_.back();
    pending_partitions_.pop_back();
    // Runaway-recursion guard: with level-salted partitioning, each level
    // divides distinct keys by the fan-out; eight levels cover any input.
    OVC_CHECK(pending.level <= 8);
    output_queue_.Clear();
    queue_pos_ = 0;

    const Schema& in = child_->schema();
    OvcCodec codec(&in);
    std::vector<std::unique_ptr<RunFileWriter>> writers;
    std::vector<std::string> paths;
    RunFileReader reader(&in, temp_);
    Status st = reader.Open(pending.path);
    const uint64_t* row = nullptr;
    Ovc code = 0;
    while (st.ok() && reader.Next(&row, &code)) {
      if (TryAccumulate(row)) continue;
      // Still too many groups: repartition recursively.
      if (writers.empty()) {
        writers.resize(partitions_);
        paths.resize(partitions_);
        for (uint32_t p = 0; p < partitions_ && st.ok(); ++p) {
          writers[p] = std::make_unique<RunFileWriter>(&in, counters_);
          paths[p] = temp_->NewPath("hagg-part");
          st = writers[p]->Open(paths[p]);
        }
        if (!st.ok()) break;
      }
      const uint32_t p = PartitionOf(row, pending.level);
      st = writers[p]->Append(row, codec.MakeFromRow(row, 0));
    }
    for (uint32_t p = 0; p < writers.size() && st.ok(); ++p) {
      st = writers[p]->Close();
      pending_partitions_.push_back(
          PendingPartition{paths[p], pending.level + 1});
    }
    if (!st.ok()) {
      Degrade(st);
      return false;
    }
    FlushTableToQueue();
    if (output_queue_.size() > 0) return true;
  }
  return false;
}

bool HashAggregate::Next(RowRef* out) {
  if (failed_) return false;
  if (fell_back_) {
    const uint64_t* row = nullptr;
    Ovc code = 0;
    if (!fb_collapse_->Next(&row, &code)) return false;
    // Collapsed state rows ARE output rows (group keys + merged
    // accumulators) and stay valid until the next pull.
    out->cols = row;
    out->ovc = 0;  // this operator's contract: unordered, no codes
    return true;
  }
  while (true) {
    if (queue_pos_ < output_queue_.size()) {
      out->cols = output_queue_.row(queue_pos_++);
      out->ovc = 0;
      return true;
    }
    if (!ProcessNextPartition()) return false;
  }
}

void HashAggregate::Close() {
  output_queue_.Clear();
  group_states_.Clear();
  table_.clear();
  fb_collapse_.reset();
  fb_sort_source_.reset();
  fb_sort_.reset();
  fb_state_schema_.reset();
}

}  // namespace ovc
