#include "exec/aggregate.h"

#include <cstring>
#include <limits>

namespace ovc {

namespace {

Schema MakeGroupSchema(const Schema& in, uint32_t group_prefix) {
  std::vector<SortDirection> dirs;
  for (uint32_t c = 0; c < group_prefix; ++c) {
    dirs.push_back(in.direction(c));
  }
  return Schema(std::move(dirs), /*payload_columns=*/0);
}

}  // namespace

Schema InStreamAggregate::MakeOutputSchema(const Schema& in,
                                           uint32_t group_prefix,
                                           size_t num_aggregates) {
  std::vector<SortDirection> dirs;
  for (uint32_t c = 0; c < group_prefix; ++c) {
    dirs.push_back(in.direction(c));
  }
  return Schema(std::move(dirs),
                static_cast<uint32_t>(num_aggregates));
}

InStreamAggregate::InStreamAggregate(Operator* child, uint32_t group_prefix,
                                     std::vector<AggregateSpec> aggregates,
                                     QueryCounters* counters, Options options)
    : child_(child),
      group_prefix_(group_prefix),
      aggregates_(std::move(aggregates)),
      output_schema_(
          MakeOutputSchema(child->schema(), group_prefix, aggregates_.size())),
      group_schema_(MakeGroupSchema(child->schema(), group_prefix)),
      in_codec_(&child->schema()),
      out_codec_(&output_schema_),
      group_comparator_(&group_schema_, counters),
      options_(options),
      group_row_(child->schema().total_columns(), 0),
      agg_state_(aggregates_.size(), 0),
      out_row_(output_schema_.total_columns(), 0) {
  OVC_CHECK(group_prefix >= 1);
  OVC_CHECK(group_prefix <= child->schema().key_arity());
  OVC_CHECK(child->sorted());
  if (options_.use_ovc_boundaries) {
    OVC_CHECK(child->has_ovc());
  }
  for (const AggregateSpec& spec : aggregates_) {
    OVC_CHECK(spec.fn == AggFn::kCount ||
              spec.input_col < child->schema().total_columns());
  }
}

void InStreamAggregate::Open() {
  child_->Open();
  group_open_ = false;
  input_done_ = false;
  groups_ = 0;
}

bool InStreamAggregate::IsGroupBoundary(const RowRef& ref) {
  if (options_.use_ovc_boundaries) {
    // One integer test; no column values touched.
    return in_codec_.IsBoundary(ref.ovc, group_prefix_);
  }
  // Baseline (Figure 4's expensive side): compare grouping columns of the
  // current row against the previous row.
  return group_comparator_.FirstDifference(group_row_.data(), ref.cols, 0) <
         group_prefix_;
}

void InStreamAggregate::InitGroup(const RowRef& ref) {
  std::memcpy(group_row_.data(), ref.cols,
              child_->schema().total_columns() * sizeof(uint64_t));
  group_code_ = ref.ovc;
  group_rows_ = 0;
  // Seed the aggregate accumulators.
  for (size_t a = 0; a < aggregates_.size(); ++a) {
    switch (aggregates_[a].fn) {
      case AggFn::kCount:
      case AggFn::kSum:
        agg_state_[a] = 0;
        break;
      case AggFn::kMin:
        agg_state_[a] = std::numeric_limits<uint64_t>::max();
        break;
      case AggFn::kMax:
        agg_state_[a] = 0;
        break;
    }
  }
  group_open_ = true;
}

void InStreamAggregate::Accumulate(const uint64_t* row) {
  ++group_rows_;
  for (size_t a = 0; a < aggregates_.size(); ++a) {
    uint64_t& acc = agg_state_[a];
    switch (aggregates_[a].fn) {
      case AggFn::kCount:
        ++acc;
        break;
      case AggFn::kSum:
        acc += row[aggregates_[a].input_col];
        break;
      case AggFn::kMin:
        acc = std::min(acc, row[aggregates_[a].input_col]);
        break;
      case AggFn::kMax:
        acc = std::max(acc, row[aggregates_[a].input_col]);
        break;
    }
  }
}

void InStreamAggregate::EmitGroup(RowRef* out) {
  std::memcpy(out_row_.data(), group_row_.data(),
              group_prefix_ * sizeof(uint64_t));
  std::memcpy(out_row_.data() + group_prefix_, agg_state_.data(),
              aggregates_.size() * sizeof(uint64_t));
  out->cols = out_row_.data();
  // The group's output code is the first input row's code, clamped to the
  // grouping arity ("output rows retain the offset-value codes of the first
  // row in each group"). Available whenever the input carries codes, even
  // when boundary detection runs in baseline mode.
  out->ovc = child_->has_ovc() ? in_codec_.ClampToPrefix(
                                     group_code_, group_prefix_, out_codec_)
                               : 0;
  ++groups_;
}

bool InStreamAggregate::Next(RowRef* out) {
  if (input_done_) return false;
  RowRef ref;
  while (child_->Next(&ref)) {
    if (!group_open_) {
      InitGroup(ref);
      Accumulate(ref.cols);
      continue;
    }
    if (IsGroupBoundary(ref)) {
      EmitGroup(out);
      InitGroup(ref);
      Accumulate(ref.cols);
      return true;
    }
    Accumulate(ref.cols);
  }
  input_done_ = true;
  if (group_open_) {
    EmitGroup(out);
    group_open_ = false;
    return true;
  }
  return false;
}

}  // namespace ovc
