#include "exec/sort_operator.h"

// Header-only today; this translation unit anchors the library target.
