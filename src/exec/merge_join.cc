#include "exec/merge_join.h"

#include <cstring>

namespace ovc {

const char* JoinTypeName(JoinType type) {
  switch (type) {
    case JoinType::kInner:
      return "inner";
    case JoinType::kLeftOuter:
      return "left outer";
    case JoinType::kRightOuter:
      return "right outer";
    case JoinType::kFullOuter:
      return "full outer";
    case JoinType::kLeftSemi:
      return "left semi";
    case JoinType::kLeftAnti:
      return "left anti";
    case JoinType::kRightSemi:
      return "right semi";
    case JoinType::kRightAnti:
      return "right anti";
  }
  return "unknown";
}

Schema MergeJoin::MakeOutputSchema(const Schema& left, const Schema& right,
                                   JoinType type) {
  switch (type) {
    case JoinType::kLeftSemi:
    case JoinType::kLeftAnti:
      return left;
    case JoinType::kRightSemi:
    case JoinType::kRightAnti:
      return right;
    default: {
      std::vector<SortDirection> dirs;
      for (uint32_t c = 0; c < left.key_arity(); ++c) {
        dirs.push_back(left.direction(c));
      }
      // Join key, left payloads, right payloads, match indicator.
      return Schema(std::move(dirs), left.payload_columns() +
                                         right.payload_columns() + 1);
    }
  }
}

MergeJoin::MergeJoin(Operator* left, Operator* right, JoinType type,
                     QueryCounters* counters)
    : left_(left),
      right_(right),
      type_(type),
      output_schema_(MakeOutputSchema(left->schema(), right->schema(), type)),
      key_codec_(&left->schema()),
      out_codec_(&output_schema_),
      comparator_(&left->schema(), counters),
      counters_(counters),
      right_group_(right->schema().total_columns()),
      left_row_copy_(left->schema().total_columns()),
      out_row_(output_schema_.total_columns(), 0) {
  OVC_CHECK(left->sorted() && left->has_ovc());
  OVC_CHECK(right->sorted() && right->has_ovc());
  // Join keys: both inputs sorted on the same key layout.
  OVC_CHECK(left->schema().key_arity() == right->schema().key_arity());
  for (uint32_t c = 0; c < left->schema().key_arity(); ++c) {
    OVC_CHECK(left->schema().direction(c) == right->schema().direction(c));
  }
}

void MergeJoin::Open() {
  left_->Open();
  right_->Open();
  AdvanceLeft();
  AdvanceRight();
  acc_.Reset();
  state_ = State::kCompare;
}

void MergeJoin::Close() {
  left_->Close();
  right_->Close();
}

void MergeJoin::AdvanceLeft() {
  l_valid_ = left_->Next(&lref_);
  if (!l_valid_) {
    lref_.cols = nullptr;
    lref_.ovc = OvcCodec::LateFence();
  }
}

void MergeJoin::AdvanceRight() {
  r_valid_ = right_->Next(&rref_);
  if (!r_valid_) {
    rref_.cols = nullptr;
    rref_.ovc = OvcCodec::LateFence();
  }
}

void MergeJoin::BufferRightGroup() {
  right_group_.Clear();
  right_group_.AppendRow(rref_.cols);
  while (true) {
    AdvanceRight();
    if (!r_valid_ || !key_codec_.IsDuplicate(rref_.ovc)) break;
    right_group_.AppendRow(rref_.cols);
  }
}

void MergeJoin::SkipLeftGroup() {
  do {
    AdvanceLeft();
  } while (l_valid_ && key_codec_.IsDuplicate(lref_.ovc));
}

void MergeJoin::SkipRightGroup() {
  do {
    AdvanceRight();
  } while (r_valid_ && key_codec_.IsDuplicate(rref_.ovc));
}

void MergeJoin::EmitCombined(const uint64_t* left_row,
                             const uint64_t* right_row, Ovc code, RowRef* out) {
  const Schema& ls = left_->schema();
  const Schema& rs = right_->schema();
  const uint32_t arity = ls.key_arity();
  uint64_t* dst = out_row_.data();
  // Coalesced join key (the paper's virtual column for outer joins).
  std::memcpy(dst, left_row != nullptr ? left_row : right_row,
              arity * sizeof(uint64_t));
  uint64_t indicator = 0;
  if (left_row != nullptr) {
    std::memcpy(dst + arity, left_row + arity,
                ls.payload_columns() * sizeof(uint64_t));
    indicator |= 1;
  } else {
    std::memset(dst + arity, 0, ls.payload_columns() * sizeof(uint64_t));
  }
  if (right_row != nullptr) {
    std::memcpy(dst + arity + ls.payload_columns(), right_row + arity,
                rs.payload_columns() * sizeof(uint64_t));
    indicator |= 2;
  } else {
    std::memset(dst + arity + ls.payload_columns(), 0,
                rs.payload_columns() * sizeof(uint64_t));
  }
  dst[arity + ls.payload_columns() + rs.payload_columns()] = indicator;
  out->cols = dst;
  out->ovc = code;
}

void MergeJoin::EmitPassthrough(const uint64_t* row, uint32_t total_columns,
                                Ovc code, RowRef* out) {
  std::memcpy(out_row_.data(), row, total_columns * sizeof(uint64_t));
  out->cols = out_row_.data();
  out->ovc = code;
}

bool MergeJoin::Next(RowRef* out) {
  while (true) {
    switch (state_) {
      case State::kDone:
        return false;

      case State::kCompare: {
        if (!l_valid_ && !r_valid_) {
          state_ = State::kDone;
          return false;
        }
        // The merge comparison: fences stand in for exhausted inputs, and
        // the loser's code is re-based onto the winner per the corollaries.
        const int cmp = CompareWithOvc(key_codec_, comparator_, lref_.cols,
                                       &lref_.ovc, rref_.cols, &rref_.ovc);
        if (cmp < 0) {
          // Left key without right match.
          if (WantLeftOnly()) {
            const Ovc code = acc_.Combine(lref_.ovc);
            acc_.Reset();
            if (IsPassthrough()) {
              EmitPassthrough(lref_.cols,
                              left_->schema().total_columns(), code, out);
            } else {
              EmitCombined(lref_.cols, nullptr, code, out);
            }
            AdvanceLeft();
            return true;
          }
          acc_.Absorb(lref_.ovc);
          AdvanceLeft();
          continue;
        }
        if (cmp > 0) {
          // Right key without left match.
          if (WantRightOnly()) {
            const Ovc code = acc_.Combine(rref_.ovc);
            acc_.Reset();
            if (IsPassthrough()) {
              EmitPassthrough(rref_.cols,
                              right_->schema().total_columns(), code, out);
            } else {
              EmitCombined(nullptr, rref_.cols, code, out);
            }
            AdvanceRight();
            return true;
          }
          acc_.Absorb(rref_.ovc);
          AdvanceRight();
          continue;
        }
        // Equal keys: a matched key group. Both sides' codes are equal
        // (same key, same base), so either serves as the group's code.
        if (!WantMatches()) {
          acc_.Absorb(lref_.ovc);
          SkipLeftGroup();
          SkipRightGroup();
          continue;
        }
        group_code_ = acc_.Combine(lref_.ovc);
        acc_.Reset();
        group_first_pending_ = true;
        if (type_ == JoinType::kLeftSemi) {
          // Keep left rows; right group only needs skipping.
          SkipRightGroup();
          left_row_copy_.Clear();
          left_row_copy_.AppendRow(lref_.cols);
          right_idx_ = 0;
          state_ = State::kCrossEmit;  // degenerate cross: right side unused
          continue;
        }
        if (type_ == JoinType::kRightSemi) {
          BufferRightGroup();
          SkipLeftGroup();
          right_idx_ = 0;
          state_ = State::kRightGroupEmit;
          continue;
        }
        // Inner / outer joins: buffer the right group, stream left rows.
        BufferRightGroup();
        left_row_copy_.Clear();
        left_row_copy_.AppendRow(lref_.cols);
        right_idx_ = 0;
        state_ = State::kCrossEmit;
        continue;
      }

      case State::kCrossEmit: {
        if (type_ == JoinType::kLeftSemi) {
          // One output per left row of the group.
          const Ovc code = group_first_pending_ ? group_code_
                                                : out_codec_.DuplicateCode();
          group_first_pending_ = false;
          EmitPassthrough(left_row_copy_.row(0),
                          left_->schema().total_columns(), code, out);
          AdvanceLeft();
          if (l_valid_ && key_codec_.IsDuplicate(lref_.ovc)) {
            left_row_copy_.Clear();
            left_row_copy_.AppendRow(lref_.cols);
          } else {
            state_ = State::kCompare;
          }
          return true;
        }
        if (right_idx_ < right_group_.size()) {
          const Ovc code = group_first_pending_ ? group_code_
                                                : out_codec_.DuplicateCode();
          group_first_pending_ = false;
          EmitCombined(left_row_copy_.row(0), right_group_.row(right_idx_),
                       code, out);
          ++right_idx_;
          return true;
        }
        // Finished this left row; more duplicates on the left?
        AdvanceLeft();
        if (l_valid_ && key_codec_.IsDuplicate(lref_.ovc)) {
          left_row_copy_.Clear();
          left_row_copy_.AppendRow(lref_.cols);
          right_idx_ = 0;
          continue;
        }
        state_ = State::kCompare;
        continue;
      }

      case State::kRightGroupEmit: {
        if (right_idx_ >= right_group_.size()) {
          state_ = State::kCompare;
          continue;
        }
        const Ovc code = group_first_pending_ ? group_code_
                                              : out_codec_.DuplicateCode();
        group_first_pending_ = false;
        EmitPassthrough(right_group_.row(right_idx_),
                        right_->schema().total_columns(), code, out);
        ++right_idx_;
        return true;
      }
    }
  }
}

}  // namespace ovc
