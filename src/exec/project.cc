#include "exec/project.h"

namespace ovc {

ProjectOperator::ProjectOperator(Operator* child, Schema output_schema,
                                 std::vector<uint32_t> mapping)
    : child_(child),
      output_schema_(std::move(output_schema)),
      mapping_(std::move(mapping)),
      order_preserving_(false),
      in_codec_(&child->schema()),
      out_codec_(&output_schema_),
      row_(output_schema_.total_columns()) {
  OVC_CHECK(mapping_.size() == output_schema_.total_columns());
  for (uint32_t m : mapping_) {
    OVC_CHECK(m < child_->schema().total_columns());
  }
  // Order preservation: the output key columns must be exactly the leading
  // input key columns, in order, with matching directions.
  if (child_->sorted() && child_->has_ovc() &&
      output_schema_.key_arity() <= child_->schema().key_arity()) {
    bool prefix = true;
    for (uint32_t i = 0; i < output_schema_.key_arity(); ++i) {
      if (mapping_[i] != i ||
          output_schema_.direction(i) != child_->schema().direction(i)) {
        prefix = false;
        break;
      }
    }
    order_preserving_ = prefix;
  }
}

bool ProjectOperator::Next(RowRef* out) {
  RowRef ref;
  if (!child_->Next(&ref)) return false;
  for (uint32_t i = 0; i < mapping_.size(); ++i) {
    row_[i] = ref.cols[mapping_[i]];
  }
  out->cols = row_.data();
  out->ovc = order_preserving_
                 ? in_codec_.ClampToPrefix(ref.ovc, output_schema_.key_arity(),
                                           out_codec_)
                 : 0;
  return true;
}

uint32_t ProjectOperator::NextBatch(RowBlock* out) {
  // The staging capacity must equal the caller's (a larger block would
  // produce more rows than `out` holds); re-cap the existing allocation
  // instead of reallocating when the caller's capacity moves.
  if (in_block_ == nullptr || in_block_->allocated_rows() < out->capacity()) {
    in_block_ = std::make_unique<RowBlock>(child_->schema().total_columns(),
                                           out->capacity());
  }
  in_block_->Clear();
  in_block_->SetCapacity(out->capacity());
  const uint32_t n = child_->NextBatch(in_block_.get());
  out->Clear();
  if (n == 0) return 0;
  const uint32_t out_width = static_cast<uint32_t>(mapping_.size());
  const uint32_t out_arity = output_schema_.key_arity();
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t* src = in_block_->row(i);
    const Ovc code =
        order_preserving_
            ? in_codec_.ClampToPrefix(in_block_->code(i), out_arity,
                                      out_codec_)
            : 0;
    uint64_t* dst = out->AppendRow(code);
    for (uint32_t c = 0; c < out_width; ++c) {
      dst[c] = src[mapping_[c]];
    }
  }
  return n;
}

}  // namespace ovc
