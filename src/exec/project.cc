#include "exec/project.h"

namespace ovc {

ProjectOperator::ProjectOperator(Operator* child, Schema output_schema,
                                 std::vector<uint32_t> mapping)
    : child_(child),
      output_schema_(std::move(output_schema)),
      mapping_(std::move(mapping)),
      order_preserving_(false),
      in_codec_(&child->schema()),
      out_codec_(&output_schema_),
      row_(output_schema_.total_columns()) {
  OVC_CHECK(mapping_.size() == output_schema_.total_columns());
  for (uint32_t m : mapping_) {
    OVC_CHECK(m < child_->schema().total_columns());
  }
  // Order preservation: the output key columns must be exactly the leading
  // input key columns, in order, with matching directions.
  if (child_->sorted() && child_->has_ovc() &&
      output_schema_.key_arity() <= child_->schema().key_arity()) {
    bool prefix = true;
    for (uint32_t i = 0; i < output_schema_.key_arity(); ++i) {
      if (mapping_[i] != i ||
          output_schema_.direction(i) != child_->schema().direction(i)) {
        prefix = false;
        break;
      }
    }
    order_preserving_ = prefix;
  }
}

bool ProjectOperator::Next(RowRef* out) {
  RowRef ref;
  if (!child_->Next(&ref)) return false;
  for (uint32_t i = 0; i < mapping_.size(); ++i) {
    row_[i] = ref.cols[mapping_[i]];
  }
  out->cols = row_.data();
  out->ovc = order_preserving_
                 ? in_codec_.ClampToPrefix(ref.ovc, output_schema_.key_arity(),
                                           out_codec_)
                 : 0;
  return true;
}

}  // namespace ovc
