// Duplicate removal in a sorted stream (Section 4.4).
//
// A duplicate row carries a code whose offset equals the arity; no column
// values are inspected at all. Surviving rows keep their input codes: by the
// filter theorem, the maximum of a kept row's code and the duplicate codes
// dropped before it is the kept row's own code, because the duplicate code
// is the smallest valid code.

#ifndef OVC_EXEC_DEDUP_H_
#define OVC_EXEC_DEDUP_H_

#include "exec/operator.h"

namespace ovc {

/// Removes rows whose full sort key equals the previous row's.
class DedupOperator : public Operator {
 public:
  /// `child` must be sorted on its full key with codes. Rows that are
  /// key-duplicates are dropped; payload columns of dropped rows are
  /// discarded (SQL DISTINCT semantics over the key).
  explicit DedupOperator(Operator* child)
      : child_(child), codec_(&child->schema()) {
    OVC_CHECK(child->sorted() && child->has_ovc());
  }

  void Open() override { child_->Open(); }

  bool Next(RowRef* out) override {
    RowRef ref;
    while (child_->Next(&ref)) {
      if (codec_.IsDuplicate(ref.ovc)) {
        ++duplicates_dropped_;
        continue;  // offset == arity: a duplicate, detected code-only
      }
      *out = ref;
      return true;
    }
    return false;
  }

  void Close() override { child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }
  bool sorted() const override { return true; }
  bool has_ovc() const override { return true; }

  /// Rows dropped so far.
  uint64_t duplicates_dropped() const { return duplicates_dropped_; }

 private:
  Operator* child_;
  OvcCodec codec_;
  uint64_t duplicates_dropped_ = 0;
};

}  // namespace ovc

#endif  // OVC_EXEC_DEDUP_H_
