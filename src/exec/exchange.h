// Order-preserving shuffle (Section 4.10).
//
// One-to-many "splitting" shuffle: each output partition is a selection
// from the overall input stream, so its codes follow from the filter
// theorem -- a per-partition accumulator absorbs the codes of rows routed
// elsewhere.
//
// Many-to-one "merging" shuffle: the standard merge logic, "very similar to
// a merge step in an external merge sort": a tree-of-losers priority queue
// exploits the input codes and produces output codes. Producer threads
// drive the inputs and hand row batches to the consumer through bounded
// queues; a single-threaded mode serves deterministic benchmarks.
//
// Many-to-many shuffle is deliberately not provided (the paper: "usually
// not recommended due to its danger ... of deadlock"); compose a merging
// and a splitting exchange instead.

#ifndef OVC_EXEC_EXCHANGE_H_
#define OVC_EXEC_EXCHANGE_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/counters.h"
#include "core/accumulator.h"
#include "exec/operator.h"
#include "pq/plain_loser_tree.h"
#include "sort/run.h"

namespace ovc {

/// Demultiplexes one sorted, coded stream into `partitions` sorted, coded
/// partition streams.
class SplitExchange {
 public:
  enum class Policy {
    kHashKey,     // co-locates equal keys (partition by key hash)
    kRoundRobin,  // balances rows
    kRangeFirstColumn,  // range-partitions on the first key column
  };

  /// `child` must be sorted with codes. For kRangeFirstColumn,
  /// `range_bounds` holds partitions-1 ascending upper bounds (exclusive)
  /// on the first key column.
  SplitExchange(Operator* child, uint32_t partitions, Policy policy,
                QueryCounters* counters,
                std::vector<uint64_t> range_bounds = {});

  /// The i-th partition stream. All partitions share the child; rows for
  /// not-yet-consumed partitions are buffered in memory.
  Operator* partition(uint32_t i);

  uint32_t partitions() const { return static_cast<uint32_t>(states_.size()); }

 private:
  friend class SplitPartitionStream;

  /// Per-partition buffered rows. Chunked so that row pointers handed to a
  /// consumer stay valid while other partitions keep buffering (a plain
  /// growable buffer would reallocate under the merger's feet).
  struct PartitionState {
    static constexpr size_t kChunkRows = 256;

    explicit PartitionState(uint32_t width_in) : width(width_in) {}

    void Push(const uint64_t* row, Ovc code) {
      if (chunks.empty() || chunks.back().size() >= kChunkRows) {
        chunks.emplace_back(width);
        // Reserve so appends never reallocate: pointers stay stable.
        chunks.back().Reserve(kChunkRows);
      }
      chunks.back().Append(row, code);
    }

    bool Pop(const uint64_t** row, Ovc* code) {
      if (!chunks.empty() && head_pos >= chunks.front().size() &&
          chunks.front().size() >= kChunkRows) {
        chunks.pop_front();
        head_pos = 0;
      }
      if (chunks.empty() || head_pos >= chunks.front().size()) return false;
      *row = chunks.front().row(head_pos);
      *code = chunks.front().code(head_pos);
      ++head_pos;
      return true;
    }

    bool HasRow() const {
      if (chunks.empty()) return false;
      if (head_pos < chunks.front().size()) return true;
      return chunks.size() > 1;
    }

    uint32_t width;
    std::deque<InMemoryRun> chunks;
    size_t head_pos = 0;
    OvcAccumulator acc;
  };

  /// Routes child rows to partition queues until partition `want` has a row
  /// or the child is exhausted.
  void PumpUntil(uint32_t want);
  uint32_t RouteOf(const uint64_t* row);

  Operator* child_;
  Policy policy_;
  QueryCounters* counters_;
  std::vector<uint64_t> range_bounds_;
  std::vector<std::unique_ptr<PartitionState>> states_;
  std::vector<std::unique_ptr<Operator>> streams_;
  uint64_t round_robin_next_ = 0;
  bool child_open_ = false;
  bool child_done_ = false;
};

/// A batch of rows travelling from a producer thread to the merge.
using RowBatch = InMemoryRun;

/// Bounded multi-producer (in practice single-producer) batch queue.
class BoundedBatchQueue {
 public:
  explicit BoundedBatchQueue(size_t capacity) : capacity_(capacity) {}

  /// Blocks while full; returns false when the queue was cancelled.
  bool Push(std::unique_ptr<RowBatch> batch);
  /// Blocks while empty; nullptr signals end of stream.
  std::unique_ptr<RowBatch> Pop();
  /// Unblocks producers and consumers; further pushes fail.
  void Cancel();

 private:
  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<std::unique_ptr<RowBatch>> items_;
  size_t capacity_;
  bool cancelled_ = false;
};

/// Many-to-one order-preserving merging exchange.
class MergeExchange : public Operator {
 public:
  struct Options {
    /// Producer threads per input; false pulls inputs inline (deterministic
    /// single-threaded mode for benchmarks).
    bool threaded;
    /// Rows per batch in threaded mode.
    uint32_t batch_rows;
    /// Batches buffered per input queue.
    size_t queue_batches;
    /// Ablation: merge with a plain tree (full comparisons, codeless
    /// output).
    bool use_ovc;

    Options()
        : threaded(true), batch_rows(1024), queue_batches(4), use_ovc(true) {}
  };

  /// All inputs must be sorted with codes and share the first input's
  /// schema. In threaded mode, each input pipeline must have been built
  /// with its own QueryCounters (pipelines run concurrently); `counters`
  /// meters only the merge itself.
  MergeExchange(std::vector<Operator*> inputs, QueryCounters* counters,
                Options options = Options());
  ~MergeExchange() override;

  void Open() override;
  bool Next(RowRef* out) override;
  void Close() override;
  const Schema& schema() const override { return inputs_[0]->schema(); }
  bool sorted() const override { return true; }
  bool has_ovc() const override { return options_.use_ovc; }

 private:
  class QueueMergeSource;

  void StopThreads();

  std::vector<Operator*> inputs_;
  QueryCounters* counters_;
  Options options_;
  OvcCodec codec_;
  KeyComparator comparator_;

  std::vector<std::unique_ptr<BoundedBatchQueue>> queues_;
  std::vector<std::thread> producers_;
  std::vector<std::unique_ptr<MergeSource>> sources_;
  std::unique_ptr<OvcMerger> merger_;
  std::unique_ptr<PlainMerger> plain_merger_;
};

}  // namespace ovc

#endif  // OVC_EXEC_EXCHANGE_H_
