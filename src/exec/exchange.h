// Order-preserving shuffle (Section 4.10).
//
// One-to-many "splitting" shuffle: each output partition is a selection
// from the overall input stream, so its codes follow from the filter
// theorem -- a per-partition accumulator absorbs the codes of rows routed
// elsewhere. An *unsorted* child is also accepted (codes are then all zero
// and the partition streams are unsorted): that is the front half of the
// parallel-sort plan shape, which partitions raw input across workers whose
// sorts then produce the codes.
//
// Many-to-one "merging" shuffle: the standard merge logic, "very similar to
// a merge step in an external merge sort": a tree-of-losers priority queue
// exploits the input codes and produces output codes. Producer threads
// drive the inputs and hand whole row batches to the consumer through
// bounded queues; a single-threaded mode serves deterministic benchmarks.
//
// Many-to-many shuffle is deliberately not provided (the paper: "usually
// not recommended due to its danger ... of deadlock"); compose a merging
// and a splitting exchange instead -- which is exactly what the planner's
// parallel plan shapes do (plan/physical_plan.h).

#ifndef OVC_EXEC_EXCHANGE_H_
#define OVC_EXEC_EXCHANGE_H_

#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "common/counters.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/accumulator.h"
#include "exec/operator.h"
#include "pq/plain_loser_tree.h"
#include "row/row_block.h"
#include "sort/run.h"

namespace ovc {

/// Demultiplexes one stream into `partitions` partition streams. A sorted,
/// coded child yields sorted, coded partition streams (filter theorem); an
/// unsorted child yields unsorted partition streams (zero codes).
///
/// Thread safety: the partition streams may be pulled from different
/// threads concurrently (each stream by at most one thread); routing over
/// the shared child is serialized internally. This is what lets a threaded
/// MergeExchange drive one worker pipeline per partition.
///
/// Child lifecycle: the shared child is opened lazily at the first pull and
/// closed exactly once per cycle -- when every partition stream has been
/// closed (consumers may run concurrently or drain the partitions one
/// after another; rows for not-yet-consumed partitions stay buffered until
/// their own stream closes). Closing the last stream also resets all
/// routing state, so the whole exchange supports a fresh open/pull/close
/// cycle (rescan), provided the child supports rescans.
class SplitExchange {
 public:
  enum class Policy {
    kHashKey,     // co-locates equal keys (partition by key-prefix hash)
    kRoundRobin,  // balances rows
    kRangeFirstColumn,  // range-partitions on the first key column
  };

  /// For kRangeFirstColumn, `range_bounds` holds partitions-1 ascending
  /// upper bounds (exclusive) on the first key column. For kHashKey,
  /// `hash_prefix` is the number of leading key columns hashed (0 = the
  /// child's full key arity); co-locating aggregation groups hashes only
  /// the grouping prefix.
  SplitExchange(Operator* child, uint32_t partitions, Policy policy,
                QueryCounters* counters,
                std::vector<uint64_t> range_bounds = {},
                uint32_t hash_prefix = 0);

  /// The i-th partition stream. All partitions share the child; rows for
  /// not-yet-consumed partitions are buffered in memory.
  Operator* partition(uint32_t i);

  uint32_t partitions() const { return static_cast<uint32_t>(states_.size()); }

 private:
  friend class SplitPartitionStream;

  /// Per-partition buffered rows. Chunked so that row pointers handed to a
  /// consumer stay valid while other partitions keep buffering (a plain
  /// growable buffer would reallocate under the merger's feet).
  struct PartitionState {
    static constexpr size_t kChunkRows = 256;

    explicit PartitionState(uint32_t width_in) : width(width_in) {}

    void Push(const uint64_t* row, Ovc code) {
      if (chunks.empty() || chunks.back().size() >= kChunkRows) {
        chunks.emplace_back(width);
        // Reserve so appends never reallocate: pointers stay stable.
        chunks.back().Reserve(kChunkRows);
      }
      chunks.back().Append(row, code);
      ++buffered;
    }

    bool Pop(const uint64_t** row, Ovc* code) {
      if (!chunks.empty() && head_pos >= chunks.front().size() &&
          chunks.front().size() >= kChunkRows) {
        chunks.pop_front();
        head_pos = 0;
      }
      if (chunks.empty() || head_pos >= chunks.front().size()) return false;
      *row = chunks.front().row(head_pos);
      *code = chunks.front().code(head_pos);
      ++head_pos;
      --buffered;
      return true;
    }

    void Reset() {
      chunks.clear();
      head_pos = 0;
      buffered = 0;
      acc.Reset();
    }

    uint32_t width;
    std::deque<InMemoryRun> chunks;
    size_t head_pos = 0;
    /// Rows currently buffered (pushed, not yet popped).
    size_t buffered = 0;
    OvcAccumulator acc;
  };

  /// Partition-stream lifecycle hooks (see "Child lifecycle" above).
  void StreamOpen(uint32_t index) OVC_EXCLUDES(mu_);
  void StreamClose(uint32_t index) OVC_EXCLUDES(mu_);

  /// Routes child rows to partition buffers until partition `want` holds at
  /// least `min_rows` rows or the child is exhausted. Caller holds mu_.
  void PumpUntilLocked(uint32_t want, size_t min_rows) OVC_REQUIRES(mu_);
  uint32_t RouteOf(const uint64_t* row) OVC_REQUIRES(mu_);
  /// One-row pull used by SplitPartitionStream.
  bool NextRow(uint32_t index, RowRef* out) OVC_EXCLUDES(mu_);
  /// Block pull: fills `out` with up to its capacity rows of partition
  /// `index` (copied out of the partition buffers).
  uint32_t NextRows(uint32_t index, RowBlock* out) OVC_EXCLUDES(mu_);

  Operator* child_;
  Policy policy_;
  QueryCounters* counters_;
  std::vector<uint64_t> range_bounds_;
  uint32_t hash_prefix_;
  bool child_has_ovc_;
  /// Fixed at construction (never resized); the PartitionState *contents*
  /// are mutated only under mu_, via methods annotated OVC_REQUIRES(mu_) --
  /// the analysis cannot express "pointee of vector element", so that half
  /// of the contract rides on the method annotations.
  std::vector<std::unique_ptr<PartitionState>> states_;
  std::vector<std::unique_ptr<Operator>> streams_;

  /// Serializes pumping, buffer access, and lifecycle transitions: the
  /// partition streams are pulled from concurrent producer threads but
  /// share the child and the routing state.
  Mutex mu_;
  /// Staging block for batched pumping (one virtual child NextBatch per
  /// block instead of one virtual Next per routed row).
  RowBlock pump_block_ OVC_GUARDED_BY(mu_);
  uint32_t pump_pos_ OVC_GUARDED_BY(mu_) = 0;
  uint64_t round_robin_next_ OVC_GUARDED_BY(mu_) = 0;
  bool child_open_ OVC_GUARDED_BY(mu_) = false;
  bool child_done_ OVC_GUARDED_BY(mu_) = false;
  /// Streams closed in the current cycle. The child is closed (and all
  /// routing state reset) when every stream has been closed -- NOT when
  /// the count of concurrently-open streams drops to zero, which would
  /// discard rows buffered for partitions drained one after another.
  std::vector<bool> stream_closed_ OVC_GUARDED_BY(mu_);
  uint32_t closed_streams_ OVC_GUARDED_BY(mu_) = 0;
};

/// A batch of rows travelling from a producer thread to the merge.
using RowBatch = InMemoryRun;

/// Bounded multi-producer (in practice single-producer) batch queue.
class BoundedBatchQueue {
 public:
  explicit BoundedBatchQueue(size_t capacity) : capacity_(capacity) {}

  /// Blocks while full; returns false when the queue was cancelled.
  bool Push(std::unique_ptr<RowBatch> batch) OVC_EXCLUDES(mu_);
  /// Blocks while empty; nullptr signals end of stream.
  std::unique_ptr<RowBatch> Pop() OVC_EXCLUDES(mu_);
  /// Unblocks producers and consumers; further pushes fail.
  void Cancel() OVC_EXCLUDES(mu_);

 private:
  Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<std::unique_ptr<RowBatch>> items_ OVC_GUARDED_BY(mu_);
  const size_t capacity_;
  bool cancelled_ OVC_GUARDED_BY(mu_) = false;
};

/// Many-to-one order-preserving merging exchange.
///
/// Supports re-open: Close() (or a fresh Open(), which resets any leftover
/// state first) returns the exchange to a pristine state, and a further
/// Open() restarts all inputs, provided they support rescans.
class MergeExchange : public Operator {
 public:
  struct Options {
    /// Producer threads per input; false pulls inputs inline (deterministic
    /// single-threaded mode for benchmarks).
    bool threaded;
    /// Rows per batch in threaded mode.
    uint32_t batch_rows;
    /// Batches buffered per input queue.
    size_t queue_batches;
    /// Ablation: merge with a plain tree (full comparisons, codeless
    /// output).
    bool use_ovc;

    Options()
        : threaded(true), batch_rows(1024), queue_batches(4), use_ovc(true) {}
  };

  /// All inputs must be sorted with codes and share the first input's
  /// schema. In threaded mode, each input pipeline must have been built
  /// with its own QueryCounters (pipelines run concurrently); `counters`
  /// meters only the merge itself.
  MergeExchange(std::vector<Operator*> inputs, QueryCounters* counters,
                Options options = Options());
  ~MergeExchange() override;

  void Open() override;
  bool Next(RowRef* out) override;
  uint32_t NextBatch(RowBlock* out) override;
  void Close() override;
  const Schema& schema() const override { return inputs_[0]->schema(); }
  bool sorted() const override { return true; }
  bool has_ovc() const override { return options_.use_ovc; }

 private:
  class QueueMergeSource;

  void StopThreads();
  /// Returns the exchange to its pre-Open state (joins producer threads,
  /// drops mergers/sources/queues). Safe to call in any state.
  void ResetState();

  std::vector<Operator*> inputs_;
  QueryCounters* counters_;
  Options options_;
  OvcCodec codec_;
  KeyComparator comparator_;

  std::vector<std::unique_ptr<BoundedBatchQueue>> queues_;
  std::vector<std::thread> producers_;
  std::vector<std::unique_ptr<MergeSource>> sources_;
  std::unique_ptr<OvcMerger> merger_;
  std::unique_ptr<PlainMerger> plain_merger_;
  /// True while inline (non-threaded) mode holds its inputs open; they are
  /// closed by ResetState (Close, or a re-entrant Open).
  bool inline_inputs_open_ = false;
};

}  // namespace ovc

#endif  // OVC_EXEC_EXCHANGE_H_
