#include "exec/dedup.h"

// Header-only today; this translation unit anchors the library target.
