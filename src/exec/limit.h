// Limit: pass the first N rows through, then stop.
//
// Order and codes survive a limit untouched: each surviving row's code is
// relative to its (also surviving) predecessor, and truncating the tail of
// a stream cannot invalidate codes already emitted. Combined with a sort
// this yields the planner's top-k plan shape.

#ifndef OVC_EXEC_LIMIT_H_
#define OVC_EXEC_LIMIT_H_

#include <cstdint>
#include <memory>

#include "exec/operator.h"

namespace ovc {

/// Emits at most `limit` rows of its child.
class LimitOperator : public Operator {
 public:
  /// `child` must outlive the operator.
  LimitOperator(Operator* child, uint64_t limit)
      : child_(child), limit_(limit) {}

  void Open() override {
    child_->Open();
    emitted_ = 0;
  }

  bool Next(RowRef* out) override {
    if (emitted_ >= limit_) return false;
    if (!child_->Next(out)) return false;
    ++emitted_;
    return true;
  }

  uint32_t NextBatch(RowBlock* out) override {
    if (emitted_ >= limit_) {
      out->Clear();
      return 0;
    }
    const uint64_t remaining = limit_ - emitted_;
    if (remaining >= out->capacity()) {
      // Whole block fits under the limit; nothing to truncate.
      const uint32_t n = child_->NextBatch(out);
      emitted_ += n;
      return n;
    }
    // Tail block: pull through a staging block capped at the remaining row
    // count, so the child never computes rows past the limit (a full-size
    // pull would make an expensive child materialize up to a block of rows
    // only to have them discarded here). The staging block is allocated
    // once at the first tail pull and only re-capped as `remaining`
    // shrinks on later calls.
    const uint32_t cap = static_cast<uint32_t>(remaining);
    if (tail_block_ == nullptr || tail_block_->allocated_rows() < cap) {
      tail_block_ = std::make_unique<RowBlock>(
          child_->schema().total_columns(), cap);
    }
    tail_block_->Clear();
    tail_block_->SetCapacity(cap);
    const uint32_t n = child_->NextBatch(tail_block_.get());
    out->Clear();
    if (n == 0) return 0;
    // Truncating the tail of a stream cannot invalidate codes already
    // emitted, and copying a span preserves codes verbatim.
    out->AppendContiguous(tail_block_->data(), tail_block_->codes(), n);
    emitted_ += n;
    return n;
  }

  void Close() override { child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }
  bool sorted() const override { return child_->sorted(); }
  bool has_ovc() const override { return child_->has_ovc(); }

 private:
  Operator* child_;
  uint64_t limit_;
  uint64_t emitted_ = 0;
  /// Remaining-capped staging for the stream's final partial blocks.
  std::unique_ptr<RowBlock> tail_block_;
};

}  // namespace ovc

#endif  // OVC_EXEC_LIMIT_H_
