// Limit: pass the first N rows through, then stop.
//
// Order and codes survive a limit untouched: each surviving row's code is
// relative to its (also surviving) predecessor, and truncating the tail of
// a stream cannot invalidate codes already emitted. Combined with a sort
// this yields the planner's top-k plan shape.

#ifndef OVC_EXEC_LIMIT_H_
#define OVC_EXEC_LIMIT_H_

#include <cstdint>

#include "exec/operator.h"

namespace ovc {

/// Emits at most `limit` rows of its child.
class LimitOperator : public Operator {
 public:
  /// `child` must outlive the operator.
  LimitOperator(Operator* child, uint64_t limit)
      : child_(child), limit_(limit) {}

  void Open() override {
    child_->Open();
    emitted_ = 0;
  }

  bool Next(RowRef* out) override {
    if (emitted_ >= limit_) return false;
    if (!child_->Next(out)) return false;
    ++emitted_;
    return true;
  }

  void Close() override { child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }
  bool sorted() const override { return child_->sorted(); }
  bool has_ovc() const override { return child_->has_ovc(); }

 private:
  Operator* child_;
  uint64_t limit_;
  uint64_t emitted_ = 0;
};

}  // namespace ovc

#endif  // OVC_EXEC_LIMIT_H_
