// Hash joins: the order-preserving in-memory variant (Section 4.9) and the
// spilling grace-hash baseline used by Figure 6's hash-based plan.
//
// Order-preserving: "hash-join preserves the sort order of its probe input
// if the build input and its hash table fit in memory. ... the hash table
// is much like an unsorted version of a database index in index
// nested-loops join." Output codes follow the same rules as lookup join
// with an unsorted inner: filter theorem over the probe stream, duplicate
// codes for additional matches.
//
// Grace: when the build input exceeds its memory budget, both inputs are
// hash-partitioned to temporary storage and each partition pair is joined
// in memory -- every row of both inputs is spilled once, which is exactly
// the behavior Figure 6's discussion charges the hash-based plan for.

#ifndef OVC_EXEC_HASH_JOIN_H_
#define OVC_EXEC_HASH_JOIN_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/counters.h"
#include "common/temp_file.h"
#include "core/accumulator.h"
#include "exec/fallback_policy.h"
#include "exec/merge_join.h"
#include "exec/operator.h"
#include "row/row_buffer.h"
#include "sort/external_sort.h"

namespace ovc {

/// Join flavors supported by the hash joins (probe side is "left").
enum class JoinTypeHash { kInner, kLeftOuter, kLeftSemi, kLeftAnti };

/// Hashes the first `columns` columns of `row` (counted in `counters`).
uint64_t HashKeyPrefix(const uint64_t* row, uint32_t columns,
                       QueryCounters* counters);

/// Order-preserving in-memory hash join: probe (left) input sorted with
/// codes; build (right) input fully resident.
class OrderPreservingHashJoin : public Operator {
 public:
  /// Joins on equality of the first `bind_columns` key columns of both
  /// sides. `memory_rows` is the build-side residency budget; exceeding it
  /// aborts (the compile-time guarantee of Section 4.9 is the caller's job).
  /// Output layout for kInner/kLeftOuter: probe key columns, probe payloads,
  /// all build columns (as payload), match indicator. kLeftSemi/kLeftAnti
  /// pass probe rows through.
  OrderPreservingHashJoin(Operator* probe, Operator* build,
                          uint32_t bind_columns, JoinTypeHash type,
                          uint64_t memory_rows, QueryCounters* counters);

  void Open() override;
  bool Next(RowRef* out) override;
  void Close() override;
  const Schema& schema() const override { return output_schema_; }
  bool sorted() const override { return true; }
  bool has_ovc() const override { return true; }

 private:
  Schema MakeOutputSchema() const;
  void BuildTable();
  void EmitCombined(const uint64_t* probe_row, const uint64_t* build_row,
                    Ovc code, RowRef* out);

  Operator* probe_;
  Operator* build_;
  uint32_t bind_columns_;
  JoinTypeHash type_;
  uint64_t memory_rows_;
  Schema output_schema_;
  OvcCodec probe_codec_;
  QueryCounters* counters_;

  RowBuffer build_rows_;
  std::unordered_multimap<uint64_t, uint32_t> table_;

  RowRef pref_;
  OvcAccumulator acc_;
  std::vector<uint32_t> matches_;
  size_t match_idx_ = 0;
  Ovc probe_code_ = 0;
  bool emitting_ = false;
  std::vector<uint64_t> probe_row_copy_;
  std::vector<uint64_t> out_row_;
};

/// Grace hash join baseline: unordered output, no codes, spills both inputs
/// when the build side exceeds memory. Blocking: consumes both children in
/// Open().
///
/// Graceful degradation: with FallbackPolicy::kSortMerge, a build side that
/// overflows `memory_rows` mid-Open does NOT trigger recursive partition
/// thrashing. Instead the rows already consumed plus the unread remainder
/// feed an ExternalSort on the join key (spilling coded, prefix-truncated
/// runs), the probe stream is sorted the same way, and a MergeJoin
/// continuation finishes the query with the paper's comparison savings.
/// The overflow is counted in QueryCounters::hash_join_fallbacks and the
/// output keeps this operator's layout, so callers cannot tell the plans
/// apart except by the counters (and the row order).
class GraceHashJoin : public Operator {
 public:
  /// `type` limited to kInner and kLeftSemi (what Figure 6's plans need).
  /// `sort_config` tunes the fallback sorts (only read under kSortMerge).
  GraceHashJoin(Operator* probe, Operator* build, uint32_t bind_columns,
                JoinTypeHash type, uint64_t memory_rows,
                QueryCounters* counters, TempFileManager* temp,
                uint32_t partitions = 16,
                FallbackPolicy fallback = FallbackPolicy::kPartition,
                SortConfig sort_config = SortConfig{});

  void Open() override;
  bool Next(RowRef* out) override;
  void Close() override;
  const Schema& schema() const override { return output_schema_; }
  bool sorted() const override { return false; }
  bool has_ovc() const override { return false; }

 private:
  struct PartitionPair {
    std::string probe_path;
    std::string build_path;
    uint32_t level = 0;
  };

  Schema MakeOutputSchema() const;
  /// Joins one resident (build RowBuffer) against a probe iterator.
  void JoinResident(const RowBuffer& build, const uint64_t* probe_row);
  bool ServeQueued(RowRef* out);
  bool ProcessNextPartition();
  /// Level-salted hash partition (recursion splits colliding keys).
  uint32_t PartitionOf(const uint64_t* row, uint32_t level);
  /// Splits a partition pair into `partitions_` sub-pairs at level+1.
  void Repartition(const PartitionPair& pair);

  /// kSortMerge overflow path: moves the resident build rows into an
  /// ExternalSort keyed on the bind columns (the rest of the build stream
  /// follows via Add in Open's consume loop).
  void BeginSortMergeFallback();
  /// Sorts the probe stream and stands up the MergeJoin continuation.
  void FinishSortMergeFallback();
  /// Serves one continuation row, remapped to this operator's layout.
  bool NextFallback(RowRef* out);
  /// Records `status` in the temp manager's error slot and stops output.
  void Degrade(const Status& status);

  Operator* probe_;
  Operator* build_;
  uint32_t bind_columns_;
  JoinTypeHash type_;
  uint64_t memory_rows_;
  uint32_t partitions_;
  FallbackPolicy fallback_;
  SortConfig sort_config_;
  Schema output_schema_;
  QueryCounters* counters_;
  TempFileManager* temp_;

  // In-memory fast path or partition queue.
  std::vector<PartitionPair> pending_;
  RowBuffer resident_build_;
  std::unordered_multimap<uint64_t, uint32_t> table_;
  RowBuffer output_queue_;
  size_t queue_pos_ = 0;
  bool in_memory_ = false;

  // Sort+merge continuation (kSortMerge overflow only). The schemas
  // reinterpret the unchanged row layouts with key_arity == bind_columns_
  // so both sides sort -- and MergeJoin binds -- on exactly the join key.
  bool fell_back_ = false;
  bool failed_ = false;
  std::unique_ptr<Schema> fb_probe_schema_;
  std::unique_ptr<Schema> fb_build_schema_;
  std::unique_ptr<ExternalSort> fb_probe_sort_;
  std::unique_ptr<ExternalSort> fb_build_sort_;
  std::unique_ptr<Operator> fb_probe_view_;
  std::unique_ptr<Operator> fb_build_view_;
  std::unique_ptr<MergeJoin> fb_join_;

  std::vector<uint64_t> out_row_;
};

}  // namespace ovc

#endif  // OVC_EXEC_HASH_JOIN_H_
