// Sort as a pipeline operator: the blocking wrapper around
// sort/external_sort.h.

#ifndef OVC_EXEC_SORT_OPERATOR_H_
#define OVC_EXEC_SORT_OPERATOR_H_

#include <memory>

#include "common/counters.h"
#include "common/temp_file.h"
#include "exec/operator.h"
#include "sort/external_sort.h"

namespace ovc {

/// Sorts its input on the schema's key prefix, producing a sorted stream
/// with offset-value codes (subject to SortConfig's ablation switches).
class SortOperator : public Operator {
 public:
  /// `child`, `counters` (optional), and `temp` must outlive the operator.
  SortOperator(Operator* child, QueryCounters* counters, TempFileManager* temp,
               SortConfig config = SortConfig())
      : child_(child), counters_(counters), temp_(temp), config_(config) {}

  void Open() override {
    failed_ = false;
    child_->Open();
    sort_ = std::make_unique<ExternalSort>(&child_->schema(), counters_, temp_,
                                           config_);
    // Batched intake: drain the child block-wise so run generation's memory
    // buffer fills with bulk copies instead of per-row virtual pulls.
    RowBlock block(child_->schema().total_columns());
    while (child_->NextBatch(&block) > 0) {
      sort_->AddBlock(block);
    }
    // A spill failure surfaces here (ExternalSort defers intake errors to
    // Finish). Degrade instead of aborting: record the first error in the
    // temp manager's slot and produce no rows -- the executor reports it.
    const Status st = sort_->Finish();
    if (!st.ok()) {
      failed_ = true;
      temp_->RecordError(st);
    }
  }

  bool Next(RowRef* out) override { return !failed_ && sort_->Next(out); }

  uint32_t NextBatch(RowBlock* out) override {
    return failed_ ? 0 : sort_->NextBlock(out);
  }

  void Close() override {
    if (sort_ != nullptr) {
      last_spilled_runs_ = sort_->spilled_runs();
    }
    sort_.reset();
    child_->Close();
  }

  const Schema& schema() const override { return child_->schema(); }
  bool sorted() const override { return true; }
  bool has_ovc() const override {
    return config_.use_ovc || config_.naive_output_codes;
  }

  /// Runs spilled by the most recent execution (survives Close()).
  uint64_t spilled_runs() const {
    return sort_ == nullptr ? last_spilled_runs_ : sort_->spilled_runs();
  }

 private:
  Operator* child_;
  QueryCounters* counters_;
  TempFileManager* temp_;
  SortConfig config_;
  std::unique_ptr<ExternalSort> sort_;
  uint64_t last_spilled_runs_ = 0;
  bool failed_ = false;
};

}  // namespace ovc

#endif  // OVC_EXEC_SORT_OPERATOR_H_
