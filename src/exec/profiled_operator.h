// ProfiledOperator: the thin instrumentation wrapper the profiling layer
// inserts around every operator the planner builds (PlannerOptions::profile).
//
// The wrapper forwards the full Operator contract unchanged -- schema,
// sorted()/has_ovc(), the RowRef/RowBlock lifetime rules -- and meters the
// wrapped operator from the outside: inclusive wall ticks around
// Open/Next/NextBatch/Close plus rows and batches produced. The Next /
// NextBatch path times a deterministic sample of its calls (every call
// through the warmup window, then every kTimeSampleEvery-th); rows and
// batches are counted on every call. OperatorStats::scaled_next_ticks()
// scales the sampled time back to the full call count, which keeps the
// instrumentation within its <=2% budget on hot batched pipelines even on
// machines where a tick read stalls the out-of-order window. Counter
// attribution needs no wrapper logic at all: when profiling, the planner
// hands each operator's constructor the QueryCounters slice of its profile
// node instead of the shared session/worker instance, so comparisons,
// hashes, and spills land on the operator that did the work.
//
// Thread-safety is by construction, not by atomics: each OperatorStats
// slice is written only by the one thread that drives its wrapped operator
// (a worker pipeline by its producer thread, a split partition stream by
// the worker pulling it, the merging exchange by the consumer), exactly the
// same ownership discipline as the per-worker QueryCounters contract.
// QueryProfile::FinishRun aggregates after every producer has joined.

#ifndef OVC_EXEC_PROFILED_OPERATOR_H_
#define OVC_EXEC_PROFILED_OPERATOR_H_

#include "common/profile.h"
#include "exec/operator.h"

namespace ovc {

class ProfiledOperator final : public Operator {
 public:
  /// Neither pointer is owned; `child` and `stats` must outlive the
  /// wrapper (PhysicalPlan owns both, and destroys wrappers before the
  /// profile).
  ProfiledOperator(Operator* child, OperatorStats* stats)
      : child_(child), stats_(stats) {}

  void Open() override {
    const uint64_t t0 = ProfileTicks();
    child_->Open();
    stats_->open_ticks += ProfileTicks() - t0;
  }

  bool Next(RowRef* out) override {
    if (!TimeThisCall()) {
      const bool ok = child_->Next(out);
      stats_->rows_out += ok ? 1 : 0;
      return ok;
    }
    const uint64_t t0 = ProfileTicks();
    const bool ok = child_->Next(out);
    stats_->next_ticks += ProfileTicks() - t0;
    ++stats_->next_timed;
    stats_->rows_out += ok ? 1 : 0;
    return ok;
  }

  uint32_t NextBatch(RowBlock* out) override {
    if (!TimeThisCall()) {
      const uint32_t n = child_->NextBatch(out);
      stats_->rows_out += n;
      stats_->batches_out += n > 0 ? 1 : 0;
      return n;
    }
    const uint64_t t0 = ProfileTicks();
    const uint32_t n = child_->NextBatch(out);
    stats_->next_ticks += ProfileTicks() - t0;
    ++stats_->next_timed;
    stats_->rows_out += n;
    stats_->batches_out += n > 0 ? 1 : 0;
    return n;
  }

  void Close() override {
    const uint64_t t0 = ProfileTicks();
    child_->Close();
    stats_->close_ticks += ProfileTicks() - t0;
  }

  const Schema& schema() const override { return child_->schema(); }
  bool sorted() const override { return child_->sorted(); }
  bool has_ovc() const override { return child_->has_ovc(); }

 private:
  /// The deterministic timing sample: every call while the stream is short
  /// (tests and small queries get exact times), then every
  /// kTimeSampleEvery-th. Also advances the call counter.
  bool TimeThisCall() {
    const uint64_t seq = stats_->next_calls++;
    return seq < kTimeWarmupCalls || (seq & (kTimeSampleEvery - 1)) == 0;
  }

  Operator* child_;
  OperatorStats* stats_;
};

}  // namespace ovc

#endif  // OVC_EXEC_PROFILED_OPERATOR_H_
