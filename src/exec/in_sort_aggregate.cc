#include "exec/in_sort_aggregate.h"

#include <cstring>

#include "sort/run_generation.h"

namespace ovc {

namespace {

/// RunSink appending to an in-memory run.
class MemorySink : public RunSink {
 public:
  explicit MemorySink(InMemoryRun* run) : run_(run) {}
  void Accept(const uint64_t* row, Ovc code) override {
    run_->Append(row, code);
  }

 private:
  InMemoryRun* run_;
};

/// RunSink appending to a spilled run file. The RunSink interface cannot
/// return errors, so the first append failure is latched for the caller
/// to check after the collapse pass.
class FileSink : public RunSink {
 public:
  explicit FileSink(RunFileWriter* writer) : writer_(writer) {}
  void Accept(const uint64_t* row, Ovc code) override {
    if (!status_.ok()) return;
    status_ = writer_->Append(row, code);
  }
  const Status& status() const { return status_; }

 private:
  RunFileWriter* writer_;
  Status status_ = Status::Ok();
};

}  // namespace

Schema InSortAggregate::MakeStateSchema(const Schema& in,
                                        uint32_t group_prefix,
                                        size_t num_aggregates) {
  std::vector<SortDirection> dirs;
  for (uint32_t c = 0; c < group_prefix; ++c) {
    // Group columns inside the child's sort key keep their direction;
    // others sort ascending.
    dirs.push_back(c < in.key_arity() ? in.direction(c)
                                      : SortDirection::kAscending);
  }
  return Schema(std::move(dirs), static_cast<uint32_t>(num_aggregates));
}

InSortAggregate::InSortAggregate(Operator* child, uint32_t group_prefix,
                                 std::vector<AggregateSpec> aggregates,
                                 QueryCounters* counters,
                                 TempFileManager* temp, SortConfig config)
    : child_(child),
      group_prefix_(group_prefix),
      aggregates_(std::move(aggregates)),
      state_schema_(
          MakeStateSchema(child->schema(), group_prefix, aggregates_.size())),
      counters_(counters),
      temp_(temp),
      config_(config),
      codec_(&state_schema_),
      comparator_(&state_schema_, counters),
      buffer_(state_schema_.total_columns()),
      state_row_(state_schema_.total_columns(), 0) {
  OVC_CHECK(group_prefix >= 1);
  OVC_CHECK(group_prefix <= child->schema().total_columns());
  OVC_CHECK(!config_.replacement_selection);
  for (const AggregateSpec& spec : aggregates_) {
    OVC_CHECK(spec.fn == AggFn::kCount ||
              spec.input_col < child->schema().total_columns());
    switch (spec.fn) {
      case AggFn::kCount:
      case AggFn::kSum:
        merge_fns_.push_back(StateMergeFn::kSum);
        break;
      case AggFn::kMin:
        merge_fns_.push_back(StateMergeFn::kMin);
        break;
      case AggFn::kMax:
        merge_fns_.push_back(StateMergeFn::kMax);
        break;
    }
  }
}

void InSortAggregate::TransformRow(const uint64_t* row) {
  std::memcpy(state_row_.data(), row, group_prefix_ * sizeof(uint64_t));
  for (size_t a = 0; a < aggregates_.size(); ++a) {
    switch (aggregates_[a].fn) {
      case AggFn::kCount:
        state_row_[group_prefix_ + a] = 1;
        break;
      case AggFn::kSum:
      case AggFn::kMin:
      case AggFn::kMax:
        state_row_[group_prefix_ + a] = row[aggregates_[a].input_col];
        break;
    }
  }
}

void InSortAggregate::CollapseBufferInto(RunSink* sink) {
  BatchSorter sorter(&state_schema_, counters_, config_.run_gen,
                     config_.mini_run_rows, /*use_ovc=*/true,
                     /*naive_codes=*/false);
  CollapsingSink collapser(&state_schema_, merge_fns_, sink);
  sorter.Sort(buffer_, &collapser);
  collapser.Flush();
  buffer_.Clear();
}

Status InSortAggregate::SpillBuffer() {
  if (buffer_.empty()) return Status::Ok();
  RunFileWriter writer(&state_schema_, counters_);
  const std::string path = temp_->NewPath("isa-run");
  OVC_RETURN_IF_ERROR(writer.Open(path));
  FileSink sink(&writer);
  CollapseBufferInto(&sink);
  OVC_RETURN_IF_ERROR(sink.status());
  OVC_RETURN_IF_ERROR(writer.Close());
  runs_.push_back(SpilledRun{path, writer.rows()});
  return Status::Ok();
}

Status InSortAggregate::PrepareMerge() {
  // Cascade intermediate merges (collapsing at every level) while the run
  // count exceeds the fan-in.
  while (runs_.size() > config_.fan_in) {
    std::vector<SpilledRun> next_level;
    for (size_t begin = 0; begin < runs_.size(); begin += config_.fan_in) {
      const size_t count =
          std::min<size_t>(config_.fan_in, runs_.size() - begin);
      if (count == 1) {
        next_level.push_back(runs_[begin]);
        continue;
      }
      std::vector<std::unique_ptr<RunFileReader>> readers;
      std::vector<MergeSource*> sources;
      for (size_t i = 0; i < count; ++i) {
        readers.push_back(std::make_unique<RunFileReader>(&state_schema_, temp_));
        OVC_RETURN_IF_ERROR(readers.back()->Open(runs_[begin + i].path));
        sources.push_back(readers.back().get());
      }
      OvcMerger merger(&codec_, &comparator_, sources);
      // Adapt the merger to a MergeSource for the collapser.
      struct MergerSource : MergeSource {
        explicit MergerSource(OvcMerger* m) : merger(m) {}
        bool Next(const uint64_t** row, Ovc* code) override {
          RowRef ref;
          if (!merger->Next(&ref)) return false;
          *row = ref.cols;
          *code = ref.ovc;
          return true;
        }
        OvcMerger* merger;
      } merger_source(&merger);
      CollapsingSource collapser(&state_schema_, merge_fns_, &merger_source);
      RunFileWriter writer(&state_schema_, counters_);
      const std::string path = temp_->NewPath("isa-merge");
      OVC_RETURN_IF_ERROR(writer.Open(path));
      const uint64_t* row = nullptr;
      Ovc code = 0;
      while (collapser.Next(&row, &code)) {
        OVC_RETURN_IF_ERROR(writer.Append(row, code));
      }
      OVC_RETURN_IF_ERROR(writer.Close());
      next_level.push_back(SpilledRun{path, writer.rows()});
    }
    runs_ = std::move(next_level);
  }

  // Final merge, collapsed on the fly.
  std::vector<MergeSource*> sources;
  for (const SpilledRun& run : runs_) {
    readers_.push_back(std::make_unique<RunFileReader>(&state_schema_, temp_));
    OVC_RETURN_IF_ERROR(readers_.back()->Open(run.path));
    sources.push_back(readers_.back().get());
  }
  merger_ = std::make_unique<OvcMerger>(&codec_, &comparator_, sources);
  struct FinalMergerSource : MergeSource {
    explicit FinalMergerSource(OvcMerger* m) : merger(m) {}
    bool Next(const uint64_t** row, Ovc* code) override {
      RowRef ref;
      if (!merger->Next(&ref)) return false;
      *row = ref.cols;
      *code = ref.ovc;
      return true;
    }
    OvcMerger* merger;
  };
  final_merger_source_ = std::make_unique<FinalMergerSource>(merger_.get());
  collapsing_output_ = std::make_unique<CollapsingSource>(
      &state_schema_, merge_fns_, final_merger_source_.get());
  return Status::Ok();
}

void InSortAggregate::Degrade(const Status& status) {
  failed_ = true;
  temp_->RecordError(status);
}

void InSortAggregate::Open() {
  runs_.clear();
  buffer_.Clear();
  memory_run_.reset();
  memory_source_.reset();
  readers_.clear();
  merger_.reset();
  collapsing_output_.reset();
  failed_ = false;

  child_->Open();
  RowRef ref;
  while (child_->Next(&ref)) {
    TransformRow(ref.cols);
    buffer_.AppendRow(state_row_.data());
    if (buffer_.size() >= config_.memory_rows) {
      const Status st = SpillBuffer();
      if (!st.ok()) {
        child_->Close();
        Degrade(st);
        return;
      }
    }
  }
  child_->Close();

  if (runs_.empty()) {
    memory_run_ = std::make_unique<InMemoryRun>(state_schema_.total_columns());
    MemorySink sink(memory_run_.get());
    CollapseBufferInto(&sink);
    memory_source_ = std::make_unique<InMemoryRunSource>(memory_run_.get());
    return;
  }
  Status st = SpillBuffer();
  if (st.ok()) st = PrepareMerge();
  if (!st.ok()) Degrade(st);
}

bool InSortAggregate::Next(RowRef* out) {
  if (failed_) return false;
  const uint64_t* row = nullptr;
  Ovc code = 0;
  if (memory_source_ != nullptr) {
    if (!memory_source_->Next(&row, &code)) return false;
  } else if (collapsing_output_ != nullptr) {
    if (!collapsing_output_->Next(&row, &code)) return false;
  } else {
    return false;
  }
  out->cols = row;
  out->ovc = code;
  return true;
}

void InSortAggregate::Close() {
  memory_run_.reset();
  memory_source_.reset();
  collapsing_output_.reset();
  final_merger_source_.reset();
  merger_.reset();
  readers_.clear();
}

}  // namespace ovc
