#include "exec/exchange.h"

#include "common/metrics.h"
#include "common/trace.h"
#include "exec/hash_join.h"  // HashKeyPrefix
#include "pq/plain_loser_tree.h"

namespace ovc {

namespace {

/// Operator view of one split partition.
class SplitPartitionStreamImpl : public Operator {
 public:
  SplitPartitionStreamImpl(SplitExchange* exchange, uint32_t index,
                           const Schema* schema, bool sorted, bool has_ovc)
      : exchange_(exchange),
        index_(index),
        schema_(schema),
        sorted_(sorted),
        has_ovc_(has_ovc) {}

  void Open() override;
  bool Next(RowRef* out) override;
  uint32_t NextBatch(RowBlock* out) override;
  void Close() override;
  const Schema& schema() const override { return *schema_; }
  bool sorted() const override { return sorted_; }
  bool has_ovc() const override { return has_ovc_; }

 private:
  SplitExchange* exchange_;
  uint32_t index_;
  const Schema* schema_;
  bool sorted_;
  bool has_ovc_;
};

}  // namespace

// SplitPartitionStreamImpl needs SplitExchange internals; the friend
// declaration names SplitPartitionStream, so route through member helpers.
class SplitPartitionStream {
 public:
  static void Open(SplitExchange* ex, uint32_t index) {
    ex->StreamOpen(index);
  }
  static void Close(SplitExchange* ex, uint32_t index) {
    ex->StreamClose(index);
  }
  static bool Next(SplitExchange* ex, uint32_t index, RowRef* out) {
    return ex->NextRow(index, out);
  }
  static uint32_t NextBatch(SplitExchange* ex, uint32_t index, RowBlock* out) {
    return ex->NextRows(index, out);
  }
};

namespace {

void SplitPartitionStreamImpl::Open() {
  SplitPartitionStream::Open(exchange_, index_);
}

bool SplitPartitionStreamImpl::Next(RowRef* out) {
  return SplitPartitionStream::Next(exchange_, index_, out);
}

uint32_t SplitPartitionStreamImpl::NextBatch(RowBlock* out) {
  OVC_DCHECK(out->width() == schema_->total_columns());
  return SplitPartitionStream::NextBatch(exchange_, index_, out);
}

void SplitPartitionStreamImpl::Close() {
  SplitPartitionStream::Close(exchange_, index_);
}

}  // namespace

SplitExchange::SplitExchange(Operator* child, uint32_t partitions,
                             Policy policy, QueryCounters* counters,
                             std::vector<uint64_t> range_bounds,
                             uint32_t hash_prefix)
    : child_(child),
      policy_(policy),
      counters_(counters),
      range_bounds_(std::move(range_bounds)),
      hash_prefix_(hash_prefix == 0 ? child->schema().key_arity()
                                    : hash_prefix),
      child_has_ovc_(child->sorted() && child->has_ovc()),
      pump_block_(child->schema().total_columns()) {
  OVC_CHECK(partitions >= 1);
  OVC_CHECK(hash_prefix_ <= child->schema().key_arity());
  if (policy == Policy::kRangeFirstColumn) {
    OVC_CHECK(range_bounds_.size() + 1 == partitions);
    // Range routing reads the first key column of a stream ordered on it.
    OVC_CHECK(child->sorted());
  }
  for (uint32_t p = 0; p < partitions; ++p) {
    auto state =
        std::make_unique<PartitionState>(child->schema().total_columns());
    state->acc.Reset();
    states_.push_back(std::move(state));
    streams_.push_back(std::make_unique<SplitPartitionStreamImpl>(
        this, p, &child->schema(), child->sorted(), child_has_ovc_));
  }
  stream_closed_.assign(partitions, false);
}

Operator* SplitExchange::partition(uint32_t i) {
  OVC_CHECK(i < streams_.size());
  return streams_[i].get();
}

void SplitExchange::StreamOpen(uint32_t index) {
  MutexLock lock(mu_);
  if (stream_closed_[index]) {
    // Re-opened before the cycle completed: it no longer counts as closed.
    stream_closed_[index] = false;
    --closed_streams_;
  }
}

void SplitExchange::StreamClose(uint32_t index) {
  MutexLock lock(mu_);
  if (stream_closed_[index]) return;
  stream_closed_[index] = true;
  ++closed_streams_;
  if (closed_streams_ == partitions() && child_open_) {
    // Every partition stream has been closed: balance the lazy Open() with
    // exactly one Close() and reset all routing state so the exchange
    // supports a fresh open/pull/close cycle over a rescannable child.
    child_->Close();
    child_open_ = false;
    child_done_ = false;
    pump_block_.Clear();
    pump_pos_ = 0;
    round_robin_next_ = 0;
    for (auto& state : states_) state->Reset();
    stream_closed_.assign(partitions(), false);
    closed_streams_ = 0;
  }
}

uint32_t SplitExchange::RouteOf(const uint64_t* row) {
  const uint32_t p_count = partitions();
  switch (policy_) {
    case Policy::kHashKey:
      return static_cast<uint32_t>(
          HashKeyPrefix(row, hash_prefix_, counters_) % p_count);
    case Policy::kRoundRobin:
      return static_cast<uint32_t>(round_robin_next_++ % p_count);
    case Policy::kRangeFirstColumn: {
      const uint64_t v = child_->schema().NormalizedAt(row, 0);
      uint32_t p = 0;
      while (p < range_bounds_.size() && v >= range_bounds_[p]) ++p;
      return p;
    }
  }
  return 0;
}

void SplitExchange::PumpUntilLocked(uint32_t want, size_t min_rows) {
  if (!child_open_) {
    child_->Open();
    child_open_ = true;
  }
  auto& want_state = *states_[want];
  while (want_state.buffered < min_rows && !child_done_) {
    if (pump_pos_ >= pump_block_.size()) {
      // Refill the staging block: one virtual call per block of routed
      // rows. The previous block's rows were copied into partition
      // buffers, so invalidating them here is safe.
      if (child_->NextBatch(&pump_block_) == 0) {
        child_done_ = true;
        break;
      }
      pump_pos_ = 0;
    }
    const uint64_t* row = pump_block_.row(pump_pos_);
    const Ovc code = pump_block_.code(pump_pos_);
    ++pump_pos_;
    const uint32_t p = RouteOf(row);
    auto& target = *states_[p];
    if (child_has_ovc_) {
      // Filter theorem per partition: the routed row's output code combines
      // the codes of rows routed elsewhere since this partition's last row;
      // every other partition absorbs this row's code.
      target.Push(row, target.acc.Combine(code));
      target.acc.Reset();
      for (uint32_t q = 0; q < partitions(); ++q) {
        if (q != p) states_[q]->acc.Absorb(code);
      }
    } else {
      // Unsorted child: no codes to maintain, rows route as-is.
      target.Push(row, 0);
    }
  }
}

bool SplitExchange::NextRow(uint32_t index, RowRef* out) {
  MutexLock lock(mu_);
  PumpUntilLocked(index, 1);
  auto& state = *states_[index];
  const uint64_t* row = nullptr;
  Ovc code = 0;
  if (!state.Pop(&row, &code)) return false;
  out->cols = row;
  out->ovc = code;
  return true;
}

uint32_t SplitExchange::NextRows(uint32_t index, RowBlock* out) {
  MutexLock lock(mu_);
  out->Clear();
  PumpUntilLocked(index, out->capacity());
  auto& state = *states_[index];
  const uint64_t* row = nullptr;
  Ovc code = 0;
  while (!out->full() && state.Pop(&row, &code)) {
    out->Append(row, code);
  }
  return out->size();
}

bool BoundedBatchQueue::Push(std::unique_ptr<RowBatch> batch) {
  MutexLock lock(mu_);
  // Explicit condition loops (not a wait-predicate lambda) keep the guarded
  // reads in this function's body, where the thread-safety analysis can see
  // the lock is held.
  while (!cancelled_ && items_.size() >= capacity_) not_full_.Wait(mu_);
  if (cancelled_) return false;
  items_.push_back(std::move(batch));
  not_empty_.NotifyOne();
  return true;
}

std::unique_ptr<RowBatch> BoundedBatchQueue::Pop() {
  MutexLock lock(mu_);
  while (!cancelled_ && items_.empty()) not_empty_.Wait(mu_);
  if (items_.empty()) return nullptr;  // cancelled
  std::unique_ptr<RowBatch> batch = std::move(items_.front());
  items_.pop_front();
  not_full_.NotifyOne();
  return batch;
}

void BoundedBatchQueue::Cancel() {
  MutexLock lock(mu_);
  cancelled_ = true;
  not_full_.NotifyAll();
  not_empty_.NotifyAll();
}

/// MergeSource fed by a producer thread's batch queue.
///
/// RowRef lifetime (see exec/operator.h): popping the next batch frees the
/// previous one, so a row pointer handed out here dies on the very next
/// Next() call that crosses a batch boundary. Consumers that keep a row
/// (the merge's loser tree keeps one candidate per input between pulls;
/// anything downstream of the exchange) must copy before pulling again.
class MergeExchange::QueueMergeSource : public MergeSource {
 public:
  explicit QueueMergeSource(BoundedBatchQueue* queue) : queue_(queue) {}

  bool Next(const uint64_t** row, Ovc* code) override {
    while (true) {
      if (batch_ != nullptr && pos_ < batch_->size()) {
        *row = batch_->row(pos_);
        *code = batch_->code(pos_);
        ++pos_;
        return true;
      }
      if (done_) return false;
      batch_ = queue_->Pop();  // frees the previous batch and its rows
      pos_ = 0;
      if (batch_ == nullptr) {
        done_ = true;
        return false;
      }
    }
  }

 private:
  BoundedBatchQueue* queue_;
  std::unique_ptr<RowBatch> batch_;
  size_t pos_ = 0;
  bool done_ = false;
};

MergeExchange::MergeExchange(std::vector<Operator*> inputs,
                             QueryCounters* counters, Options options)
    : inputs_(std::move(inputs)),
      counters_(counters),
      options_(options),
      codec_(&inputs_[0]->schema()),
      comparator_(&inputs_[0]->schema(), counters) {
  OVC_CHECK(!inputs_.empty());
  for (Operator* in : inputs_) {
    OVC_CHECK(in->sorted() && in->has_ovc());
    OVC_CHECK(in->schema() == inputs_[0]->schema());
  }
}

// Full ResetState, not just StopThreads: destruction after Open() without
// Close() must still balance inline-opened inputs' lifecycles (threaded
// producers close their own input when the queues are cancelled).
MergeExchange::~MergeExchange() { ResetState(); }

void MergeExchange::Open() {
  // Re-entrant: a second Open() -- after Close(), or even without one --
  // must not stack fresh queues/producers/sources onto leftover state.
  ResetState();
  std::vector<MergeSource*> raw_sources;
  if (options_.threaded) {
    for (Operator* in : inputs_) {
      queues_.push_back(
          std::make_unique<BoundedBatchQueue>(options_.queue_batches));
      BoundedBatchQueue* queue = queues_.back().get();
      const uint32_t batch_rows = options_.batch_rows;
      // Capture the consumer thread's trace context here so the producer
      // span parents under whatever span is driving this Open() -- the
      // trace then shows the worker threads nested inside the query even
      // though they never share a stack with it.
      const trace::ThreadContext trace_ctx = trace::CaptureContext();
      producers_.emplace_back([in, queue, batch_rows, trace_ctx] {
        trace::ScopedThreadContext adopt(trace_ctx);
        OVC_TRACE_SPAN("exchange.producer");
        metrics::Gauge& running = OVC_METRIC_GAUGE(
            "exchange.producers_running", "Producer threads currently live");
        running.Add(1);
        metrics::Counter& batches_metric = OVC_METRIC_COUNTER(
            "exchange.producer_batches", "Batches handed across exchanges");
        in->Open();
        const uint32_t width = in->schema().total_columns();
        // Pull whole blocks from the input pipeline (one virtual NextBatch
        // per block) and hand each on as one queue batch.
        RowBlock block(width, batch_rows);
        bool alive = true;
        uint32_t n;
        while (alive && (n = in->NextBatch(&block)) > 0) {
          auto batch = std::make_unique<RowBatch>(width);
          batch->Reserve(n);
          batch->AppendBlock(block);
          alive = queue->Push(std::move(batch));
          batches_metric.Increment();
        }
        if (alive) {
          queue->Push(nullptr);  // end-of-stream sentinel
        }
        in->Close();
        running.Sub(1);
      });
      sources_.push_back(std::make_unique<QueueMergeSource>(queue));
      raw_sources.push_back(sources_.back().get());
    }
  } else {
    for (Operator* in : inputs_) {
      in->Open();
      sources_.push_back(std::make_unique<OperatorMergeSource>(in));
      raw_sources.push_back(sources_.back().get());
    }
    inline_inputs_open_ = true;
  }
  if (options_.use_ovc) {
    merger_ = std::make_unique<OvcMerger>(&codec_, &comparator_, raw_sources);
  } else {
    plain_merger_ = std::make_unique<PlainMerger>(&codec_, &comparator_,
                                                  raw_sources);
  }
}

bool MergeExchange::Next(RowRef* out) {
  if (merger_ != nullptr) return merger_->Next(out);
  if (plain_merger_ != nullptr) return plain_merger_->Next(out);
  return false;
}

uint32_t MergeExchange::NextBatch(RowBlock* out) {
  OVC_DCHECK(out->width() == schema().total_columns());
  if (merger_ != nullptr) return merger_->NextBlock(out);
  out->Clear();
  if (plain_merger_ != nullptr) {
    RowRef ref;
    while (!out->full() && plain_merger_->Next(&ref)) {
      out->Append(ref.cols, ref.ovc);
    }
  }
  return out->size();
}

void MergeExchange::StopThreads() {
  for (auto& queue : queues_) {
    queue->Cancel();
  }
  for (std::thread& t : producers_) {
    if (t.joinable()) t.join();
  }
  producers_.clear();
  queues_.clear();
}

void MergeExchange::ResetState() {
  StopThreads();
  merger_.reset();
  plain_merger_.reset();
  sources_.clear();
  // Threaded producers close their own input at thread exit (normal or
  // cancelled); inline mode opened the inputs on this thread, so balance
  // those opens here -- also on the Open()-without-Close() path, where a
  // leaked open would break the re-open contract.
  if (inline_inputs_open_) {
    for (Operator* in : inputs_) in->Close();
    inline_inputs_open_ = false;
  }
}

void MergeExchange::Close() { ResetState(); }

}  // namespace ovc
