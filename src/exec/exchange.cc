#include "exec/exchange.h"

#include "exec/hash_join.h"  // HashKeyPrefix
#include "pq/plain_loser_tree.h"

namespace ovc {

namespace {

/// Operator view of one split partition.
class SplitPartitionStreamImpl : public Operator {
 public:
  SplitPartitionStreamImpl(SplitExchange* exchange, uint32_t index,
                           const Schema* schema)
      : exchange_(exchange), index_(index), schema_(schema) {}

  void Open() override {}
  bool Next(RowRef* out) override;
  void Close() override {}
  const Schema& schema() const override { return *schema_; }
  bool sorted() const override { return true; }
  bool has_ovc() const override { return true; }

 private:
  SplitExchange* exchange_;
  uint32_t index_;
  const Schema* schema_;
};

}  // namespace

// SplitPartitionStreamImpl::Next needs SplitExchange internals; the friend
// declaration names SplitPartitionStream, so route through a member helper.
class SplitPartitionStream {
 public:
  static bool Next(SplitExchange* ex, uint32_t index, RowRef* out) {
    ex->PumpUntil(index);
    auto& state = *ex->states_[index];
    const uint64_t* row = nullptr;
    Ovc code = 0;
    if (!state.Pop(&row, &code)) return false;
    out->cols = row;
    out->ovc = code;
    return true;
  }
};

namespace {

bool SplitPartitionStreamImplNext(SplitExchange* ex, uint32_t index,
                                  RowRef* out) {
  return SplitPartitionStream::Next(ex, index, out);
}

}  // namespace

bool SplitPartitionStreamImpl::Next(RowRef* out) {
  return SplitPartitionStreamImplNext(exchange_, index_, out);
}

SplitExchange::SplitExchange(Operator* child, uint32_t partitions,
                             Policy policy, QueryCounters* counters,
                             std::vector<uint64_t> range_bounds)
    : child_(child),
      policy_(policy),
      counters_(counters),
      range_bounds_(std::move(range_bounds)) {
  OVC_CHECK(child->sorted() && child->has_ovc());
  OVC_CHECK(partitions >= 1);
  if (policy == Policy::kRangeFirstColumn) {
    OVC_CHECK(range_bounds_.size() + 1 == partitions);
  }
  for (uint32_t p = 0; p < partitions; ++p) {
    auto state =
        std::make_unique<PartitionState>(child->schema().total_columns());
    state->acc.Reset();
    states_.push_back(std::move(state));
    streams_.push_back(std::make_unique<SplitPartitionStreamImpl>(
        this, p, &child->schema()));
  }
}

Operator* SplitExchange::partition(uint32_t i) {
  OVC_CHECK(i < streams_.size());
  return streams_[i].get();
}

uint32_t SplitExchange::RouteOf(const uint64_t* row) {
  const uint32_t p_count = partitions();
  switch (policy_) {
    case Policy::kHashKey:
      return static_cast<uint32_t>(
          HashKeyPrefix(row, child_->schema().key_arity(), counters_) %
          p_count);
    case Policy::kRoundRobin:
      return static_cast<uint32_t>(round_robin_next_++ % p_count);
    case Policy::kRangeFirstColumn: {
      const uint64_t v = child_->schema().NormalizedAt(row, 0);
      uint32_t p = 0;
      while (p < range_bounds_.size() && v >= range_bounds_[p]) ++p;
      return p;
    }
  }
  return 0;
}

void SplitExchange::PumpUntil(uint32_t want) {
  if (!child_open_) {
    child_->Open();
    child_open_ = true;
  }
  auto& want_state = *states_[want];
  while (!want_state.HasRow() && !child_done_) {
    RowRef ref;
    if (!child_->Next(&ref)) {
      child_done_ = true;
      break;
    }
    const uint32_t p = RouteOf(ref.cols);
    // Filter theorem per partition: the routed row's output code combines
    // the codes of rows routed elsewhere since this partition's last row;
    // every other partition absorbs this row's code.
    auto& target = *states_[p];
    target.Push(ref.cols, target.acc.Combine(ref.ovc));
    target.acc.Reset();
    for (uint32_t q = 0; q < partitions(); ++q) {
      if (q != p) states_[q]->acc.Absorb(ref.ovc);
    }
  }
}

bool BoundedBatchQueue::Push(std::unique_ptr<RowBatch> batch) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock,
                 [this] { return cancelled_ || items_.size() < capacity_; });
  if (cancelled_) return false;
  items_.push_back(std::move(batch));
  not_empty_.notify_one();
  return true;
}

std::unique_ptr<RowBatch> BoundedBatchQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return cancelled_ || !items_.empty(); });
  if (items_.empty()) return nullptr;  // cancelled
  std::unique_ptr<RowBatch> batch = std::move(items_.front());
  items_.pop_front();
  not_full_.notify_one();
  return batch;
}

void BoundedBatchQueue::Cancel() {
  std::lock_guard<std::mutex> lock(mu_);
  cancelled_ = true;
  not_full_.notify_all();
  not_empty_.notify_all();
}

/// MergeSource fed by a producer thread's batch queue.
class MergeExchange::QueueMergeSource : public MergeSource {
 public:
  explicit QueueMergeSource(BoundedBatchQueue* queue) : queue_(queue) {}

  bool Next(const uint64_t** row, Ovc* code) override {
    while (true) {
      if (batch_ != nullptr && pos_ < batch_->size()) {
        *row = batch_->row(pos_);
        *code = batch_->code(pos_);
        ++pos_;
        return true;
      }
      if (done_) return false;
      batch_ = queue_->Pop();
      pos_ = 0;
      if (batch_ == nullptr) {
        done_ = true;
        return false;
      }
    }
  }

 private:
  BoundedBatchQueue* queue_;
  std::unique_ptr<RowBatch> batch_;
  size_t pos_ = 0;
  bool done_ = false;
};

MergeExchange::MergeExchange(std::vector<Operator*> inputs,
                             QueryCounters* counters, Options options)
    : inputs_(std::move(inputs)),
      counters_(counters),
      options_(options),
      codec_(&inputs_[0]->schema()),
      comparator_(&inputs_[0]->schema(), counters) {
  OVC_CHECK(!inputs_.empty());
  for (Operator* in : inputs_) {
    OVC_CHECK(in->sorted() && in->has_ovc());
    OVC_CHECK(in->schema() == inputs_[0]->schema());
  }
}

MergeExchange::~MergeExchange() { StopThreads(); }

void MergeExchange::Open() {
  std::vector<MergeSource*> raw_sources;
  if (options_.threaded) {
    for (Operator* in : inputs_) {
      queues_.push_back(
          std::make_unique<BoundedBatchQueue>(options_.queue_batches));
      BoundedBatchQueue* queue = queues_.back().get();
      const uint32_t batch_rows = options_.batch_rows;
      producers_.emplace_back([in, queue, batch_rows] {
        in->Open();
        auto batch =
            std::make_unique<RowBatch>(in->schema().total_columns());
        RowRef ref;
        bool alive = true;
        while (alive && in->Next(&ref)) {
          batch->Append(ref.cols, ref.ovc);
          if (batch->size() >= batch_rows) {
            alive = queue->Push(std::move(batch));
            batch =
                std::make_unique<RowBatch>(in->schema().total_columns());
          }
        }
        if (alive && !batch->empty()) {
          alive = queue->Push(std::move(batch));
        }
        if (alive) {
          queue->Push(nullptr);  // end-of-stream sentinel
        }
        in->Close();
      });
      sources_.push_back(std::make_unique<QueueMergeSource>(queue));
      raw_sources.push_back(sources_.back().get());
    }
  } else {
    for (Operator* in : inputs_) {
      in->Open();
      sources_.push_back(std::make_unique<OperatorMergeSource>(in));
      raw_sources.push_back(sources_.back().get());
    }
  }
  if (options_.use_ovc) {
    merger_ = std::make_unique<OvcMerger>(&codec_, &comparator_, raw_sources);
  } else {
    plain_merger_ = std::make_unique<PlainMerger>(&codec_, &comparator_,
                                                  raw_sources);
  }
}

bool MergeExchange::Next(RowRef* out) {
  if (merger_ != nullptr) return merger_->Next(out);
  if (plain_merger_ != nullptr) return plain_merger_->Next(out);
  return false;
}

void MergeExchange::StopThreads() {
  for (auto& queue : queues_) {
    queue->Cancel();
  }
  for (std::thread& t : producers_) {
    if (t.joinable()) t.join();
  }
  producers_.clear();
  queues_.clear();
}

void MergeExchange::Close() {
  StopThreads();
  merger_.reset();
  plain_merger_.reset();
  sources_.clear();
  if (!options_.threaded) {
    for (Operator* in : inputs_) in->Close();
  }
}

}  // namespace ovc
