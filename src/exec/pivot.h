// Pivoting (Section 4.6): turning rows into columns.
//
// From (group..., tag, value) to (group..., value_for_tag_1, ...,
// value_for_tag_k): "in many aspects, including the set of useful
// algorithms, pivoting is like grouping and aggregation" -- and so are its
// use of input offset-value codes (group boundary detection with a single
// integer test) and its production of output codes (the first input row's
// code, clamped to the grouping arity).

#ifndef OVC_EXEC_PIVOT_H_
#define OVC_EXEC_PIVOT_H_

#include <vector>

#include "common/counters.h"
#include "exec/operator.h"

namespace ovc {

/// Sorted-input pivot: one output row per distinct grouping prefix, with one
/// payload column per pivot tag value holding the aggregated (summed)
/// `value_col` of the rows carrying that tag.
class PivotOperator : public Operator {
 public:
  /// `child` must be sorted with codes on at least `group_prefix` key
  /// columns. `tag_col` and `value_col` are input column indexes; rows whose
  /// tag is not in `tags` are ignored (like a month outside 1..12).
  PivotOperator(Operator* child, uint32_t group_prefix, uint32_t tag_col,
                uint32_t value_col, std::vector<uint64_t> tags);

  void Open() override;
  bool Next(RowRef* out) override;
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return output_schema_; }
  bool sorted() const override { return true; }
  bool has_ovc() const override { return true; }

 private:
  static Schema MakeOutputSchema(const Schema& in, uint32_t group_prefix,
                                 size_t num_tags);

  void InitGroup(const RowRef& ref);
  void Accumulate(const uint64_t* row);
  void EmitGroup(RowRef* out);

  Operator* child_;
  uint32_t group_prefix_;
  uint32_t tag_col_;
  uint32_t value_col_;
  std::vector<uint64_t> tags_;
  Schema output_schema_;
  OvcCodec in_codec_;
  OvcCodec out_codec_;

  std::vector<uint64_t> state_row_;  // group key + running tag sums
  std::vector<uint64_t> out_row_;    // written only when a group is emitted
  Ovc group_code_ = 0;
  bool group_open_ = false;
  bool input_done_ = false;
};

}  // namespace ovc

#endif  // OVC_EXEC_PIVOT_H_
