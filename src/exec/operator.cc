#include "exec/operator.h"

namespace ovc {

uint64_t DrainAndCount(Operator* op) {
  op->Open();
  RowRef ref;
  uint64_t rows = 0;
  while (op->Next(&ref)) {
    ++rows;
  }
  op->Close();
  return rows;
}

}  // namespace ovc
