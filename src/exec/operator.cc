#include "exec/operator.h"

namespace ovc {

uint32_t Operator::NextBatch(RowBlock* out) {
  OVC_DCHECK(out->width() == schema().total_columns());
  out->Clear();
  RowRef ref;
  while (!out->full() && Next(&ref)) {
    out->Append(ref.cols, ref.ovc);
  }
  return out->size();
}

uint64_t DrainAndCount(Operator* op) {
  op->Open();
  RowBlock block(op->schema().total_columns());
  uint64_t rows = 0;
  uint32_t n;
  while ((n = op->NextBatch(&block)) > 0) {
    rows += n;
  }
  op->Close();
  return rows;
}

}  // namespace ovc
