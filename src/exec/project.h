// Projection (Section 4.2).
//
// Removal and reordering of columns within a row. When the surviving key
// columns form a prefix of the input sort key, the output stays sorted and
// input codes carry over with their offsets clamped to the surviving prefix
// length; otherwise the output is unordered and code-free. ("If all columns
// in the sort key survive the projection, offset-value codes in the output
// are the same as in the input. If not, the offset must be limited to the
// prefix that survives.")
//
// Duplicate removal -- the "relationally pure" part of projection -- is a
// separate operator (exec/dedup.h).

#ifndef OVC_EXEC_PROJECT_H_
#define OVC_EXEC_PROJECT_H_

#include <memory>
#include <vector>

#include "exec/operator.h"
#include "row/row_buffer.h"

namespace ovc {

/// Projects input columns into a new row layout.
class ProjectOperator : public Operator {
 public:
  /// Output column i takes input column `mapping[i]`. `output_schema`
  /// describes the result layout; order/code preservation is derived from
  /// whether `mapping` keeps a key prefix in place.
  ProjectOperator(Operator* child, Schema output_schema,
                  std::vector<uint32_t> mapping);

  void Open() override { child_->Open(); }
  bool Next(RowRef* out) override;
  uint32_t NextBatch(RowBlock* out) override;
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return output_schema_; }
  bool sorted() const override { return order_preserving_; }
  bool has_ovc() const override { return order_preserving_; }

 private:
  Operator* child_;
  Schema output_schema_;
  std::vector<uint32_t> mapping_;
  bool order_preserving_;
  OvcCodec in_codec_;
  OvcCodec out_codec_;
  std::vector<uint64_t> row_;
  /// Child-width staging block for NextBatch (sized lazily to match the
  /// consumer's block capacity).
  std::unique_ptr<RowBlock> in_block_;
};

}  // namespace ovc

#endif  // OVC_EXEC_PROJECT_H_
