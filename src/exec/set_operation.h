// Sort-based set operations (Section 4.7).
//
// "Among set operations, intersection proceeds mostly like an inner join,
// union like a full outer join, and difference like an anti semi join."
// Inputs are two streams of identical schema, sorted on all columns, with
// offset-value codes. Duplicate handling follows SQL:
//   INTERSECT [ALL]  -- distinct: emit once when both sides have the key;
//                       all: emit min(nl, nr) copies
//   EXCEPT   [ALL]   -- distinct: emit once when only the left has it;
//                       all: emit max(nl - nr, 0) copies
//   UNION    [ALL]   -- distinct: emit once; all: emit nl + nr copies
//
// Group sizes (nl, nr) are counted from duplicate codes alone -- no column
// comparisons -- and output codes follow the filter theorem: the first copy
// of an emitted key combines the dropped keys' codes with its own; further
// copies carry the duplicate code.

#ifndef OVC_EXEC_SET_OPERATION_H_
#define OVC_EXEC_SET_OPERATION_H_

#include <vector>

#include "common/counters.h"
#include "core/accumulator.h"
#include "core/ovc_compare.h"
#include "exec/operator.h"
#include "row/row_buffer.h"

namespace ovc {

/// The three SQL set operations.
enum class SetOpType { kIntersect, kExcept, kUnion };

/// Sort-based set operation over two key-only streams.
class SetOperation : public Operator {
 public:
  /// `all` selects the SQL ALL variant (multiset semantics). Both children
  /// must be sorted with codes, have identical schemas, and carry no
  /// payload columns (a set-operation row *is* its key).
  SetOperation(Operator* left, Operator* right, SetOpType type, bool all,
               QueryCounters* counters);

  void Open() override;
  bool Next(RowRef* out) override;
  void Close() override;
  const Schema& schema() const override { return left_->schema(); }
  bool sorted() const override { return true; }
  bool has_ovc() const override { return true; }

 private:
  void AdvanceLeft();
  void AdvanceRight();
  /// Counts the rest of a key group (duplicate codes) and advances past it.
  uint64_t CountLeftGroup();
  uint64_t CountRightGroup();
  /// Copies to emit for a group of nl left and nr right duplicates.
  uint64_t CopiesFor(uint64_t nl, uint64_t nr) const;

  Operator* left_;
  Operator* right_;
  SetOpType type_;
  bool all_;
  OvcCodec codec_;
  KeyComparator comparator_;

  RowRef lref_, rref_;
  bool l_valid_ = false, r_valid_ = false;
  OvcAccumulator acc_;

  RowBuffer group_row_;
  Ovc group_code_ = 0;
  uint64_t pending_copies_ = 0;
  bool first_copy_pending_ = false;
};

}  // namespace ovc

#endif  // OVC_EXEC_SET_OPERATION_H_
