// Filter with offset-value code derivation (Section 4.1, Table 3).
//
// An output row's code is the maximum (in ascending coding) of its own input
// code and the input codes of all rows dropped since the previous output
// row -- a direct application of the filter theorem. No column values are
// compared.

#ifndef OVC_EXEC_FILTER_H_
#define OVC_EXEC_FILTER_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/accumulator.h"
#include "exec/operator.h"

namespace ovc {

/// Row predicate: true keeps the row.
using RowPredicate = std::function<bool(const uint64_t* row)>;

/// Batched predicate: writes keep[i] != 0 for every row i in [0,
/// block.size()) that survives. One type-erased call per block instead of
/// one per row -- the predicate-side half of amortizing interpretation
/// overhead (the batching argument of the code-generation literature).
using BlockPredicate =
    std::function<void(const RowBlock& block, uint8_t* keep)>;

/// Order- and code-preserving filter. Also accepts unsorted / code-free
/// children (it then just passes rows through with code 0); the code
/// derivation by the filter theorem only runs when the child carries codes.
class FilterOperator : public Operator {
 public:
  /// `child` must outlive the filter. `block_predicate`, when supplied,
  /// must agree with `predicate` row for row; NextBatch() then evaluates it
  /// once per block while Next() keeps using the row predicate.
  FilterOperator(Operator* child, RowPredicate predicate,
                 BlockPredicate block_predicate = nullptr)
      : child_(child),
        predicate_(std::move(predicate)),
        block_predicate_(std::move(block_predicate)),
        derive_codes_(child->sorted() && child->has_ovc()) {}

  void Open() override {
    child_->Open();
    acc_.Reset();
  }

  bool Next(RowRef* out) override {
    RowRef ref;
    while (child_->Next(&ref)) {
      if (predicate_(ref.cols)) {
        out->cols = ref.cols;
        if (derive_codes_) {
          out->ovc = acc_.Combine(ref.ovc);
          acc_.Reset();
        } else {
          out->ovc = 0;
        }
        return true;
      }
      if (derive_codes_) acc_.Absorb(ref.ovc);
    }
    return false;
  }

  uint32_t NextBatch(RowBlock* out) override {
    // The child serves into a staging block (possibly zero-copy, borrowing
    // its storage); survivors are copied into `out` -- one copy per kept
    // row, none per dropped row. Dropped rows' codes are absorbed into the
    // accumulator exactly as in Next(), which keeps the filter theorem's
    // code derivation valid across block boundaries.
    // The staging capacity must equal the caller's (a larger block could
    // hand back more survivors than `out` holds); re-cap the existing
    // allocation instead of reallocating when the caller's capacity moves
    // (e.g. a limit's shrinking tail blocks).
    if (in_block_ == nullptr ||
        in_block_->allocated_rows() < out->capacity()) {
      in_block_ = std::make_unique<RowBlock>(
          child_->schema().total_columns(), out->capacity());
    }
    in_block_->Clear();
    in_block_->SetCapacity(out->capacity());
    out->Clear();
    for (;;) {
      const uint32_t n = child_->NextBatch(in_block_.get());
      if (n == 0) return 0;
      // Pre-zero so a predicate that only marks survivors works; stale
      // entries from the previous block must not leak through.
      keep_.assign(n, 0);
      if (block_predicate_ != nullptr) {
        block_predicate_(*in_block_, keep_.data());
      } else {
        for (uint32_t i = 0; i < n; ++i) {
          keep_[i] = predicate_(in_block_->row(i)) ? 1 : 0;
        }
      }
      // Copy contiguous spans of kept rows in bulk. Within a span there are
      // no drops, so the accumulator is empty and Combine() is the
      // identity: input codes carry over verbatim and only the span's
      // *first* row needs the combined code.
      uint32_t i = 0;
      while (i < n) {
        if (keep_[i] == 0) {
          if (derive_codes_) acc_.Absorb(in_block_->code(i));
          ++i;
          continue;
        }
        uint32_t j = i + 1;
        while (j < n && keep_[j] != 0) ++j;
        const uint32_t start = out->size();
        out->AppendContiguous(
            in_block_->row(i),
            derive_codes_ ? in_block_->codes() + i : nullptr, j - i);
        if (derive_codes_) {
          out->set_code(start, acc_.Combine(in_block_->code(i)));
          acc_.Reset();
        }
        i = j;
      }
      if (!out->empty()) return out->size();
      // Every row of this block was dropped; pull the next one.
    }
  }

  void Close() override { child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }
  bool sorted() const override { return child_->sorted(); }
  bool has_ovc() const override { return derive_codes_; }

 private:
  Operator* child_;
  RowPredicate predicate_;
  BlockPredicate block_predicate_;
  bool derive_codes_;
  OvcAccumulator acc_;
  std::vector<uint8_t> keep_;  // block-predicate results, reused per block
  std::unique_ptr<RowBlock> in_block_;  // staging for the child's blocks
};

}  // namespace ovc

#endif  // OVC_EXEC_FILTER_H_
