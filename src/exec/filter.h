// Filter with offset-value code derivation (Section 4.1, Table 3).
//
// An output row's code is the maximum (in ascending coding) of its own input
// code and the input codes of all rows dropped since the previous output
// row -- a direct application of the filter theorem. No column values are
// compared.

#ifndef OVC_EXEC_FILTER_H_
#define OVC_EXEC_FILTER_H_

#include <functional>

#include "core/accumulator.h"
#include "exec/operator.h"

namespace ovc {

/// Row predicate: true keeps the row.
using RowPredicate = std::function<bool(const uint64_t* row)>;

/// Order- and code-preserving filter. Also accepts unsorted / code-free
/// children (it then just passes rows through with code 0); the code
/// derivation by the filter theorem only runs when the child carries codes.
class FilterOperator : public Operator {
 public:
  /// `child` must outlive the filter.
  FilterOperator(Operator* child, RowPredicate predicate)
      : child_(child),
        predicate_(std::move(predicate)),
        derive_codes_(child->sorted() && child->has_ovc()) {}

  void Open() override {
    child_->Open();
    acc_.Reset();
  }

  bool Next(RowRef* out) override {
    RowRef ref;
    while (child_->Next(&ref)) {
      if (predicate_(ref.cols)) {
        out->cols = ref.cols;
        if (derive_codes_) {
          out->ovc = acc_.Combine(ref.ovc);
          acc_.Reset();
        } else {
          out->ovc = 0;
        }
        return true;
      }
      if (derive_codes_) acc_.Absorb(ref.ovc);
    }
    return false;
  }

  void Close() override { child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }
  bool sorted() const override { return child_->sorted(); }
  bool has_ovc() const override { return derive_codes_; }

 private:
  Operator* child_;
  RowPredicate predicate_;
  bool derive_codes_;
  OvcAccumulator acc_;
};

}  // namespace ovc

#endif  // OVC_EXEC_FILTER_H_
