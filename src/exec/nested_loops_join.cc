#include "exec/nested_loops_join.h"

#include <cstring>

namespace ovc {

RunLookupSource::RunLookupSource(const Schema* schema, const InMemoryRun* run,
                                 uint32_t bind_columns,
                                 QueryCounters* counters)
    : schema_(schema),
      run_(run),
      bind_columns_(bind_columns),
      comparator_(schema, counters) {
  OVC_CHECK(bind_columns >= 1);
  OVC_CHECK(bind_columns <= schema->key_arity());
}

void RunLookupSource::Bind(const uint64_t* outer_row) {
  // Binary search for the range of inner rows whose first bind_columns_ key
  // columns equal the outer row's. Three-way comparison on the bind prefix.
  auto compare_prefix = [&](size_t idx) {
    const uint64_t* inner = run_->row(idx);
    for (uint32_t c = 0; c < bind_columns_; ++c) {
      if (comparator_.counters() != nullptr) {
        ++comparator_.counters()->column_comparisons;
      }
      const uint64_t iv = schema_->NormalizedAt(inner, c);
      const uint64_t ov = schema_->NormalizedAt(outer_row, c);
      if (iv != ov) return iv < ov ? -1 : 1;
    }
    return 0;
  };
  // Lower bound.
  size_t lo = 0, hi = run_->size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (compare_prefix(mid) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  pos_ = lo;
  // Upper bound.
  hi = run_->size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (compare_prefix(mid) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  end_ = lo;
}

bool RunLookupSource::Next(const uint64_t** row, Ovc* code) {
  if (pos_ >= end_) return false;
  *row = run_->row(pos_);
  *code = run_->code(pos_);
  ++pos_;
  return true;
}

Schema NestedLoopsJoin::MakeOutputSchema() const {
  const Schema& os = outer_->schema();
  if (type_ == JoinTypeNlj::kLeftSemi || type_ == JoinTypeNlj::kLeftAnti) {
    return os;
  }
  const Schema& is = inner_->schema();
  std::vector<SortDirection> dirs;
  for (uint32_t c = 0; c < os.key_arity(); ++c) dirs.push_back(os.direction(c));
  uint32_t payload = os.payload_columns() + is.payload_columns() + 1;
  if (extended_) {
    for (uint32_t c = 0; c < is.key_arity(); ++c) {
      dirs.push_back(is.direction(c));
    }
  } else {
    payload += is.key_arity();  // inner keys ride along as payload
  }
  return Schema(std::move(dirs), payload);
}

NestedLoopsJoin::NestedLoopsJoin(Operator* outer, LookupSource* inner,
                                 JoinTypeNlj type, QueryCounters* counters)
    : outer_(outer),
      inner_(inner),
      type_(type),
      extended_(inner->sorted_with_ovc() && type != JoinTypeNlj::kLeftSemi &&
                type != JoinTypeNlj::kLeftAnti),
      output_schema_(MakeOutputSchema()),
      outer_codec_(&outer->schema()),
      inner_codec_(&inner->schema()),
      out_codec_(&output_schema_),
      counters_(counters),
      outer_group_(outer->schema().total_columns()),
      inner_row_copy_(inner->schema().total_columns(), 0),
      out_row_(output_schema_.total_columns(), 0) {
  OVC_CHECK(outer->sorted() && outer->has_ovc());
}

void NestedLoopsJoin::Open() {
  outer_->Open();
  o_valid_ = outer_->Next(&oref_);
  acc_.Reset();
  state_ = o_valid_ ? State::kNextGroup : State::kDone;
}

void NestedLoopsJoin::CollectOuterGroup() {
  outer_group_.Clear();
  outer_group_.AppendRow(oref_.cols);
  group_code_ = oref_.ovc;  // raw first-of-group code; combined lazily
  while (true) {
    o_valid_ = outer_->Next(&oref_);
    if (!o_valid_ || !outer_codec_.IsDuplicate(oref_.ovc)) break;
    outer_group_.AppendRow(oref_.cols);
  }
}

Ovc NestedLoopsJoin::LiftOuterCode(Ovc code) const {
  if (!extended_) return code;  // output arity equals the outer arity
  // Group codes always sit within the outer key (offset < outer arity), so
  // both offset and value carry over unchanged.
  return out_codec_.Make(outer_codec_.OffsetOf(code), OvcCodec::ValueOf(code));
}

void NestedLoopsJoin::EmitCombined(const uint64_t* outer_row,
                                   const uint64_t* inner_row, Ovc code,
                                   RowRef* out) {
  const Schema& os = outer_->schema();
  const Schema& is = inner_->schema();
  uint64_t* dst = out_row_.data();
  std::memcpy(dst, outer_row, os.key_arity() * sizeof(uint64_t));
  uint64_t* p = dst + os.key_arity();
  if (inner_row != nullptr) {
    std::memcpy(p, inner_row, is.key_arity() * sizeof(uint64_t));
  } else {
    std::memset(p, 0, is.key_arity() * sizeof(uint64_t));
  }
  p += is.key_arity();
  std::memcpy(p, outer_row + os.key_arity(),
              os.payload_columns() * sizeof(uint64_t));
  p += os.payload_columns();
  if (inner_row != nullptr) {
    std::memcpy(p, inner_row + is.key_arity(),
                is.payload_columns() * sizeof(uint64_t));
  } else {
    std::memset(p, 0, is.payload_columns() * sizeof(uint64_t));
  }
  p += is.payload_columns();
  *p = inner_row != nullptr ? 3 : 1;  // match indicator
  out->cols = dst;
  out->ovc = code;
}

bool NestedLoopsJoin::Next(RowRef* out) {
  while (true) {
    switch (state_) {
      case State::kDone:
        return false;

      case State::kNextGroup: {
        if (!o_valid_) {
          state_ = State::kDone;
          return false;
        }
        CollectOuterGroup();
        inner_->Bind(outer_group_.row(0));
        group_first_pending_ = true;
        any_match_ = false;

        if (type_ == JoinTypeNlj::kLeftSemi ||
            type_ == JoinTypeNlj::kLeftAnti) {
          const uint64_t* row = nullptr;
          Ovc code = 0;
          const bool match = inner_->Next(&row, &code);
          const bool keep = (type_ == JoinTypeNlj::kLeftSemi) == match;
          if (!keep) {
            acc_.Absorb(group_code_);
            continue;
          }
          emit_idx_ = 0;
          state_ = State::kEmitGroupRows;
          continue;
        }
        state_ = State::kScanInner;
        continue;
      }

      case State::kScanInner: {
        const uint64_t* row = nullptr;
        Ovc code = 0;
        if (inner_->Next(&row, &code)) {
          std::memcpy(inner_row_copy_.data(), row,
                      inner_->schema().total_columns() * sizeof(uint64_t));
          inner_first_ = !any_match_;
          inner_code_ = code;
          any_match_ = true;
          outer_idx_ = 0;
          state_ = State::kEmitOuterPerInner;
          continue;
        }
        if (!any_match_) {
          if (type_ == JoinTypeNlj::kLeftOuter) {
            emit_idx_ = 0;
            state_ = State::kEmitGroupRows;
            continue;
          }
          acc_.Absorb(group_code_);  // inner join: group dropped
        }
        state_ = State::kNextGroup;
        continue;
      }

      case State::kEmitOuterPerInner: {
        // Role reversal: this inner row joins every outer row of the group.
        Ovc code;
        if (group_first_pending_) {
          code = LiftOuterCode(acc_.Combine(group_code_));
          acc_.Reset();
          group_first_pending_ = false;
        } else if (outer_idx_ == 0 && !inner_first_ && extended_) {
          // A new inner row within the group: the inner code, lifted by the
          // outer sort key's size (Section 4.8).
          code = out_codec_.Make(
              outer_->schema().key_arity() + inner_codec_.OffsetOf(inner_code_),
              OvcCodec::ValueOf(inner_code_));
        } else {
          code = out_codec_.DuplicateCode();
        }
        EmitCombined(outer_group_.row(outer_idx_), inner_row_copy_.data(),
                     code, out);
        ++outer_idx_;
        if (outer_idx_ >= outer_group_.size()) {
          state_ = State::kScanInner;
        }
        return true;
      }

      case State::kEmitGroupRows: {
        if (emit_idx_ >= outer_group_.size()) {
          state_ = State::kNextGroup;
          continue;
        }
        Ovc code;
        if (group_first_pending_) {
          code = acc_.Combine(group_code_);
          if (type_ == JoinTypeNlj::kLeftOuter) code = LiftOuterCode(code);
          acc_.Reset();
          group_first_pending_ = false;
        } else {
          code = out_codec_.DuplicateCode();
        }
        if (type_ == JoinTypeNlj::kLeftOuter) {
          EmitCombined(outer_group_.row(emit_idx_), nullptr, code, out);
        } else {
          std::memcpy(out_row_.data(), outer_group_.row(emit_idx_),
                      outer_->schema().total_columns() * sizeof(uint64_t));
          out->cols = out_row_.data();
          out->ovc = code;
        }
        ++emit_idx_;
        return true;
      }
    }
  }
}

}  // namespace ovc
