// Sorted column store with run-length-encoded columns (Section 4.11).
//
// "Column storage is often sorted with the leading key columns compressed
// by run-length encoding. ... such scans can produce row-by-row
// offset-value codes without sorting and even without any column value
// accesses or column value comparisons. Thus, these scans can provide
// offset-value codes practically for free."
//
// The scan derives each row's code purely from the RLE segment counters:
// the code's offset is the first key column whose segment ends at the row,
// and the value is that segment's new value -- no comparisons, anywhere.

#ifndef OVC_STORAGE_COLUMN_STORE_H_
#define OVC_STORAGE_COLUMN_STORE_H_

#include <memory>
#include <vector>

#include "exec/operator.h"
#include "row/schema.h"

namespace ovc {

/// Columnar storage of a sorted table: every key column run-length encoded,
/// payload columns stored as plain vectors.
class RleColumnStore {
 public:
  /// `schema` must outlive the store.
  explicit RleColumnStore(const Schema* schema);

  /// Builds the store from a sorted, coded stream (consumes it). The input
  /// codes tell which columns changed per row, so even the build performs
  /// no key comparisons.
  void Build(Operator* sorted_input);

  /// Rows stored.
  uint64_t rows() const { return rows_; }

  /// Row layout of the stored table (and of every scan).
  const Schema& schema() const { return *schema_; }

  /// Stored key-column segments (for compression-ratio reporting).
  uint64_t total_segments() const;

  /// Sorted scan producing rows and codes from segment arithmetic alone.
  /// The store must outlive the scan.
  std::unique_ptr<Operator> CreateScan() const;

 private:
  friend class RleColumnScan;

  struct Segment {
    uint64_t value;
    uint64_t count;
  };

  const Schema* schema_;
  std::vector<std::vector<Segment>> key_columns_;   // RLE per key column
  std::vector<std::vector<uint64_t>> payload_columns_;
  uint64_t rows_ = 0;
};

}  // namespace ovc

#endif  // OVC_STORAGE_COLUMN_STORE_H_
