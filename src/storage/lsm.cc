#include "storage/lsm.h"

#include "core/ovc.h"
#include "pq/loser_tree.h"
#include "sort/run_generation.h"

namespace ovc {

namespace {

/// Sink spilling a generated run to a file.
class FileSink : public RunSink {
 public:
  explicit FileSink(RunFileWriter* writer) : writer_(writer) {}
  void Accept(const uint64_t* row, Ovc code) override {
    OVC_CHECK_OK(writer_->Append(row, code));
  }

 private:
  RunFileWriter* writer_;
};

/// Operator merging a set of run files (owns readers and merger). With
/// collapsing enabled, key-duplicates across runs fold at scan time so a
/// query always sees the fully aggregated view.
class ForestScan : public Operator {
 public:
  ForestScan(const Schema* schema, QueryCounters* counters,
             std::vector<std::string> paths, bool collapse,
             std::vector<StateMergeFn> collapse_fns)
      : schema_(schema),
        codec_(schema),
        comparator_(schema, counters),
        paths_(std::move(paths)),
        collapse_(collapse),
        collapse_fns_(std::move(collapse_fns)) {}

  void Open() override {
    readers_.clear();
    if (paths_.empty()) return;  // empty forest
    std::vector<MergeSource*> sources;
    for (const std::string& path : paths_) {
      readers_.push_back(std::make_unique<RunFileReader>(schema_));
      OVC_CHECK_OK(readers_.back()->Open(path));
      sources.push_back(readers_.back().get());
    }
    merger_ = std::make_unique<OvcMerger>(&codec_, &comparator_, sources);
    if (collapse_) {
      merger_source_ = std::make_unique<MergerSource>(merger_.get());
      collapser_ = std::make_unique<CollapsingSource>(
          schema_, collapse_fns_, merger_source_.get());
    }
  }

  bool Next(RowRef* out) override {
    if (merger_ == nullptr) return false;
    if (collapser_ != nullptr) {
      const uint64_t* row = nullptr;
      Ovc code = 0;
      if (!collapser_->Next(&row, &code)) return false;
      out->cols = row;
      out->ovc = code;
      return true;
    }
    return merger_->Next(out);
  }

  void Close() override {
    collapser_.reset();
    merger_source_.reset();
    merger_.reset();
    readers_.clear();
  }

  const Schema& schema() const override { return *schema_; }
  bool sorted() const override { return true; }
  bool has_ovc() const override { return true; }

 private:
  struct MergerSource : MergeSource {
    explicit MergerSource(OvcMerger* m) : merger(m) {}
    bool Next(const uint64_t** row, Ovc* code) override {
      RowRef ref;
      if (!merger->Next(&ref)) return false;
      *row = ref.cols;
      *code = ref.ovc;
      return true;
    }
    OvcMerger* merger;
  };

  const Schema* schema_;
  OvcCodec codec_;
  KeyComparator comparator_;
  std::vector<std::string> paths_;
  bool collapse_;
  std::vector<StateMergeFn> collapse_fns_;
  std::vector<std::unique_ptr<RunFileReader>> readers_;
  std::unique_ptr<OvcMerger> merger_;
  std::unique_ptr<MergerSource> merger_source_;
  std::unique_ptr<CollapsingSource> collapser_;
};

}  // namespace

LsmForest::LsmForest(const Schema* schema, QueryCounters* counters,
                     TempFileManager* temp, Options options)
    : schema_(schema),
      counters_(counters),
      temp_(temp),
      options_(options),
      memtable_(schema->total_columns()) {
  OVC_CHECK(options_.memtable_rows >= 1);
  if (options_.collapse) {
    OVC_CHECK(options_.collapse_fns.size() == schema->payload_columns());
  }
}

void LsmForest::Insert(const uint64_t* row) {
  memtable_.AppendRow(row);
  ++rows_;
  if (memtable_.size() >= options_.memtable_rows) {
    Flush();
    if (options_.compaction_trigger > 0 &&
        runs_.size() >= options_.compaction_trigger) {
      CompactAll();
    }
  }
}

void LsmForest::Flush() {
  if (memtable_.empty()) return;
  BatchSorter sorter(schema_, counters_, RunGenMode::kPqSingleRowRuns,
                     /*mini_run_rows=*/1024, /*use_ovc=*/true,
                     /*naive_codes=*/false);
  RunFileWriter writer(schema_, counters_);
  const std::string path = temp_->NewPath("lsm-run");
  OVC_CHECK_OK(writer.Open(path));
  FileSink sink(&writer);
  if (options_.collapse) {
    // Aggregating maintenance: key-duplicates collapse already at flush.
    CollapsingSink collapser(schema_, options_.collapse_fns, &sink);
    sorter.Sort(memtable_, &collapser);
    collapser.Flush();
  } else {
    sorter.Sort(memtable_, &sink);
  }
  OVC_CHECK_OK(writer.Close());
  runs_.push_back(SpilledRun{path, writer.rows()});
  memtable_.Clear();
}

void LsmForest::CompactAll() {
  if (runs_.size() <= 1) return;
  OvcCodec codec(schema_);
  KeyComparator comparator(schema_, counters_);
  std::vector<std::unique_ptr<RunFileReader>> readers;
  std::vector<MergeSource*> sources;
  for (const SpilledRun& run : runs_) {
    readers.push_back(std::make_unique<RunFileReader>(schema_));
    OVC_CHECK_OK(readers.back()->Open(run.path));
    sources.push_back(readers.back().get());
  }
  RunFileWriter writer(schema_, counters_);
  const std::string path = temp_->NewPath("lsm-compact");
  OVC_CHECK_OK(writer.Open(path));
  OvcMerger merger(&codec, &comparator, sources);
  FileSink sink(&writer);
  RowRef ref;
  if (options_.collapse) {
    CollapsingSink collapser(schema_, options_.collapse_fns, &sink);
    while (merger.Next(&ref)) {
      collapser.Accept(ref.cols, ref.ovc);
    }
    collapser.Flush();
  } else {
    while (merger.Next(&ref)) {
      sink.Accept(ref.cols, ref.ovc);
    }
  }
  OVC_CHECK_OK(writer.Close());
  runs_.clear();
  runs_.push_back(SpilledRun{path, writer.rows()});
  ++compactions_;
}

std::unique_ptr<Operator> LsmForest::ScanAll() {
  Flush();
  std::vector<std::string> paths;
  for (const SpilledRun& run : runs_) {
    paths.push_back(run.path);
  }
  return std::make_unique<ForestScan>(schema_, counters_, std::move(paths),
                                      options_.collapse,
                                      options_.collapse_fns);
}

}  // namespace ovc
