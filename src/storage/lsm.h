// Log-structured merge-forest (Section 4.11; the Napa use case of
// Sections 1 and 5: "ingestion (run generation), compaction (merging), and
// query processing in log-structured merge-forests rely heavily on sorting
// and merging").
//
// Rows accumulate in a memtable; a flush sorts them (tree-of-losers, codes
// as a byproduct) into a prefix-truncated run file. Queries merge all runs
// plus the memtable with an OVC tree-of-losers merge and deliver a single
// sorted, coded stream. Compaction merges runs into one, again exploiting
// and reproducing codes.

#ifndef OVC_STORAGE_LSM_H_
#define OVC_STORAGE_LSM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/temp_file.h"
#include "exec/operator.h"
#include "row/row_buffer.h"
#include "sort/group_collapse.h"
#include "sort/run_file.h"

namespace ovc {

/// A forest of sorted runs with a write-back memtable.
class LsmForest {
 public:
  struct Options {
    /// Rows buffered before an automatic flush.
    uint64_t memtable_rows;
    /// Compact automatically when the run count reaches this threshold
    /// (0 disables auto-compaction).
    uint32_t compaction_trigger;
    /// Napa-style aggregating maintenance: collapse key-duplicates during
    /// flush and compaction, merging payload columns with `collapse_fns`
    /// (one per payload column). Queries then see one row per key. This is
    /// how Napa "maintains thousands of materialized views in
    /// log-structured merge-forests": ingestion appends deltas, merging
    /// aggregates them.
    bool collapse;
    std::vector<StateMergeFn> collapse_fns;

    Options() : memtable_rows(4096), compaction_trigger(0), collapse(false) {}
  };

  /// `schema`, `counters` (optional), and `temp` must outlive the forest.
  LsmForest(const Schema* schema, QueryCounters* counters,
            TempFileManager* temp, Options options = Options());

  /// Buffers one row; may trigger a flush and a compaction.
  void Insert(const uint64_t* row);

  /// Sorts and spills the memtable as a new run (no-op when empty).
  void Flush();

  /// Merges all runs into one.
  void CompactAll();

  /// Sorted, coded scan over the whole forest (flushes the memtable first).
  /// The forest must outlive the scan and not be mutated during it.
  std::unique_ptr<Operator> ScanAll();

  /// Row layout of the stored table (and of every scan).
  const Schema& schema() const { return *schema_; }

  /// Current run count (after any pending flush).
  size_t run_count() const { return runs_.size(); }
  /// Total rows ingested.
  uint64_t rows() const { return rows_; }
  /// Compactions performed.
  uint64_t compactions() const { return compactions_; }

 private:
  const Schema* schema_;
  QueryCounters* counters_;
  TempFileManager* temp_;
  Options options_;

  RowBuffer memtable_;
  std::vector<SpilledRun> runs_;
  uint64_t rows_ = 0;
  uint64_t compactions_ = 0;
};

}  // namespace ovc

#endif  // OVC_STORAGE_LSM_H_
