// Non-unique secondary index with sorted, compressed RID lists
// (Section 4.11).
//
// "In non-unique secondary indexes, lists of row identifiers are usually
// sorted and compressed ... Range queries need to merge lists of row
// identifiers; again, the merge logic consumes, benefits from, and produces
// offset-value codes." Multi-dimensional access (MDAM) and index
// intersection ("index-only retrieval") build on the same sorted RID
// streams.
//
// RID lists are delta-varint compressed. A RID stream is a sorted,
// offset-value-coded stream of single-column rows, so all the engine's
// merge machinery applies to it unchanged: range queries merge the lists of
// the qualifying values with a tree-of-losers merge, and index intersection
// is a merge join (left semi) on RID.

#ifndef OVC_STORAGE_RID_INDEX_H_
#define OVC_STORAGE_RID_INDEX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/counters.h"
#include "exec/operator.h"
#include "row/row_buffer.h"

namespace ovc {

/// The schema of a RID stream: one ascending key column (the RID).
const Schema& RidStreamSchema();

/// Secondary index on one column of a stored table.
class RidIndex {
 public:
  RidIndex() = default;

  /// Indexes `column` of `table`; RID = row position.
  void Build(const RowBuffer& table, uint32_t column);

  /// Number of distinct indexed values.
  size_t distinct_values() const { return lists_.size(); }
  /// Total compressed bytes across all RID lists.
  uint64_t compressed_bytes() const;

  /// Sorted RID stream for one value (empty stream when absent).
  std::unique_ptr<Operator> Lookup(uint64_t value) const;

  /// Sorted RID stream for all values in [low, high]: the qualifying lists
  /// are merged with an OVC tree-of-losers merge. `counters` (optional)
  /// meters the merge.
  std::unique_ptr<Operator> RangeScan(uint64_t low, uint64_t high,
                                      QueryCounters* counters) const;

  /// MDAM-style multi-value access: the union of the RID lists of an
  /// explicit value set (e.g. an IN-list), merged order-preservingly.
  std::unique_ptr<Operator> MultiLookup(const std::vector<uint64_t>& values,
                                        QueryCounters* counters) const;

 private:
  friend class RidListScan;

  /// One value's delta-varint compressed, sorted RID list.
  struct RidList {
    std::vector<uint8_t> bytes;
    uint64_t count = 0;
    uint64_t last_rid = 0;  // build-time state
  };

  std::map<uint64_t, RidList> lists_;
};

/// Index intersection: RIDs present in both sorted RID streams (a merge
/// join, left semi, on the RID column). Both operators must outlive the
/// returned one.
std::unique_ptr<Operator> IntersectRidStreams(Operator* a, Operator* b,
                                              QueryCounters* counters);

}  // namespace ovc

#endif  // OVC_STORAGE_RID_INDEX_H_
