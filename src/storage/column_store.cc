#include "storage/column_store.h"

#include "core/ovc.h"

namespace ovc {

RleColumnStore::RleColumnStore(const Schema* schema) : schema_(schema) {
  key_columns_.resize(schema->key_arity());
  payload_columns_.resize(schema->payload_columns());
}

void RleColumnStore::Build(Operator* sorted_input) {
  OVC_CHECK(sorted_input->sorted() && sorted_input->has_ovc());
  OVC_CHECK(sorted_input->schema() == *schema_);
  OvcCodec codec(schema_);
  sorted_input->Open();
  RowRef ref;
  while (sorted_input->Next(&ref)) {
    // The code's offset tells exactly which key columns start new segments:
    // columns before the offset extend their current segment, the column at
    // the offset and beyond begin fresh ones. (Columns past the offset
    // could coincidentally repeat their previous value; starting a new
    // segment there is valid RLE and keeps the build comparison-free.)
    const uint32_t offset =
        rows_ == 0 ? 0
                   : (codec.IsDuplicate(ref.ovc) ? schema_->key_arity()
                                                 : codec.OffsetOf(ref.ovc));
    for (uint32_t c = 0; c < schema_->key_arity(); ++c) {
      if (c < offset) {
        ++key_columns_[c].back().count;
      } else {
        key_columns_[c].push_back(Segment{ref.cols[c], 1});
      }
    }
    for (uint32_t p = 0; p < schema_->payload_columns(); ++p) {
      payload_columns_[p].push_back(ref.cols[schema_->key_arity() + p]);
    }
    ++rows_;
  }
  sorted_input->Close();
}

uint64_t RleColumnStore::total_segments() const {
  uint64_t total = 0;
  for (const auto& col : key_columns_) {
    total += col.size();
  }
  return total;
}

/// Scan over the RLE store: codes from segment counters only.
class RleColumnScan : public Operator {
 public:
  explicit RleColumnScan(const RleColumnStore* store)
      : store_(store),
        codec_(store->schema_),
        row_(store->schema_->total_columns(), 0) {}

  void Open() override {
    const uint32_t arity = store_->schema_->key_arity();
    seg_idx_.assign(arity, 0);
    seg_left_.assign(arity, 0);
    pos_ = 0;
  }

  bool Next(RowRef* out) override {
    if (pos_ >= store_->rows_) return false;
    ProduceRow(row_.data(), &out->ovc);
    out->cols = row_.data();
    return true;
  }

  uint32_t NextBatch(RowBlock* out) override {
    out->Clear();
    while (!out->full() && pos_ < store_->rows_) {
      Ovc code = 0;
      uint64_t* dst = out->AppendRow(0);
      ProduceRow(dst, &code);
      out->set_code(out->size() - 1, code);
    }
    return out->size();
  }

  void Close() override {}
  const Schema& schema() const override { return *store_->schema_; }
  bool sorted() const override { return true; }
  bool has_ovc() const override { return true; }

 private:
  /// Materializes the row at the cursor into `dst` (total_columns values),
  /// stores its code in `*code`, and advances. Non-virtual so NextBatch's
  /// loop stays free of per-row dispatch. Caller checks pos_ < rows_.
  void ProduceRow(uint64_t* dst, Ovc* code) {
    const uint32_t arity = store_->schema_->key_arity();
    // The offset is the first key column whose current segment is used up.
    uint32_t offset = arity;
    for (uint32_t c = 0; c < arity; ++c) {
      if (seg_left_[c] == 0) {
        if (offset == arity) offset = c;
        const auto& seg = store_->key_columns_[c][pos_ == 0 ? 0 : seg_idx_[c]];
        dst[c] = seg.value;
        seg_left_[c] = seg.count;
      } else {
        dst[c] = store_->key_columns_[c][seg_idx_[c]].value;
      }
    }
    for (uint32_t c = 0; c < arity; ++c) {
      --seg_left_[c];
      if (seg_left_[c] == 0) {
        ++seg_idx_[c];  // the next row reloads this column
      }
    }
    for (uint32_t p = 0; p < store_->schema_->payload_columns(); ++p) {
      dst[arity + p] = store_->payload_columns_[p][pos_];
    }
    *code = pos_ == 0 ? codec_.MakeInitial(dst)
                      : codec_.MakeFromRow(dst, offset);
    ++pos_;
  }

  const RleColumnStore* store_;
  OvcCodec codec_;
  std::vector<uint64_t> row_;
  std::vector<size_t> seg_idx_;
  std::vector<uint64_t> seg_left_;
  uint64_t pos_ = 0;
};

std::unique_ptr<Operator> RleColumnStore::CreateScan() const {
  return std::make_unique<RleColumnScan>(this);
}

}  // namespace ovc
