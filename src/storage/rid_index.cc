#include "storage/rid_index.h"

#include "core/ovc.h"
#include "exec/merge_join.h"
#include "pq/loser_tree.h"

namespace ovc {

const Schema& RidStreamSchema() {
  static const Schema* schema = new Schema(/*key_arity=*/1);
  return *schema;
}

namespace {

void AppendVarint(std::vector<uint8_t>* bytes, uint64_t v) {
  while (v >= 0x80) {
    bytes->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  bytes->push_back(static_cast<uint8_t>(v));
}

uint64_t ReadVarint(const std::vector<uint8_t>& bytes, size_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    const uint8_t b = bytes[(*pos)++];
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

}  // namespace

void RidIndex::Build(const RowBuffer& table, uint32_t column) {
  lists_.clear();
  for (size_t rid = 0; rid < table.size(); ++rid) {
    const uint64_t value = table.row(rid)[column];
    RidList& list = lists_[value];
    // RIDs arrive in ascending order; store the delta to the previous one.
    const uint64_t delta =
        list.count == 0 ? rid : rid - list.last_rid;
    AppendVarint(&list.bytes, delta);
    list.last_rid = rid;
    ++list.count;
  }
}

uint64_t RidIndex::compressed_bytes() const {
  uint64_t total = 0;
  for (const auto& [value, list] : lists_) {
    total += list.bytes.size();
  }
  return total;
}

/// Scan over one compressed RID list: decompression hands out RIDs with
/// their codes for free (single-column keys: every non-duplicate row is a
/// fresh value at offset 0; RIDs are unique, so offsets are always 0).
class RidListScan : public Operator {
 public:
  explicit RidListScan(const RidIndex::RidList* list)
      : codec_(&RidStreamSchema()), list_(list) {}

  void Open() override {
    pos_ = 0;
    emitted_ = 0;
    rid_ = 0;
  }

  bool Next(RowRef* out) override {
    if (list_ == nullptr || emitted_ >= list_->count) return false;
    size_t pos = pos_;
    const uint64_t delta = ReadVarint(list_->bytes, &pos);
    pos_ = pos;
    rid_ = emitted_ == 0 ? delta : rid_ + delta;
    row_ = rid_;
    out->cols = &row_;
    out->ovc = codec_.MakeFromRow(&row_, 0);
    ++emitted_;
    return true;
  }

  void Close() override {}
  const Schema& schema() const override { return RidStreamSchema(); }
  bool sorted() const override { return true; }
  bool has_ovc() const override { return true; }

 private:
  OvcCodec codec_;
  const RidIndex::RidList* list_;  // nullptr: empty stream
  size_t pos_ = 0;
  uint64_t emitted_ = 0;
  uint64_t rid_ = 0;
  uint64_t row_ = 0;
};

namespace {

/// Merges several RID-list scans into one sorted RID stream. Owns the
/// per-list scans.
class RidMergeScan : public Operator {
 public:
  RidMergeScan(std::vector<std::unique_ptr<Operator>> scans,
               QueryCounters* counters)
      : codec_(&RidStreamSchema()),
        comparator_(&RidStreamSchema(), counters),
        scans_(std::move(scans)) {}

  void Open() override {
    sources_.clear();
    std::vector<MergeSource*> raw;
    for (auto& scan : scans_) {
      scan->Open();
      sources_.push_back(std::make_unique<OperatorMergeSource>(scan.get()));
      raw.push_back(sources_.back().get());
    }
    merger_ = raw.empty()
                  ? nullptr
                  : std::make_unique<OvcMerger>(&codec_, &comparator_, raw);
  }

  bool Next(RowRef* out) override {
    return merger_ != nullptr && merger_->Next(out);
  }

  void Close() override {
    merger_.reset();
    sources_.clear();
    for (auto& scan : scans_) scan->Close();
  }

  const Schema& schema() const override { return RidStreamSchema(); }
  bool sorted() const override { return true; }
  bool has_ovc() const override { return true; }

 private:
  OvcCodec codec_;
  KeyComparator comparator_;
  std::vector<std::unique_ptr<Operator>> scans_;
  std::vector<std::unique_ptr<MergeSource>> sources_;
  std::unique_ptr<OvcMerger> merger_;
};

/// Wraps a MergeJoin and owns it together with its reference to inputs.
class OwningSemiJoin : public Operator {
 public:
  OwningSemiJoin(Operator* a, Operator* b, QueryCounters* counters)
      : join_(std::make_unique<MergeJoin>(a, b, JoinType::kLeftSemi,
                                          counters)) {}

  void Open() override { join_->Open(); }
  bool Next(RowRef* out) override { return join_->Next(out); }
  void Close() override { join_->Close(); }
  const Schema& schema() const override { return join_->schema(); }
  bool sorted() const override { return true; }
  bool has_ovc() const override { return true; }

 private:
  std::unique_ptr<MergeJoin> join_;
};

}  // namespace

std::unique_ptr<Operator> RidIndex::Lookup(uint64_t value) const {
  auto it = lists_.find(value);
  return std::make_unique<RidListScan>(it == lists_.end() ? nullptr
                                                          : &it->second);
}

std::unique_ptr<Operator> RidIndex::RangeScan(uint64_t low, uint64_t high,
                                              QueryCounters* counters) const {
  std::vector<std::unique_ptr<Operator>> scans;
  for (auto it = lists_.lower_bound(low);
       it != lists_.end() && it->first <= high; ++it) {
    scans.push_back(std::make_unique<RidListScan>(&it->second));
  }
  return std::make_unique<RidMergeScan>(std::move(scans), counters);
}

std::unique_ptr<Operator> RidIndex::MultiLookup(
    const std::vector<uint64_t>& values, QueryCounters* counters) const {
  std::vector<std::unique_ptr<Operator>> scans;
  for (uint64_t v : values) {
    auto it = lists_.find(v);
    if (it != lists_.end()) {
      scans.push_back(std::make_unique<RidListScan>(&it->second));
    }
  }
  return std::make_unique<RidMergeScan>(std::move(scans), counters);
}

std::unique_ptr<Operator> IntersectRidStreams(Operator* a, Operator* b,
                                              QueryCounters* counters) {
  return std::make_unique<OwningSemiJoin>(a, b, counters);
}

}  // namespace ovc
