// In-memory B-tree with explicit offset-value codes (Section 4.11, and the
// companion work the paper cites as "Storage and access with offset-value
// coding" [22]).
//
// Each leaf entry stores its row's ascending code relative to the tree's
// *global* predecessor row, so an ordered scan "preserves the effort for
// comparisons spent during index creation": it emits rows with codes at
// zero comparison cost. Node splits never touch codes (they do not change
// predecessor relationships). Maintenance:
//
//  * Insert of X between P and N: X's code comes from the descent's final
//    comparison. N's fixup follows from the theorem
//    ovc(P,N) = max(ovc(P,X), ovc(X,N)): when ovc(P,X) < ovc(P,N), N's code
//    is unchanged -- no comparison; only the equal-code case compares, and
//    it starts past the shared prefix and value.
//  * Delete of X between P and N: N's new code is exactly
//    max(ovc(P,X), ovc(X,N)) -- the theorem applied directly, never any
//    column comparison ("efficient maintenance of offset-value codes ...
//    in b-trees with prefix truncation (during key deletion)").
//
// Simplifications vs a disk-based B-tree: nodes are heap-allocated with
// vector storage, and deletion is lazy (no rebalancing; empty leaves are
// unlinked). Neither affects code maintenance, which is the point here.

#ifndef OVC_STORAGE_BTREE_H_
#define OVC_STORAGE_BTREE_H_

#include <memory>
#include <vector>

#include "common/counters.h"
#include "core/ovc.h"
#include "exec/operator.h"
#include "row/comparator.h"
#include "row/row_buffer.h"

namespace ovc {

/// Ordered row store with offset-value-coded scans.
class BTree {
 public:
  /// `schema` and `counters` (optional) must outlive the tree.
  /// `node_capacity` caps entries per node (leaf and internal alike).
  BTree(const Schema* schema, QueryCounters* counters,
        uint32_t node_capacity = 64);
  ~BTree();

  /// Inserts a copy of `row`. Duplicate keys are allowed; a new duplicate
  /// is placed after existing equal keys.
  void Insert(const uint64_t* row);

  /// Deletes the first row whose full key equals `key_row`'s. Returns false
  /// when no such row exists. The successor's code is fixed up by the
  /// theorem, with no column comparisons.
  bool Delete(const uint64_t* key_row);

  /// Rows currently stored.
  uint64_t size() const { return size_; }

  /// Row layout of the stored table (and of every scan).
  const Schema& schema() const { return *schema_; }

  /// Full ordered scan with offset-value codes (zero comparisons).
  /// The returned operator borrows the tree; do not mutate during a scan.
  std::unique_ptr<Operator> Scan() const;

  /// Ordered scan of rows with key >= `low_key` (full-key comparison),
  /// ending at keys > `high_key`. The first emitted row's code is re-based
  /// to offset 0; all further codes come straight from storage.
  std::unique_ptr<Operator> RangeScan(const uint64_t* low_key,
                                      const uint64_t* high_key) const;

  /// Number of successor-code fixups on insert/delete that the theorem
  /// resolved without any column comparison.
  uint64_t free_code_fixups() const { return free_code_fixups_; }
  /// Number of fixups that needed column comparisons (equal-code case).
  uint64_t compared_code_fixups() const { return compared_code_fixups_; }
  /// Height of the tree (1 = a single leaf).
  uint32_t height() const { return height_; }

 private:
  struct Node;
  friend class BTreeScanImpl;

  struct SplitResult {
    Node* right = nullptr;  // nullptr: no split happened
  };

  static void DestroyRecursive(Node* node);
  Node* LeftmostLeaf() const;
  /// Finds the leaf and in-leaf position of the first entry with key >=
  /// `key_row` (comparisons counted).
  void FindLowerBound(const uint64_t* key_row, Node** leaf,
                      uint32_t* pos) const;
  SplitResult InsertInto(Node* node, const uint64_t* row);
  void FixupSuccessorAfterInsert(Node* leaf, uint32_t new_pos);
  void FixupSuccessorAfterDelete(Node* leaf, uint32_t del_pos,
                                 Ovc deleted_code);
  /// The entry following (leaf, pos), possibly in the next leaf.
  bool NextEntry(Node* leaf, uint32_t pos, Node** out_leaf,
                 uint32_t* out_pos) const;

  const Schema* schema_;
  OvcCodec codec_;
  KeyComparator comparator_;
  QueryCounters* counters_;
  uint32_t node_capacity_;

  Node* root_ = nullptr;
  uint64_t size_ = 0;
  uint32_t height_ = 1;
  uint64_t free_code_fixups_ = 0;
  uint64_t compared_code_fixups_ = 0;
};

}  // namespace ovc

#endif  // OVC_STORAGE_BTREE_H_
