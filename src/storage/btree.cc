#include "storage/btree.h"

#include <algorithm>
#include <cstring>

namespace ovc {

struct BTree::Node {
  Node(bool is_leaf, uint32_t width)
      : leaf(is_leaf), rows(width), separators(width) {}

  bool leaf;
  // Leaf payload.
  RowBuffer rows;
  std::vector<Ovc> codes;
  Node* prev = nullptr;
  Node* next = nullptr;
  // Internal payload: separators[i] is a lower bound for children[i]'s keys
  // (exact at split time; deletions may make it conservative, which keeps
  // routing correct because keys only disappear).
  RowBuffer separators;
  std::vector<Node*> children;
};

BTree::BTree(const Schema* schema, QueryCounters* counters,
             uint32_t node_capacity)
    : schema_(schema),
      codec_(schema),
      comparator_(schema, counters),
      counters_(counters),
      node_capacity_(node_capacity) {
  OVC_CHECK(node_capacity >= 4);
  root_ = new Node(/*is_leaf=*/true, schema->total_columns());
}

void BTree::DestroyRecursive(Node* node) {
  if (!node->leaf) {
    for (Node* child : node->children) {
      DestroyRecursive(child);
    }
  }
  delete node;
}

BTree::~BTree() { DestroyRecursive(root_); }

BTree::Node* BTree::LeftmostLeaf() const {
  Node* n = root_;
  while (!n->leaf) {
    n = n->children.front();
  }
  return n;
}

void BTree::FindLowerBound(const uint64_t* key_row, Node** leaf,
                           uint32_t* pos) const {
  Node* n = root_;
  while (!n->leaf) {
    // Largest child whose separator sorts strictly before the key.
    uint32_t lo = 1, hi = static_cast<uint32_t>(n->children.size());
    while (lo < hi) {
      const uint32_t mid = lo + (hi - lo) / 2;
      if (comparator_.Compare(n->separators.row(mid), key_row) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    n = n->children[lo - 1];
  }
  // In-leaf lower bound.
  uint32_t lo = 0, hi = static_cast<uint32_t>(n->rows.size());
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (comparator_.Compare(n->rows.row(mid), key_row) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  // The lower bound may live in a following leaf (conservative separators,
  // empty leaves).
  while (lo >= n->rows.size() && n->next != nullptr) {
    n = n->next;
    lo = 0;
  }
  *leaf = n;
  *pos = lo;
}

bool BTree::NextEntry(Node* leaf, uint32_t pos, Node** out_leaf,
                      uint32_t* out_pos) const {
  if (pos + 1 < leaf->rows.size()) {
    *out_leaf = leaf;
    *out_pos = pos + 1;
    return true;
  }
  Node* n = leaf->next;
  while (n != nullptr && n->rows.empty()) n = n->next;
  if (n == nullptr) return false;
  *out_leaf = n;
  *out_pos = 0;
  return true;
}

void BTree::FixupSuccessorAfterInsert(Node* leaf, uint32_t new_pos) {
  Node* succ_leaf = nullptr;
  uint32_t succ_pos = 0;
  if (!NextEntry(leaf, new_pos, &succ_leaf, &succ_pos)) return;

  const Ovc x_code = leaf->codes[new_pos];
  Ovc& succ_code = succ_leaf->codes[succ_pos];
  // Theorem: ovc(P,N) = max(ovc(P,X), ovc(X,N)), so ovc(P,X) <= ovc(P,N).
  OVC_DCHECK(x_code <= succ_code);
  if (x_code < succ_code) {
    // max is ovc(X,N) = the stored code: nothing to do, no comparison.
    ++free_code_fixups_;
    return;
  }
  // Equal codes: the difference lies past the shared prefix and value.
  ++compared_code_fixups_;
  const uint64_t* x_row = leaf->rows.row(new_pos);
  const uint64_t* succ_row = succ_leaf->rows.row(succ_pos);
  const uint32_t d =
      comparator_.FirstDifference(x_row, succ_row, codec_.ResumeColumn(x_code));
  succ_code = codec_.MakeFromRow(succ_row, d);
}

void BTree::FixupSuccessorAfterDelete(Node* leaf, uint32_t del_pos,
                                      Ovc deleted_code) {
  Node* succ_leaf = nullptr;
  uint32_t succ_pos = 0;
  if (!NextEntry(leaf, del_pos, &succ_leaf, &succ_pos)) return;
  // The theorem applied directly: ovc(P,N) = max(ovc(P,X), ovc(X,N)).
  // Zero column comparisons, always.
  succ_leaf->codes[succ_pos] =
      std::max(deleted_code, succ_leaf->codes[succ_pos]);
  ++free_code_fixups_;
}

BTree::SplitResult BTree::InsertInto(Node* node, const uint64_t* row) {
  if (node->leaf) {
    // Upper bound: new duplicates go after existing equal keys.
    uint32_t lo = 0, hi = static_cast<uint32_t>(node->rows.size());
    while (lo < hi) {
      const uint32_t mid = lo + (hi - lo) / 2;
      if (comparator_.Compare(node->rows.row(mid), row) <= 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    // Compute the new row's code against its predecessor.
    const uint64_t* pred = nullptr;
    if (lo > 0) {
      pred = node->rows.row(lo - 1);
    } else {
      Node* p = node->prev;
      while (p != nullptr && p->rows.empty()) p = p->prev;
      if (p != nullptr) pred = p->rows.row(p->rows.size() - 1);
    }
    Ovc code;
    if (pred == nullptr) {
      code = codec_.MakeInitial(row);
    } else {
      const uint32_t d = comparator_.FirstDifference(pred, row, 0);
      code = codec_.MakeFromRow(row, d);
    }
    // Insert at position lo (RowBuffer has no insert; rebuild tail).
    const uint32_t width = node->rows.width();
    node->rows.AppendRow(row);  // grows by one; now shift into place
    for (uint32_t i = static_cast<uint32_t>(node->rows.size()) - 1; i > lo;
         --i) {
      std::memcpy(node->rows.mutable_row(i), node->rows.row(i - 1),
                  width * sizeof(uint64_t));
    }
    std::memcpy(node->rows.mutable_row(lo), row, width * sizeof(uint64_t));
    node->codes.insert(node->codes.begin() + lo, code);
    FixupSuccessorAfterInsert(node, lo);

    if (node->rows.size() <= node_capacity_) {
      return SplitResult{};
    }
    // Split: move the upper half to a new right sibling. Codes move
    // unchanged -- predecessor relationships are unaffected.
    Node* right = new Node(/*is_leaf=*/true, width);
    const uint32_t mid = static_cast<uint32_t>(node->rows.size()) / 2;
    for (uint32_t i = mid; i < node->rows.size(); ++i) {
      right->rows.AppendRow(node->rows.row(i));
      right->codes.push_back(node->codes[i]);
    }
    RowBuffer left_rows(width);
    std::vector<Ovc> left_codes;
    for (uint32_t i = 0; i < mid; ++i) {
      left_rows.AppendRow(node->rows.row(i));
      left_codes.push_back(node->codes[i]);
    }
    node->rows = std::move(left_rows);
    node->codes = std::move(left_codes);
    right->next = node->next;
    if (right->next != nullptr) right->next->prev = right;
    right->prev = node;
    node->next = right;
    return SplitResult{right};
  }

  // Internal node: route with <= so duplicates insert after equals.
  uint32_t lo = 1, hi = static_cast<uint32_t>(node->children.size());
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (comparator_.Compare(node->separators.row(mid), row) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const uint32_t child_idx = lo - 1;
  SplitResult child_split = InsertInto(node->children[child_idx], row);
  if (child_split.right == nullptr) {
    return SplitResult{};
  }
  // Install the new child with its first key as separator.
  Node* right_child = child_split.right;
  const uint64_t* sep = right_child->leaf
                            ? right_child->rows.row(0)
                            : right_child->separators.row(0);
  const uint32_t width = node->separators.width();
  node->separators.AppendRow(sep);
  for (uint32_t i = static_cast<uint32_t>(node->separators.size()) - 1;
       i > child_idx + 1; --i) {
    std::memcpy(node->separators.mutable_row(i), node->separators.row(i - 1),
                width * sizeof(uint64_t));
  }
  std::memcpy(node->separators.mutable_row(child_idx + 1), sep,
              width * sizeof(uint64_t));
  node->children.insert(node->children.begin() + child_idx + 1, right_child);

  if (node->children.size() <= node_capacity_) {
    return SplitResult{};
  }
  // Split the internal node.
  Node* right = new Node(/*is_leaf=*/false, width);
  const uint32_t mid = static_cast<uint32_t>(node->children.size()) / 2;
  for (uint32_t i = mid; i < node->children.size(); ++i) {
    right->separators.AppendRow(node->separators.row(i));
    right->children.push_back(node->children[i]);
  }
  RowBuffer left_seps(width);
  std::vector<Node*> left_children;
  for (uint32_t i = 0; i < mid; ++i) {
    left_seps.AppendRow(node->separators.row(i));
    left_children.push_back(node->children[i]);
  }
  node->separators = std::move(left_seps);
  node->children = std::move(left_children);
  return SplitResult{right};
}

void BTree::Insert(const uint64_t* row) {
  SplitResult split = InsertInto(root_, row);
  if (split.right != nullptr) {
    Node* new_root = new Node(/*is_leaf=*/false, schema_->total_columns());
    const uint64_t* left_sep =
        root_->leaf ? (root_->rows.empty() ? split.right->rows.row(0)
                                           : root_->rows.row(0))
                    : root_->separators.row(0);
    new_root->separators.AppendRow(left_sep);
    new_root->children.push_back(root_);
    const uint64_t* right_sep = split.right->leaf
                                    ? split.right->rows.row(0)
                                    : split.right->separators.row(0);
    new_root->separators.AppendRow(right_sep);
    new_root->children.push_back(split.right);
    root_ = new_root;
    ++height_;
  }
  ++size_;
}

bool BTree::Delete(const uint64_t* key_row) {
  Node* leaf = nullptr;
  uint32_t pos = 0;
  FindLowerBound(key_row, &leaf, &pos);
  if (pos >= leaf->rows.size() ||
      comparator_.Compare(leaf->rows.row(pos), key_row) != 0) {
    return false;
  }
  const Ovc deleted_code = leaf->codes[pos];
  FixupSuccessorAfterDelete(leaf, pos, deleted_code);
  // Erase the entry (shift down).
  const uint32_t width = leaf->rows.width();
  for (uint32_t i = pos; i + 1 < leaf->rows.size(); ++i) {
    std::memcpy(leaf->rows.mutable_row(i), leaf->rows.row(i + 1),
                width * sizeof(uint64_t));
  }
  // Shrink by rebuilding without the last row.
  RowBuffer shrunk(width);
  for (uint32_t i = 0; i + 1 < leaf->rows.size(); ++i) {
    shrunk.AppendRow(leaf->rows.row(i));
  }
  leaf->rows = std::move(shrunk);
  leaf->codes.erase(leaf->codes.begin() + pos);
  --size_;
  return true;
}

/// Ordered scan over the leaf chain; codes come straight from storage.
class BTreeScanImpl : public Operator {
 public:
  BTreeScanImpl(const Schema* schema, const OvcCodec* codec,
                BTree::Node* start_leaf, uint32_t start_pos,
                BTree::Node* end_leaf, uint32_t end_pos, bool rebase_first)
      : schema_(schema),
        codec_(codec),
        start_leaf_(start_leaf),
        start_pos_(start_pos),
        end_leaf_(end_leaf),
        end_pos_(end_pos),
        rebase_first_(rebase_first) {}

  void Open() override {
    leaf_ = start_leaf_;
    pos_ = start_pos_;
    first_ = true;
  }

  bool Next(RowRef* out) override {
    while (leaf_ != nullptr) {
      if (leaf_ == end_leaf_ && pos_ >= end_pos_) return false;
      if (pos_ < leaf_->rows.size()) break;
      leaf_ = leaf_->next;
      pos_ = 0;
    }
    if (leaf_ == nullptr) return false;
    out->cols = leaf_->rows.row(pos_);
    out->ovc = leaf_->codes[pos_];
    if (first_ && rebase_first_) {
      // A range scan starts mid-stream: the first row's stored code is
      // relative to a row outside the range.
      out->ovc = codec_->MakeInitial(out->cols);
    }
    first_ = false;
    ++pos_;
    return true;
  }

  uint32_t NextBatch(RowBlock* out) override {
    // Copies whole leaf spans (rows and stored codes are contiguous per
    // leaf) instead of walking the chain row by row.
    out->Clear();
    while (!out->full()) {
      while (leaf_ != nullptr) {
        if (leaf_ == end_leaf_ && pos_ >= end_pos_) {
          leaf_ = nullptr;
          break;
        }
        if (pos_ < leaf_->rows.size()) break;
        leaf_ = leaf_->next;
        pos_ = 0;
      }
      if (leaf_ == nullptr) break;
      uint32_t limit = static_cast<uint32_t>(leaf_->rows.size());
      if (leaf_ == end_leaf_ && end_pos_ < limit) limit = end_pos_;
      const uint32_t room = out->capacity() - out->size();
      uint32_t n = limit - pos_;
      if (n > room) n = room;
      out->AppendContiguous(leaf_->rows.row(pos_), leaf_->codes.data() + pos_,
                            n);
      pos_ += n;
      if (first_) {
        if (rebase_first_) {
          out->set_code(0, codec_->MakeInitial(out->row(0)));
        }
        first_ = false;
      }
    }
    return out->size();
  }

  void Close() override {}
  const Schema& schema() const override { return *schema_; }
  bool sorted() const override { return true; }
  bool has_ovc() const override { return true; }

 private:
  const Schema* schema_;
  const OvcCodec* codec_;
  BTree::Node* start_leaf_;
  uint32_t start_pos_;
  BTree::Node* end_leaf_;
  uint32_t end_pos_;
  bool rebase_first_;

  BTree::Node* leaf_ = nullptr;
  uint32_t pos_ = 0;
  bool first_ = true;
};

std::unique_ptr<Operator> BTree::Scan() const {
  return std::make_unique<BTreeScanImpl>(schema_, &codec_, LeftmostLeaf(), 0,
                                         nullptr, 0, /*rebase_first=*/false);
}

std::unique_ptr<Operator> BTree::RangeScan(const uint64_t* low_key,
                                           const uint64_t* high_key) const {
  Node* start_leaf = nullptr;
  uint32_t start_pos = 0;
  FindLowerBound(low_key, &start_leaf, &start_pos);

  // End bound: the first entry strictly greater than high_key. Reuse
  // FindLowerBound and advance over equal keys.
  Node* end_leaf = nullptr;
  uint32_t end_pos = 0;
  FindLowerBound(high_key, &end_leaf, &end_pos);
  while (end_leaf != nullptr && end_pos < end_leaf->rows.size() &&
         comparator_.Compare(end_leaf->rows.row(end_pos), high_key) == 0) {
    ++end_pos;
    while (end_pos >= end_leaf->rows.size() && end_leaf->next != nullptr) {
      end_leaf = end_leaf->next;
      end_pos = 0;
    }
  }
  return std::make_unique<BTreeScanImpl>(schema_, &codec_, start_leaf,
                                         start_pos, end_leaf, end_pos,
                                         /*rebase_first=*/true);
}

}  // namespace ovc
