// Baseline tree-of-losers priority queue WITHOUT offset-value coding.
//
// Identical tournament structure to pq/loser_tree.h, but every match is a
// full key comparison starting at column 0. This is the comparison point for
// the paper's claim 1 ("offset-value coding can speed up external merge
// sort and also its consumers"): same algorithm, same memory layout, only
// the coding is missing.

#ifndef OVC_PQ_PLAIN_LOSER_TREE_H_
#define OVC_PQ_PLAIN_LOSER_TREE_H_

#include <cstdint>
#include <vector>

#include "core/row_ref.h"
#include "pq/loser_tree.h"
#include "row/comparator.h"

namespace ovc {

/// Merges F sorted inputs with full key comparisons (no codes). Output rows
/// carry no usable offset-value code (RowRef::ovc is the duplicate-free
/// naive recomputation only if requested via `derive_output_codes`, priced
/// at one extra row comparison per output row -- the expensive method the
/// paper's introduction describes).
class PlainMerger {
 public:
  struct Options {
    /// When true, the merger derives output codes the naive way: comparing
    /// each output row to its predecessor, column by column.
    bool derive_output_codes;

    Options() : derive_output_codes(false) {}
  };

  PlainMerger(const OvcCodec* codec, const KeyComparator* comparator,
              std::vector<MergeSource*> sources, Options options = Options());

  /// Next merged row. RowRef::ovc is meaningful only with
  /// `derive_output_codes`.
  bool Next(RowRef* out);

 private:
  struct Entry {
    uint32_t slot;
    bool exhausted;
  };

  Entry LeafEntry(uint32_t slot);
  Entry FetchSuccessor(uint32_t slot);
  Entry BuildWinner(uint32_t node);
  Entry PlayMatch(uint32_t node, Entry a, Entry b);

  const OvcCodec* codec_;
  const KeyComparator* comparator_;
  std::vector<MergeSource*> sources_;
  Options options_;

  uint32_t capacity_ = 0;
  std::vector<Entry> nodes_;
  std::vector<const uint64_t*> rows_;
  std::vector<uint64_t> prev_row_;  // for naive output-code derivation
  bool has_prev_ = false;
  Entry winner_{0, true};
  bool started_ = false;
};

/// Sorts an in-memory batch with a plain loser tree (full comparisons).
class PlainPqSorter {
 public:
  PlainPqSorter(const OvcCodec* codec, const KeyComparator* comparator);

  void Reset(const uint64_t* const* rows, uint32_t count);
  bool Next(RowRef* out);

 private:
  struct Entry {
    uint32_t slot;
    bool exhausted;
  };

  Entry BuildWinner(uint32_t node);
  Entry PlayMatch(uint32_t node, Entry a, Entry b);

  const OvcCodec* codec_;
  const KeyComparator* comparator_;
  uint32_t capacity_ = 0;
  uint32_t count_ = 0;
  std::vector<Entry> nodes_;
  std::vector<bool> done_;
  const uint64_t* const* rows_ = nullptr;
  Entry winner_{0, true};
  bool started_ = false;
};

}  // namespace ovc

#endif  // OVC_PQ_PLAIN_LOSER_TREE_H_
