// Tree-of-losers priority queue with offset-value coding (Section 3).
//
// The tree embeds a balanced binary tournament in an array. Each internal
// node holds the loser of its match; the overall winner sits above the root.
// Replacing a winner with its successor retraces exactly the winner's
// leaf-to-root path -- one comparison per level -- and every key on that
// path is coded relative to the prior overall winner, so offset-value codes
// decide most comparisons with a single integer compare.
//
// Two classes:
//  * OvcMerger merges F sorted inputs that carry offset-value codes and
//    produces a sorted output stream with correct codes -- the codes emitted
//    are the winners' codes, which are relative to the previous overall
//    winner, i.e. the previous output row. This is the merge step of
//    external sort, the merging exchange, LSM compaction, and the model for
//    merge join.
//  * PqSorter sorts an in-memory batch by merging N single-row runs
//    ("run generation merges 'sorted' runs of a single row each"): queue
//    build-up and tear-down only, near-optimal comparison counts, and the
//    output carries offset-value codes as a byproduct.
//
// Exhausted inputs fold into the code word as late fences, so the test for
// a valid key and the comparison of codes are one unsigned integer
// comparison ("the comparison of offset-value codes is practically free",
// Section 5).

#ifndef OVC_PQ_LOSER_TREE_H_
#define OVC_PQ_LOSER_TREE_H_

#include <cstdint>
#include <vector>

#include "common/bits.h"
#include "core/ovc.h"
#include "core/ovc_compare.h"
#include "core/row_ref.h"
#include "row/comparator.h"
#include "row/row_block.h"

namespace ovc {

/// Pull interface for one sorted, offset-value-coded merge input.
class MergeSource {
 public:
  virtual ~MergeSource() = default;

  /// Produces the next row and its code relative to this input's previous
  /// row (the input's first row must be coded at offset 0, i.e. relative to
  /// minus infinity). Returns false at end of input. The returned pointer
  /// must stay valid until the next call on this source.
  virtual bool Next(const uint64_t** row, Ovc* code) = 0;
};

/// Merges F sorted OVC streams into one sorted OVC stream.
///
/// `Source` is the concrete input type; it only needs
/// `bool Next(const uint64_t**, Ovc*)`. With `Source = MergeSource` (the
/// `OvcMerger` alias below) inputs are pulled through a virtual call, which
/// is what heterogeneous merges (exchange, LSM forests) need. Instantiated
/// over a `final` concrete source (InMemoryRunSource, RunFileReader) the
/// compiler devirtualizes and inlines the per-row refill into the tournament
/// loop -- the hot path of every external-sort merge -- so the inner loop
/// carries no indirect calls at all.
template <typename Source>
class OvcMergerT {
 public:
  struct Options {
    /// Section 5 fast path: when the next row from the winner's input
    /// carries the duplicate code (offset == arity), it is equal to the row
    /// just emitted and goes directly to the output, bypassing the merge
    /// logic entirely.
    bool duplicate_bypass;

    Options() : duplicate_bypass(true) {}
  };

  /// `codec` and `comparator` must outlive the merger; `sources` are
  /// borrowed. At least one source is required.
  OvcMergerT(const OvcCodec* codec, const KeyComparator* comparator,
             std::vector<Source*> sources, Options options = Options())
      : codec_(codec),
        comparator_(comparator),
        sources_(std::move(sources)),
        options_(options) {
    OVC_CHECK(!sources_.empty());
    capacity_ = CeilToPowerOfTwo(static_cast<uint32_t>(sources_.size()));
    nodes_.assign(capacity_, Entry{OvcCodec::LateFence(), 0});
    rows_.assign(capacity_, nullptr);
  }

  /// Produces the next merged row; its code is relative to the previously
  /// produced row. Returns false when all inputs are exhausted. The row
  /// pointer stays valid until the next Next()/destruction.
  bool Next(RowRef* out) {
    if (!started_) {
      started_ = true;
      if (capacity_ == 1) {
        winner_ = LeafEntry(0);
      } else {
        winner_ = BuildWinner(1);
      }
    } else {
      Advance();
    }
    if (!OvcCodec::IsValid(winner_.code)) {
      return false;
    }
    out->cols = rows_[winner_.slot];
    out->ovc = winner_.code;
    return true;
  }

  /// Block-sized output: clears `out` and fills it with up to
  /// out->capacity() merged rows (copied out of the sources' buffers), so a
  /// consumer takes whole blocks between tournament refills. Codes follow
  /// the stream contract across block boundaries (the first row of a block
  /// is coded relative to the last row of the previous block). Returns the
  /// number of rows produced; 0 means all inputs are exhausted.
  uint32_t NextBlock(RowBlock* out) {
    out->Clear();
    RowRef ref;
    while (!out->full() && Next(&ref)) {
      out->Append(ref.cols, ref.ovc);
    }
    return out->size();
  }

  /// Number of inputs merged.
  uint32_t fan_in() const { return static_cast<uint32_t>(sources_.size()); }

 private:
  struct Entry {
    Ovc code;
    uint32_t slot;
  };

  Entry LeafEntry(uint32_t slot) {
    if (slot >= sources_.size()) {
      // Padding slot beyond the real fan-in: permanently exhausted.
      return Entry{OvcCodec::LateFence(), slot};
    }
    return FetchSuccessor(slot);
  }

  Entry FetchSuccessor(uint32_t slot) {
    const uint64_t* row = nullptr;
    Ovc code = 0;
    if (!sources_[slot]->Next(&row, &code)) {
      rows_[slot] = nullptr;
      return Entry{OvcCodec::LateFence(), slot};
    }
    OVC_DCHECK(OvcCodec::IsValid(code));
    rows_[slot] = row;
    return Entry{code, slot};
  }

  Entry BuildWinner(uint32_t node) {
    if (node >= capacity_) {
      return LeafEntry(node - capacity_);
    }
    Entry a = BuildWinner(2 * node);
    Entry b = BuildWinner(2 * node + 1);
    return PlayMatch(node, a, b);
  }

  void Advance() {
    const uint32_t slot = winner_.slot;
    Entry cand = FetchSuccessor(slot);
    if (options_.duplicate_bypass && codec_->IsDuplicate(cand.code)) {
      // Section 5: the successor equals the row just emitted; no key in the
      // tree can sort earlier, so it goes straight to the output. All parked
      // codes stay valid because the new base has the same sort key.
      if (comparator_->counters() != nullptr) {
        ++comparator_->counters()->merge_bypass_rows;
      }
      winner_ = cand;
      return;
    }
    uint32_t node = (capacity_ + slot) >> 1;
    while (node >= 1) {
      cand = PlayMatch(node, cand, nodes_[node]);
      node >>= 1;
    }
    winner_ = cand;
  }

  /// Plays one match: returns the winner, parks the loser at nodes_[node].
  Entry PlayMatch(uint32_t node, Entry a, Entry b) {
    const int cmp = CompareWithOvc(*codec_, *comparator_, rows_[a.slot],
                                   &a.code, rows_[b.slot], &b.code);
    Entry winner, loser;
    if (cmp < 0 || (cmp == 0 && a.slot < b.slot)) {
      winner = a;
      loser = b;
    } else {
      winner = b;
      loser = a;
    }
    if (cmp == 0 && OvcCodec::IsValid(loser.code)) {
      // Equal keys: the loser is a full-key duplicate of the winner.
      loser.code = codec_->DuplicateCode();
    }
    nodes_[node] = loser;
    return winner;
  }

  const OvcCodec* codec_;
  const KeyComparator* comparator_;
  std::vector<Source*> sources_;
  Options options_;

  uint32_t capacity_ = 0;                 // padded power of two
  std::vector<Entry> nodes_;              // 1..capacity_-1 hold losers
  std::vector<const uint64_t*> rows_;     // current candidate row per slot
  Entry winner_{OvcCodec::LateFence(), 0};
  bool started_ = false;
};

/// The polymorphic merger: inputs pulled through the MergeSource vtable.
using OvcMerger = OvcMergerT<MergeSource>;

/// Sorts a batch of rows by building a tree of single-row runs and tearing
/// it down. Produces output codes as a byproduct of the sort.
class PqSorter {
 public:
  /// `codec` and `comparator` must outlive the sorter.
  PqSorter(const OvcCodec* codec, const KeyComparator* comparator);

  /// Initializes the tournament over `rows` (borrowed pointers; must stay
  /// valid until the sorter is exhausted). May be called again after the
  /// previous sort finished, reusing the tree allocation.
  void Reset(const uint64_t* const* rows, uint32_t count);

  /// Pops the next row in sort order with its output code.
  bool Next(RowRef* out);

 private:
  struct Entry {
    Ovc code;
    uint32_t slot;
  };

  Entry BuildWinner(uint32_t node);
  Entry PlayMatch(uint32_t node, Entry a, Entry b);

  const OvcCodec* codec_;
  const KeyComparator* comparator_;
  uint32_t capacity_ = 0;
  uint32_t count_ = 0;
  std::vector<Entry> nodes_;
  const uint64_t* const* rows_ = nullptr;
  Entry winner_{OvcCodec::LateFence(), 0};
  bool started_ = false;
};

}  // namespace ovc

#endif  // OVC_PQ_LOSER_TREE_H_
