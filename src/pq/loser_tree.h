// Tree-of-losers priority queue with offset-value coding (Section 3).
//
// The tree embeds a balanced binary tournament in an array. Each internal
// node holds the loser of its match; the overall winner sits above the root.
// Replacing a winner with its successor retraces exactly the winner's
// leaf-to-root path -- one comparison per level -- and every key on that
// path is coded relative to the prior overall winner, so offset-value codes
// decide most comparisons with a single integer compare.
//
// Two classes:
//  * OvcMerger merges F sorted inputs that carry offset-value codes and
//    produces a sorted output stream with correct codes -- the codes emitted
//    are the winners' codes, which are relative to the previous overall
//    winner, i.e. the previous output row. This is the merge step of
//    external sort, the merging exchange, LSM compaction, and the model for
//    merge join.
//  * PqSorter sorts an in-memory batch by merging N single-row runs
//    ("run generation merges 'sorted' runs of a single row each"): queue
//    build-up and tear-down only, near-optimal comparison counts, and the
//    output carries offset-value codes as a byproduct.
//
// Exhausted inputs fold into the code word as late fences, so the test for
// a valid key and the comparison of codes are one unsigned integer
// comparison ("the comparison of offset-value codes is practically free",
// Section 5).

#ifndef OVC_PQ_LOSER_TREE_H_
#define OVC_PQ_LOSER_TREE_H_

#include <cstdint>
#include <vector>

#include "core/ovc.h"
#include "core/ovc_compare.h"
#include "core/row_ref.h"
#include "row/comparator.h"

namespace ovc {

/// Pull interface for one sorted, offset-value-coded merge input.
class MergeSource {
 public:
  virtual ~MergeSource() = default;

  /// Produces the next row and its code relative to this input's previous
  /// row (the input's first row must be coded at offset 0, i.e. relative to
  /// minus infinity). Returns false at end of input. The returned pointer
  /// must stay valid until the next call on this source.
  virtual bool Next(const uint64_t** row, Ovc* code) = 0;
};

/// Merges F sorted OVC streams into one sorted OVC stream.
class OvcMerger {
 public:
  struct Options {
    /// Section 5 fast path: when the next row from the winner's input
    /// carries the duplicate code (offset == arity), it is equal to the row
    /// just emitted and goes directly to the output, bypassing the merge
    /// logic entirely.
    bool duplicate_bypass;

    Options() : duplicate_bypass(true) {}
  };

  /// `codec` and `comparator` must outlive the merger; `sources` are
  /// borrowed. At least one source is required.
  OvcMerger(const OvcCodec* codec, const KeyComparator* comparator,
            std::vector<MergeSource*> sources, Options options = Options());

  /// Produces the next merged row; its code is relative to the previously
  /// produced row. Returns false when all inputs are exhausted. The row
  /// pointer stays valid until the next Next()/destruction.
  bool Next(RowRef* out);

  /// Number of inputs merged.
  uint32_t fan_in() const { return static_cast<uint32_t>(sources_.size()); }

 private:
  struct Entry {
    Ovc code;
    uint32_t slot;
  };

  Entry LeafEntry(uint32_t slot);
  Entry FetchSuccessor(uint32_t slot);
  Entry BuildWinner(uint32_t node);
  void Advance();
  /// Plays one match: returns the winner, parks the loser at nodes_[node].
  Entry PlayMatch(uint32_t node, Entry a, Entry b);

  const OvcCodec* codec_;
  const KeyComparator* comparator_;
  std::vector<MergeSource*> sources_;
  Options options_;

  uint32_t capacity_ = 0;                 // padded power of two
  std::vector<Entry> nodes_;              // 1..capacity_-1 hold losers
  std::vector<const uint64_t*> rows_;     // current candidate row per slot
  Entry winner_{OvcCodec::LateFence(), 0};
  bool started_ = false;
};

/// Sorts a batch of rows by building a tree of single-row runs and tearing
/// it down. Produces output codes as a byproduct of the sort.
class PqSorter {
 public:
  /// `codec` and `comparator` must outlive the sorter.
  PqSorter(const OvcCodec* codec, const KeyComparator* comparator);

  /// Initializes the tournament over `rows` (borrowed pointers; must stay
  /// valid until the sorter is exhausted). May be called again after the
  /// previous sort finished, reusing the tree allocation.
  void Reset(const uint64_t* const* rows, uint32_t count);

  /// Pops the next row in sort order with its output code.
  bool Next(RowRef* out);

 private:
  struct Entry {
    Ovc code;
    uint32_t slot;
  };

  Entry BuildWinner(uint32_t node);
  Entry PlayMatch(uint32_t node, Entry a, Entry b);

  const OvcCodec* codec_;
  const KeyComparator* comparator_;
  uint32_t capacity_ = 0;
  uint32_t count_ = 0;
  std::vector<Entry> nodes_;
  const uint64_t* const* rows_ = nullptr;
  Entry winner_{OvcCodec::LateFence(), 0};
  bool started_ = false;
};

}  // namespace ovc

#endif  // OVC_PQ_LOSER_TREE_H_
