#include "pq/plain_loser_tree.h"

#include <cstring>

#include "common/bits.h"
#include "core/ovc_reference.h"

namespace ovc {

PlainMerger::PlainMerger(const OvcCodec* codec, const KeyComparator* comparator,
                         std::vector<MergeSource*> sources, Options options)
    : codec_(codec),
      comparator_(comparator),
      sources_(std::move(sources)),
      options_(options) {
  OVC_CHECK(!sources_.empty());
  capacity_ = CeilToPowerOfTwo(static_cast<uint32_t>(sources_.size()));
  nodes_.assign(capacity_, Entry{0, true});
  rows_.assign(capacity_, nullptr);
  prev_row_.assign(codec_->schema().total_columns(), 0);
}

PlainMerger::Entry PlainMerger::LeafEntry(uint32_t slot) {
  if (slot >= sources_.size()) {
    return Entry{slot, true};
  }
  return FetchSuccessor(slot);
}

PlainMerger::Entry PlainMerger::FetchSuccessor(uint32_t slot) {
  const uint64_t* row = nullptr;
  Ovc code = 0;
  if (!sources_[slot]->Next(&row, &code)) {
    rows_[slot] = nullptr;
    return Entry{slot, true};
  }
  rows_[slot] = row;
  return Entry{slot, false};
}

PlainMerger::Entry PlainMerger::PlayMatch(uint32_t node, Entry a, Entry b) {
  Entry winner, loser;
  if (a.exhausted || b.exhausted) {
    // No key comparison needed against an exhausted input.
    if (a.exhausted && b.exhausted) {
      winner = a.slot < b.slot ? a : b;
      loser = a.slot < b.slot ? b : a;
    } else if (a.exhausted) {
      winner = b;
      loser = a;
    } else {
      winner = a;
      loser = b;
    }
  } else {
    const int cmp = comparator_->Compare(rows_[a.slot], rows_[b.slot]);
    if (cmp < 0 || (cmp == 0 && a.slot < b.slot)) {
      winner = a;
      loser = b;
    } else {
      winner = b;
      loser = a;
    }
  }
  nodes_[node] = loser;
  return winner;
}

PlainMerger::Entry PlainMerger::BuildWinner(uint32_t node) {
  if (node >= capacity_) {
    return LeafEntry(node - capacity_);
  }
  Entry a = BuildWinner(2 * node);
  Entry b = BuildWinner(2 * node + 1);
  return PlayMatch(node, a, b);
}

bool PlainMerger::Next(RowRef* out) {
  if (!started_) {
    started_ = true;
    if (capacity_ == 1) {
      winner_ = LeafEntry(0);
    } else {
      winner_ = BuildWinner(1);
    }
  } else {
    Entry cand = FetchSuccessor(winner_.slot);
    uint32_t node = (capacity_ + winner_.slot) >> 1;
    while (node >= 1) {
      cand = PlayMatch(node, cand, nodes_[node]);
      node >>= 1;
    }
    winner_ = cand;
  }
  if (winner_.exhausted) {
    return false;
  }
  const uint64_t* row = rows_[winner_.slot];
  out->cols = row;
  out->ovc = 0;
  if (options_.derive_output_codes) {
    // The naive method: one more full comparison per output row.
    out->ovc = has_prev_ ? reference::AscendingOvc(*codec_, prev_row_.data(),
                                                   row)
                         : codec_->MakeInitial(row);
    std::memcpy(prev_row_.data(), row,
                codec_->schema().total_columns() * sizeof(uint64_t));
    has_prev_ = true;
    if (comparator_->counters() != nullptr) {
      comparator_->counters()->column_comparisons +=
          codec_->OffsetOf(out->ovc) + (codec_->IsDuplicate(out->ovc) ? 0 : 1);
      ++comparator_->counters()->row_comparisons;
    }
  }
  return true;
}

PlainPqSorter::PlainPqSorter(const OvcCodec* codec,
                             const KeyComparator* comparator)
    : codec_(codec), comparator_(comparator) {}

void PlainPqSorter::Reset(const uint64_t* const* rows, uint32_t count) {
  rows_ = rows;
  count_ = count;
  capacity_ = CeilToPowerOfTwo(count == 0 ? 1 : count);
  nodes_.assign(capacity_, Entry{0, true});
  done_.assign(count, false);
  started_ = false;
  winner_ = Entry{0, true};
}

PlainPqSorter::Entry PlainPqSorter::PlayMatch(uint32_t node, Entry a,
                                              Entry b) {
  Entry winner, loser;
  if (a.exhausted || b.exhausted) {
    if (a.exhausted && b.exhausted) {
      winner = a.slot < b.slot ? a : b;
      loser = a.slot < b.slot ? b : a;
    } else if (a.exhausted) {
      winner = b;
      loser = a;
    } else {
      winner = a;
      loser = b;
    }
  } else {
    const int cmp = comparator_->Compare(rows_[a.slot], rows_[b.slot]);
    if (cmp < 0 || (cmp == 0 && a.slot < b.slot)) {
      winner = a;
      loser = b;
    } else {
      winner = b;
      loser = a;
    }
  }
  nodes_[node] = loser;
  return winner;
}

PlainPqSorter::Entry PlainPqSorter::BuildWinner(uint32_t node) {
  if (node >= capacity_) {
    const uint32_t slot = node - capacity_;
    return Entry{slot, slot >= count_};
  }
  Entry a = BuildWinner(2 * node);
  Entry b = BuildWinner(2 * node + 1);
  return PlayMatch(node, a, b);
}

bool PlainPqSorter::Next(RowRef* out) {
  if (!started_) {
    started_ = true;
    if (count_ == 0) return false;
    if (capacity_ == 1) {
      winner_ = Entry{0, false};
    } else {
      winner_ = BuildWinner(1);
    }
  } else {
    Entry cand{winner_.slot, true};
    uint32_t node = (capacity_ + winner_.slot) >> 1;
    while (node >= 1) {
      cand = PlayMatch(node, cand, nodes_[node]);
      node >>= 1;
    }
    winner_ = cand;
  }
  if (winner_.exhausted) {
    return false;
  }
  out->cols = rows_[winner_.slot];
  out->ovc = 0;
  return true;
}

}  // namespace ovc
