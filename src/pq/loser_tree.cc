#include "pq/loser_tree.h"

#include "common/bits.h"

namespace ovc {

// OvcMergerT (the merge half of this header's machinery) is a template and
// lives entirely in loser_tree.h; this translation unit holds PqSorter.

PqSorter::PqSorter(const OvcCodec* codec, const KeyComparator* comparator)
    : codec_(codec), comparator_(comparator) {}

void PqSorter::Reset(const uint64_t* const* rows, uint32_t count) {
  rows_ = rows;
  count_ = count;
  capacity_ = CeilToPowerOfTwo(count == 0 ? 1 : count);
  nodes_.assign(capacity_, Entry{OvcCodec::LateFence(), 0});
  started_ = false;
  winner_ = Entry{OvcCodec::LateFence(), 0};
}

PqSorter::Entry PqSorter::PlayMatch(uint32_t node, Entry a, Entry b) {
  // Rows of exhausted slots are never dereferenced: their codes are fences,
  // and CompareWithOvc touches rows only when both codes are equal and valid.
  const uint64_t* ra = a.slot < count_ ? rows_[a.slot] : nullptr;
  const uint64_t* rb = b.slot < count_ ? rows_[b.slot] : nullptr;
  const int cmp =
      CompareWithOvc(*codec_, *comparator_, ra, &a.code, rb, &b.code);
  Entry winner, loser;
  if (cmp < 0 || (cmp == 0 && a.slot < b.slot)) {
    winner = a;
    loser = b;
  } else {
    winner = b;
    loser = a;
  }
  if (cmp == 0 && OvcCodec::IsValid(loser.code)) {
    loser.code = codec_->DuplicateCode();
  }
  nodes_[node] = loser;
  return winner;
}

PqSorter::Entry PqSorter::BuildWinner(uint32_t node) {
  if (node >= capacity_) {
    const uint32_t slot = node - capacity_;
    if (slot >= count_) {
      return Entry{OvcCodec::LateFence(), slot};
    }
    // Each row is a single-row run: its code is relative to minus infinity.
    return Entry{codec_->MakeInitial(rows_[slot]), slot};
  }
  Entry a = BuildWinner(2 * node);
  Entry b = BuildWinner(2 * node + 1);
  return PlayMatch(node, a, b);
}

bool PqSorter::Next(RowRef* out) {
  if (!started_) {
    started_ = true;
    if (count_ == 0) return false;
    if (capacity_ == 1) {
      winner_ = Entry{codec_->MakeInitial(rows_[0]), 0};
    } else {
      winner_ = BuildWinner(1);
    }
  } else {
    // The winner's run is a single row, so its successor is a late fence;
    // replaying the path is pure tear-down.
    Entry cand{OvcCodec::LateFence(), winner_.slot};
    uint32_t node = (capacity_ + winner_.slot) >> 1;
    while (node >= 1) {
      cand = PlayMatch(node, cand, nodes_[node]);
      node >>= 1;
    }
    winner_ = cand;
  }
  if (!OvcCodec::IsValid(winner_.code)) {
    return false;
  }
  out->cols = rows_[winner_.slot];
  out->ovc = winner_.code;
  return true;
}

}  // namespace ovc
