// Spilled (on-disk) sorted runs with prefix truncation.
//
// The run format stores each row's key with its shared prefix removed: a
// 16-bit offset (the length of the prefix shared with the predecessor row,
// which is exactly the offset of the row's offset-value code) followed by
// the remaining key columns and all payload columns. This realizes the
// paper's observation (Section 4.12) that ordered storage can "preserve the
// effort for comparisons spent during index creation ... by prefix
// truncation", and that scans over such storage produce offset-value codes
// practically for free: the reader reconstructs each row AND its code
// without a single column comparison.

#ifndef OVC_SORT_RUN_FILE_H_
#define OVC_SORT_RUN_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/temp_file.h"
#include "core/ovc.h"
#include "pq/loser_tree.h"
#include "row/schema.h"

namespace ovc {

/// Writes a sorted OVC stream to a prefix-truncated run file.
class RunFileWriter {
 public:
  /// `schema` must outlive the writer; `counters` (optional) accumulates
  /// spill volume.
  RunFileWriter(const Schema* schema, QueryCounters* counters)
      : schema_(schema), codec_(schema), counters_(counters) {}

  /// Opens `path` for writing.
  Status Open(const std::string& path);

  /// Appends the next row; `code` must be the row's code relative to the
  /// previously appended row (offset 0 for the first row). The code's
  /// offset determines how many key columns are truncated.
  Status Append(const uint64_t* row, Ovc code);

  /// Flushes and closes the file.
  Status Close();

  /// Rows appended so far.
  uint64_t rows() const { return rows_; }

 private:
  const Schema* schema_;
  OvcCodec codec_;
  QueryCounters* counters_;
  FileWriter file_;
  uint64_t rows_ = 0;
  uint64_t retries_folded_ = 0;
};

/// Reads a prefix-truncated run file back as a MergeSource: rows come out
/// with their offset-value codes, at zero column-comparison cost. `final`
/// so that OvcMergerT<RunFileReader> devirtualizes Next() in external
/// sort's merge inner loop.
class RunFileReader final : public MergeSource {
 public:
  explicit RunFileReader(const Schema* schema)
      : schema_(schema), codec_(schema),
        row_(schema->total_columns(), 0) {}

  /// Opens `path` for reading.
  Status Open(const std::string& path);

  /// MergeSource: next row + code. Aborts on I/O errors mid-run (a
  /// corrupted spill file is not recoverable by the query).
  bool Next(const uint64_t** row, Ovc* code) override;

 private:
  const Schema* schema_;
  OvcCodec codec_;
  std::vector<uint64_t> row_;  // reconstruction buffer (previous row's
                               // prefix stays in place)
  FileReader file_;
  bool open_ = false;
};

/// A spilled run: its path and row count. Value type handed between run
/// generation and merge planning.
struct SpilledRun {
  std::string path;
  uint64_t rows = 0;
};

}  // namespace ovc

#endif  // OVC_SORT_RUN_FILE_H_
