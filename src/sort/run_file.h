// Spilled (on-disk) sorted runs with prefix truncation.
//
// The run format stores each row's key with its shared prefix removed: a
// 16-bit offset (the length of the prefix shared with the predecessor row,
// which is exactly the offset of the row's offset-value code) followed by
// the remaining key columns and all payload columns. This realizes the
// paper's observation (Section 4.12) that ordered storage can "preserve the
// effort for comparisons spent during index creation ... by prefix
// truncation", and that scans over such storage produce offset-value codes
// practically for free: the reader reconstructs each row AND its code
// without a single column comparison.

#ifndef OVC_SORT_RUN_FILE_H_
#define OVC_SORT_RUN_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/temp_file.h"
#include "core/ovc.h"
#include "pq/loser_tree.h"
#include "row/schema.h"

namespace ovc {

/// Writes a sorted OVC stream to a prefix-truncated run file.
class RunFileWriter {
 public:
  /// `schema` must outlive the writer; `counters` (optional) accumulates
  /// spill volume.
  RunFileWriter(const Schema* schema, QueryCounters* counters)
      : schema_(schema), codec_(schema), counters_(counters) {}

  /// Opens `path` for writing.
  Status Open(const std::string& path);

  /// Appends the next row; `code` must be the row's code relative to the
  /// previously appended row (offset 0 for the first row). The code's
  /// offset determines how many key columns are truncated.
  Status Append(const uint64_t* row, Ovc code);

  /// Flushes and closes the file.
  Status Close();

  /// Rows appended so far.
  uint64_t rows() const { return rows_; }

 private:
  const Schema* schema_;
  OvcCodec codec_;
  QueryCounters* counters_;
  FileWriter file_;
  uint64_t rows_ = 0;
  uint64_t retries_folded_ = 0;
};

/// Reads a prefix-truncated run file back as a MergeSource: rows come out
/// with their offset-value codes, at zero column-comparison cost. `final`
/// so that OvcMergerT<RunFileReader> devirtualizes Next() in external
/// sort's merge inner loop.
class RunFileReader final : public MergeSource {
 public:
  /// `error_sink` wires mid-run I/O errors into the degrade contract
  /// (docs/ROBUSTNESS.md): a failed or short read is recorded as the
  /// manager's first error and the reader reports end-of-stream, so the
  /// plan executor surfaces a clean error after the run. Query-execution
  /// callers (sort, aggregate, join spills) must pass their temp manager;
  /// only storage scans that own their run files may pass nullptr, which
  /// restores the old behavior of aborting on a corrupt spill.
  explicit RunFileReader(const Schema* schema,
                         TempFileManager* error_sink = nullptr)
      : schema_(schema), codec_(schema), error_sink_(error_sink),
        row_(schema->total_columns(), 0) {}

  /// Opens `path` for reading.
  Status Open(const std::string& path);

  /// MergeSource: next row + code. On a mid-run I/O error, records the
  /// error in `error_sink` and reports end-of-stream (see constructor).
  bool Next(const uint64_t** row, Ovc* code) override;

 private:
  /// Records `status` (non-OK) and ends the stream; aborts when no sink
  /// was wired. Returns false so Next can `return Fail(st)`.
  bool Fail(const Status& status);

  const Schema* schema_;
  OvcCodec codec_;
  TempFileManager* error_sink_;
  std::vector<uint64_t> row_;  // reconstruction buffer (previous row's
                               // prefix stays in place)
  FileReader file_;
  bool open_ = false;
  bool failed_ = false;
};

/// A spilled run: its path and row count. Value type handed between run
/// generation and merge planning.
struct SpilledRun {
  std::string path;
  uint64_t rows = 0;
};

}  // namespace ovc

#endif  // OVC_SORT_RUN_FILE_H_
