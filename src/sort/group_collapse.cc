#include "sort/group_collapse.h"

#include <algorithm>
#include <cstring>

namespace ovc {

void MergeStateRow(const Schema& schema, const std::vector<StateMergeFn>& fns,
                   const uint64_t* src, uint64_t* dst) {
  const uint32_t arity = schema.key_arity();
  for (uint32_t p = 0; p < schema.payload_columns(); ++p) {
    uint64_t& acc = dst[arity + p];
    const uint64_t v = src[arity + p];
    switch (fns[p]) {
      case StateMergeFn::kSum:
        acc += v;
        break;
      case StateMergeFn::kMin:
        acc = std::min(acc, v);
        break;
      case StateMergeFn::kMax:
        acc = std::max(acc, v);
        break;
    }
  }
}

CollapsingSink::CollapsingSink(const Schema* schema,
                               std::vector<StateMergeFn> fns, RunSink* inner)
    : schema_(schema),
      codec_(schema),
      fns_(std::move(fns)),
      inner_(inner),
      pending_(schema->total_columns(), 0) {
  OVC_CHECK(fns_.size() == schema->payload_columns());
}

void CollapsingSink::Accept(const uint64_t* row, Ovc code) {
  if (has_pending_ && codec_.IsDuplicate(code)) {
    // Same group as the pending row: fold, detected from the code alone.
    MergeStateRow(*schema_, fns_, row, pending_.data());
    return;
  }
  if (has_pending_) {
    inner_->Accept(pending_.data(), pending_code_);
    ++groups_;
  }
  std::memcpy(pending_.data(), row,
              schema_->total_columns() * sizeof(uint64_t));
  pending_code_ = code;
  has_pending_ = true;
}

void CollapsingSink::Flush() {
  if (has_pending_) {
    inner_->Accept(pending_.data(), pending_code_);
    ++groups_;
    has_pending_ = false;
  }
}

CollapsingSource::CollapsingSource(const Schema* schema,
                                   std::vector<StateMergeFn> fns,
                                   MergeSource* inner)
    : schema_(schema),
      codec_(schema),
      fns_(std::move(fns)),
      inner_(inner),
      current_(schema->total_columns(), 0),
      lookahead_(schema->total_columns(), 0) {
  OVC_CHECK(fns_.size() == schema->payload_columns());
}

bool CollapsingSource::Next(const uint64_t** row, Ovc* code) {
  if (done_ && !has_lookahead_) return false;
  // Load the group's first row.
  if (has_lookahead_) {
    current_.swap(lookahead_);
    current_code_ = lookahead_code_;
    has_lookahead_ = false;
  } else {
    const uint64_t* r = nullptr;
    Ovc c = 0;
    if (!inner_->Next(&r, &c)) {
      done_ = true;
      return false;
    }
    std::memcpy(current_.data(), r,
                schema_->total_columns() * sizeof(uint64_t));
    current_code_ = c;
  }
  // Fold duplicates until the next group (or end of input).
  while (true) {
    const uint64_t* r = nullptr;
    Ovc c = 0;
    if (!inner_->Next(&r, &c)) {
      done_ = true;
      break;
    }
    if (codec_.IsDuplicate(c)) {
      MergeStateRow(*schema_, fns_, r, current_.data());
      continue;
    }
    std::memcpy(lookahead_.data(), r,
                schema_->total_columns() * sizeof(uint64_t));
    lookahead_code_ = c;
    has_lookahead_ = true;
    break;
  }
  *row = current_.data();
  *code = current_code_;
  return true;
}

}  // namespace ovc
