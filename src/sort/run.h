// In-memory sorted runs.

#ifndef OVC_SORT_RUN_H_
#define OVC_SORT_RUN_H_

#include <cstdint>
#include <vector>

#include "core/ovc.h"
#include "pq/loser_tree.h"
#include "row/row_block.h"
#include "row/row_buffer.h"

namespace ovc {

/// A sorted sequence of rows held in memory, each with its offset-value code
/// relative to the previous row of the run (first row at offset 0).
class InMemoryRun {
 public:
  /// Rows have `width` columns.
  explicit InMemoryRun(uint32_t width) : rows_(width) {}

  /// Appends the next row of the run with its code.
  void Append(const uint64_t* row, Ovc code) {
    rows_.AppendRow(row);
    codes_.push_back(code);
  }

  /// Bulk-appends all rows and codes of `block` (widths must match). One
  /// contiguous copy instead of per-row appends -- the batched path of the
  /// exchange producer threads.
  void AppendBlock(const RowBlock& block) {
    OVC_DCHECK(block.width() == rows_.width());
    rows_.AppendRows(block.data(), block.size());
    codes_.insert(codes_.end(), block.codes(), block.codes() + block.size());
  }

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const uint64_t* row(size_t i) const { return rows_.row(i); }
  Ovc code(size_t i) const { return codes_[i]; }
  /// Contiguous code storage (size() values), parallel to the rows.
  const Ovc* codes() const { return codes_.data(); }
  uint32_t width() const { return rows_.width(); }

  void Clear() {
    rows_.Clear();
    codes_.clear();
  }

  /// Pre-allocates storage for `rows` rows, guaranteeing that appends up to
  /// that count never reallocate (row pointers stay stable).
  void Reserve(size_t rows) {
    rows_.ReserveRows(rows);
    codes_.reserve(rows);
  }

 private:
  RowBuffer rows_;
  std::vector<Ovc> codes_;
};

/// MergeSource view over an InMemoryRun. The run must outlive the source.
/// `final` so that OvcMergerT<InMemoryRunSource> devirtualizes Next() in the
/// merge inner loop.
class InMemoryRunSource final : public MergeSource {
 public:
  explicit InMemoryRunSource(const InMemoryRun* run) : run_(run) {}

  bool Next(const uint64_t** row, Ovc* code) override {
    if (pos_ >= run_->size()) return false;
    *row = run_->row(pos_);
    *code = run_->code(pos_);
    ++pos_;
    return true;
  }

  /// Bulk variant: exposes up to `max_rows` contiguous rows (and their
  /// codes) starting at the current position and advances past them.
  /// Returns the span length; 0 at end of input. Shares the cursor with
  /// Next(), so callers may not interleave the two arbitrarily mid-stream
  /// (a span consumes all its rows at once).
  uint32_t NextSpan(const uint64_t** rows, const Ovc** codes,
                    uint32_t max_rows) {
    const size_t avail = run_->size() - pos_;
    const uint32_t n =
        static_cast<uint32_t>(avail < max_rows ? avail : max_rows);
    if (n == 0) return 0;
    *rows = run_->row(pos_);
    *codes = run_->codes() + pos_;
    pos_ += n;
    return n;
  }

  /// Restarts the scan from the beginning.
  void Rewind() { pos_ = 0; }

 private:
  const InMemoryRun* run_;
  size_t pos_ = 0;
};

}  // namespace ovc

#endif  // OVC_SORT_RUN_H_
