// In-memory sorted runs.

#ifndef OVC_SORT_RUN_H_
#define OVC_SORT_RUN_H_

#include <cstdint>
#include <vector>

#include "core/ovc.h"
#include "pq/loser_tree.h"
#include "row/row_buffer.h"

namespace ovc {

/// A sorted sequence of rows held in memory, each with its offset-value code
/// relative to the previous row of the run (first row at offset 0).
class InMemoryRun {
 public:
  /// Rows have `width` columns.
  explicit InMemoryRun(uint32_t width) : rows_(width) {}

  /// Appends the next row of the run with its code.
  void Append(const uint64_t* row, Ovc code) {
    rows_.AppendRow(row);
    codes_.push_back(code);
  }

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const uint64_t* row(size_t i) const { return rows_.row(i); }
  Ovc code(size_t i) const { return codes_[i]; }
  uint32_t width() const { return rows_.width(); }

  void Clear() {
    rows_.Clear();
    codes_.clear();
  }

  /// Pre-allocates storage for `rows` rows, guaranteeing that appends up to
  /// that count never reallocate (row pointers stay stable).
  void Reserve(size_t rows) {
    rows_.ReserveRows(rows);
    codes_.reserve(rows);
  }

 private:
  RowBuffer rows_;
  std::vector<Ovc> codes_;
};

/// MergeSource view over an InMemoryRun. The run must outlive the source.
class InMemoryRunSource : public MergeSource {
 public:
  explicit InMemoryRunSource(const InMemoryRun* run) : run_(run) {}

  bool Next(const uint64_t** row, Ovc* code) override {
    if (pos_ >= run_->size()) return false;
    *row = run_->row(pos_);
    *code = run_->code(pos_);
    ++pos_;
    return true;
  }

  /// Restarts the scan from the beginning.
  void Rewind() { pos_ = 0; }

 private:
  const InMemoryRun* run_;
  size_t pos_ = 0;
};

}  // namespace ovc

#endif  // OVC_SORT_RUN_H_
