#include "sort/run_file.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace ovc {

Status RunFileWriter::Open(const std::string& path) {
  return file_.Open(path);
}

Status RunFileWriter::Append(const uint64_t* row, Ovc code) {
  OVC_DCHECK(OvcCodec::IsValid(code));
  const uint32_t arity = schema_->key_arity();
  const uint32_t total = schema_->total_columns();
  const uint16_t offset = static_cast<uint16_t>(codec_.OffsetOf(code));
  OVC_DCHECK(offset <= arity);
  OVC_RETURN_IF_ERROR(file_.Write(&offset, sizeof(offset)));
  // Key columns past the shared prefix, then all payload columns.
  OVC_RETURN_IF_ERROR(file_.Write(row + offset,
                                  (arity - offset) * sizeof(uint64_t)));
  OVC_RETURN_IF_ERROR(
      file_.Write(row + arity, (total - arity) * sizeof(uint64_t)));
  ++rows_;
  if (counters_ != nullptr) {
    ++counters_->rows_spilled;
    counters_->bytes_spilled +=
        sizeof(offset) + (total - offset) * sizeof(uint64_t);
  }
  return Status::Ok();
}

Status RunFileWriter::Close() {
  // Fold transient-I/O recoveries into the session counters once per file
  // (retries() is cumulative over the writer's life).
  if (counters_ != nullptr) {
    counters_->io_retries += file_.retries() - retries_folded_;
    retries_folded_ = file_.retries();
  }
  return file_.Close();
}

Status RunFileReader::Open(const std::string& path) {
  OVC_RETURN_IF_ERROR(file_.Open(path));
  open_ = true;
  return Status::Ok();
}

bool RunFileReader::Next(const uint64_t** row, Ovc* code) {
  OVC_CHECK(open_);
  if (failed_ || file_.AtEof()) {
    return false;
  }
  uint16_t offset = 0;
  Status st = file_.Read(&offset, sizeof(offset));
  const uint32_t arity = schema_->key_arity();
  const uint32_t total = schema_->total_columns();
  if (st.ok() && offset > arity) {
    st = Status::IoError("corrupt run file: prefix offset " +
                         std::to_string(offset) + " exceeds key arity " +
                         std::to_string(arity));
  }
  // The shared prefix is already in row_ from the previous row.
  if (st.ok()) {
    st = file_.Read(row_.data() + offset, (arity - offset) * sizeof(uint64_t));
  }
  if (st.ok()) {
    st = file_.Read(row_.data() + arity, (total - arity) * sizeof(uint64_t));
  }
  if (!st.ok()) return Fail(st);
  *row = row_.data();
  *code = codec_.MakeFromRow(row_.data(), offset);
  return true;
}

bool RunFileReader::Fail(const Status& status) {
  failed_ = true;
  if (error_sink_ != nullptr) {
    // Degrade contract: first error lands in the manager's slot, the
    // stream ends, and the executor surfaces the error after the run.
    error_sink_->RecordError(status);
    return false;
  }
  // No sink (storage scans owning their files): a torn run file is not
  // recoverable and truncating it silently would corrupt query results.
  std::fprintf(stderr, "RunFileReader: unrecoverable run-file error: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace ovc
