#include "sort/segmented_sort.h"

namespace ovc {

namespace {

// Builds the schema of the segment suffix: key columns past the
// segmentation prefix keep their directions; payload columns carry over.
Schema MakeSuffixSchema(const Schema& schema, uint32_t segment_prefix) {
  std::vector<SortDirection> dirs;
  for (uint32_t c = segment_prefix; c < schema.key_arity(); ++c) {
    dirs.push_back(schema.direction(c));
  }
  return Schema(std::move(dirs), schema.payload_columns());
}

}  // namespace

SegmentedSorter::SegmentedSorter(const Schema* schema, uint32_t segment_prefix,
                                 QueryCounters* counters)
    : schema_(schema),
      segment_prefix_(segment_prefix),
      codec_(schema),
      suffix_schema_(MakeSuffixSchema(*schema, segment_prefix)),
      suffix_codec_(&suffix_schema_),
      suffix_comparator_(&suffix_schema_, counters),
      segment_(schema->total_columns()),
      pending_(schema->total_columns()) {
  OVC_CHECK(segment_prefix >= 1);
  OVC_CHECK(segment_prefix < schema->key_arity());
  sorter_ = std::make_unique<PqSorter>(&suffix_codec_, &suffix_comparator_);
}

void SegmentedSorter::SetInput(MergeSource* input) { input_ = input; }

bool SegmentedSorter::LoadSegment() {
  segment_.Clear();
  shifted_.clear();

  const uint64_t* row = nullptr;
  Ovc code = 0;
  if (!started_) {
    started_ = true;
    if (!input_->Next(&row, &code)) {
      input_done_ = true;
      return false;
    }
    boundary_code_ = code;
    segment_.AppendRow(row);
  } else if (has_pending_) {
    boundary_code_ = pending_code_;
    segment_.AppendRow(pending_.row(0));
    has_pending_ = false;
  } else {
    return false;  // input exhausted
  }

  // Accumulate rows until the next segment boundary: an offset within the
  // segmentation prefix -- detected from the code alone, no comparisons.
  while (true) {
    if (!input_->Next(&row, &code)) {
      input_done_ = true;
      break;
    }
    if (codec_.IsBoundary(code, segment_prefix_)) {
      pending_.Clear();
      pending_.AppendRow(row);
      pending_code_ = code;
      has_pending_ = true;
      break;
    }
    segment_.AppendRow(row);
  }

  // Sort the segment on the key suffix via shifted row pointers: column i of
  // the suffix view is column segment_prefix + i of the real row.
  shifted_.reserve(segment_.size());
  for (size_t i = 0; i < segment_.size(); ++i) {
    shifted_.push_back(segment_.row(i) + segment_prefix_);
  }
  sorter_->Reset(shifted_.data(), static_cast<uint32_t>(shifted_.size()));
  first_of_segment_ = true;
  ++segments_;
  return true;
}

bool SegmentedSorter::Next(RowRef* out) {
  OVC_CHECK(input_ != nullptr);
  RowRef suffix_ref;
  while (true) {
    if (segment_.empty() || !sorter_->Next(&suffix_ref)) {
      if (!LoadSegment()) return false;
      continue;
    }
    break;
  }

  // Un-shift the row pointer back to the full row.
  out->cols = suffix_ref.cols - segment_prefix_;
  if (first_of_segment_) {
    // Valid for any row of the segment: the boundary offset lies within the
    // segmentation prefix, where all segment rows agree.
    out->ovc = boundary_code_;
    first_of_segment_ = false;
  } else {
    // Lift the suffix code into full-key coordinates.
    const uint32_t suffix_offset = suffix_codec_.OffsetOf(suffix_ref.ovc);
    out->ovc = codec_.Make(segment_prefix_ + suffix_offset,
                           OvcCodec::ValueOf(suffix_ref.ovc));
  }
  return true;
}

}  // namespace ovc
