// Group collapsing for in-sort aggregation (the paper's Figure 5 plan uses
// "in-sort aggregation operators for duplicate removal"; see also Do,
// Graefe & Naughton, "Efficient sorting, duplicate removal, grouping, and
// aggregation", cited as [10]).
//
// A collapser consumes a sorted, coded stream of *aggregation-state* rows
// (group key columns followed by mergeable accumulator columns) and folds
// each run of key-duplicates -- recognized by their duplicate codes, no
// comparisons -- into a single row. Applying a collapser at every stage of
// an external sort (run generation, intermediate merges, final merge)
// implements early aggregation: spilled runs hold at most one row per
// distinct group, which is how the sort-based plan of Figure 5 gets away
// with two blocking operators and minimal spill volume.
//
// Output codes: a collapsed group keeps its first row's code. By the filter
// theorem this is exact -- the dropped rows carry duplicate codes, the
// smallest valid codes, so the running max is the first row's own code.

#ifndef OVC_SORT_GROUP_COLLAPSE_H_
#define OVC_SORT_GROUP_COLLAPSE_H_

#include <vector>

#include "core/ovc.h"
#include "pq/loser_tree.h"
#include "row/schema.h"
#include "sort/run_generation.h"

namespace ovc {

/// How to merge one accumulator column of two state rows for the same
/// group. Counts merge by summation, so there is no kCount here: an
/// input row's count contribution is materialized as the constant 1 and
/// merged with kSum.
enum class StateMergeFn { kSum, kMin, kMax };

/// Merges the payload (accumulator) columns of `src` into `dst` for rows of
/// `schema` whose keys are equal. `fns` has one entry per payload column.
void MergeStateRow(const Schema& schema, const std::vector<StateMergeFn>& fns,
                   const uint64_t* src, uint64_t* dst);

/// RunSink decorator: collapses key-duplicate state rows before forwarding
/// to the wrapped sink. Flush() must be called after the last Accept().
class CollapsingSink : public RunSink {
 public:
  /// `schema` describes state rows; `fns` one merger per payload column.
  CollapsingSink(const Schema* schema, std::vector<StateMergeFn> fns,
                 RunSink* inner);

  void Accept(const uint64_t* row, Ovc code) override;

  /// Emits the pending group; call exactly once after the stream ends.
  void Flush();

  /// Groups emitted so far.
  uint64_t groups() const { return groups_; }

 private:
  const Schema* schema_;
  OvcCodec codec_;
  std::vector<StateMergeFn> fns_;
  RunSink* inner_;
  std::vector<uint64_t> pending_;
  Ovc pending_code_ = 0;
  bool has_pending_ = false;
  uint64_t groups_ = 0;
};

/// MergeSource decorator: collapses key-duplicates of the wrapped sorted
/// source on the fly (pull side of the same transformation).
class CollapsingSource : public MergeSource {
 public:
  CollapsingSource(const Schema* schema, std::vector<StateMergeFn> fns,
                   MergeSource* inner);

  bool Next(const uint64_t** row, Ovc* code) override;

 private:
  const Schema* schema_;
  OvcCodec codec_;
  std::vector<StateMergeFn> fns_;
  MergeSource* inner_;
  std::vector<uint64_t> current_;
  Ovc current_code_ = 0;
  std::vector<uint64_t> lookahead_;
  Ovc lookahead_code_ = 0;
  bool has_lookahead_ = false;
  bool started_ = false;
  bool done_ = false;
};

}  // namespace ovc

#endif  // OVC_SORT_GROUP_COLLAPSE_H_
