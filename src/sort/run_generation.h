// Run generation for external merge sort (Section 3, Section 5).
//
// Three in-memory strategies plus continuous replacement selection:
//
//  * kPqSingleRowRuns -- "run generation merges 'sorted' runs of a single
//    row each": one tree-of-losers tournament over the whole memory batch;
//    queue build-up and tear-down produce the sorted run and its
//    offset-value codes as a byproduct.
//  * kPqMiniRuns -- the cache-friendly variant (Section 3's "mini-runs ...
//    remain in memory until merged with fan-in 512 or 1,024"): sort
//    cache-sized mini-runs with a small tournament, then merge them into
//    one initial run.
//  * kStdSort -- baseline: std::sort over row pointers, then (optionally)
//    derive codes the naive way, row by row, column by column. This is the
//    expensive to-date method the paper's introduction describes.
//  * ReplacementSelection -- continuous run generation: expected run length
//    twice the memory size at a cost of one extra comparison per input row
//    (the comparison against the last winner that assigns the run number
//    and primes the row's offset-value code).

#ifndef OVC_SORT_RUN_GENERATION_H_
#define OVC_SORT_RUN_GENERATION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/counters.h"
#include "common/temp_file.h"
#include "core/ovc.h"
#include "row/row_buffer.h"
#include "sort/run_file.h"

namespace ovc {

/// In-memory run-generation strategy.
enum class RunGenMode {
  kPqSingleRowRuns,
  kPqMiniRuns,
  kStdSort,
};

/// Destination for the rows of one generated run, in sort order.
class RunSink {
 public:
  virtual ~RunSink() = default;
  /// Receives the next row and its code relative to the previous row given
  /// to this sink.
  virtual void Accept(const uint64_t* row, Ovc code) = 0;
};

/// Sorts one in-memory batch and emits it as a run.
class BatchSorter {
 public:
  /// When `use_ovc` is false the tournament runs with full key comparisons
  /// and rows are emitted with offset-0 codes (no truncation, no code
  /// maintenance) unless `naive_codes` asks for the row-by-row,
  /// column-by-column derivation.
  BatchSorter(const Schema* schema, QueryCounters* counters, RunGenMode mode,
              uint32_t mini_run_rows, bool use_ovc, bool naive_codes);

  /// Sorts the rows of `buffer` and feeds them to `sink` in order.
  void Sort(const RowBuffer& buffer, RunSink* sink);

 private:
  void SortPqSingle(const std::vector<const uint64_t*>& rows, RunSink* sink);
  void SortPqMini(const std::vector<const uint64_t*>& rows, RunSink* sink);
  void SortStd(std::vector<const uint64_t*>& rows, RunSink* sink);

  const Schema* schema_;
  OvcCodec codec_;
  KeyComparator comparator_;
  QueryCounters* counters_;
  RunGenMode mode_;
  uint32_t mini_run_rows_;
  bool use_ovc_;
  bool naive_codes_;
};

/// Continuous run generation by replacement selection with offset-value
/// codes maintained soundly across run boundaries.
///
/// Implementation note (documented in DESIGN.md): a code is only comparable
/// against another code relative to the same base key. Classic merging
/// guarantees this along every leaf-to-root path; replacement selection does
/// not, because rows destined for the *next* run enter the tree coded
/// relative to minus infinity while current-run entries are coded relative
/// to recent winners. Each tree entry therefore carries the sequence number
/// of its code's base row. Matches between entries with equal base tags use
/// the offset-value codes (and, per Iyer's unequal-code theorem, a
/// code-decided loss transfers the loser's base to the winner's row);
/// matches across different bases fall back to one full key comparison that
/// re-bases the loser. Mismatches only occur around run boundaries, so the
/// fallback cost amortizes to near zero.
class ReplacementSelection {
 public:
  /// Holds up to `capacity` rows in memory; emits runs through `temp`.
  ReplacementSelection(const Schema* schema, QueryCounters* counters,
                       TempFileManager* temp, uint32_t capacity);
  ~ReplacementSelection();

  /// Adds one input row, possibly emitting one row to the current run.
  Status Add(const uint64_t* row);

  /// Drains the tree, closing the last run.
  Status Finish();

  /// The spilled runs, available after Finish().
  std::vector<SpilledRun> TakeRuns();

  /// Number of runs produced (after Finish()).
  size_t run_count() const { return runs_.size(); }

 private:
  struct Entry {
    Ovc code = OvcCodec::LateFence();
    uint64_t run = ~uint64_t{0};
    uint64_t seq = 0;       // identity of this entry's row instance
    uint64_t base_seq = 0;  // identity of the row its code is relative to
    uint32_t slot = 0;
  };

  Entry PlayMatch(uint32_t node, Entry a, Entry b);
  void BuildTree();
  Status PopAndReplace(const Entry& replacement);
  Status EmitWinner();
  Entry MakeFreshEntry(const uint64_t* row, uint32_t slot);

  const Schema* schema_;
  OvcCodec codec_;
  KeyComparator comparator_;
  QueryCounters* counters_;
  TempFileManager* temp_;

  uint32_t capacity_;       // number of row slots
  uint32_t tree_capacity_;  // padded power of two
  RowBuffer slots_;
  std::vector<Entry> nodes_;
  Entry winner_;
  bool built_ = false;

  uint64_t next_seq_ = 1;  // 0 is reserved for the minus-infinity base
  uint64_t current_run_ = 1;
  std::vector<uint64_t> prev_emitted_;
  uint64_t prev_emitted_seq_ = 0;
  bool run_has_rows_ = false;

  std::unique_ptr<RunFileWriter> writer_;
  std::vector<SpilledRun> runs_;
  std::string current_path_;
};

}  // namespace ovc

#endif  // OVC_SORT_RUN_GENERATION_H_
