#include "sort/external_sort.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/trace.h"

namespace ovc {

namespace {

/// RunSink writing to an in-memory run.
class MemoryRunSink : public RunSink {
 public:
  explicit MemoryRunSink(InMemoryRun* run) : run_(run) {}
  void Accept(const uint64_t* row, Ovc code) override {
    run_->Append(row, code);
  }

 private:
  InMemoryRun* run_;
};

/// RunSink writing to a spilled run file. Write errors are latched rather
/// than aborted on (RunSink::Accept cannot return a Status); the caller
/// checks status() after the sort pass.
class FileRunSink : public RunSink {
 public:
  explicit FileRunSink(RunFileWriter* writer) : writer_(writer) {}
  void Accept(const uint64_t* row, Ovc code) override {
    if (!status_.ok()) return;
    status_ = writer_->Append(row, code);
  }
  const Status& status() const { return status_; }

 private:
  RunFileWriter* writer_;
  Status status_ = Status::Ok();
};

}  // namespace

ExternalSort::ExternalSort(const Schema* schema, QueryCounters* counters,
                           TempFileManager* temp, SortConfig config)
    : schema_(schema),
      codec_(schema),
      comparator_(schema, counters),
      counters_(counters),
      temp_(temp),
      config_(config),
      buffer_(schema->total_columns()) {
  OVC_CHECK(config_.memory_rows >= 2);
  OVC_CHECK(config_.fan_in >= 2);
  if (config_.replacement_selection) {
    rs_ = std::make_unique<ReplacementSelection>(
        schema_, counters_, temp_,
        static_cast<uint32_t>(config_.memory_rows));
  }
}

ExternalSort::~ExternalSort() = default;

void ExternalSort::Add(const uint64_t* row) {
  OVC_CHECK(!finished_);
  if (!deferred_error_.ok()) return;  // intake degraded; Finish() reports
  if (rs_ != nullptr) {
    DeferError(rs_->Add(row));
    return;
  }
  buffer_.AppendRow(row);
  if (buffer_.size() >= config_.memory_rows) {
    DeferError(SpillBuffer());
  }
}

void ExternalSort::AddBlock(const RowBlock& block) {
  OVC_CHECK(!finished_);
  if (!deferred_error_.ok()) return;
  if (rs_ != nullptr) {
    // Replacement selection is inherently row-at-a-time (each row plays one
    // tournament match on entry).
    for (uint32_t i = 0; i < block.size(); ++i) {
      DeferError(rs_->Add(block.row(i)));
      if (!deferred_error_.ok()) return;
    }
    return;
  }
  uint32_t taken = 0;
  while (taken < block.size()) {
    const uint64_t room = config_.memory_rows - buffer_.size();
    const uint32_t n = static_cast<uint32_t>(
        std::min<uint64_t>(room, block.size() - taken));
    buffer_.AppendRows(block.row(taken), n);
    taken += n;
    if (buffer_.size() >= config_.memory_rows) {
      DeferError(SpillBuffer());
      if (!deferred_error_.ok()) return;
    }
  }
}

void ExternalSort::DeferError(const Status& status) {
  if (status.ok() || !deferred_error_.ok()) return;
  // First spill error wins; stop buffering (later Adds are dropped, which
  // is fine -- the query is already failed and Finish() will say so).
  deferred_error_ = status;
  buffer_.Clear();
}

Status ExternalSort::SpillBuffer() {
  if (buffer_.empty()) return Status::Ok();
  OVC_TRACE_SPAN("sort.spill_run");
  BatchSorter sorter(schema_, counters_, config_.run_gen,
                     config_.mini_run_rows, config_.use_ovc,
                     config_.naive_output_codes);
  RunFileWriter writer(schema_, counters_);
  const std::string path = temp_->NewPath("run");
  OVC_RETURN_IF_ERROR(writer.Open(path));
  FileRunSink sink(&writer);
  {
    OVC_TRACE_SPAN("sort.run_generation");
    sorter.Sort(buffer_, &sink);
  }
  OVC_RETURN_IF_ERROR(sink.status());
  OVC_RETURN_IF_ERROR(writer.Close());
  runs_.push_back(SpilledRun{path, writer.rows()});
  ++spilled_runs_;
  OVC_METRIC_COUNTER("sort.runs_spilled",
                     "Sorted runs written to temporary storage")
      .Increment();
  buffer_.Clear();
  return Status::Ok();
}

Status ExternalSort::Finish() {
  OVC_CHECK(!finished_);
  finished_ = true;
  // A spill error during intake fails the whole sort; Next()/NextBlock()
  // then serve nothing (no merger is prepared).
  if (!deferred_error_.ok()) return deferred_error_;

  if (rs_ != nullptr) {
    OVC_RETURN_IF_ERROR(rs_->Finish());
    std::vector<SpilledRun> runs = rs_->TakeRuns();
    spilled_runs_ = runs.size();
    if (runs.empty()) return Status::Ok();  // empty input
    return PrepareMerge(std::move(runs));
  }

  if (runs_.empty()) {
    // Input fits in memory: sort and serve without spilling.
    OVC_TRACE_SPAN("sort.run_generation");
    memory_run_ = std::make_unique<InMemoryRun>(schema_->total_columns());
    memory_run_->Reserve(buffer_.size());
    BatchSorter sorter(schema_, counters_, config_.run_gen,
                       config_.mini_run_rows, config_.use_ovc,
                       config_.naive_output_codes);
    MemoryRunSink sink(memory_run_.get());
    sorter.Sort(buffer_, &sink);
    memory_source_ =
        std::make_unique<InMemoryRunSource>(memory_run_.get());
    return Status::Ok();
  }

  OVC_RETURN_IF_ERROR(SpillBuffer());
  return PrepareMerge(std::move(runs_));
}

Status ExternalSort::PrepareMerge(std::vector<SpilledRun> runs) {
  // Cascade intermediate merges while the run count exceeds the fan-in.
  while (runs.size() > config_.fan_in) {
    OVC_TRACE_SPAN("sort.merge_level");
    ++merge_levels_;
    OVC_METRIC_COUNTER("sort.merge_levels",
                       "Intermediate merge levels run by external sorts")
        .Increment();
    std::vector<SpilledRun> next_level;
    for (size_t begin = 0; begin < runs.size(); begin += config_.fan_in) {
      const size_t count =
          std::min<size_t>(config_.fan_in, runs.size() - begin);
      if (count == 1) {
        next_level.push_back(runs[begin]);
        continue;
      }
      std::vector<std::unique_ptr<RunFileReader>> readers;
      std::vector<RunFileReader*> sources;
      for (size_t i = 0; i < count; ++i) {
        readers.push_back(std::make_unique<RunFileReader>(schema_, temp_));
        OVC_RETURN_IF_ERROR(readers.back()->Open(runs[begin + i].path));
        sources.push_back(readers.back().get());
      }
      RunFileWriter writer(schema_, counters_);
      const std::string path = temp_->NewPath("merge");
      OVC_RETURN_IF_ERROR(writer.Open(path));
      RowRef ref;
      if (config_.use_ovc) {
        OvcMergerT<RunFileReader>::Options options;
        options.duplicate_bypass = config_.duplicate_bypass;
        OvcMergerT<RunFileReader> merger(&codec_, &comparator_, sources,
                                         options);
        while (merger.Next(&ref)) {
          OVC_RETURN_IF_ERROR(writer.Append(ref.cols, ref.ovc));
        }
      } else {
        std::vector<MergeSource*> plain_sources(sources.begin(),
                                                sources.end());
        PlainMerger merger(&codec_, &comparator_, plain_sources);
        while (merger.Next(&ref)) {
          OVC_RETURN_IF_ERROR(
              writer.Append(ref.cols, codec_.MakeFromRow(ref.cols, 0)));
        }
      }
      OVC_RETURN_IF_ERROR(writer.Close());
      next_level.push_back(SpilledRun{path, writer.rows()});
    }
    runs = std::move(next_level);
  }

  // Final merge, served incrementally through Next()/NextBlock().
  std::vector<RunFileReader*> sources;
  for (const SpilledRun& run : runs) {
    readers_.push_back(std::make_unique<RunFileReader>(schema_, temp_));
    OVC_RETURN_IF_ERROR(readers_.back()->Open(run.path));
    sources.push_back(readers_.back().get());
  }
  if (config_.use_ovc) {
    OvcMergerT<RunFileReader>::Options options;
    options.duplicate_bypass = config_.duplicate_bypass;
    merger_ = std::make_unique<OvcMergerT<RunFileReader>>(
        &codec_, &comparator_, sources, options);
  } else {
    std::vector<MergeSource*> plain_sources(sources.begin(), sources.end());
    PlainMerger::Options options;
    options.derive_output_codes = config_.naive_output_codes;
    plain_merger_ = std::make_unique<PlainMerger>(&codec_, &comparator_,
                                                  plain_sources, options);
  }
  return Status::Ok();
}

bool ExternalSort::Next(RowRef* out) {
  OVC_CHECK(finished_);
  if (memory_source_ != nullptr) {
    const uint64_t* row = nullptr;
    Ovc code = 0;
    if (!memory_source_->Next(&row, &code)) return false;
    out->cols = row;
    out->ovc = code;
    return true;
  }
  if (merger_ != nullptr) {
    return merger_->Next(out);
  }
  if (plain_merger_ != nullptr) {
    return plain_merger_->Next(out);
  }
  return false;  // empty input
}

uint32_t ExternalSort::NextBlock(RowBlock* out) {
  OVC_CHECK(finished_);
  out->Clear();
  if (memory_source_ != nullptr) {
    // In-memory result: serve contiguous spans straight from the run,
    // zero-copy (the run is stable until the sort is destroyed).
    const uint64_t* rows = nullptr;
    const Ovc* codes = nullptr;
    const uint32_t n = memory_source_->NextSpan(&rows, &codes,
                                                out->capacity());
    if (n == 0) return 0;
    out->RefContiguous(rows, codes, n);
    return n;
  }
  if (merger_ != nullptr) {
    return merger_->NextBlock(out);
  }
  if (plain_merger_ != nullptr) {
    RowRef ref;
    while (!out->full() && plain_merger_->Next(&ref)) {
      out->Append(ref.cols, ref.ovc);
    }
    return out->size();
  }
  return 0;  // empty input
}

}  // namespace ovc
