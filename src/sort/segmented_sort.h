// Segmented sorting (Section 4.3).
//
// A stream sorted on (A, B) but needed sorted on (A, C) does not require a
// full re-sort: segment the stream on distinct values of A and sort each
// segment only on C. With offset-value codes, *detecting the segment
// boundaries requires no column value comparisons at all*: a code whose
// offset is smaller than the segmentation prefix marks a boundary.
//
// Output codes: the first output row of each segment reuses the boundary
// row's input code -- its offset lies within the segmentation prefix, where
// all rows of a segment agree, so it is valid for whichever row the
// segment-local sort emits first. Every other row's code comes from the
// segment-local tournament, with its offset shifted up by the segmentation
// prefix. No comparisons beyond those of the segment-local sort are spent.

#ifndef OVC_SORT_SEGMENTED_SORT_H_
#define OVC_SORT_SEGMENTED_SORT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/counters.h"
#include "core/ovc.h"
#include "core/row_ref.h"
#include "pq/loser_tree.h"
#include "row/row_buffer.h"

namespace ovc {

/// Re-sorts a stream segment by segment.
///
/// The input must be sorted on (and carry codes for) at least the first
/// `segment_prefix` key columns of `schema`; the output is sorted on the
/// full key of `schema` and carries correct codes. Segments are buffered in
/// memory one at a time ("segments ... can be processed one at a time").
class SegmentedSorter {
 public:
  /// `schema` describes the *output* order; the first `segment_prefix` key
  /// columns are the segmentation key shared with the input order.
  /// Requires 1 <= segment_prefix < key_arity.
  SegmentedSorter(const Schema* schema, uint32_t segment_prefix,
                  QueryCounters* counters);

  /// `input` yields rows with codes valid for the segmentation prefix.
  void SetInput(MergeSource* input);

  /// Next output row in (A, C) order with its code.
  bool Next(RowRef* out);

  /// Number of segments processed so far.
  uint64_t segments() const { return segments_; }

 private:
  bool LoadSegment();

  const Schema* schema_;
  uint32_t segment_prefix_;
  OvcCodec codec_;
  Schema suffix_schema_;
  OvcCodec suffix_codec_;
  KeyComparator suffix_comparator_;
  MergeSource* input_ = nullptr;

  RowBuffer segment_;
  std::vector<const uint64_t*> shifted_;  // segment rows, +segment_prefix
  std::unique_ptr<PqSorter> sorter_;
  Ovc boundary_code_ = 0;
  bool first_of_segment_ = false;

  RowBuffer pending_;  // first row of the next segment (lookahead)
  Ovc pending_code_ = 0;
  bool has_pending_ = false;
  bool input_done_ = false;
  bool started_ = false;
  uint64_t segments_ = 0;
};

}  // namespace ovc

#endif  // OVC_SORT_SEGMENTED_SORT_H_
