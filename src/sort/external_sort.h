// External merge sort with offset-value coding (Sections 3 and 5).
//
// Pipeline: consume unsorted rows -> generate sorted runs (in memory when
// the input fits, spilled to prefix-truncated run files otherwise) -> merge
// with a tree-of-losers priority queue, cascading in multiple levels when
// the run count exceeds the merge fan-in. Offset-value codes are produced
// during run generation, stored in the run format (as truncated prefixes),
// exploited during merging, and delivered with every output row.

#ifndef OVC_SORT_EXTERNAL_SORT_H_
#define OVC_SORT_EXTERNAL_SORT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/counters.h"
#include "common/temp_file.h"
#include "core/ovc.h"
#include "core/row_ref.h"
#include "pq/loser_tree.h"
#include "pq/plain_loser_tree.h"
#include "row/row_block.h"
#include "row/row_buffer.h"
#include "sort/run.h"
#include "sort/run_file.h"
#include "sort/run_generation.h"

namespace ovc {

/// Tuning and ablation knobs for ExternalSort.
struct SortConfig {
  /// Rows buffered in memory before a run is spilled (the paper's
  /// "operator's memory holds ... rows").
  uint64_t memory_rows = uint64_t{1} << 20;
  /// Maximum merge fan-in; more runs cascade into intermediate merges.
  uint32_t fan_in = 128;
  /// In-memory run-generation strategy.
  RunGenMode run_gen = RunGenMode::kPqSingleRowRuns;
  /// Mini-run size for RunGenMode::kPqMiniRuns.
  uint32_t mini_run_rows = 1024;
  /// Continuous run generation by replacement selection instead of batch
  /// modes (expected run length twice memory_rows).
  bool replacement_selection = false;
  /// Ablation: false disables offset-value coding end to end (plain
  /// tournaments, full-row run files, full comparisons in merges).
  bool use_ovc = true;
  /// Section 5 duplicate bypass in merge steps.
  bool duplicate_bypass = true;
  /// With use_ovc == false: derive output codes anyway, the naive way
  /// (row by row, column by column) -- the paper's expensive strawman.
  bool naive_output_codes = false;
};

/// Sorts a stream of rows. Push rows with Add(), call Finish(), then pull
/// the sorted, offset-value-coded output with Next().
class ExternalSort {
 public:
  /// `schema`, `counters` (optional), and `temp` must outlive the sort.
  ExternalSort(const Schema* schema, QueryCounters* counters,
               TempFileManager* temp, SortConfig config);
  ~ExternalSort();

  /// Adds one input row (copied). Spill I/O errors during intake do not
  /// abort: the sort records the first error, drops further input, and
  /// Finish() reports it (the graceful-degradation contract the mid-query
  /// fallbacks rely on).
  void Add(const uint64_t* row);

  /// Adds a whole block of input rows: one amortized-growth bulk copy per
  /// memory-buffer stretch instead of a per-row append, splitting at the
  /// memory_rows spill boundary exactly like row-at-a-time Add().
  void AddBlock(const RowBlock& block);

  /// Ends the input; sorts/spills what remains and prepares the output.
  Status Finish();

  /// Produces the next output row in sort order with its code. Valid only
  /// after Finish().
  bool Next(RowRef* out);

  /// Block-sized output: fills `out` with up to out->capacity() sorted rows
  /// (codes follow the stream contract across block boundaries). Returns
  /// the row count, 0 at end. Valid only after Finish(); do not interleave
  /// with Next().
  uint32_t NextBlock(RowBlock* out);

  /// Number of runs spilled to temporary storage (0 for in-memory sorts).
  uint64_t spilled_runs() const { return spilled_runs_; }
  /// Number of intermediate merge levels (0 = single final merge or
  /// in-memory).
  uint32_t intermediate_merge_levels() const { return merge_levels_; }

 private:
  Status SpillBuffer();
  Status PrepareMerge(std::vector<SpilledRun> runs);
  /// Records the first intake error and degrades (see Add).
  void DeferError(const Status& status);

  const Schema* schema_;
  OvcCodec codec_;
  KeyComparator comparator_;
  QueryCounters* counters_;
  TempFileManager* temp_;
  SortConfig config_;

  RowBuffer buffer_;
  std::unique_ptr<ReplacementSelection> rs_;
  std::vector<SpilledRun> runs_;
  uint64_t spilled_runs_ = 0;
  uint32_t merge_levels_ = 0;
  bool finished_ = false;
  Status deferred_error_ = Status::Ok();

  // Output plumbing: exactly one of these serves Next(). The final OVC
  // merge runs over concrete RunFileReader sources so the tournament's
  // refill calls devirtualize (see pq/loser_tree.h).
  std::unique_ptr<InMemoryRun> memory_run_;
  std::unique_ptr<InMemoryRunSource> memory_source_;
  std::vector<std::unique_ptr<RunFileReader>> readers_;
  std::unique_ptr<OvcMergerT<RunFileReader>> merger_;
  std::unique_ptr<PlainMerger> plain_merger_;
};

}  // namespace ovc

#endif  // OVC_SORT_EXTERNAL_SORT_H_
