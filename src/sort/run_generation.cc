#include "sort/run_generation.h"

#include <algorithm>
#include <cstring>

#include "common/bits.h"
#include "core/ovc_compare.h"
#include "core/ovc_reference.h"
#include "pq/loser_tree.h"
#include "pq/plain_loser_tree.h"
#include "sort/run.h"

namespace ovc {

BatchSorter::BatchSorter(const Schema* schema, QueryCounters* counters,
                         RunGenMode mode, uint32_t mini_run_rows, bool use_ovc,
                         bool naive_codes)
    : schema_(schema),
      codec_(schema),
      comparator_(schema, counters),
      counters_(counters),
      mode_(mode),
      mini_run_rows_(mini_run_rows),
      use_ovc_(use_ovc),
      naive_codes_(naive_codes) {
  OVC_CHECK(mini_run_rows_ >= 2);
}

void BatchSorter::Sort(const RowBuffer& buffer, RunSink* sink) {
  std::vector<const uint64_t*> rows;
  rows.reserve(buffer.size());
  for (size_t i = 0; i < buffer.size(); ++i) {
    rows.push_back(buffer.row(i));
  }
  switch (mode_) {
    case RunGenMode::kPqSingleRowRuns:
      SortPqSingle(rows, sink);
      break;
    case RunGenMode::kPqMiniRuns:
      SortPqMini(rows, sink);
      break;
    case RunGenMode::kStdSort:
      SortStd(rows, sink);
      break;
  }
}

void BatchSorter::SortPqSingle(const std::vector<const uint64_t*>& rows,
                               RunSink* sink) {
  RowRef ref;
  if (use_ovc_) {
    PqSorter sorter(&codec_, &comparator_);
    sorter.Reset(rows.data(), static_cast<uint32_t>(rows.size()));
    while (sorter.Next(&ref)) {
      sink->Accept(ref.cols, ref.ovc);
    }
  } else {
    PlainPqSorter sorter(&codec_, &comparator_);
    sorter.Reset(rows.data(), static_cast<uint32_t>(rows.size()));
    while (sorter.Next(&ref)) {
      sink->Accept(ref.cols, codec_.MakeFromRow(ref.cols, 0));
    }
  }
}

void BatchSorter::SortPqMini(const std::vector<const uint64_t*>& rows,
                             RunSink* sink) {
  // Sort cache-sized mini-runs, keep them in memory, then merge them all.
  std::vector<std::unique_ptr<InMemoryRun>> minis;
  RowRef ref;
  for (size_t begin = 0; begin < rows.size(); begin += mini_run_rows_) {
    const uint32_t count = static_cast<uint32_t>(
        std::min<size_t>(mini_run_rows_, rows.size() - begin));
    auto mini = std::make_unique<InMemoryRun>(schema_->total_columns());
    mini->Reserve(count);
    if (use_ovc_) {
      PqSorter sorter(&codec_, &comparator_);
      sorter.Reset(rows.data() + begin, count);
      while (sorter.Next(&ref)) {
        mini->Append(ref.cols, ref.ovc);
      }
    } else {
      PlainPqSorter sorter(&codec_, &comparator_);
      sorter.Reset(rows.data() + begin, count);
      while (sorter.Next(&ref)) {
        mini->Append(ref.cols, codec_.MakeFromRow(ref.cols, 0));
      }
    }
    minis.push_back(std::move(mini));
  }
  if (minis.empty()) return;

  std::vector<std::unique_ptr<InMemoryRunSource>> source_storage;
  std::vector<InMemoryRunSource*> sources;
  for (const auto& mini : minis) {
    source_storage.push_back(std::make_unique<InMemoryRunSource>(mini.get()));
    sources.push_back(source_storage.back().get());
  }
  if (use_ovc_) {
    // Concrete-source merger: the refill calls devirtualize (loser_tree.h).
    OvcMergerT<InMemoryRunSource> merger(&codec_, &comparator_, sources);
    while (merger.Next(&ref)) {
      sink->Accept(ref.cols, ref.ovc);
    }
  } else {
    std::vector<MergeSource*> plain_sources(sources.begin(), sources.end());
    PlainMerger::Options options;
    options.derive_output_codes = naive_codes_;
    PlainMerger merger(&codec_, &comparator_, plain_sources, options);
    while (merger.Next(&ref)) {
      sink->Accept(ref.cols,
                   naive_codes_ ? ref.ovc : codec_.MakeFromRow(ref.cols, 0));
    }
  }
}

void BatchSorter::SortStd(std::vector<const uint64_t*>& rows, RunSink* sink) {
  std::stable_sort(rows.begin(), rows.end(),
                   [this](const uint64_t* a, const uint64_t* b) {
                     return comparator_.Compare(a, b) < 0;
                   });
  if (use_ovc_ || naive_codes_) {
    // Derive codes the naive way: one adjacent comparison per row.
    const uint64_t* prev = nullptr;
    for (const uint64_t* row : rows) {
      Ovc code;
      if (prev == nullptr) {
        code = codec_.MakeInitial(row);
      } else {
        const uint32_t d = comparator_.FirstDifference(prev, row, 0);
        code = codec_.MakeFromRow(row, d);
      }
      sink->Accept(row, code);
      prev = row;
    }
  } else {
    for (const uint64_t* row : rows) {
      sink->Accept(row, codec_.MakeFromRow(row, 0));
    }
  }
}

ReplacementSelection::ReplacementSelection(const Schema* schema,
                                           QueryCounters* counters,
                                           TempFileManager* temp,
                                           uint32_t capacity)
    : schema_(schema),
      codec_(schema),
      comparator_(schema, counters),
      counters_(counters),
      temp_(temp),
      capacity_(capacity),
      tree_capacity_(CeilToPowerOfTwo(capacity)),
      slots_(schema->total_columns()),
      prev_emitted_(schema->total_columns(), 0) {
  OVC_CHECK(capacity >= 1);
  slots_.ReserveRows(capacity);
  nodes_.assign(tree_capacity_, Entry{});
}

ReplacementSelection::~ReplacementSelection() = default;

ReplacementSelection::Entry ReplacementSelection::MakeFreshEntry(
    const uint64_t* row, uint32_t slot) {
  // Fresh rows before the tree is built: single-row runs relative to minus
  // infinity (base sequence 0), all in run 1.
  Entry e;
  e.code = codec_.MakeInitial(row);
  e.run = 1;
  e.seq = next_seq_++;
  e.base_seq = 0;
  e.slot = slot;
  return e;
}

ReplacementSelection::Entry ReplacementSelection::PlayMatch(uint32_t node,
                                                            Entry a,
                                                            Entry b) {
  Entry winner, loser;
  if (a.run != b.run) {
    // Run numbers decide; codes and bases are untouched (no claim is made
    // about a cross-run code relationship).
    if (counters_ != nullptr) ++counters_->code_comparisons;
    if (a.run < b.run) {
      winner = a;
      loser = b;
    } else {
      winner = b;
      loser = a;
    }
  } else if (!OvcCodec::IsValid(a.code) || !OvcCodec::IsValid(b.code)) {
    // At least one fence: the code word decides, no row data is touched.
    if (counters_ != nullptr) ++counters_->code_comparisons;
    if (a.code < b.code || (a.code == b.code && a.slot < b.slot)) {
      winner = a;
      loser = b;
    } else {
      winner = b;
      loser = a;
    }
  } else if (a.base_seq == b.base_seq) {
    // Same base: offset-value codes apply.
    const uint64_t* ra = slots_.row(a.slot);
    const uint64_t* rb = slots_.row(b.slot);
    const int cmp = CompareWithOvc(codec_, comparator_, ra, &a.code, rb,
                                   &b.code);
    if (cmp < 0 || (cmp == 0 && a.slot < b.slot)) {
      winner = a;
      loser = b;
    } else {
      winner = b;
      loser = a;
    }
    if (cmp == 0) loser.code = codec_.DuplicateCode();
    // Whether the codes decided (unequal-code theorem) or columns did, the
    // loser's code is now valid relative to the winner's row.
    loser.base_seq = winner.seq;
  } else {
    // Different bases: one full key comparison re-bases the loser.
    const uint64_t* ra = slots_.row(a.slot);
    const uint64_t* rb = slots_.row(b.slot);
    if (counters_ != nullptr) ++counters_->row_comparisons;
    const uint32_t d = comparator_.FirstDifference(ra, rb, 0);
    int cmp = 0;
    if (d < schema_->key_arity()) {
      cmp = schema_->NormalizedAt(ra, d) < schema_->NormalizedAt(rb, d) ? -1
                                                                        : 1;
    }
    if (cmp < 0 || (cmp == 0 && a.slot < b.slot)) {
      winner = a;
      loser = b;
    } else {
      winner = b;
      loser = a;
    }
    loser.code = codec_.MakeFromRow(slots_.row(loser.slot), d);
    loser.base_seq = winner.seq;
  }
  nodes_[node] = loser;
  return winner;
}

void ReplacementSelection::BuildTree() {
  // Recursive tournament over all slots (lambda to keep the recursion local).
  struct Builder {
    ReplacementSelection* rs;
    std::vector<Entry>* leaves;
    Entry Build(uint32_t node) {
      if (node >= rs->tree_capacity_) {
        return (*leaves)[node - rs->tree_capacity_];
      }
      Entry a = Build(2 * node);
      Entry b = Build(2 * node + 1);
      return rs->PlayMatch(node, a, b);
    }
  };
  std::vector<Entry> leaves(tree_capacity_);
  for (uint32_t i = 0; i < tree_capacity_; ++i) {
    if (i < slots_.size()) {
      leaves[i] = MakeFreshEntry(slots_.row(i), i);
    } else {
      leaves[i] = Entry{};  // permanent late fence on padding slots
      leaves[i].slot = i;
    }
  }
  if (tree_capacity_ == 1) {
    winner_ = leaves[0];
  } else {
    Builder builder{this, &leaves};
    winner_ = builder.Build(1);
  }
  built_ = true;
}

Status ReplacementSelection::EmitWinner() {
  const uint64_t* row = slots_.row(winner_.slot);
  if (winner_.run != current_run_) {
    // Run boundary: close the current run and start the next.
    OVC_CHECK(winner_.run == current_run_ + 1);
    if (writer_ != nullptr) {
      OVC_RETURN_IF_ERROR(writer_->Close());
      runs_.push_back(SpilledRun{current_path_, writer_->rows()});
      writer_.reset();
    }
    current_run_ = winner_.run;
    run_has_rows_ = false;
  }
  if (writer_ == nullptr) {
    writer_ = std::make_unique<RunFileWriter>(schema_, counters_);
    current_path_ = temp_->NewPath("rs-run");
    OVC_RETURN_IF_ERROR(writer_->Open(current_path_));
  }
  Ovc out_code;
  if (!run_has_rows_) {
    // First row of a run: coded relative to minus infinity.
    out_code = codec_.MakeInitial(row);
  } else if (winner_.base_seq == prev_emitted_seq_) {
    out_code = winner_.code;
  } else {
    // The winner's code is relative to an older base; re-derive against the
    // previously emitted row. Only happens around run boundaries.
    if (counters_ != nullptr) ++counters_->row_comparisons;
    const uint32_t d =
        comparator_.FirstDifference(prev_emitted_.data(), row, 0);
    out_code = codec_.MakeFromRow(row, d);
  }
  OVC_RETURN_IF_ERROR(writer_->Append(row, out_code));
  std::memcpy(prev_emitted_.data(), row,
              schema_->total_columns() * sizeof(uint64_t));
  prev_emitted_seq_ = winner_.seq;
  run_has_rows_ = true;
  return Status::Ok();
}

Status ReplacementSelection::PopAndReplace(const Entry& replacement) {
  OVC_RETURN_IF_ERROR(EmitWinner());
  Entry cand = replacement;
  uint32_t node = (tree_capacity_ + winner_.slot) >> 1;
  while (node >= 1) {
    cand = PlayMatch(node, cand, nodes_[node]);
    node >>= 1;
  }
  winner_ = cand;
  return Status::Ok();
}

Status ReplacementSelection::Add(const uint64_t* row) {
  if (slots_.size() < capacity_) {
    slots_.AppendRow(row);
    return Status::Ok();
  }
  if (!built_) {
    BuildTree();
  }
  // The winner leaves; the fresh row takes its slot. One extra comparison
  // per input row -- against the emitted winner -- assigns the run number
  // and primes the fresh row's offset-value code.
  const uint32_t slot = winner_.slot;
  const uint64_t* emitted = slots_.row(slot);
  Entry fresh;
  fresh.slot = slot;
  fresh.seq = next_seq_++;
  if (counters_ != nullptr) ++counters_->row_comparisons;
  const uint32_t d = comparator_.FirstDifference(emitted, row, 0);
  if (d == schema_->key_arity()) {
    fresh.run = winner_.run;
    fresh.code = codec_.DuplicateCode();
    fresh.base_seq = winner_.seq;
  } else if (schema_->NormalizedAt(row, d) > schema_->NormalizedAt(emitted, d)) {
    fresh.run = winner_.run;
    fresh.code = codec_.MakeFromRow(row, d);
    fresh.base_seq = winner_.seq;
  } else {
    // Sorts before the last winner: next run, coded against minus infinity.
    fresh.run = winner_.run + 1;
    fresh.code = codec_.MakeInitial(row);
    fresh.base_seq = 0;
  }
  Status s = EmitWinner();
  if (!s.ok()) return s;
  // Overwrite the slot only after emitting (EmitWinner reads the row).
  std::memcpy(slots_.mutable_row(slot), row,
              schema_->total_columns() * sizeof(uint64_t));
  Entry cand = fresh;
  uint32_t node = (tree_capacity_ + slot) >> 1;
  while (node >= 1) {
    cand = PlayMatch(node, cand, nodes_[node]);
    node >>= 1;
  }
  winner_ = cand;
  return Status::Ok();
}

Status ReplacementSelection::Finish() {
  if (!built_) {
    if (slots_.empty()) {
      return Status::Ok();
    }
    BuildTree();
  }
  while (OvcCodec::IsValid(winner_.code)) {
    Entry fence;  // defaults: late fence, infinite run
    fence.slot = winner_.slot;
    OVC_RETURN_IF_ERROR(PopAndReplace(fence));
  }
  if (writer_ != nullptr) {
    OVC_RETURN_IF_ERROR(writer_->Close());
    runs_.push_back(SpilledRun{current_path_, writer_->rows()});
    writer_.reset();
  }
  return Status::Ok();
}

std::vector<SpilledRun> ReplacementSelection::TakeRuns() {
  return std::move(runs_);
}

}  // namespace ovc
