#include "sort/run.h"

// Header-only today; this translation unit anchors the library target.
