#include "sql/lexer.h"

#include <array>
#include <cctype>

namespace ovc::sql {

namespace {

const std::array<const char*, 21> kKeywords = {
    "SELECT", "DISTINCT", "FROM",  "INNER", "JOIN",  "ON",    "WHERE",
    "AND",    "GROUP",    "BY",    "ORDER", "LIMIT", "AS",    "ASC",
    "DESC",   "COUNT",    "SUM",   "MIN",   "MAX",   "EXPLAIN",
    "UNION",
};

// UNION's companions (and EXPLAIN's); listed separately only to keep the
// array lines tidy.
const std::array<const char*, 4> kMoreKeywords = {"INTERSECT", "EXCEPT",
                                                  "ALL", "ANALYZE"};

bool IsKeywordWord(const std::string& upper) {
  for (const char* kw : kKeywords) {
    if (upper == kw) return true;
  }
  for (const char* kw : kMoreKeywords) {
    if (upper == kw) return true;
  }
  return false;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

SqlResult<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  uint32_t line = 1;
  uint32_t column = 1;
  size_t i = 0;

  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (sql[i + k] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    i += n;
  };

  auto make = [&](TokenType type, size_t len) {
    Token t;
    t.type = type;
    t.text = std::string(sql.substr(i, len));
    t.normalized = t.text;
    t.line = line;
    t.column = column;
    tokens.push_back(t);
    advance(len);
  };

  while (i < sql.size()) {
    const char c = sql[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '-' && i + 1 < sql.size() && sql[i + 1] == '-') {
      while (i < sql.size() && sql[i] != '\n') advance(1);
      continue;
    }
    if (IsIdentStart(c)) {
      size_t len = 1;
      while (i + len < sql.size() && IsIdentChar(sql[i + len])) ++len;
      Token t;
      t.text = std::string(sql.substr(i, len));
      std::string upper = t.text;
      std::string lower = t.text;
      for (char& ch : upper) ch = static_cast<char>(std::toupper(
          static_cast<unsigned char>(ch)));
      for (char& ch : lower) ch = static_cast<char>(std::tolower(
          static_cast<unsigned char>(ch)));
      if (IsKeywordWord(upper)) {
        t.type = TokenType::kKeyword;
        t.normalized = upper;
      } else {
        t.type = TokenType::kIdentifier;
        t.normalized = lower;
      }
      t.line = line;
      t.column = column;
      tokens.push_back(std::move(t));
      advance(len);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t len = 1;
      while (i + len < sql.size() &&
             std::isdigit(static_cast<unsigned char>(sql[i + len]))) {
        ++len;
      }
      if (i + len < sql.size() && IsIdentStart(sql[i + len])) {
        SqlError err;
        err.message = "malformed number";
        err.line = line;
        err.column = column;
        err.token = std::string(sql.substr(i, len + 1));
        return err;
      }
      uint64_t value = 0;
      bool overflow = false;
      for (size_t k = 0; k < len; ++k) {
        const uint64_t digit = static_cast<uint64_t>(sql[i + k] - '0');
        if (value > (UINT64_MAX - digit) / 10) {
          overflow = true;
          break;
        }
        value = value * 10 + digit;
      }
      if (overflow) {
        SqlError err;
        err.message = "integer literal overflows uint64";
        err.line = line;
        err.column = column;
        err.token = std::string(sql.substr(i, len));
        return err;
      }
      Token t;
      t.type = TokenType::kInteger;
      t.text = std::string(sql.substr(i, len));
      t.normalized = t.text;
      t.line = line;
      t.column = column;
      t.int_value = value;
      tokens.push_back(std::move(t));
      advance(len);
      continue;
    }
    switch (c) {
      case ',':
        make(TokenType::kComma, 1);
        continue;
      case '.':
        make(TokenType::kDot, 1);
        continue;
      case '(':
        make(TokenType::kLParen, 1);
        continue;
      case ')':
        make(TokenType::kRParen, 1);
        continue;
      case '*':
        make(TokenType::kStar, 1);
        continue;
      case ';':
        make(TokenType::kSemicolon, 1);
        continue;
      case '=':
        make(TokenType::kEq, 1);
        continue;
      case '!':
        if (i + 1 < sql.size() && sql[i + 1] == '=') {
          make(TokenType::kNe, 2);
          continue;
        }
        break;
      case '<':
        if (i + 1 < sql.size() && sql[i + 1] == '=') {
          make(TokenType::kLe, 2);
        } else if (i + 1 < sql.size() && sql[i + 1] == '>') {
          make(TokenType::kNe, 2);
        } else {
          make(TokenType::kLt, 1);
        }
        continue;
      case '>':
        if (i + 1 < sql.size() && sql[i + 1] == '=') {
          make(TokenType::kGe, 2);
        } else {
          make(TokenType::kGt, 1);
        }
        continue;
      default:
        break;
    }
    SqlError err;
    err.message = "unexpected character";
    err.line = line;
    err.column = column;
    err.token = std::string(1, c);
    return err;
  }

  Token end;
  end.type = TokenType::kEnd;
  end.line = line;
  end.column = column;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace ovc::sql
