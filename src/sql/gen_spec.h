// Textual generated-table specs, shared by every front end that conjures
// synthetic catalogs: the ovcsql `.gen` meta command, the ovcd server's
// `--gen` startup flag, and tests/benchmarks that want a one-line table.
//
//   name(col,...) rows=N [keys=K] [distinct=D] [seed=S] [base=B] [sorted]
//
// registers `name` via Catalog::RegisterGenerated: `keys` leading columns
// become sort-key columns, `sorted` materializes the table pre-sorted with
// offset-value codes (scans then seed order properties and downstream
// sorts are elided).

#ifndef OVC_SQL_GEN_SPEC_H_
#define OVC_SQL_GEN_SPEC_H_

#include <string>

#include "common/status.h"
#include "sql/catalog.h"

namespace ovc::sql {

/// Parses one spec line (format above) and registers the table in
/// `catalog`. InvalidArgument on malformed specs; registration errors
/// (duplicate names, ...) pass through from the catalog.
Status RegisterGeneratedFromSpec(Catalog* catalog, const std::string& spec);

/// The usage string front ends print on a malformed spec.
const char* GenSpecUsage();

}  // namespace ovc::sql

#endif  // OVC_SQL_GEN_SPEC_H_
