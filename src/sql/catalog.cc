#include "sql/catalog.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <utility>

#include "core/ovc.h"
#include "row/comparator.h"

namespace ovc::sql {

namespace {

std::string Lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

}  // namespace

Status Catalog::Register(plan::TableSource source,
                         std::vector<std::string> columns) {
  if (source.schema == nullptr || source.factory == nullptr) {
    return Status::InvalidArgument("table source lacks schema or factory");
  }
  source.name = Lower(source.name);
  if (source.name.empty()) {
    return Status::InvalidArgument("table name must not be empty");
  }
  if (Find(source.name) != nullptr) {
    return Status::InvalidArgument("table '" + source.name +
                                   "' already registered");
  }
  if (columns.size() != source.schema->total_columns()) {
    return Status::InvalidArgument(
        "table '" + source.name + "' has " +
        std::to_string(source.schema->total_columns()) + " columns but " +
        std::to_string(columns.size()) + " column names");
  }
  for (std::string& col : columns) col = Lower(col);
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].empty()) {
      return Status::InvalidArgument("empty column name");
    }
    for (size_t j = i + 1; j < columns.size(); ++j) {
      if (columns[i] == columns[j]) {
        return Status::InvalidArgument("duplicate column name '" +
                                       columns[i] + "'");
      }
    }
  }
  auto table = std::make_unique<CatalogTable>();
  table->source = std::move(source);
  table->columns = std::move(columns);
  tables_.push_back(std::move(table));
  return Status::Ok();
}

Status Catalog::RegisterGenerated(const std::string& name,
                                  std::vector<std::string> columns,
                                  Schema schema, uint64_t n_rows,
                                  GeneratedSpec spec) {
  auto owned_schema = std::make_unique<Schema>(std::move(schema));
  const Schema* schema_ptr = owned_schema.get();

  GeneratorConfig config;
  config.rows = n_rows;
  config.distinct_per_column = spec.distinct_per_column;
  config.value_base = spec.value_base;
  config.seed = spec.seed;
  config.sorted = spec.sorted;

  auto buffer = std::make_unique<RowBuffer>(schema_ptr->total_columns());
  GenerateRows(*schema_ptr, config, buffer.get());

  plan::TableSource source;
  if (spec.sorted) {
    // Materialize as an in-memory run: derive each row's code the naive
    // reference way once at registration, so every scan afterwards delivers
    // order and codes at zero comparison cost (Section 4.11).
    auto run = std::make_unique<InMemoryRun>(schema_ptr->total_columns());
    run->Reserve(buffer->size());
    OvcCodec codec(schema_ptr);
    KeyComparator cmp(schema_ptr, nullptr);
    for (size_t i = 0; i < buffer->size(); ++i) {
      const Ovc code =
          i == 0 ? codec.MakeInitial(buffer->row(i))
                 : codec.MakeFromRow(
                       buffer->row(i),
                       cmp.FirstDifference(buffer->row(i - 1), buffer->row(i),
                                           0));
      run->Append(buffer->row(i), code);
    }
    source = plan::RunSource(name, schema_ptr, run.get());
    owned_runs_.push_back(std::move(run));
  } else {
    source = plan::BufferSource(name, schema_ptr, buffer.get());
  }

  // The generator draws every key column independently and uniformly from
  // `distinct_per_column` values, so a key prefix of length k has
  // domain = distinct^k and the expected distinct count of n draws is
  // domain * (1 - (1 - 1/domain)^n) -- the standard balls-in-bins
  // estimate, which matters near the n ~ domain crossover where the
  // naive min(rows, domain) cap overestimates by up to ~58%. These
  // statistics feed the cost model's merge-vs-hash and in-sort-vs-hash
  // decisions.
  source.stats.key_distinct.clear();
  double domain = 1.0;
  const double rows_d = static_cast<double>(n_rows);
  for (uint32_t k = 0; k < schema_ptr->key_arity(); ++k) {
    domain = std::min(domain * static_cast<double>(spec.distinct_per_column),
                      1e18);
    const double expected =
        domain * -std::expm1(rows_d * std::log1p(-1.0 / domain));
    source.stats.key_distinct.push_back(
        std::max(1.0, std::min(expected, rows_d)));
  }

  Status status = Register(std::move(source), std::move(columns));
  if (!status.ok()) {
    if (spec.sorted) owned_runs_.pop_back();
    return status;
  }
  owned_schemas_.push_back(std::move(owned_schema));
  // The sorted path copied the rows into the run; the staging buffer can go.
  if (!spec.sorted) owned_buffers_.push_back(std::move(buffer));
  return Status::Ok();
}

const CatalogTable* Catalog::Find(const std::string& name) const {
  const std::string lower = Lower(name);
  for (const auto& table : tables_) {
    if (table->source.name == lower) return table.get();
  }
  return nullptr;
}

CatalogTable* Catalog::FindMutable(const std::string& name) {
  const std::string lower = Lower(name);
  for (const auto& table : tables_) {
    if (table->source.name == lower) return table.get();
  }
  return nullptr;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& table : tables_) names.push_back(table->source.name);
  return names;
}

}  // namespace ovc::sql
