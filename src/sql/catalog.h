// Catalog: named tables the SQL binder can resolve.
//
// A catalog table is a plan::TableSource (scan factory + schema + seed
// order property) together with its column names. Registering a scan over
// sorted storage (an in-memory run, the B-tree, the RLE column store, the
// LSM forest) seeds the binder's plans with {sorted_prefix, has_ovc} --
// the planner then elides sorts over those tables exactly as it does for
// hand-built plans.
//
// RegisterGenerated wraps the synthetic workload generator so tests,
// benchmarks, and the REPL can conjure tables without hand-filling
// RowBuffers; the catalog owns the generated storage. Externally-backed
// tables (Register) only borrow their storage, which must outlive the
// catalog's users.

#ifndef OVC_SQL_CATALOG_H_
#define OVC_SQL_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "plan/logical_plan.h"
#include "row/generator.h"
#include "row/row_buffer.h"
#include "row/schema.h"
#include "sort/run.h"

namespace ovc::sql {

/// A registered table: scan source plus column names (lowercase;
/// columns[i] names schema column i).
struct CatalogTable {
  plan::TableSource source;
  std::vector<std::string> columns;

  const Schema& schema() const { return *source.schema; }
};

class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers `source` under its own name with `columns` naming its
  /// schema's columns in order. Names are folded to lowercase (SQL
  /// identifiers are case-insensitive). Fails on duplicate table names,
  /// column-count mismatches, and duplicate column names. The storage
  /// behind `source` must outlive every query against it.
  Status Register(plan::TableSource source,
                  std::vector<std::string> columns);

  /// Knobs for RegisterGenerated, mirroring GeneratorConfig.
  struct GeneratedSpec {
    /// Distinct values per key column, from [value_base, value_base + n).
    uint64_t distinct_per_column;
    uint64_t value_base;
    uint64_t seed;
    /// True materializes the table *sorted with offset-value codes* (an
    /// in-memory run): scans then deliver order and codes for free, and
    /// downstream sorts are elided. False registers an unsorted buffer.
    bool sorted;

    GeneratedSpec()
        : distinct_per_column(16), value_base(0), seed(42), sorted(false) {}
  };

  /// Generates `n_rows` synthetic rows for `schema` (the paper's data
  /// shape) and registers them under `name`. The catalog owns schema and
  /// storage.
  Status RegisterGenerated(const std::string& name,
                           std::vector<std::string> columns, Schema schema,
                           uint64_t n_rows,
                           GeneratedSpec spec = GeneratedSpec());

  /// Looks up a table by (case-insensitive) name; nullptr when absent.
  const CatalogTable* Find(const std::string& name) const;

  /// Mutable lookup, for runtime-feedback writers (profiled runs updating
  /// TableStats::observed_rows through SqlSession::ApplyFeedbackTo).
  CatalogTable* FindMutable(const std::string& name);

  /// Registered table names, in registration order.
  std::vector<std::string> TableNames() const;

 private:
  std::vector<std::unique_ptr<CatalogTable>> tables_;
  // Owned storage backing generated tables. The unique_ptr indirection is
  // what keeps the pointees' addresses stable as more tables register
  // (TableSource factories and schemas point at them; vector reallocation
  // only moves the unique_ptrs).
  std::vector<std::unique_ptr<Schema>> owned_schemas_;
  std::vector<std::unique_ptr<RowBuffer>> owned_buffers_;
  std::vector<std::unique_ptr<InMemoryRun>> owned_runs_;
};

}  // namespace ovc::sql

#endif  // OVC_SQL_CATALOG_H_
