#include "sql/ast.h"

namespace ovc::sql {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "count";
    case AggKind::kCountDistinct:
      return "count distinct";
    case AggKind::kSum:
      return "sum";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "unknown";
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* SetOpKindName(SetOpKind kind) {
  switch (kind) {
    case SetOpKind::kUnion:
      return "UNION";
    case SetOpKind::kIntersect:
      return "INTERSECT";
    case SetOpKind::kExcept:
      return "EXCEPT";
  }
  return "?";
}

std::string SelectItem::ToString() const {
  std::string out;
  if (!is_aggregate) {
    out = column.ToString();
  } else {
    switch (agg) {
      case AggKind::kCount:
        out = agg_star ? "COUNT(*)" : "COUNT(" + column.ToString() + ")";
        break;
      case AggKind::kCountDistinct:
        out = "COUNT(DISTINCT " + column.ToString() + ")";
        break;
      case AggKind::kSum:
        out = "SUM(" + column.ToString() + ")";
        break;
      case AggKind::kMin:
        out = "MIN(" + column.ToString() + ")";
        break;
      case AggKind::kMax:
        out = "MAX(" + column.ToString() + ")";
        break;
    }
  }
  if (!alias.empty()) out += " AS " + alias;
  return out;
}

std::string Comparison::ToString() const {
  std::string out = lhs_is_literal ? std::to_string(lhs_literal)
                                   : lhs.ToString();
  out += std::string(" ") + CompareOpName(op) + " ";
  out += rhs_is_literal ? std::to_string(rhs_literal) : rhs.ToString();
  return out;
}

std::string SelectCore::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  if (select_star) {
    out += "*";
  } else {
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ", ";
      out += items[i].ToString();
    }
  }
  out += " FROM " + from.ToString();
  for (const JoinClause& join : joins) {
    out += " INNER JOIN " + join.table.ToString() + " ON ";
    for (size_t i = 0; i < join.on.size(); ++i) {
      if (i > 0) out += " AND ";
      out += join.on[i].first.ToString() + " = " +
             join.on[i].second.ToString();
    }
  }
  if (!where.empty()) {
    out += " WHERE ";
    for (size_t i = 0; i < where.size(); ++i) {
      if (i > 0) out += " AND ";
      out += where[i].ToString();
    }
  }
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i].ToString();
    }
  }
  return out;
}

std::string SelectStmt::ToString() const {
  std::string out = first.ToString();
  for (const SetOpClause& op : set_ops) {
    out += std::string(" ") + SetOpKindName(op.kind);
    if (op.all) out += " ALL";
    out += " " + op.select.ToString();
  }
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].column.ToString();
      if (order_by[i].descending) out += " DESC";
    }
  }
  if (has_limit) out += " LIMIT " + std::to_string(limit);
  return out;
}

std::string Statement::ToString() const {
  std::string prefix;
  if (explain) prefix = analyze ? "EXPLAIN ANALYZE " : "EXPLAIN ";
  return prefix + select.ToString();
}

}  // namespace ovc::sql
