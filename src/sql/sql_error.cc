#include "sql/sql_error.h"

namespace ovc::sql {

std::string SqlError::ToString() const {
  std::string out;
  if (line > 0) {
    out += std::to_string(line) + ":" + std::to_string(column) + ": ";
  }
  out += "error: " + message;
  if (!token.empty()) {
    out += " (near '" + token + "')";
  }
  return out;
}

std::string SqlError::Render(std::string_view sql) const {
  if (line == 0 || column == 0) return ToString();
  // Find the 1-based `line`-th line of `sql`.
  size_t start = 0;
  for (uint32_t l = 1; l < line; ++l) {
    const size_t nl = sql.find('\n', start);
    if (nl == std::string_view::npos) return ToString();
    start = nl + 1;
  }
  size_t end = sql.find('\n', start);
  if (end == std::string_view::npos) end = sql.size();
  const std::string_view text = sql.substr(start, end - start);
  if (column > text.size() + 1) return ToString();

  std::string out = ToString();
  out += "\n  ";
  out.append(text);
  out += "\n  ";
  out.append(column - 1, ' ');
  out += '^';
  if (token.size() > 1) out.append(token.size() - 1, '~');
  return out;
}

}  // namespace ovc::sql
