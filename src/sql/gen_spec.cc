#include "sql/gen_spec.h"

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace ovc::sql {

namespace {

void Trim(std::string* s) {
  while (!s->empty() && (s->back() == ' ' || s->back() == '\t')) s->pop_back();
  while (!s->empty() && (s->front() == ' ' || s->front() == '\t')) {
    s->erase(s->begin());
  }
}

}  // namespace

const char* GenSpecUsage() {
  return "usage: <name>(<col,...>) rows=N [keys=K] [distinct=D] [seed=S] "
         "[base=B] [sorted]";
}

Status RegisterGeneratedFromSpec(Catalog* catalog, const std::string& spec) {
  const size_t lparen = spec.find('(');
  const size_t rparen = spec.find(')');
  if (lparen == std::string::npos || rparen == std::string::npos ||
      rparen < lparen) {
    return Status::InvalidArgument(GenSpecUsage());
  }
  std::string name = spec.substr(0, lparen);
  Trim(&name);
  std::vector<std::string> columns;
  std::stringstream cols(spec.substr(lparen + 1, rparen - lparen - 1));
  std::string col;
  while (std::getline(cols, col, ',')) {
    std::string trimmed;
    for (char c : col) {
      if (c != ' ' && c != '\t') trimmed += c;
    }
    if (!trimmed.empty()) columns.push_back(trimmed);
  }
  if (name.empty() || columns.empty()) {
    return Status::InvalidArgument("gen spec needs a table name and "
                                   "column list");
  }

  uint64_t rows = 0;
  uint32_t keys = static_cast<uint32_t>(columns.size());
  Catalog::GeneratedSpec gen;
  std::stringstream rest(spec.substr(rparen + 1));
  std::string word;
  while (rest >> word) {
    if (word == "sorted") {
      gen.sorted = true;
      continue;
    }
    const size_t eq = word.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("unknown gen argument '" + word + "'");
    }
    const std::string key = word.substr(0, eq);
    const uint64_t value = std::strtoull(word.c_str() + eq + 1, nullptr, 10);
    if (key == "rows") {
      rows = value;
    } else if (key == "keys") {
      keys = static_cast<uint32_t>(value);
    } else if (key == "distinct") {
      gen.distinct_per_column = value;
    } else if (key == "seed") {
      gen.seed = value;
    } else if (key == "base") {
      gen.value_base = value;
    } else {
      return Status::InvalidArgument("unknown gen argument '" + word + "'");
    }
  }
  if (rows == 0 || keys == 0 || keys > columns.size()) {
    return Status::InvalidArgument(
        "gen spec needs rows=N and 1 <= keys <= #columns");
  }

  Schema schema(keys, static_cast<uint32_t>(columns.size()) - keys);
  return catalog->RegisterGenerated(name, columns, schema, rows, gen);
}

}  // namespace ovc::sql
