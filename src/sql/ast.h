// Abstract syntax tree for the supported SQL subset.
//
// The grammar is deliberately small -- exactly the shapes the planner can
// exploit (see README "SQL front end" for the EBNF):
//
//   [EXPLAIN] SELECT [DISTINCT] items | *
//     FROM table [alias] (INNER JOIN table [alias] ON a = b [AND ...])*
//     [WHERE comparison [AND ...]]
//     [GROUP BY columns]
//     [{UNION|INTERSECT|EXCEPT} [ALL] select ...]
//     [ORDER BY column [ASC|DESC], ...]
//     [LIMIT n]
//
// Aggregates: COUNT(*), COUNT(col), COUNT(DISTINCT col), SUM/MIN/MAX(col).
// Every node keeps the token it was parsed from so the binder can report
// errors with exact source positions.

#ifndef OVC_SQL_AST_H_
#define OVC_SQL_AST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sql/lexer.h"

namespace ovc::sql {

/// A possibly-qualified column reference: `name` or `qualifier.name`
/// (normalized lowercase).
struct ColumnRef {
  std::string qualifier;  // "" when unqualified
  std::string name;
  Token token;  // head token, for bind-error positions

  std::string ToString() const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }
};

/// Aggregate functions of the select list.
enum class AggKind : uint8_t { kCount, kCountDistinct, kSum, kMin, kMax };

const char* AggKindName(AggKind kind);  // "count", "count distinct", ...

/// One select-list entry: a plain column or an aggregate call, with an
/// optional AS alias.
struct SelectItem {
  bool is_aggregate = false;
  /// The plain column, or the aggregate's argument (unused for COUNT(*)).
  ColumnRef column;
  AggKind agg = AggKind::kCount;
  bool agg_star = false;  // COUNT(*)
  std::string alias;      // "" when none
  Token token;

  std::string ToString() const;
};

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);  // "=", "!=", "<", ...

/// One WHERE conjunct: `lhs op rhs`, each side a column or an unsigned
/// integer literal.
struct Comparison {
  bool lhs_is_literal = false;
  ColumnRef lhs;
  uint64_t lhs_literal = 0;
  CompareOp op = CompareOp::kEq;
  bool rhs_is_literal = false;
  ColumnRef rhs;
  uint64_t rhs_literal = 0;
  Token token;  // the operator token

  std::string ToString() const;
};

/// FROM / JOIN table reference with optional alias.
struct TableRef {
  std::string table;
  std::string alias;  // "" when none
  Token token;

  std::string ToString() const {
    return alias.empty() ? table : table + " " + alias;
  }
};

/// INNER JOIN ... ON a = b [AND c = d ...]
struct JoinClause {
  TableRef table;
  /// Equi-join pairs exactly as written (sides not yet assigned to inputs).
  std::vector<std::pair<ColumnRef, ColumnRef>> on;
};

struct OrderItem {
  ColumnRef column;
  bool descending = false;
};

/// One SELECT core: everything up to (but excluding) set operations,
/// ORDER BY, and LIMIT.
struct SelectCore {
  bool distinct = false;
  bool select_star = false;
  std::vector<SelectItem> items;  // empty when select_star
  TableRef from;
  std::vector<JoinClause> joins;
  std::vector<Comparison> where;  // conjunction; empty = no WHERE
  std::vector<ColumnRef> group_by;

  std::string ToString() const;
};

enum class SetOpKind : uint8_t { kUnion, kIntersect, kExcept };

const char* SetOpKindName(SetOpKind kind);  // "UNION", ...

struct SetOpClause {
  SetOpKind kind = SetOpKind::kUnion;
  bool all = false;
  SelectCore select;
  Token token;
};

/// A full query: a SELECT core, optional set-operation chain (left
/// associative), then ORDER BY / LIMIT over the combined result.
struct SelectStmt {
  SelectCore first;
  std::vector<SetOpClause> set_ops;
  std::vector<OrderItem> order_by;
  bool has_limit = false;
  uint64_t limit = 0;

  std::string ToString() const;
};

/// A statement: a query, optionally prefixed with EXPLAIN [ANALYZE].
struct Statement {
  bool explain = false;
  /// EXPLAIN ANALYZE: execute the query with per-operator profiling and
  /// render the plan with actuals instead of the result rows. Only
  /// meaningful when `explain` is set.
  bool analyze = false;
  SelectStmt select;

  /// Canonical SQL rendering; parsing it again yields an equal AST (the
  /// parser test's round-trip property).
  std::string ToString() const;
};

}  // namespace ovc::sql

#endif  // OVC_SQL_AST_H_
