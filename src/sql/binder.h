// Binder: AST -> logical plan, lowered onto the fluent PlanBuilder.
//
// The engine's row model is positional -- `key_arity` leading sort-key
// columns followed by payload columns -- so the binder's main job beyond
// name resolution is *column arrangement*: it inserts projections so that
// join keys, grouping columns, and ORDER BY keys become the key prefix the
// order-property-aware planner reasons about, and it skips those
// projections whenever the columns already line up (which is what lets a
// query over pre-sorted coded storage keep its order property end to end
// and have its ORDER BY elided).
//
// Everything *physical* stays the planner's job: the binder never chooses
// between merge and hash joins, in-stream and in-sort aggregation, or
// serial and exchange-parallel shapes -- it only emits the logical tree
// with the right column layouts.

#ifndef OVC_SQL_BINDER_H_
#define OVC_SQL_BINDER_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/logical_plan.h"
#include "sql/ast.h"
#include "sql/catalog.h"
#include "sql/sql_error.h"

namespace ovc::sql {

/// A bound query: the logical plan plus output column names (one per
/// output schema column, in select-list order).
struct BoundQuery {
  std::unique_ptr<plan::LogicalNode> plan;
  std::vector<std::string> columns;
};

/// Binds statements against a catalog. Stateless between calls; the
/// catalog (and the storage behind its tables) must outlive every bound
/// plan.
class Binder {
 public:
  explicit Binder(const Catalog* catalog) : catalog_(catalog) {}

  SqlResult<BoundQuery> Bind(const SelectStmt& stmt) const;

 private:
  const Catalog* catalog_;
};

}  // namespace ovc::sql

#endif  // OVC_SQL_BINDER_H_
