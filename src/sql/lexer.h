// SQL lexer: statement text -> token stream with source positions.
//
// Hand-written single-pass scanner. Identifiers are case-insensitive (the
// lexer records a lowercased `normalized` form next to the raw text);
// reserved words become kKeyword tokens whose normalized form is the
// canonical UPPERCASE spelling. `--` starts a comment to end of line.

#ifndef OVC_SQL_LEXER_H_
#define OVC_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sql/sql_error.h"

namespace ovc::sql {

enum class TokenType : uint8_t {
  kEnd,         // end of input
  kIdentifier,  // unreserved word: table / column / alias name
  kKeyword,     // reserved word (normalized = canonical uppercase)
  kInteger,     // unsigned 64-bit decimal literal (value in int_value)
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,
  kSemicolon,
  kEq,  // =
  kNe,  // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
};

/// One lexed token with its 1-based source position.
struct Token {
  TokenType type = TokenType::kEnd;
  /// Raw source spelling (empty for kEnd).
  std::string text;
  /// Lowercased identifiers; canonical UPPERCASE keywords; `text` otherwise.
  std::string normalized;
  uint32_t line = 1;
  uint32_t column = 1;
  uint64_t int_value = 0;

  /// True for a keyword token whose canonical spelling is `kw` (UPPERCASE).
  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && normalized == kw;
  }
};

/// Scans `sql` into a token vector ending in a kEnd token. Fails on
/// characters outside the language and on integer literals that overflow
/// uint64.
SqlResult<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace ovc::sql

#endif  // OVC_SQL_LEXER_H_
