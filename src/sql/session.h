// SqlSession: the SQL front end's front door.
//
//   Catalog catalog;                       // register / generate tables
//   SqlSession session(&catalog);
//   auto result = session.Run("SELECT a, COUNT(*) AS n FROM t GROUP BY a");
//
// Prepare parses, binds, and physically plans a statement; Run executes
// it through PlanExecutor (inheriting its OvcStreamChecker validation);
// Explain returns the physical plan rendering -- the text that shows
// elided sorts, merge-vs-hash choices, and exchange-parallel shapes for a
// query. All planner behavior is inherited from PlannerOptions: set
// `parallelism` > 1 and SQL queries run the exchange-parallel shapes with
// no front-end changes.

#ifndef OVC_SQL_SESSION_H_
#define OVC_SQL_SESSION_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/counters.h"
#include "common/temp_file.h"
#include "plan/plan_executor.h"
#include "sql/ast.h"
#include "sql/binder.h"
#include "sql/catalog.h"
#include "sql/sql_error.h"

namespace ovc::sql {

/// A prepared statement: the bound logical plan plus the physical plan the
/// planner chose. Re-runnable; must not outlive its session or catalog.
struct PreparedQuery {
  /// True when the statement was EXPLAIN: Run returns the plan text
  /// instead of executing.
  bool is_explain = false;
  /// True when the statement was EXPLAIN ANALYZE: Run executes the query
  /// with per-operator profiling and returns the annotated plan text (plus
  /// the JSON profile) instead of the result rows.
  bool is_analyze = false;
  /// Output column names, in select-list order.
  std::vector<std::string> columns;
  /// The bound logical plan (owns predicates the physical plan shares).
  BoundQuery bound;
  /// The planner's choice of operators.
  std::unique_ptr<plan::PhysicalPlan> physical;

  /// Physical plan rendering (the EXPLAIN text).
  std::string explain_text() const { return physical->ToString(); }
};

/// A materialized query (or EXPLAIN) result.
struct QueryResult {
  std::vector<std::string> columns;
  plan::ExecutionResult result;
  bool is_explain = false;
  /// Set for EXPLAIN statements (result is empty then). For EXPLAIN
  /// ANALYZE this is the executed plan annotated with actuals.
  std::string explain_text;
  /// JSON query profile; set whenever the run was profiled (EXPLAIN
  /// ANALYZE, or a session with Options::planner.profile set).
  std::string profile_json;
  /// What executing this statement added to the session counters -- the
  /// per-query resource slice. The same delta is added to the process-wide
  /// query.* metrics (common/metrics.h), so the two surfaces always agree.
  QueryCounters counters_delta;
};

class SqlSession {
 public:
  using Options = plan::PlanExecutor::Options;

  /// `catalog` (and the storage behind its tables) must outlive the
  /// session and everything it prepares.
  explicit SqlSession(const Catalog* catalog, Options options = Options());

  /// As above, with the session's temp-file scratch space nested inside
  /// `parent_temp` -- the serving layout: the server owns one root scratch
  /// tree, each connection's session gets its own sub-manager, so the
  /// first-error slot (and therefore spill-error reporting) stays
  /// per-session/per-query instead of bleeding through a process-wide
  /// manager. `parent_temp` must outlive the session.
  SqlSession(const Catalog* catalog, Options options,
             TempFileManager* parent_temp);

  /// Parses, binds, and plans one statement.
  SqlResult<std::unique_ptr<PreparedQuery>> Prepare(std::string_view sql);

  /// Plans an already-bound query (e.g. one shared through a server plan
  /// cache) into a fresh PreparedQuery whose operators charge *this*
  /// session's counters and spill into *this* session's temp files --
  /// the step that lets many sessions run one cached bound plan
  /// concurrently, each through its own instantiation. Skips parse and
  /// bind entirely. `bound` must outlive the returned query, and because
  /// planning annotates the shared logical tree in place, concurrent
  /// Instantiate calls over the same BoundQuery must be serialized
  /// externally (the plan cache's per-entry mutex does exactly that).
  std::unique_ptr<PreparedQuery> Instantiate(BoundQuery* bound);

  /// Physical plan text for one statement (EXPLAIN prefix optional).
  SqlResult<std::string> Explain(std::string_view sql);

  /// Prepares and executes one statement.
  SqlResult<QueryResult> Run(std::string_view sql);

  /// Executes an already-prepared statement (again).
  QueryResult Run(PreparedQuery* prepared);

  /// Session-wide comparison/spill counters, accumulated across runs.
  QueryCounters* counters() { return &counters_; }
  const Catalog* catalog() const { return catalog_; }
  const Options& options() const { return executor_.options(); }

  /// Latest estimate-versus-actual cardinality observation per scanned
  /// table, accumulated from every profiled run in this session.
  struct TableFeedback {
    double est_rows = 0;
    double actual_rows = 0;
    double q_error = 1;
    uint64_t runs = 0;
  };
  const std::map<std::string, TableFeedback>& table_feedback() const {
    return feedback_;
  }

  /// Writes the session's feedback into `catalog`'s TableStats
  /// (observed_rows / feedback_runs) so later planning sessions can see
  /// runtime cardinalities. The catalog must contain the scanned tables.
  void ApplyFeedbackTo(Catalog* catalog) const;

 private:
  /// Folds one profiled run's per-scan observations into feedback_.
  void RecordFeedback(const plan::PhysicalPlan& physical);

  const Catalog* catalog_;
  QueryCounters counters_;
  TempFileManager temp_;
  plan::PlanExecutor executor_;
  std::map<std::string, TableFeedback> feedback_;
};

}  // namespace ovc::sql

#endif  // OVC_SQL_SESSION_H_
