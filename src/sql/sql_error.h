// First-class SQL front-end errors.
//
// Parse and bind failures are data, not exceptions: every fallible SQL
// entry point returns SqlResult<T>, which holds either the value or a
// SqlError pinpointing the failure -- 1-based line and column plus the
// offending token -- so the REPL (and tests) can render a caret under the
// exact spot in the statement text.

#ifndef OVC_SQL_SQL_ERROR_H_
#define OVC_SQL_SQL_ERROR_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/check.h"

namespace ovc::sql {

/// A parse or bind failure with its source position.
struct [[nodiscard]] SqlError {
  /// Human-readable description ("expected FROM", "unknown column 'x'").
  std::string message;
  /// 1-based line of the offending token (0 when unknown).
  uint32_t line = 0;
  /// 1-based column of the offending token (0 when unknown).
  uint32_t column = 0;
  /// Source text of the offending token ("" at end of input).
  std::string token;

  /// One-line form: "2:17: error: expected FROM (near 'FRM')".
  std::string ToString() const;

  /// Two-line caret rendering over `sql` (the text the error came from):
  /// the offending source line followed by a '^~~~' marker under the
  /// token. Falls back to ToString() when the position is unknown or out
  /// of range.
  std::string Render(std::string_view sql) const;
};

/// Holds either a T or a SqlError. The front end's StatusOr: no exceptions
/// anywhere on the parse/bind/execute path.
template <typename T>
class [[nodiscard]] SqlResult {
 public:
  SqlResult(T value) : value_(std::move(value)) {}  // NOLINT: implicit
  SqlResult(SqlError error) : error_(std::move(error)) {}  // NOLINT: implicit

  bool ok() const { return value_.has_value(); }

  const SqlError& error() const {
    OVC_CHECK(!ok());
    return error_;
  }

  const T& value() const& {
    OVC_CHECK(ok());
    return *value_;
  }
  T& value() & {
    OVC_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    OVC_CHECK(ok());
    return *std::move(value_);
  }

 private:
  std::optional<T> value_;
  SqlError error_;
};

}  // namespace ovc::sql

#endif  // OVC_SQL_SQL_ERROR_H_
