// Recursive-descent parser for the supported SQL subset (see ast.h for
// the grammar). No exceptions: failures come back as SqlError with the
// offending token's 1-based line/column.

#ifndef OVC_SQL_PARSER_H_
#define OVC_SQL_PARSER_H_

#include <string_view>
#include <vector>

#include "sql/ast.h"
#include "sql/sql_error.h"

namespace ovc::sql {

/// Parses exactly one statement (a trailing ';' is allowed). Fails on
/// trailing input past the statement.
SqlResult<Statement> ParseStatement(std::string_view sql);

/// Parses a ';'-separated script into its statements. Empty statements
/// (stray semicolons) are skipped.
SqlResult<std::vector<Statement>> ParseScript(std::string_view sql);

}  // namespace ovc::sql

#endif  // OVC_SQL_PARSER_H_
