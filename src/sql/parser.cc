#include "sql/parser.h"

#include <utility>

namespace ovc::sql {

namespace {

/// Token-stream cursor with the usual accept/expect helpers. Productions
/// return false after stashing the error; the public entry points convert
/// to SqlResult.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  bool ParseStatement(Statement* out) {
    out->explain = AcceptKeyword("EXPLAIN");
    if (out->explain) out->analyze = AcceptKeyword("ANALYZE");
    if (!ParseSelectStmt(&out->select)) return false;
    Accept(TokenType::kSemicolon);
    return true;
  }

  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool ExpectEnd() {
    if (AtEnd()) return true;
    return Fail(Peek(), "unexpected input after statement");
  }

  /// Skips stray semicolons between script statements.
  void SkipSemicolons() {
    while (Accept(TokenType::kSemicolon)) {
    }
  }

  const SqlError& error() const { return error_; }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool Accept(TokenType type) {
    if (Peek().type != type) return false;
    ++pos_;
    return true;
  }

  bool AcceptKeyword(std::string_view kw) {
    if (!Peek().IsKeyword(kw)) return false;
    ++pos_;
    return true;
  }

  bool Fail(const Token& at, std::string message) {
    error_.message = std::move(message);
    error_.line = at.line;
    error_.column = at.column;
    error_.token = at.text;
    return false;
  }

  bool ExpectKeyword(std::string_view kw) {
    if (AcceptKeyword(kw)) return true;
    return Fail(Peek(), "expected " + std::string(kw));
  }

  bool Expect(TokenType type, const char* what) {
    if (Accept(type)) return true;
    return Fail(Peek(), std::string("expected ") + what);
  }

  bool ParseSelectStmt(SelectStmt* out) {
    if (!ParseSelectCore(&out->first)) return false;
    for (;;) {
      SetOpClause clause;
      clause.token = Peek();
      if (AcceptKeyword("UNION")) {
        clause.kind = SetOpKind::kUnion;
      } else if (AcceptKeyword("INTERSECT")) {
        clause.kind = SetOpKind::kIntersect;
      } else if (AcceptKeyword("EXCEPT")) {
        clause.kind = SetOpKind::kExcept;
      } else {
        break;
      }
      clause.all = AcceptKeyword("ALL");
      if (!ParseSelectCore(&clause.select)) return false;
      out->set_ops.push_back(std::move(clause));
    }
    if (AcceptKeyword("ORDER")) {
      if (!ExpectKeyword("BY")) return false;
      do {
        OrderItem item;
        if (!ParseColumnRef(&item.column)) return false;
        if (AcceptKeyword("DESC")) {
          item.descending = true;
        } else {
          AcceptKeyword("ASC");
        }
        out->order_by.push_back(std::move(item));
      } while (Accept(TokenType::kComma));
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().type != TokenType::kInteger) {
        return Fail(Peek(), "expected integer after LIMIT");
      }
      out->has_limit = true;
      out->limit = Advance().int_value;
    }
    return true;
  }

  bool ParseSelectCore(SelectCore* out) {
    if (!ExpectKeyword("SELECT")) return false;
    out->distinct = AcceptKeyword("DISTINCT");
    if (Accept(TokenType::kStar)) {
      out->select_star = true;
    } else {
      do {
        SelectItem item;
        if (!ParseSelectItem(&item)) return false;
        out->items.push_back(std::move(item));
      } while (Accept(TokenType::kComma));
    }
    if (!ExpectKeyword("FROM")) return false;
    if (!ParseTableRef(&out->from)) return false;
    while (Peek().IsKeyword("INNER") || Peek().IsKeyword("JOIN")) {
      JoinClause join;
      AcceptKeyword("INNER");
      if (!ExpectKeyword("JOIN")) return false;
      if (!ParseTableRef(&join.table)) return false;
      if (!ExpectKeyword("ON")) return false;
      do {
        std::pair<ColumnRef, ColumnRef> eq;
        if (!ParseColumnRef(&eq.first)) return false;
        if (!Expect(TokenType::kEq, "= in join condition")) return false;
        if (!ParseColumnRef(&eq.second)) return false;
        join.on.push_back(std::move(eq));
      } while (AcceptKeyword("AND"));
      out->joins.push_back(std::move(join));
    }
    if (AcceptKeyword("WHERE")) {
      do {
        Comparison cmp;
        if (!ParseComparison(&cmp)) return false;
        out->where.push_back(std::move(cmp));
      } while (AcceptKeyword("AND"));
    }
    if (AcceptKeyword("GROUP")) {
      if (!ExpectKeyword("BY")) return false;
      do {
        ColumnRef col;
        if (!ParseColumnRef(&col)) return false;
        out->group_by.push_back(std::move(col));
      } while (Accept(TokenType::kComma));
    }
    return true;
  }

  bool ParseSelectItem(SelectItem* out) {
    out->token = Peek();
    const Token& head = Peek();
    if (head.type == TokenType::kKeyword &&
        (head.normalized == "COUNT" || head.normalized == "SUM" ||
         head.normalized == "MIN" || head.normalized == "MAX")) {
      out->is_aggregate = true;
      const std::string fn = Advance().normalized;
      if (!Expect(TokenType::kLParen, "( after aggregate function")) {
        return false;
      }
      if (fn == "COUNT") {
        if (Accept(TokenType::kStar)) {
          out->agg = AggKind::kCount;
          out->agg_star = true;
        } else if (AcceptKeyword("DISTINCT")) {
          out->agg = AggKind::kCountDistinct;
          if (!ParseColumnRef(&out->column)) return false;
        } else {
          out->agg = AggKind::kCount;
          if (!ParseColumnRef(&out->column)) return false;
        }
      } else {
        out->agg = fn == "SUM" ? AggKind::kSum
                 : fn == "MIN" ? AggKind::kMin
                               : AggKind::kMax;
        if (!ParseColumnRef(&out->column)) return false;
      }
      if (!Expect(TokenType::kRParen, ") after aggregate argument")) {
        return false;
      }
    } else {
      if (!ParseColumnRef(&out->column)) return false;
    }
    if (AcceptKeyword("AS")) {
      if (Peek().type != TokenType::kIdentifier) {
        return Fail(Peek(), "expected alias after AS");
      }
      out->alias = Advance().normalized;
    } else if (Peek().type == TokenType::kIdentifier) {
      out->alias = Advance().normalized;  // bare alias: SELECT a total
    }
    return true;
  }

  bool ParseTableRef(TableRef* out) {
    out->token = Peek();
    if (Peek().type != TokenType::kIdentifier) {
      return Fail(Peek(), "expected table name");
    }
    out->table = Advance().normalized;
    if (AcceptKeyword("AS")) {
      if (Peek().type != TokenType::kIdentifier) {
        return Fail(Peek(), "expected alias after AS");
      }
      out->alias = Advance().normalized;
    } else if (Peek().type == TokenType::kIdentifier) {
      out->alias = Advance().normalized;
    }
    return true;
  }

  bool ParseColumnRef(ColumnRef* out) {
    out->token = Peek();
    if (Peek().type != TokenType::kIdentifier) {
      return Fail(Peek(), "expected column name");
    }
    out->name = Advance().normalized;
    if (Accept(TokenType::kDot)) {
      if (Peek().type != TokenType::kIdentifier) {
        return Fail(Peek(), "expected column name after '.'");
      }
      out->qualifier = std::move(out->name);
      out->name = Advance().normalized;
    }
    return true;
  }

  bool ParseComparison(Comparison* out) {
    if (!ParseComparisonSide(&out->lhs_is_literal, &out->lhs,
                             &out->lhs_literal)) {
      return false;
    }
    out->token = Peek();
    switch (Peek().type) {
      case TokenType::kEq:
        out->op = CompareOp::kEq;
        break;
      case TokenType::kNe:
        out->op = CompareOp::kNe;
        break;
      case TokenType::kLt:
        out->op = CompareOp::kLt;
        break;
      case TokenType::kLe:
        out->op = CompareOp::kLe;
        break;
      case TokenType::kGt:
        out->op = CompareOp::kGt;
        break;
      case TokenType::kGe:
        out->op = CompareOp::kGe;
        break;
      default:
        return Fail(Peek(), "expected comparison operator");
    }
    Advance();
    return ParseComparisonSide(&out->rhs_is_literal, &out->rhs,
                               &out->rhs_literal);
  }

  bool ParseComparisonSide(bool* is_literal, ColumnRef* col,
                           uint64_t* literal) {
    if (Peek().type == TokenType::kInteger) {
      *is_literal = true;
      *literal = Advance().int_value;
      return true;
    }
    *is_literal = false;
    return ParseColumnRef(col);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  SqlError error_;
};

}  // namespace

SqlResult<Statement> ParseStatement(std::string_view sql) {
  SqlResult<std::vector<Token>> tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.error();
  Parser parser(std::move(tokens).value());
  Statement stmt;
  if (!parser.ParseStatement(&stmt)) return parser.error();
  if (!parser.ExpectEnd()) return parser.error();
  return stmt;
}

SqlResult<std::vector<Statement>> ParseScript(std::string_view sql) {
  SqlResult<std::vector<Token>> tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.error();
  Parser parser(std::move(tokens).value());
  std::vector<Statement> statements;
  parser.SkipSemicolons();
  while (!parser.AtEnd()) {
    Statement stmt;
    if (!parser.ParseStatement(&stmt)) return parser.error();
    statements.push_back(std::move(stmt));
    parser.SkipSemicolons();
  }
  return statements;
}

}  // namespace ovc::sql
