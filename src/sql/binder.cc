#include "sql/binder.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

namespace ovc::sql {

namespace {

using plan::PlanBuilder;

SqlError ErrorAt(const Token& tok, std::string message) {
  SqlError err;
  err.message = std::move(message);
  err.line = tok.line;
  err.column = tok.column;
  err.token = tok.text;
  return err;
}

/// One name -> column-index binding. A column can carry several bindings
/// (a join key is reachable through both input names); an alias adds one.
struct Binding {
  std::string qualifier;  // "" = unqualified (aliases)
  std::string name;
  uint32_t index;
};

/// A relation under construction: the plan builder plus the name space of
/// its current output columns.
struct Rel {
  std::optional<PlanBuilder> builder;
  std::vector<Binding> bindings;
  /// Output name per column (size == schema().total_columns()).
  std::vector<std::string> display;
  /// Trailing internal columns (a join's match indicator) that name
  /// resolution and SELECT * skip; dropped by the next projection.
  uint32_t hidden_tail = 0;

  const Schema& schema() const { return builder->root().schema; }
  uint32_t total() const { return schema().total_columns(); }
  uint32_t visible() const { return total() - hidden_tail; }
};

struct Resolution {
  uint32_t index = 0;
  uint32_t matches = 0;  // distinct column indices matching the reference
};

Resolution TryResolve(const Rel& rel, const ColumnRef& ref) {
  Resolution r;
  std::vector<uint32_t> seen;
  for (const Binding& b : rel.bindings) {
    if (b.name != ref.name) continue;
    if (!ref.qualifier.empty() && b.qualifier != ref.qualifier) continue;
    if (std::find(seen.begin(), seen.end(), b.index) != seen.end()) continue;
    seen.push_back(b.index);
  }
  r.matches = static_cast<uint32_t>(seen.size());
  if (!seen.empty()) r.index = seen[0];
  return r;
}

SqlResult<uint32_t> Resolve(const Rel& rel, const ColumnRef& ref) {
  const Resolution r = TryResolve(rel, ref);
  if (r.matches == 0) {
    return ErrorAt(ref.token, "unknown column '" + ref.ToString() + "'");
  }
  if (r.matches > 1) {
    return ErrorAt(ref.token, "ambiguous column '" + ref.ToString() + "'");
  }
  return r.index;
}

/// Sort direction column `idx` would carry as a key: its schema direction
/// when it is one of the key columns, ascending otherwise.
SortDirection DirOf(const Rel& rel, uint32_t idx) {
  return idx < rel.schema().key_arity() ? rel.schema().direction(idx)
                                        : SortDirection::kAscending;
}

/// Longest p such that cols[0..p) are schema key columns 0..p in place
/// with matching directions -- the prefix a projection keeps sorted.
uint32_t AlignedPrefix(const Schema& schema, const std::vector<uint32_t>& cols,
                       const std::vector<SortDirection>& dirs) {
  uint32_t p = 0;
  while (p < cols.size() && cols[p] == p && p < schema.key_arity() &&
         dirs[p] == schema.direction(p)) {
    ++p;
  }
  return p;
}

/// Projects `rel` to `mapping` (output column i reads input column
/// mapping[i]) with `key_arity` leading keys of directions `dirs`.
/// A projection that would be the identity is skipped, so plans over
/// already-arranged inputs keep their order properties without a node.
/// Bindings are remapped (dropped columns lose theirs); `display` becomes
/// the new column names.
void ApplyProject(Rel* rel, const std::vector<uint32_t>& mapping,
                  uint32_t key_arity, std::vector<SortDirection> dirs,
                  std::vector<std::string> display) {
  const Schema& in = rel->schema();
  OVC_CHECK(key_arity >= 1 && key_arity <= mapping.size());
  OVC_CHECK(dirs.size() == key_arity);
  OVC_CHECK(display.size() == mapping.size());
  bool identity = mapping.size() == in.total_columns() &&
                  key_arity == in.key_arity();
  for (uint32_t i = 0; identity && i < mapping.size(); ++i) {
    identity = mapping[i] == i;
  }
  for (uint32_t i = 0; identity && i < key_arity; ++i) {
    identity = dirs[i] == in.direction(i);
  }
  if (!identity) {
    Schema out(std::move(dirs),
               static_cast<uint32_t>(mapping.size()) - key_arity);
    rel->builder->Project(std::move(out), mapping);
  }
  std::vector<Binding> remapped;
  for (const Binding& b : rel->bindings) {
    for (uint32_t i = 0; i < mapping.size(); ++i) {
      if (mapping[i] == b.index) {
        remapped.push_back({b.qualifier, b.name, i});
      }
    }
  }
  rel->bindings = std::move(remapped);
  rel->display = std::move(display);
  rel->hidden_tail = 0;
}

/// Projects `rel` so `key_cols` (with `dirs`) become exactly the key --
/// output key_arity == key_cols.size() -- and every other *visible* column
/// rides along as a payload. Returns the applied mapping (for callers that
/// need to restore the previous order afterwards).
std::vector<uint32_t> RearrangeExactKeys(Rel* rel,
                                         const std::vector<uint32_t>& key_cols,
                                         const std::vector<SortDirection>& dirs) {
  std::vector<uint32_t> mapping = key_cols;
  std::vector<std::string> display;
  display.reserve(rel->visible());
  for (uint32_t c : key_cols) display.push_back(rel->display[c]);
  for (uint32_t i = 0; i < rel->visible(); ++i) {
    if (std::find(key_cols.begin(), key_cols.end(), i) == key_cols.end()) {
      mapping.push_back(i);
      display.push_back(rel->display[i]);
    }
  }
  ApplyProject(rel, mapping, static_cast<uint32_t>(key_cols.size()), dirs,
               std::move(display));
  return mapping;
}

// --- WHERE compilation ------------------------------------------------------

struct CompiledCmp {
  bool lhs_lit;
  uint32_t lhs_col;
  uint64_t lhs_val;
  CompareOp op;
  bool rhs_lit;
  uint32_t rhs_col;
  uint64_t rhs_val;
};

bool EvalOp(CompareOp op, uint64_t a, uint64_t b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

bool EvalAll(const std::vector<CompiledCmp>& cmps, const uint64_t* row) {
  for (const CompiledCmp& c : cmps) {
    const uint64_t a = c.lhs_lit ? c.lhs_val : row[c.lhs_col];
    const uint64_t b = c.rhs_lit ? c.rhs_val : row[c.rhs_col];
    if (!EvalOp(c.op, a, b)) return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------

namespace {

AggFn MapAggFn(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
    case AggKind::kCountDistinct:
      return AggFn::kCount;
    case AggKind::kSum:
      return AggFn::kSum;
    case AggKind::kMin:
      return AggFn::kMin;
    case AggKind::kMax:
      return AggFn::kMax;
  }
  return AggFn::kCount;
}

std::string AggDisplay(const SelectItem& item) {
  switch (item.agg) {
    case AggKind::kCount:
      return item.agg_star ? "count(*)" : "count(" + item.column.name + ")";
    case AggKind::kCountDistinct:
      return "count(distinct " + item.column.name + ")";
    case AggKind::kSum:
      return "sum(" + item.column.name + ")";
    case AggKind::kMin:
      return "min(" + item.column.name + ")";
    case AggKind::kMax:
      return "max(" + item.column.name + ")";
  }
  return "agg";
}

SetOpType MapSetOp(SetOpKind kind) {
  switch (kind) {
    case SetOpKind::kUnion:
      return SetOpType::kUnion;
    case SetOpKind::kIntersect:
      return SetOpType::kIntersect;
    case SetOpKind::kExcept:
      return SetOpType::kExcept;
  }
  return SetOpType::kUnion;
}

/// The bind pass for one SELECT core. `all_keys` forces the output schema
/// to be payload-free with every column an ascending key -- the layout set
/// operations require of both inputs.
class CoreBinder {
 public:
  CoreBinder(const Catalog* catalog) : catalog_(catalog) {}

  SqlResult<Rel> Bind(const SelectCore& core, bool all_keys) {
    SqlResult<Rel> from = BindTable(core.from);
    if (!from.ok()) return from.error();
    Rel rel = std::move(from).value();

    for (const JoinClause& join : core.joins) {
      std::optional<SqlError> err = BindJoin(&rel, join);
      if (err.has_value()) return *err;
    }
    if (!core.where.empty()) {
      std::optional<SqlError> err = BindWhere(&rel, core.where);
      if (err.has_value()) return *err;
    }

    // Output targets: source index + display name per select-list entry.
    std::vector<uint32_t> targets;
    std::vector<std::string> displays;
    std::vector<std::pair<uint32_t, std::string>> aliases;  // position, name

    const bool has_agg =
        std::any_of(core.items.begin(), core.items.end(),
                    [](const SelectItem& i) { return i.is_aggregate; });
    if (has_agg || !core.group_by.empty()) {
      std::optional<SqlError> err =
          BindAggregate(&rel, core, &targets, &displays);
      if (err.has_value()) return *err;
    } else if (core.select_star) {
      for (uint32_t i = 0; i < rel.visible(); ++i) {
        targets.push_back(i);
        displays.push_back(rel.display[i]);
      }
    } else {
      for (const SelectItem& item : core.items) {
        SqlResult<uint32_t> idx = Resolve(rel, item.column);
        if (!idx.ok()) return idx.error();
        targets.push_back(idx.value());
        displays.push_back(item.alias.empty() ? item.column.name
                                              : item.alias);
      }
    }
    for (uint32_t k = 0; k < core.items.size(); ++k) {
      if (!core.items[k].alias.empty()) {
        aliases.emplace_back(k, core.items[k].alias);
      }
    }

    // Final projection. DISTINCT and set-operation inputs make every
    // output column a key (their operators consume full-key order); plain
    // selects keep as many leading keys as stay aligned, so order
    // properties survive when the select list starts with the sort key.
    std::vector<SortDirection> dirs;
    dirs.reserve(targets.size());
    for (uint32_t t : targets) dirs.push_back(DirOf(rel, t));
    uint32_t key_arity;
    if (all_keys) {
      key_arity = static_cast<uint32_t>(targets.size());
      dirs.assign(targets.size(), SortDirection::kAscending);
    } else if (core.distinct) {
      key_arity = static_cast<uint32_t>(targets.size());
    } else {
      key_arity = std::max<uint32_t>(AlignedPrefix(rel.schema(), targets, dirs),
                                     1);
    }
    dirs.resize(key_arity);
    ApplyProject(&rel, targets, key_arity, std::move(dirs),
                 std::move(displays));
    for (const auto& [pos, name] : aliases) {
      rel.bindings.push_back({"", name, pos});
    }
    if (core.distinct) rel.builder->Distinct();
    return rel;
  }

 private:
  SqlResult<Rel> BindTable(const TableRef& ref) {
    const CatalogTable* table = catalog_->Find(ref.table);
    if (table == nullptr) {
      return ErrorAt(ref.token, "unknown table '" + ref.table + "'");
    }
    Rel rel;
    rel.builder.emplace(PlanBuilder::Scan(table->source));
    const std::string qualifier =
        ref.alias.empty() ? table->source.name : ref.alias;
    for (uint32_t i = 0; i < table->columns.size(); ++i) {
      rel.bindings.push_back({qualifier, table->columns[i], i});
      rel.display.push_back(table->columns[i]);
    }
    return rel;
  }

  std::optional<SqlError> BindJoin(Rel* rel, const JoinClause& join) {
    SqlResult<Rel> right_r = BindTable(join.table);
    if (!right_r.ok()) return right_r.error();
    Rel right = std::move(right_r).value();

    std::vector<uint32_t> left_keys, right_keys;
    std::vector<SortDirection> dirs;
    for (const auto& [a, b] : join.on) {
      const Resolution al = TryResolve(*rel, a), ar = TryResolve(right, a);
      const Resolution bl = TryResolve(*rel, b), br = TryResolve(right, b);
      if (al.matches + ar.matches == 0) {
        return ErrorAt(a.token, "unknown column '" + a.ToString() + "'");
      }
      if (bl.matches + br.matches == 0) {
        return ErrorAt(b.token, "unknown column '" + b.ToString() + "'");
      }
      if (al.matches > 1 || ar.matches > 1 || bl.matches > 1 ||
          br.matches > 1) {
        return ErrorAt(a.token, "ambiguous column in join condition");
      }
      uint32_t li, ri;
      if (al.matches == 1 && br.matches == 1) {
        li = al.index;
        ri = br.index;
      } else if (bl.matches == 1 && ar.matches == 1) {
        li = bl.index;
        ri = ar.index;
      } else {
        return ErrorAt(a.token,
                       "join condition must compare a column of each input");
      }
      left_keys.push_back(li);
      right_keys.push_back(ri);
      const SortDirection dl = DirOf(*rel, li), dr = DirOf(right, ri);
      dirs.push_back(dl == dr ? dl : SortDirection::kAscending);
    }
    if (left_keys.empty()) {
      return ErrorAt(join.table.token, "join requires an ON condition");
    }

    RearrangeExactKeys(rel, left_keys, dirs);
    RearrangeExactKeys(&right, right_keys, dirs);

    const uint32_t k = static_cast<uint32_t>(left_keys.size());
    const uint32_t left_total = rel->total();

    rel->builder->Join(std::move(*right.builder), JoinType::kInner);

    // Output layout: join key, left payloads, right payloads, match
    // indicator. Key columns stay reachable through both inputs' names.
    std::vector<Binding> bindings = rel->bindings;
    for (const Binding& b : right.bindings) {
      const uint32_t idx = b.index < k ? b.index : b.index + (left_total - k);
      bindings.push_back({b.qualifier, b.name, idx});
    }
    std::vector<std::string> display = rel->display;
    display.insert(display.end(), right.display.begin() + k,
                   right.display.end());
    display.push_back("$match");
    rel->bindings = std::move(bindings);
    rel->display = std::move(display);
    rel->hidden_tail = 1;
    return std::nullopt;
  }

  std::optional<SqlError> BindWhere(Rel* rel,
                                    const std::vector<Comparison>& where) {
    auto cmps = std::make_shared<std::vector<CompiledCmp>>();
    for (const Comparison& cmp : where) {
      CompiledCmp c;
      c.lhs_lit = cmp.lhs_is_literal;
      c.lhs_val = cmp.lhs_literal;
      c.lhs_col = 0;
      if (!c.lhs_lit) {
        SqlResult<uint32_t> idx = Resolve(*rel, cmp.lhs);
        if (!idx.ok()) return idx.error();
        c.lhs_col = idx.value();
      }
      c.op = cmp.op;
      c.rhs_lit = cmp.rhs_is_literal;
      c.rhs_val = cmp.rhs_literal;
      c.rhs_col = 0;
      if (!c.rhs_lit) {
        SqlResult<uint32_t> idx = Resolve(*rel, cmp.rhs);
        if (!idx.ok()) return idx.error();
        c.rhs_col = idx.value();
      }
      cmps->push_back(c);
    }
    RowPredicate row_pred = [cmps](const uint64_t* row) {
      return EvalAll(*cmps, row);
    };
    BlockPredicate block_pred = [cmps](const RowBlock& block, uint8_t* keep) {
      for (uint32_t i = 0; i < block.size(); ++i) {
        keep[i] = EvalAll(*cmps, block.row(i)) ? 1 : 0;
      }
    };
    rel->builder->Filter(std::move(row_pred), std::move(block_pred));
    return std::nullopt;
  }

  /// GROUP BY + aggregates. Arranges grouping columns as the key prefix
  /// (skipping the projection when they already are), lowers
  /// COUNT(DISTINCT x) to Distinct-then-Count over the (group, x) key, and
  /// leaves in-stream / in-sort / hash selection to the planner. Fills
  /// `targets`/`displays` with the select list over the aggregate output.
  std::optional<SqlError> BindAggregate(Rel* rel, const SelectCore& core,
                                        std::vector<uint32_t>* targets,
                                        std::vector<std::string>* displays) {
    if (core.select_star) {
      return ErrorAt(core.from.token,
                     "SELECT * cannot be combined with GROUP BY or aggregates");
    }
    if (core.group_by.empty()) {
      for (const SelectItem& item : core.items) {
        if (item.is_aggregate) {
          return ErrorAt(item.token,
                         "aggregates require GROUP BY (global aggregation is "
                         "not supported)");
        }
      }
    }

    // Resolve grouping columns (deduplicated, in GROUP BY order).
    std::vector<uint32_t> group;
    std::vector<SortDirection> group_dirs;
    for (const ColumnRef& g : core.group_by) {
      SqlResult<uint32_t> idx = Resolve(*rel, g);
      if (!idx.ok()) return idx.error();
      if (std::find(group.begin(), group.end(), idx.value()) == group.end()) {
        group.push_back(idx.value());
        group_dirs.push_back(DirOf(*rel, idx.value()));
      }
    }
    const uint32_t n_group = static_cast<uint32_t>(group.size());

    // Classify select items; validate plain columns are grouped.
    const SelectItem* count_distinct = nullptr;
    uint32_t n_aggs = 0;
    for (const SelectItem& item : core.items) {
      if (!item.is_aggregate) {
        SqlResult<uint32_t> idx = Resolve(*rel, item.column);
        if (!idx.ok()) return idx.error();
        if (std::find(group.begin(), group.end(), idx.value()) ==
            group.end()) {
          return ErrorAt(item.column.token,
                         "column '" + item.column.ToString() +
                             "' must appear in GROUP BY");
        }
        continue;
      }
      ++n_aggs;
      if (item.agg == AggKind::kCountDistinct) count_distinct = &item;
    }
    if (count_distinct != nullptr && n_aggs > 1) {
      return ErrorAt(count_distinct->token,
                     "COUNT(DISTINCT) cannot be combined with other "
                     "aggregates");
    }

    const bool aligned = AlignedPrefix(rel->schema(), group, group_dirs) ==
                             n_group &&
                         rel->schema().key_arity() >= n_group;

    if (count_distinct != nullptr) {
      // COUNT(DISTINCT x) GROUP BY g: distinct over key (g..., x), then
      // count rows per g-group -- the paper's web-analytics shape, which
      // the planner folds into one in-sort distinct + in-stream count.
      SqlResult<uint32_t> x = Resolve(*rel, count_distinct->column);
      if (!x.ok()) return x.error();
      std::vector<uint32_t> keys = group;
      std::vector<SortDirection> key_dirs = group_dirs;
      if (std::find(keys.begin(), keys.end(), x.value()) == keys.end()) {
        keys.push_back(x.value());
        key_dirs.push_back(DirOf(*rel, x.value()));
      }
      const bool exact =
          rel->schema().key_arity() == keys.size() &&
          AlignedPrefix(rel->schema(), keys, key_dirs) == keys.size() &&
          rel->hidden_tail == 0 &&
          rel->total() == keys.size();
      if (!exact) {
        // Keep only the key columns: distinct must dedup on exactly
        // (group, x), and the count needs nothing else.
        std::vector<std::string> display;
        for (uint32_t c : keys) display.push_back(rel->display[c]);
        ApplyProject(rel, keys, static_cast<uint32_t>(keys.size()),
                     key_dirs, std::move(display));
      }
      rel->builder->Distinct();
      rel->builder->Aggregate(n_group, {{AggFn::kCount, 0}});
    } else {
      // Plain aggregates: arrange the grouping prefix, keeping only the
      // columns the aggregates read when a projection is needed anyway.
      std::vector<uint32_t> agg_inputs;  // pre-arrangement index per agg
      for (const SelectItem& item : core.items) {
        if (!item.is_aggregate) continue;
        if (item.agg == AggKind::kCount) {
          if (!item.agg_star) {
            SqlResult<uint32_t> idx = Resolve(*rel, item.column);
            if (!idx.ok()) return idx.error();
          }
          agg_inputs.push_back(0);  // COUNT ignores its input column
          continue;
        }
        SqlResult<uint32_t> idx = Resolve(*rel, item.column);
        if (!idx.ok()) return idx.error();
        agg_inputs.push_back(idx.value());
      }
      std::vector<uint32_t> input_pos = agg_inputs;
      if (!aligned) {
        std::vector<uint32_t> mapping = group;
        std::vector<std::string> display;
        for (uint32_t c : group) display.push_back(rel->display[c]);
        uint32_t a = 0;
        for (const SelectItem& item : core.items) {
          if (!item.is_aggregate) continue;
          if (item.agg == AggKind::kCount) {
            input_pos[a++] = 0;
            continue;
          }
          const uint32_t src = agg_inputs[a];
          auto it = std::find(mapping.begin(), mapping.end(), src);
          if (it == mapping.end()) {
            mapping.push_back(src);
            display.push_back(rel->display[src]);
            input_pos[a] = static_cast<uint32_t>(mapping.size()) - 1;
          } else {
            input_pos[a] =
                static_cast<uint32_t>(std::distance(mapping.begin(), it));
          }
          ++a;
        }
        ApplyProject(rel, mapping, n_group, group_dirs, std::move(display));
      }
      std::vector<AggregateSpec> specs;
      uint32_t a = 0;
      for (const SelectItem& item : core.items) {
        if (!item.is_aggregate) continue;
        specs.push_back({MapAggFn(item.agg), input_pos[a++]});
      }
      rel->builder->Aggregate(n_group, specs);
    }

    // Rebuild the name space over the aggregate's output: grouping columns
    // keep their bindings at 0..n_group, aggregate outputs follow.
    std::vector<Binding> bindings;
    for (const Binding& b : rel->bindings) {
      if (b.index < n_group) bindings.push_back(b);
    }
    std::vector<std::string> display(rel->display.begin(),
                                     rel->display.begin() + n_group);
    uint32_t agg_out = n_group;
    for (const SelectItem& item : core.items) {
      if (!item.is_aggregate) continue;
      const std::string name =
          item.alias.empty() ? AggDisplay(item) : item.alias;
      display.push_back(name);
      if (!item.alias.empty()) {
        bindings.push_back({"", item.alias, agg_out});
      }
      ++agg_out;
    }
    rel->bindings = std::move(bindings);
    rel->display = std::move(display);
    rel->hidden_tail = 0;

    // Select-list targets over the aggregate output.
    uint32_t next_agg = n_group;
    for (const SelectItem& item : core.items) {
      if (item.is_aggregate) {
        targets->push_back(next_agg++);
        displays->push_back(item.alias.empty() ? AggDisplay(item)
                                               : item.alias);
      } else {
        SqlResult<uint32_t> idx = Resolve(*rel, item.column);
        if (!idx.ok()) return idx.error();
        targets->push_back(idx.value());
        displays->push_back(item.alias.empty() ? item.column.name
                                               : item.alias);
      }
    }
    return std::nullopt;
  }

  const Catalog* catalog_;
};

}  // namespace

SqlResult<BoundQuery> Binder::Bind(const SelectStmt& stmt) const {
  CoreBinder core_binder(catalog_);
  const bool compound = !stmt.set_ops.empty();
  SqlResult<Rel> first = core_binder.Bind(stmt.first, compound);
  if (!first.ok()) return first.error();
  Rel rel = std::move(first).value();

  for (const SetOpClause& clause : stmt.set_ops) {
    SqlResult<Rel> rhs_r = core_binder.Bind(clause.select, /*all_keys=*/true);
    if (!rhs_r.ok()) return rhs_r.error();
    Rel rhs = std::move(rhs_r).value();
    if (rhs.total() != rel.total()) {
      return ErrorAt(clause.token,
                     "set operation inputs have " + std::to_string(rel.total()) +
                         " vs " + std::to_string(rhs.total()) + " columns");
    }
    rel.builder->SetOp(std::move(*rhs.builder), MapSetOp(clause.kind),
                       clause.all);
  }

  if (!stmt.order_by.empty()) {
    std::vector<uint32_t> order_cols;
    std::vector<SortDirection> order_dirs;
    for (const OrderItem& item : stmt.order_by) {
      const Resolution r = TryResolve(rel, item.column);
      if (r.matches == 0) {
        return ErrorAt(item.column.token,
                       "ORDER BY column '" + item.column.ToString() +
                           "' is not in the select list");
      }
      if (r.matches > 1) {
        return ErrorAt(item.column.token,
                       "ambiguous column '" + item.column.ToString() + "'");
      }
      order_cols.push_back(r.index);
      order_dirs.push_back(item.descending ? SortDirection::kDescending
                                           : SortDirection::kAscending);
    }
    const bool aligned =
        AlignedPrefix(rel.schema(), order_cols, order_dirs) ==
        order_cols.size();
    if (aligned) {
      // The requested order is the stream's key prefix already: a plain
      // Sort node, which the planner elides when the input delivers order
      // and codes (the front end's headline property payoff).
      rel.builder->Sort();
    } else {
      // Rearrange so the ORDER BY list is the full key, sort, then restore
      // the select-list column order. The restoring projection preserves
      // row order physically even where the order *property* is lost.
      const std::vector<std::string> saved_display = rel.display;
      const uint32_t n = rel.total();
      const std::vector<uint32_t> mapping =
          RearrangeExactKeys(&rel, order_cols, order_dirs);
      rel.builder->Sort();
      std::vector<uint32_t> back(n);
      for (uint32_t i = 0; i < mapping.size(); ++i) back[mapping[i]] = i;
      std::vector<SortDirection> back_dirs;
      back_dirs.reserve(n);
      for (uint32_t t : back) back_dirs.push_back(DirOf(rel, t));
      const uint32_t key_arity =
          std::max<uint32_t>(AlignedPrefix(rel.schema(), back, back_dirs), 1);
      back_dirs.resize(key_arity);
      if (key_arity == 1) back_dirs[0] = DirOf(rel, back[0]);
      ApplyProject(&rel, back, key_arity, std::move(back_dirs),
                   saved_display);
    }
  }

  if (stmt.has_limit) rel.builder->Limit(stmt.limit);

  BoundQuery out;
  out.columns.assign(rel.display.begin(),
                     rel.display.begin() + rel.visible());
  out.plan = rel.builder->Build();
  return out;
}

}  // namespace ovc::sql
