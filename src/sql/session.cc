#include "sql/session.h"

#include <utility>

#include "sql/parser.h"

namespace ovc::sql {

SqlSession::SqlSession(const Catalog* catalog, Options options)
    : catalog_(catalog), executor_(&counters_, &temp_, options) {}

SqlResult<std::unique_ptr<PreparedQuery>> SqlSession::Prepare(
    std::string_view sql) {
  SqlResult<Statement> stmt = ParseStatement(sql);
  if (!stmt.ok()) return stmt.error();

  Binder binder(catalog_);
  SqlResult<BoundQuery> bound = binder.Bind(stmt.value().select);
  if (!bound.ok()) return bound.error();

  auto prepared = std::make_unique<PreparedQuery>();
  prepared->is_explain = stmt.value().explain && !stmt.value().analyze;
  prepared->is_analyze = stmt.value().explain && stmt.value().analyze;
  prepared->bound = std::move(bound).value();
  prepared->columns = prepared->bound.columns;
  // EXPLAIN ANALYZE plans with profiling regardless of the session default;
  // everything else inherits the session's planner options unchanged.
  plan::PlannerOptions planner_options = executor_.options().planner;
  if (prepared->is_analyze) planner_options.profile = true;
  prepared->physical = std::make_unique<plan::PhysicalPlan>(
      executor_.Plan(prepared->bound.plan.get(), planner_options));
  return prepared;
}

SqlResult<std::string> SqlSession::Explain(std::string_view sql) {
  SqlResult<std::unique_ptr<PreparedQuery>> prepared = Prepare(sql);
  if (!prepared.ok()) return prepared.error();
  return prepared.value()->explain_text();
}

SqlResult<QueryResult> SqlSession::Run(std::string_view sql) {
  SqlResult<std::unique_ptr<PreparedQuery>> prepared = Prepare(sql);
  if (!prepared.ok()) return prepared.error();
  QueryResult result = Run(prepared.value().get());
  // Runtime failures (temp-file I/O that exhausted its retries, spill
  // errors) surface as a clean SqlError, never as a truncated row set.
  if (!result.result.status.ok()) {
    SqlError error;
    error.message = "execution failed: " + result.result.status.message();
    return error;
  }
  return result;
}

QueryResult SqlSession::Run(PreparedQuery* prepared) {
  QueryResult out;
  out.columns = prepared->columns;
  if (prepared->is_explain) {
    out.is_explain = true;
    out.explain_text = prepared->explain_text();
    return out;
  }
  out.result = executor_.Run(prepared->physical.get());
  if (const QueryProfile* profile = prepared->physical->profile()) {
    out.profile_json = profile->ToJson();
    RecordFeedback(*prepared->physical);
    if (prepared->is_analyze) {
      // EXPLAIN ANALYZE delivers the annotated plan, not the rows.
      out.is_explain = true;
      out.explain_text = prepared->physical->ExplainAnalyze();
      out.result = plan::ExecutionResult();
    }
  }
  return out;
}

void SqlSession::RecordFeedback(const plan::PhysicalPlan& physical) {
  const QueryProfile* profile = physical.profile();
  if (profile == nullptr) return;
  for (const QueryProfile::CardFeedback& fb : profile->ScanFeedback()) {
    TableFeedback& entry = feedback_[fb.table];
    entry.est_rows = fb.est_rows;
    entry.actual_rows = fb.actual_rows;
    entry.q_error = fb.q_error;
    ++entry.runs;
  }
}

void SqlSession::ApplyFeedbackTo(Catalog* catalog) const {
  for (const auto& [table, fb] : feedback_) {
    CatalogTable* entry = catalog->FindMutable(table);
    if (entry == nullptr) continue;
    entry->source.stats.observed_rows = fb.actual_rows;
    entry->source.stats.feedback_runs += fb.runs;
  }
}

}  // namespace ovc::sql
