#include "sql/session.h"

#include <utility>

#include "common/metrics.h"
#include "common/profile.h"
#include "common/trace.h"
#include "sql/parser.h"

namespace ovc::sql {

namespace {

/// Mirrors a statement's counter delta into the process-wide query.*
/// metrics, one metric per QueryCounters field. ovcsql `.counters`, the
/// JSON profile, and `.metrics` therefore agree field-for-field.
void RecordQueryMetrics(const QueryCounters& d) {
  OVC_METRIC_COUNTER("query.column_comparisons",
                     "Column value comparisons across all statements")
      .Add(d.column_comparisons);
  OVC_METRIC_COUNTER("query.code_comparisons",
                     "Offset-value code comparisons across all statements")
      .Add(d.code_comparisons);
  OVC_METRIC_COUNTER("query.row_comparisons",
                     "Row comparisons across all statements")
      .Add(d.row_comparisons);
  OVC_METRIC_COUNTER("query.hash_computations",
                     "Key hash computations across all statements")
      .Add(d.hash_computations);
  OVC_METRIC_COUNTER("query.rows_spilled",
                     "Rows written to temporary storage")
      .Add(d.rows_spilled);
  OVC_METRIC_COUNTER("query.bytes_spilled",
                     "Bytes written to temporary storage")
      .Add(d.bytes_spilled);
  OVC_METRIC_COUNTER("query.merge_bypass_rows",
                     "Rows that bypassed merge logic as coded duplicates")
      .Add(d.merge_bypass_rows);
  OVC_METRIC_COUNTER("query.hash_join_fallbacks",
                     "Grace hash joins degraded to sort+merge mid-query")
      .Add(d.hash_join_fallbacks);
  OVC_METRIC_COUNTER("query.hash_agg_fallbacks",
                     "Hash aggregations degraded to in-sort mid-query")
      .Add(d.hash_agg_fallbacks);
  OVC_METRIC_COUNTER("query.io_retries",
                     "Transient temp-file I/O failures recovered by retry")
      .Add(d.io_retries);
}

}  // namespace

SqlSession::SqlSession(const Catalog* catalog, Options options)
    : catalog_(catalog), executor_(&counters_, &temp_, options) {}

SqlSession::SqlSession(const Catalog* catalog, Options options,
                       TempFileManager* parent_temp)
    : catalog_(catalog),
      temp_(parent_temp),
      executor_(&counters_, &temp_, options) {}

std::unique_ptr<PreparedQuery> SqlSession::Instantiate(BoundQuery* bound) {
  auto prepared = std::make_unique<PreparedQuery>();
  prepared->columns = bound->columns;
  // prepared->bound stays empty: the shared BoundQuery owns the logical
  // tree and the predicates this plan's operators point into; the caller
  // keeps it alive (the plan cache hands out shared_ptr entries).
  {
    OVC_TRACE_SPAN("sql.plan");
    prepared->physical = std::make_unique<plan::PhysicalPlan>(
        executor_.Plan(bound->plan.get()));
  }
  return prepared;
}

SqlResult<std::unique_ptr<PreparedQuery>> SqlSession::Prepare(
    std::string_view sql) {
  SqlResult<Statement> stmt = [&] {
    OVC_TRACE_SPAN("sql.parse");
    return ParseStatement(sql);
  }();
  if (!stmt.ok()) return stmt.error();

  Binder binder(catalog_);
  SqlResult<BoundQuery> bound = [&] {
    OVC_TRACE_SPAN("sql.bind");
    return binder.Bind(stmt.value().select);
  }();
  if (!bound.ok()) return bound.error();

  auto prepared = std::make_unique<PreparedQuery>();
  prepared->is_explain = stmt.value().explain && !stmt.value().analyze;
  prepared->is_analyze = stmt.value().explain && stmt.value().analyze;
  prepared->bound = std::move(bound).value();
  prepared->columns = prepared->bound.columns;
  // EXPLAIN ANALYZE plans with profiling regardless of the session default;
  // everything else inherits the session's planner options unchanged.
  plan::PlannerOptions planner_options = executor_.options().planner;
  if (prepared->is_analyze) planner_options.profile = true;
  {
    OVC_TRACE_SPAN("sql.plan");
    prepared->physical = std::make_unique<plan::PhysicalPlan>(
        executor_.Plan(prepared->bound.plan.get(), planner_options));
  }
  return prepared;
}

SqlResult<std::string> SqlSession::Explain(std::string_view sql) {
  SqlResult<std::unique_ptr<PreparedQuery>> prepared = Prepare(sql);
  if (!prepared.ok()) return prepared.error();
  return prepared.value()->explain_text();
}

SqlResult<QueryResult> SqlSession::Run(std::string_view sql) {
  // The root span for the whole statement lifecycle; every nested span --
  // parse/bind/plan/execute on this thread, exchange producers on worker
  // threads via context handoff -- carries this span's id as its query id.
  OVC_TRACE_SPAN_VAR(statement_span, "sql.statement");
  trace::ScopedQueryId query_scope(statement_span.id());
  const uint64_t start_ticks = ProfileTicks();
  OVC_METRIC_COUNTER("query.statements",
                     "SQL statements accepted by SqlSession::Run")
      .Increment();
  auto record_latency = [start_ticks] {
    OVC_METRIC_HISTOGRAM("query.latency_us",
                         "End-to-end statement latency (prepare + execute)")
        .Record(TicksToNs(ProfileTicks() - start_ticks) / 1000);
  };

  SqlResult<std::unique_ptr<PreparedQuery>> prepared = Prepare(sql);
  if (!prepared.ok()) {
    OVC_METRIC_COUNTER("query.errors",
                       "Statements that failed to prepare or execute")
        .Increment();
    record_latency();
    return prepared.error();
  }
  QueryResult result = Run(prepared.value().get());
  record_latency();
  // Runtime failures (temp-file I/O that exhausted its retries, spill
  // errors) surface as a clean SqlError, never as a truncated row set.
  if (!result.result.status.ok()) {
    OVC_METRIC_COUNTER("query.errors",
                       "Statements that failed to prepare or execute")
        .Increment();
    SqlError error;
    error.message = "execution failed: " + result.result.status.message();
    return error;
  }
  OVC_METRIC_COUNTER("query.rows_out", "Result rows returned to clients")
      .Add(result.result.rows.size());
  return result;
}

QueryResult SqlSession::Run(PreparedQuery* prepared) {
  QueryResult out;
  out.columns = prepared->columns;
  if (prepared->is_explain) {
    out.is_explain = true;
    out.explain_text = prepared->explain_text();
    return out;
  }
  OVC_TRACE_SPAN("sql.execute");
  // Everything a run adds to the session counters -- worker roll-ups and
  // profile folds included -- is this statement's resource slice.
  const QueryCounters before = counters_;
  out.result = executor_.Run(prepared->physical.get());
  out.counters_delta = QueryCounters::Delta(before, counters_);
  RecordQueryMetrics(out.counters_delta);
  if (const QueryProfile* profile = prepared->physical->profile()) {
    out.profile_json = profile->ToJson();
    RecordFeedback(*prepared->physical);
    if (prepared->is_analyze) {
      // EXPLAIN ANALYZE delivers the annotated plan, not the rows.
      out.is_explain = true;
      out.explain_text = prepared->physical->ExplainAnalyze();
      out.result = plan::ExecutionResult();
    }
  }
  return out;
}

void SqlSession::RecordFeedback(const plan::PhysicalPlan& physical) {
  const QueryProfile* profile = physical.profile();
  if (profile == nullptr) return;
  for (const QueryProfile::CardFeedback& fb : profile->ScanFeedback()) {
    TableFeedback& entry = feedback_[fb.table];
    entry.est_rows = fb.est_rows;
    entry.actual_rows = fb.actual_rows;
    entry.q_error = fb.q_error;
    ++entry.runs;
  }
}

void SqlSession::ApplyFeedbackTo(Catalog* catalog) const {
  for (const auto& [table, fb] : feedback_) {
    CatalogTable* entry = catalog->FindMutable(table);
    if (entry == nullptr) continue;
    entry->source.stats.observed_rows = fb.actual_rows;
    entry->source.stats.feedback_runs += fb.runs;
  }
}

}  // namespace ovc::sql
