#include "sql/session.h"

#include <utility>

#include "sql/parser.h"

namespace ovc::sql {

SqlSession::SqlSession(const Catalog* catalog, Options options)
    : catalog_(catalog), executor_(&counters_, &temp_, options) {}

SqlResult<std::unique_ptr<PreparedQuery>> SqlSession::Prepare(
    std::string_view sql) {
  SqlResult<Statement> stmt = ParseStatement(sql);
  if (!stmt.ok()) return stmt.error();

  Binder binder(catalog_);
  SqlResult<BoundQuery> bound = binder.Bind(stmt.value().select);
  if (!bound.ok()) return bound.error();

  auto prepared = std::make_unique<PreparedQuery>();
  prepared->is_explain = stmt.value().explain;
  prepared->bound = std::move(bound).value();
  prepared->columns = prepared->bound.columns;
  prepared->physical = std::make_unique<plan::PhysicalPlan>(
      executor_.Plan(prepared->bound.plan.get()));
  return prepared;
}

SqlResult<std::string> SqlSession::Explain(std::string_view sql) {
  SqlResult<std::unique_ptr<PreparedQuery>> prepared = Prepare(sql);
  if (!prepared.ok()) return prepared.error();
  return prepared.value()->explain_text();
}

SqlResult<QueryResult> SqlSession::Run(std::string_view sql) {
  SqlResult<std::unique_ptr<PreparedQuery>> prepared = Prepare(sql);
  if (!prepared.ok()) return prepared.error();
  return Run(prepared.value().get());
}

QueryResult SqlSession::Run(PreparedQuery* prepared) {
  QueryResult out;
  out.columns = prepared->columns;
  if (prepared->is_explain) {
    out.is_explain = true;
    out.explain_text = prepared->explain_text();
    return out;
  }
  out.result = executor_.Run(prepared->physical.get());
  return out;
}

}  // namespace ovc::sql
