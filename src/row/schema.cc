#include "row/schema.h"

namespace ovc {

std::string Schema::ToString() const {
  std::string out = "key(";
  for (uint32_t i = 0; i < key_arity_; ++i) {
    if (i > 0) out += ",";
    out += directions_[i] == SortDirection::kAscending ? "asc" : "desc";
  }
  out += ")+payload(" + std::to_string(payload_columns_) + ")";
  return out;
}

}  // namespace ovc
