// Row storage: a growable buffer of fixed-width rows.

#ifndef OVC_ROW_ROW_BUFFER_H_
#define OVC_ROW_ROW_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"

namespace ovc {

/// Owns rows of a fixed column count in one contiguous allocation.
///
/// Pointers returned by row() / AppendRow() are invalidated by any later
/// append (vector growth); callers that need stable rows should reserve
/// capacity up front or address rows by index.
class RowBuffer {
 public:
  /// Creates a buffer for rows of `width` columns.
  explicit RowBuffer(uint32_t width) : width_(width) { OVC_CHECK(width >= 1); }

  /// Appends an uninitialized row and returns a pointer to its columns.
  /// Growth is amortized: capacity at least doubles on reallocation, so a
  /// row-at-a-time fill is O(n) total regardless of the standard library's
  /// resize() policy.
  uint64_t* AppendRow() {
    const size_t needed = data_.size() + width_;
    if (needed > data_.capacity()) Grow(needed);
    data_.resize(needed);
    return data_.data() + needed - width_;
  }

  /// Appends a copy of `src` (width_ columns).
  void AppendRow(const uint64_t* src) {
    uint64_t* dst = AppendRow();
    std::memcpy(dst, src, width_ * sizeof(uint64_t));
  }

  /// Bulk-appends `rows` contiguous rows starting at `src` (rows * width_
  /// values): one growth check and one memcpy for the whole batch.
  void AppendRows(const uint64_t* src, size_t rows) {
    const size_t add = rows * width_;
    const size_t needed = data_.size() + add;
    if (needed > data_.capacity()) Grow(needed);
    data_.resize(needed);
    std::memcpy(data_.data() + needed - add, src, add * sizeof(uint64_t));
  }

  /// Read-only access to row `i`.
  const uint64_t* row(size_t i) const {
    OVC_DCHECK(i < size());
    return data_.data() + i * width_;
  }

  /// Mutable access to row `i`.
  uint64_t* mutable_row(size_t i) {
    OVC_DCHECK(i < size());
    return data_.data() + i * width_;
  }

  /// Number of rows stored.
  size_t size() const { return data_.size() / width_; }
  /// True when no rows are stored.
  bool empty() const { return data_.empty(); }
  /// Columns per row.
  uint32_t width() const { return width_; }

  /// Removes all rows but keeps the allocation.
  void Clear() { data_.clear(); }

  /// Pre-allocates space for `rows` rows.
  void ReserveRows(size_t rows) { data_.reserve(rows * width_); }

  /// Approximate memory footprint in bytes.
  size_t MemoryBytes() const { return data_.capacity() * sizeof(uint64_t); }

 private:
  /// Reserves at least `needed` values, at least doubling capacity and
  /// starting at a few rows so tiny buffers don't reallocate per append.
  void Grow(size_t needed) {
    size_t target = data_.capacity() * 2;
    if (target < needed) target = needed;
    const size_t floor = size_t{16} * width_;
    if (target < floor) target = floor;
    data_.reserve(target);
  }

  uint32_t width_;
  std::vector<uint64_t> data_;
};

}  // namespace ovc

#endif  // OVC_ROW_ROW_BUFFER_H_
