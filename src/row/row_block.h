// RowBlock: the unit of batched data flow between operators.
//
// A RowBlock holds up to `capacity` fixed-width rows in one contiguous
// stretch plus a parallel array of offset-value codes, so a batched
// operator amortizes one virtual dispatch (Operator::NextBatch) over the
// whole block instead of paying one per row (Operator::Next).
//
// Stream contract (identical to the row-at-a-time contract): rows appear in
// stream order and, for sorted-with-codes streams, row i's code is relative
// to the stream's previous row -- which is row i-1 of the same block, or the
// *last row of the previous block* for the first row of a block. Codes are
// therefore valid across block boundaries and a concatenation of blocks is
// exactly the row-at-a-time stream; OvcStreamChecker can observe the rows of
// consecutive blocks in order and will accept the stream.
//
// Two serving modes:
//  * owned -- producers append (copy) rows into the block's own storage,
//    which is allocated once at construction and never reallocates;
//  * borrowed -- a leaf over stable contiguous storage (InMemoryRun,
//    RowBuffer) points the block at a span of that storage via
//    RefContiguous(), serving a whole block with zero copying. Borrowed
//    blocks are read-only (plus Truncate, which only moves the size).
//
// Pointer stability: in owned mode, pointers returned by
// row()/mutable_row()/AppendRow() stay valid until the block is destroyed --
// Clear()/Truncate() only move the size. In borrowed mode, pointers are into
// the producer's storage and follow its lifetime rules. Either way, a
// producer refilling a block (NextBatch) invalidates previous contents, so
// consumers must finish with a block's rows before asking for the next
// block, mirroring the Volcano rule that a row is valid until the next
// Next() call.

#ifndef OVC_ROW_ROW_BLOCK_H_
#define OVC_ROW_ROW_BLOCK_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "common/ovc_word.h"

namespace ovc {

/// A fixed-capacity batch of rows with their offset-value codes.
class RowBlock {
 public:
  /// Default block size: large enough to amortize per-block virtual dispatch
  /// and small enough that one block of typical rows stays cache-resident.
  static constexpr uint32_t kDefaultRows = 1024;

  /// Creates a block for rows of `width` columns holding up to
  /// `capacity_rows` rows. All owned storage is allocated here, up front.
  explicit RowBlock(uint32_t width, uint32_t capacity_rows = kDefaultRows)
      : width_(width),
        capacity_(capacity_rows),
        owned_cols_(static_cast<size_t>(width) * capacity_rows),
        owned_codes_(capacity_rows, 0),
        cols_(owned_cols_.data()),
        codes_(owned_codes_.data()) {
    OVC_CHECK(width >= 1);
    OVC_CHECK(capacity_rows >= 1);
  }

  // The block's storage identity is its owned allocation; copying/moving a
  // block mid-stream has no meaningful semantics.
  RowBlock(const RowBlock&) = delete;
  RowBlock& operator=(const RowBlock&) = delete;

  uint32_t width() const { return width_; }
  uint32_t capacity() const { return capacity_; }
  /// Rows allocated at construction (the upper bound for SetCapacity).
  uint32_t allocated_rows() const {
    return static_cast<uint32_t>(owned_codes_.size());
  }
  uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }
  /// True when the block currently references a producer's storage.
  bool borrowed() const { return borrowed_; }

  /// Read-only access to row `i`.
  const uint64_t* row(uint32_t i) const {
    OVC_DCHECK(i < size_);
    return cols_ + static_cast<size_t>(i) * width_;
  }

  /// Mutable access to row `i` (owned mode only).
  uint64_t* mutable_row(uint32_t i) {
    OVC_DCHECK(i < size_);
    OVC_DCHECK(!borrowed_);
    return owned_cols_.data() + static_cast<size_t>(i) * width_;
  }

  /// Code of row `i`.
  Ovc code(uint32_t i) const {
    OVC_DCHECK(i < size_);
    return codes_[i];
  }

  /// Overwrites the code of row `i` (owned mode only).
  void set_code(uint32_t i, Ovc code) {
    OVC_DCHECK(i < size_);
    OVC_DCHECK(!borrowed_);
    owned_codes_[i] = code;
    codes_dirty_ = true;
  }

  /// Contiguous row storage of the current contents (size() * width()
  /// values) -- owned or borrowed.
  const uint64_t* data() const { return cols_; }
  /// Contiguous code storage of the current contents (size() values).
  const Ovc* codes() const { return codes_; }

  /// Appends an uninitialized row with code `code`; returns a pointer to
  /// its columns for the producer to fill. Owned mode only (Clear() first
  /// after serving a borrowed span).
  uint64_t* AppendRow(Ovc code) {
    OVC_DCHECK(size_ < capacity_);
    OVC_DCHECK(!borrowed_);
    owned_codes_[size_] = code;
    codes_dirty_ = true;
    return owned_cols_.data() + static_cast<size_t>(size_++) * width_;
  }

  /// Appends a copy of `src` (width() columns) with code `code`.
  void Append(const uint64_t* src, Ovc code) {
    std::memcpy(AppendRow(code), src, width_ * sizeof(uint64_t));
  }

  /// Bulk-appends `n` contiguous rows (and their codes; `codes == nullptr`
  /// zero-fills). The caller guarantees `size() + n <= capacity()`.
  void AppendContiguous(const uint64_t* rows, const Ovc* codes, uint32_t n) {
    OVC_DCHECK(size_ + n <= capacity_);
    OVC_DCHECK(!borrowed_);
    uint64_t* dst = owned_cols_.data() + static_cast<size_t>(size_) * width_;
    const size_t words = static_cast<size_t>(n) * width_;
    if (words <= 32) {
      // Tiny spans (filters emit many): a plain word loop beats the
      // out-of-line memcpy call.
      for (size_t w = 0; w < words; ++w) dst[w] = rows[w];
    } else {
      std::memcpy(dst, rows, words * sizeof(uint64_t));
    }
    if (codes != nullptr) {
      if (n <= 32) {
        for (uint32_t i = 0; i < n; ++i) owned_codes_[size_ + i] = codes[i];
      } else {
        std::memcpy(owned_codes_.data() + size_, codes, n * sizeof(Ovc));
      }
    } else {
      std::memset(owned_codes_.data() + size_, 0, n * sizeof(Ovc));
    }
    codes_dirty_ = true;
    size_ += n;
  }

  /// Zero-copy serving: points the block at `n` contiguous rows (and
  /// parallel codes) of a producer's stable storage. `codes == nullptr`
  /// serves all-zero codes (unsorted leaves). The span must stay valid for
  /// as long as the block's contents are alive (i.e. until the producer's
  /// next NextBatch()/Close()). `n` may not exceed capacity(), keeping
  /// consumer-side buffers sized by the capacity they requested.
  void RefContiguous(const uint64_t* rows, const Ovc* codes, uint32_t n) {
    OVC_DCHECK(n <= capacity_);
    cols_ = rows;
    if (codes != nullptr) {
      codes_ = codes;
    } else {
      if (codes_dirty_) {
        // Clear the whole allocation, not just the current capacity: a
        // SetCapacity-reduced block must not leave stale codes beyond
        // capacity_ that a later, larger zero-code span would expose.
        std::memset(owned_codes_.data(), 0,
                    owned_codes_.size() * sizeof(Ovc));
        codes_dirty_ = false;
      }
      codes_ = owned_codes_.data();
    }
    size_ = n;
    borrowed_ = true;
  }

  /// Drops all rows and returns to owned mode (storage stays allocated).
  void Clear() {
    size_ = 0;
    borrowed_ = false;
    cols_ = owned_cols_.data();
    codes_ = owned_codes_.data();
  }

  /// Sets the block's effective capacity to `rows` (1 <= rows <= the
  /// capacity allocated at construction; current size must fit). Lets a
  /// consumer cap how many rows a producer's NextBatch may deliver -- e.g.
  /// a limit's final partial block -- without reallocating.
  void SetCapacity(uint32_t rows) {
    OVC_DCHECK(rows >= 1);
    OVC_DCHECK(rows <= owned_codes_.size());
    OVC_DCHECK(size_ <= rows);
    capacity_ = rows;
  }

  /// Keeps only the first `n` rows (allowed in both modes: truncation only
  /// moves the size).
  void Truncate(uint32_t n) {
    OVC_DCHECK(n <= size_);
    size_ = n;
  }

 private:
  uint32_t width_;
  uint32_t capacity_;
  uint32_t size_ = 0;
  bool borrowed_ = false;
  /// True when owned_codes_ may hold non-zero values (lets RefContiguous
  /// serve zero codes without re-clearing every time).
  bool codes_dirty_ = false;
  std::vector<uint64_t> owned_cols_;
  std::vector<Ovc> owned_codes_;
  const uint64_t* cols_;
  const Ovc* codes_;
};

}  // namespace ovc

#endif  // OVC_ROW_ROW_BLOCK_H_
