// Synthetic workload generation.
//
// The paper's evaluation: "Test data are synthetic yet similar to the actual
// data in our daily production web analysis with many rows and many key
// columns. Each key column is an 8-byte integer with only a few distinct
// values." This generator reproduces that shape and adds the knobs the
// individual experiments need (group-size ratios for Figure 4, overlapping
// domains for Figure 6, presorted inputs for operator tests).

#ifndef OVC_ROW_GENERATOR_H_
#define OVC_ROW_GENERATOR_H_

#include <cstdint>

#include "row/row_buffer.h"
#include "row/schema.h"

namespace ovc {

/// Parameters for synthetic table generation.
struct GeneratorConfig {
  /// Number of rows to produce.
  uint64_t rows = 0;
  /// Distinct values per key column, drawn uniformly from
  /// [value_base, value_base + distinct_per_column).
  uint64_t distinct_per_column = 16;
  /// Smallest generated column value.
  uint64_t value_base = 0;
  /// RNG seed; identical configs generate identical tables.
  uint64_t seed = 42;
  /// When true, rows are sorted on the full key prefix before returning.
  bool sorted = false;
};

/// Appends `config.rows` random rows to `out` (whose width must equal
/// `schema.total_columns()`). Payload columns are filled with a running row
/// number so join results can be traced back to their inputs in tests.
void GenerateRows(const Schema& schema, const GeneratorConfig& config,
                  RowBuffer* out);

/// Appends a *sorted* stream with a controlled input/output ratio for the
/// Figure 4 experiment: `groups` distinct keys, each repeated
/// `rows_per_group` times. Keys are generated with `distinct_per_column`
/// distinct values in every key column and then deduplicated, so prefix
/// sharing between neighboring groups mirrors the paper's workload.
void GenerateGroupedRows(const Schema& schema, uint64_t groups,
                         uint64_t rows_per_group, uint64_t distinct_per_column,
                         uint64_t seed, RowBuffer* out);

/// Sorts `buffer` in place on the schema's sort key (stable; payload order
/// within duplicate keys is preserved). Used by generators and tests; not
/// instrumented -- the engine's own sort lives in src/sort.
void SortRowsForTest(const Schema& schema, RowBuffer* buffer);

}  // namespace ovc

#endif  // OVC_ROW_GENERATOR_H_
