#include "row/row_buffer.h"

// Header-only today; this translation unit anchors the library target and
// keeps a stable home for future out-of-line members.
