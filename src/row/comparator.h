// Instrumented key comparators.
//
// All column-value comparisons in the library flow through KeyComparator so
// that tests can assert the paper's N x K bound and benchmarks can report
// comparison counts. Comparisons respect per-column sort direction via
// normalized values (see row/schema.h).

#ifndef OVC_ROW_COMPARATOR_H_
#define OVC_ROW_COMPARATOR_H_

#include <cstdint>

#include "common/counters.h"
#include "row/schema.h"

namespace ovc {

/// Three-way comparator over the sort-key prefix of rows, counting every
/// column-value comparison it performs into a QueryCounters instance.
class KeyComparator {
 public:
  /// `schema` and `counters` must outlive the comparator. `counters` may be
  /// null (counting disabled).
  KeyComparator(const Schema* schema, QueryCounters* counters)
      : schema_(schema), counters_(counters) {}

  /// Three-way comparison of full sort keys: negative if a < b, zero if
  /// equal, positive if a > b (in normalized, i.e. requested, sort order).
  int Compare(const uint64_t* a, const uint64_t* b) const {
    if (counters_ != nullptr) ++counters_->row_comparisons;
    return CompareFrom(a, b, 0);
  }

  /// Three-way comparison starting at key column `start` (caller knows the
  /// first `start` columns are equal).
  int CompareFrom(const uint64_t* a, const uint64_t* b, uint32_t start) const {
    const uint32_t arity = schema_->key_arity();
    for (uint32_t i = start; i < arity; ++i) {
      if (counters_ != nullptr) ++counters_->column_comparisons;
      const uint64_t av = schema_->NormalizedAt(a, i);
      const uint64_t bv = schema_->NormalizedAt(b, i);
      if (av != bv) return av < bv ? -1 : 1;
    }
    return 0;
  }

  /// Returns the first key column index >= `start` where `a` and `b` differ,
  /// or key_arity() if the keys are equal from `start` on. Each inspected
  /// column counts as one column comparison.
  uint32_t FirstDifference(const uint64_t* a, const uint64_t* b,
                           uint32_t start) const {
    const uint32_t arity = schema_->key_arity();
    for (uint32_t i = start; i < arity; ++i) {
      if (counters_ != nullptr) ++counters_->column_comparisons;
      if (schema_->NormalizedAt(a, i) != schema_->NormalizedAt(b, i)) {
        return i;
      }
    }
    return arity;
  }

  /// True when the sort keys of `a` and `b` are equal.
  bool Equal(const uint64_t* a, const uint64_t* b) const {
    return Compare(a, b) == 0;
  }

  const Schema& schema() const { return *schema_; }
  QueryCounters* counters() const { return counters_; }

 private:
  const Schema* schema_;
  QueryCounters* counters_;
};

}  // namespace ovc

#endif  // OVC_ROW_COMPARATOR_H_
