// Instrumented key comparators.
//
// All column-value comparisons in the library flow through KeyComparator so
// that tests can assert the paper's N x K bound and benchmarks can report
// comparison counts. Comparisons respect per-column sort direction via
// normalized values (see row/schema.h).

#ifndef OVC_ROW_COMPARATOR_H_
#define OVC_ROW_COMPARATOR_H_

#include <cstdint>

#include "common/counters.h"
#include "row/schema.h"

namespace ovc {

/// Three-way comparator over the sort-key prefix of rows, counting every
/// column-value comparison it performs into a QueryCounters instance.
class KeyComparator {
 public:
  /// `schema` and `counters` must outlive the comparator. `counters` may be
  /// null (counting disabled).
  KeyComparator(const Schema* schema, QueryCounters* counters)
      : schema_(schema), counters_(counters) {}

  /// Three-way comparison of full sort keys: negative if a < b, zero if
  /// equal, positive if a > b (in normalized, i.e. requested, sort order).
  int Compare(const uint64_t* a, const uint64_t* b) const {
    if (counters_ != nullptr) ++counters_->row_comparisons;
    return CompareFrom(a, b, 0);
  }

  /// Three-way comparison starting at key column `start` (caller knows the
  /// first `start` columns are equal).
  ///
  /// The inspected-column count is accumulated locally and flushed once per
  /// call, so the hot loop carries no per-column instrumentation branch while
  /// the counts stay bit-exact with the per-column accounting the N x K
  /// tests assert.
  int CompareFrom(const uint64_t* a, const uint64_t* b, uint32_t start) const {
    const uint32_t arity = schema_->key_arity();
    int result = 0;
    uint32_t i = start;
    for (; i < arity; ++i) {
      const uint64_t av = schema_->NormalizedAt(a, i);
      const uint64_t bv = schema_->NormalizedAt(b, i);
      if (av != bv) {
        result = av < bv ? -1 : 1;
        ++i;  // the deciding column was inspected too
        break;
      }
    }
    if (counters_ != nullptr) counters_->column_comparisons += i - start;
    return result;
  }

  /// Returns the first key column index >= `start` where `a` and `b` differ,
  /// or key_arity() if the keys are equal from `start` on. Each inspected
  /// column counts as one column comparison (flushed once per call; see
  /// CompareFrom).
  uint32_t FirstDifference(const uint64_t* a, const uint64_t* b,
                           uint32_t start) const {
    const uint32_t arity = schema_->key_arity();
    uint32_t i = start;
    for (; i < arity; ++i) {
      if (schema_->NormalizedAt(a, i) != schema_->NormalizedAt(b, i)) break;
    }
    if (counters_ != nullptr) {
      counters_->column_comparisons += (i < arity ? i + 1 : arity) - start;
    }
    return i;
  }

  /// True when the sort keys of `a` and `b` are equal.
  bool Equal(const uint64_t* a, const uint64_t* b) const {
    return Compare(a, b) == 0;
  }

  const Schema& schema() const { return *schema_; }
  QueryCounters* counters() const { return counters_; }

 private:
  const Schema* schema_;
  QueryCounters* counters_;
};

}  // namespace ovc

#endif  // OVC_ROW_COMPARATOR_H_
