#include "row/generator.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.h"

namespace ovc {

namespace {

// Sorts row indices of `buffer` and rewrites the buffer in sorted order.
void SortBuffer(const Schema& schema, RowBuffer* buffer) {
  const uint32_t width = buffer->width();
  const size_t n = buffer->size();
  std::vector<uint32_t> index(n);
  std::iota(index.begin(), index.end(), 0);
  std::stable_sort(index.begin(), index.end(),
                   [&](uint32_t a, uint32_t b) {
                     const uint64_t* ra = buffer->row(a);
                     const uint64_t* rb = buffer->row(b);
                     for (uint32_t c = 0; c < schema.key_arity(); ++c) {
                       const uint64_t va = schema.NormalizedAt(ra, c);
                       const uint64_t vb = schema.NormalizedAt(rb, c);
                       if (va != vb) return va < vb;
                     }
                     return false;
                   });
  RowBuffer sorted(width);
  sorted.ReserveRows(n);
  for (uint32_t i : index) {
    sorted.AppendRow(buffer->row(i));
  }
  *buffer = std::move(sorted);
}

}  // namespace

void GenerateRows(const Schema& schema, const GeneratorConfig& config,
                  RowBuffer* out) {
  OVC_CHECK(out->width() == schema.total_columns());
  OVC_CHECK(config.distinct_per_column >= 1);
  Rng rng(config.seed);
  out->ReserveRows(out->size() + config.rows);
  for (uint64_t r = 0; r < config.rows; ++r) {
    uint64_t* row = out->AppendRow();
    for (uint32_t c = 0; c < schema.key_arity(); ++c) {
      row[c] = config.value_base + rng.Uniform(config.distinct_per_column);
    }
    for (uint32_t c = schema.key_arity(); c < schema.total_columns(); ++c) {
      row[c] = r;
    }
  }
  if (config.sorted) {
    SortBuffer(schema, out);
  }
}

void GenerateGroupedRows(const Schema& schema, uint64_t groups,
                         uint64_t rows_per_group, uint64_t distinct_per_column,
                         uint64_t seed, RowBuffer* out) {
  OVC_CHECK(out->width() == schema.total_columns());
  // Generate candidate keys, sort, deduplicate, and take the first `groups`
  // distinct keys. Over-generate to survive deduplication: with
  // distinct_per_column^arity possible keys, 4x oversampling plus retries
  // converges quickly for the configurations the experiments use.
  RowBuffer keys(schema.total_columns());
  uint64_t attempt_rows = groups * 4;
  Rng rng(seed);
  while (true) {
    keys.Clear();
    GeneratorConfig config;
    config.rows = attempt_rows;
    config.distinct_per_column = distinct_per_column;
    config.seed = rng.Next();
    config.sorted = true;
    GenerateRows(schema, config, &keys);
    // Count distinct keys.
    uint64_t distinct = 0;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (i == 0) {
        ++distinct;
        continue;
      }
      bool equal = true;
      for (uint32_t c = 0; c < schema.key_arity(); ++c) {
        if (keys.row(i)[c] != keys.row(i - 1)[c]) {
          equal = false;
          break;
        }
      }
      if (!equal) ++distinct;
    }
    if (distinct >= groups) break;
    attempt_rows *= 2;
    OVC_CHECK(attempt_rows < (uint64_t{1} << 40));  // domain too small
  }
  // Emit the first `groups` distinct keys, each `rows_per_group` times.
  uint64_t emitted_groups = 0;
  uint64_t row_number = 0;
  for (size_t i = 0; i < keys.size() && emitted_groups < groups; ++i) {
    if (i > 0) {
      bool equal = true;
      for (uint32_t c = 0; c < schema.key_arity(); ++c) {
        if (keys.row(i)[c] != keys.row(i - 1)[c]) {
          equal = false;
          break;
        }
      }
      if (equal) continue;
    }
    ++emitted_groups;
    for (uint64_t d = 0; d < rows_per_group; ++d) {
      uint64_t* row = out->AppendRow();
      for (uint32_t c = 0; c < schema.key_arity(); ++c) {
        row[c] = keys.row(i)[c];
      }
      for (uint32_t c = schema.key_arity(); c < schema.total_columns(); ++c) {
        row[c] = row_number;
      }
      ++row_number;
    }
  }
  OVC_CHECK(emitted_groups == groups);
}

void SortRowsForTest(const Schema& schema, RowBuffer* buffer) {
  SortBuffer(schema, buffer);
}

}  // namespace ovc
