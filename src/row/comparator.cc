#include "row/comparator.h"

// Header-only today; this translation unit anchors the library target.
