// Row schema: fixed-arity rows of 64-bit integer columns.
//
// The paper's evaluation uses rows of 8-byte integer key columns with few
// distinct values per column ("synthetic yet similar to the actual data in
// our daily production web analysis"). This library adopts that model: a row
// is `key_arity` sort-key columns followed by `payload_columns` carried-along
// columns, each an unsigned 64-bit integer.
//
// Sort order: ascending or descending per key column. Internally, all
// machinery (comparators, offset-value codes, priority queues) operates on
// *normalized* column values -- descending columns are bitwise-complemented
// on access -- so the engine core is always "ascending on normalized values".

#ifndef OVC_ROW_SCHEMA_H_
#define OVC_ROW_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace ovc {

/// Per-column sort direction.
enum class SortDirection : uint8_t { kAscending, kDescending };

/// Describes the layout of a row stream: how many leading columns form the
/// sort key, their directions, and how many payload columns follow.
class Schema {
 public:
  /// All-ascending schema with `key_arity` sort-key columns and
  /// `payload_columns` trailing payload columns.
  Schema(uint32_t key_arity, uint32_t payload_columns = 0)
      : key_arity_(key_arity),
        payload_columns_(payload_columns),
        directions_(key_arity, SortDirection::kAscending) {
    OVC_CHECK(key_arity >= 1);
  }

  /// Schema with explicit per-key-column directions.
  Schema(std::vector<SortDirection> directions, uint32_t payload_columns)
      : key_arity_(static_cast<uint32_t>(directions.size())),
        payload_columns_(payload_columns),
        directions_(std::move(directions)) {
    OVC_CHECK(key_arity_ >= 1);
  }

  /// Number of leading sort-key columns (the "arity" of offset-value codes).
  uint32_t key_arity() const { return key_arity_; }
  /// Number of trailing payload columns.
  uint32_t payload_columns() const { return payload_columns_; }
  /// Total columns per row.
  uint32_t total_columns() const { return key_arity_ + payload_columns_; }

  /// Sort direction of key column `col`.
  SortDirection direction(uint32_t col) const {
    OVC_DCHECK(col < key_arity_);
    return directions_[col];
  }

  /// True when every key column sorts ascending.
  bool all_ascending() const {
    for (SortDirection d : directions_) {
      if (d != SortDirection::kAscending) return false;
    }
    return true;
  }

  /// Maps a stored column value to its order-preserving ascending image.
  /// Identity for ascending columns, bitwise complement for descending.
  uint64_t Normalize(uint32_t col, uint64_t v) const {
    return direction(col) == SortDirection::kAscending ? v : ~v;
  }

  /// Inverse of Normalize (the complement is an involution).
  uint64_t Denormalize(uint32_t col, uint64_t v) const {
    return Normalize(col, v);
  }

  /// Normalized value of key column `col` of `row`.
  uint64_t NormalizedAt(const uint64_t* row, uint32_t col) const {
    return Normalize(col, row[col]);
  }

  /// Schemas are equal when layout and directions match.
  bool operator==(const Schema& other) const {
    return key_arity_ == other.key_arity_ &&
           payload_columns_ == other.payload_columns_ &&
           directions_ == other.directions_;
  }

  /// Short layout description, e.g. "key(asc,asc,desc)+payload(2)".
  std::string ToString() const;

 private:
  uint32_t key_arity_;
  uint32_t payload_columns_;
  std::vector<SortDirection> directions_;
};

}  // namespace ovc

#endif  // OVC_ROW_SCHEMA_H_
