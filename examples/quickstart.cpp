// Quickstart: sort a table with offset-value codes, inspect the codes, and
// run an in-stream aggregation that detects group boundaries with a single
// integer test per row.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "common/counters.h"
#include "common/temp_file.h"
#include "exec/aggregate.h"
#include "exec/scan.h"
#include "exec/sort_operator.h"
#include "row/generator.h"

using namespace ovc;

int main() {
  // A table shaped like the paper's evaluation data: 4 key columns of
  // 8-byte integers with few distinct values, one payload column.
  Schema schema(/*key_arity=*/4, /*payload_columns=*/1);
  RowBuffer table(schema.total_columns());
  GeneratorConfig config;
  config.rows = 1000000;
  config.distinct_per_column = 4;
  config.seed = 42;
  GenerateRows(schema, config, &table);

  QueryCounters counters;
  TempFileManager temp;

  // Sort: tree-of-losers run generation + merge; every output row carries
  // its offset-value code relative to the previous row.
  BufferScan scan(&schema, &table);
  SortConfig sort_config;
  sort_config.memory_rows = 1 << 16;  // forces spilling + merging
  SortOperator sort(&scan, &counters, &temp, sort_config);

  // Group by the first two key columns; boundaries come from the codes.
  InStreamAggregate agg(&sort, /*group_prefix=*/2,
                        {{AggFn::kCount, 0}, {AggFn::kSum, 4}}, &counters);

  agg.Open();
  OvcCodec out_codec(&agg.schema());
  RowRef ref;
  uint64_t groups = 0;
  std::printf("first groups (key0 key1 | count sum | code):\n");
  while (agg.Next(&ref)) {
    if (groups < 5) {
      std::printf("  %3lu %3lu | %8lu %14lu | %s\n",
                  static_cast<unsigned long>(ref.cols[0]),
                  static_cast<unsigned long>(ref.cols[1]),
                  static_cast<unsigned long>(ref.cols[2]),
                  static_cast<unsigned long>(ref.cols[3]),
                  out_codec.ToString(ref.ovc).c_str());
    }
    ++groups;
  }
  agg.Close();

  std::printf("\nrows sorted:          %lu\n",
              static_cast<unsigned long>(config.rows));
  std::printf("groups produced:      %lu\n",
              static_cast<unsigned long>(groups));
  std::printf("column comparisons:   %lu (N x K bound: %lu)\n",
              static_cast<unsigned long>(counters.column_comparisons),
              static_cast<unsigned long>(config.rows * schema.key_arity() *
                                         2));  // run gen + merge
  std::printf("code comparisons:     %lu (single-instruction each)\n",
              static_cast<unsigned long>(counters.code_comparisons));
  std::printf("rows spilled:         %lu\n",
              static_cast<unsigned long>(counters.rows_spilled));
  std::printf("merge bypass rows:    %lu (duplicate fast path, Section 5)\n",
              static_cast<unsigned long>(counters.merge_bypass_rows));
  return 0;
}
