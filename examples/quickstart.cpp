// Quickstart: express "sort a table, then aggregate groups" as a logical
// plan and let the order-property-aware planner pick the physical
// operators. The sort materializes (the input is an unsorted buffer) and
// produces offset-value codes; the aggregation then streams over it,
// detecting group boundaries with a single integer test per row.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "common/counters.h"
#include "common/temp_file.h"
#include "plan/logical_plan.h"
#include "plan/plan_executor.h"
#include "row/generator.h"

using namespace ovc;

int main() {
  // A table shaped like the paper's evaluation data: 4 key columns of
  // 8-byte integers with few distinct values, one payload column.
  Schema schema(/*key_arity=*/4, /*payload_columns=*/1);
  RowBuffer table(schema.total_columns());
  GeneratorConfig config;
  config.rows = 1000000;
  config.distinct_per_column = 4;
  config.seed = 42;
  GenerateRows(schema, config, &table);

  QueryCounters counters;
  TempFileManager temp;

  // Logical plan: scan -> sort -> group by the first two key columns.
  auto logical = plan::PlanBuilder::Scan(
                     plan::BufferSource("table", &schema, &table))
                     .Sort()
                     .Aggregate(/*group_prefix=*/2,
                                {{AggFn::kCount, 0}, {AggFn::kSum, 4}})
                     .Build();

  // Physical planning: the sort materializes (forced to spill by the small
  // memory budget) and the aggregation streams over its coded output.
  plan::PlanExecutor::Options options;
  options.planner.sort_config.memory_rows = 1 << 16;
  plan::PlanExecutor executor(&counters, &temp, options);

  plan::ExecutionResult result = executor.Run(logical.get());
  std::printf("physical plan:\n%s\n",
              executor.last_plan()->ToString().c_str());

  std::printf("first groups (key0 key1 | count sum):\n");
  for (size_t i = 0; i < result.rows.size() && i < 5; ++i) {
    const uint64_t* row = result.rows.row(i);
    std::printf("  %3lu %3lu | %8lu %14lu\n",
                static_cast<unsigned long>(row[0]),
                static_cast<unsigned long>(row[1]),
                static_cast<unsigned long>(row[2]),
                static_cast<unsigned long>(row[3]));
  }

  std::printf("\nrows sorted:          %lu\n",
              static_cast<unsigned long>(config.rows));
  std::printf("groups produced:      %lu\n",
              static_cast<unsigned long>(result.row_count()));
  std::printf("output order:         %s\n", result.order.ToString().c_str());
  std::printf("column comparisons:   %lu (N x K bound: %lu)\n",
              static_cast<unsigned long>(counters.column_comparisons),
              static_cast<unsigned long>(config.rows * schema.key_arity() *
                                         2));  // run gen + merge
  std::printf("code comparisons:     %lu (single-instruction each)\n",
              static_cast<unsigned long>(counters.code_comparisons));
  std::printf("rows spilled:         %lu\n",
              static_cast<unsigned long>(counters.rows_spilled));
  std::printf("merge bypass rows:    %lu (duplicate fast path, Section 5)\n",
              static_cast<unsigned long>(counters.merge_bypass_rows));
  return 0;
}
