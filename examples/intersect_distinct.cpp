// Figure 5's two query plans for
//
//   select B from T1 intersect select B from T2
//
// side by side: the hash-based plan (two hash aggregations + hash join,
// three blocking operators) and the sort-based plan (two in-sort duplicate
// removals + merge join, two blocking operators). Prints result sizes,
// spill volumes, and comparison/hash counts -- the quantities behind
// Figure 6's discussion.
//
//   ./build/examples/intersect_distinct [rows]

#include <cstdio>
#include <cstdlib>

#include "common/counters.h"
#include "common/temp_file.h"
#include "exec/dedup.h"
#include "exec/hash_aggregate.h"
#include "exec/hash_join.h"
#include "exec/in_sort_aggregate.h"
#include "exec/merge_join.h"
#include "exec/scan.h"
#include "exec/sort_operator.h"
#include "row/generator.h"

using namespace ovc;

int main(int argc, char** argv) {
  const uint64_t rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : 1000000;
  const uint64_t memory_rows = rows / 10;  // the paper's 10:1 ratio

  Schema schema(/*key_arity=*/2, /*payload_columns=*/0);
  RowBuffer t1(schema.total_columns()), t2(schema.total_columns());
  GeneratorConfig config;
  config.rows = rows;
  config.distinct_per_column = 2048;
  config.seed = 1;
  GenerateRows(schema, config, &t1);
  config.seed = 2;
  GenerateRows(schema, config, &t2);

  std::printf("T1 = T2 = %lu rows, operator memory = %lu rows\n\n",
              static_cast<unsigned long>(rows),
              static_cast<unsigned long>(memory_rows));

  // --- Sort-based plan (2 blocking operators). -----------------------------
  {
    QueryCounters counters;
    TempFileManager temp;
    SortConfig sort_config;
    sort_config.memory_rows = memory_rows;
    BufferScan scan1(&schema, &t1), scan2(&schema, &t2);
    SortOperator sort1(&scan1, &counters, &temp, sort_config);
    SortOperator sort2(&scan2, &counters, &temp, sort_config);
    DedupOperator dedup1(&sort1), dedup2(&sort2);
    MergeJoin intersect(&dedup1, &dedup2, JoinType::kLeftSemi, &counters);
    const uint64_t result = DrainAndCount(&intersect);
    std::printf("sort-based plan:   %8lu result rows\n",
                static_cast<unsigned long>(result));
    std::printf("  rows spilled:    %8lu (each input row spilled once)\n",
                static_cast<unsigned long>(counters.rows_spilled));
    std::printf("  column compares: %8lu\n",
                static_cast<unsigned long>(counters.column_comparisons));
    std::printf("  code compares:   %8lu\n\n",
                static_cast<unsigned long>(counters.code_comparisons));
  }

  // --- Sort-based plan with in-sort aggregation (the paper's version). -----
  {
    QueryCounters counters;
    TempFileManager temp;
    SortConfig sort_config;
    sort_config.memory_rows = memory_rows;
    BufferScan scan1(&schema, &t1), scan2(&schema, &t2);
    InSortAggregate dedup1(&scan1, 2, {}, &counters, &temp, sort_config);
    InSortAggregate dedup2(&scan2, 2, {}, &counters, &temp, sort_config);
    MergeJoin intersect(&dedup1, &dedup2, JoinType::kLeftSemi, &counters);
    const uint64_t result = DrainAndCount(&intersect);
    std::printf("in-sort agg plan:  %8lu result rows\n",
                static_cast<unsigned long>(result));
    std::printf("  rows spilled:    %8lu (early duplicate collapse)\n",
                static_cast<unsigned long>(counters.rows_spilled));
    std::printf("  column compares: %8lu\n",
                static_cast<unsigned long>(counters.column_comparisons));
    std::printf("  code compares:   %8lu\n\n",
                static_cast<unsigned long>(counters.code_comparisons));
  }

  // --- Hash-based plan (3 blocking operators). -----------------------------
  {
    QueryCounters counters;
    TempFileManager temp;
    BufferScan scan1(&schema, &t1), scan2(&schema, &t2);
    HashAggregate dedup1(&scan1, 2, {}, memory_rows, &counters, &temp);
    HashAggregate dedup2(&scan2, 2, {}, memory_rows, &counters, &temp);
    GraceHashJoin intersect(&dedup1, &dedup2, 2, JoinTypeHash::kLeftSemi,
                            memory_rows, &counters, &temp);
    const uint64_t result = DrainAndCount(&intersect);
    std::printf("hash-based plan:   %8lu result rows\n",
                static_cast<unsigned long>(result));
    std::printf("  rows spilled:    %8lu (many rows spilled twice)\n",
                static_cast<unsigned long>(counters.rows_spilled));
    std::printf("  hash functions:  %8lu (N x K column accesses)\n",
                static_cast<unsigned long>(counters.hash_computations));
    std::printf("  column compares: %8lu\n",
                static_cast<unsigned long>(counters.column_comparisons));
  }
  return 0;
}
