// Figure 5's query
//
//   SELECT a, b FROM t1 INTERSECT SELECT a, b FROM t2
//
// through the SQL front end, against the hash-based alternative built by
// hand. The SQL session plans the paper's sort-based shape -- two
// planner-inserted sorts feeding the merge-style set operation, with
// duplicate handling done on codes alone -- while the hand-built hash
// plan (two hash aggregations + hash join, three blocking operators)
// shows the spill/compare profile Figure 6 discusses.
//
//   ./build/examples/intersect_distinct [rows]

#include <cstdio>
#include <cstdlib>

#include "common/counters.h"
#include "common/temp_file.h"
#include "exec/hash_aggregate.h"
#include "exec/hash_join.h"
#include "exec/scan.h"
#include "row/generator.h"
#include "sql/catalog.h"
#include "sql/session.h"

using namespace ovc;

int main(int argc, char** argv) {
  const uint64_t rows =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000000;
  const uint64_t memory_rows = rows / 10;  // the paper's 10:1 ratio

  // Generate the tables once and register the buffers with the catalog,
  // so the SQL plan and the hand-built baseline below share one copy.
  Schema schema(/*key_arity=*/2, /*payload_columns=*/0);
  RowBuffer t1(schema.total_columns()), t2(schema.total_columns());
  GeneratorConfig config;
  config.rows = rows;
  config.distinct_per_column = 2048;
  config.seed = 1;
  GenerateRows(schema, config, &t1);
  config.seed = 2;
  GenerateRows(schema, config, &t2);

  sql::Catalog catalog;
  OVC_CHECK_OK(
      catalog.Register(plan::BufferSource("t1", &schema, &t1), {"a", "b"}));
  OVC_CHECK_OK(
      catalog.Register(plan::BufferSource("t2", &schema, &t2), {"a", "b"}));

  std::printf("T1 = T2 = %lu rows, operator memory = %lu rows\n\n",
              static_cast<unsigned long>(rows),
              static_cast<unsigned long>(memory_rows));

  // --- The SQL plan (sort-based: 2 blocking operators). --------------------
  {
    sql::SqlSession::Options options;
    options.planner.sort_config.memory_rows = memory_rows;
    sql::SqlSession session(&catalog, options);
    const char kQuery[] =
        "SELECT a, b FROM t1 INTERSECT SELECT a, b FROM t2";

    auto explain = session.Explain(kQuery);
    OVC_CHECK(explain.ok());
    std::printf("physical plan:\n%s\n", explain.value().c_str());

    auto result = session.Run(kQuery);
    OVC_CHECK(result.ok());
    const QueryCounters& counters = *session.counters();
    std::printf("sql sort-based:    %8lu result rows\n",
                static_cast<unsigned long>(result.value().result.row_count()));
    std::printf("  rows spilled:    %8lu (each input row spilled at most "
                "once)\n",
                static_cast<unsigned long>(counters.rows_spilled));
    std::printf("  column compares: %8lu\n",
                static_cast<unsigned long>(counters.column_comparisons));
    std::printf("  code compares:   %8lu\n\n",
                static_cast<unsigned long>(counters.code_comparisons));
  }

  // --- Hash-based plan (3 blocking operators), built by hand. --------------
  {
    QueryCounters counters;
    TempFileManager temp;
    BufferScan scan1(&schema, &t1), scan2(&schema, &t2);
    HashAggregate dedup1(&scan1, 2, {}, memory_rows, &counters, &temp);
    HashAggregate dedup2(&scan2, 2, {}, memory_rows, &counters, &temp);
    GraceHashJoin intersect(&dedup1, &dedup2, 2, JoinTypeHash::kLeftSemi,
                            memory_rows, &counters, &temp);
    const uint64_t result = DrainAndCount(&intersect);
    std::printf("hash-based plan:   %8lu result rows\n",
                static_cast<unsigned long>(result));
    std::printf("  rows spilled:    %8lu (many rows spilled twice)\n",
                static_cast<unsigned long>(counters.rows_spilled));
    std::printf("  hash functions:  %8lu (N x K column accesses)\n",
                static_cast<unsigned long>(counters.hash_computations));
    std::printf("  column compares: %8lu\n",
                static_cast<unsigned long>(counters.column_comparisons));
  }
  return 0;
}
