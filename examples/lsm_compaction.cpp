// Napa-style log-structured merge-forest: "ingestion (run generation),
// compaction (merging), and query processing in log-structured
// merge-forests rely heavily on sorting and merging" (Section 7). This
// example ingests a stream into an LSM forest, queries it mid-stream (a
// tree-of-losers merge over all runs, producing codes), compacts, and
// queries again -- all code paths driven by offset-value coding.
//
//   ./build/examples/lsm_compaction

#include <cstdio>

#include "common/counters.h"
#include "common/rng.h"
#include "common/temp_file.h"
#include "exec/aggregate.h"
#include "storage/lsm.h"

using namespace ovc;

namespace {

void Query(const char* label, LsmForest* forest, QueryCounters* counters) {
  auto scan = forest->ScanAll();
  InStreamAggregate agg(scan.get(), /*group_prefix=*/2, {{AggFn::kCount, 0}},
                        counters);
  agg.Open();
  RowRef ref;
  uint64_t groups = 0, rows = 0;
  while (agg.Next(&ref)) {
    ++groups;
    rows += ref.cols[2];
  }
  agg.Close();
  std::printf("%s: %lu rows in %lu groups across %lu runs\n", label,
              static_cast<unsigned long>(rows),
              static_cast<unsigned long>(groups),
              static_cast<unsigned long>(forest->run_count()));
}

}  // namespace

int main() {
  Schema schema(/*key_arity=*/2, /*payload_columns=*/1);
  QueryCounters counters;
  TempFileManager temp;
  LsmForest::Options options;
  options.memtable_rows = 64 * 1024;
  LsmForest forest(&schema, &counters, &temp, options);

  // Ingest a million updates.
  Rng rng(99);
  for (uint64_t i = 0; i < 1000000; ++i) {
    const uint64_t row[3] = {rng.Uniform(100), rng.Uniform(100), i};
    forest.Insert(row);
  }

  Query("before compaction", &forest, &counters);

  const uint64_t comparisons_before = counters.column_comparisons;
  forest.CompactAll();
  std::printf("compaction merged runs into one (%lu column comparisons, "
              "%lu code comparisons so far)\n",
              static_cast<unsigned long>(counters.column_comparisons -
                                         comparisons_before),
              static_cast<unsigned long>(counters.code_comparisons));

  Query("after compaction ", &forest, &counters);

  std::printf("\ntotals: column_cmp=%lu code_cmp=%lu rows_spilled=%lu "
              "merge_bypass=%lu\n",
              static_cast<unsigned long>(counters.column_comparisons),
              static_cast<unsigned long>(counters.code_comparisons),
              static_cast<unsigned long>(counters.rows_spilled),
              static_cast<unsigned long>(counters.merge_bypass_rows));
  return 0;
}
