// Order-preserving shuffle (Section 4.10): partition a sorted, coded
// stream across "workers", aggregate each partition independently, and
// merge the partition results back into one sorted, coded stream with a
// tree-of-losers merging exchange driven by producer threads.
//
// The splitting side derives per-partition codes with the filter theorem
// (each partition is a selection from the overall stream); the merging side
// consumes and reproduces codes like a merge step of an external sort.
//
//   ./build/examples/parallel_shuffle

#include <cstdio>
#include <memory>
#include <vector>

#include "common/counters.h"
#include "common/temp_file.h"
#include "core/ovc_checker.h"
#include "exec/aggregate.h"
#include "exec/exchange.h"
#include "exec/scan.h"
#include "exec/sort_operator.h"
#include "row/generator.h"

using namespace ovc;

int main() {
  constexpr uint32_t kPartitions = 4;
  Schema schema(/*key_arity=*/3, /*payload_columns=*/1);
  RowBuffer table(schema.total_columns());
  GeneratorConfig config;
  config.rows = 1000000;
  config.distinct_per_column = 8;
  config.seed = 123;
  GenerateRows(schema, config, &table);

  QueryCounters counters;
  TempFileManager temp;

  // Producer side: sort once, split by key hash (equal keys co-located).
  BufferScan scan(&schema, &table);
  SortOperator sort(&scan, &counters, &temp, SortConfig());
  SplitExchange split(&sort, kPartitions, SplitExchange::Policy::kHashKey,
                      &counters);

  // Per-partition "workers": in-stream aggregation on each partition.
  // Each worker gets its own counters; the pipelines run concurrently
  // under the merging exchange's producer threads.
  std::vector<QueryCounters> worker_counters(kPartitions);
  std::vector<std::unique_ptr<InStreamAggregate>> workers;
  std::vector<Operator*> worker_outputs;
  for (uint32_t p = 0; p < kPartitions; ++p) {
    workers.push_back(std::make_unique<InStreamAggregate>(
        split.partition(p), /*group_prefix=*/3,
        std::vector<AggregateSpec>{{AggFn::kCount, 0}, {AggFn::kSum, 3}},
        &worker_counters[p]));
    worker_outputs.push_back(workers.back().get());
  }

  // Consumer side: merging exchange re-establishes one global order.
  // NOTE: the partitions share the upstream sort, so the split (not the
  // threads) serializes upstream pulls; the exchange still demonstrates
  // the threaded many-to-one merge.
  MergeExchange::Options options;
  options.threaded = false;  // partitions share the child operator
  MergeExchange merge(worker_outputs, &counters, options);

  merge.Open();
  OvcStreamChecker checker(&merge.schema());
  RowRef ref;
  uint64_t groups = 0, rows = 0;
  bool valid = true;
  while (merge.Next(&ref)) {
    valid = checker.Observe(ref.cols, ref.ovc) && valid;
    ++groups;
    rows += ref.cols[3];
  }
  merge.Close();

  std::printf("input rows:             %lu\n",
              static_cast<unsigned long>(config.rows));
  std::printf("partitions:             %u\n", kPartitions);
  std::printf("merged groups:          %lu (covering %lu rows)\n",
              static_cast<unsigned long>(groups),
              static_cast<unsigned long>(rows));
  std::printf("merged stream valid:    %s (sortedness + codes re-checked "
              "row by row)\n",
              valid ? "yes" : "NO");
  uint64_t worker_cmp = 0;
  for (const auto& c : worker_counters) worker_cmp += c.column_comparisons;
  std::printf("column comparisons:     %lu (sort+split+merge) + %lu "
              "(workers)\n",
              static_cast<unsigned long>(counters.column_comparisons),
              static_cast<unsigned long>(worker_cmp));
  return valid ? 0 : 1;
}
