// Web-analytics style count-distinct: the paper's motivating query shape
//
//   select site, day, count(distinct visitor) from hits group by site, day
//
// executed as the two-step process Section 3 describes: a sort on
// (site, day, visitor) detects duplicate rows "by offsets equal to the
// column count", and the in-stream aggregation afterwards detects group
// boundaries "by offsets smaller than the grouping key" -- both from
// offset-value codes alone.
//
//   ./build/examples/web_analytics

#include <cstdio>

#include "common/counters.h"
#include "common/rng.h"
#include "common/temp_file.h"
#include "exec/aggregate.h"
#include "exec/dedup.h"
#include "exec/scan.h"
#include "exec/sort_operator.h"
#include "row/row_buffer.h"

using namespace ovc;

int main() {
  // hits(site, day, visitor): heavy repetition -- popular sites get many
  // hits from the same visitors on the same days.
  Schema schema(/*key_arity=*/3, /*payload_columns=*/0);
  RowBuffer hits(schema.total_columns());
  Rng rng(7);
  const uint64_t kHits = 2000000;
  for (uint64_t i = 0; i < kHits; ++i) {
    uint64_t* row = hits.AppendRow();
    row[0] = rng.Uniform(50);         // site
    row[1] = rng.Uniform(30);         // day
    row[2] = rng.Uniform(2000);       // visitor
  }

  QueryCounters counters;
  TempFileManager temp;

  BufferScan scan(&schema, &hits);
  SortConfig config;
  config.memory_rows = 1 << 17;
  SortOperator sort(&scan, &counters, &temp, config);   // sort (site,day,visitor)
  DedupOperator dedup(&sort);                           // offsets == arity
  InStreamAggregate agg(&dedup, /*group_prefix=*/2,     // offsets < group key
                        {{AggFn::kCount, 0}}, &counters);

  agg.Open();
  RowRef ref;
  uint64_t groups = 0;
  uint64_t max_distinct = 0;
  while (agg.Next(&ref)) {
    ++groups;
    if (ref.cols[2] > max_distinct) max_distinct = ref.cols[2];
  }
  agg.Close();

  std::printf("hits scanned:            %lu\n",
              static_cast<unsigned long>(kHits));
  std::printf("duplicate hits removed:  %lu (detected by code offset alone)\n",
              static_cast<unsigned long>(dedup.duplicates_dropped()));
  std::printf("(site, day) groups:      %lu\n",
              static_cast<unsigned long>(groups));
  std::printf("max distinct visitors:   %lu\n",
              static_cast<unsigned long>(max_distinct));
  std::printf("column comparisons:      %lu\n",
              static_cast<unsigned long>(counters.column_comparisons));
  std::printf("code comparisons:        %lu\n",
              static_cast<unsigned long>(counters.code_comparisons));
  std::printf("merge bypass rows:       %lu\n",
              static_cast<unsigned long>(counters.merge_bypass_rows));
  return 0;
}
