// Web-analytics style count-distinct: the paper's motivating query shape,
// now written as the SQL it always was:
//
//   SELECT site, day, COUNT(DISTINCT visitor) AS visitors
//   FROM hits GROUP BY site, day
//
// The SQL front end lowers this onto the planner as distinct over
// (site, day, visitor) followed by a grouped count, and the
// order-property-aware planner does the rest: the interesting-order pass
// notices the aggregation wants its input sorted on the grouping prefix,
// so the distinct runs *in-sort* (duplicates collapse during run
// generation and merging, "by offsets equal to the column count") and the
// count streams over the coded result, detecting group boundaries "by
// offsets smaller than the grouping key" -- with not a single standalone
// sort in the plan. EXPLAIN shows exactly that.
//
//   ./build/examples/web_analytics

#include <cstdio>

#include "common/rng.h"
#include "row/row_buffer.h"
#include "sql/catalog.h"
#include "sql/session.h"

using namespace ovc;

int main() {
  // hits(site, day, visitor): heavy repetition -- popular sites get many
  // hits from the same visitors on the same days. Built by hand (the
  // per-column distributions differ) and registered with the catalog;
  // RegisterGenerated would be the one-liner for uniform columns.
  Schema schema(/*key_arity=*/3, /*payload_columns=*/0);
  RowBuffer hits(schema.total_columns());
  Rng rng(7);
  const uint64_t kHits = 2000000;
  for (uint64_t i = 0; i < kHits; ++i) {
    uint64_t* row = hits.AppendRow();
    row[0] = rng.Uniform(50);    // site
    row[1] = rng.Uniform(30);    // day
    row[2] = rng.Uniform(2000);  // visitor
  }

  sql::Catalog catalog;
  OVC_CHECK_OK(catalog.Register(
      plan::BufferSource("hits", &schema, &hits), {"site", "day", "visitor"}));

  sql::SqlSession::Options options;
  options.planner.sort_config.memory_rows = 1 << 17;
  sql::SqlSession session(&catalog, options);

  const char kQuery[] =
      "SELECT site, day, COUNT(DISTINCT visitor) AS visitors "
      "FROM hits GROUP BY site, day";

  auto explain = session.Explain(kQuery);
  OVC_CHECK(explain.ok());
  std::printf("physical plan:\n%s\n", explain.value().c_str());

  auto result = session.Run(kQuery);
  OVC_CHECK(result.ok());
  const RowBuffer& rows = result.value().result.rows;

  uint64_t max_distinct = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows.row(i)[2] > max_distinct) max_distinct = rows.row(i)[2];
  }

  const QueryCounters& counters = *session.counters();
  std::printf("hits scanned:            %lu\n",
              static_cast<unsigned long>(kHits));
  std::printf("(site, day) groups:      %lu\n",
              static_cast<unsigned long>(rows.size()));
  std::printf("max distinct visitors:   %lu\n",
              static_cast<unsigned long>(max_distinct));
  std::printf("column comparisons:      %lu\n",
              static_cast<unsigned long>(counters.column_comparisons));
  std::printf("code comparisons:        %lu\n",
              static_cast<unsigned long>(counters.code_comparisons));
  std::printf("merge bypass rows:       %lu\n",
              static_cast<unsigned long>(counters.merge_bypass_rows));
  return 0;
}
