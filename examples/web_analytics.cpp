// Web-analytics style count-distinct: the paper's motivating query shape
//
//   select site, day, count(distinct visitor) from hits group by site, day
//
// expressed as a logical plan -- distinct over (site, day, visitor), then
// group by (site, day) -- and left to the order-property-aware planner.
// The interesting-order pass notices that the aggregation wants its input
// sorted on the grouping prefix, so the distinct below runs *in-sort*
// (duplicates collapse during run generation and merging, "by offsets
// equal to the column count") and the aggregation streams over the coded
// result, detecting group boundaries "by offsets smaller than the grouping
// key" -- with not a single standalone sort in the plan.
//
//   ./build/examples/web_analytics

#include <cstdio>

#include "common/counters.h"
#include "common/rng.h"
#include "common/temp_file.h"
#include "plan/logical_plan.h"
#include "plan/plan_executor.h"
#include "row/row_buffer.h"

using namespace ovc;

int main() {
  // hits(site, day, visitor): heavy repetition -- popular sites get many
  // hits from the same visitors on the same days.
  Schema schema(/*key_arity=*/3, /*payload_columns=*/0);
  RowBuffer hits(schema.total_columns());
  Rng rng(7);
  const uint64_t kHits = 2000000;
  for (uint64_t i = 0; i < kHits; ++i) {
    uint64_t* row = hits.AppendRow();
    row[0] = rng.Uniform(50);         // site
    row[1] = rng.Uniform(30);         // day
    row[2] = rng.Uniform(2000);       // visitor
  }

  QueryCounters counters;
  TempFileManager temp;

  auto logical = plan::PlanBuilder::Scan(
                     plan::BufferSource("hits", &schema, &hits))
                     .Distinct()                       // offsets == arity
                     .Aggregate(/*group_prefix=*/2,    // offsets < group key
                                {{AggFn::kCount, 0}})
                     .Build();

  plan::PlanExecutor::Options options;
  options.planner.sort_config.memory_rows = 1 << 17;
  plan::PlanExecutor executor(&counters, &temp, options);

  plan::ExecutionResult result = executor.Run(logical.get());
  std::printf("physical plan:\n%s\n",
              executor.last_plan()->ToString().c_str());

  uint64_t max_distinct = 0;
  for (size_t i = 0; i < result.rows.size(); ++i) {
    const uint64_t* row = result.rows.row(i);
    if (row[2] > max_distinct) max_distinct = row[2];
  }

  std::printf("hits scanned:            %lu\n",
              static_cast<unsigned long>(kHits));
  std::printf("(site, day) groups:      %lu\n",
              static_cast<unsigned long>(result.row_count()));
  std::printf("max distinct visitors:   %lu\n",
              static_cast<unsigned long>(max_distinct));
  std::printf("standalone sorts:        %lu (distinct folded into the sort)\n",
              static_cast<unsigned long>(
                  executor.last_plan()->inserted_sorts() +
                  executor.last_plan()->explicit_sorts()));
  std::printf("column comparisons:      %lu\n",
              static_cast<unsigned long>(counters.column_comparisons));
  std::printf("code comparisons:        %lu\n",
              static_cast<unsigned long>(counters.code_comparisons));
  std::printf("merge bypass rows:       %lu\n",
              static_cast<unsigned long>(counters.merge_bypass_rows));
  return 0;
}
