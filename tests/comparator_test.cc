// Row substrate: schema, buffers, counting comparators, generators.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/temp_file.h"
#include "row/comparator.h"
#include "row/generator.h"
#include "row/row_buffer.h"
#include "row/schema.h"
#include "test_util.h"

namespace ovc {
namespace {

using ::ovc::testing::AppendRows;
using ::ovc::testing::MakeTable;

TEST(Schema, LayoutAndNormalization) {
  Schema schema({SortDirection::kAscending, SortDirection::kDescending}, 3);
  EXPECT_EQ(schema.key_arity(), 2u);
  EXPECT_EQ(schema.payload_columns(), 3u);
  EXPECT_EQ(schema.total_columns(), 5u);
  EXPECT_FALSE(schema.all_ascending());
  EXPECT_EQ(schema.Normalize(0, 42), 42u);
  EXPECT_EQ(schema.Normalize(1, 42), ~uint64_t{42});
  EXPECT_EQ(schema.Denormalize(1, schema.Normalize(1, 42)), 42u);
  EXPECT_EQ(schema.ToString(), "key(asc,desc)+payload(3)");
}

TEST(Schema, Equality) {
  EXPECT_TRUE(Schema(3, 1) == Schema(3, 1));
  EXPECT_FALSE(Schema(3, 1) == Schema(3, 2));
  EXPECT_FALSE(Schema(3, 1) == Schema(2, 1));
  EXPECT_FALSE((Schema({SortDirection::kDescending}, 1) == Schema(1, 1)));
}

TEST(RowBuffer, AppendAndAccess) {
  RowBuffer buffer(3);
  EXPECT_TRUE(buffer.empty());
  uint64_t r1[3] = {1, 2, 3};
  buffer.AppendRow(r1);
  uint64_t* r2 = buffer.AppendRow();
  r2[0] = 4;
  r2[1] = 5;
  r2[2] = 6;
  ASSERT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.row(0)[2], 3u);
  EXPECT_EQ(buffer.row(1)[0], 4u);
  buffer.Clear();
  EXPECT_TRUE(buffer.empty());
}

TEST(KeyComparator, CountsColumnComparisons) {
  Schema schema(4, 1);
  QueryCounters counters;
  KeyComparator cmp(&schema, &counters);
  const uint64_t a[5] = {1, 2, 3, 4, 99};
  const uint64_t b[5] = {1, 2, 9, 9, 99};
  EXPECT_LT(cmp.Compare(a, b), 0);
  // Stops at the first difference: columns 0, 1, 2 inspected.
  EXPECT_EQ(counters.column_comparisons, 3u);
  EXPECT_EQ(counters.row_comparisons, 1u);
  counters.Reset();
  EXPECT_EQ(cmp.FirstDifference(a, b, 1), 2u);
  EXPECT_EQ(counters.column_comparisons, 2u);
  counters.Reset();
  EXPECT_EQ(cmp.FirstDifference(a, a, 0), 4u);  // equal keys
  EXPECT_EQ(counters.column_comparisons, 4u);
  // Payload column never inspected.
}

TEST(KeyComparator, DescendingColumns) {
  Schema schema({SortDirection::kDescending}, 0);
  KeyComparator cmp(&schema, nullptr);
  const uint64_t a[1] = {10};
  const uint64_t b[1] = {20};
  // Descending: 20 sorts before 10.
  EXPECT_GT(cmp.Compare(a, b), 0);
}

TEST(Generator, DeterministicAndShaped) {
  Schema schema(3, 1);
  RowBuffer t1 = MakeTable(schema, 500, 4, /*seed=*/11);
  RowBuffer t2 = MakeTable(schema, 500, 4, /*seed=*/11);
  ASSERT_EQ(t1.size(), t2.size());
  for (size_t i = 0; i < t1.size(); ++i) {
    for (uint32_t c = 0; c < schema.total_columns(); ++c) {
      ASSERT_EQ(t1.row(i)[c], t2.row(i)[c]) << i << "," << c;
    }
  }
  // Few distinct values per key column.
  for (size_t i = 0; i < t1.size(); ++i) {
    for (uint32_t c = 0; c < 3; ++c) {
      EXPECT_LT(t1.row(i)[c], 4u);
    }
  }
  // Payload is the row number.
  EXPECT_EQ(t1.row(42)[3], 42u);
}

TEST(Generator, SortedOutputIsSorted) {
  Schema schema(4);
  RowBuffer t = MakeTable(schema, 300, 3, /*seed=*/5, /*sorted=*/true);
  KeyComparator cmp(&schema, nullptr);
  for (size_t i = 1; i < t.size(); ++i) {
    EXPECT_LE(cmp.Compare(t.row(i - 1), t.row(i)), 0) << i;
  }
}

TEST(Generator, GroupedRowsHaveExactRatio) {
  Schema schema(4, 1);
  RowBuffer t(schema.total_columns());
  GenerateGroupedRows(schema, /*groups=*/100, /*rows_per_group=*/7,
                      /*distinct_per_column=*/8, /*seed=*/3, &t);
  ASSERT_EQ(t.size(), 700u);
  KeyComparator cmp(&schema, nullptr);
  uint64_t groups = 1;
  uint64_t current = 1;
  for (size_t i = 1; i < t.size(); ++i) {
    const int c = cmp.Compare(t.row(i - 1), t.row(i));
    ASSERT_LE(c, 0);
    if (c < 0) {
      EXPECT_EQ(current, 7u);
      current = 1;
      ++groups;
    } else {
      ++current;
    }
  }
  EXPECT_EQ(groups, 100u);
}

TEST(Rng, DeterministicStreams) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(a.Uniform(10), 10u);
    const uint64_t v = a.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(TempFiles, WriteReadRoundtrip) {
  TempFileManager temp;
  const std::string path = temp.NewPath("unit");
  FileWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.WriteU64(123456789ull).ok());
  ASSERT_TRUE(writer.WriteU32(42).ok());
  ASSERT_TRUE(writer.Close().ok());

  FileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  uint64_t v64 = 0;
  uint32_t v32 = 0;
  EXPECT_FALSE(reader.AtEof());
  ASSERT_TRUE(reader.ReadU64(&v64).ok());
  ASSERT_TRUE(reader.ReadU32(&v32).ok());
  EXPECT_EQ(v64, 123456789ull);
  EXPECT_EQ(v32, 42u);
  EXPECT_TRUE(reader.AtEof());
  ASSERT_TRUE(reader.Close().ok());
}

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::Ok().ok());
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.ToString(), "IO_ERROR: disk on fire");
  StatusOr<int> good(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);
  StatusOr<int> bad(Status::NotFound("nope"));
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace ovc
