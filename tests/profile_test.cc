// Observability tests: per-operator QueryProfile actuals cross-checked
// against oracle cardinalities at parallelism 1 and 4 (exact roll-up across
// exchange worker threads), timing sanity, JSON profile round-trips, the
// EXPLAIN ANALYZE rendering's stability for a fixed seed, and the
// estimate-versus-actual feedback loop into TableStats.

#include <cctype>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/profile.h"
#include "plan/logical_plan.h"
#include "plan/physical_plan.h"
#include "plan/plan_executor.h"
#include "sql/catalog.h"
#include "sql/session.h"
#include "tests/test_util.h"

namespace ovc {
namespace {

using plan::BufferSource;
using plan::ExecutionResult;
using plan::LogicalNode;
using plan::PhysicalPlan;
using plan::PlanBuilder;
using plan::PlanExecutor;

using ovc::testing::JsonReader;
using ovc::testing::JsonValue;

/// Replaces every millisecond rendering ("12.345ms") with "?ms" -- the same
/// normalization tools/check_docs.sh applies, so EXPLAIN ANALYZE text is
/// comparable across runs.
std::string NormalizeMs(const std::string& text) {
  std::string out;
  size_t i = 0;
  while (i < text.size()) {
    if (std::isdigit(static_cast<unsigned char>(text[i]))) {
      size_t j = i;
      while (j < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[j])) ||
              text[j] == '.')) {
        ++j;
      }
      if (text.compare(j, 2, "ms") == 0) {
        out += "?ms";
        i = j + 2;
        continue;
      }
    }
    out.push_back(text[i++]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// PlanExecutor-level profiles: hand-built join + group-by.
// ---------------------------------------------------------------------------

class ProfileTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kFactRows = 2000;
  static constexpr uint64_t kDimRows = 400;

  ProfileTest()
      : fact_schema_(1, 2),
        dim_schema_(1, 1),
        fact_(testing::MakeTable(fact_schema_, kFactRows, 50, /*seed=*/21)),
        dim_(testing::MakeTable(dim_schema_, kDimRows, 50, /*seed=*/22)) {}

  /// fact JOIN dim on the key column, then COUNT per key -- the acceptance
  /// query shape (join + group-by).
  std::unique_ptr<LogicalNode> BuildJoinAgg() {
    return PlanBuilder::Scan(BufferSource("fact", &fact_schema_, &fact_))
        .Join(PlanBuilder::Scan(BufferSource("dim", &dim_schema_, &dim_)),
              JoinType::kInner)
        .Aggregate(1, {{AggFn::kCount, 0}})
        .Build();
  }

  PlanExecutor::Options MakeOptions(uint32_t parallelism) {
    PlanExecutor::Options options;
    options.validate = true;  // turns on the roll-up self-consistency checks
    options.planner.profile = true;
    options.planner.parallelism = parallelism;
    options.planner.exchange.batch_rows = 128;  // several batches per worker
    return options;
  }

  /// Oracle result: the same logical plan, serial and un-profiled.
  testing::RowVec OracleRows() {
    QueryCounters counters;
    PlanExecutor::Options options;
    options.validate = true;
    PlanExecutor executor(&counters, &temp_, options);
    auto logical = BuildJoinAgg();
    ExecutionResult result = executor.Run(logical.get());
    EXPECT_TRUE(result.ok()) << result.validation_error;
    testing::RowVec rows = testing::ToRowVec(result.rows);
    testing::Canonicalize(&rows);
    return rows;
  }

  Schema fact_schema_;
  Schema dim_schema_;
  RowBuffer fact_;
  RowBuffer dim_;
  TempFileManager temp_;
};

TEST_F(ProfileTest, ActualRowsMatchOracleCardinalities) {
  const testing::RowVec oracle = OracleRows();
  for (uint32_t parallelism : {1u, 4u}) {
    SCOPED_TRACE("parallelism " + std::to_string(parallelism));
    QueryCounters counters;
    PlanExecutor executor(&counters, &temp_, MakeOptions(parallelism));
    auto logical = BuildJoinAgg();
    ExecutionResult result = executor.Run(logical.get());
    ASSERT_TRUE(result.ok()) << result.validation_error;

    testing::RowVec rows = testing::ToRowVec(result.rows);
    testing::Canonicalize(&rows);
    EXPECT_EQ(rows, oracle);

    const QueryProfile* profile = executor.last_plan()->profile();
    ASSERT_NE(profile, nullptr);
    EXPECT_EQ(profile->runs(), 1u);
    // Root actuals equal the materialized result -- even at parallelism 4,
    // where the root's rows pass through the merging exchange.
    EXPECT_EQ(profile->ActualRows(profile->root()), oracle.size());
    // Scan actuals equal the full table cardinalities: the split-exchange
    // partition slices must roll up without losing or double-counting rows.
    for (int i = 0; i < static_cast<int>(profile->nodes().size()); ++i) {
      const QueryProfile::Node& node = profile->nodes()[i];
      if (node.table == "fact") {
        EXPECT_EQ(profile->ActualRows(i), kFactRows);
      } else if (node.table == "dim") {
        EXPECT_EQ(profile->ActualRows(i), kDimRows);
      }
    }
    // With profiling on, *all* operator work is attributed to plan nodes:
    // the per-node totals must reproduce the session counters exactly.
    EXPECT_TRUE(profile->TreeCounterTotals() == counters);
    EXPECT_GT(counters.column_comparisons + counters.code_comparisons, 0u);
  }
}

TEST_F(ProfileTest, RepeatedRunsDoNotDoubleCountActuals) {
  QueryCounters counters;
  PlanExecutor executor(&counters, &temp_, MakeOptions(1));
  auto logical = BuildJoinAgg();
  PhysicalPlan plan = executor.Plan(logical.get(), MakeOptions(1).planner);

  const ExecutionResult first = executor.Run(&plan);
  const uint64_t rows_first = plan.profile()->ActualRows(plan.profile()->root());
  const ExecutionResult second = executor.Run(&plan);
  const uint64_t rows_second =
      plan.profile()->ActualRows(plan.profile()->root());

  // FinishRun resets the slices: the second run's actuals replace the
  // first's instead of accumulating.
  EXPECT_EQ(first.row_count(), second.row_count());
  EXPECT_EQ(rows_first, first.row_count());
  EXPECT_EQ(rows_second, second.row_count());
  EXPECT_EQ(plan.profile()->runs(), 2u);
}

TEST_F(ProfileTest, TimingsAreInclusiveAndBounded) {
  QueryCounters counters;
  PlanExecutor executor(&counters, &temp_, MakeOptions(1));
  auto logical = BuildJoinAgg();
  ExecutionResult result = executor.Run(logical.get());
  ASSERT_TRUE(result.ok()) << result.validation_error;

  const QueryProfile* profile = executor.last_plan()->profile();
  ASSERT_NE(profile, nullptr);
  EXPECT_GT(profile->wall_ns(), 0u);
  // Serial plan: every node's inclusive time is bounded by the run's wall
  // clock (generous slack for tick-rate conversion rounding), and a parent
  // never reports less inclusive time than any child -- the parent's timed
  // window contains the child's. Small inputs keep every wrapper inside
  // the timing warmup, so times here are exact, not sampled.
  const uint64_t slack = profile->wall_ns() / 2 + 2'000'000;
  for (int i = 0; i < static_cast<int>(profile->nodes().size()); ++i) {
    const QueryProfile::Node& node = profile->nodes()[i];
    EXPECT_LE(profile->ActualNs(i), profile->wall_ns() + slack);
    for (int child : node.children) {
      EXPECT_LE(profile->ActualNs(child), profile->ActualNs(i) + slack)
          << "child " << child << " of node " << i;
    }
  }
}

TEST_F(ProfileTest, JsonProfileRoundTrips) {
  for (uint32_t parallelism : {1u, 4u}) {
    SCOPED_TRACE("parallelism " + std::to_string(parallelism));
    QueryCounters counters;
    PlanExecutor executor(&counters, &temp_, MakeOptions(parallelism));
    auto logical = BuildJoinAgg();
    ExecutionResult result = executor.Run(logical.get());
    ASSERT_TRUE(result.ok()) << result.validation_error;
    const QueryProfile* profile = executor.last_plan()->profile();
    ASSERT_NE(profile, nullptr);

    JsonValue root = JsonReader(profile->ToJson()).Parse();
    ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
    EXPECT_DOUBLE_EQ(root.at("runs").number, 1.0);
    EXPECT_NEAR(root.at("wall_ms").number,
                static_cast<double>(profile->wall_ns()) / 1e6, 1e-3);
    EXPECT_NEAR(root.at("worst_q_error").number, profile->WorstQError(),
                1e-3);

    // The JSON plan tree mirrors the profile: same labels, actuals, and
    // counter attribution, node for node.
    uint64_t json_rows_sum = 0;
    uint64_t json_col_cmp_sum = 0;
    int json_nodes = 0;
    const std::function<void(const JsonValue&)> walk =
        [&](const JsonValue& node) {
          ASSERT_EQ(node.kind, JsonValue::Kind::kObject);
          ++json_nodes;
          EXPECT_FALSE(node.at("op").str.empty());
          EXPECT_GE(node.at("q_error").number, 1.0);
          EXPECT_GE(node.at("time_ms").number, 0.0);
          json_rows_sum += static_cast<uint64_t>(node.at("actual_rows").number);
          json_col_cmp_sum += static_cast<uint64_t>(
              node.at("counters").at("column_comparisons").number);
          for (const JsonValue& child : node.at("children").array) {
            walk(child);
          }
        };
    walk(root.at("plan"));

    EXPECT_EQ(json_nodes, static_cast<int>(profile->nodes().size()));
    EXPECT_EQ(json_col_cmp_sum,
              profile->TreeCounterTotals().column_comparisons);
    uint64_t profile_rows_sum = 0;
    for (int i = 0; i < static_cast<int>(profile->nodes().size()); ++i) {
      profile_rows_sum += profile->ActualRows(i);
    }
    EXPECT_EQ(json_rows_sum, profile_rows_sum);

    // The root JSON node is the plan root.
    EXPECT_EQ(static_cast<uint64_t>(root.at("plan").at("actual_rows").number),
              profile->ActualRows(profile->root()));
  }
}

// ---------------------------------------------------------------------------
// SQL-level EXPLAIN ANALYZE and the feedback loop.
// ---------------------------------------------------------------------------

class SqlProfileTest : public ::testing::Test {
 protected:
  void RegisterTables(sql::Catalog* catalog) {
    sql::Catalog::GeneratedSpec spec;
    spec.distinct_per_column = 100;
    spec.seed = 1;
    ASSERT_TRUE(catalog
                    ->RegisterGenerated("lineitem",
                                        {"orderkey", "qty", "price"},
                                        Schema(1, 2), 2000, spec)
                    .ok());
    spec.seed = 2;
    spec.sorted = true;
    ASSERT_TRUE(catalog
                    ->RegisterGenerated("orders", {"orderkey", "custkey"},
                                        Schema(1, 1), 500, spec)
                    .ok());
  }

  sql::SqlSession MakeSession(const sql::Catalog* catalog,
                              uint32_t parallelism) {
    plan::PlanExecutor::Options options;
    options.validate = true;
    options.abort_on_violation = false;
    options.planner.parallelism = parallelism;
    return sql::SqlSession(catalog, options);
  }

  static constexpr const char* kJoinGroupBy =
      "EXPLAIN ANALYZE SELECT l.orderkey, COUNT(*) AS n, SUM(l.qty) AS q "
      "FROM lineitem l JOIN orders o ON l.orderkey = o.orderkey "
      "GROUP BY l.orderkey ORDER BY l.orderkey";
};

TEST_F(SqlProfileTest, ExplainAnalyzeRendersActualsOnEveryLine) {
  for (uint32_t parallelism : {1u, 4u}) {
    SCOPED_TRACE("parallelism " + std::to_string(parallelism));
    sql::Catalog catalog;
    RegisterTables(&catalog);
    sql::SqlSession session = MakeSession(&catalog, parallelism);

    sql::SqlResult<sql::QueryResult> got = session.Run(kJoinGroupBy);
    ASSERT_TRUE(got.ok()) << got.error().Render(kJoinGroupBy);
    const sql::QueryResult& result = got.value();

    // EXPLAIN ANALYZE returns the annotated plan, not rows.
    EXPECT_TRUE(result.is_explain);
    EXPECT_EQ(result.result.row_count(), 0u);
    EXPECT_FALSE(result.profile_json.empty());

    // Every plan line carries rows=est/actual and the counter annotations;
    // the trailer carries wall time and the worst q-error.
    ASSERT_FALSE(result.explain_text.empty());
    size_t lines = 0;
    size_t start = 0;
    while (start < result.explain_text.size()) {
      size_t end = result.explain_text.find('\n', start);
      if (end == std::string::npos) end = result.explain_text.size();
      const std::string line = result.explain_text.substr(start, end - start);
      start = end + 1;
      if (line.empty()) continue;
      ++lines;
      if (line.rfind("--", 0) == 0) {
        EXPECT_NE(line.find("wall="), std::string::npos) << line;
        EXPECT_NE(line.find("worst-q-error="), std::string::npos) << line;
      } else {
        EXPECT_NE(line.find("rows="), std::string::npos) << line;
        EXPECT_NE(line.find("/"), std::string::npos) << line;
        EXPECT_NE(line.find("time="), std::string::npos) << line;
        EXPECT_NE(line.find("cmp="), std::string::npos) << line;
        EXPECT_NE(line.find("spill="), std::string::npos) << line;
      }
    }
    EXPECT_GE(lines, 4u) << result.explain_text;
    if (parallelism == 4) {
      // The parallel shape is profiled too: exchange operators appear as
      // plan lines with their own actuals.
      EXPECT_NE(result.explain_text.find("exchange"), std::string::npos)
          << result.explain_text;
    }
  }
}

TEST_F(SqlProfileTest, ExplainAnalyzeStableForFixedSeed) {
  // Two fresh sessions over identically-seeded catalogs must render the
  // same EXPLAIN ANALYZE text modulo timings -- row counts, counters, and
  // q-errors are all deterministic for a fixed seed.
  std::vector<std::string> normalized;
  for (int attempt = 0; attempt < 2; ++attempt) {
    sql::Catalog catalog;
    RegisterTables(&catalog);
    sql::SqlSession session = MakeSession(&catalog, /*parallelism=*/1);
    sql::SqlResult<sql::QueryResult> got = session.Run(kJoinGroupBy);
    ASSERT_TRUE(got.ok()) << got.error().Render(kJoinGroupBy);
    normalized.push_back(NormalizeMs(got.value().explain_text));
    EXPECT_NE(normalized.back().find("?ms"), std::string::npos);
  }
  EXPECT_EQ(normalized[0], normalized[1]);
}

TEST_F(SqlProfileTest, FeedbackFlowsIntoTableStats) {
  sql::Catalog catalog;
  RegisterTables(&catalog);
  sql::SqlSession session = MakeSession(&catalog, /*parallelism=*/1);

  sql::SqlResult<sql::QueryResult> got = session.Run(kJoinGroupBy);
  ASSERT_TRUE(got.ok()) << got.error().Render(kJoinGroupBy);

  // The profiled run recorded per-table estimate-vs-actual observations.
  const auto& feedback = session.table_feedback();
  ASSERT_TRUE(feedback.count("lineitem")) << feedback.size();
  ASSERT_TRUE(feedback.count("orders"));
  EXPECT_DOUBLE_EQ(feedback.at("lineitem").actual_rows, 2000.0);
  EXPECT_DOUBLE_EQ(feedback.at("orders").actual_rows, 500.0);
  EXPECT_GE(feedback.at("lineitem").q_error, 1.0);
  EXPECT_EQ(feedback.at("lineitem").runs, 1u);

  // ApplyFeedbackTo writes the observations into the catalog's TableStats
  // for later planning sessions.
  session.ApplyFeedbackTo(&catalog);
  const sql::CatalogTable* lineitem = catalog.Find("lineitem");
  ASSERT_NE(lineitem, nullptr);
  EXPECT_DOUBLE_EQ(lineitem->source.stats.observed_rows, 2000.0);
  EXPECT_EQ(lineitem->source.stats.feedback_runs, 1u);
}

TEST_F(SqlProfileTest, FeedbackFlipsJoinFromGraceHashToMergeAfterOneRun) {
  // The planner-consumes-feedback loop, end to end: the catalog lies that
  // both join inputs are tiny, so the cost-based planner picks grace hash
  // under a 64-row budget. The first (profiled) run overflows mid-query --
  // graceful degradation finishes it via the sort-merge fallback -- and
  // its observed cardinalities, fed back into the catalog, flip the very
  // next plan to sort + merge join.
  // Both inputs unsorted (a sorted input would make merge join nearly
  // free and decide the race by itself), both claiming 50 rows.
  sql::Catalog catalog;
  sql::Catalog::GeneratedSpec spec;
  spec.distinct_per_column = 100;
  spec.seed = 31;
  ASSERT_TRUE(catalog
                  .RegisterGenerated("lineitem", {"orderkey", "qty"},
                                     Schema(1, 1), 2000, spec)
                  .ok());
  spec.seed = 32;
  ASSERT_TRUE(catalog
                  .RegisterGenerated("orders", {"orderkey", "custkey"},
                                     Schema(1, 1), 500, spec)
                  .ok());
  for (const char* name : {"lineitem", "orders"}) {
    sql::CatalogTable* table = catalog.FindMutable(name);
    ASSERT_NE(table, nullptr);
    table->source.stats.row_count = 50;
    table->source.stats.row_count_known = true;
    table->source.stats.key_distinct.clear();
  }

  plan::PlanExecutor::Options options;
  options.validate = true;
  options.abort_on_violation = false;
  options.planner.hash_memory_rows = 64;
  sql::SqlSession session(&catalog, options);

  const std::string query =
      "SELECT l.orderkey, o.custkey FROM lineitem l "
      "JOIN orders o ON l.orderkey = o.orderkey";

  // Mis-estimated plan: hash join, believing both sides fit the budget.
  sql::SqlResult<std::string> before = session.Explain(query);
  ASSERT_TRUE(before.ok());
  EXPECT_NE(before.value().find("hash-join(grace)"), std::string::npos)
      << before.value();

  // The profiled run overflows the 64-row build budget and completes via
  // the mid-query fallback.
  sql::SqlResult<sql::QueryResult> run =
      session.Run("EXPLAIN ANALYZE " + query);
  ASSERT_TRUE(run.ok()) << run.error().ToString();
  EXPECT_GE(session.counters()->hash_join_fallbacks, 1u);
  EXPECT_NE(run.value().explain_text.find("!fallback(hash->sort)"),
            std::string::npos)
      << run.value().explain_text;

  // Feed the observed cardinalities back; the next plan avoids the hash
  // join entirely.
  session.ApplyFeedbackTo(&catalog);
  sql::SqlResult<std::string> after = session.Explain(query);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after.value().find("merge-join"), std::string::npos)
      << after.value();
  EXPECT_EQ(after.value().find("hash-join(grace)"), std::string::npos)
      << after.value();
}

}  // namespace
}  // namespace ovc
