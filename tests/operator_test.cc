// Unary order-preserving operators: filter (Table 3), projection, duplicate
// removal, grouping/aggregation (Figure 4 semantics), pivot.

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "exec/aggregate.h"
#include "exec/dedup.h"
#include "exec/filter.h"
#include "exec/pivot.h"
#include "exec/project.h"
#include "exec/scan.h"
#include "exec/sort_operator.h"
#include "test_util.h"

namespace ovc {
namespace {

using ::ovc::testing::AppendRows;
using ::ovc::testing::Canonicalize;
using ::ovc::testing::DrainValidated;
using ::ovc::testing::MakeTable;
using ::ovc::testing::RowVec;
using ::ovc::testing::RunFromSorted;

TEST(Filter, Table3Golden) {
  // Table 3: of Table 1's rows, only the first and last pass the filter;
  // the survivors' codes are exactly the table's 405 and 309.
  Schema schema(4);
  RowBuffer rows(4);
  AppendRows(&rows, {
                        {5, 7, 3, 9},
                        {5, 7, 3, 12},
                        {5, 8, 4, 6},
                        {5, 9, 2, 7},
                        {5, 9, 2, 7},
                        {5, 9, 3, 4},
                        {5, 9, 3, 7},
                    });
  InMemoryRun run = RunFromSorted(schema, rows);
  RunScan scan(&schema, &run);
  uint64_t index = 0;
  FilterOperator filter(&scan, [&index](const uint64_t*) {
    return index++ == 0 || index == 7;  // keep rows 0 and 6
  });
  OvcCodec codec(&schema);
  filter.Open();
  RowRef ref;
  ASSERT_TRUE(filter.Next(&ref));
  EXPECT_EQ(ref.cols[3], 9u);
  EXPECT_EQ(codec.OffsetOf(ref.ovc), 0u);  // "4 5 405": arity-offset 4
  EXPECT_EQ(OvcCodec::ValueOf(ref.ovc), 5u);
  ASSERT_TRUE(filter.Next(&ref));
  EXPECT_EQ(ref.cols[1], 9u);
  EXPECT_EQ(codec.OffsetOf(ref.ovc), 1u);  // "3 9 309": arity-offset 3
  EXPECT_EQ(OvcCodec::ValueOf(ref.ovc), 9u);
  EXPECT_FALSE(filter.Next(&ref));
  filter.Close();
}

struct FilterParam {
  uint64_t rows;
  uint64_t distinct;
  uint64_t keep_modulus;  // keep rows whose payload % modulus == 0
};

class FilterPropertyTest : public ::testing::TestWithParam<FilterParam> {};

TEST_P(FilterPropertyTest, OutputCodesValidAndNoComparisons) {
  const auto p = GetParam();
  Schema schema(4, 1);
  RowBuffer table =
      MakeTable(schema, p.rows, p.distinct, /*seed=*/p.rows, /*sorted=*/true);
  InMemoryRun run = RunFromSorted(schema, table);
  RunScan scan(&schema, &run);
  QueryCounters counters;
  FilterOperator filter(&scan, [&p](const uint64_t* row) {
    return row[4] % p.keep_modulus == 0;
  });
  RowVec out = DrainValidated(&filter);
  uint64_t expected = 0;
  for (size_t i = 0; i < table.size(); ++i) {
    if (table.row(i)[4] % p.keep_modulus == 0) ++expected;
  }
  EXPECT_EQ(out.size(), expected);
  // Deriving output codes costs zero column comparisons.
  EXPECT_EQ(counters.column_comparisons, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FilterPropertyTest,
    ::testing::Values(FilterParam{1000, 3, 2}, FilterParam{1000, 3, 7},
                      FilterParam{1000, 2, 1000}, FilterParam{500, 100, 3},
                      FilterParam{1000, 3, 1}),
    [](const ::testing::TestParamInfo<FilterParam>& info) {
      return "rows" + std::to_string(info.param.rows) + "_mod" +
             std::to_string(info.param.keep_modulus);
    });

TEST(Project, KeyPrefixSurvivesWithClampedCodes) {
  Schema in(4, 1);
  RowBuffer table = MakeTable(in, 800, 3, /*seed=*/8, /*sorted=*/true);
  InMemoryRun run = RunFromSorted(in, table);
  RunScan scan(&in, &run);
  // Keep key columns 0,1 and the payload.
  Schema out(2, 1);
  ProjectOperator project(&scan, out, {0, 1, 4});
  EXPECT_TRUE(project.sorted());
  EXPECT_TRUE(project.has_ovc());
  RowVec got = DrainValidated(&project);
  EXPECT_EQ(got.size(), table.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i][2], table.row(i)[4]);
  }
}

TEST(Project, NonPrefixProjectionLosesOrder) {
  Schema in(4, 0);
  RowBuffer table = MakeTable(in, 100, 3, /*seed=*/9, /*sorted=*/true);
  InMemoryRun run = RunFromSorted(in, table);
  RunScan scan(&in, &run);
  Schema out(2, 0);
  ProjectOperator project(&scan, out, {2, 3});  // not a key prefix
  EXPECT_FALSE(project.sorted());
  EXPECT_FALSE(project.has_ovc());
  RowVec got = DrainValidated(&project, /*check_codes=*/false);
  EXPECT_EQ(got.size(), table.size());
}

TEST(Dedup, RemovesExactKeyDuplicatesCodeOnly) {
  Schema schema(3);
  RowBuffer table = MakeTable(schema, 2000, 2, /*seed=*/4, /*sorted=*/true);
  InMemoryRun run = RunFromSorted(schema, table);
  RunScan scan(&schema, &run);
  QueryCounters counters;
  DedupOperator dedup(&scan);
  RowVec out = DrainValidated(&dedup);
  // Reference: distinct keys.
  RowVec expected = ::ovc::testing::ToRowVec(table);
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  EXPECT_EQ(out, expected);
  EXPECT_EQ(dedup.duplicates_dropped(), table.size() - out.size());
  EXPECT_EQ(counters.column_comparisons, 0u);
  // With domain 2 and 2000 rows there must be duplicates.
  EXPECT_GT(dedup.duplicates_dropped(), 0u);
}

struct AggParam {
  uint64_t groups;
  uint64_t rows_per_group;
  bool use_ovc_boundaries;
};

class AggregateTest : public ::testing::TestWithParam<AggParam> {};

TEST_P(AggregateTest, GroupsAndAggregatesMatchReference) {
  const auto p = GetParam();
  Schema schema(4, 1);
  RowBuffer table(schema.total_columns());
  GenerateGroupedRows(schema, p.groups, p.rows_per_group,
                      /*distinct_per_column=*/6, /*seed=*/p.groups, &table);
  InMemoryRun run = RunFromSorted(schema, table);
  RunScan scan(&schema, &run);

  QueryCounters counters;
  InStreamAggregate::Options options;
  options.use_ovc_boundaries = p.use_ovc_boundaries;
  InStreamAggregate agg(
      &scan, /*group_prefix=*/4,
      {{AggFn::kCount, 0}, {AggFn::kSum, 4}, {AggFn::kMin, 4},
       {AggFn::kMax, 4}},
      &counters, options);
  RowVec out = DrainValidated(&agg, /*check_codes=*/true);
  ASSERT_EQ(out.size(), p.groups);
  for (const auto& row : out) {
    EXPECT_EQ(row[4], p.rows_per_group);          // count
    EXPECT_EQ(row[6], row[7] - p.rows_per_group + 1)  // min = max-(n-1):
        << "payload is a running row number within the generator";
    EXPECT_EQ(row[5],
              (row[6] + row[7]) * p.rows_per_group / 2);  // sum of range
  }
  if (p.use_ovc_boundaries) {
    // Boundary detection costs no column comparisons.
    EXPECT_EQ(counters.column_comparisons, 0u);
  } else if (p.groups * p.rows_per_group > p.groups) {
    EXPECT_GT(counters.column_comparisons, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AggregateTest,
    ::testing::Values(AggParam{50, 1, true}, AggParam{50, 20, true},
                      AggParam{1, 100, true}, AggParam{200, 3, true},
                      AggParam{50, 20, false}, AggParam{200, 3, false}),
    [](const ::testing::TestParamInfo<AggParam>& info) {
      return "groups" + std::to_string(info.param.groups) + "_size" +
             std::to_string(info.param.rows_per_group) +
             (info.param.use_ovc_boundaries ? "_ovc" : "_baseline");
    });

TEST(Aggregate, GroupPrefixShorterThanKey) {
  // Group on a prefix of the sort key; output codes clamp to the prefix.
  Schema schema(4);
  RowBuffer table = MakeTable(schema, 1000, 3, /*seed=*/6, /*sorted=*/true);
  InMemoryRun run = RunFromSorted(schema, table);
  RunScan scan(&schema, &run);
  QueryCounters counters;
  InStreamAggregate agg(&scan, /*group_prefix=*/2, {{AggFn::kCount, 0}},
                        &counters);
  RowVec out = DrainValidated(&agg);
  // Reference group count.
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> reference;
  for (size_t i = 0; i < table.size(); ++i) {
    ++reference[{table.row(i)[0], table.row(i)[1]}];
  }
  ASSERT_EQ(out.size(), reference.size());
  for (const auto& row : out) {
    EXPECT_EQ(row[2], (reference[{row[0], row[1]}]));
  }
  EXPECT_EQ(counters.column_comparisons, 0u);
}

TEST(Pivot, RowsToColumns) {
  // (year, month, sales) -> (year, jan..apr sales).
  Schema schema(2, 1);  // keys: year, month; payload: sales
  RowBuffer table(3);
  AppendRows(&table, {
                         {2020, 1, 10},
                         {2020, 1, 5},
                         {2020, 3, 7},
                         {2021, 2, 20},
                         {2021, 4, 9},
                         {2021, 9, 99},  // unknown tag: ignored
                     });
  InMemoryRun run = RunFromSorted(schema, table);
  RunScan scan(&schema, &run);
  PivotOperator pivot(&scan, /*group_prefix=*/1, /*tag_col=*/1,
                      /*value_col=*/2, {1, 2, 3, 4});
  RowVec out = DrainValidated(&pivot);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (::ovc::testing::Row({2020, 15, 0, 7, 0})));
  EXPECT_EQ(out[1], (::ovc::testing::Row({2021, 0, 20, 0, 9})));
}

TEST(SortOperator, EndToEndWithScan) {
  Schema schema(3, 1);
  RowBuffer table = MakeTable(schema, 3000, 4, /*seed=*/12);
  BufferScan scan(&schema, &table);
  QueryCounters counters;
  TempFileManager temp;
  SortConfig config;
  config.memory_rows = 256;
  SortOperator sort(&scan, &counters, &temp, config);
  RowVec out = DrainValidated(&sort);
  RowVec expected = ::ovc::testing::ReferenceSort(schema, table);
  Canonicalize(&out);
  Canonicalize(&expected);
  EXPECT_EQ(out, expected);
  EXPECT_GT(sort.spilled_runs(), 0u);
}

}  // namespace
}  // namespace ovc
