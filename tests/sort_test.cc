// External merge sort: run files, all run-generation modes, spilling and
// merge cascading, replacement selection, segmented sort.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ovc_checker.h"
#include "sort/external_sort.h"
#include "sort/run_file.h"
#include "sort/run_generation.h"
#include "sort/segmented_sort.h"
#include "test_util.h"

namespace ovc {
namespace {

using ::ovc::testing::Canonicalize;
using ::ovc::testing::MakeTable;
using ::ovc::testing::ReferenceSort;
using ::ovc::testing::RowVec;
using ::ovc::testing::ToRowVec;

TEST(RunFile, RoundtripPreservesRowsAndCodes) {
  Schema schema(3, 2);
  OvcCodec codec(&schema);
  KeyComparator cmp(&schema, nullptr);
  TempFileManager temp;
  QueryCounters counters;
  RowBuffer table = MakeTable(schema, 300, 3, /*seed=*/1, /*sorted=*/true);

  RunFileWriter writer(&schema, &counters);
  const std::string path = temp.NewPath("run");
  ASSERT_TRUE(writer.Open(path).ok());
  std::vector<Ovc> codes;
  for (size_t i = 0; i < table.size(); ++i) {
    Ovc code = i == 0 ? codec.MakeInitial(table.row(i))
                      : codec.MakeFromRow(
                            table.row(i),
                            cmp.FirstDifference(table.row(i - 1), table.row(i),
                                                0));
    codes.push_back(code);
    ASSERT_TRUE(writer.Append(table.row(i), code).ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_EQ(writer.rows(), 300u);
  EXPECT_EQ(counters.rows_spilled, 300u);
  // Prefix truncation: strictly fewer bytes than full rows.
  EXPECT_LT(counters.bytes_spilled,
            300 * (schema.total_columns() * 8 + 2));

  RunFileReader reader(&schema);
  ASSERT_TRUE(reader.Open(path).ok());
  const uint64_t* row = nullptr;
  Ovc code = 0;
  for (size_t i = 0; i < table.size(); ++i) {
    ASSERT_TRUE(reader.Next(&row, &code)) << i;
    for (uint32_t c = 0; c < schema.total_columns(); ++c) {
      ASSERT_EQ(row[c], table.row(i)[c]) << i << "," << c;
    }
    ASSERT_EQ(code, codes[i]) << i;
  }
  EXPECT_FALSE(reader.Next(&row, &code));
}

struct ExternalSortParam {
  RunGenMode mode;
  bool replacement_selection;
  bool use_ovc;
  uint64_t rows;
  uint64_t memory_rows;
  uint32_t fan_in;
  const char* name;
};

class ExternalSortTest : public ::testing::TestWithParam<ExternalSortParam> {};

TEST_P(ExternalSortTest, SortsCorrectly) {
  const auto p = GetParam();
  Schema schema(4, 1);
  QueryCounters counters;
  TempFileManager temp;
  RowBuffer table = MakeTable(schema, p.rows, 4, /*seed=*/p.rows);

  SortConfig config;
  config.memory_rows = p.memory_rows;
  config.fan_in = p.fan_in;
  config.run_gen = p.mode;
  config.replacement_selection = p.replacement_selection;
  config.use_ovc = p.use_ovc;
  config.naive_output_codes = !p.use_ovc;  // codes still wanted for checking

  ExternalSort sort(&schema, &counters, &temp, config);
  for (size_t i = 0; i < table.size(); ++i) {
    sort.Add(table.row(i));
  }
  ASSERT_TRUE(sort.Finish().ok());

  OvcStreamChecker checker(&schema);
  RowVec out;
  RowRef ref;
  while (sort.Next(&ref)) {
    out.emplace_back(ref.cols, ref.cols + schema.total_columns());
    ASSERT_TRUE(checker.Observe(ref.cols, ref.ovc)) << checker.error();
  }
  RowVec expected = ReferenceSort(schema, table);
  Canonicalize(&out);
  Canonicalize(&expected);
  EXPECT_EQ(out, expected);

  if (p.use_ovc && p.mode != RunGenMode::kStdSort) {
    // Column comparisons across run generation and all merge levels stay
    // within N x K per processed level; with at most 2 extra levels this is
    // a loose but meaningful ceiling. (kStdSort is the baseline that
    // deliberately breaks this bound: N log N row comparisons.)
    const uint64_t levels = 2 + sort.intermediate_merge_levels();
    EXPECT_LE(counters.column_comparisons,
              p.rows * schema.key_arity() * levels);
  }
  if (p.rows > p.memory_rows) {
    EXPECT_GT(sort.spilled_runs(), 0u);
  } else if (!p.replacement_selection) {
    EXPECT_EQ(sort.spilled_runs(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ExternalSortTest,
    ::testing::Values(
        ExternalSortParam{RunGenMode::kPqSingleRowRuns, false, true, 5000, 512,
                          8, "pq_spill"},
        ExternalSortParam{RunGenMode::kPqSingleRowRuns, false, true, 400, 512,
                          8, "pq_memory"},
        ExternalSortParam{RunGenMode::kPqMiniRuns, false, true, 5000, 512, 8,
                          "mini_spill"},
        ExternalSortParam{RunGenMode::kStdSort, false, true, 5000, 512, 8,
                          "std_spill"},
        ExternalSortParam{RunGenMode::kPqSingleRowRuns, false, true, 9000, 256,
                          4, "cascade"},
        ExternalSortParam{RunGenMode::kPqSingleRowRuns, true, true, 5000, 512,
                          8, "replacement"},
        ExternalSortParam{RunGenMode::kPqSingleRowRuns, true, true, 12000, 128,
                          4, "replacement_cascade"},
        ExternalSortParam{RunGenMode::kPqSingleRowRuns, false, false, 5000,
                          512, 8, "plain_spill"},
        ExternalSortParam{RunGenMode::kPqMiniRuns, false, false, 3000, 512, 8,
                          "plain_mini"}),
    [](const ::testing::TestParamInfo<ExternalSortParam>& info) {
      return info.param.name;
    });

TEST(ExternalSort, EmptyInput) {
  Schema schema(2);
  TempFileManager temp;
  ExternalSort sort(&schema, nullptr, &temp, SortConfig());
  ASSERT_TRUE(sort.Finish().ok());
  RowRef ref;
  EXPECT_FALSE(sort.Next(&ref));
}

TEST(ExternalSort, PresortedInputHasMinimalComparisons) {
  // Sorting an already sorted input with OVC: each row loses only against
  // its neighbors; comparisons stay well under N x K even during run
  // generation plus merging.
  Schema schema(4);
  QueryCounters counters;
  TempFileManager temp;
  RowBuffer table = MakeTable(schema, 4000, 3, /*seed=*/2, /*sorted=*/true);
  SortConfig config;
  config.memory_rows = 500;
  ExternalSort sort(&schema, &counters, &temp, config);
  for (size_t i = 0; i < table.size(); ++i) sort.Add(table.row(i));
  ASSERT_TRUE(sort.Finish().ok());
  RowRef ref;
  uint64_t n = 0;
  while (sort.Next(&ref)) ++n;
  EXPECT_EQ(n, 4000u);
  EXPECT_LE(counters.column_comparisons, 2 * 4000u * schema.key_arity());
}

TEST(ReplacementSelection, RunsLongerThanMemory) {
  // Random input: expected run length ~ 2x memory.
  Schema schema(3);
  QueryCounters counters;
  TempFileManager temp;
  ReplacementSelection rs(&schema, &counters, &temp, /*capacity=*/256);
  RowBuffer table = MakeTable(schema, 10000, 50, /*seed=*/77);
  for (size_t i = 0; i < table.size(); ++i) {
    ASSERT_TRUE(rs.Add(table.row(i)).ok());
  }
  ASSERT_TRUE(rs.Finish().ok());
  std::vector<SpilledRun> runs = rs.TakeRuns();
  ASSERT_FALSE(runs.empty());
  uint64_t total = 0;
  for (const SpilledRun& run : runs) total += run.rows;
  EXPECT_EQ(total, 10000u);
  const double avg = static_cast<double>(total) / runs.size();
  EXPECT_GT(avg, 256 * 1.5) << "replacement selection should produce runs "
                               "substantially longer than memory";

  // Every run is itself a valid sorted coded stream.
  for (const SpilledRun& run : runs) {
    RunFileReader reader(&schema);
    ASSERT_TRUE(reader.Open(run.path).ok());
    OvcStreamChecker checker(&schema);
    const uint64_t* row = nullptr;
    Ovc code = 0;
    while (reader.Next(&row, &code)) {
      ASSERT_TRUE(checker.Observe(row, code)) << checker.error();
    }
  }
}

TEST(ReplacementSelection, SortedInputYieldsSingleRun) {
  Schema schema(3);
  TempFileManager temp;
  ReplacementSelection rs(&schema, nullptr, &temp, /*capacity=*/64);
  RowBuffer table = MakeTable(schema, 5000, 10, /*seed=*/3, /*sorted=*/true);
  for (size_t i = 0; i < table.size(); ++i) {
    ASSERT_TRUE(rs.Add(table.row(i)).ok());
  }
  ASSERT_TRUE(rs.Finish().ok());
  EXPECT_EQ(rs.run_count(), 1u);
}

TEST(ReplacementSelection, BaseTagFallbacksAmortize) {
  // The guarded comparisons (different base tags -> full key comparison)
  // must stay rare: well below one per input row.
  Schema schema(4);
  QueryCounters counters;
  TempFileManager temp;
  ReplacementSelection rs(&schema, &counters, &temp, /*capacity=*/512);
  RowBuffer table = MakeTable(schema, 20000, 8, /*seed=*/5);
  for (size_t i = 0; i < table.size(); ++i) {
    ASSERT_TRUE(rs.Add(table.row(i)).ok());
  }
  ASSERT_TRUE(rs.Finish().ok());
  // row_comparisons counts: 1 per input row (run assignment) + fallbacks +
  // re-derivations. Allow 1.5x as the amortized ceiling.
  EXPECT_LE(counters.row_comparisons, 20000u * 3 / 2);
}

struct SegmentedParam {
  uint32_t arity;
  uint32_t prefix;
  uint64_t rows;
  uint64_t distinct;
};

class SegmentedSortTest : public ::testing::TestWithParam<SegmentedParam> {};

TEST_P(SegmentedSortTest, EquivalentToFullSort) {
  const auto p = GetParam();
  Schema schema(p.arity, 1);
  QueryCounters counters;
  TempFileManager temp;
  // Input sorted on the full key of a *different* suffix: emulate "sorted
  // on (A,B), wanted on (A,C)" by sorting on the schema key, then shuffling
  // the suffix within segments. Simplest valid input: sorted on the
  // segmentation prefix only, arbitrary within segments.
  RowBuffer table = MakeTable(schema, p.rows, p.distinct, /*seed=*/p.rows);
  Schema prefix_schema(p.prefix, schema.total_columns() - p.prefix);
  SortRowsForTest(prefix_schema, &table);

  // Build the input stream with codes valid for the prefix: derive codes
  // over the prefix-sorted order using full-key arity but offsets within
  // the prefix where rows disagree there.
  OvcCodec codec(&schema);
  KeyComparator cmp(&schema, nullptr);
  InMemoryRun run(schema.total_columns());
  for (size_t i = 0; i < table.size(); ++i) {
    Ovc code;
    if (i == 0) {
      code = codec.MakeInitial(table.row(i));
    } else {
      const uint32_t d =
          cmp.FirstDifference(table.row(i - 1), table.row(i), 0);
      code = codec.MakeFromRow(table.row(i), d);
    }
    run.Append(table.row(i), code);
  }

  InMemoryRunSource source(&run);
  SegmentedSorter sorter(&schema, p.prefix, &counters);
  sorter.SetInput(&source);

  OvcStreamChecker checker(&schema);
  RowVec out;
  RowRef ref;
  while (sorter.Next(&ref)) {
    out.emplace_back(ref.cols, ref.cols + schema.total_columns());
    ASSERT_TRUE(checker.Observe(ref.cols, ref.ovc)) << checker.error();
  }
  RowVec expected = ReferenceSort(schema, table);
  Canonicalize(&out);
  Canonicalize(&expected);
  EXPECT_EQ(out, expected);
  EXPECT_GT(sorter.segments(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SegmentedSortTest,
    ::testing::Values(SegmentedParam{4, 1, 2000, 4},
                      SegmentedParam{4, 2, 2000, 4},
                      SegmentedParam{4, 3, 2000, 4},
                      SegmentedParam{2, 1, 500, 2},
                      SegmentedParam{6, 2, 3000, 3}),
    [](const ::testing::TestParamInfo<SegmentedParam>& info) {
      return "arity" + std::to_string(info.param.arity) + "_prefix" +
             std::to_string(info.param.prefix);
    });

TEST(SegmentedSorter, SegmentationNeedsNoComparisonsBeyondSegmentSorts) {
  // Boundary detection is code-only: with one row per segment, zero column
  // comparisons happen at all.
  Schema schema(2);
  QueryCounters counters;
  InMemoryRun run(2);
  OvcCodec codec(&schema);
  for (uint64_t i = 0; i < 100; ++i) {
    const uint64_t row[2] = {i, 100 - i};
    run.Append(row, i == 0 ? codec.MakeInitial(row) : codec.Make(0, i));
  }
  InMemoryRunSource source(&run);
  SegmentedSorter sorter(&schema, 1, &counters);
  sorter.SetInput(&source);
  RowRef ref;
  uint64_t n = 0;
  while (sorter.Next(&ref)) ++n;
  EXPECT_EQ(n, 100u);
  EXPECT_EQ(sorter.segments(), 100u);
  EXPECT_EQ(counters.column_comparisons, 0u);
}

}  // namespace
}  // namespace ovc
