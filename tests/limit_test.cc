// LimitOperator: truncation semantics, order/code pass-through, and the
// batched path truncating mid-block.

#include <vector>

#include <gtest/gtest.h>

#include "core/ovc_checker.h"
#include "exec/limit.h"
#include "exec/scan.h"
#include "exec/sort_operator.h"
#include "tests/test_util.h"

namespace ovc {
namespace {

using ::ovc::testing::DrainValidated;
using ::ovc::testing::MakeTable;
using ::ovc::testing::RowVec;
using ::ovc::testing::RunFromSorted;

TEST(Limit, ZeroEmitsNothing) {
  Schema schema(2);
  RowBuffer table = MakeTable(schema, 100, 4, /*seed=*/3);
  BufferScan scan(&schema, &table);
  LimitOperator limit(&scan, 0);

  EXPECT_EQ(DrainAndCount(&limit), 0u);

  // Row-at-a-time agrees.
  limit.Open();
  RowRef ref;
  EXPECT_FALSE(limit.Next(&ref));
  limit.Close();
}

TEST(Limit, BeyondInputPassesEverythingThrough) {
  Schema schema(2);
  RowBuffer table = MakeTable(schema, 123, 4, /*seed=*/5);
  BufferScan scan(&schema, &table);
  LimitOperator limit(&scan, 10'000);

  EXPECT_EQ(DrainAndCount(&limit), 123u);
}

TEST(Limit, PreservesOrderAndCodes) {
  Schema schema(3);
  RowBuffer table = MakeTable(schema, 500, 4, /*seed=*/7, /*sorted=*/true);
  InMemoryRun run = RunFromSorted(schema, table);
  RunScan scan(&schema, &run);
  LimitOperator limit(&scan, 77);

  EXPECT_TRUE(limit.sorted());
  EXPECT_TRUE(limit.has_ovc());

  // DrainValidated feeds every surviving row through OvcStreamChecker: the
  // truncated stream must still be sorted with correct codes.
  RowVec rows = DrainValidated(&limit);
  ASSERT_EQ(rows.size(), 77u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i], std::vector<uint64_t>(
                           table.row(i), table.row(i) + schema.total_columns()));
  }
}

TEST(Limit, BatchedPathTruncatesMidBlock) {
  Schema schema(2);
  RowBuffer table = MakeTable(schema, 300, 5, /*seed=*/9, /*sorted=*/true);
  InMemoryRun run = RunFromSorted(schema, table);
  RunScan scan(&schema, &run);
  // 130 = 2 full blocks of 50 + a 30-row truncation mid-block.
  LimitOperator limit(&scan, 130);

  limit.Open();
  OvcStreamChecker checker(&schema);
  RowBlock block(schema.total_columns(), /*capacity_rows=*/50);
  std::vector<uint32_t> block_sizes;
  uint32_t n;
  uint64_t total = 0;
  while ((n = limit.NextBatch(&block)) > 0) {
    block_sizes.push_back(n);
    for (uint32_t i = 0; i < n; ++i) {
      EXPECT_TRUE(checker.Observe(block.row(i), block.code(i)))
          << checker.error();
    }
    total += n;
  }
  // Exhausted limits keep answering 0.
  EXPECT_EQ(limit.NextBatch(&block), 0u);
  limit.Close();

  EXPECT_EQ(total, 130u);
  ASSERT_EQ(block_sizes.size(), 3u);
  EXPECT_EQ(block_sizes[0], 50u);
  EXPECT_EQ(block_sizes[1], 50u);
  EXPECT_EQ(block_sizes[2], 30u);  // truncated mid-block
  EXPECT_TRUE(checker.ok()) << checker.error();
}

TEST(Limit, RescanResetsTheCount) {
  Schema schema(2);
  RowBuffer table = MakeTable(schema, 50, 4, /*seed=*/11);
  BufferScan scan(&schema, &table);
  LimitOperator limit(&scan, 20);

  EXPECT_EQ(DrainAndCount(&limit), 20u);
  EXPECT_EQ(DrainAndCount(&limit), 20u);  // Open() resets emitted_
}

}  // namespace
}  // namespace ovc
