// Concurrency battery for the ovcd serving layer (runs under TSan and
// ASan in CI): many clients hammering mixed SELECT / JOIN / GROUP BY
// workloads with per-client correctness against serial oracles, zero
// cross-session counter bleed (the sum of the counters deltas clients
// received over the wire must equal the process query.* metric deltas,
// field for field), an admission gate that never exceeds its slot limit,
// and fault injection into concurrently-served queries: the failing
// session gets a clean SqlError frame, its neighbors are undisturbed,
// and the server keeps serving.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/counters.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "server/client.h"
#include "server/server.h"
#include "sql/gen_spec.h"
#include "sql/session.h"
#include "test_util.h"

namespace ovc::server {
namespace {

using ::ovc::testing::Canonicalize;
using ::ovc::testing::RowVec;
using ::ovc::testing::ToRowVec;

#if OVC_FAILPOINTS_ENABLED
#define SKIP_WITHOUT_FAILPOINTS()
#else
#define SKIP_WITHOUT_FAILPOINTS() \
  GTEST_SKIP() << "failpoints compiled out (NDEBUG without OVC_ENABLE_FAILPOINTS)"
#endif

/// The ten query.* counter metrics, read as a QueryCounters in field
/// order. SqlSession::Run mirrors every served statement's delta into
/// exactly these, so (snapshot after - snapshot before) must equal the
/// sum of the deltas the clients received in RESULT_DONE frames -- any
/// difference means one session's work leaked into another's accounting.
QueryCounters QueryMetricSnapshot() {
  metrics::MetricRegistry& registry = metrics::MetricRegistry::Instance();
  QueryCounters c;
  c.column_comparisons =
      registry.GetCounter("query.column_comparisons", "").value();
  c.code_comparisons = registry.GetCounter("query.code_comparisons", "").value();
  c.row_comparisons = registry.GetCounter("query.row_comparisons", "").value();
  c.hash_computations =
      registry.GetCounter("query.hash_computations", "").value();
  c.rows_spilled = registry.GetCounter("query.rows_spilled", "").value();
  c.bytes_spilled = registry.GetCounter("query.bytes_spilled", "").value();
  c.merge_bypass_rows =
      registry.GetCounter("query.merge_bypass_rows", "").value();
  c.hash_join_fallbacks =
      registry.GetCounter("query.hash_join_fallbacks", "").value();
  c.hash_agg_fallbacks =
      registry.GetCounter("query.hash_agg_fallbacks", "").value();
  c.io_retries = registry.GetCounter("query.io_retries", "").value();
  return c;
}

class ServingStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        sql::RegisterGeneratedFromSpec(
            &catalog_, "fact(k,v) rows=10000 keys=1 distinct=200 seed=31")
            .ok());
    ASSERT_TRUE(sql::RegisterGeneratedFromSpec(
                    &catalog_, "dim(k,p) rows=200 keys=1 distinct=200 seed=32")
                    .ok());
    // Pre-sorted with codes on both columns: ORDER BY k, v over it is an
    // elided sort -- a query that never touches temporary storage, used
    // as the undisturbed neighbor in the fault-injection tests.
    ASSERT_TRUE(
        sql::RegisterGeneratedFromSpec(
            &catalog_,
            "sorted_t(k,v) rows=10000 keys=2 distinct=200 seed=33 sorted")
            .ok());
  }

  void TearDown() override {
    failpoint::DisarmAll();
    if (server_ != nullptr) server_->Stop();
  }

  void StartServer(ServerOptions options) {
    server_ = std::make_unique<Server>(&catalog_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  Client Connect() {
    Client client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    return client;
  }

  RowVec Oracle(const std::string& sql) {
    sql::SqlSession session(&catalog_, server_->session_options());
    sql::SqlResult<sql::QueryResult> result = session.Run(sql);
    EXPECT_TRUE(result.ok());
    if (!result.ok()) return {};
    return ToRowVec(result.value().result.rows);
  }

  sql::Catalog catalog_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServingStressTest, MixedWorkloadCorrectWithZeroCounterBleed) {
  ServerOptions options;
  options.max_queries = 4;
  options.workers_per_query = 2;
  StartServer(options);

  // All four shapes end in ORDER BY so every result is row-for-row
  // deterministic against its oracle.
  const std::vector<std::string> queries = {
      "SELECT k, v FROM fact ORDER BY k, v",
      "SELECT f.k, COUNT(*) AS n FROM fact f INNER JOIN dim d ON f.k = d.k "
      "GROUP BY f.k ORDER BY f.k",
      "SELECT k, COUNT(*) AS n, SUM(v) AS s FROM fact GROUP BY k ORDER BY k",
      "SELECT DISTINCT k FROM fact ORDER BY k",
  };
  std::vector<RowVec> oracles;
  for (const std::string& sql : queries) {
    oracles.push_back(Oracle(sql));
    ASSERT_FALSE(oracles.back().empty());
  }

  // Snapshot AFTER the oracle runs: they go through the same SqlSession
  // machinery and move the query.* metrics too.
  const QueryCounters before = QueryMetricSnapshot();

  constexpr int kClients = 8;
  constexpr int kIterations = 6;
  std::atomic<int> failures{0};
  Mutex sum_mu;
  QueryCounters wire_sum;
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      Client client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      QueryCounters local;
      for (int j = 0; j < kIterations; ++j) {
        const size_t pick = static_cast<size_t>(i + j) % queries.size();
        Client::Result result;
        if (!client.Query(queries[pick], &result).ok() || !result.ok ||
            result.rows != oracles[pick]) {
          failures.fetch_add(1);
          return;
        }
        local.Merge(result.counters);
      }
      MutexLock lock(sum_mu);
      wire_sum.Merge(local);
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Zero cross-session bleed: what the clients were told they consumed is
  // exactly what the process-wide accounting moved by.
  const QueryCounters delta = QueryCounters::Delta(before, QueryMetricSnapshot());
  EXPECT_TRUE(delta == wire_sum)
      << "wire-reported counter sum diverged from the query.* metric delta";

  // The admission gate never overshot its slot limit, and every slot was
  // returned.
  EXPECT_LE(server_->admission()->high_water(), options.max_queries);
  EXPECT_EQ(server_->admission()->active(), 0u);

  // Four distinct normalized statements -> four binds, everything else
  // cache hits (GetOrBind holds the cache lock through bind-and-insert,
  // so concurrent first arrivals cannot double-bind).
  EXPECT_EQ(server_->plan_cache()->misses(), queries.size());
  EXPECT_EQ(server_->plan_cache()->hits(),
            static_cast<uint64_t>(kClients * kIterations) - queries.size());
}

TEST_F(ServingStressTest, AdmissionGateNeverExceedsSlotLimit) {
  ServerOptions options;
  options.max_queries = 2;
  options.workers_per_query = 2;
  StartServer(options);
  const std::string sql =
      "SELECT k, COUNT(*) AS n, SUM(v) AS s FROM fact GROUP BY k ORDER BY k";
  const RowVec expected = Oracle(sql);

  constexpr int kClients = 12;
  constexpr int kIterations = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      Client client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int j = 0; j < kIterations; ++j) {
        Client::Result result;
        if (!client.Query(sql, &result).ok() || !result.ok ||
            result.rows != expected) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);
  EXPECT_LE(server_->admission()->high_water(), 2u);
  EXPECT_EQ(server_->admission()->active(), 0u);
}

TEST_F(ServingStressTest, InjectedTempfileExhaustionStaysInItsSession) {
  SKIP_WITHOUT_FAILPOINTS();
  ServerOptions options;
  options.max_queries = 4;
  // Machine total of 4 * 256 sort rows: each admitted query gets a 256-row
  // sort workspace, so the 10000-row ORDER BY below must spill -- and with
  // tempfile.write armed, must fail.
  options.executor.planner.sort_config.memory_rows = 4 * 256;
  StartServer(options);

  const std::string spilling = "SELECT v, k FROM fact ORDER BY v, k";
  const std::string elided = "SELECT k, v FROM sorted_t ORDER BY k, v";
  const RowVec spilling_oracle = Oracle(spilling);
  const RowVec elided_oracle = Oracle(elided);

  failpoint::Arm("tempfile.write");

  Client failing = Connect();
  std::atomic<int> neighbor_failures{0};
  std::vector<std::thread> neighbors;
  for (int i = 0; i < 3; ++i) {
    neighbors.emplace_back([&] {
      Client client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        neighbor_failures.fetch_add(1);
        return;
      }
      // Elided-sort scans never touch temporary storage, so the armed
      // failpoint must be invisible to them.
      for (int j = 0; j < 5; ++j) {
        Client::Result result;
        if (!client.Query(elided, &result).ok() || !result.ok ||
            result.rows != elided_oracle) {
          neighbor_failures.fetch_add(1);
          return;
        }
      }
    });
  }

  Client::Result failed;
  ASSERT_TRUE(failing.Query(spilling, &failed).ok());
  EXPECT_FALSE(failed.ok);
  EXPECT_NE(failed.error_message.find("execution failed"), std::string::npos)
      << failed.error_message;

  for (std::thread& t : neighbors) t.join();
  EXPECT_EQ(neighbor_failures.load(), 0);

  // Disarmed, the SAME connection (same session, same temp sub-manager)
  // recovers completely: the per-session first-error slot was drained by
  // its own failed run and nobody else's.
  failpoint::DisarmAll();
  Client::Result retried;
  ASSERT_TRUE(failing.Query(spilling, &retried).ok());
  ASSERT_TRUE(retried.ok) << retried.error_message;
  EXPECT_EQ(retried.rows, spilling_oracle);
}

TEST_F(ServingStressTest, ForcedHashFallbacksStayCorrectUnderConcurrency) {
  SKIP_WITHOUT_FAILPOINTS();
  ServerOptions options;
  options.max_queries = 4;
  // Rule-based planning picks the grace hash join for this unsorted join
  // deterministically (the cost model might choose sort+merge and never
  // evaluate the forced-overflow site).
  options.executor.planner.cost_policy = plan::CostPolicy::kRuleBased;
  StartServer(options);

  const std::string join =
      "SELECT f.k, f.v, d.p FROM fact f JOIN dim d ON f.k = d.k";
  RowVec oracle = Oracle(join);
  Canonicalize(&oracle);
  ASSERT_FALSE(oracle.empty());

  failpoint::Arm("grace_hash_join.force_overflow");

  constexpr int kClients = 4;
  constexpr int kIterations = 3;
  std::atomic<int> failures{0};
  std::atomic<uint64_t> fallbacks{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      Client client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int j = 0; j < kIterations; ++j) {
        Client::Result result;
        if (!client.Query(join, &result).ok() || !result.ok) {
          failures.fetch_add(1);
          return;
        }
        RowVec rows = result.rows;
        Canonicalize(&rows);
        if (rows != oracle) {
          failures.fetch_add(1);
          return;
        }
        fallbacks.fetch_add(result.counters.hash_join_fallbacks);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);
  // Every served execution was forced mid-query onto the sort path and
  // still produced the exact join result.
  EXPECT_GE(fallbacks.load(), static_cast<uint64_t>(kClients * kIterations));

  // The server survived the whole episode.
  failpoint::DisarmAll();
  Client client = Connect();
  Client::Result result;
  ASSERT_TRUE(client.Query("SELECT k FROM dim ORDER BY k", &result).ok());
  EXPECT_TRUE(result.ok);
}

}  // namespace
}  // namespace ovc::server
