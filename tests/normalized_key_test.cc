// Byte-offset offset-value coding over normalized keys (the CFC model):
// order preservation of normalization, the theorem and corollaries at byte
// granularity, and code-decided comparisons.

#include <algorithm>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/normalized_key.h"
#include "test_util.h"

namespace ovc {
namespace {

using ::ovc::testing::MakeTable;

TEST(NormalizeKey, OrderPreserving) {
  Schema schema({SortDirection::kAscending, SortDirection::kDescending}, 0);
  KeyComparator cmp(&schema, nullptr);
  RowBuffer rows = MakeTable(schema, 300, 50, /*seed=*/1);
  for (size_t i = 1; i < rows.size(); ++i) {
    const NormalizedKey a = NormalizeKey(schema, rows.row(i - 1));
    const NormalizedKey b = NormalizeKey(schema, rows.row(i));
    const int row_cmp = cmp.Compare(rows.row(i - 1), rows.row(i));
    const int mem_cmp = std::memcmp(a.data(), b.data(), a.size());
    EXPECT_EQ(row_cmp < 0, mem_cmp < 0) << i;
    EXPECT_EQ(row_cmp == 0, mem_cmp == 0) << i;
  }
}

struct ByteParam {
  uint32_t arity;
  uint32_t block_bytes;
};

class ByteCodecTest : public ::testing::TestWithParam<ByteParam> {};

TEST_P(ByteCodecTest, TheoremMaxRuleAtByteGranularity) {
  const auto p = GetParam();
  Schema schema(p.arity);
  ByteOvcCodec codec(p.arity * 8, p.block_bytes);
  RowBuffer rows = MakeTable(schema, 300, 3, /*seed=*/2, /*sorted=*/true);
  std::vector<NormalizedKey> keys;
  for (size_t i = 0; i < rows.size(); ++i) {
    keys.push_back(NormalizeKey(schema, rows.row(i)));
  }
  for (size_t i = 0; i + 2 < keys.size(); ++i) {
    const Ovc ab = codec.Make(keys[i], keys[i + 1]);
    const Ovc bc = codec.Make(keys[i + 1], keys[i + 2]);
    const Ovc ac = codec.Make(keys[i], keys[i + 2]);
    EXPECT_EQ(ac, std::max(ab, bc)) << "triple at " << i;
  }
}

TEST_P(ByteCodecTest, CorollariesAtByteGranularity) {
  const auto p = GetParam();
  Schema schema(p.arity);
  ByteOvcCodec codec(p.arity * 8, p.block_bytes);
  RowBuffer rows = MakeTable(schema, 300, 3, /*seed=*/3, /*sorted=*/true);
  std::vector<NormalizedKey> keys;
  for (size_t i = 0; i < rows.size(); ++i) {
    keys.push_back(NormalizeKey(schema, rows.row(i)));
  }
  KeyComparator cmp(&schema, nullptr);
  for (size_t i = 0; i + 2 < keys.size(); ++i) {
    if (cmp.Compare(rows.row(i), rows.row(i + 1)) == 0 ||
        cmp.Compare(rows.row(i + 1), rows.row(i + 2)) == 0) {
      continue;
    }
    const Ovc ab = codec.Make(keys[i], keys[i + 1]);
    const Ovc ac = codec.Make(keys[i], keys[i + 2]);
    if (ab < ac) {
      // Unequal-code corollary.
      EXPECT_EQ(codec.Make(keys[i + 1], keys[i + 2]), ac) << i;
    } else if (ab == ac) {
      // Equal-code corollary.
      EXPECT_LT(codec.Make(keys[i + 1], keys[i + 2]), ac) << i;
    }
  }
}

TEST_P(ByteCodecTest, CompareMatchesMemcmpAndUpdatesLoser) {
  const auto p = GetParam();
  Schema schema(p.arity);
  ByteOvcCodec codec(p.arity * 8, p.block_bytes);
  RowBuffer rows = MakeTable(schema, 200, 3, /*seed=*/4, /*sorted=*/true);
  std::vector<NormalizedKey> keys;
  for (size_t i = 0; i < rows.size(); ++i) {
    keys.push_back(NormalizeKey(schema, rows.row(i)));
  }
  uint64_t bytes = 0;
  for (size_t i = 2; i < keys.size(); ++i) {
    // B and C relative to the shared base A = keys[i-2].
    Ovc cb = codec.Make(keys[i - 2], keys[i - 1]);
    Ovc cc = codec.Make(keys[i - 2], keys[i]);
    const int got = codec.Compare(keys[i - 1], &cb, keys[i], &cc, &bytes);
    const int want = std::memcmp(keys[i - 1].data(), keys[i].data(),
                                 keys[i].size());
    EXPECT_EQ(got < 0, want < 0) << i;
    EXPECT_EQ(got == 0, want == 0) << i;
    if (got < 0) {
      // Loser (C) now coded relative to the winner (B).
      EXPECT_EQ(cc, codec.Make(keys[i - 1], keys[i])) << i;
    }
  }
  // Byte-block codes decide the vast majority of comparisons: far fewer
  // bytes touched than full-key comparisons would cost.
  EXPECT_LT(bytes, (keys.size() - 2) * p.arity * 8 / 2);
}

INSTANTIATE_TEST_SUITE_P(
    BlockSizes, ByteCodecTest,
    ::testing::Values(ByteParam{2, 1}, ByteParam{2, 4}, ByteParam{4, 2},
                      ByteParam{4, 6}, ByteParam{8, 4}),
    [](const ::testing::TestParamInfo<ByteParam>& info) {
      return "arity" + std::to_string(info.param.arity) + "_block" +
             std::to_string(info.param.block_bytes);
    });

TEST(ByteCodec, FinerOffsetsThanColumnCodes) {
  // Two keys differing only in the low byte of their last column: the
  // column codec sees offset = arity-1; the byte codec (1-byte blocks)
  // sees a shared prefix of 8*arity - 1 bytes.
  Schema schema(2);
  const uint64_t a[2] = {5, 0x1122334455667700ULL};
  const uint64_t b[2] = {5, 0x1122334455667788ULL};
  OvcCodec column_codec(&schema);
  ByteOvcCodec byte_codec(16, 1);
  const NormalizedKey na = NormalizeKey(schema, a);
  const NormalizedKey nb = NormalizeKey(schema, b);
  EXPECT_EQ(column_codec.OffsetOf(
                column_codec.MakeFromRow(b, /*offset=*/1)),
            1u);
  EXPECT_EQ(byte_codec.OffsetOf(byte_codec.Make(na, nb)), 15u);
  EXPECT_EQ(ByteOvcCodec::ValueOf(byte_codec.Make(na, nb)), 0x88u);
}

TEST(ByteCodec, DuplicateAndInitialCodes) {
  Schema schema(3);
  ByteOvcCodec codec(24, 4);
  const uint64_t r[3] = {1, 2, 3};
  const NormalizedKey k = NormalizeKey(schema, r);
  EXPECT_EQ(codec.Make(k, k), codec.DuplicateCode());
  EXPECT_EQ(codec.OffsetOf(codec.MakeInitial(k)), 0u);
  EXPECT_EQ(codec.blocks(), 6u);
}

}  // namespace
}  // namespace ovc
