// Batched execution: RowBlock semantics, the NextBatch default shim,
// batched operator implementations against their row-at-a-time streams, and
// block-sized merger output -- all validated with OvcStreamChecker so codes
// are proven correct across block boundaries.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/ovc_checker.h"
#include "exec/dedup.h"
#include "exec/filter.h"
#include "exec/limit.h"
#include "exec/project.h"
#include "exec/scan.h"
#include "exec/sort_operator.h"
#include "sort/run.h"
#include "storage/btree.h"
#include "storage/column_store.h"
#include "tests/test_util.h"

namespace ovc {
namespace {

using ::ovc::testing::MakeTable;
using ::ovc::testing::RowVec;
using ::ovc::testing::RunFromSorted;

/// Drains `op` row-at-a-time; returns rows and codes.
void DrainRows(Operator* op, RowVec* rows, std::vector<Ovc>* codes) {
  const uint32_t width = op->schema().total_columns();
  op->Open();
  RowRef ref;
  while (op->Next(&ref)) {
    rows->emplace_back(ref.cols, ref.cols + width);
    codes->push_back(ref.ovc);
  }
  op->Close();
}

/// Drains `op` through NextBatch with block capacity `batch_rows`,
/// validating the stream with OvcStreamChecker when `check_codes`.
void DrainBatched(Operator* op, uint32_t batch_rows, bool check_codes,
                  RowVec* rows, std::vector<Ovc>* codes) {
  const uint32_t width = op->schema().total_columns();
  op->Open();
  OvcStreamChecker checker(&op->schema());
  RowBlock block(width, batch_rows);
  uint32_t n;
  while ((n = op->NextBatch(&block)) > 0) {
    ASSERT_LE(n, batch_rows);
    for (uint32_t i = 0; i < n; ++i) {
      rows->emplace_back(block.row(i), block.row(i) + width);
      codes->push_back(block.code(i));
      if (check_codes) {
        ASSERT_TRUE(checker.Observe(block.row(i), block.code(i)))
            << checker.error();
      }
    }
  }
  op->Close();
}

/// The batched stream must be byte-identical (rows and codes) to the
/// row-at-a-time stream. `batch_rows` deliberately small and non-dividing so
/// many block boundaries fall mid-stream.
void ExpectBatchedMatchesRowAtATime(Operator* op, uint32_t batch_rows,
                                    bool check_codes) {
  RowVec rows_one;
  std::vector<Ovc> codes_one;
  DrainRows(op, &rows_one, &codes_one);

  RowVec rows_batch;
  std::vector<Ovc> codes_batch;
  DrainBatched(op, batch_rows, check_codes, &rows_batch, &codes_batch);

  EXPECT_EQ(rows_batch, rows_one);
  EXPECT_EQ(codes_batch, codes_one);
}

TEST(RowBlock, AppendTruncateAndPointerStability) {
  RowBlock block(3, 4);
  EXPECT_EQ(block.width(), 3u);
  EXPECT_EQ(block.capacity(), 4u);
  EXPECT_TRUE(block.empty());

  const uint64_t r0[3] = {1, 2, 3};
  const uint64_t r1[3] = {4, 5, 6};
  block.Append(r0, 7);
  block.Append(r1, 9);
  EXPECT_EQ(block.size(), 2u);
  EXPECT_FALSE(block.full());
  EXPECT_EQ(block.row(1)[2], 6u);
  EXPECT_EQ(block.code(0), 7u);
  EXPECT_EQ(block.code(1), 9u);

  // Rows are contiguous: row(1) is exactly width past row(0).
  EXPECT_EQ(block.row(0) + block.width(), block.row(1));

  // Clear/Truncate move the size only; storage stays in place.
  const uint64_t* before = block.row(0);
  block.Truncate(1);
  EXPECT_EQ(block.size(), 1u);
  block.Clear();
  block.Append(r1, 1);
  EXPECT_EQ(block.row(0), before);
  EXPECT_EQ(block.row(0)[0], 4u);

  // Bulk append with null codes zero-fills the code array.
  block.Clear();
  const uint64_t two_rows[6] = {1, 1, 1, 2, 2, 2};
  block.AppendContiguous(two_rows, nullptr, 2);
  EXPECT_EQ(block.size(), 2u);
  EXPECT_EQ(block.code(0), 0u);
  EXPECT_EQ(block.code(1), 0u);
}

TEST(NextBatch, DefaultShimMatchesNextOnUnbatchedOperator) {
  // DedupOperator has no NextBatch override: the base-class shim must
  // produce exactly the Next() stream.
  Schema schema(2, 0);
  RowBuffer table = MakeTable(schema, 997, 4, /*seed=*/17, /*sorted=*/true);
  InMemoryRun run = RunFromSorted(schema, table);
  RunScan scan(&schema, &run);
  DedupOperator dedup(&scan);
  ExpectBatchedMatchesRowAtATime(&dedup, 64, /*check_codes=*/true);
}

TEST(NextBatch, BufferScanBlocksMatchRowStream) {
  Schema schema(2, 1);
  RowBuffer table = MakeTable(schema, 1000, 5, /*seed=*/23);
  BufferScan scan(&schema, &table);
  ExpectBatchedMatchesRowAtATime(&scan, 96, /*check_codes=*/false);
}

TEST(NextBatch, RunScanBlocksCarryStoredCodesAcrossBoundaries) {
  Schema schema(3, 1);
  RowBuffer table = MakeTable(schema, 1234, 4, /*seed=*/29, /*sorted=*/true);
  InMemoryRun run = RunFromSorted(schema, table);
  RunScan scan(&schema, &run);
  // 7-row blocks: ~176 boundaries, each first-row code relative to the last
  // row of the previous block.
  ExpectBatchedMatchesRowAtATime(&scan, 7, /*check_codes=*/true);
}

TEST(NextBatch, FilterCompactsBlocksAndDerivesCodes) {
  Schema schema(2, 1);
  RowBuffer table = MakeTable(schema, 2000, 6, /*seed=*/31, /*sorted=*/true);
  InMemoryRun run = RunFromSorted(schema, table);
  RunScan scan(&schema, &run);
  FilterOperator filter(&scan, [](const uint64_t* row) {
    return row[1] % 3 != 0;  // drop about a third
  });
  ExpectBatchedMatchesRowAtATime(&filter, 50, /*check_codes=*/true);
}

TEST(NextBatch, FilterSurvivesAllDroppedBlocks) {
  Schema schema(1, 0);
  RowBuffer table(1);
  for (uint64_t i = 0; i < 100; ++i) {
    table.AppendRow(&i);
  }
  BufferScan scan(&schema, &table);
  // Keeps only the last row: the first 9 blocks (of 10) are fully dropped
  // and NextBatch must keep pulling, not report a premature end.
  FilterOperator filter(&scan, [](const uint64_t* row) {
    return row[0] == 99;
  });

  RowVec rows;
  std::vector<Ovc> codes;
  DrainBatched(&filter, 10, /*check_codes=*/false, &rows, &codes);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], 99u);
}

TEST(NextBatch, ProjectMapsBlocksWithClampedCodes) {
  Schema in_schema(3, 1);
  RowBuffer table = MakeTable(in_schema, 1500, 4, /*seed=*/37,
                              /*sorted=*/true);
  InMemoryRun run = RunFromSorted(in_schema, table);
  RunScan scan(&in_schema, &run);
  // Keep the 2-column key prefix and swap payload in: order-preserving.
  Schema out_schema(2, 1);
  ProjectOperator project(&scan, out_schema, {0, 1, 3});
  ASSERT_TRUE(project.sorted());
  ExpectBatchedMatchesRowAtATime(&project, 33, /*check_codes=*/true);
}

TEST(NextBatch, ScanFilterProjectLimitPipeline) {
  Schema in_schema(3, 1);
  RowBuffer table = MakeTable(in_schema, 3000, 5, /*seed=*/41,
                              /*sorted=*/true);
  InMemoryRun run = RunFromSorted(in_schema, table);
  RunScan scan(&in_schema, &run);
  FilterOperator filter(&scan, [](const uint64_t* row) {
    return row[2] % 2 == 0;
  });
  Schema out_schema(2, 0);
  ProjectOperator project(&filter, out_schema, {0, 1});
  LimitOperator limit(&project, 800);
  ExpectBatchedMatchesRowAtATime(&limit, 50, /*check_codes=*/true);
}

TEST(NextBatch, SortOperatorServesBlocksInMemoryAndSpilled) {
  Schema schema(2, 1);
  RowBuffer table = MakeTable(schema, 4000, 6, /*seed=*/43);
  TempFileManager temp;

  // In-memory path (default budget) and spill path (tiny budget: many runs,
  // final merge through the devirtualized RunFileReader merger).
  for (uint64_t memory_rows : {uint64_t{1} << 20, uint64_t{256}}) {
    BufferScan scan(&schema, &table);
    SortConfig config;
    config.memory_rows = memory_rows;
    SortOperator sort(&scan, nullptr, &temp, config);

    RowVec rows;
    std::vector<Ovc> codes;
    DrainBatched(&sort, 100, /*check_codes=*/true, &rows, &codes);
    testing::RowVec expected = testing::ReferenceSort(schema, table);
    EXPECT_EQ(rows, expected) << "memory_rows=" << memory_rows;
  }
}

TEST(NextBatch, RleColumnScanMatchesRowStream) {
  Schema schema(3, 1);
  RowBuffer table = MakeTable(schema, 1100, 4, /*seed=*/59, /*sorted=*/true);
  InMemoryRun run = RunFromSorted(schema, table);
  RleColumnStore store(&schema);
  RunScan build_scan(&schema, &run);
  store.Build(&build_scan);
  ASSERT_EQ(store.rows(), table.size());

  std::unique_ptr<Operator> scan = store.CreateScan();
  ExpectBatchedMatchesRowAtATime(scan.get(), 47, /*check_codes=*/true);
}

TEST(NextBatch, FilterHandlesShrinkingBlockCapacity) {
  // The staging block must track the caller's capacity: after a pull with
  // a large block, a pull with a smaller one may not overflow it.
  Schema schema(2, 0);
  RowBuffer table = MakeTable(schema, 400, 4, /*seed=*/61, /*sorted=*/true);
  InMemoryRun run = RunFromSorted(schema, table);
  RunScan scan(&schema, &run);
  FilterOperator filter(&scan, [](const uint64_t*) { return true; });

  filter.Open();
  RowBlock big(schema.total_columns(), 100);
  RowBlock small(schema.total_columns(), 8);
  ASSERT_EQ(filter.NextBatch(&big), 100u);
  uint64_t total = 100;
  uint32_t n;
  while ((n = filter.NextBatch(&small)) > 0) {
    ASSERT_LE(n, small.capacity());
    total += n;
  }
  filter.Close();
  EXPECT_EQ(total, 400u);
}

TEST(NextBatch, BlockPredicateMayMarkSurvivorsOnly) {
  // A block predicate that only sets keep[i] for survivors (never writes
  // zeroes) must work: the keep array is pre-zeroed per block, so stale
  // entries from earlier blocks cannot leak through.
  Schema schema(1, 0);
  RowBuffer table(1);
  for (uint64_t i = 0; i < 60; ++i) {
    table.AppendRow(&i);
  }
  BufferScan scan(&schema, &table);
  FilterOperator filter(
      &scan, [](const uint64_t* row) { return row[0] % 5 == 0; },
      [](const RowBlock& block, uint8_t* keep) {
        for (uint32_t i = 0; i < block.size(); ++i) {
          if (block.row(i)[0] % 5 == 0) keep[i] = 1;  // survivors only
        }
      });

  RowVec rows;
  std::vector<Ovc> codes;
  DrainBatched(&filter, 10, /*check_codes=*/false, &rows, &codes);
  ASSERT_EQ(rows.size(), 12u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i][0], i * 5);
  }
}

TEST(NextBatch, BTreeScanCopiesLeafSpans) {
  Schema schema(2, 1);
  RowBuffer table = MakeTable(schema, 800, 6, /*seed=*/47);
  QueryCounters counters;
  BTree tree(&schema, &counters, /*node_capacity=*/16);
  for (size_t i = 0; i < table.size(); ++i) {
    tree.Insert(table.row(i));
  }
  std::unique_ptr<Operator> scan = tree.Scan();
  ExpectBatchedMatchesRowAtATime(scan.get(), 60, /*check_codes=*/true);
}

TEST(OvcMergerBlocks, DevirtualizedMergerMatchesVirtualMerger) {
  Schema schema(2, 0);
  OvcCodec codec(&schema);
  KeyComparator comparator(&schema, nullptr);

  // Four sorted coded runs from disjoint-ish random tables.
  std::vector<std::unique_ptr<InMemoryRun>> runs;
  std::vector<RowBuffer> tables;
  for (uint64_t f = 0; f < 4; ++f) {
    tables.push_back(MakeTable(schema, 700 + 13 * f, 5, /*seed=*/53 + f,
                               /*sorted=*/true));
  }
  for (auto& t : tables) {
    runs.push_back(std::make_unique<InMemoryRun>(RunFromSorted(schema, t)));
  }

  // Virtual merger, row at a time.
  std::vector<InMemoryRunSource> va{InMemoryRunSource(runs[0].get()),
                                    InMemoryRunSource(runs[1].get()),
                                    InMemoryRunSource(runs[2].get()),
                                    InMemoryRunSource(runs[3].get())};
  std::vector<MergeSource*> vsources{&va[0], &va[1], &va[2], &va[3]};
  OvcMerger virtual_merger(&codec, &comparator, vsources);
  RowVec rows_virtual;
  std::vector<Ovc> codes_virtual;
  RowRef ref;
  while (virtual_merger.Next(&ref)) {
    rows_virtual.emplace_back(ref.cols, ref.cols + schema.total_columns());
    codes_virtual.push_back(ref.ovc);
  }

  // Devirtualized merger, block-sized output with an odd block size.
  std::vector<InMemoryRunSource> da{InMemoryRunSource(runs[0].get()),
                                    InMemoryRunSource(runs[1].get()),
                                    InMemoryRunSource(runs[2].get()),
                                    InMemoryRunSource(runs[3].get())};
  std::vector<InMemoryRunSource*> dsources{&da[0], &da[1], &da[2], &da[3]};
  OvcMergerT<InMemoryRunSource> devirt_merger(&codec, &comparator, dsources);
  OvcStreamChecker checker(&schema);
  RowVec rows_devirt;
  std::vector<Ovc> codes_devirt;
  RowBlock block(schema.total_columns(), 37);
  uint32_t n;
  while ((n = devirt_merger.NextBlock(&block)) > 0) {
    for (uint32_t i = 0; i < n; ++i) {
      rows_devirt.emplace_back(block.row(i),
                               block.row(i) + schema.total_columns());
      codes_devirt.push_back(block.code(i));
      ASSERT_TRUE(checker.Observe(block.row(i), block.code(i)))
          << checker.error();
    }
  }

  EXPECT_EQ(rows_devirt, rows_virtual);
  EXPECT_EQ(codes_devirt, codes_virtual);
  EXPECT_TRUE(checker.ok()) << checker.error();
}

}  // namespace
}  // namespace ovc
