// Nested-loops / lookup join (Section 4.8) and hash-based operators:
// order-preserving hash join (4.9), grace hash join and hash aggregation
// baselines.

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "exec/aggregate.h"
#include "exec/hash_aggregate.h"
#include "exec/hash_join.h"
#include "exec/nested_loops_join.h"
#include "exec/scan.h"
#include "test_util.h"

namespace ovc {
namespace {

using ::ovc::testing::Canonicalize;
using ::ovc::testing::DrainValidated;
using ::ovc::testing::MakeTable;
using ::ovc::testing::RowVec;
using ::ovc::testing::RunFromSorted;
using ::ovc::testing::ToRowVec;

// Reference for NLJ with equality binding on the first `bind` columns.
RowVec ReferenceNlj(const Schema& os, const Schema& is, const RowVec& outer,
                    const RowVec& inner, uint32_t bind, JoinTypeNlj type,
                    bool extended) {
  auto bind_equal = [&](const std::vector<uint64_t>& o,
                        const std::vector<uint64_t>& i) {
    for (uint32_t c = 0; c < bind; ++c) {
      if (o[c] != i[c]) return false;
    }
    return true;
  };
  RowVec out;
  auto combined = [&](const std::vector<uint64_t>& o,
                      const std::vector<uint64_t>* i) {
    std::vector<uint64_t> row;
    for (uint32_t c = 0; c < os.key_arity(); ++c) row.push_back(o[c]);
    for (uint32_t c = 0; c < is.key_arity(); ++c) {
      row.push_back(i != nullptr ? (*i)[c] : 0);
    }
    for (uint32_t c = 0; c < os.payload_columns(); ++c) {
      row.push_back(o[os.key_arity() + c]);
    }
    for (uint32_t c = 0; c < is.payload_columns(); ++c) {
      row.push_back(i != nullptr ? (*i)[is.key_arity() + c] : 0);
    }
    row.push_back(i != nullptr ? 3 : 1);
    return row;
  };
  (void)extended;
  for (const auto& o : outer) {
    bool matched = false;
    for (const auto& i : inner) {
      if (bind_equal(o, i)) {
        matched = true;
        if (type == JoinTypeNlj::kInner || type == JoinTypeNlj::kLeftOuter) {
          out.push_back(combined(o, &i));
        }
      }
    }
    switch (type) {
      case JoinTypeNlj::kInner:
        break;
      case JoinTypeNlj::kLeftOuter:
        if (!matched) out.push_back(combined(o, nullptr));
        break;
      case JoinTypeNlj::kLeftSemi:
        if (matched) out.push_back(o);
        break;
      case JoinTypeNlj::kLeftAnti:
        if (!matched) out.push_back(o);
        break;
    }
  }
  return out;
}

struct NljParam {
  JoinTypeNlj type;
  uint64_t outer_rows;
  uint64_t inner_rows;
  uint64_t distinct;
  const char* name;
};

class NljTest : public ::testing::TestWithParam<NljParam> {};

TEST_P(NljTest, MatchesReferenceWithValidCodes) {
  const auto p = GetParam();
  Schema os(2, 1);  // outer: 2 key cols (bind on both), 1 payload
  Schema is(3, 1);  // inner: bind cols + 1 extra key col, 1 payload
  RowBuffer ot = MakeTable(os, p.outer_rows, p.distinct, /*seed=*/51,
                           /*sorted=*/true);
  RowBuffer it = MakeTable(is, p.inner_rows, p.distinct, /*seed=*/52,
                           /*sorted=*/true);
  InMemoryRun orun = RunFromSorted(os, ot);
  InMemoryRun irun = RunFromSorted(is, it);
  RunScan oscan(&os, &orun);
  QueryCounters counters;
  RunLookupSource lookup(&is, &irun, /*bind_columns=*/2, &counters);
  NestedLoopsJoin join(&oscan, &lookup, p.type, &counters);
  RowVec out = DrainValidated(&join);
  const bool extended = p.type == JoinTypeNlj::kInner ||
                        p.type == JoinTypeNlj::kLeftOuter;
  RowVec expected = ReferenceNlj(os, is, ToRowVec(ot), ToRowVec(it),
                                 /*bind=*/2, p.type, extended);
  Canonicalize(&out);
  Canonicalize(&expected);
  EXPECT_EQ(out, expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, NljTest,
    ::testing::Values(
        NljParam{JoinTypeNlj::kInner, 200, 150, 4, "inner"},
        NljParam{JoinTypeNlj::kInner, 200, 150, 2, "inner_manytomany"},
        NljParam{JoinTypeNlj::kLeftOuter, 200, 150, 4, "left_outer"},
        NljParam{JoinTypeNlj::kLeftSemi, 200, 150, 4, "left_semi"},
        NljParam{JoinTypeNlj::kLeftAnti, 200, 150, 4, "left_anti"},
        NljParam{JoinTypeNlj::kLeftOuter, 100, 0, 4, "left_outer_empty"},
        NljParam{JoinTypeNlj::kInner, 0, 100, 4, "inner_empty_outer"}),
    [](const ::testing::TestParamInfo<NljParam>& info) {
      return info.param.name;
    });

TEST(RunLookupSource, BindsToEqualityRanges) {
  Schema schema(2, 1);
  RowBuffer t(3);
  ::ovc::testing::AppendRows(&t, {{1, 1, 0},
                                  {1, 2, 1},
                                  {1, 2, 2},
                                  {2, 1, 3},
                                  {3, 9, 4}});
  InMemoryRun run = RunFromSorted(schema, t);
  RunLookupSource lookup(&schema, &run, /*bind_columns=*/1, nullptr);
  const uint64_t probe1[3] = {1, 0, 0};
  lookup.Bind(probe1);
  const uint64_t* row = nullptr;
  Ovc code = 0;
  int n = 0;
  while (lookup.Next(&row, &code)) ++n;
  EXPECT_EQ(n, 3);
  const uint64_t probe4[3] = {4, 0, 0};
  lookup.Bind(probe4);
  EXPECT_FALSE(lookup.Next(&row, &code));
}

// ---------------------------------------------------------------------------
// Hash joins.

struct HashJoinParam {
  JoinTypeHash type;
  uint64_t distinct;
  const char* name;
};

class OpHashJoinTest : public ::testing::TestWithParam<HashJoinParam> {};

TEST_P(OpHashJoinTest, OrderPreservingMatchesReference) {
  const auto p = GetParam();
  Schema ps(2, 1), bs(2, 1);
  RowBuffer pt = MakeTable(ps, 300, p.distinct, /*seed=*/61, /*sorted=*/true);
  RowBuffer bt = MakeTable(bs, 150, p.distinct, /*seed=*/62);
  InMemoryRun prun = RunFromSorted(ps, pt);
  RunScan pscan(&ps, &prun);
  BufferScan bscan(&bs, &bt);
  QueryCounters counters;
  OrderPreservingHashJoin join(&pscan, &bscan, /*bind_columns=*/2, p.type,
                               /*memory_rows=*/1 << 20, &counters);
  RowVec out = DrainValidated(&join);

  // Reference.
  RowVec probe = ToRowVec(pt), build = ToRowVec(bt);
  RowVec expected;
  for (const auto& pr : probe) {
    std::vector<const std::vector<uint64_t>*> matches;
    for (const auto& br : build) {
      if (pr[0] == br[0] && pr[1] == br[1]) matches.push_back(&br);
    }
    switch (p.type) {
      case JoinTypeHash::kLeftSemi:
        if (!matches.empty()) expected.push_back(pr);
        break;
      case JoinTypeHash::kLeftAnti:
        if (matches.empty()) expected.push_back(pr);
        break;
      case JoinTypeHash::kInner:
      case JoinTypeHash::kLeftOuter: {
        for (const auto* m : matches) {
          std::vector<uint64_t> row = pr;
          row.insert(row.end(), m->begin(), m->end());
          row.push_back(3);
          expected.push_back(row);
        }
        if (matches.empty() && p.type == JoinTypeHash::kLeftOuter) {
          std::vector<uint64_t> row = pr;
          row.insert(row.end(), bs.total_columns(), 0);
          row.push_back(1);
          expected.push_back(row);
        }
        break;
      }
    }
  }
  Canonicalize(&out);
  Canonicalize(&expected);
  EXPECT_EQ(out, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Types, OpHashJoinTest,
    ::testing::Values(HashJoinParam{JoinTypeHash::kInner, 6, "inner"},
                      HashJoinParam{JoinTypeHash::kLeftOuter, 6, "left_outer"},
                      HashJoinParam{JoinTypeHash::kLeftSemi, 6, "left_semi"},
                      HashJoinParam{JoinTypeHash::kLeftAnti, 6, "left_anti"},
                      HashJoinParam{JoinTypeHash::kInner, 2, "inner_dense"}),
    [](const ::testing::TestParamInfo<HashJoinParam>& info) {
      return info.param.name;
    });

TEST(GraceHashJoin, SpillsAndMatchesInMemoryResult) {
  Schema ps(2, 1), bs(2, 1);
  RowBuffer pt = MakeTable(ps, 2000, 12, /*seed=*/71);
  RowBuffer bt = MakeTable(bs, 1500, 12, /*seed=*/72);
  BufferScan pscan(&ps, &pt), bscan(&bs, &bt);
  QueryCounters spill_counters;
  TempFileManager temp;
  GraceHashJoin spilling(&pscan, &bscan, /*bind_columns=*/2,
                         JoinTypeHash::kInner, /*memory_rows=*/100,
                         &spill_counters, &temp, /*partitions=*/8);
  RowVec out_spill = DrainValidated(&spilling, /*check_codes=*/false);
  EXPECT_GT(spill_counters.rows_spilled, 0u);

  BufferScan pscan2(&ps, &pt), bscan2(&bs, &bt);
  QueryCounters mem_counters;
  GraceHashJoin resident(&pscan2, &bscan2, /*bind_columns=*/2,
                         JoinTypeHash::kInner, /*memory_rows=*/1 << 20,
                         &mem_counters, &temp, /*partitions=*/8);
  RowVec out_mem = DrainValidated(&resident, /*check_codes=*/false);
  EXPECT_EQ(mem_counters.rows_spilled, 0u);

  Canonicalize(&out_spill);
  Canonicalize(&out_mem);
  EXPECT_EQ(out_spill, out_mem);
}

TEST(HashAggregate, MatchesInStreamAggregate) {
  Schema schema(3, 1);
  RowBuffer table = MakeTable(schema, 3000, 6, /*seed=*/81);
  // Reference: in-stream aggregation over the sorted input.
  RowBuffer sorted = table;
  SortRowsForTest(schema, &sorted);
  InMemoryRun run = RunFromSorted(schema, sorted);
  RunScan sorted_scan(&schema, &run);
  QueryCounters ref_counters;
  InStreamAggregate ref_agg(&sorted_scan, /*group_prefix=*/3,
                            {{AggFn::kCount, 0}, {AggFn::kSum, 3}},
                            &ref_counters);
  RowVec expected = DrainValidated(&ref_agg);

  // Hash aggregation without spilling.
  BufferScan scan1(&schema, &table);
  QueryCounters counters1;
  TempFileManager temp;
  HashAggregate agg1(&scan1, /*group_prefix=*/3,
                     {{AggFn::kCount, 0}, {AggFn::kSum, 3}},
                     /*memory_groups=*/1 << 20, &counters1, &temp);
  RowVec out1 = DrainValidated(&agg1, /*check_codes=*/false);
  EXPECT_EQ(counters1.rows_spilled, 0u);

  // Hash aggregation with spilling.
  BufferScan scan2(&schema, &table);
  QueryCounters counters2;
  HashAggregate agg2(&scan2, /*group_prefix=*/3,
                     {{AggFn::kCount, 0}, {AggFn::kSum, 3}},
                     /*memory_groups=*/16, &counters2, &temp);
  RowVec out2 = DrainValidated(&agg2, /*check_codes=*/false);
  EXPECT_GT(counters2.rows_spilled, 0u);

  Canonicalize(&out1);
  Canonicalize(&out2);
  RowVec exp = expected;
  Canonicalize(&exp);
  EXPECT_EQ(out1, exp);
  EXPECT_EQ(out2, exp);
}

TEST(HashKeyPrefix, TouchesEveryColumnAndCounts) {
  QueryCounters counters;
  const uint64_t row1[3] = {1, 2, 3};
  const uint64_t row2[3] = {1, 2, 4};
  const uint64_t h1 = HashKeyPrefix(row1, 3, &counters);
  const uint64_t h2 = HashKeyPrefix(row2, 3, &counters);
  EXPECT_NE(h1, h2);
  EXPECT_EQ(counters.hash_computations, 2u);
  // Same prefix, shorter width: different hash stream but deterministic.
  EXPECT_EQ(HashKeyPrefix(row1, 3, nullptr), h1);
}

}  // namespace
}  // namespace ovc
