// Tests for the process-wide observability layer: MetricRegistry semantics
// (sharded counters under thread fan-out, histogram percentiles against a
// known distribution, snapshot round-trips), the per-statement query.*
// metric deltas agreeing field-for-field with QueryResult::counters_delta,
// and cross-thread trace spans -- at parallelism 1 and 4 -- nesting every
// exchange producer under the root statement span with parent durations
// enclosing child durations.

#include "common/metrics.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/counters.h"
#include "common/trace.h"
#include "sql/catalog.h"
#include "sql/session.h"
#include "tests/test_util.h"

namespace ovc {
namespace {

using metrics::Counter;
using metrics::Histogram;
using metrics::MetricRegistry;
using ovc::testing::JsonReader;
using ovc::testing::JsonValue;
using sql::Catalog;
using sql::QueryResult;
using sql::SqlSession;

// Metrics are process-global and this binary's tests share the registry, so
// every assertion below is phrased as a before/after delta, never as an
// absolute value.

TEST(MetricRegistry, RegistrationIsIdempotentByName) {
  Counter& a = OVC_METRIC_COUNTER("test.idempotent", "test counter");
  Counter& b =
      MetricRegistry::Instance().GetCounter("test.idempotent", "ignored help");
  EXPECT_EQ(&a, &b);
  const uint64_t before = a.value();
  b.Increment();
  EXPECT_EQ(a.value(), before + 1);
}

TEST(MetricRegistry, ShardedCounterSumsAcrossThreads) {
  Counter& counter = OVC_METRIC_COUNTER("test.sharded", "test counter");
  const uint64_t before = counter.value();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), before + kThreads * kPerThread);
}

TEST(MetricRegistry, GaugeMovesBothWays) {
  metrics::Gauge& gauge = OVC_METRIC_GAUGE("test.gauge", "test gauge");
  const int64_t before = gauge.value();
  gauge.Add(5);
  gauge.Sub(2);
  EXPECT_EQ(gauge.value(), before + 3);
  gauge.Sub(3);
  EXPECT_EQ(gauge.value(), before);
}

TEST(MetricRegistry, HistogramPercentilesOnKnownDistribution) {
  Histogram& hist =
      OVC_METRIC_HISTOGRAM("test.dist_us", "uniform 1..1000 samples");
  ASSERT_EQ(hist.count(), 0u) << "fresh name expected";
  for (uint64_t v = 1; v <= 1000; ++v) hist.Record(v);
  EXPECT_EQ(hist.count(), 1000u);
  EXPECT_EQ(hist.sum(), 500500u);  // 1000 * 1001 / 2

  // Exponential buckets are exact to ~one octave with in-bucket linear
  // interpolation; on uniform 1..1000 the estimates land within a few
  // percent of the true quantiles (500 / 950 / 990).
  const double p50 = hist.Percentile(0.50);
  const double p95 = hist.Percentile(0.95);
  const double p99 = hist.Percentile(0.99);
  EXPECT_GE(p50, 400.0);
  EXPECT_LE(p50, 600.0);
  EXPECT_GE(p95, 850.0);
  EXPECT_LE(p95, 1100.0);
  EXPECT_GE(p99, 900.0);
  EXPECT_LE(p99, 1100.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);

  // Bucket bookkeeping: per-bucket counts sum to the total, and every
  // sample respects its bucket's inclusive upper bound.
  uint64_t bucket_total = 0;
  for (uint32_t i = 0; i < Histogram::kBuckets; ++i) {
    bucket_total += hist.bucket_count(i);
    if (i + 1 < Histogram::kBuckets) {
      EXPECT_LT(Histogram::bucket_upper_bound(i),
                Histogram::bucket_upper_bound(i + 1));
    }
  }
  EXPECT_EQ(bucket_total, 1000u);
}

TEST(MetricRegistry, SnapshotsRoundTrip) {
  Counter& counter = OVC_METRIC_COUNTER("test.snapshot", "snapshot counter");
  counter.Add(7);
  Histogram& hist =
      OVC_METRIC_HISTOGRAM("test.snapshot_us", "snapshot histogram");
  hist.Record(100);
  hist.Record(200);

  // Text: one sorted line per metric, unit suffix on the _us histogram.
  const std::string text = MetricRegistry::Instance().TextSnapshot();
  EXPECT_NE(text.find("counter test.snapshot "), std::string::npos) << text;
  EXPECT_NE(text.find("histogram test.snapshot_us count=2 "),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("sum=300.0us"), std::string::npos) << text;

  // JSON: parseable, and our metrics carry kind/value/percentiles with
  // bucket counts that sum back to the histogram count.
  JsonValue root = JsonReader(MetricRegistry::Instance().JsonSnapshot()).Parse();
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  const JsonValue& list = root.at("metrics");
  ASSERT_EQ(list.kind, JsonValue::Kind::kArray);
  bool saw_counter = false;
  bool saw_histogram = false;
  std::string previous_name;
  for (const JsonValue& m : list.array) {
    const std::string& name = m.at("name").str;
    EXPECT_LT(previous_name, name) << "snapshot must be sorted by name";
    previous_name = name;
    if (name == "test.snapshot") {
      saw_counter = true;
      EXPECT_EQ(m.at("kind").str, "counter");
      EXPECT_EQ(m.at("help").str, "snapshot counter");
      EXPECT_GE(m.at("value").number, 7.0);
    } else if (name == "test.snapshot_us") {
      saw_histogram = true;
      EXPECT_EQ(m.at("kind").str, "histogram");
      EXPECT_EQ(m.at("count").number, 2.0);
      EXPECT_EQ(m.at("sum").number, 300.0);
      EXPECT_TRUE(m.has("p50"));
      EXPECT_TRUE(m.has("p99"));
      double bucket_total = 0;
      for (const JsonValue& b : m.at("buckets").array) {
        EXPECT_TRUE(b.has("le"));
        bucket_total += b.at("count").number;
      }
      EXPECT_EQ(bucket_total, 2.0);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_histogram);
}

// ---------------------------------------------------------------------------
// SQL integration: the query.* metric family and the trace spans, driven
// through SqlSession at parallelism 1 and 4.
// ---------------------------------------------------------------------------

class QueryObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Catalog::GeneratedSpec spec;
    spec.distinct_per_column = 100;
    spec.seed = 1;
    ASSERT_TRUE(catalog_
                    .RegisterGenerated("lineitem",
                                       {"orderkey", "qty", "price"},
                                       Schema(1, 2), 2000, spec)
                    .ok());
    spec.seed = 2;
    spec.sorted = true;
    ASSERT_TRUE(catalog_
                    .RegisterGenerated("orders", {"orderkey", "custkey"},
                                       Schema(1, 1), 500, spec)
                    .ok());
  }

  static SqlSession::Options MakeOptions(uint32_t parallelism) {
    SqlSession::Options options;
    options.validate = true;
    options.abort_on_violation = false;
    options.planner.parallelism = parallelism;
    return options;
  }

  static const char* JoinSql() {
    return "SELECT l.orderkey, COUNT(*) AS n FROM lineitem l "
           "INNER JOIN orders o ON l.orderkey = o.orderkey "
           "GROUP BY l.orderkey ORDER BY l.orderkey";
  }

  /// The ten query.* counters that mirror QueryCounters, in field order.
  struct QueryMetricSlice {
    static QueryMetricSlice Snapshot() {
      MetricRegistry& r = MetricRegistry::Instance();
      QueryMetricSlice s;
      s.c.column_comparisons =
          r.GetCounter("query.column_comparisons", "").value();
      s.c.code_comparisons = r.GetCounter("query.code_comparisons", "").value();
      s.c.row_comparisons = r.GetCounter("query.row_comparisons", "").value();
      s.c.hash_computations =
          r.GetCounter("query.hash_computations", "").value();
      s.c.rows_spilled = r.GetCounter("query.rows_spilled", "").value();
      s.c.bytes_spilled = r.GetCounter("query.bytes_spilled", "").value();
      s.c.merge_bypass_rows =
          r.GetCounter("query.merge_bypass_rows", "").value();
      s.c.hash_join_fallbacks =
          r.GetCounter("query.hash_join_fallbacks", "").value();
      s.c.hash_agg_fallbacks =
          r.GetCounter("query.hash_agg_fallbacks", "").value();
      s.c.io_retries = r.GetCounter("query.io_retries", "").value();
      s.statements = r.GetCounter("query.statements", "").value();
      s.rows_out = r.GetCounter("query.rows_out", "").value();
      s.latency_count = r.GetHistogram("query.latency_us", "").count();
      return s;
    }
    QueryCounters c;
    uint64_t statements = 0;
    uint64_t rows_out = 0;
    uint64_t latency_count = 0;
  };

  static void ExpectCountersEqual(const QueryCounters& a,
                                  const QueryCounters& b) {
    EXPECT_EQ(a.column_comparisons, b.column_comparisons);
    EXPECT_EQ(a.code_comparisons, b.code_comparisons);
    EXPECT_EQ(a.row_comparisons, b.row_comparisons);
    EXPECT_EQ(a.hash_computations, b.hash_computations);
    EXPECT_EQ(a.rows_spilled, b.rows_spilled);
    EXPECT_EQ(a.bytes_spilled, b.bytes_spilled);
    EXPECT_EQ(a.merge_bypass_rows, b.merge_bypass_rows);
    EXPECT_EQ(a.hash_join_fallbacks, b.hash_join_fallbacks);
    EXPECT_EQ(a.hash_agg_fallbacks, b.hash_agg_fallbacks);
    EXPECT_EQ(a.io_retries, b.io_retries);
  }

  Catalog catalog_;
};

TEST_F(QueryObservabilityTest, MetricDeltasAgreeWithQueryCounters) {
  for (uint32_t parallelism : {1u, 4u}) {
    SCOPED_TRACE("parallelism " + std::to_string(parallelism));
    SqlSession session(&catalog_, MakeOptions(parallelism));

    const QueryCounters session_before = *session.counters();
    const QueryMetricSlice before = QueryMetricSlice::Snapshot();
    auto result = session.Run(JoinSql());
    ASSERT_TRUE(result.ok()) << result.error().message;
    const QueryMetricSlice after = QueryMetricSlice::Snapshot();

    // One statement, one latency sample, rows_out = materialized rows.
    EXPECT_EQ(after.statements, before.statements + 1);
    EXPECT_EQ(after.latency_count, before.latency_count + 1);
    const uint64_t rows = result.value().result.rows.size();
    EXPECT_GT(rows, 0u);
    EXPECT_EQ(after.rows_out, before.rows_out + rows);

    // Three surfaces, one truth: the process-metric delta, the result's
    // counters_delta, and the session counter roll-up are field-for-field
    // identical.
    const QueryCounters metric_delta = QueryCounters::Delta(before.c, after.c);
    ExpectCountersEqual(metric_delta, result.value().counters_delta);
    ExpectCountersEqual(
        QueryCounters::Delta(session_before, *session.counters()),
        result.value().counters_delta);
    // And the query did measurable work.
    EXPECT_GT(result.value().counters_delta.column_comparisons +
                  result.value().counters_delta.code_comparisons +
                  result.value().counters_delta.hash_computations,
              0u);
  }
}

TEST_F(QueryObservabilityTest, FailedStatementCountsAnError) {
  SqlSession session(&catalog_, MakeOptions(1));
  MetricRegistry& r = MetricRegistry::Instance();
  const uint64_t errors_before = r.GetCounter("query.errors", "").value();
  auto result = session.Run("SELECT nope FROM missing_table");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(r.GetCounter("query.errors", "").value(), errors_before + 1);
}

// One exported trace event, decoded from the Chrome trace JSON.
struct TraceEvent {
  std::string name;
  double ts = 0;
  double dur = 0;
  double tid = 0;
  uint64_t span = 0;
  uint64_t parent = 0;
  uint64_t query = 0;
};

std::vector<TraceEvent> DecodeTrace(const std::string& json) {
  JsonValue root = JsonReader(json).Parse();
  EXPECT_EQ(root.kind, JsonValue::Kind::kObject);
  std::vector<TraceEvent> events;
  for (const JsonValue& e : root.at("traceEvents").array) {
    TraceEvent ev;
    ev.name = e.at("name").str;
    EXPECT_EQ(e.at("ph").str, "X");
    ev.ts = e.at("ts").number;
    ev.dur = e.at("dur").number;
    ev.tid = e.at("tid").number;
    const JsonValue& args = e.at("args");
    ev.span = static_cast<uint64_t>(args.at("span").number);
    ev.parent = static_cast<uint64_t>(args.at("parent").number);
    ev.query = static_cast<uint64_t>(args.at("query").number);
    events.push_back(ev);
  }
  return events;
}

TEST_F(QueryObservabilityTest, TraceSpansNestAcrossThreads) {
  for (uint32_t parallelism : {1u, 4u}) {
    SCOPED_TRACE("parallelism " + std::to_string(parallelism));
    SqlSession session(&catalog_, MakeOptions(parallelism));
    if (parallelism > 1) {
      // Guard the premise: this plan actually runs exchange-parallel.
      auto explain = session.Explain(JoinSql());
      ASSERT_TRUE(explain.ok());
      ASSERT_NE(explain.value().find("merge-exchange"), std::string::npos)
          << explain.value();
    }

    trace::Enable();
    auto result = session.Run(JoinSql());
    ASSERT_TRUE(result.ok()) << result.error().message;
    const std::string json = trace::ExportJson();
    trace::Disable();

    const std::vector<TraceEvent> events = DecodeTrace(json);
    std::map<uint64_t, const TraceEvent*> by_span;
    std::map<std::string, int> by_name;
    for (const TraceEvent& e : events) {
      by_span[e.span] = &e;
      ++by_name[e.name];
    }

    // Exactly one root statement span, and the full serial lifecycle
    // under it.
    ASSERT_EQ(by_name["sql.statement"], 1);
    EXPECT_EQ(by_name["sql.parse"], 1);
    EXPECT_EQ(by_name["sql.bind"], 1);
    EXPECT_EQ(by_name["sql.plan"], 1);
    EXPECT_EQ(by_name["sql.execute"], 1);
    EXPECT_EQ(by_name["plan.execute"], 1);

    const TraceEvent* root = nullptr;
    for (const TraceEvent& e : events) {
      if (e.name == "sql.statement") root = &e;
    }
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->parent, 0u);

    // Every non-root span belongs to the root query and, following parent
    // links, reaches the root -- including spans recorded on producer
    // threads. Parents strictly enclose children (all workers are joined
    // before their parent scope closes), so parent duration >= child
    // duration along every edge.
    std::set<double> producer_tids;
    int producers = 0;
    for (const TraceEvent& e : events) {
      if (e.span == root->span) continue;
      EXPECT_EQ(e.query, root->span) << e.name;
      const TraceEvent* cursor = &e;
      int hops = 0;
      while (cursor->parent != 0 && hops < 64) {
        auto it = by_span.find(cursor->parent);
        ASSERT_NE(it, by_span.end())
            << e.name << ": dangling parent span id " << cursor->parent;
        EXPECT_GE(it->second->dur, cursor->dur)
            << it->second->name << " -> " << cursor->name;
        cursor = it->second;
        ++hops;
      }
      EXPECT_EQ(cursor->span, root->span)
          << e.name << " does not chain up to sql.statement";
      if (e.name == "exchange.producer") {
        ++producers;
        producer_tids.insert(e.tid);
      }
    }

    if (parallelism == 1) {
      EXPECT_EQ(producers, 0);
    } else {
      // Each merge-exchange spawns `parallelism` producers; the plan has
      // at least one exchange, and the producers run on worker threads
      // distinct from the session thread.
      EXPECT_GE(producers, static_cast<int>(parallelism));
      EXPECT_GE(producer_tids.size(), 2u);
      for (double tid : producer_tids) EXPECT_NE(tid, root->tid);
    }
  }
}

}  // namespace
}  // namespace ovc
