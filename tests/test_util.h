// Shared helpers for the test suite: naive reference implementations and
// checker-driven stream validation.

#ifndef OVC_TESTS_TEST_UTIL_H_
#define OVC_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ovc_checker.h"
#include "exec/operator.h"
#include "row/comparator.h"
#include "row/generator.h"
#include "row/row_buffer.h"
#include "row/schema.h"
#include "sort/run.h"

namespace ovc::testing {

/// A materialized table as vectors of rows, for order-insensitive
/// comparisons against reference results.
using RowVec = std::vector<std::vector<uint64_t>>;

/// Materializes `buffer` into a RowVec.
inline RowVec ToRowVec(const RowBuffer& buffer) {
  RowVec out;
  for (size_t i = 0; i < buffer.size(); ++i) {
    out.emplace_back(buffer.row(i), buffer.row(i) + buffer.width());
  }
  return out;
}

/// Sorts a RowVec lexicographically by raw column values (test-side
/// canonicalization for order-insensitive equality).
inline void Canonicalize(RowVec* rows) { std::sort(rows->begin(), rows->end()); }

/// Reference sort: rows of `input` in the schema's key order (stable).
inline RowVec ReferenceSort(const Schema& schema, const RowBuffer& input) {
  RowBuffer copy = input;
  SortRowsForTest(schema, &copy);
  return ToRowVec(copy);
}

/// Drains `op`, validating sortedness and codes with OvcStreamChecker when
/// `check_codes`. Returns all rows.
inline RowVec DrainValidated(Operator* op, bool check_codes = true) {
  op->Open();
  OvcStreamChecker checker(&op->schema());
  RowVec out;
  RowRef ref;
  while (op->Next(&ref)) {
    out.emplace_back(ref.cols, ref.cols + op->schema().total_columns());
    if (check_codes) {
      EXPECT_TRUE(checker.Observe(ref.cols, ref.ovc)) << checker.error();
      if (!checker.ok()) break;  // avoid error spam
    }
  }
  op->Close();
  return out;
}

/// Makes a random table per the paper's data shape.
inline RowBuffer MakeTable(const Schema& schema, uint64_t rows,
                           uint64_t distinct, uint64_t seed,
                           bool sorted = false) {
  RowBuffer buffer(schema.total_columns());
  GeneratorConfig config;
  config.rows = rows;
  config.distinct_per_column = distinct;
  config.seed = seed;
  config.sorted = sorted;
  GenerateRows(schema, config, &buffer);
  return buffer;
}

/// Builds a sorted, coded InMemoryRun from a sorted buffer, deriving each
/// code the naive reference way (adjacent row comparison, column by
/// column). The oracle every batched/merged stream is checked against.
inline InMemoryRun RunFromSorted(const Schema& schema,
                                 const RowBuffer& sorted) {
  OvcCodec codec(&schema);
  KeyComparator cmp(&schema, nullptr);
  InMemoryRun run(schema.total_columns());
  run.Reserve(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    Ovc code = i == 0 ? codec.MakeInitial(sorted.row(i))
                      : codec.MakeFromRow(
                            sorted.row(i),
                            cmp.FirstDifference(sorted.row(i - 1),
                                                sorted.row(i), 0));
    run.Append(sorted.row(i), code);
  }
  return run;
}

/// Builds a row for literal test fixtures.
inline std::vector<uint64_t> Row(std::initializer_list<uint64_t> values) {
  return std::vector<uint64_t>(values);
}

/// Appends literal rows to a buffer.
inline void AppendRows(RowBuffer* buffer,
                       std::initializer_list<std::vector<uint64_t>> rows) {
  for (const auto& r : rows) {
    OVC_CHECK(r.size() == buffer->width());
    buffer->AppendRow(r.data());
  }
}

}  // namespace ovc::testing

#endif  // OVC_TESTS_TEST_UTIL_H_
