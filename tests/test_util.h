// Shared helpers for the test suite: naive reference implementations and
// checker-driven stream validation.

#ifndef OVC_TESTS_TEST_UTIL_H_
#define OVC_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ovc_checker.h"
#include "exec/operator.h"
#include "row/comparator.h"
#include "row/generator.h"
#include "row/row_buffer.h"
#include "row/schema.h"
#include "sort/run.h"

namespace ovc::testing {

/// A materialized table as vectors of rows, for order-insensitive
/// comparisons against reference results.
using RowVec = std::vector<std::vector<uint64_t>>;

/// Materializes `buffer` into a RowVec.
inline RowVec ToRowVec(const RowBuffer& buffer) {
  RowVec out;
  for (size_t i = 0; i < buffer.size(); ++i) {
    out.emplace_back(buffer.row(i), buffer.row(i) + buffer.width());
  }
  return out;
}

/// Sorts a RowVec lexicographically by raw column values (test-side
/// canonicalization for order-insensitive equality).
inline void Canonicalize(RowVec* rows) { std::sort(rows->begin(), rows->end()); }

/// Reference sort: rows of `input` in the schema's key order (stable).
inline RowVec ReferenceSort(const Schema& schema, const RowBuffer& input) {
  RowBuffer copy = input;
  SortRowsForTest(schema, &copy);
  return ToRowVec(copy);
}

/// Drains `op`, validating sortedness and codes with OvcStreamChecker when
/// `check_codes`. Returns all rows.
inline RowVec DrainValidated(Operator* op, bool check_codes = true) {
  op->Open();
  OvcStreamChecker checker(&op->schema());
  RowVec out;
  RowRef ref;
  while (op->Next(&ref)) {
    out.emplace_back(ref.cols, ref.cols + op->schema().total_columns());
    if (check_codes) {
      EXPECT_TRUE(checker.Observe(ref.cols, ref.ovc)) << checker.error();
      if (!checker.ok()) break;  // avoid error spam
    }
  }
  op->Close();
  return out;
}

/// Makes a random table per the paper's data shape.
inline RowBuffer MakeTable(const Schema& schema, uint64_t rows,
                           uint64_t distinct, uint64_t seed,
                           bool sorted = false) {
  RowBuffer buffer(schema.total_columns());
  GeneratorConfig config;
  config.rows = rows;
  config.distinct_per_column = distinct;
  config.seed = seed;
  config.sorted = sorted;
  GenerateRows(schema, config, &buffer);
  return buffer;
}

/// Builds a sorted, coded InMemoryRun from a sorted buffer, deriving each
/// code the naive reference way (adjacent row comparison, column by
/// column). The oracle every batched/merged stream is checked against.
inline InMemoryRun RunFromSorted(const Schema& schema,
                                 const RowBuffer& sorted) {
  OvcCodec codec(&schema);
  KeyComparator cmp(&schema, nullptr);
  InMemoryRun run(schema.total_columns());
  run.Reserve(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    Ovc code = i == 0 ? codec.MakeInitial(sorted.row(i))
                      : codec.MakeFromRow(
                            sorted.row(i),
                            cmp.FirstDifference(sorted.row(i - 1),
                                                sorted.row(i), 0));
    run.Append(sorted.row(i), code);
  }
  return run;
}

/// Builds a row for literal test fixtures.
inline std::vector<uint64_t> Row(std::initializer_list<uint64_t> values) {
  return std::vector<uint64_t>(values);
}

/// Appends literal rows to a buffer.
inline void AppendRows(RowBuffer* buffer,
                       std::initializer_list<std::vector<uint64_t>> rows) {
  for (const auto& r : rows) {
    OVC_CHECK(r.size() == buffer->width());
    buffer->AppendRow(r.data());
  }
}

// ---------------------------------------------------------------------------
// A minimal JSON reader -- just enough to round-trip QueryProfile::ToJson
// (objects, arrays, strings with the escapes the writer emits, numbers).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    EXPECT_NE(it, object.end()) << "missing key: " << key;
    static const JsonValue kNull;
    return it == object.end() ? kNull : it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  /// Parses the full input; fails the test on any syntax error.
  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipSpace();
    EXPECT_EQ(pos_, text_.size()) << "trailing JSON input";
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    SkipSpace();
    EXPECT_LT(pos_, text_.size()) << "unexpected end of JSON";
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void Expect(char c) {
    EXPECT_EQ(Peek(), c) << "at offset " << pos_;
    ++pos_;
  }

  JsonValue ParseValue() {
    const char c = Peek();
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  JsonValue ParseObject() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    Expect('{');
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonValue key = ParseString();
      Expect(':');
      v.object[key.str] = ParseValue();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return v;
    }
  }

  JsonValue ParseArray() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    Expect('[');
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return v;
    }
  }

  JsonValue ParseString() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    Expect('"');
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n':
            c = '\n';
            break;
          case 'u':
            pos_ += 4;  // the writer only emits \u00XX controls
            c = '?';
            break;
          default:
            c = esc;  // \" and \\ decode to themselves
        }
      }
      v.str.push_back(c);
    }
    Expect('"');
    return v;
  }

  JsonValue ParseBool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = text_.compare(pos_, 4, "true") == 0;
    pos_ += v.boolean ? 4 : 5;
    return v;
  }

  JsonValue ParseNull() {
    JsonValue v;
    pos_ += 4;
    return v;
  }

  JsonValue ParseNumber() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    EXPECT_GT(pos_, start) << "expected a number at offset " << start;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace ovc::testing

#endif  // OVC_TESTS_TEST_UTIL_H_
