// Self-test for tools/lint/ovclint: the fixture mini-trees under
// tests/lint_fixtures/ pin every rule's behavior (one violation per rule
// in dirty/, zero findings in clean/), and the live tree must lint
// clean so `ctest` and CI's lint job agree.

#include "tools/lint/ovclint_lib.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ovc::lint {
namespace {

int CountRuleInFile(const std::vector<Finding>& findings,
                    const std::string& rule, const std::string& file) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(), [&](const Finding& f) {
        return f.rule == rule && f.file == file;
      }));
}

std::string Dump(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) out += FormatFinding(f) + "\n";
  return out;
}

TEST(StripComments, ReplacesCommentsPreservesStringsAndNewlines) {
  const std::string in =
      "int a;  // trailing comment\n"
      "/* block\n   comment */ int b;\n"
      "const char* s = \"not // a comment /* either */\";\n";
  const std::string out = StripComments(in);
  // Same shape: newline positions (and hence line numbers) survive.
  EXPECT_EQ(std::count(in.begin(), in.end(), '\n'),
            std::count(out.begin(), out.end(), '\n'));
  EXPECT_EQ(out.find("trailing"), std::string::npos);
  EXPECT_EQ(out.find("block"), std::string::npos);
  // String literals pass through untouched.
  EXPECT_NE(out.find("\"not // a comment /* either */\""), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
}

TEST(LintFixtures, CleanTreeHasNoFindings) {
  const std::vector<Finding> findings =
      LintTree(std::string(OVC_LINT_FIXTURE_DIR) + "/clean");
  EXPECT_TRUE(findings.empty()) << Dump(findings);
}

TEST(LintFixtures, DirtyTreeFlagsEveryRuleExactlyOnce) {
  const std::vector<Finding> findings =
      LintTree(std::string(OVC_LINT_FIXTURE_DIR) + "/dirty");

  EXPECT_EQ(CountRuleInFile(findings, "OVC-L000",
                            "src/exec/bad_suppression.cc"), 1)
      << Dump(findings);
  EXPECT_EQ(CountRuleInFile(findings, "OVC-L001", "src/core/bad_layer.h"), 1)
      << Dump(findings);
  EXPECT_EQ(CountRuleInFile(findings, "OVC-L002", "src/exec/bad_check.cc"), 1)
      << Dump(findings);
  EXPECT_EQ(CountRuleInFile(findings, "OVC-L003",
                            "src/sort/bad_status_check.cc"), 1)
      << Dump(findings);
  EXPECT_EQ(CountRuleInFile(findings, "OVC-L004", "src/exec/bad_check.cc"), 1)
      << Dump(findings);
  EXPECT_EQ(CountRuleInFile(findings, "OVC-L005", "docs/ROBUSTNESS.md"), 1)
      << Dump(findings);
  EXPECT_EQ(CountRuleInFile(findings, "OVC-L006", "src/common/bad_guard.h"), 1)
      << Dump(findings);
  EXPECT_EQ(CountRuleInFile(findings, "OVC-L007", "src/exec/bad_mutex.h"), 1)
      << Dump(findings);
  EXPECT_EQ(CountRuleInFile(findings, "OVC-L008", "src/exec/bad_metric.cc"), 1)
      << Dump(findings);
  EXPECT_EQ(CountRuleInFile(findings, "OVC-L009", "docs/OBSERVABILITY.md"), 1)
      << Dump(findings);

  // The well-formed suppression silences OVC-L002 for its file entirely.
  for (const Finding& f : findings) {
    EXPECT_NE(f.file, "src/sort/suppressed.cc") << FormatFinding(f);
  }

  // Exactly the ten violations above -- nothing extra. In particular the
  // documented-and-used span in bad_metric.cc stays silent.
  EXPECT_EQ(findings.size(), 10u) << Dump(findings);
}

TEST(LintLiveTree, RepoLintsClean) {
  const std::vector<Finding> findings = LintTree(OVC_LINT_SOURCE_DIR);
  EXPECT_TRUE(findings.empty()) << Dump(findings);
}

}  // namespace
}  // namespace ovc::lint
