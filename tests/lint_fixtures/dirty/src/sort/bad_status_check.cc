// Dirty fixture: OVC_CHECK over a Status-valued expression (OVC-L003).

namespace demo {
void Merge() {
  OVC_CHECK(status.ok());
}
}  // namespace demo
