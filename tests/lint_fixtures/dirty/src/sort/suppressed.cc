// Dirty fixture: the OVC_CHECK_OK below would be OVC-L002, but the
// file-level suppression silences it -- the linter must report nothing
// for this file.
// ovclint-disable-file OVC-L002 -- fixture: suppression must silence the rule

namespace demo {
void Close() {
  OVC_CHECK_OK(CloseRun());
}
}  // namespace demo
