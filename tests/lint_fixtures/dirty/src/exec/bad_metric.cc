// Dirty fixture: OVC-L008 -- a metric name used in code but missing from
// the docs/OBSERVABILITY.md registry tables. The span name below IS
// documented, pinning that a documented-and-used name stays silent (and
// that OVC_TRACE_SPAN extraction works).

namespace demo {
void Run() {
  OVC_METRIC_COUNTER("undocumented.metric", "not in the registry").Increment();
  OVC_TRACE_SPAN("demo.span");
}
}  // namespace demo
