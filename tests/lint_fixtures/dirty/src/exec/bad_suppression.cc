// Dirty fixture: a suppression without the mandatory "-- reason" tail is
// itself a finding (OVC-L000) and suppresses nothing.
// ovclint-disable-file OVC-L002

namespace demo {}
