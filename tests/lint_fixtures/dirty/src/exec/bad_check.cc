// Dirty fixture: OVC_CHECK_OK inside src/exec/ (OVC-L002) and an
// undocumented failpoint name (OVC-L004).

namespace demo {
void Spill() {
  OVC_CHECK_OK(WriteRun());
  OVC_FAILPOINT("undocumented.point");
}
}  // namespace demo
