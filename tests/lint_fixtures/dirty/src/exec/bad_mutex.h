// Dirty fixture: bare std::mutex in src/ (OVC-L007) -- invisible to
// -Wthread-safety, so shared state must use common/mutex.h wrappers.
#ifndef OVC_EXEC_BAD_MUTEX_H_
#define OVC_EXEC_BAD_MUTEX_H_

#include <mutex>

namespace demo {
struct Queue {
  std::mutex mu;
};
}  // namespace demo

#endif  // OVC_EXEC_BAD_MUTEX_H_
