// Dirty fixture: core (layer 2) must not include exec (layer 5).
#ifndef OVC_CORE_BAD_LAYER_H_
#define OVC_CORE_BAD_LAYER_H_

#include "exec/anything.h"

#endif  // OVC_CORE_BAD_LAYER_H_
