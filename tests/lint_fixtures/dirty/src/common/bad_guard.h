// Dirty fixture: include guard does not follow OVC_<PATH>_H_ (OVC-L006).
#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

#endif  // WRONG_GUARD_H
