// Clean fixture: downward include, a documented failpoint, a checked
// condition that is not Status-valued, and a well-formed suppression
// (which must neither report OVC-L000 nor change the result).
// ovclint-disable-file OVC-L007 -- fixture: demonstrates a well-formed suppression

#include "common/good.h"

namespace demo {
void Run() {
  OVC_FAILPOINT("demo.point");
  OVC_CHECK(Answer() == 42);
}
}  // namespace demo
