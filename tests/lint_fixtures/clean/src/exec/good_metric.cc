// Clean fixture: metric and span names that match the registry tables in
// docs/OBSERVABILITY.md exactly, through every macro form (including the
// named-variable span variant whose name is the SECOND argument).

namespace demo {
void Run() {
  OVC_METRIC_COUNTER("demo.metric", "documented counter").Increment();
  OVC_TRACE_SPAN_VAR(span, "demo.span");
}
}  // namespace demo
