// Clean fixture: correct include guard, no includes.
#ifndef OVC_COMMON_GOOD_H_
#define OVC_COMMON_GOOD_H_

namespace demo {
inline int Answer() { return 42; }
}  // namespace demo

#endif  // OVC_COMMON_GOOD_H_
