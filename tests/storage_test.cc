// Storage substrates (Section 4.11): B-tree with code maintenance, LSM
// forest, RLE column store, RID-list secondary index.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "storage/btree.h"
#include "storage/column_store.h"
#include "storage/lsm.h"
#include "storage/rid_index.h"
#include "exec/scan.h"
#include "test_util.h"

namespace ovc {
namespace {

using ::ovc::testing::Canonicalize;
using ::ovc::testing::DrainValidated;
using ::ovc::testing::MakeTable;
using ::ovc::testing::ReferenceSort;
using ::ovc::testing::RowVec;
using ::ovc::testing::ToRowVec;

struct BTreeParam {
  uint64_t rows;
  uint64_t distinct;
  uint32_t node_capacity;
};

class BTreeTest : public ::testing::TestWithParam<BTreeParam> {};

TEST_P(BTreeTest, InsertedRowsScanSortedWithValidCodes) {
  const auto p = GetParam();
  Schema schema(3, 1);
  QueryCounters counters;
  BTree tree(&schema, &counters, p.node_capacity);
  RowBuffer table = MakeTable(schema, p.rows, p.distinct, /*seed=*/p.rows);
  for (size_t i = 0; i < table.size(); ++i) {
    tree.Insert(table.row(i));
  }
  EXPECT_EQ(tree.size(), p.rows);
  auto scan = tree.Scan();
  QueryCounters scan_counters;
  RowVec out = DrainValidated(scan.get());
  RowVec expected = ReferenceSort(schema, table);
  Canonicalize(&out);
  Canonicalize(&expected);
  EXPECT_EQ(out, expected);
  // Scans cost zero comparisons: codes come straight from storage.
  EXPECT_EQ(scan_counters.column_comparisons, 0u);
  if (p.rows > p.node_capacity) {
    EXPECT_GT(tree.height(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BTreeTest,
    ::testing::Values(BTreeParam{100, 4, 4}, BTreeParam{2000, 4, 8},
                      BTreeParam{2000, 100, 64}, BTreeParam{5000, 2, 16},
                      BTreeParam{1, 4, 4}),
    [](const ::testing::TestParamInfo<BTreeParam>& info) {
      return "rows" + std::to_string(info.param.rows) + "_domain" +
             std::to_string(info.param.distinct) + "_cap" +
             std::to_string(info.param.node_capacity);
    });

TEST(BTree, DeleteFixesCodesWithoutComparisons) {
  Schema schema(3);
  QueryCounters counters;
  BTree tree(&schema, &counters, 8);
  RowBuffer table = MakeTable(schema, 1000, 3, /*seed=*/7);
  for (size_t i = 0; i < table.size(); ++i) tree.Insert(table.row(i));

  // Delete every third row (by key); each delete's successor fixup is free.
  const uint64_t fixups_before = tree.compared_code_fixups();
  uint64_t deleted = 0;
  for (size_t i = 0; i < table.size(); i += 3) {
    if (tree.Delete(table.row(i))) ++deleted;
  }
  EXPECT_GT(deleted, 0u);
  EXPECT_EQ(tree.compared_code_fixups(), fixups_before)
      << "delete fixups must never compare columns (pure theorem)";
  EXPECT_EQ(tree.size(), 1000 - deleted);

  // The surviving stream is still perfectly coded.
  auto scan = tree.Scan();
  DrainValidated(scan.get());
}

TEST(BTree, DeleteFirstAndLastMaintainCodes) {
  Schema schema(2);
  BTree tree(&schema, nullptr, 4);
  for (uint64_t i = 0; i < 50; ++i) {
    const uint64_t row[2] = {i / 5, i % 5};
    tree.Insert(row);
  }
  const uint64_t first[2] = {0, 0};
  const uint64_t last[2] = {9, 4};
  EXPECT_TRUE(tree.Delete(first));
  EXPECT_TRUE(tree.Delete(last));
  EXPECT_FALSE(tree.Delete(last));  // already gone
  auto scan = tree.Scan();
  RowVec out = DrainValidated(scan.get());
  EXPECT_EQ(out.size(), 48u);
}

TEST(BTree, RangeScanRebasesFirstCode) {
  Schema schema(2, 1);
  BTree tree(&schema, nullptr, 8);
  for (uint64_t i = 0; i < 300; ++i) {
    const uint64_t row[3] = {i % 10, i / 10, i};
    tree.Insert(row);
  }
  const uint64_t low[3] = {3, 0, 0};
  const uint64_t high[3] = {6, 29, 0};
  auto scan = tree.RangeScan(low, high);
  RowVec out = DrainValidated(scan.get());
  EXPECT_EQ(out.size(), 4 * 30u);  // first columns 3..6
  for (const auto& row : out) {
    EXPECT_GE(row[0], 3u);
    EXPECT_LE(row[0], 6u);
  }
}

TEST(BTree, DuplicateKeysSupported) {
  Schema schema(1, 1);
  BTree tree(&schema, nullptr, 4);
  for (uint64_t i = 0; i < 100; ++i) {
    const uint64_t row[2] = {7, i};
    tree.Insert(row);
  }
  auto scan = tree.Scan();
  RowVec out = DrainValidated(scan.get());
  EXPECT_EQ(out.size(), 100u);
}

TEST(Lsm, IngestFlushScanRoundtrip) {
  Schema schema(3, 1);
  QueryCounters counters;
  TempFileManager temp;
  LsmForest::Options options;
  options.memtable_rows = 128;
  LsmForest forest(&schema, &counters, &temp, options);
  RowBuffer table = MakeTable(schema, 2000, 5, /*seed=*/14);
  for (size_t i = 0; i < table.size(); ++i) forest.Insert(table.row(i));
  EXPECT_GT(forest.run_count(), 1u);

  auto scan = forest.ScanAll();
  RowVec out = DrainValidated(scan.get());
  RowVec expected = ReferenceSort(schema, table);
  Canonicalize(&out);
  Canonicalize(&expected);
  EXPECT_EQ(out, expected);
}

TEST(Lsm, CompactionPreservesContentAndCodes) {
  Schema schema(2);
  TempFileManager temp;
  LsmForest::Options options;
  options.memtable_rows = 64;
  LsmForest forest(&schema, nullptr, &temp, options);
  RowBuffer table = MakeTable(schema, 1000, 3, /*seed=*/15);
  for (size_t i = 0; i < table.size(); ++i) forest.Insert(table.row(i));
  forest.Flush();
  const size_t runs_before = forest.run_count();
  ASSERT_GT(runs_before, 1u);
  forest.CompactAll();
  EXPECT_EQ(forest.run_count(), 1u);
  EXPECT_EQ(forest.compactions(), 1u);
  auto scan = forest.ScanAll();
  RowVec out = DrainValidated(scan.get());
  RowVec expected = ReferenceSort(schema, table);
  Canonicalize(&out);
  Canonicalize(&expected);
  EXPECT_EQ(out, expected);
}

TEST(Lsm, AutoCompactionTrigger) {
  Schema schema(2);
  TempFileManager temp;
  LsmForest::Options options;
  options.memtable_rows = 32;
  options.compaction_trigger = 4;
  LsmForest forest(&schema, nullptr, &temp, options);
  RowBuffer table = MakeTable(schema, 1000, 3, /*seed=*/16);
  for (size_t i = 0; i < table.size(); ++i) forest.Insert(table.row(i));
  EXPECT_GT(forest.compactions(), 0u);
  EXPECT_LT(forest.run_count(), 5u);
}

TEST(ColumnStore, ScanProducesCodesWithoutComparisons) {
  Schema schema(4, 1);
  QueryCounters counters;
  RowBuffer table = MakeTable(schema, 3000, 3, /*seed=*/17, /*sorted=*/true);
  OvcCodec codec(&schema);
  KeyComparator cmp(&schema, nullptr);
  InMemoryRun run(schema.total_columns());
  for (size_t i = 0; i < table.size(); ++i) {
    Ovc code = i == 0 ? codec.MakeInitial(table.row(i))
                      : codec.MakeFromRow(
                            table.row(i),
                            cmp.FirstDifference(table.row(i - 1),
                                                table.row(i), 0));
    run.Append(table.row(i), code);
  }
  RunScan input(&schema, &run);
  RleColumnStore store(&schema);
  store.Build(&input);
  EXPECT_EQ(store.rows(), 3000u);
  // Sorted low-cardinality data compresses: far fewer segments than cells.
  EXPECT_LT(store.total_segments(), 3000ull * 4 / 2);

  auto scan = store.CreateScan();
  RowVec out = DrainValidated(scan.get());
  EXPECT_EQ(out, ToRowVec(table));
  EXPECT_EQ(counters.column_comparisons, 0u);
}

TEST(ColumnStore, EmptyStore) {
  Schema schema(2);
  RleColumnStore store(&schema);
  RowBuffer empty(2);
  BufferScan scan_in(&schema, &empty);
  // Build requires sorted+ovc input; use an empty run scan instead.
  InMemoryRun run(2);
  RunScan input(&schema, &run);
  store.Build(&input);
  auto scan = store.CreateScan();
  RowVec out = DrainValidated(scan.get());
  EXPECT_TRUE(out.empty());
}

TEST(RidIndex, LookupAndRangeMergeAreValidRidStreams) {
  Schema table_schema(2, 1);
  RowBuffer table = MakeTable(table_schema, 1000, 8, /*seed=*/18);
  RidIndex index;
  index.Build(table, /*column=*/1);
  EXPECT_LE(index.distinct_values(), 8u);
  EXPECT_GT(index.compressed_bytes(), 0u);
  // Delta-varint compression: far fewer than 8 bytes per RID.
  EXPECT_LT(index.compressed_bytes(), 1000u * 4);

  // Single-value lookup: exactly the rows holding that value.
  QueryCounters counters;
  auto lookup = index.Lookup(3);
  RowVec rids = DrainValidated(lookup.get());
  uint64_t expected = 0;
  for (size_t i = 0; i < table.size(); ++i) {
    if (table.row(i)[1] == 3) ++expected;
  }
  EXPECT_EQ(rids.size(), expected);

  // Range scan: union of values 2..5, sorted by RID.
  auto range = index.RangeScan(2, 5, &counters);
  RowVec range_rids = DrainValidated(range.get());
  uint64_t expected_range = 0;
  for (size_t i = 0; i < table.size(); ++i) {
    if (table.row(i)[1] >= 2 && table.row(i)[1] <= 5) ++expected_range;
  }
  EXPECT_EQ(range_rids.size(), expected_range);
}

TEST(RidIndex, IndexIntersectionMatchesPredicateConjunction) {
  Schema table_schema(1, 2);  // one key, two indexed payload columns
  RowBuffer table = MakeTable(table_schema, 2000, 4, /*seed=*/19);
  // Overwrite payloads with indexable values.
  for (size_t i = 0; i < table.size(); ++i) {
    table.mutable_row(i)[1] = i % 7;
    table.mutable_row(i)[2] = i % 5;
  }
  RidIndex idx_a, idx_b;
  idx_a.Build(table, 1);
  idx_b.Build(table, 2);

  QueryCounters counters;
  auto scan_a = idx_a.Lookup(3);   // rows with col1 == 3
  auto scan_b = idx_b.Lookup(2);   // rows with col2 == 2
  auto intersection = IntersectRidStreams(scan_a.get(), scan_b.get(),
                                          &counters);
  RowVec rids = DrainValidated(intersection.get());
  uint64_t expected = 0;
  for (size_t i = 0; i < table.size(); ++i) {
    if (table.row(i)[1] == 3 && table.row(i)[2] == 2) ++expected;
  }
  EXPECT_EQ(rids.size(), expected);
}

TEST(RidIndex, MultiLookupMergesInList) {
  Schema table_schema(1, 1);
  RowBuffer table = MakeTable(table_schema, 500, 3, /*seed=*/20);
  for (size_t i = 0; i < table.size(); ++i) {
    table.mutable_row(i)[1] = i % 9;
  }
  RidIndex index;
  index.Build(table, 1);
  auto scan = index.MultiLookup({1, 4, 8}, nullptr);
  RowVec rids = DrainValidated(scan.get());
  uint64_t expected = 0;
  for (size_t i = 0; i < table.size(); ++i) {
    const uint64_t v = table.row(i)[1];
    if (v == 1 || v == 4 || v == 8) ++expected;
  }
  EXPECT_EQ(rids.size(), expected);
}

}  // namespace
}  // namespace ovc
