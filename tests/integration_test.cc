// Integration tests: multi-operator pipelines carrying offset-value codes
// end to end, including both Figure 5 plans for intersect-distinct.

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "exec/aggregate.h"
#include "exec/dedup.h"
#include "exec/filter.h"
#include "exec/hash_aggregate.h"
#include "exec/hash_join.h"
#include "exec/merge_join.h"
#include "exec/scan.h"
#include "exec/sort_operator.h"
#include "storage/lsm.h"
#include "test_util.h"

namespace ovc {
namespace {

using ::ovc::testing::Canonicalize;
using ::ovc::testing::DrainValidated;
using ::ovc::testing::MakeTable;
using ::ovc::testing::RowVec;
using ::ovc::testing::ToRowVec;

// Reference intersect-distinct over raw tables (keys only).
RowVec ReferenceIntersectDistinct(const RowVec& a, const RowVec& b) {
  std::set<std::vector<uint64_t>> sa(a.begin(), a.end());
  std::set<std::vector<uint64_t>> sb(b.begin(), b.end());
  RowVec out;
  for (const auto& k : sa) {
    if (sb.count(k) > 0) out.push_back(k);
  }
  return out;
}

TEST(Figure5Plans, SortAndHashPlansAgree) {
  // Figure 6's regime: distinct keys well beyond the operators' memory, so
  // both plans must spill.
  Schema schema(2);
  RowBuffer t1 = MakeTable(schema, 4000, 100, /*seed=*/201);
  RowBuffer t2 = MakeTable(schema, 3000, 100, /*seed=*/202);
  RowVec expected = ReferenceIntersectDistinct(ToRowVec(t1), ToRowVec(t2));

  TempFileManager temp;

  // Sort-based plan (Figure 5 right): sort+dedup each input, merge join.
  QueryCounters sort_counters;
  SortConfig sort_config;
  sort_config.memory_rows = 512;  // force spilling
  BufferScan scan1(&schema, &t1);
  BufferScan scan2(&schema, &t2);
  SortOperator sort1(&scan1, &sort_counters, &temp, sort_config);
  SortOperator sort2(&scan2, &sort_counters, &temp, sort_config);
  DedupOperator dedup1(&sort1);
  DedupOperator dedup2(&sort2);
  MergeJoin intersect(&dedup1, &dedup2, JoinType::kLeftSemi, &sort_counters);
  RowVec sort_result = DrainValidated(&intersect);

  // Hash-based plan (Figure 5 left): hash dedup each input, hash join.
  QueryCounters hash_counters;
  BufferScan scan3(&schema, &t1);
  BufferScan scan4(&schema, &t2);
  HashAggregate hdedup1(&scan3, /*group_prefix=*/2, {}, /*memory_groups=*/256,
                        &hash_counters, &temp);
  HashAggregate hdedup2(&scan4, /*group_prefix=*/2, {}, /*memory_groups=*/256,
                        &hash_counters, &temp);
  GraceHashJoin hjoin(&hdedup1, &hdedup2, /*bind_columns=*/2,
                      JoinTypeHash::kLeftSemi, /*memory_rows=*/256,
                      &hash_counters, &temp);
  RowVec hash_result = DrainValidated(&hjoin, /*check_codes=*/false);

  Canonicalize(&sort_result);
  Canonicalize(&hash_result);
  RowVec exp = expected;
  Canonicalize(&exp);
  EXPECT_EQ(sort_result, exp);
  EXPECT_EQ(hash_result, exp);

  // The Figure 6 discussion: the sort-based plan spills each input row at
  // most once; the hash-based plan spills rows at aggregation AND at the
  // join, i.e. strictly more.
  EXPECT_GT(hash_counters.rows_spilled, sort_counters.rows_spilled);
}

TEST(CountDistinct, TwoStepPipeline) {
  // "select k1, count(distinct k2) group by k1": sort on (k1,k2), dedup,
  // then in-stream count per k1 -- the sort detects duplicates by offsets
  // equal to the column count, the aggregation detects group boundaries by
  // offsets smaller than the grouping key (Section 3).
  Schema schema(2);
  RowBuffer t = MakeTable(schema, 5000, 6, /*seed=*/203);
  std::map<uint64_t, std::set<uint64_t>> reference;
  for (size_t i = 0; i < t.size(); ++i) {
    reference[t.row(i)[0]].insert(t.row(i)[1]);
  }

  QueryCounters counters;
  TempFileManager temp;
  BufferScan scan(&schema, &t);
  SortConfig config;
  config.memory_rows = 512;
  SortOperator sort(&scan, &counters, &temp, config);
  DedupOperator dedup(&sort);
  InStreamAggregate agg(&dedup, /*group_prefix=*/1, {{AggFn::kCount, 0}},
                        &counters);
  RowVec out = DrainValidated(&agg);
  ASSERT_EQ(out.size(), reference.size());
  for (const auto& row : out) {
    EXPECT_EQ(row[1], reference[row[0]].size()) << "k1=" << row[0];
  }
}

TEST(PipelineCodes, SortFilterDedupAggregateAllValid) {
  // A four-stage pipeline where every stage consumes the previous stage's
  // codes; DrainValidated checks the final stage, and the intermediate
  // stages are checked by construction (their outputs feed OVC-requiring
  // operators).
  Schema schema(3, 1);
  RowBuffer t = MakeTable(schema, 8000, 4, /*seed=*/204);
  QueryCounters counters;
  TempFileManager temp;
  BufferScan scan(&schema, &t);
  SortConfig config;
  config.memory_rows = 1024;
  SortOperator sort(&scan, &counters, &temp, config);
  FilterOperator filter(&sort,
                        [](const uint64_t* row) { return row[0] != 1; });
  InStreamAggregate agg(&filter, /*group_prefix=*/2, {{AggFn::kCount, 0}},
                        &counters);
  RowVec out = DrainValidated(&agg);

  std::map<std::pair<uint64_t, uint64_t>, uint64_t> reference;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t.row(i)[0] != 1) {
      ++reference[{t.row(i)[0], t.row(i)[1]}];
    }
  }
  ASSERT_EQ(out.size(), reference.size());
  for (const auto& row : out) {
    EXPECT_EQ(row[2], (reference[{row[0], row[1]}]));
  }
}

TEST(LsmQueryPipeline, ScanFeedsInStreamAggregation) {
  // Napa-style: ingest into an LSM forest, query via merged scan feeding
  // in-stream aggregation, codes end to end.
  Schema schema(2, 1);
  QueryCounters counters;
  TempFileManager temp;
  LsmForest::Options options;
  options.memtable_rows = 256;
  LsmForest forest(&schema, &counters, &temp, options);
  RowBuffer t = MakeTable(schema, 3000, 5, /*seed=*/205);
  for (size_t i = 0; i < t.size(); ++i) forest.Insert(t.row(i));

  auto scan = forest.ScanAll();
  InStreamAggregate agg(scan.get(), /*group_prefix=*/2,
                        {{AggFn::kCount, 0}, {AggFn::kSum, 2}}, &counters);
  RowVec out = DrainValidated(&agg);

  std::map<std::pair<uint64_t, uint64_t>, uint64_t> reference;
  for (size_t i = 0; i < t.size(); ++i) {
    ++reference[{t.row(i)[0], t.row(i)[1]}];
  }
  ASSERT_EQ(out.size(), reference.size());
  for (const auto& row : out) {
    EXPECT_EQ(row[2], (reference[{row[0], row[1]}]));
  }
}

TEST(OrderPreservingHashJoinPipeline, ProbeCodesSurviveJoin) {
  // Section 4.9: probe-side order and codes survive an in-memory hash join
  // and remain usable by a downstream in-stream aggregation.
  Schema probe_schema(2, 1);
  Schema build_schema(2, 1);
  RowBuffer probe = MakeTable(probe_schema, 2000, 5, /*seed=*/206);
  RowBuffer build = MakeTable(build_schema, 40, 5, /*seed=*/207);
  QueryCounters counters;
  TempFileManager temp;
  BufferScan probe_scan(&probe_schema, &probe);
  SortOperator sorted_probe(&probe_scan, &counters, &temp, SortConfig());
  BufferScan build_scan(&build_schema, &build);
  OrderPreservingHashJoin join(&sorted_probe, &build_scan, /*bind_columns=*/2,
                               JoinTypeHash::kLeftSemi, /*memory_rows=*/4096,
                               &counters);
  InStreamAggregate agg(&join, /*group_prefix=*/2, {{AggFn::kCount, 0}},
                        &counters);
  RowVec out = DrainValidated(&agg);
  // Reference.
  std::set<std::pair<uint64_t, uint64_t>> build_keys;
  for (size_t i = 0; i < build.size(); ++i) {
    build_keys.insert({build.row(i)[0], build.row(i)[1]});
  }
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> reference;
  for (size_t i = 0; i < probe.size(); ++i) {
    const auto key = std::make_pair(probe.row(i)[0], probe.row(i)[1]);
    if (build_keys.count(key) > 0) ++reference[key];
  }
  ASSERT_EQ(out.size(), reference.size());
  for (const auto& row : out) {
    EXPECT_EQ(row[2], (reference[{row[0], row[1]}]));
  }
}

}  // namespace
}  // namespace ovc
